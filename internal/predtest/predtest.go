// Package predtest provides test helpers for constructing predicates from
// source text. It exists so that library code never offers a panicking
// parse path: predicate.Parse returns its error, and the must-style
// convenience lives here, where only tests and benchmarks import it.
package predtest

import (
	"sia/internal/predicate"
)

// MustParse parses a predicate and panics on error. Test-only convenience:
// the inputs are static strings, so a failure is a programming error in the
// test itself.
func MustParse(input string, schema *predicate.Schema) predicate.Predicate {
	p, err := predicate.Parse(input, schema)
	if err != nil {
		panic("predtest: " + err.Error())
	}
	return p
}
