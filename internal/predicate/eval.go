package predicate

import (
	"fmt"
	"math"
)

// evalNum is an intermediate numeric result: NULL, an exact int64, or a
// float64. Arithmetic stays in int64 while both operands are integral and
// the operation is not division; it widens to float64 otherwise. Integer
// overflow also widens to float64, mirroring the exact-value semantics the
// symbolic encoder uses (big-integer arithmetic never overflows there).
type evalNum struct {
	null  bool
	isInt bool
	i     int64
	f     float64
}

func (n evalNum) real() float64 {
	if n.isInt {
		return float64(n.i)
	}
	return n.f
}

// EvalExpr evaluates an arithmetic expression against a tuple. A reference
// to a column absent from the tuple, or any NULL operand, yields NULL.
func EvalExpr(e Expr, t Tuple) Value {
	n := evalExpr(e, t)
	if n.null {
		return NullValue()
	}
	if n.isInt {
		return IntVal(n.i)
	}
	return RealVal(n.f)
}

func evalExpr(e Expr, t Tuple) evalNum {
	switch x := e.(type) {
	case *ColumnRef:
		v, ok := t[x.Name]
		if !ok || v.Null {
			return evalNum{null: true}
		}
		if x.Type.Integral() {
			return evalNum{isInt: true, i: v.Int}
		}
		return evalNum{f: v.Real}
	case *Const:
		if x.Val.Null {
			return evalNum{null: true}
		}
		if x.Type.Integral() {
			return evalNum{isInt: true, i: x.Val.Int}
		}
		return evalNum{f: x.Val.Real}
	case *BinaryExpr:
		l := evalExpr(x.Left, t)
		r := evalExpr(x.Right, t)
		if l.null || r.null {
			return evalNum{null: true}
		}
		return applyArith(x.Op, l, r)
	default:
		panic(fmt.Sprintf("predicate: unknown expression %T", e))
	}
}

func applyArith(op ArithOp, l, r evalNum) evalNum {
	if l.isInt && r.isInt && op != OpDiv {
		switch op {
		case OpAdd:
			if s, ok := addInt64(l.i, r.i); ok {
				return evalNum{isInt: true, i: s}
			}
		case OpSub:
			if s, ok := addInt64(l.i, -r.i); ok && !(r.i == math.MinInt64) {
				return evalNum{isInt: true, i: s}
			}
		case OpMul:
			if p, ok := mulInt64(l.i, r.i); ok {
				return evalNum{isInt: true, i: p}
			}
		}
		// Overflow: fall through to float arithmetic.
	}
	a, b := l.real(), r.real()
	switch op {
	case OpAdd:
		return evalNum{f: a + b}
	case OpSub:
		return evalNum{f: a - b}
	case OpMul:
		return evalNum{f: a * b}
	case OpDiv:
		if b == 0 {
			// SQL raises an error on division by zero; in a predicate
			// context we conservatively treat it as NULL so the row is
			// neither accepted nor definitively rejected.
			return evalNum{null: true}
		}
		return evalNum{f: a / b}
	default:
		panic(fmt.Sprintf("predicate: unknown operator %v", op))
	}
}

func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// Eval evaluates a predicate against a tuple under SQL's three-valued
// logic: comparisons with a NULL operand are Unknown, and AND/OR/NOT follow
// Kleene semantics. A tuple "satisfies" p exactly when Eval returns True.
func Eval(p Predicate, t Tuple) TriBool {
	switch x := p.(type) {
	case *Compare:
		l := evalExpr(x.Left, t)
		r := evalExpr(x.Right, t)
		if l.null || r.null {
			return Unknown
		}
		return compareNums(x.Op, l, r)
	case *And:
		res := True
		for _, q := range x.Preds {
			res = res.And(Eval(q, t))
			// tribool: False is AND's absorbing element; Unknown must keep
			// evaluating, and does.
			if res == False {
				return False
			}
		}
		return res
	case *Or:
		res := False
		for _, q := range x.Preds {
			res = res.Or(Eval(q, t))
			// tribool: True is OR's absorbing element; Unknown must keep
			// evaluating, and does.
			if res == True {
				return True
			}
		}
		return res
	case *Not:
		return Eval(x.P, t).Not()
	case *Literal:
		if x.B {
			return True
		}
		return False
	default:
		panic(fmt.Sprintf("predicate: unknown predicate %T", p))
	}
}

// Satisfies reports whether the tuple satisfies the predicate (Eval == True).
// This is SQL's WHERE-clause collapse: Unknown rejects the row like False.
func Satisfies(p Predicate, t Tuple) bool { return Eval(p, t) == True } // tribool: WHERE semantics

func compareNums(op CmpOp, l, r evalNum) TriBool {
	var c int
	if l.isInt && r.isInt {
		switch {
		case l.i < r.i:
			c = -1
		case l.i > r.i:
			c = 1
		}
	} else {
		a, b := l.real(), r.real()
		switch {
		case a < b:
			c = -1
		case a > b:
			c = 1
		}
	}
	var ok bool
	switch op {
	case CmpLT:
		ok = c < 0
	case CmpGT:
		ok = c > 0
	case CmpLE:
		ok = c <= 0
	case CmpGE:
		ok = c >= 0
	case CmpEQ:
		ok = c == 0
	case CmpNE:
		ok = c != 0
	default:
		panic(fmt.Sprintf("predicate: unknown comparison %v", op))
	}
	if ok {
		return True
	}
	return False
}
