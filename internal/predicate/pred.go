package predicate

import (
	"fmt"
	"sort"
	"strings"
)

// CmpOp is a comparison operator between two arithmetic expressions.
type CmpOp int

const (
	// CmpLT is <.
	CmpLT CmpOp = iota
	// CmpGT is >.
	CmpGT
	// CmpLE is <=.
	CmpLE
	// CmpGE is >=.
	CmpGE
	// CmpEQ is =.
	CmpEQ
	// CmpNE is <>.
	CmpNE
)

func (op CmpOp) String() string {
	switch op {
	case CmpLT:
		return "<"
	case CmpGT:
		return ">"
	case CmpLE:
		return "<="
	case CmpGE:
		return ">="
	case CmpEQ:
		return "="
	case CmpNE:
		return "<>"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Negate returns the comparison with the opposite truth table on non-NULL
// inputs (e.g. <'s negation is >=).
func (op CmpOp) Negate() CmpOp {
	switch op {
	case CmpLT:
		return CmpGE
	case CmpGT:
		return CmpLE
	case CmpLE:
		return CmpGT
	case CmpGE:
		return CmpLT
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	default:
		panic(fmt.Sprintf("predicate: unknown comparison %d", int(op)))
	}
}

// Flip returns the comparison with operands swapped (a op b == b op.Flip a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case CmpLT:
		return CmpGT
	case CmpGT:
		return CmpLT
	case CmpLE:
		return CmpGE
	case CmpGE:
		return CmpLE
	default:
		return op
	}
}

// Predicate is a boolean combination of comparisons (§4.1:
// P := E CP E | P L P | NOT P).
type Predicate interface {
	fmt.Stringer
	predNode()
}

// Compare applies a comparison operator to two arithmetic expressions.
type Compare struct {
	Op          CmpOp
	Left, Right Expr
}

func (*Compare) predNode() {}

func (c *Compare) String() string {
	return c.Left.String() + " " + c.Op.String() + " " + c.Right.String()
}

// And is an n-ary conjunction. Its constructor flattens nested conjunctions;
// an empty And prints and evaluates as TRUE.
type And struct {
	Preds []Predicate
}

func (*And) predNode() {}

func (a *And) String() string { return joinPreds(a.Preds, " AND ", "TRUE", opAnd) }

// Or is an n-ary disjunction. An empty Or prints and evaluates as FALSE.
type Or struct {
	Preds []Predicate
}

func (*Or) predNode() {}

func (o *Or) String() string { return joinPreds(o.Preds, " OR ", "FALSE", opOr) }

// Not negates a predicate.
type Not struct {
	P Predicate
}

func (*Not) predNode() {}

func (n *Not) String() string {
	if needsParens(n.P, opNot) {
		return "NOT (" + n.P.String() + ")"
	}
	return "NOT " + n.P.String()
}

// Literal is the constant TRUE or FALSE predicate.
type Literal struct {
	B bool
}

func (*Literal) predNode() {}

func (l *Literal) String() string {
	if l.B {
		return "TRUE"
	}
	return "FALSE"
}

// TruePred and FalsePred are the shared literal predicates.
var (
	TruePred  = &Literal{B: true}
	FalsePred = &Literal{B: false}
)

type logicOp int

const (
	opOr logicOp = iota
	opAnd
	opNot
)

// needsParens reports whether child must be parenthesized when printed under
// a parent of the given strength (NOT > AND > OR).
func needsParens(child Predicate, parent logicOp) bool {
	switch child.(type) {
	case *Or:
		return parent > opOr
	case *And:
		return parent > opAnd
	default:
		return false
	}
}

func joinPreds(ps []Predicate, sep, empty string, self logicOp) string {
	if len(ps) == 0 {
		return empty
	}
	var sb strings.Builder
	for i, p := range ps {
		if i > 0 {
			sb.WriteString(sep)
		}
		if needsParens(p, self) {
			sb.WriteByte('(')
			sb.WriteString(p.String())
			sb.WriteByte(')')
		} else {
			sb.WriteString(p.String())
		}
	}
	return sb.String()
}

// NewAnd returns the conjunction of ps, flattening nested Ands, dropping
// TRUE literals, and short-circuiting on FALSE. It returns TruePred for an
// empty conjunction and the sole predicate for a singleton.
func NewAnd(ps ...Predicate) Predicate {
	var flat []Predicate
	for _, p := range ps {
		switch x := p.(type) {
		case *And:
			flat = append(flat, x.Preds...)
		case *Literal:
			if !x.B {
				return FalsePred
			}
		default:
			flat = append(flat, p)
		}
	}
	switch len(flat) {
	case 0:
		return TruePred
	case 1:
		return flat[0]
	}
	return &And{Preds: flat}
}

// NewOr returns the disjunction of ps with the dual simplifications of
// NewAnd.
func NewOr(ps ...Predicate) Predicate {
	var flat []Predicate
	for _, p := range ps {
		switch x := p.(type) {
		case *Or:
			flat = append(flat, x.Preds...)
		case *Literal:
			if x.B {
				return TruePred
			}
		default:
			flat = append(flat, p)
		}
	}
	switch len(flat) {
	case 0:
		return FalsePred
	case 1:
		return flat[0]
	}
	return &Or{Preds: flat}
}

// NewNot returns the negation of p, simplifying literals and double
// negation.
func NewNot(p Predicate) Predicate {
	switch x := p.(type) {
	case *Literal:
		if x.B {
			return FalsePred
		}
		return TruePred
	case *Not:
		return x.P
	default:
		return &Not{P: p}
	}
}

// Cmp returns the comparison l op r.
func Cmp(op CmpOp, l, r Expr) *Compare { return &Compare{Op: op, Left: l, Right: r} }

// Columns returns the sorted set of distinct column names referenced by p.
func Columns(p Predicate) []string {
	seen := map[string]bool{}
	var walk func(Predicate)
	var names []string
	add := func(e Expr) {
		for _, n := range ExprColumns(e, nil) {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	walk = func(p Predicate) {
		switch x := p.(type) {
		case *Compare:
			add(x.Left)
			add(x.Right)
		case *And:
			for _, q := range x.Preds {
				walk(q)
			}
		case *Or:
			for _, q := range x.Preds {
				walk(q)
			}
		case *Not:
			walk(x.P)
		case *Literal:
		default:
			panic(fmt.Sprintf("predicate: unknown predicate %T", p))
		}
	}
	walk(p)
	sort.Strings(names)
	return names
}

// UsesOnly reports whether every column referenced by p is in cols.
func UsesOnly(p Predicate, cols []string) bool {
	allowed := map[string]bool{}
	for _, c := range cols {
		allowed[c] = true
	}
	for _, c := range Columns(p) {
		if !allowed[c] {
			return false
		}
	}
	return true
}

// Equal reports structural equality of two predicates.
func Equal(a, b Predicate) bool {
	switch x := a.(type) {
	case *Compare:
		y, ok := b.(*Compare)
		return ok && x.Op == y.Op && ExprEqual(x.Left, y.Left) && ExprEqual(x.Right, y.Right)
	case *And:
		y, ok := b.(*And)
		return ok && predsEqual(x.Preds, y.Preds)
	case *Or:
		y, ok := b.(*Or)
		return ok && predsEqual(x.Preds, y.Preds)
	case *Not:
		y, ok := b.(*Not)
		return ok && Equal(x.P, y.P)
	case *Literal:
		y, ok := b.(*Literal)
		return ok && x.B == y.B
	default:
		panic(fmt.Sprintf("predicate: unknown predicate %T", a))
	}
}

func predsEqual(a, b []Predicate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Conjuncts returns the top-level conjuncts of p: the members of a
// top-level AND, or p itself otherwise.
func Conjuncts(p Predicate) []Predicate {
	if a, ok := p.(*And); ok {
		return a.Preds
	}
	return []Predicate{p}
}
