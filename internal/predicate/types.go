// Package predicate defines the predicate language that Sia synthesizes
// over: comparisons of linear arithmetic expressions combined with AND, OR
// and NOT (SIGMOD '21, §4.1). It provides the AST, a schema-aware parser, a
// SQL printer, NULL-aware three-valued evaluation, and normalization of
// expressions to linear form.
//
// Supported column types are INTEGER, DOUBLE, DATE and TIMESTAMP. DATE and
// TIMESTAMP values are represented as integers (days or seconds since the
// package epoch), preserving all arithmetic and inequality relations, exactly
// as the paper's type conversion does (§5.2).
package predicate

import "fmt"

// Type is the data type of a column, constant, or expression.
type Type int

const (
	// TypeInteger is a 64-bit signed integer.
	TypeInteger Type = iota
	// TypeDouble is a 64-bit IEEE-754 floating point number.
	TypeDouble
	// TypeDate is a calendar date, stored as days since Epoch.
	TypeDate
	// TypeTimestamp is a point in time, stored as seconds since Epoch.
	TypeTimestamp
)

// Integral reports whether values of the type are stored as int64.
func (t Type) Integral() bool { return t != TypeDouble }

func (t Type) String() string {
	switch t {
	case TypeInteger:
		return "INTEGER"
	case TypeDouble:
		return "DOUBLE"
	case TypeDate:
		return "DATE"
	case TypeTimestamp:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a single SQL value: either NULL, an integral value (INTEGER,
// DATE, TIMESTAMP), or a DOUBLE.
type Value struct {
	Null bool
	Int  int64
	Real float64
}

// Null is the SQL NULL value.
func NullValue() Value { return Value{Null: true} }

// IntVal returns an integral Value.
func IntVal(v int64) Value { return Value{Int: v} }

// RealVal returns a DOUBLE Value.
func RealVal(v float64) Value { return Value{Real: v} }

// AsReal returns the value as a float64 (integral values are widened).
// It must not be called on NULL.
func (v Value) AsReal(integral bool) float64 {
	if integral {
		return float64(v.Int)
	}
	return v.Real
}

// Tuple maps column names to values. A column absent from the tuple is
// treated as NULL by evaluation.
type Tuple map[string]Value

// TriBool is a value of SQL's three-valued (Kleene) logic.
type TriBool int8

const (
	// False is the definite false truth value.
	False TriBool = iota - 1
	// Unknown is the NULL truth value.
	Unknown
	// True is the definite true truth value.
	True
)

func (b TriBool) String() string {
	switch b {
	case True:
		return "TRUE"
	case False:
		return "FALSE"
	default:
		return "UNKNOWN"
	}
}

// And returns the Kleene conjunction of two truth values.
func (b TriBool) And(o TriBool) TriBool {
	if b < o {
		return b
	}
	return o
}

// Or returns the Kleene disjunction of two truth values.
func (b TriBool) Or(o TriBool) TriBool {
	if b > o {
		return b
	}
	return o
}

// Not returns the Kleene negation of a truth value.
func (b TriBool) Not() TriBool { return -b }

// Column describes a named, typed column. NotNull records the catalog's
// nullability constraint; Sia's verification uses it to decide whether a
// column needs a NULL indicator in the three-valued encoding.
type Column struct {
	Name    string
	Type    Type
	NotNull bool
}

// Schema is an ordered collection of columns with name lookup.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from the given columns. Duplicate names panic:
// schemas are constructed from static catalogs and generators, so a
// duplicate is a programming error.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{index: make(map[string]int, len(cols))}
	for _, c := range cols {
		if _, dup := s.index[c.Name]; dup {
			panic(fmt.Sprintf("predicate: duplicate column %q in schema", c.Name))
		}
		s.index[c.Name] = len(s.cols)
		s.cols = append(s.cols, c)
	}
	return s
}

// Columns returns the schema's columns in declaration order.
func (s *Schema) Columns() []Column { return s.cols }

// Lookup returns the column with the given name.
func (s *Schema) Lookup(name string) (Column, bool) {
	i, ok := s.index[name]
	if !ok {
		return Column{}, false
	}
	return s.cols[i], true
}

// Type returns the type of the named column, or an error if absent.
func (s *Schema) Type(name string) (Type, error) {
	c, ok := s.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("predicate: unknown column %q", name)
	}
	return c.Type, nil
}

// Merge returns a new schema containing the columns of s followed by the
// columns of others. Duplicate names across inputs panic, as in NewSchema.
func Merge(schemas ...*Schema) *Schema {
	var all []Column
	for _, s := range schemas {
		all = append(all, s.cols...)
	}
	return NewSchema(all...)
}
