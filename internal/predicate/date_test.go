package predicate

import (
	"testing"
	"testing/quick"
)

func TestDateEpoch(t *testing.T) {
	if d := DateToDays(1992, 1, 1); d != 0 {
		t.Fatalf("epoch should be day 0, got %d", d)
	}
	if d := DateToDays(1992, 1, 2); d != 1 {
		t.Fatalf("1992-01-02 should be day 1, got %d", d)
	}
	if d := DateToDays(1991, 12, 31); d != -1 {
		t.Fatalf("1991-12-31 should be day -1, got %d", d)
	}
}

func TestDateKnownValues(t *testing.T) {
	cases := []struct {
		y, m, d int
		days    int64
	}{
		{1992, 3, 1, 60},     // 1992 is a leap year: Jan 31 + Feb 29
		{1993, 1, 1, 366},    // leap year has 366 days
		{1994, 1, 1, 731},    // 1993 is not a leap year
		{1998, 12, 31, 2556}, // TPC-H end date
		{2000, 2, 29, 2981},  // century leap day exists (divisible by 400)
		{1900, 3, 1, -33543}, // 1900 is not a leap year
	}
	for _, c := range cases {
		if got := DateToDays(c.y, c.m, c.d); got != c.days {
			t.Errorf("DateToDays(%d-%d-%d) = %d, want %d", c.y, c.m, c.d, got, c.days)
		}
		y, m, d := DaysToDate(c.days)
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("DaysToDate(%d) = %d-%d-%d, want %d-%d-%d", c.days, y, m, d, c.y, c.m, c.d)
		}
	}
}

func TestDateRoundTripProperty(t *testing.T) {
	// Property: DaysToDate is the left inverse of DateToDays on every
	// serial day within +-3000 years of the epoch.
	f := func(offset int32) bool {
		days := int64(offset % 1100000)
		y, m, d := DaysToDate(days)
		return DateToDays(y, m, d) == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDateMonotonic(t *testing.T) {
	// Consecutive days differ by exactly one across month and year
	// boundaries, including leap transitions.
	prev := DateToDays(1991, 12, 31)
	for days := int64(-365); days <= 3*366; days++ {
		y, m, d := DaysToDate(days)
		cur := DateToDays(y, m, d)
		if cur != days {
			t.Fatalf("round trip broke at day %d: got %d", days, cur)
		}
		if days > -365 && cur != prev+1 {
			t.Fatalf("non-consecutive serial at %04d-%02d-%02d", y, m, d)
		}
		prev = cur
	}
}

func TestParseFormatDate(t *testing.T) {
	days, err := ParseDate("1993-06-01")
	if err != nil {
		t.Fatal(err)
	}
	if want := DateToDays(1993, 6, 1); days != want {
		t.Fatalf("ParseDate = %d, want %d", days, want)
	}
	if s := FormatDate(days); s != "1993-06-01" {
		t.Fatalf("FormatDate = %q", s)
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Fatal("expected error for invalid date")
	}
	if _, err := ParseDate("1993-13-01"); err == nil {
		t.Fatal("expected error for month 13")
	}
}
