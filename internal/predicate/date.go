package predicate

import "fmt"

// Epoch is the origin date for the DATE type: values of TypeDate count days
// since 1992-01-01, the TPC-H start date. TIMESTAMP values count seconds
// since midnight of the same day. Converting temporal types to integers this
// way preserves every arithmetic and inequality relation in a predicate
// (§5.2 of the paper), which is all the synthesizer needs.
const Epoch = "1992-01-01"

// epochDays is the civil day number of the Epoch (see civilDays).
var epochDays = civilDays(1992, 1, 1)

// civilDays converts a proleptic Gregorian calendar date to a serial day
// number (days since 1970-01-01). The algorithm is Howard Hinnant's
// days_from_civil, valid for all int32 years.
func civilDays(y, m, d int) int64 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	var era int64
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468       // shift so 1970-01-01 == 0
}

// civilFromDays is the inverse of civilDays.
func civilFromDays(z int64) (y, m, d int) {
	z += 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	y = int(yy)
	if m <= 2 {
		y++
	}
	return y, m, d
}

// DateToDays converts a calendar date to its TypeDate representation
// (days since Epoch).
func DateToDays(year, month, day int) int64 {
	return civilDays(year, month, day) - epochDays
}

// DaysToDate converts a TypeDate value back to a calendar date.
func DaysToDate(days int64) (year, month, day int) {
	return civilFromDays(days + epochDays)
}

// ParseDate parses an ISO "YYYY-MM-DD" date string into days since Epoch.
func ParseDate(s string) (int64, error) {
	var y, m, d int
	if _, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil {
		return 0, fmt.Errorf("predicate: invalid date %q: %w", s, err)
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, fmt.Errorf("predicate: invalid date %q", s)
	}
	return DateToDays(y, m, d), nil
}

// FormatDate renders a TypeDate value as an ISO "YYYY-MM-DD" string.
func FormatDate(days int64) string {
	y, m, d := DaysToDate(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// ParseTimestamp parses "YYYY-MM-DD HH:MM:SS" (seconds optional) into the
// TypeTimestamp representation: seconds since midnight of the Epoch.
func ParseTimestamp(s string) (int64, error) {
	var y, mo, d, h, mi, sec int
	n, err := fmt.Sscanf(s, "%d-%d-%d %d:%d:%d", &y, &mo, &d, &h, &mi, &sec)
	if err != nil && n < 5 {
		return 0, fmt.Errorf("predicate: invalid timestamp %q", s)
	}
	if mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 || mi > 59 || sec < 0 || sec > 59 {
		return 0, fmt.Errorf("predicate: invalid timestamp %q", s)
	}
	return DateToDays(y, mo, d)*86400 + int64(h)*3600 + int64(mi)*60 + int64(sec), nil
}

// FormatTimestamp renders a TypeTimestamp value as "YYYY-MM-DD HH:MM:SS".
func FormatTimestamp(seconds int64) string {
	days := seconds / 86400
	rem := seconds % 86400
	if rem < 0 {
		days--
		rem += 86400
	}
	y, m, d := DaysToDate(days)
	return fmt.Sprintf("%04d-%02d-%02d %02d:%02d:%02d", y, m, d, rem/3600, rem%3600/60, rem%60)
}
