package predicate

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a SQL boolean expression (the WHERE-clause dialect used by
// the benchmark: arithmetic comparisons over columns, dates, and intervals,
// combined with AND/OR/NOT) into a Predicate. Column types are resolved
// through schema; when schema is nil every column is typed INTEGER.
//
// Date literals may be written DATE '1993-06-01' or as a bare quoted string;
// intervals as INTERVAL '20' DAY (or a bare integer). Both parse to the
// integer encodings described in the package documentation.
func Parse(input string, schema *Schema) (Predicate, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, schema: schema}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("predicate: unexpected %q at position %d", p.peek().text, p.peek().pos)
	}
	return pred, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // punctuation operator
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("predicate: unterminated string at position %d", i)
			}
			toks = append(toks, token{tokString, s[i+1 : j], i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9':
			j := i
			seenDot := false
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' && !seenDot) {
				if s[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j], i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_' || s[j] == '.') {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j], i})
			i = j
		default:
			switch {
			case strings.HasPrefix(s[i:], "<="), strings.HasPrefix(s[i:], ">="),
				strings.HasPrefix(s[i:], "<>"), strings.HasPrefix(s[i:], "!="):
				toks = append(toks, token{tokOp, s[i : i+2], i})
				i += 2
			case strings.ContainsRune("<>=+-*/(),", rune(c)):
				toks = append(toks, token{tokOp, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("predicate: unexpected character %q at position %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", len(s)})
	return toks, nil
}

type parser struct {
	toks   []token
	pos    int
	schema *Schema
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(m int) { p.pos = m }

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("predicate: expected %q at position %d, found %q", op, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	preds := []Predicate{left}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		preds = append(preds, r)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return &Or{Preds: preds}, nil
}

func (p *parser) parseAnd() (Predicate, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	preds := []Predicate{left}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		preds = append(preds, r)
	}
	if len(preds) == 1 {
		return preds[0], nil
	}
	return &And{Preds: preds}, nil
}

func (p *parser) parseNot() (Predicate, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{P: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Predicate, error) {
	if p.acceptKeyword("TRUE") {
		return TruePred, nil
	}
	if p.acceptKeyword("FALSE") {
		return FalsePred, nil
	}
	// A '(' may open either a parenthesized predicate or a parenthesized
	// arithmetic expression (e.g. "(a + b) < 3"). Try the predicate
	// reading first and backtrack on failure.
	if p.peek().kind == tokOp && p.peek().text == "(" {
		mark := p.save()
		p.next()
		if inner, err := p.parseOr(); err == nil {
			if err := p.expectOp(")"); err == nil {
				return inner, nil
			}
		}
		p.restore(mark)
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Predicate, error) {
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokOp {
		return nil, fmt.Errorf("predicate: expected comparison operator at position %d, found %q", t.pos, t.text)
	}
	var op CmpOp
	switch t.text {
	case "<":
		op = CmpLT
	case ">":
		op = CmpGT
	case "<=":
		op = CmpLE
	case ">=":
		op = CmpGE
	case "=":
		op = CmpEQ
	case "<>", "!=":
		op = CmpNE
	default:
		return nil, fmt.Errorf("predicate: expected comparison operator at position %d, found %q", t.pos, t.text)
	}
	p.next()
	right, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Compare{Op: op, Left: left, Right: right}, nil
}

func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = Add(left, r)
		case p.acceptOp("-"):
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = Sub(left, r)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = Mul(left, r)
		case p.acceptOp("/"):
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = Div(left, r)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.peek()
	switch {
	case p.acceptOp("-"):
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if c, ok := inner.(*Const); ok && !c.Val.Null {
			neg := *c
			if c.Type == TypeDouble {
				neg.Val = RealVal(-c.Val.Real)
			} else {
				neg.Val = IntVal(-c.Val.Int)
			}
			return &neg, nil
		}
		return Sub(IntConst(0), inner), nil
	case p.acceptOp("("):
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("predicate: bad number %q: %w", t.text, err)
			}
			return RealConst(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("predicate: bad number %q: %w", t.text, err)
		}
		return IntConst(n), nil
	case t.kind == tokString:
		p.next()
		days, err := ParseDate(t.text)
		if err != nil {
			return nil, err
		}
		return DateConst(days), nil
	case t.kind == tokIdent:
		switch {
		case strings.EqualFold(t.text, "DATE"):
			p.next()
			lit := p.peek()
			if lit.kind != tokString {
				return nil, fmt.Errorf("predicate: DATE must be followed by a quoted literal at position %d", lit.pos)
			}
			p.next()
			days, err := ParseDate(lit.text)
			if err != nil {
				return nil, err
			}
			return DateConst(days), nil
		case strings.EqualFold(t.text, "TIMESTAMP"):
			p.next()
			lit := p.peek()
			if lit.kind != tokString {
				return nil, fmt.Errorf("predicate: TIMESTAMP must be followed by a quoted literal at position %d", lit.pos)
			}
			p.next()
			secs, err := ParseTimestamp(lit.text)
			if err != nil {
				return nil, err
			}
			return &Const{Val: IntVal(secs), Type: TypeTimestamp}, nil
		case strings.EqualFold(t.text, "INTERVAL"):
			p.next()
			lit := p.next()
			var n int64
			var err error
			switch lit.kind {
			case tokString:
				n, err = strconv.ParseInt(lit.text, 10, 64)
			case tokNumber:
				n, err = strconv.ParseInt(lit.text, 10, 64)
			default:
				return nil, fmt.Errorf("predicate: INTERVAL must be followed by a count at position %d", lit.pos)
			}
			if err != nil {
				return nil, fmt.Errorf("predicate: bad interval %q: %w", lit.text, err)
			}
			if !p.acceptKeyword("DAY") && !p.acceptKeyword("DAYS") {
				return nil, fmt.Errorf("predicate: only DAY intervals are supported (position %d)", p.peek().pos)
			}
			return IntConst(n), nil
		case strings.EqualFold(t.text, "NULL"):
			p.next()
			return &Const{Val: NullValue(), Type: TypeInteger}, nil
		default:
			p.next()
			typ := TypeInteger
			if p.schema != nil {
				tt, err := p.schema.Type(t.text)
				if err != nil {
					return nil, err
				}
				typ = tt
			}
			return Col(t.text, typ), nil
		}
	default:
		return nil, fmt.Errorf("predicate: unexpected %q at position %d", t.text, t.pos)
	}
}
