package predicate

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics throws random token soup at the parser: every input
// must either parse or return an error — never panic. Inputs are built
// from the grammar's own vocabulary to reach deep into the parser.
func TestParseNeverPanics(t *testing.T) {
	vocab := []string{
		"a", "b", "l_shipdate", "AND", "OR", "NOT", "(", ")", "+", "-", "*", "/",
		"<", ">", "<=", ">=", "=", "<>", "1", "42", "0.5", "DATE", "INTERVAL",
		"'1993-06-01'", "'20'", "DAY", "TRUE", "FALSE", "TIMESTAMP", "NULL", ",",
	}
	s := NewSchema(
		Column{Name: "a", Type: TypeInteger},
		Column{Name: "b", Type: TypeInteger},
		Column{Name: "l_shipdate", Type: TypeDate},
	)
	r := rand.New(rand.NewSource(123))
	for i := 0; i < 3000; i++ {
		n := 1 + r.Intn(12)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = vocab[r.Intn(len(vocab))]
		}
		src := strings.Join(parts, " ")
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panicked on %q: %v", src, p)
				}
			}()
			p, err := Parse(src, s)
			if err == nil {
				// Whatever parsed must print and evaluate without panics.
				_ = p.String()
				_ = Eval(p, Tuple{"a": IntVal(1), "b": IntVal(2), "l_shipdate": IntVal(3)})
			}
		}()
	}
}

// TestParseRandomBytes feeds raw junk (not grammar tokens) to the lexer.
func TestParseRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(321))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, r.Intn(40))
		for j := range buf {
			buf[j] = byte(r.Intn(96) + 32)
		}
		src := string(buf)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("lexer/parser panicked on %q: %v", src, p)
				}
			}()
			_, _ = Parse(src, nil)
		}()
	}
}

// FuzzParse is the native fuzz target behind the CI smoke step
// (go test -fuzz=Fuzz -fuzztime=10s): any input must parse or error,
// and whatever parses must print and evaluate without panicking.
func FuzzParse(f *testing.F) {
	f.Add("a < 10 AND b >= 3")
	f.Add("l_shipdate <= DATE '1993-06-01' + INTERVAL '20' DAY")
	f.Add("NOT (a = 1 OR b <> 2)")
	f.Add("((")
	f.Add("a +")
	s := NewSchema(
		Column{Name: "a", Type: TypeInteger},
		Column{Name: "b", Type: TypeInteger},
		Column{Name: "l_shipdate", Type: TypeDate},
	)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src, s)
		if err != nil {
			return
		}
		_ = p.String()
		_ = Eval(p, Tuple{"a": IntVal(1), "b": IntVal(2), "l_shipdate": IntVal(3)})
	})
}
