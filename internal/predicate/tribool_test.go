package predicate

import "testing"

// The three truth values in a fixed order for table indexing.
var triVals = [3]TriBool{False, Unknown, True}

// TestTriBoolAnd checks the full Kleene conjunction table: AND is the
// minimum under False < Unknown < True.
func TestTriBoolAnd(t *testing.T) {
	want := [3][3]TriBool{
		//            False    Unknown  True
		/* False   */ {False, False, False},
		/* Unknown */ {False, Unknown, Unknown},
		/* True    */ {False, Unknown, True},
	}
	for i, a := range triVals {
		for j, b := range triVals {
			if got := a.And(b); got != want[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, want[i][j])
			}
		}
	}
}

// TestTriBoolOr checks the full Kleene disjunction table: OR is the
// maximum under False < Unknown < True.
func TestTriBoolOr(t *testing.T) {
	want := [3][3]TriBool{
		//            False    Unknown  True
		/* False   */ {False, Unknown, True},
		/* Unknown */ {Unknown, Unknown, True},
		/* True    */ {True, True, True},
	}
	for i, a := range triVals {
		for j, b := range triVals {
			if got := a.Or(b); got != want[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, want[i][j])
			}
		}
	}
}

// TestTriBoolNot checks negation: True and False swap, Unknown is fixed.
func TestTriBoolNot(t *testing.T) {
	want := map[TriBool]TriBool{False: True, Unknown: Unknown, True: False}
	for _, a := range triVals {
		if got := a.Not(); got != want[a] {
			t.Errorf("NOT %v = %v, want %v", a, got, want[a])
		}
		if got := a.Not().Not(); got != a {
			t.Errorf("NOT NOT %v = %v, want %v", a, got, a)
		}
	}
}

// TestTriBoolKleeneLaws spot-checks algebraic identities that And/Or/Not
// must satisfy as a Kleene algebra: De Morgan duality, commutativity, and
// absorption.
func TestTriBoolKleeneLaws(t *testing.T) {
	for _, a := range triVals {
		for _, b := range triVals {
			if a.And(b) != b.And(a) {
				t.Errorf("AND not commutative at (%v, %v)", a, b)
			}
			if a.Or(b) != b.Or(a) {
				t.Errorf("OR not commutative at (%v, %v)", a, b)
			}
			if a.And(b).Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan (AND) fails at (%v, %v)", a, b)
			}
			if a.Or(b).Not() != a.Not().And(b.Not()) {
				t.Errorf("De Morgan (OR) fails at (%v, %v)", a, b)
			}
			if a.And(a.Or(b)) != a {
				t.Errorf("absorption a AND (a OR b) fails at (%v, %v)", a, b)
			}
			if a.Or(a.And(b)) != a {
				t.Errorf("absorption a OR (a AND b) fails at (%v, %v)", a, b)
			}
		}
	}
}

// TestTriBoolString covers every value plus an out-of-range one, which
// must render as UNKNOWN rather than panic.
func TestTriBoolString(t *testing.T) {
	cases := []struct {
		in   TriBool
		want string
	}{
		{True, "TRUE"},
		{False, "FALSE"},
		{Unknown, "UNKNOWN"},
		{TriBool(7), "UNKNOWN"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("TriBool(%d).String() = %q, want %q", int8(c.in), got, c.want)
		}
	}
}
