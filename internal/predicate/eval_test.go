package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tup(vals map[string]int64) Tuple {
	t := Tuple{}
	for k, v := range vals {
		t[k] = IntVal(v)
	}
	return t
}

func TestEvalComparisons(t *testing.T) {
	a := Col("a", TypeInteger)
	cases := []struct {
		op   CmpOp
		val  int64
		want TriBool
	}{
		{CmpLT, 4, True}, {CmpLT, 5, False}, {CmpLT, 6, False},
		{CmpGT, 4, False}, {CmpGT, 5, False}, {CmpGT, 6, True},
		{CmpLE, 5, True}, {CmpLE, 4, True}, {CmpLE, 6, False},
		{CmpGE, 5, True}, {CmpGE, 6, True}, {CmpGE, 4, False},
		{CmpEQ, 5, True}, {CmpEQ, 4, False},
		{CmpNE, 5, False}, {CmpNE, 4, True},
	}
	for _, c := range cases {
		p := Cmp(c.op, a, IntConst(5))
		if got := Eval(p, tup(map[string]int64{"a": c.val})); got != c.want {
			t.Errorf("a=%d %v 5: got %v, want %v", c.val, c.op, got, c.want)
		}
	}
}

func TestEvalArithmetic(t *testing.T) {
	a, b := Col("a", TypeInteger), Col("b", TypeInteger)
	tu := tup(map[string]int64{"a": 7, "b": 3})
	cases := []struct {
		e    Expr
		want Value
	}{
		{Add(a, b), IntVal(10)},
		{Sub(a, b), IntVal(4)},
		{Mul(a, b), IntVal(21)},
		{Div(a, b), RealVal(7.0 / 3.0)},
		{Add(Mul(a, IntConst(2)), IntConst(1)), IntVal(15)},
	}
	for _, c := range cases {
		got := EvalExpr(c.e, tu)
		if got.Null != c.want.Null || got.Int != c.want.Int || got.Real != c.want.Real {
			t.Errorf("%s: got %+v, want %+v", c.e, got, c.want)
		}
	}
}

func TestEvalDivisionByZeroIsNull(t *testing.T) {
	a := Col("a", TypeInteger)
	p := Cmp(CmpGT, Div(a, IntConst(0)), IntConst(1))
	if got := Eval(p, tup(map[string]int64{"a": 5})); got != Unknown {
		t.Fatalf("division by zero should evaluate Unknown, got %v", got)
	}
}

func TestEvalNullPropagation(t *testing.T) {
	a, b := Col("a", TypeInteger), Col("b", TypeInteger)
	withNull := Tuple{"a": NullValue(), "b": IntVal(1)}
	if got := Eval(Cmp(CmpLT, a, b), withNull); got != Unknown {
		t.Fatalf("NULL comparison should be Unknown, got %v", got)
	}
	// Kleene: FALSE AND UNKNOWN = FALSE, TRUE AND UNKNOWN = UNKNOWN.
	f := Cmp(CmpLT, b, IntConst(0))  // false
	tr := Cmp(CmpGT, b, IntConst(0)) // true
	u := Cmp(CmpLT, a, b)            // unknown
	if got := Eval(NewAnd(f, u), withNull); got != False {
		t.Errorf("FALSE AND UNKNOWN = %v, want FALSE", got)
	}
	if got := Eval(NewAnd(tr, u), withNull); got != Unknown {
		t.Errorf("TRUE AND UNKNOWN = %v, want UNKNOWN", got)
	}
	if got := Eval(NewOr(tr, u), withNull); got != True {
		t.Errorf("TRUE OR UNKNOWN = %v, want TRUE", got)
	}
	if got := Eval(NewOr(f, u), withNull); got != Unknown {
		t.Errorf("FALSE OR UNKNOWN = %v, want UNKNOWN", got)
	}
	if got := Eval(NewNot(u), withNull); got != Unknown {
		t.Errorf("NOT UNKNOWN = %v, want UNKNOWN", got)
	}
	// A column absent from the tuple behaves as NULL.
	if got := Eval(Cmp(CmpEQ, Col("missing", TypeInteger), b), Tuple{"b": IntVal(1)}); got != Unknown {
		t.Errorf("missing column should be Unknown, got %v", got)
	}
}

func TestTriBoolTables(t *testing.T) {
	vals := []TriBool{False, Unknown, True}
	for _, x := range vals {
		for _, y := range vals {
			if got := x.And(y); got != minTri(x, y) {
				t.Errorf("%v AND %v = %v", x, y, got)
			}
			if got := x.Or(y); got != maxTri(x, y) {
				t.Errorf("%v OR %v = %v", x, y, got)
			}
		}
		if x.Not().Not() != x {
			t.Errorf("double negation broke for %v", x)
		}
	}
}

func minTri(a, b TriBool) TriBool {
	if a < b {
		return a
	}
	return b
}

func maxTri(a, b TriBool) TriBool {
	if a > b {
		return a
	}
	return b
}

// randomPred builds a random predicate over columns a, b, c for property
// tests.
func randomPred(r *rand.Rand, depth int) Predicate {
	cols := []string{"a", "b", "c"}
	randExpr := func() Expr {
		e := Expr(Col(cols[r.Intn(len(cols))], TypeInteger))
		for i := r.Intn(3); i > 0; i-- {
			other := Expr(IntConst(int64(r.Intn(21) - 10)))
			if r.Intn(2) == 0 {
				other = Col(cols[r.Intn(len(cols))], TypeInteger)
			}
			switch r.Intn(3) {
			case 0:
				e = Add(e, other)
			case 1:
				e = Sub(e, other)
			default:
				e = Mul(e, IntConst(int64(r.Intn(5)-2)))
			}
		}
		return e
	}
	if depth <= 0 || r.Intn(3) == 0 {
		ops := []CmpOp{CmpLT, CmpGT, CmpLE, CmpGE, CmpEQ, CmpNE}
		return Cmp(ops[r.Intn(len(ops))], randExpr(), randExpr())
	}
	switch r.Intn(3) {
	case 0:
		return NewAnd(randomPred(r, depth-1), randomPred(r, depth-1))
	case 1:
		return NewOr(randomPred(r, depth-1), randomPred(r, depth-1))
	default:
		return NewNot(randomPred(r, depth-1))
	}
}

func randomTuple(r *rand.Rand, nullProb float64) Tuple {
	t := Tuple{}
	for _, c := range []string{"a", "b", "c"} {
		if r.Float64() < nullProb {
			t[c] = NullValue()
		} else {
			t[c] = IntVal(int64(r.Intn(41) - 20))
		}
	}
	return t
}

func TestDeMorganProperty(t *testing.T) {
	// Property: NOT(p AND q) === NOT p OR NOT q under 3VL, for random
	// predicates and tuples (with NULLs).
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := randomPred(r, 2)
		q := randomPred(r, 2)
		tu := randomTuple(r, 0.2)
		l := Eval(NewNot(&And{Preds: []Predicate{p, q}}), tu)
		rr := Eval(&Or{Preds: []Predicate{NewNot(p), NewNot(q)}}, tu)
		if l != rr {
			t.Fatalf("De Morgan violated for %s / %s on %v: %v vs %v", p, q, tu, l, rr)
		}
	}
}

func TestEvalNeverUnknownWithoutNulls(t *testing.T) {
	// Property: on a NULL-free tuple, a division-free predicate always
	// evaluates to a definite truth value.
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		p := randomPred(r, 3)
		tu := randomTuple(r, 0)
		if got := Eval(p, tu); got == Unknown {
			t.Fatalf("Unknown without NULLs: %s on %v", p, tu)
		}
	}
}

func TestNegationConsistencyProperty(t *testing.T) {
	// Property: Eval(NOT p) == Eval(p).Not() via quick.Check-style random
	// exploration.
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPred(r, 2)
		tu := randomTuple(r, 0.3)
		return Eval(NewNot(p), tu) == Eval(p, tu).Not()
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
