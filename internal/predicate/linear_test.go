package predicate

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

func TestLinearizeBasic(t *testing.T) {
	s := testSchema()
	p := mustParse("2*a + 3*b - a < 10", s).(*Compare)
	lf, err := Linearize(p.Left)
	if err != nil {
		t.Fatal(err)
	}
	if got := lf.Coeffs["a"].RatString(); got != "1" {
		t.Fatalf("coeff a = %s, want 1", got)
	}
	if got := lf.Coeffs["b"].RatString(); got != "3" {
		t.Fatalf("coeff b = %s, want 3", got)
	}
	if lf.Const.Sign() != 0 {
		t.Fatalf("const = %s, want 0", lf.Const.RatString())
	}
}

func TestLinearizeCancellation(t *testing.T) {
	a := Col("a", TypeInteger)
	lf, err := Linearize(Sub(a, a))
	if err != nil {
		t.Fatal(err)
	}
	if !lf.IsConst() || lf.Const.Sign() != 0 {
		t.Fatalf("a - a should be the zero form, got %s", lf)
	}
}

func TestLinearizeDivision(t *testing.T) {
	a := Col("a", TypeInteger)
	lf, err := Linearize(Div(Add(a, IntConst(4)), IntConst(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got := lf.Coeffs["a"].RatString(); got != "1/2" {
		t.Fatalf("coeff = %s, want 1/2", got)
	}
	if got := lf.Const.RatString(); got != "2" {
		t.Fatalf("const = %s, want 2", got)
	}
}

func TestLinearizeNonLinear(t *testing.T) {
	a, b := Col("a", TypeInteger), Col("b", TypeInteger)
	for _, e := range []Expr{Mul(a, b), Div(IntConst(1), a), Div(a, b), Mul(Add(a, IntConst(1)), b)} {
		_, err := Linearize(e)
		var nle *NonLinearError
		if !errors.As(err, &nle) {
			t.Errorf("%s: expected NonLinearError, got %v", e, err)
		}
	}
	// Division by literal zero is an error but not a NonLinearError.
	_, err := Linearize(Div(a, IntConst(0)))
	var nle *NonLinearError
	if err == nil || errors.As(err, &nle) {
		t.Errorf("div by zero: got %v", err)
	}
}

func TestLinearizeMatchesEval(t *testing.T) {
	// Property: for random linear expressions, evaluating the linear form
	// agrees with direct AST evaluation.
	r := rand.New(rand.NewSource(13))
	cols := []string{"a", "b", "c"}
	for i := 0; i < 300; i++ {
		e := Expr(IntConst(int64(r.Intn(9) - 4)))
		for j := r.Intn(6); j > 0; j-- {
			term := Expr(Col(cols[r.Intn(3)], TypeInteger))
			if r.Intn(3) == 0 {
				term = Mul(IntConst(int64(r.Intn(7)-3)), term)
			}
			if r.Intn(2) == 0 {
				e = Add(e, term)
			} else {
				e = Sub(e, term)
			}
		}
		lf, err := Linearize(e)
		if err != nil {
			t.Fatalf("linearize %s: %v", e, err)
		}
		tu := randomTuple(r, 0)
		direct := EvalExpr(e, tu)
		viaForm := new(big.Rat).Set(lf.Const)
		for col, coeff := range lf.Coeffs {
			term := new(big.Rat).Mul(coeff, new(big.Rat).SetInt64(tu[col].Int))
			viaForm.Add(viaForm, term)
		}
		if !viaForm.IsInt() || viaForm.Num().Int64() != direct.Int {
			t.Fatalf("mismatch for %s on %v: form=%s direct=%d", e, tu, viaForm.RatString(), direct.Int)
		}
	}
}

func TestLinearToExprRoundTrip(t *testing.T) {
	// Property: LinearToExpr(Linearize(e)) has the same value as e up to
	// the returned positive scale factor.
	r := rand.New(rand.NewSource(29))
	s := NewSchema(Column{Name: "a", Type: TypeInteger}, Column{Name: "b", Type: TypeInteger}, Column{Name: "c", Type: TypeInteger})
	for i := 0; i < 200; i++ {
		lf := NewLinear()
		for _, c := range []string{"a", "b", "c"} {
			if r.Intn(2) == 0 {
				lf.AddTerm(c, big.NewRat(int64(r.Intn(11)-5), int64(r.Intn(4)+1)))
			}
		}
		lf.Const = big.NewRat(int64(r.Intn(21)-10), int64(r.Intn(3)+1))
		e, scale := LinearToExpr(lf, s)
		tu := randomTuple(r, 0)
		got := EvalExpr(e, tu)
		want := new(big.Rat).Set(lf.Const)
		for col, coeff := range lf.Coeffs {
			want.Add(want, new(big.Rat).Mul(coeff, new(big.Rat).SetInt64(tu[col].Int)))
		}
		want.Mul(want, new(big.Rat).SetInt(scale))
		if !want.IsInt() {
			t.Fatalf("scale %s did not clear denominators of %s", scale, lf)
		}
		if got.Null || got.Int != want.Num().Int64() {
			t.Fatalf("%s (scale %s) on %v: got %+v, want %s", e, scale, tu, got, want.RatString())
		}
	}
}

func TestSchema(t *testing.T) {
	s := testSchema()
	c, ok := s.Lookup("l_shipdate")
	if !ok || c.Type != TypeDate {
		t.Fatal("lookup failed")
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("lookup of missing column should fail")
	}
	if _, err := s.Type("nope"); err == nil {
		t.Fatal("Type of missing column should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column should panic")
		}
	}()
	NewSchema(Column{Name: "a", Type: TypeInteger}, Column{Name: "a", Type: TypeDouble})
}

func TestMergeSchemas(t *testing.T) {
	a := NewSchema(Column{Name: "x", Type: TypeInteger})
	b := NewSchema(Column{Name: "y", Type: TypeDouble})
	m := Merge(a, b)
	if len(m.Columns()) != 2 {
		t.Fatal("merge lost columns")
	}
	if c, _ := m.Lookup("y"); c.Type != TypeDouble {
		t.Fatal("merge mistyped column")
	}
}
