package predicate

import (
	"math/rand"
	"strings"
	"testing"
)

// mustParse is the in-package test shorthand for Parse on known-good
// static inputs.
func mustParse(input string, schema *Schema) Predicate {
	p, err := Parse(input, schema)
	if err != nil {
		panic("predicate test: " + err.Error())
	}
	return p
}

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "a", Type: TypeInteger},
		Column{Name: "b", Type: TypeInteger},
		Column{Name: "c", Type: TypeInteger},
		Column{Name: "x", Type: TypeDouble},
		Column{Name: "l_shipdate", Type: TypeDate},
		Column{Name: "l_commitdate", Type: TypeDate},
		Column{Name: "o_orderdate", Type: TypeDate},
	)
}

func TestParseSimple(t *testing.T) {
	s := testSchema()
	p, err := Parse("a + 10 > b + 20 AND b + 10 > 20", s)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := p.(*And)
	if !ok || len(and.Preds) != 2 {
		t.Fatalf("expected 2-conjunct AND, got %T %s", p, p)
	}
	if got := p.String(); got != "a + 10 > b + 20 AND b + 10 > 20" {
		t.Fatalf("round trip: %q", got)
	}
}

func TestParsePrecedence(t *testing.T) {
	s := testSchema()
	// AND binds tighter than OR; NOT tighter than AND.
	p := mustParse("a > 1 OR b > 2 AND c > 3", s)
	or, ok := p.(*Or)
	if !ok || len(or.Preds) != 2 {
		t.Fatalf("OR should be the root: %s", p)
	}
	if _, ok := or.Preds[1].(*And); !ok {
		t.Fatalf("right OR operand should be AND: %s", p)
	}
	p = mustParse("NOT a > 1 AND b > 2", s)
	and, ok := p.(*And)
	if !ok {
		t.Fatalf("AND should be the root: %s", p)
	}
	if _, ok := and.Preds[0].(*Not); !ok {
		t.Fatalf("NOT should bind to the first comparison: %s", p)
	}
}

func TestParseParenthesizedPredicate(t *testing.T) {
	s := testSchema()
	p := mustParse("(a > 1 OR b > 2) AND c > 3", s)
	and, ok := p.(*And)
	if !ok || len(and.Preds) != 2 {
		t.Fatalf("expected AND root, got %s", p)
	}
	if _, ok := and.Preds[0].(*Or); !ok {
		t.Fatalf("expected parenthesized OR child, got %s", p)
	}
}

func TestParseParenthesizedExpression(t *testing.T) {
	s := testSchema()
	p := mustParse("(a + b) * 2 < 10", s)
	cmp, ok := p.(*Compare)
	if !ok {
		t.Fatalf("expected comparison, got %T", p)
	}
	tu := tup(map[string]int64{"a": 1, "b": 2})
	if Eval(cmp, tu) != True { // (1+2)*2 = 6 < 10
		t.Fatalf("wrong structure: %s", p)
	}
	tu = tup(map[string]int64{"a": 3, "b": 2})
	if Eval(cmp, tu) != False { // (3+2)*2 = 10
		t.Fatalf("wrong structure: %s", p)
	}
}

func TestParseDatesAndIntervals(t *testing.T) {
	s := testSchema()
	p := mustParse("l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'", s)
	ship := DateToDays(1993, 5, 30)
	order := DateToDays(1993, 5, 20)
	tu := Tuple{"l_shipdate": IntVal(ship), "o_orderdate": IntVal(order)}
	if Eval(p, tu) != True {
		t.Fatalf("date predicate should hold: %s", p)
	}
	// Bare quoted strings parse as dates too.
	q := mustParse("o_orderdate < '1993-06-01'", s)
	if Eval(q, tu) != True {
		t.Fatal("bare date literal failed")
	}
	// INTERVAL 'n' DAY parses as an integer day count.
	iv := mustParse("l_shipdate - o_orderdate < INTERVAL '20' DAY", s)
	if Eval(iv, tu) != True {
		t.Fatal("interval literal failed")
	}
}

func TestParseMotivatingExample(t *testing.T) {
	// The predicate of Q1 from §2 of the paper.
	s := testSchema()
	src := `l_shipdate - o_orderdate < 20
		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
		AND o_orderdate < DATE '1993-06-01'`
	p, err := Parse(src, s)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Conjuncts(p)); got != 3 {
		t.Fatalf("expected 3 conjuncts, got %d", got)
	}
	cols := Columns(p)
	want := []string{"l_commitdate", "l_shipdate", "o_orderdate"}
	if strings.Join(cols, ",") != strings.Join(want, ",") {
		t.Fatalf("Columns = %v, want %v", cols, want)
	}
}

func TestParseErrors(t *testing.T) {
	s := testSchema()
	bad := []string{
		"",
		"a >",
		"a > 1 AND",
		"a >> 1",
		"unknown_col > 1",
		"a > 'not-a-date'",
		"(a > 1",
		"a > 1)",
		"INTERVAL 'x' DAY > a",
		"a @ 1",
		"a > 'abc",
	}
	for _, src := range bad {
		if _, err := Parse(src, s); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	s := testSchema()
	p := mustParse("a > -5 AND -a < 5", s)
	if Eval(p, tup(map[string]int64{"a": 0})) != True {
		t.Fatal("negative literal handling broke")
	}
	if Eval(p, tup(map[string]int64{"a": -6})) != False {
		t.Fatal("negative literal handling broke")
	}
}

func TestParseFloats(t *testing.T) {
	s := testSchema()
	p := mustParse("x * 2.5 > 10.0", s)
	if Eval(p, Tuple{"x": RealVal(4.1)}) != True {
		t.Fatal("float comparison failed")
	}
	if Eval(p, Tuple{"x": RealVal(3.9)}) != False {
		t.Fatal("float comparison failed")
	}
}

func TestPrintParseRoundTripProperty(t *testing.T) {
	// Property: printing a random predicate and re-parsing it yields a
	// predicate with identical three-valued semantics on random tuples.
	r := rand.New(rand.NewSource(42))
	s := NewSchema(Column{Name: "a", Type: TypeInteger}, Column{Name: "b", Type: TypeInteger}, Column{Name: "c", Type: TypeInteger})
	for i := 0; i < 400; i++ {
		p := randomPred(r, 3)
		back, err := Parse(p.String(), s)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", p.String(), err)
		}
		for j := 0; j < 20; j++ {
			tu := randomTuple(r, 0.15)
			if Eval(p, tu) != Eval(back, tu) {
				t.Fatalf("round trip changed semantics: %q vs %q on %v", p, back, tu)
			}
		}
	}
}

func TestColumnsAndUsesOnly(t *testing.T) {
	s := testSchema()
	p := mustParse("a + b > 3 AND c < 2 OR a = 1", s)
	got := Columns(p)
	if strings.Join(got, ",") != "a,b,c" {
		t.Fatalf("Columns = %v", got)
	}
	if !UsesOnly(p, []string{"a", "b", "c", "d"}) {
		t.Fatal("UsesOnly superset failed")
	}
	if UsesOnly(p, []string{"a", "b"}) {
		t.Fatal("UsesOnly subset should fail")
	}
}

func TestConstructorsSimplify(t *testing.T) {
	a := Cmp(CmpGT, Col("a", TypeInteger), IntConst(0))
	if NewAnd() != TruePred {
		t.Fatal("empty AND should be TRUE")
	}
	if NewOr() != FalsePred {
		t.Fatal("empty OR should be FALSE")
	}
	if NewAnd(a, FalsePred) != FalsePred {
		t.Fatal("AND with FALSE should collapse")
	}
	if NewOr(a, TruePred) != TruePred {
		t.Fatal("OR with TRUE should collapse")
	}
	if got := NewAnd(a, TruePred); got != a {
		t.Fatal("AND with TRUE should drop the literal")
	}
	if got := NewNot(NewNot(a)); got != a {
		t.Fatal("double negation should cancel")
	}
	nested := NewAnd(a, NewAnd(a, a))
	if len(nested.(*And).Preds) != 3 {
		t.Fatal("nested ANDs should flatten")
	}
}

func TestStringParens(t *testing.T) {
	a := Cmp(CmpGT, Col("a", TypeInteger), IntConst(0))
	b := Cmp(CmpGT, Col("b", TypeInteger), IntConst(0))
	c := Cmp(CmpGT, Col("c", TypeInteger), IntConst(0))
	p := NewAnd(NewOr(a, b), c)
	want := "(a > 0 OR b > 0) AND c > 0"
	if got := p.String(); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
	n := NewNot(NewOr(a, b))
	if got := n.String(); got != "NOT (a > 0 OR b > 0)" {
		t.Fatalf("got %q", got)
	}
	// Subtraction must parenthesize the right operand.
	e := Sub(Col("a", TypeInteger), Sub(Col("b", TypeInteger), Col("c", TypeInteger)))
	if got := e.String(); got != "a - (b - c)" {
		t.Fatalf("got %q", got)
	}
}
