package predicate

import (
	"fmt"
	"strconv"
	"strings"
)

// ArithOp is a binary arithmetic operator in an expression.
type ArithOp int

const (
	// OpAdd is addition.
	OpAdd ArithOp = iota
	// OpSub is subtraction.
	OpSub
	// OpMul is multiplication.
	OpMul
	// OpDiv is division. Division is given exact (rational) semantics
	// throughout: symbolic reasoning treats a/b as the exact quotient and
	// evaluation computes it in float64, so the synthesizer and the
	// executor agree. This matches treating `/` as SQL's numeric division
	// rather than C-style truncating integer division.
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return fmt.Sprintf("ArithOp(%d)", int(op))
	}
}

// precedence orders arithmetic operators for printing.
func (op ArithOp) precedence() int {
	if op == OpMul || op == OpDiv {
		return 2
	}
	return 1
}

// Expr is an arithmetic expression: a column reference, a constant, or a
// binary arithmetic combination of expressions (§4.1: E := Column | Const |
// E OP E).
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef is a reference to a named column.
type ColumnRef struct {
	Name string
	Type Type
}

func (*ColumnRef) exprNode() {}

func (c *ColumnRef) String() string { return c.Name }

// Const is a literal constant. Type records how the constant was written so
// printing round-trips (dates print as DATE '...' literals).
type Const struct {
	Val  Value
	Type Type
}

func (*Const) exprNode() {}

func (c *Const) String() string {
	if c.Val.Null {
		return "NULL"
	}
	switch c.Type {
	case TypeDouble:
		return strconv.FormatFloat(c.Val.Real, 'g', -1, 64)
	case TypeDate:
		return "DATE '" + FormatDate(c.Val.Int) + "'"
	case TypeTimestamp:
		return "TIMESTAMP '" + FormatTimestamp(c.Val.Int) + "'"
	default:
		return strconv.FormatInt(c.Val.Int, 10)
	}
}

// IntConst returns an INTEGER constant expression.
func IntConst(v int64) *Const { return &Const{Val: IntVal(v), Type: TypeInteger} }

// RealConst returns a DOUBLE constant expression.
func RealConst(v float64) *Const { return &Const{Val: RealVal(v), Type: TypeDouble} }

// DateConst returns a DATE constant expression from days since Epoch.
func DateConst(days int64) *Const { return &Const{Val: IntVal(days), Type: TypeDate} }

// BinaryExpr applies an arithmetic operator to two sub-expressions.
type BinaryExpr struct {
	Op          ArithOp
	Left, Right Expr
}

func (*BinaryExpr) exprNode() {}

func (b *BinaryExpr) String() string {
	var sb strings.Builder
	writeOperand(&sb, b.Left, b.Op.precedence(), false)
	sb.WriteByte(' ')
	sb.WriteString(b.Op.String())
	sb.WriteByte(' ')
	writeOperand(&sb, b.Right, b.Op.precedence(), true)
	return sb.String()
}

// writeOperand prints a child expression, parenthesizing when the child
// binds looser than the parent (or equally, on the right side, since -, /
// are left-associative).
func writeOperand(sb *strings.Builder, e Expr, parentPrec int, rightSide bool) {
	child, ok := e.(*BinaryExpr)
	if !ok {
		sb.WriteString(e.String())
		return
	}
	cp := child.Op.precedence()
	if cp < parentPrec || (cp == parentPrec && rightSide) {
		sb.WriteByte('(')
		sb.WriteString(child.String())
		sb.WriteByte(')')
		return
	}
	sb.WriteString(child.String())
}

// Add returns l + r.
func Add(l, r Expr) Expr { return &BinaryExpr{Op: OpAdd, Left: l, Right: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return &BinaryExpr{Op: OpSub, Left: l, Right: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return &BinaryExpr{Op: OpMul, Left: l, Right: r} }

// Div returns l / r.
func Div(l, r Expr) Expr { return &BinaryExpr{Op: OpDiv, Left: l, Right: r} }

// Col returns a column reference with the given type.
func Col(name string, t Type) *ColumnRef { return &ColumnRef{Name: name, Type: t} }

// ExprColumns appends the names of all columns referenced by e to dst,
// without deduplication.
func ExprColumns(e Expr, dst []string) []string {
	switch x := e.(type) {
	case *ColumnRef:
		return append(dst, x.Name)
	case *Const:
		return dst
	case *BinaryExpr:
		return ExprColumns(x.Right, ExprColumns(x.Left, dst))
	default:
		panic(fmt.Sprintf("predicate: unknown expression %T", e))
	}
}

// ExprEqual reports structural equality of two expressions.
func ExprEqual(a, b Expr) bool {
	switch x := a.(type) {
	case *ColumnRef:
		y, ok := b.(*ColumnRef)
		return ok && x.Name == y.Name
	case *Const:
		y, ok := b.(*Const)
		if !ok || x.Val.Null != y.Val.Null {
			return false
		}
		if x.Val.Null {
			return true
		}
		if x.Type == TypeDouble || y.Type == TypeDouble {
			return x.Type == y.Type && x.Val.Real == y.Val.Real
		}
		return x.Val.Int == y.Val.Int
	case *BinaryExpr:
		y, ok := b.(*BinaryExpr)
		return ok && x.Op == y.Op && ExprEqual(x.Left, y.Left) && ExprEqual(x.Right, y.Right)
	default:
		panic(fmt.Sprintf("predicate: unknown expression %T", a))
	}
}
