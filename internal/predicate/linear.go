package predicate

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Linear is an arithmetic expression in normalized linear form:
// sum over columns of Coeffs[col]*col, plus Const. Coefficients are exact
// rationals; zero coefficients are never stored.
type Linear struct {
	Coeffs map[string]*big.Rat
	Const  *big.Rat
}

// NewLinear returns the zero linear form.
func NewLinear() *Linear {
	return &Linear{Coeffs: map[string]*big.Rat{}, Const: new(big.Rat)}
}

// Clone returns a deep copy.
func (l *Linear) Clone() *Linear {
	c := &Linear{Coeffs: make(map[string]*big.Rat, len(l.Coeffs)), Const: new(big.Rat).Set(l.Const)}
	for k, v := range l.Coeffs {
		c.Coeffs[k] = new(big.Rat).Set(v)
	}
	return c
}

// AddTerm adds coeff*col to the form.
func (l *Linear) AddTerm(col string, coeff *big.Rat) {
	cur, ok := l.Coeffs[col]
	if !ok {
		cur = new(big.Rat)
		l.Coeffs[col] = cur
	}
	cur.Add(cur, coeff)
	if cur.Sign() == 0 {
		delete(l.Coeffs, col)
	}
}

// AddScaled adds k*o to l in place.
func (l *Linear) AddScaled(o *Linear, k *big.Rat) {
	tmp := new(big.Rat)
	for col, c := range o.Coeffs {
		l.AddTerm(col, tmp.Mul(c, k))
	}
	l.Const.Add(l.Const, tmp.Mul(o.Const, k))
}

// Scale multiplies the form by k in place.
func (l *Linear) Scale(k *big.Rat) {
	if k.Sign() == 0 {
		l.Coeffs = map[string]*big.Rat{}
		l.Const.SetInt64(0)
		return
	}
	for _, c := range l.Coeffs {
		c.Mul(c, k)
	}
	l.Const.Mul(l.Const, k)
}

// IsConst reports whether the form has no column terms.
func (l *Linear) IsConst() bool { return len(l.Coeffs) == 0 }

// Columns returns the sorted column names with non-zero coefficients.
func (l *Linear) Columns() []string {
	cols := make([]string, 0, len(l.Coeffs))
	for c := range l.Coeffs {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

func (l *Linear) String() string {
	var sb strings.Builder
	for i, col := range l.Columns() {
		if i > 0 {
			sb.WriteString(" + ")
		}
		fmt.Fprintf(&sb, "%s*%s", l.Coeffs[col].RatString(), col)
	}
	if sb.Len() == 0 {
		return l.Const.RatString()
	}
	if l.Const.Sign() != 0 {
		fmt.Fprintf(&sb, " + %s", l.Const.RatString())
	}
	return sb.String()
}

// NonLinearError reports that an expression cannot be put in linear form
// because it multiplies or divides column-bearing sub-expressions. The core
// package intercepts this error and retries after substituting a virtual
// column for the offending product (§5.2 of the paper).
type NonLinearError struct {
	// Expr is the offending multiplication or division node.
	Expr Expr
}

func (e *NonLinearError) Error() string {
	return fmt.Sprintf("predicate: non-linear expression %q", e.Expr.String())
}

// Linearize normalizes an expression to linear form. It returns a
// *NonLinearError when two column-bearing forms are multiplied, when a
// division has columns in the divisor, or when dividing by zero.
func Linearize(e Expr) (*Linear, error) {
	switch x := e.(type) {
	case *ColumnRef:
		l := NewLinear()
		l.AddTerm(x.Name, big.NewRat(1, 1))
		return l, nil
	case *Const:
		if x.Val.Null {
			return nil, fmt.Errorf("predicate: cannot linearize NULL constant")
		}
		l := NewLinear()
		if x.Type.Integral() {
			l.Const.SetInt64(x.Val.Int)
		} else {
			r := new(big.Rat)
			if r.SetFloat64(x.Val.Real) == nil {
				return nil, fmt.Errorf("predicate: non-finite constant %v", x.Val.Real)
			}
			l.Const.Set(r)
		}
		return l, nil
	case *BinaryExpr:
		lf, err := Linearize(x.Left)
		if err != nil {
			return nil, err
		}
		rf, err := Linearize(x.Right)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case OpAdd:
			lf.AddScaled(rf, big.NewRat(1, 1))
			return lf, nil
		case OpSub:
			lf.AddScaled(rf, big.NewRat(-1, 1))
			return lf, nil
		case OpMul:
			if rf.IsConst() {
				lf.Scale(rf.Const)
				return lf, nil
			}
			if lf.IsConst() {
				rf.Scale(lf.Const)
				return rf, nil
			}
			return nil, &NonLinearError{Expr: x}
		case OpDiv:
			if !rf.IsConst() {
				return nil, &NonLinearError{Expr: x}
			}
			if rf.Const.Sign() == 0 {
				return nil, fmt.Errorf("predicate: division by zero in %q", x.String())
			}
			lf.Scale(new(big.Rat).Inv(rf.Const))
			return lf, nil
		default:
			panic(fmt.Sprintf("predicate: unknown operator %v", x.Op))
		}
	default:
		panic(fmt.Sprintf("predicate: unknown expression %T", e))
	}
}

// LinearToExpr converts a linear form back to a predicate expression with
// integer coefficients (the form is scaled by the LCM of all denominators
// first; the scale factor is returned so callers can adjust comparison
// constants). Column types are resolved through the schema; a nil schema
// types every column INTEGER.
func LinearToExpr(l *Linear, schema *Schema) (Expr, *big.Int) {
	scale := denominatorLCM(l)
	var e Expr
	tmp := new(big.Rat)
	for _, col := range l.Columns() {
		t := TypeInteger
		if schema != nil {
			if c, ok := schema.Lookup(col); ok {
				t = c.Type
			}
		}
		coeff := new(big.Rat).Mul(l.Coeffs[col], new(big.Rat).SetInt(scale))
		term := monomial(coeff.Num(), Col(col, t))
		if e == nil {
			e = term
		} else if coeff.Sign() < 0 {
			// monomial already carries the sign; still print as addition
			// of the signed term for simplicity.
			e = Add(e, term)
		} else {
			e = Add(e, term)
		}
	}
	c := tmp.Mul(l.Const, new(big.Rat).SetInt(scale))
	if e == nil {
		return IntConst(c.Num().Int64()), scale
	}
	if c.Sign() > 0 {
		e = Add(e, IntConst(c.Num().Int64()))
	} else if c.Sign() < 0 {
		e = Sub(e, IntConst(new(big.Int).Neg(c.Num()).Int64()))
	}
	return e, scale
}

// monomial builds coeff*col with small-integer simplifications.
func monomial(coeff *big.Int, col Expr) Expr {
	switch coeff.Int64() {
	case 1:
		return col
	case -1:
		return Mul(IntConst(-1), col)
	default:
		return Mul(IntConst(coeff.Int64()), col)
	}
}

// denominatorLCM returns the least common multiple of the denominators of
// every coefficient and the constant.
func denominatorLCM(l *Linear) *big.Int {
	lcm := big.NewInt(1)
	acc := func(r *big.Rat) {
		d := r.Denom()
		g := new(big.Int).GCD(nil, nil, lcm, d)
		lcm.Div(lcm, g).Mul(lcm, d)
	}
	for _, c := range l.Coeffs {
		acc(c)
	}
	acc(l.Const)
	return lcm
}
