package predicate

import "testing"

func TestTimestampConversion(t *testing.T) {
	cases := []struct {
		s    string
		want int64
	}{
		{"1992-01-01 00:00:00", 0},
		{"1992-01-01 00:00:01", 1},
		{"1992-01-02 00:00:00", 86400},
		{"1991-12-31 23:59:59", -1},
		{"1992-01-01 12:30:45", 12*3600 + 30*60 + 45},
	}
	for _, c := range cases {
		got, err := ParseTimestamp(c.s)
		if err != nil {
			t.Fatalf("%s: %v", c.s, err)
		}
		if got != c.want {
			t.Errorf("ParseTimestamp(%q) = %d, want %d", c.s, got, c.want)
		}
		if back := FormatTimestamp(c.want); back != c.s {
			t.Errorf("FormatTimestamp(%d) = %q, want %q", c.want, back, c.s)
		}
	}
	for _, bad := range []string{"nope", "1992-13-01 00:00:00", "1992-01-01 25:00:00"} {
		if _, err := ParseTimestamp(bad); err == nil {
			t.Errorf("expected error for %q", bad)
		}
	}
}

func TestParseTimestampLiteral(t *testing.T) {
	s := NewSchema(
		Column{Name: "created", Type: TypeTimestamp, NotNull: true},
		Column{Name: "updated", Type: TypeTimestamp, NotNull: true},
	)
	p := mustParse("updated - created < 3600 AND created >= TIMESTAMP '1993-06-01 08:00:00'", s)
	base, _ := ParseTimestamp("1993-06-01 08:30:00")
	tu := Tuple{"created": IntVal(base), "updated": IntVal(base + 1800)}
	if Eval(p, tu) != True {
		t.Fatalf("timestamp predicate should hold: %s", p)
	}
	tu["updated"] = IntVal(base + 7200)
	if Eval(p, tu) != False {
		t.Fatal("gap over an hour should fail")
	}
	// Print/parse round trip preserves semantics.
	back := mustParse(p.String(), s)
	if !Equal(p, back) {
		t.Fatalf("round trip changed structure: %q vs %q", p, back)
	}
}
