package engine

import (
	"fmt"

	"sia/internal/predicate"
)

// ColumnStats is an equi-width histogram over an integral column, the
// classic single-column statistic a cost-based optimizer keeps. The plan
// package uses it to sharpen selectivity estimates beyond the System-R
// constants; Table 4's analysis (selectivity decides whether a synthesized
// predicate pays off) is exactly the decision these statistics inform.
type ColumnStats struct {
	Column   string
	Min, Max int64
	Rows     int
	NullRows int
	Buckets  []int
}

// BuildStats scans one integral column into an equi-width histogram with
// the given bucket count.
func BuildStats(t *Table, col string, buckets int) (*ColumnStats, error) {
	c, ok := t.schema.Lookup(col)
	if !ok || !c.Type.Integral() {
		return nil, fmt.Errorf("engine: stats need an integral column, got %q", col)
	}
	if buckets <= 0 {
		buckets = 32
	}
	cd := t.cols[col]
	s := &ColumnStats{Column: col, Rows: t.nRows}
	first := true
	for row := 0; row < t.nRows; row++ {
		if cd.nulls != nil && cd.nulls[row] {
			s.NullRows++
			continue
		}
		v := cd.ints[row]
		if first {
			s.Min, s.Max = v, v
			first = false
			continue
		}
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	if first {
		// All NULL (or empty): a single empty bucket.
		s.Buckets = make([]int, 1)
		return s, nil
	}
	s.Buckets = make([]int, buckets)
	span := s.Max - s.Min + 1
	for row := 0; row < t.nRows; row++ {
		if cd.nulls != nil && cd.nulls[row] {
			continue
		}
		v := cd.ints[row]
		idx := int(int64(buckets) * (v - s.Min) / span)
		if idx >= buckets {
			idx = buckets - 1
		}
		s.Buckets[idx]++
	}
	return s, nil
}

// bucketWidth returns the (rational) width of each bucket.
func (s *ColumnStats) bucketWidth() float64 {
	return float64(s.Max-s.Min+1) / float64(len(s.Buckets))
}

// SelectivityLE estimates P(col <= v) among non-NULL rows, interpolating
// linearly within the boundary bucket.
func (s *ColumnStats) SelectivityLE(v int64) float64 {
	nonNull := s.Rows - s.NullRows
	if nonNull == 0 {
		return 0
	}
	if v < s.Min {
		return 0
	}
	if v >= s.Max {
		return 1
	}
	w := s.bucketWidth()
	pos := float64(v-s.Min+1) / w
	full := int(pos)
	frac := pos - float64(full)
	count := 0.0
	for i := 0; i < full && i < len(s.Buckets); i++ {
		count += float64(s.Buckets[i])
	}
	if full < len(s.Buckets) {
		count += frac * float64(s.Buckets[full])
	}
	return count / float64(nonNull)
}

// SelectivityRange estimates P(lo <= col <= hi) among non-NULL rows.
func (s *ColumnStats) SelectivityRange(lo, hi int64) float64 {
	if hi < lo {
		return 0
	}
	sel := s.SelectivityLE(hi) - s.SelectivityLE(lo-1)
	if sel < 0 {
		return 0
	}
	return sel
}

// EstimateCompare estimates the selectivity of a single-column comparison
// `col op v` using the histogram. Returns ok=false when the comparison is
// about a different column.
func (s *ColumnStats) EstimateCompare(op predicate.CmpOp, col string, v int64) (float64, bool) {
	if col != s.Column {
		return 0, false
	}
	switch op {
	case predicate.CmpLE:
		return s.SelectivityLE(v), true
	case predicate.CmpLT:
		return s.SelectivityLE(v - 1), true
	case predicate.CmpGE:
		return 1 - s.SelectivityLE(v-1), true
	case predicate.CmpGT:
		return 1 - s.SelectivityLE(v), true
	case predicate.CmpEQ:
		return s.SelectivityRange(v, v), true
	case predicate.CmpNE:
		return 1 - s.SelectivityRange(v, v), true
	default:
		return 0, false
	}
}
