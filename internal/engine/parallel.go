// Morsel-driven parallel execution. The scheduler splits an operator's row
// space into fixed-size morsels that a pool of workers claims off a shared
// atomic counter — the classic morsel-driven design: static partitioning
// would idle workers behind a skewed morsel, while per-row work stealing
// would drown the operators in synchronization. Every parallel operator in
// this package is written so its output is byte-identical to the serial
// engine at any worker count: workers either write disjoint row ranges of a
// preallocated output, or produce per-morsel/per-worker state that is
// stitched back in a deterministic order.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// morselRows is the scheduler's unit of work. Large enough that the atomic
// claim is noise against the per-row work, small enough that a selective
// filter still load-balances across workers.
const morselRows = 4096

// DefaultParallelism is the worker count used when a caller passes a
// non-positive parallelism: one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// normalizeParallelism clamps a requested worker count to something useful
// for n rows: non-positive means DefaultParallelism, and there is no point
// running more workers than there are morsels.
func normalizeParallelism(par, n int) int {
	if par <= 0 {
		par = DefaultParallelism()
	}
	if m := morselCount(n); par > m {
		par = m
	}
	if par < 1 {
		par = 1
	}
	return par
}

// morselCount returns the number of morsels covering n rows.
func morselCount(n int) int { return (n + morselRows - 1) / morselRows }

// forEachMorsel runs fn over every morsel of [0, n) on par workers. fn
// receives the claiming worker's id in [0, par'), the morsel's index, and
// the row range [lo, hi). With one worker (or few rows) everything runs
// inline on the calling goroutine in ascending morsel order; with more,
// workers claim morsels from a shared counter, so fn must only touch state
// owned by its row range, its morsel slot, or its worker id. The normalized
// worker count is returned so callers can size per-worker state; it is
// stable for a given (par, n) regardless of scheduling.
func forEachMorsel(n, par int, fn func(worker, morsel, lo, hi int)) int {
	par = normalizeParallelism(par, n)
	morsels := morselCount(n)
	mMorselsScheduled.Add(uint64(morsels))
	if par == 1 {
		for m := 0; m < morsels; m++ {
			lo, hi := morselBounds(m, n)
			fn(0, m, lo, hi)
		}
		return par
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// cancel: claim loop; the shared counter only grows, so each
			// worker exits after at most `morsels` claims. Cancellation is
			// the caller's business at morsel granularity, not per claim.
			for {
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				lo, hi := morselBounds(m, n)
				fn(worker, m, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	return par
}

// morselBounds returns morsel m's row range within [0, n).
func morselBounds(m, n int) (lo, hi int) {
	lo = m * morselRows
	hi = lo + morselRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// forEachTask runs fn(0) … fn(n-1) on up to par workers. Used for coarse
// task parallelism (e.g. one task per join partition) where the tasks are
// few and already balanced.
func forEachTask(n, par int, fn func(task int)) {
	if par <= 0 {
		par = DefaultParallelism()
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// cancel: claim loop bounded by the task count, as above.
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// mixHash finalizes a 64-bit key into a well-distributed hash (the
// splitmix64 finalizer). Join partitioning must not use the raw key: TPC-H
// keys are sequential, and k % P would send entire key ranges to one
// partition's worker.
func mixHash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
