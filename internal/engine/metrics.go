package engine

import (
	"time"

	"sia/internal/obs"
)

// Process-wide engine metrics in the Default registry. The morsel counter
// is the morsel-driven scheduler's unit of work (§2 of the morsel-driven
// parallelism design in parallel.go); the row counters make filter
// selectivity — the quantity Sia's learned predicates exist to improve —
// directly observable as kept/scanned.
var (
	mMorselsScheduled = obs.Default().Counter("sia_engine_morsels_scheduled_total",
		"Morsels dispatched by the parallel scheduler.")
	mRowsScanned = obs.Default().Counter("sia_engine_rows_scanned_total",
		"Rows evaluated by filter operators.")
	mRowsKept = obs.Default().Counter("sia_engine_rows_kept_total",
		"Rows accepted by filter operators.")

	mOperatorSeconds = func() map[string]*obs.Histogram {
		m := map[string]*obs.Histogram{}
		for _, op := range []string{opFilter, opJoin, opAggregate, opProject} {
			m[op] = obs.Default().Histogram("sia_engine_operator_seconds",
				"Wall time of engine operator invocations, by operator.",
				obs.DurationBuckets(), obs.Label{Key: "op", Value: op})
		}
		return m
	}()
)

// Operator names for the sia_engine_operator_seconds histogram.
const (
	opFilter    = "filter"
	opJoin      = "join"
	opAggregate = "aggregate"
	opProject   = "project"
)

// observeOp records one operator invocation's wall time; used as
// `defer observeOp(op, time.Now())`.
func observeOp(op string, start time.Time) {
	mOperatorSeconds[op].Observe(time.Since(start).Seconds())
}
