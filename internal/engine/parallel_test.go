package engine

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"sia/internal/predicate"
	"sia/internal/predtest"
)

// equalTables reports whether two tables are byte-identical: same schema
// (order, types, nullability), same row count, and identical backing
// arrays including null bitmaps.
func equalTables(a, b *Table) error {
	ac, bc := a.schema.Columns(), b.schema.Columns()
	if len(ac) != len(bc) {
		return fmt.Errorf("schema width %d vs %d", len(ac), len(bc))
	}
	for i := range ac {
		if ac[i] != bc[i] {
			return fmt.Errorf("schema column %d: %+v vs %+v", i, ac[i], bc[i])
		}
	}
	if a.nRows != b.nRows {
		return fmt.Errorf("rows %d vs %d", a.nRows, b.nRows)
	}
	for _, name := range a.order {
		x, y := a.cols[name], b.cols[name]
		if (x.nulls == nil) != (y.nulls == nil) {
			return fmt.Errorf("column %s: null bitmap presence differs", name)
		}
		for i := 0; i < a.nRows; i++ {
			if x.nulls != nil && x.nulls[i] != y.nulls[i] {
				return fmt.Errorf("column %s row %d: null %v vs %v", name, i, x.nulls[i], y.nulls[i])
			}
			if x.typ.Integral() {
				if x.ints[i] != y.ints[i] {
					return fmt.Errorf("column %s row %d: %d vs %d", name, i, x.ints[i], y.ints[i])
				}
			} else if x.reals[i] != y.reals[i] {
				return fmt.Errorf("column %s row %d: %g vs %g", name, i, x.reals[i], y.reals[i])
			}
		}
	}
	return nil
}

// parLevels are the worker counts the determinism property is checked at:
// serial, two workers, an odd count that does not divide the morsel count,
// and whatever the host really has.
func parLevels() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// randomTable builds a table big enough to span many morsels, with NOT
// NULL and nullable integral columns.
func randomTable(r *rand.Rand, name string, rows int) *Table {
	s := predicate.NewSchema(
		predicate.Column{Name: name + "k", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: name + "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: name + "b", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: name + "n", Type: predicate.TypeInteger},
	)
	t := NewTable(name, s)
	for i := 0; i < rows; i++ {
		nv := predicate.IntVal(int64(r.Intn(50) - 25))
		if r.Intn(5) == 0 {
			nv = predicate.NullValue()
		}
		t.AppendRow(
			predicate.IntVal(int64(r.Intn(rows/3+1))),
			predicate.IntVal(int64(r.Intn(200)-100)),
			predicate.IntVal(int64(r.Intn(200)-100)),
			nv,
		)
	}
	return t
}

func TestParallelSelectionAndFilterMatchSerial(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tab := randomTable(r, "t", 3*morselRows+123)
	s := tab.Schema()
	preds := []string{
		// Vectorized shapes.
		"ta < 5",
		"ta - tb <= 7 AND tb > -50",
		"2*ta - 3*tb >= tk - 7",
		"ta = tb",
		// Per-row compiled fallback shapes.
		"ta < 5 OR tb > 10",
		"NOT (ta - tb < 7)",
		"ta * tb > 0",
		// Nullable column: tuple-at-a-time 3VL fallback.
		"tn > 0",
		"tn > 0 OR ta < -90",
	}
	for _, src := range preds {
		p := predtest.MustParse(src, s)
		refSel := Selection(tab, p)
		refTab := Filter(tab, p)
		for _, par := range parLevels() {
			sel := SelectionPar(tab, p, par)
			for i := range refSel {
				if sel[i] != refSel[i] {
					t.Fatalf("%s par=%d: bitmap differs at row %d", src, par, i)
				}
			}
			if err := equalTables(refTab, FilterPar(tab, p, par)); err != nil {
				t.Fatalf("%s par=%d: filter differs: %v", src, par, err)
			}
		}
	}
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	l := randomTable(r, "l", 3*morselRows+55)
	rt := randomTable(r, "r", 2*morselRows+301)
	lp := predtest.MustParse("la - lb < 40", l.Schema())
	rp := predtest.MustParse("ra > -60", rt.Schema())
	for _, preds := range []struct{ lp, rp predicate.Predicate }{
		{nil, nil},
		{lp, nil},
		{lp, rp},
	} {
		ref, refStats, err := HashJoinWhere(l, rt, "lk", "rk", preds.lp, preds.rp)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parLevels() {
			out, stats, err := HashJoinWherePar(l, rt, "lk", "rk", preds.lp, preds.rp, par)
			if err != nil {
				t.Fatal(err)
			}
			if stats != refStats {
				t.Fatalf("par=%d: stats %+v vs %+v", par, stats, refStats)
			}
			if err := equalTables(ref, out); err != nil {
				t.Fatalf("par=%d: join differs: %v", par, err)
			}
		}
	}
	// Flip which side builds: the small side of the pair above probes.
	ref, _, err := HashJoinWhere(rt, l, "rk", "lk", rp, lp)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range parLevels() {
		out, _, err := HashJoinWherePar(rt, l, "rk", "lk", rp, lp, par)
		if err != nil {
			t.Fatal(err)
		}
		if err := equalTables(ref, out); err != nil {
			t.Fatalf("par=%d flipped: join differs: %v", par, err)
		}
	}
}

func TestParallelAggregateMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	tab := randomTable(r, "t", 4*morselRows+77)
	cases := []struct {
		groupBy []string
		aggs    []AggSpec
	}{
		{nil, []AggSpec{{Func: AggCount, As: "n"}, {Func: AggSum, Col: "ta", As: "s"}}},
		{[]string{"tk"}, []AggSpec{
			{Func: AggCount, As: "n"},
			{Func: AggSum, Col: "tn", As: "s"},
			{Func: AggMin, Col: "tn", As: "lo"},
			{Func: AggMax, Col: "ta", As: "hi"},
		}},
		// Nullable group key: NULLs form one group.
		{[]string{"tn"}, []AggSpec{{Func: AggCount, As: "n"}, {Func: AggMax, Col: "tb", As: "hi"}}},
		{[]string{"tk", "tn"}, []AggSpec{{Func: AggSum, Col: "tb", As: "s"}}},
	}
	for ci, c := range cases {
		ref, err := Aggregate(tab, c.groupBy, c.aggs)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range parLevels() {
			out, err := AggregatePar(tab, c.groupBy, c.aggs, par)
			if err != nil {
				t.Fatal(err)
			}
			if err := equalTables(ref, out); err != nil {
				t.Fatalf("case %d par=%d: aggregate differs: %v", ci, par, err)
			}
		}
	}
}

func TestParallelProjectMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tab := randomTable(r, "t", 2*morselRows+9)
	ref, err := Project(tab, []string{"tn", "ta"})
	if err != nil {
		t.Fatal(err)
	}
	// Projection must preserve values, nulls, and column order.
	if got := ref.Schema().Columns()[0].Name; got != "tn" {
		t.Fatalf("projection reordered columns: %s", got)
	}
	for _, par := range parLevels() {
		out, err := ProjectPar(tab, []string{"tn", "ta"}, par)
		if err != nil {
			t.Fatal(err)
		}
		if err := equalTables(ref, out); err != nil {
			t.Fatalf("par=%d: projection differs: %v", par, err)
		}
	}
	if _, err := ProjectPar(tab, []string{"nope"}, 2); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestAggregateNullSemantics(t *testing.T) {
	s := predicate.NewSchema(
		predicate.Column{Name: "g", Type: predicate.TypeInteger},
		predicate.Column{Name: "v", Type: predicate.TypeInteger},
	)
	tab := NewTable("t", s)
	iv := predicate.IntVal
	null := predicate.NullValue()
	for _, row := range [][2]predicate.Value{
		{iv(1), iv(10)},
		{iv(1), null},
		{iv(2), null},
		{null, iv(5)},
		{null, null},
		{iv(2), null},
	} {
		tab.AppendRow(row[0], row[1])
	}
	out, err := Aggregate(tab, []string{"g"}, []AggSpec{
		{Func: AggCount, As: "n"},
		{Func: AggSum, Col: "v", As: "s"},
		{Func: AggMin, Col: "v", As: "lo"},
		{Func: AggMax, Col: "v", As: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("groups: %d, want 3 (1, 2, NULL)", out.NumRows())
	}
	// Aggregate outputs over a nullable input must be nullable.
	if c, _ := out.Schema().Lookup("s"); c.NotNull {
		t.Fatal("SUM over a nullable column must be nullable")
	}
	if c, _ := out.Schema().Lookup("n"); !c.NotNull {
		t.Fatal("COUNT(*) is never NULL")
	}
	check := func(row int, g predicate.Value, n int64, s, lo, hi predicate.Value) {
		t.Helper()
		tu := out.Tuple(row)
		if tu["g"] != g || tu["n"].Int != n || tu["s"] != s || tu["lo"] != lo || tu["hi"] != hi {
			t.Fatalf("row %d = %v, want g=%v n=%d s=%v lo=%v hi=%v", row, tu, g, n, s, lo, hi)
		}
	}
	// First-appearance order: group 1, group 2, the NULL group. COUNT(*)
	// counts every row; SUM/MIN/MAX skip NULL inputs and are NULL when no
	// non-NULL input exists.
	check(0, iv(1), 2, iv(10), iv(10), iv(10))
	check(1, iv(2), 2, null, null, null)
	check(2, null, 2, iv(5), iv(5), iv(5))

	// MIN must not clamp against the 0 stored under a NULL: {NULL, 5} → 5.
	clamp := NewTable("c", s)
	clamp.AppendRow(iv(1), null)
	clamp.AppendRow(iv(1), iv(5))
	out, err = Aggregate(clamp, []string{"g"}, []AggSpec{{Func: AggMin, Col: "v", As: "lo"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Value(0, "lo"); got.Null || got.Int != 5 {
		t.Fatalf("MIN with a NULL input = %v, want 5", got)
	}

	if _, err := Aggregate(tab, []string{"g"}, []AggSpec{{Func: AggSum, Col: "missing", As: "s"}}); err == nil {
		t.Fatal("unknown aggregate input column should error")
	}
}

func TestVectorizedOverflowBoundary(t *testing.T) {
	s := predicate.NewSchema(predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true})

	// Safe boundary: |a| = (MaxInt64-1)/2, so the bound for a+a (plus the
	// guard's one-unit slack) is exactly MaxInt64 — the fast path must
	// still engage, and must be correct.
	edge := int64((math.MaxInt64 - 1) / 2)
	safe := NewTable("s", s)
	for _, v := range []int64{edge, -edge, 0, 1} {
		safe.AppendRow(predicate.IntVal(v))
	}
	p := predtest.MustParse("a + a < 0", s)
	if _, ok := compileVectorized(safe, p); !ok {
		t.Fatal("boundary-safe comparison should vectorize")
	}
	want := []bool{false, true, false, false}
	for i, got := range Selection(safe, p) {
		if got != want[i] {
			t.Fatalf("safe row %d: got %v want %v", i, got, want[i])
		}
	}

	// One past the boundary: a = 2^62 makes a+a wrap to MinInt64, which the
	// naive kernel would accept as < 0. The guard must reject vectorization
	// and the slow path must reject every row (2^63 > 0).
	big := NewTable("b", s)
	for _, v := range []int64{1 << 62, (1 << 62) + 5} {
		big.AppendRow(predicate.IntVal(v))
	}
	if _, ok := compileVectorized(big, p); ok {
		t.Fatal("overflowing comparison must not vectorize")
	}
	if cmp, ok := p.(*predicate.Compare); !ok {
		t.Fatalf("parse produced %T", p)
	} else if _, ok := compileFast(p, big); ok {
		t.Fatal("overflowing comparison must not take the compiled fast path")
	} else if _, ok := linearizeCompare(cmp, big); ok {
		t.Fatal("linearizeCompare must refuse an overflowing comparison")
	}
	for i, got := range Selection(big, p) {
		if got {
			t.Fatalf("row %d: 2·2⁶² is positive and must be rejected", i)
		}
	}

	// Large coefficient instead of large values: 4*a with a near 2^61.
	big2 := NewTable("b2", s)
	big2.AppendRow(predicate.IntVal(1 << 61))
	p4 := predtest.MustParse("4*a < 1", s)
	if _, ok := compileVectorized(big2, p4); ok {
		t.Fatal("4·2⁶¹ overflows and must not vectorize")
	}
	if sel := Selection(big2, p4); sel[0] {
		t.Fatal("4·2⁶¹ is positive and must be rejected")
	}

	// The magnitude bound must survive columnar copies (gather carries it),
	// so a filtered subset of an overflow-prone table still refuses the
	// wrapping kernel.
	sub := Filter(big, predtest.MustParse("a >= 0", s))
	if sub.NumRows() != 2 {
		t.Fatalf("filter kept %d rows", sub.NumRows())
	}
	if _, ok := compileVectorized(sub, p); ok {
		t.Fatal("gathered copy lost the overflow guard")
	}
}
