package engine

import (
	"math/rand"
	"testing"

	"sia/internal/predicate"
	"sia/internal/predtest"
)

func TestSelectionMatchesEvalDifferential(t *testing.T) {
	// Property: the vectorized bitmap equals row-at-a-time 3VL evaluation
	// for random predicates over random data — including predicates that
	// force the fallback path (OR, NOT, non-linear).
	r := rand.New(rand.NewSource(99))
	s := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "c", Type: predicate.TypeInteger, NotNull: true},
	)
	tab := NewTable("t", s)
	for i := 0; i < 500; i++ {
		tab.AppendRow(
			predicate.IntVal(int64(r.Intn(61)-30)),
			predicate.IntVal(int64(r.Intn(61)-30)),
			predicate.IntVal(int64(r.Intn(61)-30)),
		)
	}
	exprs := []string{
		// Vectorized shapes.
		"a < 5",
		"a >= -3",
		"a - b < 7",
		"b - a <= 0",
		"2*a - 3*b + c < 10",
		"a = b",
		"a <> c",
		"a - b < 7 AND c > 0 AND a <= 20",
		"(a + b) / 2 < 4",
		// Fallback shapes.
		"a < 5 OR b > 10",
		"NOT (a - b < 7)",
		"a * b > 0",
		"a < 5 AND (b > 0 OR c > 0)",
	}
	for _, src := range exprs {
		p := predtest.MustParse(src, s)
		sel := Selection(tab, p)
		for row := 0; row < tab.NumRows(); row++ {
			want := predicate.Eval(p, tab.Tuple(row)) == predicate.True
			if sel[row] != want {
				t.Fatalf("%s row %d (%v): bitmap %v, eval %v", src, row, tab.Tuple(row), sel[row], want)
			}
		}
	}
}

func TestSelectionNullableFallsBack(t *testing.T) {
	s := predicate.NewSchema(predicate.Column{Name: "x", Type: predicate.TypeInteger})
	tab := NewTable("n", s)
	tab.AppendRow(predicate.IntVal(5))
	tab.AppendRow(predicate.NullValue())
	tab.AppendRow(predicate.IntVal(-5))
	sel := Selection(tab, predtest.MustParse("x > 0", s))
	if !sel[0] || sel[1] || sel[2] {
		t.Fatalf("nullable selection wrong: %v", sel)
	}
}

func TestSelectionLiteralAndEmpty(t *testing.T) {
	s := predicate.NewSchema(predicate.Column{Name: "x", Type: predicate.TypeInteger, NotNull: true})
	tab := NewTable("t", s)
	for i := int64(0); i < 10; i++ {
		tab.AppendRow(predicate.IntVal(i))
	}
	for _, ok := range Selection(tab, predicate.TruePred) {
		if !ok {
			t.Fatal("TRUE literal must select everything")
		}
	}
	for _, ok := range Selection(tab, predicate.FalsePred) {
		if ok {
			t.Fatal("FALSE literal must select nothing")
		}
	}
	empty := NewTable("e", s)
	if got := Selection(empty, predicate.TruePred); len(got) != 0 {
		t.Fatalf("empty table selection length %d", len(got))
	}
}

func BenchmarkSelectionVectorized(b *testing.B) {
	s := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeInteger, NotNull: true},
	)
	tab := NewTable("t", s)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		tab.AppendRow(predicate.IntVal(int64(r.Intn(1000))), predicate.IntVal(int64(r.Intn(1000))))
	}
	p := predtest.MustParse("a - b < 100 AND a < 700", s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Selection(tab, p)
	}
}
