package engine

import (
	"math/rand"
	"testing"

	"sia/internal/predicate"
	"sia/internal/predtest"
)

func smallSchema() *predicate.Schema {
	return predicate.NewSchema(
		predicate.Column{Name: "id", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "v", Type: predicate.TypeInteger, NotNull: true},
	)
}

func buildSmall(t *testing.T, rows [][2]int64) *Table {
	t.Helper()
	tab := NewTable("t", smallSchema())
	for _, r := range rows {
		tab.AppendRow(predicate.IntVal(r[0]), predicate.IntVal(r[1]))
	}
	return tab
}

func TestTableBasics(t *testing.T) {
	tab := buildSmall(t, [][2]int64{{1, 10}, {2, 20}, {3, 30}})
	if tab.NumRows() != 3 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	if v := tab.Value(1, "v"); v.Int != 20 {
		t.Fatalf("Value(1, v) = %+v", v)
	}
	tu := tab.Tuple(2)
	if tu["id"].Int != 3 || tu["v"].Int != 30 {
		t.Fatalf("Tuple(2) = %v", tu)
	}
}

func TestTableNulls(t *testing.T) {
	s := predicate.NewSchema(predicate.Column{Name: "x", Type: predicate.TypeInteger})
	tab := NewTable("n", s)
	tab.AppendRow(predicate.IntVal(5))
	tab.AppendRow(predicate.NullValue())
	if tab.Value(0, "x").Null || tab.Value(1, "x").Int != 0 || !tab.Value(1, "x").Null {
		t.Fatalf("null handling broken: %+v %+v", tab.Value(0, "x"), tab.Value(1, "x"))
	}
	// A NULL into a NOT NULL column panics (programming error).
	nn := NewTable("nn", smallSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NULL in NOT NULL column")
		}
	}()
	nn.AppendRow(predicate.NullValue(), predicate.IntVal(1))
}

func TestFilterFastPath(t *testing.T) {
	tab := buildSmall(t, [][2]int64{{1, 10}, {2, 20}, {3, 30}, {4, 40}})
	s := tab.Schema()
	p := predtest.MustParse("v > 15 AND v < 40", s)
	out := Filter(tab, p)
	if out.NumRows() != 2 {
		t.Fatalf("filter kept %d rows", out.NumRows())
	}
	if out.Value(0, "id").Int != 2 || out.Value(1, "id").Int != 3 {
		t.Fatalf("wrong rows kept")
	}
}

func TestFilterMatchesEvalProperty(t *testing.T) {
	// Property: the compiled fast path agrees with tuple-at-a-time 3VL
	// evaluation on random predicates and data.
	r := rand.New(rand.NewSource(5))
	s := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "c", Type: predicate.TypeInteger, NotNull: true},
	)
	tab := NewTable("p", s)
	for i := 0; i < 300; i++ {
		tab.AppendRow(
			predicate.IntVal(int64(r.Intn(41)-20)),
			predicate.IntVal(int64(r.Intn(41)-20)),
			predicate.IntVal(int64(r.Intn(41)-20)),
		)
	}
	exprs := []string{
		"a + b > c",
		"a - b < 5 AND b > 0 OR c = 0",
		"NOT (a > b) AND c <= a + 1",
		"2*a - 3*b >= c - 7",
		"a = b OR b = c OR a > 10",
	}
	for _, src := range exprs {
		p := predtest.MustParse(src, s)
		out := Filter(tab, p)
		want := 0
		for row := 0; row < tab.NumRows(); row++ {
			if predicate.Eval(p, tab.Tuple(row)) == predicate.True {
				want++
			}
		}
		if out.NumRows() != want {
			t.Fatalf("%s: fast path kept %d rows, slow path %d", src, out.NumRows(), want)
		}
	}
}

func TestFilterSlowPathNulls(t *testing.T) {
	s := predicate.NewSchema(predicate.Column{Name: "x", Type: predicate.TypeInteger})
	tab := NewTable("n", s)
	tab.AppendRow(predicate.IntVal(5))
	tab.AppendRow(predicate.NullValue())
	tab.AppendRow(predicate.IntVal(-5))
	p := predtest.MustParse("x > 0", s)
	out := Filter(tab, p)
	if out.NumRows() != 1 {
		t.Fatalf("NULL must not pass the filter: kept %d", out.NumRows())
	}
	// NOT (x > 0) keeps only -5: NULL stays excluded under 3VL.
	out = Filter(tab, predicate.NewNot(p))
	if out.NumRows() != 1 || out.Value(0, "x").Int != -5 {
		t.Fatalf("3VL negation broken: kept %d", out.NumRows())
	}
}

func TestHashJoin(t *testing.T) {
	l := buildSmall(t, [][2]int64{{1, 10}, {2, 20}, {2, 21}, {3, 30}})
	rs := predicate.NewSchema(
		predicate.Column{Name: "rid", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "w", Type: predicate.TypeInteger, NotNull: true},
	)
	r := NewTable("r", rs)
	for _, row := range [][2]int64{{2, 200}, {3, 300}, {5, 500}} {
		r.AppendRow(predicate.IntVal(row[0]), predicate.IntVal(row[1]))
	}
	out, err := HashJoin(l, r, "id", "rid")
	if err != nil {
		t.Fatal(err)
	}
	// id=2 matches twice, id=3 once: 3 result rows.
	if out.NumRows() != 3 {
		t.Fatalf("join produced %d rows, want 3", out.NumRows())
	}
	for row := 0; row < out.NumRows(); row++ {
		tu := out.Tuple(row)
		if tu["id"].Int != tu["rid"].Int {
			t.Fatalf("join key mismatch in row %v", tu)
		}
	}
}

func TestHashJoinNullKeys(t *testing.T) {
	ls := predicate.NewSchema(predicate.Column{Name: "k", Type: predicate.TypeInteger})
	l := NewTable("l", ls)
	l.AppendRow(predicate.IntVal(1))
	l.AppendRow(predicate.NullValue())
	rs := predicate.NewSchema(predicate.Column{Name: "k2", Type: predicate.TypeInteger})
	r := NewTable("r", rs)
	r.AppendRow(predicate.IntVal(1))
	r.AppendRow(predicate.NullValue())
	out, err := HashJoin(l, r, "k", "k2")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("NULL keys must not join: got %d rows", out.NumRows())
	}
}

func TestHashJoinBuildSideChoice(t *testing.T) {
	// Join output must be identical regardless of which side is smaller.
	big := buildSmall(t, [][2]int64{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}})
	rs := predicate.NewSchema(
		predicate.Column{Name: "rid", Type: predicate.TypeInteger, NotNull: true},
	)
	small := NewTable("r", rs)
	small.AppendRow(predicate.IntVal(3))
	a, err := HashJoin(big, small, "id", "rid")
	if err != nil {
		t.Fatal(err)
	}
	b, err := HashJoin(small, big, "rid", "id")
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 1 || b.NumRows() != 1 {
		t.Fatalf("rows: %d / %d", a.NumRows(), b.NumRows())
	}
	if a.Value(0, "v").Int != 3 || b.Value(0, "v").Int != 3 {
		t.Fatal("column alignment broken when build side flips")
	}
}

func TestProject(t *testing.T) {
	tab := buildSmall(t, [][2]int64{{1, 10}, {2, 20}})
	out, err := Project(tab, []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Schema().Columns()) != 1 || out.Value(1, "v").Int != 20 {
		t.Fatalf("projection broken")
	}
	if _, err := Project(tab, []string{"nope"}); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestAggregate(t *testing.T) {
	tab := buildSmall(t, [][2]int64{{1, 10}, {1, 20}, {2, 5}, {2, 7}, {2, 9}})
	out, err := Aggregate(tab, []string{"id"}, []AggSpec{
		{Func: AggCount, As: "n"},
		{Func: AggSum, Col: "v", As: "s"},
		{Func: AggMin, Col: "v", As: "lo"},
		{Func: AggMax, Col: "v", As: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("groups: %d", out.NumRows())
	}
	row0 := out.Tuple(0)
	if row0["id"].Int != 1 || row0["n"].Int != 2 || row0["s"].Int != 30 || row0["lo"].Int != 10 || row0["hi"].Int != 20 {
		t.Fatalf("group 1 wrong: %v", row0)
	}
	row1 := out.Tuple(1)
	if row1["id"].Int != 2 || row1["n"].Int != 3 || row1["s"].Int != 21 || row1["lo"].Int != 5 || row1["hi"].Int != 9 {
		t.Fatalf("group 2 wrong: %v", row1)
	}
	// Global aggregation (no GROUP BY) yields one row.
	g, err := Aggregate(tab, nil, []AggSpec{{Func: AggCount, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 1 || g.Value(0, "n").Int != 5 {
		t.Fatalf("global count wrong")
	}
}
