// Package engine is the in-memory columnar execution engine Sia's
// evaluation runs on. The paper measures query runtimes on PostgreSQL over
// TPC-H data; this engine is the reproduction's substrate: it executes the
// same logical plans (scan, filter, hash join, aggregation) over columnar
// tables, so the *relative* cost of original vs rewritten plans — which is
// what Fig. 9 and Table 4 report — is preserved.
package engine

import (
	"fmt"

	"sia/internal/predicate"
)

// Table is a named columnar table.
type Table struct {
	Name   string
	schema *predicate.Schema
	nRows  int
	cols   map[string]*colData
	order  []string
}

type colData struct {
	typ   predicate.Type
	ints  []int64
	reals []float64
	nulls []bool // nil when the column is NOT NULL
	// maxAbs is an upper bound on |v| over the stored ints, maintained on
	// append and carried (conservatively) through columnar copies. The
	// compiled filter fast paths use it to prove Σ coefᵢ·colᵢ + k cannot
	// overflow int64 before committing to wrapping machine arithmetic.
	maxAbs uint64
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *predicate.Schema) *Table {
	t := &Table{Name: name, schema: schema, cols: map[string]*colData{}}
	for _, c := range schema.Columns() {
		cd := &colData{typ: c.Type}
		if !c.NotNull {
			cd.nulls = []bool{}
		}
		t.cols[c.Name] = cd
		t.order = append(t.order, c.Name)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *predicate.Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.nRows }

// AppendRow appends one row; vals must follow schema column order.
func (t *Table) AppendRow(vals ...predicate.Value) {
	if len(vals) != len(t.order) {
		panic(fmt.Sprintf("engine: row width %d != schema width %d", len(vals), len(t.order)))
	}
	for i, name := range t.order {
		cd := t.cols[name]
		if vals[i].Null {
			if cd.nulls == nil {
				panic(fmt.Sprintf("engine: NULL in NOT NULL column %s.%s", t.Name, name))
			}
		}
		if cd.nulls != nil {
			cd.nulls = append(cd.nulls, vals[i].Null)
		}
		if cd.typ.Integral() {
			cd.ints = append(cd.ints, vals[i].Int)
			if a := absU64(vals[i].Int); a > cd.maxAbs {
				cd.maxAbs = a
			}
		} else {
			cd.reals = append(cd.reals, vals[i].Real)
		}
	}
	t.nRows++
}

// absU64 returns |v| exactly, including |math.MinInt64| = 2⁶³ which does
// not fit in int64.
func absU64(v int64) uint64 {
	u := uint64(v)
	if v < 0 {
		u = -u
	}
	return u
}

// Value returns the value at (row, col).
func (t *Table) Value(row int, col string) predicate.Value {
	cd, ok := t.cols[col]
	if !ok {
		panic(fmt.Sprintf("engine: unknown column %s.%s", t.Name, col))
	}
	if cd.nulls != nil && cd.nulls[row] {
		return predicate.NullValue()
	}
	if cd.typ.Integral() {
		return predicate.IntVal(cd.ints[row])
	}
	return predicate.RealVal(cd.reals[row])
}

// Ints exposes the raw int64 column for integral columns (used by compiled
// filters and hash joins). The caller must not mutate the slice.
func (t *Table) Ints(col string) []int64 {
	cd := t.cols[col]
	if cd == nil || !cd.typ.Integral() {
		panic(fmt.Sprintf("engine: %s.%s is not an integral column", t.Name, col))
	}
	return cd.ints
}

// Reals exposes the raw float64 column for DOUBLE columns (used by the
// storage codec). The caller must not mutate the slice.
func (t *Table) Reals(col string) []float64 {
	cd := t.cols[col]
	if cd == nil || cd.typ.Integral() {
		panic(fmt.Sprintf("engine: %s.%s is not a DOUBLE column", t.Name, col))
	}
	return cd.reals
}

// Nulls exposes the column's NULL bitmap, or nil for a NOT NULL column
// (used by the storage codec). The caller must not mutate the slice.
func (t *Table) Nulls(col string) []bool {
	cd := t.cols[col]
	if cd == nil {
		panic(fmt.Sprintf("engine: unknown column %s.%s", t.Name, col))
	}
	return cd.nulls
}

// ColumnValues is the bulk columnar form of one column for
// NewTableFromColumns: exactly one of Ints/Reals is set (matching the
// column's type), and Nulls is nil when the column holds no NULLs (it must
// be nil for a NOT NULL column).
type ColumnValues struct {
	Name  string
	Ints  []int64
	Reals []float64
	Nulls []bool
}

// NewTableFromColumns builds a table directly from column arrays — the
// bulk constructor the storage layer's segment decoder uses instead of
// materializing predicate.Values row by row. The slices are adopted, not
// copied: the caller must not mutate them afterwards. Every schema column
// must be present in cols with length nRows; maxAbs overflow bounds are
// recomputed by scanning the adopted arrays.
func NewTableFromColumns(name string, schema *predicate.Schema, nRows int, cols []ColumnValues) (*Table, error) {
	t := NewTable(name, schema)
	byName := make(map[string]*ColumnValues, len(cols))
	for i := range cols {
		byName[cols[i].Name] = &cols[i]
	}
	for _, sc := range schema.Columns() {
		cv, ok := byName[sc.Name]
		if !ok {
			return nil, fmt.Errorf("engine: column %s.%s missing from bulk build", name, sc.Name)
		}
		cd := t.cols[sc.Name]
		if sc.Type.Integral() {
			if len(cv.Ints) != nRows {
				return nil, fmt.Errorf("engine: column %s.%s has %d values, want %d", name, sc.Name, len(cv.Ints), nRows)
			}
			cd.ints = cv.Ints
			for _, v := range cv.Ints {
				if a := absU64(v); a > cd.maxAbs {
					cd.maxAbs = a
				}
			}
		} else {
			if len(cv.Reals) != nRows {
				return nil, fmt.Errorf("engine: column %s.%s has %d values, want %d", name, sc.Name, len(cv.Reals), nRows)
			}
			cd.reals = cv.Reals
		}
		switch {
		case cv.Nulls == nil:
			if cd.nulls != nil {
				cd.nulls = make([]bool, nRows)
			}
		case sc.NotNull:
			return nil, fmt.Errorf("engine: NULL bitmap for NOT NULL column %s.%s", name, sc.Name)
		case len(cv.Nulls) != nRows:
			return nil, fmt.Errorf("engine: column %s.%s has %d null flags, want %d", name, sc.Name, len(cv.Nulls), nRows)
		default:
			cd.nulls = cv.Nulls
		}
	}
	t.nRows = nRows
	return t, nil
}

// ReorderRows returns a copy of t containing rows[i] of t at position i —
// the engine-level gather behind table sorting and slicing. Indices may
// repeat; each must be in [0, NumRows). The copy runs morsel-parallel on
// par workers and is byte-identical at any worker count.
func ReorderRows(t *Table, rows []int, par int) (*Table, error) {
	for _, r := range rows {
		if r < 0 || r >= t.nRows {
			return nil, fmt.Errorf("engine: row index %d out of range [0,%d)", r, t.nRows)
		}
	}
	out := NewTable(t.Name, t.schema)
	out.nRows = len(rows)
	gatherInto(out, t, t.order, rows, par)
	return out, nil
}

// TablesEqual reports whether two tables hold identical data: same column
// names, types and nullability in order, same row count, and identical
// values (NULLs equal NULLs) at every position. The disk-backed read path
// is required to be value-identical to the in-memory engine; this is the
// checker experiments and tests use.
func TablesEqual(a, b *Table) bool {
	ac, bc := a.schema.Columns(), b.schema.Columns()
	if len(ac) != len(bc) || a.nRows != b.nRows {
		return false
	}
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	for _, c := range ac {
		av, bv := a.cols[c.Name], b.cols[c.Name]
		for r := 0; r < a.nRows; r++ {
			an := av.nulls != nil && av.nulls[r]
			bn := bv.nulls != nil && bv.nulls[r]
			if an != bn {
				return false
			}
			if an {
				continue
			}
			if c.Type.Integral() {
				if av.ints[r] != bv.ints[r] {
					return false
				}
			} else if av.reals[r] != bv.reals[r] {
				return false
			}
		}
	}
	return true
}

// Tuple materializes one row as a predicate tuple (slow path, used by tests
// and result inspection).
func (t *Table) Tuple(row int) predicate.Tuple {
	out := predicate.Tuple{}
	for _, name := range t.order {
		out[name] = t.Value(row, name)
	}
	return out
}
