// Package engine is the in-memory columnar execution engine Sia's
// evaluation runs on. The paper measures query runtimes on PostgreSQL over
// TPC-H data; this engine is the reproduction's substrate: it executes the
// same logical plans (scan, filter, hash join, aggregation) over columnar
// tables, so the *relative* cost of original vs rewritten plans — which is
// what Fig. 9 and Table 4 report — is preserved.
package engine

import (
	"fmt"

	"sia/internal/predicate"
)

// Table is a named columnar table.
type Table struct {
	Name   string
	schema *predicate.Schema
	nRows  int
	cols   map[string]*colData
	order  []string
}

type colData struct {
	typ   predicate.Type
	ints  []int64
	reals []float64
	nulls []bool // nil when the column is NOT NULL
	// maxAbs is an upper bound on |v| over the stored ints, maintained on
	// append and carried (conservatively) through columnar copies. The
	// compiled filter fast paths use it to prove Σ coefᵢ·colᵢ + k cannot
	// overflow int64 before committing to wrapping machine arithmetic.
	maxAbs uint64
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *predicate.Schema) *Table {
	t := &Table{Name: name, schema: schema, cols: map[string]*colData{}}
	for _, c := range schema.Columns() {
		cd := &colData{typ: c.Type}
		if !c.NotNull {
			cd.nulls = []bool{}
		}
		t.cols[c.Name] = cd
		t.order = append(t.order, c.Name)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *predicate.Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.nRows }

// AppendRow appends one row; vals must follow schema column order.
func (t *Table) AppendRow(vals ...predicate.Value) {
	if len(vals) != len(t.order) {
		panic(fmt.Sprintf("engine: row width %d != schema width %d", len(vals), len(t.order)))
	}
	for i, name := range t.order {
		cd := t.cols[name]
		if vals[i].Null {
			if cd.nulls == nil {
				panic(fmt.Sprintf("engine: NULL in NOT NULL column %s.%s", t.Name, name))
			}
		}
		if cd.nulls != nil {
			cd.nulls = append(cd.nulls, vals[i].Null)
		}
		if cd.typ.Integral() {
			cd.ints = append(cd.ints, vals[i].Int)
			if a := absU64(vals[i].Int); a > cd.maxAbs {
				cd.maxAbs = a
			}
		} else {
			cd.reals = append(cd.reals, vals[i].Real)
		}
	}
	t.nRows++
}

// absU64 returns |v| exactly, including |math.MinInt64| = 2⁶³ which does
// not fit in int64.
func absU64(v int64) uint64 {
	u := uint64(v)
	if v < 0 {
		u = -u
	}
	return u
}

// Value returns the value at (row, col).
func (t *Table) Value(row int, col string) predicate.Value {
	cd, ok := t.cols[col]
	if !ok {
		panic(fmt.Sprintf("engine: unknown column %s.%s", t.Name, col))
	}
	if cd.nulls != nil && cd.nulls[row] {
		return predicate.NullValue()
	}
	if cd.typ.Integral() {
		return predicate.IntVal(cd.ints[row])
	}
	return predicate.RealVal(cd.reals[row])
}

// Ints exposes the raw int64 column for integral columns (used by compiled
// filters and hash joins). The caller must not mutate the slice.
func (t *Table) Ints(col string) []int64 {
	cd := t.cols[col]
	if cd == nil || !cd.typ.Integral() {
		panic(fmt.Sprintf("engine: %s.%s is not an integral column", t.Name, col))
	}
	return cd.ints
}

// Tuple materializes one row as a predicate tuple (slow path, used by tests
// and result inspection).
func (t *Table) Tuple(row int) predicate.Tuple {
	out := predicate.Tuple{}
	for _, name := range t.order {
		out[name] = t.Value(row, name)
	}
	return out
}
