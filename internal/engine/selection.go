package engine

import (
	"math/big"

	"sia/internal/predicate"
)

// Selection evaluates a predicate over every row of t and returns the
// acceptance bitmap. Conjunctions of linear integer comparisons are
// evaluated column-at-a-time in tight loops over the backing arrays — no
// per-row closure calls — which makes a pushed-down filter an order of
// magnitude cheaper than a hash probe, the cost relationship predicate
// pushdown relies on. Anything outside that shape falls back to the
// compiled per-row path.
func Selection(t *Table, p predicate.Predicate) []bool {
	sel := make([]bool, t.nRows)
	for i := range sel {
		sel[i] = true
	}
	if applyVectorized(t, p, sel) {
		return sel
	}
	accept := CompilePredicate(p, t)
	for i := range sel {
		sel[i] = accept(i)
	}
	return sel
}

// applyVectorized ANDs p's acceptance into sel column-at-a-time. Returns
// false when p is outside the vectorizable fragment (sel is then garbage
// and the caller must fall back).
func applyVectorized(t *Table, p predicate.Predicate, sel []bool) bool {
	switch x := p.(type) {
	case *predicate.And:
		for _, q := range x.Preds {
			if !applyVectorized(t, q, sel) {
				return false
			}
		}
		return true
	case *predicate.Literal:
		if !x.B {
			for i := range sel {
				sel[i] = false
			}
		}
		return true
	case *predicate.Compare:
		return applyCompare(t, x, sel)
	default:
		return false
	}
}

// applyCompare vectorizes one linear integer comparison. The comparison is
// normalized so only three loop shapes exist: Σ + k < 0 (after negating
// coefficients for > and widening constants for the non-strict forms over
// integers), Σ + k = 0, and Σ + k ≠ 0.
func applyCompare(t *Table, x *predicate.Compare, sel []bool) bool {
	lin, err := predicate.Linearize(predicate.Sub(x.Left, x.Right))
	if err != nil {
		return false
	}
	lcm := int64(1)
	for _, col := range lin.Columns() {
		d := lin.Coeffs[col].Denom()
		if !d.IsInt64() {
			return false
		}
		lcm = lcmInt64(lcm, d.Int64())
	}
	if d := lin.Const.Denom(); !d.IsInt64() {
		return false
	} else {
		lcm = lcmInt64(lcm, d.Int64())
	}
	if lcm <= 0 || lcm > 1<<20 {
		return false
	}
	lin.Scale(ratFromInt(lcm))

	op := x.Op
	// Normalize > and >= to < and <= by negating the whole term.
	if op == predicate.CmpGT || op == predicate.CmpGE {
		lin.Scale(big.NewRat(-1, 1))
		op = op.Flip()
	}
	var cols [][]int64
	var coefs []int64
	for _, col := range lin.Columns() {
		c, ok := t.schema.Lookup(col)
		if !ok || !c.Type.Integral() || !c.NotNull {
			return false
		}
		coef := lin.Coeffs[col]
		if !coef.IsInt() || !coef.Num().IsInt64() {
			return false
		}
		coefs = append(coefs, coef.Num().Int64())
		cols = append(cols, t.cols[col].ints)
	}
	if !lin.Const.IsInt() || !lin.Const.Num().IsInt64() {
		return false
	}
	k := lin.Const.Num().Int64()
	// Integer tightening: Σ + k <= 0  ==  Σ + k - 1 < 0.
	if op == predicate.CmpLE {
		op = predicate.CmpLT
		k--
	}

	switch op {
	case predicate.CmpLT:
		vectorLT(cols, coefs, k, sel)
	case predicate.CmpEQ:
		vectorEQ(cols, coefs, k, sel, false)
	case predicate.CmpNE:
		vectorEQ(cols, coefs, k, sel, true)
	default:
		return false
	}
	return true
}

// vectorLT ANDs (Σ coefᵢ·colᵢ + k < 0) into sel, with unrolled shapes for
// the one- and two-column cases that dominate pushed-down predicates.
func vectorLT(cols [][]int64, coefs []int64, k int64, sel []bool) {
	switch len(cols) {
	case 0:
		if k >= 0 {
			for i := range sel {
				sel[i] = false
			}
		}
	case 1:
		a := cols[0]
		ca := coefs[0]
		if ca == 1 {
			for i := range sel {
				sel[i] = sel[i] && a[i]+k < 0
			}
		} else if ca == -1 {
			for i := range sel {
				sel[i] = sel[i] && k-a[i] < 0
			}
		} else {
			for i := range sel {
				sel[i] = sel[i] && ca*a[i]+k < 0
			}
		}
	case 2:
		a, b := cols[0], cols[1]
		ca, cb := coefs[0], coefs[1]
		if ca == 1 && cb == -1 {
			for i := range sel {
				sel[i] = sel[i] && a[i]-b[i]+k < 0
			}
		} else if ca == -1 && cb == 1 {
			for i := range sel {
				sel[i] = sel[i] && b[i]-a[i]+k < 0
			}
		} else {
			for i := range sel {
				sel[i] = sel[i] && ca*a[i]+cb*b[i]+k < 0
			}
		}
	default:
		for i := range sel {
			if !sel[i] {
				continue
			}
			s := k
			for j, col := range cols {
				s += coefs[j] * col[i]
			}
			sel[i] = s < 0
		}
	}
}

// vectorEQ ANDs (Σ + k = 0), or its negation, into sel.
func vectorEQ(cols [][]int64, coefs []int64, k int64, sel []bool, negate bool) {
	for i := range sel {
		if !sel[i] {
			continue
		}
		s := k
		for j, col := range cols {
			s += coefs[j] * col[i]
		}
		sel[i] = (s == 0) != negate
	}
}
