package engine

import (
	"math/big"

	"sia/internal/predicate"
)

// Selection evaluates a predicate over every row of t and returns the
// acceptance bitmap, serially. See SelectionPar.
func Selection(t *Table, p predicate.Predicate) []bool {
	return SelectionPar(t, p, 1)
}

// SelectionPar evaluates a predicate over every row of t on par workers
// (par <= 0 means DefaultParallelism) and returns the acceptance bitmap.
// Conjunctions of linear integer comparisons are compiled once into
// column-at-a-time kernels — no per-row closure calls — and then run
// morsel-parallel over disjoint row ranges, which makes a pushed-down
// filter an order of magnitude cheaper than a hash probe, the cost
// relationship predicate pushdown relies on. Anything outside that shape
// falls back to the compiled per-row path, likewise sharded over morsels.
// The bitmap is identical at any worker count: rows are independent and
// each worker writes only its own range.
func SelectionPar(t *Table, p predicate.Predicate, par int) []bool {
	sel := make([]bool, t.nRows)
	if prog, ok := compileVectorized(t, p); ok {
		forEachMorsel(t.nRows, par, func(_, _, lo, hi int) {
			chunk := sel[lo:hi]
			for i := range chunk {
				chunk[i] = true
			}
			prog.run(chunk, lo)
		})
		return sel
	}
	accept := CompilePredicate(p, t)
	forEachMorsel(t.nRows, par, func(_, _, lo, hi int) {
		for i := lo; i < hi; i++ {
			sel[i] = accept(i)
		}
	})
	return sel
}

// vecKernel ANDs one predicate's acceptance into sel, where sel[i]
// corresponds to row lo+i of the table.
type vecKernel func(sel []bool, lo int)

// vecProgram is a conjunction of vectorized kernels compiled against one
// table. Compilation happens once per (predicate, table); running is pure
// over disjoint row ranges, so morsels execute concurrently.
type vecProgram struct {
	kernels []vecKernel
}

// sia:hotpath
func (v *vecProgram) run(sel []bool, lo int) {
	for _, k := range v.kernels {
		// alloc: kernels are closures compiled once per (predicate, table);
		// each writes sel in place and allocates nothing per row
		k(sel, lo)
	}
}

// compileVectorized compiles p into a vecProgram, or reports ok=false when
// p is outside the vectorizable fragment (conjunctions of linear integer
// comparisons over NOT NULL columns whose evaluation provably fits int64).
func compileVectorized(t *Table, p predicate.Predicate) (*vecProgram, bool) {
	prog := &vecProgram{}
	if !prog.compile(t, p) {
		return nil, false
	}
	return prog, true
}

func (v *vecProgram) compile(t *Table, p predicate.Predicate) bool {
	switch x := p.(type) {
	case *predicate.And:
		for _, q := range x.Preds {
			if !v.compile(t, q) {
				return false
			}
		}
		return true
	case *predicate.Literal:
		if !x.B {
			v.kernels = append(v.kernels, func(sel []bool, _ int) {
				for i := range sel {
					sel[i] = false
				}
			})
		}
		return true
	case *predicate.Compare:
		return v.compileCompare(t, x)
	default:
		return false
	}
}

// compileCompare vectorizes one linear integer comparison. The comparison
// is normalized so only three kernel shapes exist: Σ + k < 0 (after
// negating coefficients for > and widening constants for the non-strict
// forms over integers), Σ + k = 0, and Σ + k ≠ 0.
func (v *vecProgram) compileCompare(t *Table, x *predicate.Compare) bool {
	lc, ok := linearizeCompare(x, t)
	if !ok {
		return false
	}
	op := lc.op
	// Normalize > and >= to < and <= by negating the whole term.
	if op == predicate.CmpGT || op == predicate.CmpGE {
		for i := range lc.coefs {
			lc.coefs[i] = -lc.coefs[i]
		}
		lc.k = -lc.k
		op = op.Flip()
	}
	// Integer tightening: Σ + k <= 0  ==  Σ + k - 1 < 0. (linearizeCompare
	// budgets one unit of slack on |k| for exactly this step.)
	if op == predicate.CmpLE {
		op = predicate.CmpLT
		lc.k--
	}
	cols, coefs, k := lc.cols, lc.coefs, lc.k
	switch op {
	case predicate.CmpLT:
		v.kernels = append(v.kernels, func(sel []bool, lo int) {
			vectorLT(cols, coefs, k, sel, lo)
		})
	case predicate.CmpEQ:
		v.kernels = append(v.kernels, func(sel []bool, lo int) {
			vectorEQ(cols, coefs, k, sel, lo, false)
		})
	case predicate.CmpNE:
		v.kernels = append(v.kernels, func(sel []bool, lo int) {
			vectorEQ(cols, coefs, k, sel, lo, true)
		})
	default:
		return false
	}
	return true
}

// linearComparison is a comparison of Σ coefᵢ·colᵢ + k against zero over
// raw int64 column arrays, proven by linearizeCompare not to overflow.
type linearComparison struct {
	cols  [][]int64
	coefs []int64
	k     int64
	op    predicate.CmpOp
}

// linearizeCompare normalizes a comparison of linear integer expressions
// into Σ coefᵢ·colᵢ + k `op` 0 over t's backing arrays. It returns ok=false
// when the comparison is non-linear, references non-integral or nullable
// columns, has fractional coefficients that do not clear into int64, or —
// crucially — when a conservative bound on |k| + Σ |coefᵢ|·max|colᵢ| does
// not fit in int64: the flat multiply-add kernels use wrapping machine
// arithmetic, so large coefficients or column values must bail to the slow
// exact path instead of silently wrapping.
func linearizeCompare(x *predicate.Compare, t *Table) (linearComparison, bool) {
	var lc linearComparison
	lin, err := predicate.Linearize(predicate.Sub(x.Left, x.Right))
	if err != nil {
		return lc, false
	}
	// Clear denominators: scaling by a positive integer preserves every
	// comparison against zero.
	lcm := int64(1)
	for _, col := range lin.Columns() {
		d := lin.Coeffs[col].Denom()
		if !d.IsInt64() {
			return lc, false
		}
		lcm = lcmInt64(lcm, d.Int64())
	}
	if d := lin.Const.Denom(); !d.IsInt64() {
		return lc, false
	} else {
		lcm = lcmInt64(lcm, d.Int64())
	}
	if lcm <= 0 || lcm > 1<<20 {
		return lc, false
	}
	lin.Scale(ratFromInt(lcm))

	// The overflow guard accumulates |k| + Σ |coefᵢ|·max|colᵢ| alongside
	// term extraction: every partial sum of Σ coefᵢ·colᵢ + k is bounded in
	// magnitude by that total, and one extra unit covers the k-1 tightening
	// of <= and the coefficient negation of >/>= (|−k| = |k| except at
	// MinInt64, which the +1 absorbs). Unless the bound fits in int64 the
	// flat multiply-add kernels could silently wrap, so the comparison
	// bails to the slow exact path.
	var bound uint64
	for _, col := range lin.Columns() {
		c, ok := t.schema.Lookup(col)
		if !ok || !c.Type.Integral() || !c.NotNull {
			return lc, false
		}
		coef := lin.Coeffs[col]
		if !coef.IsInt() || !coef.Num().IsInt64() {
			return lc, false
		}
		cv := coef.Num().Int64()
		cd := t.cols[col]
		bound = addBound(bound, mulBound(absU64(cv), cd.maxAbs))
		lc.coefs = append(lc.coefs, cv)
		lc.cols = append(lc.cols, cd.ints)
	}
	if !lin.Const.IsInt() || !lin.Const.Num().IsInt64() {
		return lc, false
	}
	lc.k = lin.Const.Num().Int64()
	lc.op = x.Op
	bound = addBound(bound, addBound(absU64(lc.k), 1))
	if bound > maxInt64U {
		return lc, false
	}
	return lc, true
}

const maxInt64U = uint64(1<<63 - 1)

// addBound adds two magnitude bounds, saturating above int64 range.
func addBound(a, b uint64) uint64 {
	s := a + b
	if s < a || s > maxInt64U {
		return maxInt64U + 1
	}
	return s
}

// mulBound multiplies two magnitude bounds, saturating above int64 range.
func mulBound(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/a != b || p > maxInt64U {
		return maxInt64U + 1
	}
	return p
}

// vectorLT ANDs (Σ coefᵢ·colᵢ + k < 0) into sel for rows [lo, lo+len(sel)),
// with unrolled shapes for the one- and two-column cases that dominate
// pushed-down predicates.
func vectorLT(cols [][]int64, coefs []int64, k int64, sel []bool, lo int) {
	switch len(cols) {
	case 0:
		if k >= 0 {
			for i := range sel {
				sel[i] = false
			}
		}
	case 1:
		a := cols[0][lo:]
		ca := coefs[0]
		if ca == 1 {
			for i := range sel {
				sel[i] = sel[i] && a[i]+k < 0
			}
		} else if ca == -1 {
			for i := range sel {
				sel[i] = sel[i] && k-a[i] < 0
			}
		} else {
			for i := range sel {
				sel[i] = sel[i] && ca*a[i]+k < 0
			}
		}
	case 2:
		a, b := cols[0][lo:], cols[1][lo:]
		ca, cb := coefs[0], coefs[1]
		if ca == 1 && cb == -1 {
			for i := range sel {
				sel[i] = sel[i] && a[i]-b[i]+k < 0
			}
		} else if ca == -1 && cb == 1 {
			for i := range sel {
				sel[i] = sel[i] && b[i]-a[i]+k < 0
			}
		} else {
			for i := range sel {
				sel[i] = sel[i] && ca*a[i]+cb*b[i]+k < 0
			}
		}
	default:
		for i := range sel {
			if !sel[i] {
				continue
			}
			s := k
			for j, col := range cols {
				s += coefs[j] * col[lo+i]
			}
			sel[i] = s < 0
		}
	}
}

// vectorEQ ANDs (Σ + k = 0), or its negation, into sel for rows
// [lo, lo+len(sel)).
func vectorEQ(cols [][]int64, coefs []int64, k int64, sel []bool, lo int, negate bool) {
	for i := range sel {
		if !sel[i] {
			continue
		}
		s := k
		for j, col := range cols {
			s += coefs[j] * col[lo+i]
		}
		sel[i] = (s == 0) != negate
	}
}

// ratFromInt returns v as a big.Rat (helper shared with exec.go).
func ratFromInt(v int64) *big.Rat { return new(big.Rat).SetInt64(v) }
