package engine

import (
	"fmt"
	"sort"
	"time"

	"sia/internal/predicate"
)

// AggFunc is an aggregate function kind.
type AggFunc int

const (
	// AggCount is COUNT(*).
	AggCount AggFunc = iota
	// AggSum is SUM(col).
	AggSum
	// AggMin is MIN(col).
	AggMin
	// AggMax is MAX(col).
	AggMax
)

// AggSpec names one aggregate output.
type AggSpec struct {
	Func AggFunc
	Col  string // ignored for AggCount
	As   string
}

// Aggregate groups t by integral group-by columns and computes the given
// aggregates over integral inputs, serially. See AggregatePar.
func Aggregate(t *Table, groupBy []string, aggs []AggSpec) (*Table, error) {
	return AggregatePar(t, groupBy, aggs, 1)
}

// AggregatePar is Aggregate on par workers (par <= 0 means
// DefaultParallelism). Each worker folds its morsels into a private group
// table keyed by []int64 key tuples (value plus NULL flag per group-by
// column — no string formatting on the hot path); the per-worker tables
// are then merged and the merged groups ordered by the smallest input row
// that produced them, which is exactly the serial engine's
// first-appearance order, so the output is byte-identical at any worker
// count.
//
// SQL semantics: SUM/MIN/MAX skip NULL inputs and return NULL for a group
// with no non-NULL input; COUNT(*) counts every row. NULL group-by keys
// form their own group (all NULLs together, as GROUP BY requires) and are
// emitted as NULL key values.
func AggregatePar(t *Table, groupBy []string, aggs []AggSpec, par int) (*Table, error) {
	defer observeOp(opAggregate, time.Now())
	for _, g := range groupBy {
		c, ok := t.schema.Lookup(g)
		if !ok || !c.Type.Integral() {
			return nil, fmt.Errorf("engine: GROUP BY column %q must be integral", g)
		}
	}
	var outCols []predicate.Column
	for _, g := range groupBy {
		c, _ := t.schema.Lookup(g)
		outCols = append(outCols, c)
	}
	for _, a := range aggs {
		switch a.Func {
		case AggCount:
			outCols = append(outCols, predicate.Column{Name: a.As, Type: predicate.TypeInteger, NotNull: true})
		case AggSum, AggMin, AggMax:
			c, ok := t.schema.Lookup(a.Col)
			if !ok || !c.Type.Integral() {
				return nil, fmt.Errorf("engine: aggregate input column %q must be integral", a.Col)
			}
			// A NOT NULL input can never yield an all-NULL group (every
			// group holds at least one row), so the output stays NOT NULL;
			// a nullable input makes the aggregate nullable.
			outCols = append(outCols, predicate.Column{Name: a.As, Type: predicate.TypeInteger, NotNull: c.NotNull})
		default:
			return nil, fmt.Errorf("engine: unknown aggregate function %d", a.Func)
		}
	}
	out := NewTable(t.Name+"_agg", predicate.NewSchema(outCols...))

	tables := make([]*groupTable, normalizeParallelism(par, t.nRows))
	forEachMorsel(t.nRows, par, func(worker, _, lo, hi int) {
		gt := tables[worker]
		if gt == nil {
			gt = newGroupTable(t, groupBy, aggs)
			tables[worker] = gt
		}
		gt.update(lo, hi)
	})

	// Merge the per-worker tables (worker 0's is the target), then order
	// groups by the smallest row index that produced them — the serial
	// first-appearance order, independent of which worker saw which morsel.
	var merged *groupTable
	for _, gt := range tables {
		if gt == nil {
			continue
		}
		if merged == nil {
			merged = gt
			continue
		}
		merged.absorb(gt)
	}
	if merged == nil {
		return out, nil
	}
	order := make([]int, merged.numGroups())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return merged.firstRow[order[i]] < merged.firstRow[order[j]]
	})
	vals := make([]predicate.Value, 0, len(groupBy)+len(aggs))
	for _, g := range order {
		vals = vals[:0]
		key := merged.key(g)
		for i := range groupBy {
			if key[2*i+1] != 0 {
				vals = append(vals, predicate.NullValue())
			} else {
				vals = append(vals, predicate.IntVal(key[2*i]))
			}
		}
		for i, a := range aggs {
			acc := merged.accs[g*len(aggs)+i]
			switch a.Func {
			case AggCount:
				vals = append(vals, predicate.IntVal(acc))
			default:
				if merged.counts[g*len(aggs)+i] == 0 {
					vals = append(vals, predicate.NullValue())
				} else {
					vals = append(vals, predicate.IntVal(acc))
				}
			}
		}
		out.AppendRow(vals...)
	}
	return out, nil
}

// groupTable is one worker's hash-aggregation state: groups keyed by flat
// []int64 tuples — per group-by column a (value, NULL flag) pair — with
// open hashing over a bucket map and parallel flat accumulator arrays.
type groupTable struct {
	aggs []AggSpec
	keyW int // ints per key tuple: 2 per group-by column

	buckets map[uint64][]int // key-tuple hash → group ids (collision chain)
	keys    []int64          // group g's tuple at [g*keyW, (g+1)*keyW)
	accs    []int64          // group g, aggregate i at g*len(aggs)+i
	counts  []int64          // non-NULL inputs folded into accs[g*len(aggs)+i]
	// firstRow[g] is the smallest input row folded into group g by this
	// worker (after absorb: by any worker). Sorting merged groups on it
	// reproduces the serial first-appearance output order.
	firstRow []int

	keyCols []*colData // backing columns of groupBy, resolved once
	aggCols []*colData // backing columns per aggregate (nil for COUNT)
	keyBuf  []int64
}

func newGroupTable(t *Table, groupBy []string, aggs []AggSpec) *groupTable {
	gt := &groupTable{
		aggs:    aggs,
		keyW:    2 * len(groupBy),
		buckets: map[uint64][]int{},
		keyBuf:  make([]int64, 2*len(groupBy)),
	}
	for _, g := range groupBy {
		gt.keyCols = append(gt.keyCols, t.cols[g])
	}
	for _, a := range aggs {
		if a.Func == AggCount {
			gt.aggCols = append(gt.aggCols, nil)
		} else {
			gt.aggCols = append(gt.aggCols, t.cols[a.Col])
		}
	}
	return gt
}

func (gt *groupTable) numGroups() int { return len(gt.firstRow) }

func (gt *groupTable) key(g int) []int64 { return gt.keys[g*gt.keyW : (g+1)*gt.keyW] }

// update folds rows [lo, hi) of the input table into the group table.
func (gt *groupTable) update(lo, hi int) {
	nAggs := len(gt.aggs)
	for row := lo; row < hi; row++ {
		for i, cd := range gt.keyCols {
			if cd.nulls != nil && cd.nulls[row] {
				gt.keyBuf[2*i] = 0
				gt.keyBuf[2*i+1] = 1
			} else {
				gt.keyBuf[2*i] = cd.ints[row]
				gt.keyBuf[2*i+1] = 0
			}
		}
		g := gt.lookup(gt.keyBuf, row)
		if row < gt.firstRow[g] {
			gt.firstRow[g] = row
		}
		for i, a := range gt.aggs {
			slot := g*nAggs + i
			switch a.Func {
			case AggCount:
				gt.accs[slot]++
				continue
			default:
			}
			cd := gt.aggCols[i]
			if cd.nulls != nil && cd.nulls[row] {
				continue // SQL: NULL inputs never contribute to SUM/MIN/MAX
			}
			v := cd.ints[row]
			switch a.Func {
			case AggSum:
				gt.accs[slot] += v
			case AggMin:
				if gt.counts[slot] == 0 || v < gt.accs[slot] {
					gt.accs[slot] = v
				}
			case AggMax:
				if gt.counts[slot] == 0 || v > gt.accs[slot] {
					gt.accs[slot] = v
				}
			}
			gt.counts[slot]++
		}
	}
}

// lookup returns the group id for the key tuple, creating the group (with
// firstRow seeded from row) when it is new.
func (gt *groupTable) lookup(key []int64, row int) int {
	h := hashKey(key)
	for _, g := range gt.buckets[h] {
		if keyEq(gt.key(g), key) {
			return g
		}
	}
	g := gt.numGroups()
	gt.buckets[h] = append(gt.buckets[h], g)
	gt.keys = append(gt.keys, key...)
	gt.accs = append(gt.accs, make([]int64, len(gt.aggs))...)
	gt.counts = append(gt.counts, make([]int64, len(gt.aggs))...)
	gt.firstRow = append(gt.firstRow, row)
	return g
}

// absorb merges another worker's group table into gt: accumulators combine
// per aggregate kind, and firstRow keeps the global minimum.
func (gt *groupTable) absorb(o *groupTable) {
	nAggs := len(gt.aggs)
	for og := 0; og < o.numGroups(); og++ {
		g := gt.lookup(o.key(og), o.firstRow[og])
		if o.firstRow[og] < gt.firstRow[g] {
			gt.firstRow[g] = o.firstRow[og]
		}
		for i, a := range gt.aggs {
			dst, src := g*nAggs+i, og*nAggs+i
			switch a.Func {
			case AggCount, AggSum:
				gt.accs[dst] += o.accs[src]
			case AggMin:
				if o.counts[src] > 0 && (gt.counts[dst] == 0 || o.accs[src] < gt.accs[dst]) {
					gt.accs[dst] = o.accs[src]
				}
			case AggMax:
				if o.counts[src] > 0 && (gt.counts[dst] == 0 || o.accs[src] > gt.accs[dst]) {
					gt.accs[dst] = o.accs[src]
				}
			}
			gt.counts[dst] += o.counts[src]
		}
	}
}

// hashKey hashes a flat key tuple by mixing each element into a running
// 64-bit state.
func hashKey(key []int64) uint64 {
	h := uint64(len(key))
	for _, k := range key {
		h = mixHash(h ^ uint64(k))
	}
	return h
}

func keyEq(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
