package engine

import (
	"math"
	"math/rand"
	"testing"

	"sia/internal/predicate"
)

func statsTable(t *testing.T, vals []int64) *Table {
	t.Helper()
	s := predicate.NewSchema(predicate.Column{Name: "v", Type: predicate.TypeInteger, NotNull: true})
	tab := NewTable("t", s)
	for _, v := range vals {
		tab.AppendRow(predicate.IntVal(v))
	}
	return tab
}

func TestBuildStatsBasics(t *testing.T) {
	tab := statsTable(t, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	st, err := BuildStats(tab, "v", 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Min != 1 || st.Max != 10 || st.Rows != 10 {
		t.Fatalf("bounds wrong: %+v", st)
	}
	total := 0
	for _, b := range st.Buckets {
		total += b
	}
	if total != 10 {
		t.Fatalf("buckets lose rows: %d", total)
	}
	if got := st.SelectivityLE(10); got != 1 {
		t.Fatalf("P(v<=max) = %f", got)
	}
	if got := st.SelectivityLE(0); got != 0 {
		t.Fatalf("P(v<=min-1) = %f", got)
	}
	if got := st.SelectivityLE(5); math.Abs(got-0.5) > 0.11 {
		t.Fatalf("P(v<=5) = %f, want ~0.5", got)
	}
}

func TestStatsAccuracyOnUniformData(t *testing.T) {
	// Property: on uniform data the histogram estimate tracks the true
	// selectivity within a bucket's width.
	r := rand.New(rand.NewSource(7))
	var vals []int64
	for i := 0; i < 20000; i++ {
		vals = append(vals, int64(r.Intn(1000)))
	}
	tab := statsTable(t, vals)
	st, err := BuildStats(tab, "v", 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{100, 250, 500, 900} {
		truth := 0
		for _, x := range vals {
			if x <= v {
				truth++
			}
		}
		trueSel := float64(truth) / float64(len(vals))
		est := st.SelectivityLE(v)
		if math.Abs(est-trueSel) > 0.03 {
			t.Fatalf("P(v<=%d): est %f vs true %f", v, est, trueSel)
		}
	}
}

func TestStatsEstimateCompare(t *testing.T) {
	var vals []int64
	for i := int64(0); i < 1000; i++ {
		vals = append(vals, i)
	}
	tab := statsTable(t, vals)
	st, err := BuildStats(tab, "v", 20)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		op   predicate.CmpOp
		v    int64
		want float64
	}{
		{predicate.CmpLT, 500, 0.5},
		{predicate.CmpLE, 499, 0.5},
		{predicate.CmpGE, 500, 0.5},
		{predicate.CmpGT, 899, 0.1},
	}
	for _, c := range cases {
		got, ok := st.EstimateCompare(c.op, "v", c.v)
		if !ok {
			t.Fatalf("estimate for own column refused")
		}
		if math.Abs(got-c.want) > 0.03 {
			t.Errorf("op %v %d: est %f, want ~%f", c.op, c.v, got, c.want)
		}
	}
	if _, ok := st.EstimateCompare(predicate.CmpLT, "other", 1); ok {
		t.Fatal("estimate for a different column must refuse")
	}
	eq, _ := st.EstimateCompare(predicate.CmpEQ, "v", 500)
	ne, _ := st.EstimateCompare(predicate.CmpNE, "v", 500)
	if math.Abs(eq+ne-1) > 1e-9 {
		t.Fatalf("EQ + NE should sum to 1: %f + %f", eq, ne)
	}
}

func TestStatsNullsAndEmpty(t *testing.T) {
	s := predicate.NewSchema(predicate.Column{Name: "x", Type: predicate.TypeInteger})
	tab := NewTable("n", s)
	tab.AppendRow(predicate.IntVal(5))
	tab.AppendRow(predicate.NullValue())
	st, err := BuildStats(tab, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.NullRows != 1 {
		t.Fatalf("null count %d", st.NullRows)
	}
	if got := st.SelectivityLE(5); got != 1 {
		t.Fatalf("single-value selectivity = %f", got)
	}
	empty := NewTable("e", s)
	st, err = BuildStats(empty, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.SelectivityLE(100); got != 0 {
		t.Fatalf("empty-table selectivity = %f", got)
	}
	// Non-integral column refuses.
	ds := predicate.NewSchema(predicate.Column{Name: "d", Type: predicate.TypeDouble, NotNull: true})
	dt := NewTable("d", ds)
	if _, err := BuildStats(dt, "d", 4); err == nil {
		t.Fatal("double column should refuse histogram build")
	}
}
