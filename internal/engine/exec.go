package engine

import (
	"fmt"
	"math/big"

	"sia/internal/predicate"
)

// CompilePredicate compiles a predicate into a per-row acceptance function
// for the table. When every referenced column is integral and NOT NULL and
// the predicate is division-free, the compiled form evaluates directly over
// the raw column arrays; otherwise it falls back to tuple materialization
// with full three-valued evaluation. Both paths accept a row exactly when
// the predicate evaluates to TRUE.
func CompilePredicate(p predicate.Predicate, t *Table) func(row int) bool {
	if fn, ok := compileFast(p, t); ok {
		return fn
	}
	return func(row int) bool {
		// tribool: WHERE semantics — a row is accepted exactly when the
		// predicate is True; Unknown rejects like False.
		return predicate.Eval(p, t.Tuple(row)) == predicate.True
	}
}

type intExpr func(row int) int64

func compileFastExpr(e predicate.Expr, t *Table) (intExpr, bool) {
	switch x := e.(type) {
	case *predicate.ColumnRef:
		col, ok := t.schema.Lookup(x.Name)
		if !ok || !col.Type.Integral() || !col.NotNull {
			return nil, false
		}
		data := t.cols[x.Name].ints
		return func(row int) int64 { return data[row] }, true
	case *predicate.Const:
		if x.Val.Null || !x.Type.Integral() {
			return nil, false
		}
		v := x.Val.Int
		return func(int) int64 { return v }, true
	case *predicate.BinaryExpr:
		l, ok := compileFastExpr(x.Left, t)
		if !ok {
			return nil, false
		}
		r, ok := compileFastExpr(x.Right, t)
		if !ok {
			return nil, false
		}
		switch x.Op {
		case predicate.OpAdd:
			return func(row int) int64 { return l(row) + r(row) }, true
		case predicate.OpSub:
			return func(row int) int64 { return l(row) - r(row) }, true
		case predicate.OpMul:
			return func(row int) int64 { return l(row) * r(row) }, true
		default:
			// Division has rational semantics; take the slow path.
			return nil, false
		}
	default:
		return nil, false
	}
}

// compileLinearCompare compiles a comparison of linear integer expressions
// into a flat multiply-add over the backing column arrays — one closure,
// no expression-tree walks per row. Returns ok=false when the comparison
// is non-linear, mixes types, or has fractional coefficients that do not
// clear into int64.
func compileLinearCompare(x *predicate.Compare, t *Table) (func(row int) bool, bool) {
	lin, err := predicate.Linearize(predicate.Sub(x.Left, x.Right))
	if err != nil {
		return nil, false
	}
	// Clear denominators: scaling by a positive integer preserves every
	// comparison against zero.
	scale := lin.Clone()
	lcm := int64(1)
	for _, col := range lin.Columns() {
		d := lin.Coeffs[col].Denom()
		if !d.IsInt64() {
			return nil, false
		}
		lcm = lcmInt64(lcm, d.Int64())
	}
	if d := lin.Const.Denom(); !d.IsInt64() {
		return nil, false
	} else {
		lcm = lcmInt64(lcm, d.Int64())
	}
	if lcm <= 0 || lcm > 1<<20 {
		return nil, false
	}
	scale.Scale(ratFromInt(lcm))

	type term struct {
		coef int64
		data []int64
	}
	var terms []term
	for _, col := range scale.Columns() {
		c, ok := t.schema.Lookup(col)
		if !ok || !c.Type.Integral() || !c.NotNull {
			return nil, false
		}
		coef := scale.Coeffs[col]
		if !coef.IsInt() || !coef.Num().IsInt64() {
			return nil, false
		}
		terms = append(terms, term{coef: coef.Num().Int64(), data: t.cols[col].ints})
	}
	if !scale.Const.IsInt() || !scale.Const.Num().IsInt64() {
		return nil, false
	}
	k := scale.Const.Num().Int64()
	sum := func(row int) int64 {
		s := k
		for _, tm := range terms {
			s += tm.coef * tm.data[row]
		}
		return s
	}
	switch x.Op {
	case predicate.CmpLT:
		return func(row int) bool { return sum(row) < 0 }, true
	case predicate.CmpGT:
		return func(row int) bool { return sum(row) > 0 }, true
	case predicate.CmpLE:
		return func(row int) bool { return sum(row) <= 0 }, true
	case predicate.CmpGE:
		return func(row int) bool { return sum(row) >= 0 }, true
	case predicate.CmpEQ:
		return func(row int) bool { return sum(row) == 0 }, true
	case predicate.CmpNE:
		return func(row int) bool { return sum(row) != 0 }, true
	default:
		return nil, false
	}
}

func lcmInt64(a, b int64) int64 {
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	if g == 0 {
		return 1
	}
	return a / g * b
}

func ratFromInt(v int64) *big.Rat { return new(big.Rat).SetInt64(v) }

func compileFast(p predicate.Predicate, t *Table) (func(row int) bool, bool) {
	switch x := p.(type) {
	case *predicate.Compare:
		if fn, ok := compileLinearCompare(x, t); ok {
			return fn, true
		}
		l, ok := compileFastExpr(x.Left, t)
		if !ok {
			return nil, false
		}
		r, ok := compileFastExpr(x.Right, t)
		if !ok {
			return nil, false
		}
		switch x.Op {
		case predicate.CmpLT:
			return func(row int) bool { return l(row) < r(row) }, true
		case predicate.CmpGT:
			return func(row int) bool { return l(row) > r(row) }, true
		case predicate.CmpLE:
			return func(row int) bool { return l(row) <= r(row) }, true
		case predicate.CmpGE:
			return func(row int) bool { return l(row) >= r(row) }, true
		case predicate.CmpEQ:
			return func(row int) bool { return l(row) == r(row) }, true
		case predicate.CmpNE:
			return func(row int) bool { return l(row) != r(row) }, true
		default:
			return nil, false
		}
	case *predicate.And:
		fns := make([]func(int) bool, len(x.Preds))
		for i, q := range x.Preds {
			fn, ok := compileFast(q, t)
			if !ok {
				return nil, false
			}
			fns[i] = fn
		}
		return func(row int) bool {
			for _, fn := range fns {
				if !fn(row) {
					return false
				}
			}
			return true
		}, true
	case *predicate.Or:
		fns := make([]func(int) bool, len(x.Preds))
		for i, q := range x.Preds {
			fn, ok := compileFast(q, t)
			if !ok {
				return nil, false
			}
			fns[i] = fn
		}
		return func(row int) bool {
			for _, fn := range fns {
				if fn(row) {
					return true
				}
			}
			return false
		}, true
	case *predicate.Not:
		fn, ok := compileFast(x.P, t)
		if !ok {
			return nil, false
		}
		// Safe under the fast path's no-NULL precondition: two-valued
		// negation coincides with Kleene negation.
		return func(row int) bool { return !fn(row) }, true
	case *predicate.Literal:
		b := x.B
		return func(int) bool { return b }, true
	default:
		return nil, false
	}
}

// Filter returns a new table containing the rows of t that satisfy p.
// The predicate runs vectorized over the backing arrays where possible,
// and selected rows are gathered column-wise into a dense copy.
func Filter(t *Table, p predicate.Predicate) *Table {
	bitmap := Selection(t, p)
	var sel []int
	for row, ok := range bitmap {
		if ok {
			sel = append(sel, row)
		}
	}
	return t.gather(t.Name, sel)
}

// gather materializes the given rows of t into a new table, column by
// column.
func (t *Table) gather(name string, rows []int) *Table {
	out := NewTable(name, t.schema)
	out.nRows = len(rows)
	for col, cd := range t.cols {
		oc := out.cols[col]
		if cd.typ.Integral() {
			oc.ints = make([]int64, len(rows))
			for i, r := range rows {
				oc.ints[i] = cd.ints[r]
			}
		} else {
			oc.reals = make([]float64, len(rows))
			for i, r := range rows {
				oc.reals[i] = cd.reals[r]
			}
		}
		if cd.nulls != nil {
			oc.nulls = make([]bool, len(rows))
			for i, r := range rows {
				oc.nulls[i] = cd.nulls[r]
			}
		}
	}
	return out
}

// HashJoin performs an inner equi-join of l and r on integral key columns.
// The output schema is the concatenation of both schemas (column names must
// be disjoint). NULL keys never match, per SQL semantics.
func HashJoin(l, r *Table, lkey, rkey string) (*Table, error) {
	out, _, err := HashJoinWhere(l, r, lkey, rkey, nil, nil)
	return out, err
}

// JoinStats reports the logical join input sizes: rows per side that
// passed the fused predicates (if any) and carried a non-NULL key.
type JoinStats struct {
	LeftIn, RightIn int
}

// HashJoinWhere is HashJoin with per-side residual predicates fused into
// the build and probe phases: rows failing their side's predicate are
// skipped before touching the hash table, and no intermediate filtered
// table is materialized. This is how real engines execute a pushed-down
// filter, and it is what makes predicate pushdown pay off: the saved work
// is hash probes and output materialization, while the added work is one
// predicate evaluation per scanned row.
func HashJoinWhere(l, r *Table, lkey, rkey string, lpred, rpred predicate.Predicate) (*Table, JoinStats, error) {
	var stats JoinStats
	lc, ok := l.schema.Lookup(lkey)
	if !ok || !lc.Type.Integral() {
		return nil, stats, fmt.Errorf("engine: bad left join key %s.%s", l.Name, lkey)
	}
	rc, ok := r.schema.Lookup(rkey)
	if !ok || !rc.Type.Integral() {
		return nil, stats, fmt.Errorf("engine: bad right join key %s.%s", r.Name, rkey)
	}
	outSchema := predicate.Merge(l.schema, r.schema)
	out := NewTable(l.Name+"_"+r.Name, outSchema)

	// Build on the smaller side.
	build, probe, buildKey, probeKey := l, r, lkey, rkey
	buildPred, probePred := lpred, rpred
	buildLeft := true
	if r.nRows < l.nRows {
		build, probe, buildKey, probeKey = r, l, rkey, lkey
		buildPred, probePred = rpred, lpred
		buildLeft = false
	}
	var buildSel, probeSel []bool
	if buildPred != nil {
		buildSel = Selection(build, buildPred)
	}
	if probePred != nil {
		probeSel = Selection(probe, probePred)
	}
	index := make(map[int64][]int, build.nRows)
	bk := build.cols[buildKey]
	buildIn := 0
	for row := 0; row < build.nRows; row++ {
		if bk.nulls != nil && bk.nulls[row] {
			continue
		}
		if buildSel != nil && !buildSel[row] {
			continue
		}
		buildIn++
		k := bk.ints[row]
		index[k] = append(index[k], row)
	}
	pk := probe.cols[probeKey]
	probeIn := 0
	var lrows, rrows []int
	for row := 0; row < probe.nRows; row++ {
		if pk.nulls != nil && pk.nulls[row] {
			continue
		}
		if probeSel != nil && !probeSel[row] {
			continue
		}
		probeIn++
		for _, brow := range index[pk.ints[row]] {
			if buildLeft {
				lrows = append(lrows, brow)
				rrows = append(rrows, row)
			} else {
				lrows = append(lrows, row)
				rrows = append(rrows, brow)
			}
		}
	}
	if buildLeft {
		stats.LeftIn, stats.RightIn = buildIn, probeIn
	} else {
		stats.LeftIn, stats.RightIn = probeIn, buildIn
	}
	// Materialize column-wise from each side's backing arrays.
	out.nRows = len(lrows)
	fill := func(src *Table, rows []int) {
		for col, cd := range src.cols {
			oc := out.cols[col]
			if cd.typ.Integral() {
				oc.ints = make([]int64, len(rows))
				for i, r := range rows {
					oc.ints[i] = cd.ints[r]
				}
			} else {
				oc.reals = make([]float64, len(rows))
				for i, r := range rows {
					oc.reals[i] = cd.reals[r]
				}
			}
			if cd.nulls != nil {
				oc.nulls = make([]bool, len(rows))
				for i, r := range rows {
					oc.nulls[i] = cd.nulls[r]
				}
			}
		}
	}
	fill(l, lrows)
	fill(r, rrows)
	return out, stats, nil
}

// Project returns a table with only the named columns.
func Project(t *Table, cols []string) (*Table, error) {
	var sub []predicate.Column
	for _, name := range cols {
		c, ok := t.schema.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown column %q in projection", name)
		}
		sub = append(sub, c)
	}
	out := NewTable(t.Name, predicate.NewSchema(sub...))
	for row := 0; row < t.nRows; row++ {
		vals := make([]predicate.Value, len(cols))
		for i, name := range cols {
			vals[i] = t.Value(row, name)
		}
		out.AppendRow(vals...)
	}
	return out, nil
}

// AggFunc is an aggregate function kind.
type AggFunc int

const (
	// AggCount is COUNT(*).
	AggCount AggFunc = iota
	// AggSum is SUM(col).
	AggSum
	// AggMin is MIN(col).
	AggMin
	// AggMax is MAX(col).
	AggMax
)

// AggSpec names one aggregate output.
type AggSpec struct {
	Func AggFunc
	Col  string // ignored for AggCount
	As   string
}

// Aggregate groups t by integral group-by columns and computes the given
// aggregates over integral inputs.
func Aggregate(t *Table, groupBy []string, aggs []AggSpec) (*Table, error) {
	for _, g := range groupBy {
		c, ok := t.schema.Lookup(g)
		if !ok || !c.Type.Integral() {
			return nil, fmt.Errorf("engine: GROUP BY column %q must be integral", g)
		}
	}
	var outCols []predicate.Column
	for _, g := range groupBy {
		c, _ := t.schema.Lookup(g)
		outCols = append(outCols, c)
	}
	for _, a := range aggs {
		outCols = append(outCols, predicate.Column{Name: a.As, Type: predicate.TypeInteger, NotNull: true})
	}
	out := NewTable(t.Name+"_agg", predicate.NewSchema(outCols...))

	type groupState struct {
		keys []int64
		accs []int64
		n    []int64
	}
	groups := map[string]*groupState{}
	var orderKeys []string
	keyBuf := make([]int64, len(groupBy))
	for row := 0; row < t.nRows; row++ {
		key := ""
		for i, g := range groupBy {
			v := t.Value(row, g)
			keyBuf[i] = v.Int
			key += fmt.Sprintf("%d|", v.Int)
		}
		gs, ok := groups[key]
		if !ok {
			gs = &groupState{keys: append([]int64(nil), keyBuf...), accs: make([]int64, len(aggs)), n: make([]int64, len(aggs))}
			groups[key] = gs
			orderKeys = append(orderKeys, key)
		}
		for i, a := range aggs {
			switch a.Func {
			case AggCount:
				gs.accs[i]++
			case AggSum:
				gs.accs[i] += t.Value(row, a.Col).Int
			case AggMin:
				v := t.Value(row, a.Col).Int
				if gs.n[i] == 0 || v < gs.accs[i] {
					gs.accs[i] = v
				}
				gs.n[i]++
			case AggMax:
				v := t.Value(row, a.Col).Int
				if gs.n[i] == 0 || v > gs.accs[i] {
					gs.accs[i] = v
				}
				gs.n[i]++
			}
		}
	}
	for _, key := range orderKeys {
		gs := groups[key]
		vals := make([]predicate.Value, 0, len(groupBy)+len(aggs))
		for _, k := range gs.keys {
			vals = append(vals, predicate.IntVal(k))
		}
		for _, a := range gs.accs {
			vals = append(vals, predicate.IntVal(a))
		}
		out.AppendRow(vals...)
	}
	return out, nil
}
