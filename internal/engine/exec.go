package engine

import (
	"fmt"
	"time"

	"sia/internal/predicate"
)

// CompilePredicate compiles a predicate into a per-row acceptance function
// for the table. When every referenced column is integral and NOT NULL, the
// predicate is division-free, and the evaluation provably fits in int64,
// the compiled form evaluates directly over the raw column arrays;
// otherwise it falls back to tuple materialization with full three-valued
// evaluation. Both paths accept a row exactly when the predicate evaluates
// to TRUE.
func CompilePredicate(p predicate.Predicate, t *Table) func(row int) bool {
	if fn, ok := compileFast(p, t); ok {
		return fn
	}
	return func(row int) bool {
		// tribool: WHERE semantics — a row is accepted exactly when the
		// predicate is True; Unknown rejects like False.
		return predicate.Eval(p, t.Tuple(row)) == predicate.True
	}
}

type intExpr func(row int) int64

// compileFastExpr compiles an integer expression into a closure over the
// backing arrays, together with a saturating upper bound on the magnitude
// of any value (including intermediates) the closure can produce. Callers
// must reject the compilation when the bound exceeds int64 range — the
// closures use wrapping machine arithmetic.
func compileFastExpr(e predicate.Expr, t *Table) (intExpr, uint64, bool) {
	switch x := e.(type) {
	case *predicate.ColumnRef:
		col, ok := t.schema.Lookup(x.Name)
		if !ok || !col.Type.Integral() || !col.NotNull {
			return nil, 0, false
		}
		cd := t.cols[x.Name]
		data := cd.ints
		return func(row int) int64 { return data[row] }, cd.maxAbs, true
	case *predicate.Const:
		if x.Val.Null || !x.Type.Integral() {
			return nil, 0, false
		}
		v := x.Val.Int
		return func(int) int64 { return v }, absU64(v), true
	case *predicate.BinaryExpr:
		l, lb, ok := compileFastExpr(x.Left, t)
		if !ok {
			return nil, 0, false
		}
		r, rb, ok := compileFastExpr(x.Right, t)
		if !ok {
			return nil, 0, false
		}
		switch x.Op {
		case predicate.OpAdd:
			return func(row int) int64 { return l(row) + r(row) }, addBound(lb, rb), true
		case predicate.OpSub:
			return func(row int) int64 { return l(row) - r(row) }, addBound(lb, rb), true
		case predicate.OpMul:
			return func(row int) int64 { return l(row) * r(row) }, mulBound(lb, rb), true
		default:
			// Division has rational semantics; take the slow path.
			return nil, 0, false
		}
	default:
		return nil, 0, false
	}
}

// compileLinearCompare compiles a comparison of linear integer expressions
// into a flat multiply-add over the backing column arrays — one closure,
// no expression-tree walks per row. Returns ok=false when the comparison
// is non-linear, mixes types, has fractional coefficients that do not
// clear into int64, or could overflow int64 (see linearizeCompare).
func compileLinearCompare(x *predicate.Compare, t *Table) (func(row int) bool, bool) {
	lc, ok := linearizeCompare(x, t)
	if !ok {
		return nil, false
	}
	terms := make([]struct {
		coef int64
		data []int64
	}, len(lc.cols))
	for i := range lc.cols {
		terms[i].coef = lc.coefs[i]
		terms[i].data = lc.cols[i]
	}
	k := lc.k
	sum := func(row int) int64 {
		s := k
		for _, tm := range terms {
			s += tm.coef * tm.data[row]
		}
		return s
	}
	switch lc.op {
	case predicate.CmpLT:
		return func(row int) bool { return sum(row) < 0 }, true
	case predicate.CmpGT:
		return func(row int) bool { return sum(row) > 0 }, true
	case predicate.CmpLE:
		return func(row int) bool { return sum(row) <= 0 }, true
	case predicate.CmpGE:
		return func(row int) bool { return sum(row) >= 0 }, true
	case predicate.CmpEQ:
		return func(row int) bool { return sum(row) == 0 }, true
	case predicate.CmpNE:
		return func(row int) bool { return sum(row) != 0 }, true
	default:
		return nil, false
	}
}

func lcmInt64(a, b int64) int64 {
	g, x := a, b
	// cancel: Euclid's algorithm converges in at most ~90 steps on int64.
	for x != 0 {
		g, x = x, g%x
	}
	if g == 0 {
		return 1
	}
	return a / g * b
}

func compileFast(p predicate.Predicate, t *Table) (func(row int) bool, bool) {
	switch x := p.(type) {
	case *predicate.Compare:
		if fn, ok := compileLinearCompare(x, t); ok {
			return fn, true
		}
		l, lb, ok := compileFastExpr(x.Left, t)
		if !ok {
			return nil, false
		}
		r, rb, ok := compileFastExpr(x.Right, t)
		if !ok {
			return nil, false
		}
		// Overflow guard: the comparison itself never overflows (it is a
		// plain int64 compare), but either side's arithmetic could wrap.
		if lb > maxInt64U || rb > maxInt64U {
			return nil, false
		}
		switch x.Op {
		case predicate.CmpLT:
			return func(row int) bool { return l(row) < r(row) }, true
		case predicate.CmpGT:
			return func(row int) bool { return l(row) > r(row) }, true
		case predicate.CmpLE:
			return func(row int) bool { return l(row) <= r(row) }, true
		case predicate.CmpGE:
			return func(row int) bool { return l(row) >= r(row) }, true
		case predicate.CmpEQ:
			return func(row int) bool { return l(row) == r(row) }, true
		case predicate.CmpNE:
			return func(row int) bool { return l(row) != r(row) }, true
		default:
			return nil, false
		}
	case *predicate.And:
		fns := make([]func(int) bool, len(x.Preds))
		for i, q := range x.Preds {
			fn, ok := compileFast(q, t)
			if !ok {
				return nil, false
			}
			fns[i] = fn
		}
		return func(row int) bool {
			for _, fn := range fns {
				if !fn(row) {
					return false
				}
			}
			return true
		}, true
	case *predicate.Or:
		fns := make([]func(int) bool, len(x.Preds))
		for i, q := range x.Preds {
			fn, ok := compileFast(q, t)
			if !ok {
				return nil, false
			}
			fns[i] = fn
		}
		return func(row int) bool {
			for _, fn := range fns {
				if fn(row) {
					return true
				}
			}
			return false
		}, true
	case *predicate.Not:
		fn, ok := compileFast(x.P, t)
		if !ok {
			return nil, false
		}
		// Safe under the fast path's no-NULL precondition: two-valued
		// negation coincides with Kleene negation.
		return func(row int) bool { return !fn(row) }, true
	case *predicate.Literal:
		b := x.B
		return func(int) bool { return b }, true
	default:
		return nil, false
	}
}

// Filter returns a new table containing the rows of t that satisfy p,
// serially. See FilterPar.
func Filter(t *Table, p predicate.Predicate) *Table {
	return FilterPar(t, p, 1)
}

// FilterPar is Filter on par workers (par <= 0 means DefaultParallelism):
// the acceptance bitmap is evaluated morsel-parallel, per-morsel survivor
// counts are prefix-summed into output offsets, and the surviving rows are
// gathered column-wise into disjoint ranges of a dense copy. Row order is
// preserved, so the result is byte-identical to the serial engine.
func FilterPar(t *Table, p predicate.Predicate, par int) *Table {
	defer observeOp(opFilter, time.Now())
	bitmap := SelectionPar(t, p, par)
	rows := selectedRows(bitmap, par)
	mRowsScanned.Add(uint64(t.nRows))
	mRowsKept.Add(uint64(len(rows)))
	out := NewTable(t.Name, t.schema)
	out.nRows = len(rows)
	gatherInto(out, t, t.order, rows, par)
	return out
}

// selectedRows converts an acceptance bitmap into the (ascending) list of
// selected row indices: per-morsel counts, an exclusive prefix sum, then a
// parallel fill of each morsel's slot range.
func selectedRows(sel []bool, par int) []int {
	n := len(sel)
	counts := make([]int, morselCount(n))
	forEachMorsel(n, par, func(_, m, lo, hi int) {
		c := 0
		for _, ok := range sel[lo:hi] {
			if ok {
				c++
			}
		}
		counts[m] = c
	})
	total := 0
	for m, c := range counts {
		counts[m] = total
		total += c
	}
	rows := make([]int, total)
	forEachMorsel(n, par, func(_, m, lo, hi int) {
		idx := counts[m]
		for i := lo; i < hi; i++ {
			if sel[i] {
				rows[idx] = i
				idx++
			}
		}
	})
	return rows
}

// gatherInto materializes the named columns of src, restricted to rows (all
// rows in order when rows is nil), into the same-named columns of out,
// splitting the copy across par workers. out's row count must already be
// set; each worker writes a disjoint output range, so the result is
// independent of scheduling.
func gatherInto(out, src *Table, cols []string, rows []int, par int) {
	n := len(rows)
	if rows == nil {
		n = src.nRows
	}
	type colCopy struct {
		src, dst *colData
	}
	copies := make([]colCopy, 0, len(cols))
	for _, name := range cols {
		cd := src.cols[name]
		oc := out.cols[name]
		oc.maxAbs = cd.maxAbs // conservative: a subset's max cannot exceed the source's
		if cd.typ.Integral() {
			oc.ints = make([]int64, n)
		} else {
			oc.reals = make([]float64, n)
		}
		if cd.nulls != nil {
			oc.nulls = make([]bool, n)
		}
		copies = append(copies, colCopy{src: cd, dst: oc})
	}
	forEachMorsel(n, par, func(_, _, lo, hi int) {
		for _, cc := range copies {
			if rows == nil {
				if cc.src.typ.Integral() {
					copy(cc.dst.ints[lo:hi], cc.src.ints[lo:hi])
				} else {
					copy(cc.dst.reals[lo:hi], cc.src.reals[lo:hi])
				}
				if cc.src.nulls != nil {
					copy(cc.dst.nulls[lo:hi], cc.src.nulls[lo:hi])
				}
				continue
			}
			if cc.src.typ.Integral() {
				dst, srcInts := cc.dst.ints, cc.src.ints
				for i := lo; i < hi; i++ {
					dst[i] = srcInts[rows[i]]
				}
			} else {
				dst, srcReals := cc.dst.reals, cc.src.reals
				for i := lo; i < hi; i++ {
					dst[i] = srcReals[rows[i]]
				}
			}
			if cc.src.nulls != nil {
				dst, srcNulls := cc.dst.nulls, cc.src.nulls
				for i := lo; i < hi; i++ {
					dst[i] = srcNulls[rows[i]]
				}
			}
		}
	})
}

// HashJoin performs an inner equi-join of l and r on integral key columns.
// The output schema is the concatenation of both schemas (column names must
// be disjoint). NULL keys never match, per SQL semantics.
func HashJoin(l, r *Table, lkey, rkey string) (*Table, error) {
	out, _, err := HashJoinWhere(l, r, lkey, rkey, nil, nil)
	return out, err
}

// JoinStats reports the logical join input sizes: rows per side that
// passed the fused predicates (if any) and carried a non-NULL key.
type JoinStats struct {
	LeftIn, RightIn int
}

// HashJoinWhere is HashJoin with per-side residual predicates fused into
// the build and probe phases: rows failing their side's predicate are
// skipped before touching the hash table, and no intermediate filtered
// table is materialized. This is how real engines execute a pushed-down
// filter, and it is what makes predicate pushdown pay off: the saved work
// is hash probes and output materialization, while the added work is one
// predicate evaluation per scanned row.
func HashJoinWhere(l, r *Table, lkey, rkey string, lpred, rpred predicate.Predicate) (*Table, JoinStats, error) {
	return HashJoinWherePar(l, r, lkey, rkey, lpred, rpred, 1)
}

// HashJoinWherePar is HashJoinWhere on par workers (par <= 0 means
// DefaultParallelism). The build side is hash-partitioned into per-worker
// maps (each partition owner scans the build column and keeps only its
// keys, so no insert ever races), probe morsels run concurrently against
// the read-only partitions into per-morsel match buffers, and the buffers
// are stitched back in morsel order — exactly the serial probe order — so
// the output is byte-identical to the serial engine at any worker count.
func HashJoinWherePar(l, r *Table, lkey, rkey string, lpred, rpred predicate.Predicate, par int) (*Table, JoinStats, error) {
	defer observeOp(opJoin, time.Now())
	var stats JoinStats
	lc, ok := l.schema.Lookup(lkey)
	if !ok || !lc.Type.Integral() {
		return nil, stats, fmt.Errorf("engine: bad left join key %s.%s", l.Name, lkey)
	}
	rc, ok := r.schema.Lookup(rkey)
	if !ok || !rc.Type.Integral() {
		return nil, stats, fmt.Errorf("engine: bad right join key %s.%s", r.Name, rkey)
	}
	outSchema := predicate.Merge(l.schema, r.schema)
	out := NewTable(l.Name+"_"+r.Name, outSchema)

	// Build on the smaller side.
	build, probe, buildKey, probeKey := l, r, lkey, rkey
	buildPred, probePred := lpred, rpred
	buildLeft := true
	if r.nRows < l.nRows {
		build, probe, buildKey, probeKey = r, l, rkey, lkey
		buildPred, probePred = rpred, lpred
		buildLeft = false
	}
	var buildSel, probeSel []bool
	if buildPred != nil {
		buildSel = SelectionPar(build, buildPred, par)
	}
	if probePred != nil {
		probeSel = SelectionPar(probe, probePred, par)
	}

	// Build phase: P per-partition hash maps, each owned by one task. A
	// partition's owner scans the whole build column but inserts only keys
	// hashing to its partition — the scan is a cheap sequential read, and
	// splitting inserts (the expensive part) P ways is what scales. Rows
	// enter each key's bucket in ascending order, matching the serial map.
	nPart := partitionCount(par, build.nRows)
	mask := uint64(nPart - 1)
	type partition struct {
		index map[int64][]int
		in    int
	}
	parts := make([]partition, nPart)
	bk := build.cols[buildKey]
	forEachTask(nPart, par, func(p int) {
		index := make(map[int64][]int, build.nRows/nPart+1)
		in := 0
		for row := 0; row < build.nRows; row++ {
			if bk.nulls != nil && bk.nulls[row] {
				continue
			}
			if buildSel != nil && !buildSel[row] {
				continue
			}
			k := bk.ints[row]
			if mixHash(uint64(k))&mask != uint64(p) {
				continue
			}
			in++
			index[k] = append(index[k], row)
		}
		parts[p] = partition{index: index, in: in}
	})
	buildIn := 0
	for p := range parts {
		buildIn += parts[p].in
	}

	// Probe phase: morsels of the probe side run concurrently, each
	// accumulating its matches in its own buffer slot; concatenating the
	// slots in morsel order reproduces the serial probe order.
	type matches struct {
		lrows, rrows []int
		in           int
	}
	bufs := make([]matches, morselCount(probe.nRows))
	pk := probe.cols[probeKey]
	forEachMorsel(probe.nRows, par, func(_, m, lo, hi int) {
		var mb matches
		for row := lo; row < hi; row++ {
			if pk.nulls != nil && pk.nulls[row] {
				continue
			}
			if probeSel != nil && !probeSel[row] {
				continue
			}
			mb.in++
			k := pk.ints[row]
			for _, brow := range parts[mixHash(uint64(k))&mask].index[k] {
				if buildLeft {
					mb.lrows = append(mb.lrows, brow)
					mb.rrows = append(mb.rrows, row)
				} else {
					mb.lrows = append(mb.lrows, row)
					mb.rrows = append(mb.rrows, brow)
				}
			}
		}
		bufs[m] = mb
	})
	probeIn, total := 0, 0
	for m := range bufs {
		probeIn += bufs[m].in
		total += len(bufs[m].lrows)
	}
	lrows := make([]int, 0, total)
	rrows := make([]int, 0, total)
	for m := range bufs {
		lrows = append(lrows, bufs[m].lrows...)
		rrows = append(rrows, bufs[m].rrows...)
	}
	if buildLeft {
		stats.LeftIn, stats.RightIn = buildIn, probeIn
	} else {
		stats.LeftIn, stats.RightIn = probeIn, buildIn
	}
	// Materialize column-wise from each side's backing arrays.
	out.nRows = total
	gatherInto(out, l, l.order, lrows, par)
	gatherInto(out, r, r.order, rrows, par)
	return out, stats, nil
}

// partitionCount picks the build-partition count: the smallest power of two
// covering the worker count (the partition mask needs a power of two),
// capped so tiny builds do not shatter into empty maps.
func partitionCount(par, buildRows int) int {
	par = normalizeParallelism(par, buildRows)
	n := 1
	// cancel: doubles to the worker count, at most log2(maxPartitions) steps.
	for n < par {
		n *= 2
	}
	const maxPartitions = 64
	if n > maxPartitions {
		n = maxPartitions
	}
	return n
}

// Project returns a table with only the named columns, serially. See
// ProjectPar.
func Project(t *Table, cols []string) (*Table, error) {
	return ProjectPar(t, cols, 1)
}

// ProjectPar is Project on par workers (par <= 0 means DefaultParallelism).
// Projection never touches row values: it reuses the columnar gather path
// to copy each kept column's backing arrays, morsel-parallel, instead of
// materializing rows one at a time.
func ProjectPar(t *Table, cols []string, par int) (*Table, error) {
	defer observeOp(opProject, time.Now())
	var sub []predicate.Column
	for _, name := range cols {
		c, ok := t.schema.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown column %q in projection", name)
		}
		sub = append(sub, c)
	}
	out := NewTable(t.Name, predicate.NewSchema(sub...))
	out.nRows = t.nRows
	gatherInto(out, t, cols, nil, par)
	return out, nil
}
