package plan

import (
	"math/big"

	"sia/internal/predicate"
)

// PushDownFilters applies the classic predicate-pushdown rules to a
// fixpoint:
//
//   - Filter over Filter merges into one conjunction;
//   - a conjunct above a Join that references only one side's columns moves
//     below the join (the rule Q2 unlocks in the paper's Fig. 1);
//   - a conjunct above an Aggregate that references only GROUP BY columns
//     moves below the aggregation [Levy et al., VLDB'94].
func PushDownFilters(n Node) Node {
	switch x := n.(type) {
	case *Filter:
		switch child := x.Input.(type) {
		case *Filter:
			return PushDownFilters(&Filter{
				Pred:  predicate.NewAnd(child.Pred, x.Pred),
				Input: child.Input,
			})
		case *Join:
			var leftConj, rightConj, keep []predicate.Predicate
			leftCols := schemaCols(child.Left.Schema())
			rightCols := schemaCols(child.Right.Schema())
			for _, conj := range predicate.Conjuncts(x.Pred) {
				switch {
				case predicate.UsesOnly(conj, leftCols):
					leftConj = append(leftConj, conj)
				case predicate.UsesOnly(conj, rightCols):
					rightConj = append(rightConj, conj)
				default:
					keep = append(keep, conj)
				}
			}
			if len(leftConj) == 0 && len(rightConj) == 0 {
				return &Filter{Pred: x.Pred, Input: pushChildren(child)}
			}
			l := child.Left
			if len(leftConj) > 0 {
				l = &Filter{Pred: predicate.NewAnd(leftConj...), Input: l}
			}
			r := child.Right
			if len(rightConj) > 0 {
				r = &Filter{Pred: predicate.NewAnd(rightConj...), Input: r}
			}
			nj := Node(&Join{Left: PushDownFilters(l), Right: PushDownFilters(r), LeftKey: child.LeftKey, RightKey: child.RightKey})
			if len(keep) > 0 {
				return &Filter{Pred: predicate.NewAnd(keep...), Input: nj}
			}
			return nj
		case *Aggregate:
			var below, above []predicate.Predicate
			for _, conj := range predicate.Conjuncts(x.Pred) {
				if predicate.UsesOnly(conj, child.GroupBy) {
					below = append(below, conj)
				} else {
					above = append(above, conj)
				}
			}
			if len(below) == 0 {
				return &Filter{Pred: x.Pred, Input: pushChildren(child)}
			}
			in := PushDownFilters(&Filter{Pred: predicate.NewAnd(below...), Input: child.Input})
			agg := Node(&Aggregate{GroupBy: child.GroupBy, Aggs: child.Aggs, Input: in})
			if len(above) > 0 {
				return &Filter{Pred: predicate.NewAnd(above...), Input: agg}
			}
			return agg
		default:
			return &Filter{Pred: x.Pred, Input: pushChildren(x.Input)}
		}
	default:
		return pushChildren(n)
	}
}

func pushChildren(n Node) Node {
	ch := n.Children()
	if len(ch) == 0 {
		return n
	}
	out := make([]Node, len(ch))
	for i, c := range ch {
		out[i] = PushDownFilters(c)
	}
	return n.withChildren(out)
}

func schemaCols(s *predicate.Schema) []string {
	var out []string
	for _, c := range s.Columns() {
		out = append(out, c.Name)
	}
	return out
}

// ConstantPropagation applies the syntax-driven rule of [Consens et al.]:
// a conjunct col = const substitutes the constant for the column in every
// other conjunct. It returns the (possibly) rewritten predicate.
func ConstantPropagation(p predicate.Predicate) predicate.Predicate {
	conjs := predicate.Conjuncts(p)
	consts := map[string]*predicate.Const{}
	for _, c := range conjs {
		cmp, ok := c.(*predicate.Compare)
		if !ok || cmp.Op != predicate.CmpEQ {
			continue
		}
		if col, ok := cmp.Left.(*predicate.ColumnRef); ok {
			if k, ok := cmp.Right.(*predicate.Const); ok {
				consts[col.Name] = k
			}
		}
		if col, ok := cmp.Right.(*predicate.ColumnRef); ok {
			if k, ok := cmp.Left.(*predicate.Const); ok {
				consts[col.Name] = k
			}
		}
	}
	if len(consts) == 0 {
		return p
	}
	out := make([]predicate.Predicate, len(conjs))
	for i, c := range conjs {
		// Keep the defining equality itself; substitute elsewhere.
		if cmp, ok := c.(*predicate.Compare); ok && cmp.Op == predicate.CmpEQ {
			if col, ok := cmp.Left.(*predicate.ColumnRef); ok {
				if _, isConst := cmp.Right.(*predicate.Const); isConst && consts[col.Name] != nil {
					out[i] = c
					continue
				}
			}
			if col, ok := cmp.Right.(*predicate.ColumnRef); ok {
				if _, isConst := cmp.Left.(*predicate.Const); isConst && consts[col.Name] != nil {
					out[i] = c
					continue
				}
			}
		}
		out[i] = substConsts(c, consts)
	}
	return predicate.NewAnd(out...)
}

func substConsts(p predicate.Predicate, consts map[string]*predicate.Const) predicate.Predicate {
	var substExpr func(e predicate.Expr) predicate.Expr
	substExpr = func(e predicate.Expr) predicate.Expr {
		switch x := e.(type) {
		case *predicate.ColumnRef:
			if k, ok := consts[x.Name]; ok {
				return k
			}
			return x
		case *predicate.BinaryExpr:
			return &predicate.BinaryExpr{Op: x.Op, Left: substExpr(x.Left), Right: substExpr(x.Right)}
		default:
			return e
		}
	}
	switch x := p.(type) {
	case *predicate.Compare:
		return &predicate.Compare{Op: x.Op, Left: substExpr(x.Left), Right: substExpr(x.Right)}
	case *predicate.And:
		ps := make([]predicate.Predicate, len(x.Preds))
		for i, q := range x.Preds {
			ps[i] = substConsts(q, consts)
		}
		return &predicate.And{Preds: ps}
	case *predicate.Or:
		ps := make([]predicate.Predicate, len(x.Preds))
		for i, q := range x.Preds {
			ps[i] = substConsts(q, consts)
		}
		return &predicate.Or{Preds: ps}
	case *predicate.Not:
		return &predicate.Not{P: substConsts(x.P, consts)}
	default:
		return p
	}
}

// TransitiveClosureReduce is the paper's syntax-driven baseline [Ioannidis
// & Ramakrishnan]: it collects difference constraints x - y ≤ c (and
// single-column bounds, via a virtual zero node) from the top-level
// conjuncts, closes them transitively with Floyd–Warshall, and returns the
// conjunction of derived bounds that mention only the target columns.
// Returns nil when nothing usable is derived.
//
// Conjuncts outside the difference-constraint fragment — anything with
// more than two columns, a coefficient other than ±1, disjunction, or
// negation — are ignored, which is exactly the brittleness the paper's §2
// attributes to syntax-driven rules.
func TransitiveClosureReduce(p predicate.Predicate, cols []string) predicate.Predicate {
	const zero = "$zero"
	type bound struct {
		c      *big.Rat
		strict bool
		ok     bool
	}
	// dist[a][b]: a - b <= c (or < c when strict).
	dist := map[string]map[string]bound{}
	nodes := map[string]bool{zero: true}
	update := func(a, b string, c *big.Rat, strict bool) {
		nodes[a], nodes[b] = true, true
		if dist[a] == nil {
			dist[a] = map[string]bound{}
		}
		cur := dist[a][b]
		if !cur.ok || c.Cmp(cur.c) < 0 || (c.Cmp(cur.c) == 0 && strict && !cur.strict) {
			dist[a][b] = bound{c: c, strict: strict, ok: true}
		}
	}

	for _, conj := range predicate.Conjuncts(p) {
		cmp, ok := conj.(*predicate.Compare)
		if !ok {
			continue
		}
		lin, err := predicate.Linearize(predicate.Sub(cmp.Left, cmp.Right))
		if err != nil {
			continue
		}
		// Interpret lin ⋈ 0 as difference constraints.
		switch cmp.Op {
		case predicate.CmpLT, predicate.CmpLE:
			addDifference(lin, cmp.Op == predicate.CmpLT, update, zero)
		case predicate.CmpEQ:
			addDifference(lin, false, update, zero)
			neg := lin.Clone()
			neg.Scale(big.NewRat(-1, 1))
			addDifference(neg, false, update, zero)
		case predicate.CmpGT, predicate.CmpGE:
			neg := lin.Clone()
			neg.Scale(big.NewRat(-1, 1))
			addDifference(neg, cmp.Op == predicate.CmpGT, update, zero)
		}
	}

	// Floyd–Warshall closure.
	var names []string
	for n := range nodes {
		names = append(names, n)
	}
	get := func(a, b string) (bound, bool) {
		if dist[a] == nil {
			return bound{}, false
		}
		d, ok := dist[a][b]
		return d, ok && d.ok
	}
	for _, k := range names {
		for _, i := range names {
			dik, ok1 := get(i, k)
			if !ok1 {
				continue
			}
			for _, j := range names {
				dkj, ok2 := get(k, j)
				if !ok2 || i == j {
					continue
				}
				sum := new(big.Rat).Add(dik.c, dkj.c)
				update(i, j, sum, dik.strict || dkj.strict)
			}
		}
	}

	allowed := map[string]bool{}
	for _, c := range cols {
		allowed[c] = true
	}
	var derived []predicate.Predicate
	emit := func(a, b string, d bound) {
		if !d.c.IsInt() {
			return
		}
		op := predicate.CmpLE
		if d.strict {
			op = predicate.CmpLT
		}
		c := predicate.IntConst(d.c.Num().Int64())
		// a - b <= c; the zero node folds away for single-column bounds.
		var lhs predicate.Expr
		switch {
		case a == zero:
			// -b <= c, printed as b >= -c.
			derived = append(derived, predicate.Cmp(op.Flip(), predicate.Col(b, predicate.TypeInteger),
				predicate.IntConst(-d.c.Num().Int64())))
			return
		case b == zero:
			lhs = predicate.Col(a, predicate.TypeInteger)
		default:
			lhs = predicate.Sub(predicate.Col(a, predicate.TypeInteger), predicate.Col(b, predicate.TypeInteger))
		}
		derived = append(derived, predicate.Cmp(op, lhs, c))
	}
	for a, row := range dist {
		if a != zero && !allowed[a] {
			continue
		}
		for b, d := range row {
			if !d.ok || (b != zero && !allowed[b]) || (a == zero && b == zero) {
				continue
			}
			// Only single- or two-column constraints within the target set.
			if a == zero && b == zero {
				continue
			}
			emit(a, b, d)
		}
	}
	if len(derived) == 0 {
		return nil
	}
	return predicate.NewAnd(derived...)
}

// addDifference records lin ⋈ 0 (with ⋈ being < when strict, else <=) as a
// difference constraint if it has the right shape: at most two columns with
// coefficients +1 and -1 (or a single column with coefficient ±1).
func addDifference(lin *predicate.Linear, strict bool, update func(a, b string, c *big.Rat, strict bool), zero string) bool {
	vars := lin.Columns()
	c := new(big.Rat).Neg(lin.Const)
	switch len(vars) {
	case 1:
		a := vars[0]
		coeff := lin.Coeffs[a]
		one := big.NewRat(1, 1)
		negOne := big.NewRat(-1, 1)
		if coeff.Cmp(one) == 0 {
			update(a, zero, c, strict) // a <= c
			return true
		}
		if coeff.Cmp(negOne) == 0 {
			update(zero, a, c, strict) // -a <= c, i.e. 0 - a <= c
			return true
		}
	case 2:
		a, b := vars[0], vars[1]
		ca, cb := lin.Coeffs[a], lin.Coeffs[b]
		one := big.NewRat(1, 1)
		negOne := big.NewRat(-1, 1)
		if ca.Cmp(one) == 0 && cb.Cmp(negOne) == 0 {
			update(a, b, c, strict) // a - b <= c
			return true
		}
		if ca.Cmp(negOne) == 0 && cb.Cmp(one) == 0 {
			update(b, a, c, strict) // b - a <= c
			return true
		}
	}
	return false
}
