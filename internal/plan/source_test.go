package plan

import (
	"testing"

	"sia/internal/cache"
	"sia/internal/engine"
	"sia/internal/predicate"
	"sia/internal/storage"
)

// TestExecuteOverSegmentSource pins the storage integration end to end: a
// plan over a disk-backed SegmentTable source must produce exactly what
// the same plan produces over the equivalent in-memory table, with the
// pushed-down predicate reaching the source (pruning counters move), and a
// streaming append must invalidate exactly the synthesis cache entries
// conditioned on the table's columns.
func TestExecuteOverSegmentSource(t *testing.T) {
	schema := predicate.NewSchema(
		predicate.Column{Name: "k", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "v", Type: predicate.TypeInteger, NotNull: true},
	)
	mem := engine.NewTable("t", schema)
	for i := 0; i < 3000; i++ {
		mem.AppendRow(predicate.IntVal(int64(i)), predicate.IntVal(int64(i%97)))
	}

	st, err := storage.Open(t.TempDir(), "t", schema)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < mem.NumRows(); lo += 1000 {
		if err := st.AppendRange(mem, lo, lo+1000); err != nil {
			t.Fatal(err)
		}
	}

	memCat, diskCat := NewCatalog(), NewCatalog()
	memCat.Add(mem)
	diskCat.AddSource(st)

	p := predicate.Cmp(predicate.CmpLT, predicate.Col("k", predicate.TypeInteger), predicate.IntConst(500))
	build := func(c *Catalog) Node {
		scan, err := NewScan(c, "t")
		if err != nil {
			t.Fatal(err)
		}
		return &Filter{Pred: p, Input: scan}
	}

	before := storage.SnapshotCounters()
	wantTbl, _, err := Execute(build(memCat), memCat)
	if err != nil {
		t.Fatal(err)
	}
	gotTbl, _, err := Execute(build(diskCat), diskCat)
	if err != nil {
		t.Fatal(err)
	}
	delta := storage.SnapshotCounters().Sub(before)
	if !engine.TablesEqual(wantTbl, gotTbl) {
		t.Fatalf("disk plan returned %d rows, in-memory %d", gotTbl.NumRows(), wantTbl.NumRows())
	}
	if delta.SegmentsPruned != 2 || delta.SegmentsScanned != 1 {
		t.Fatalf("pruned %d / scanned %d, want 2 / 1", delta.SegmentsPruned, delta.SegmentsScanned)
	}

	// Estimation sees the source's cardinality.
	scan, err := NewScan(diskCat, "t")
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := EstimateRows(scan, diskCat); err != nil || rows != 3000 {
		t.Fatalf("EstimateRows = %v, %v; want 3000", rows, err)
	}

	// Streaming append invalidates cached synthesis entries conditioned on
	// the table's columns — and only those.
	c := cache.New(8)
	c.PutTagged("on-k", nil, []string{"k"})
	c.PutTagged("other", nil, []string{"elsewhere"})
	st.OnAppend(func(cols []string) { c.InvalidateTags(cols) })

	if err := st.AppendRange(mem, 0, 10); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Peek("on-k"); ok {
		t.Fatal("entry tagged with an appended column survived the append")
	}
	if _, ok := c.Peek("other"); !ok {
		t.Fatal("entry tagged with an unrelated column was invalidated")
	}
	if st.NumRows() != 3010 {
		t.Fatalf("table has %d rows after append", st.NumRows())
	}
}

// The compile-time assertion that SegmentTable satisfies the source
// contract the executor routes through.
var _ TableSource = (*storage.SegmentTable)(nil)
