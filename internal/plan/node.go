// Package plan provides the logical query algebra, the rule-driven query
// rewriter (predicate pushdown below joins and aggregations, constant
// propagation, the paper's transitive-closure baseline), and the Sia
// rewrite rule that injects synthesized predicates. The paper delegates
// this layer to Apache Calcite; it is reimplemented here from scratch.
package plan

import (
	"fmt"
	"strings"

	"sia/internal/engine"
	"sia/internal/predicate"
)

// Catalog resolves table names to stored tables: in-memory engine tables
// and external TableSources (disk-backed segment tables). A name registered
// both ways resolves to the in-memory table.
type Catalog struct {
	tables  map[string]*engine.Table
	sources map[string]TableSource
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*engine.Table{}, sources: map[string]TableSource{}}
}

// Add registers a table under its name.
func (c *Catalog) Add(t *engine.Table) { c.tables[t.Name] = t }

// Table looks an in-memory table up by name.
func (c *Catalog) Table(name string) (*engine.Table, error) {
	t, ok := c.tables[name]
	if !ok {
		if _, isSrc := c.sources[name]; isSrc {
			return nil, fmt.Errorf("plan: table %q is an external source, not an in-memory table", name)
		}
		return nil, fmt.Errorf("plan: unknown table %q", name)
	}
	return t, nil
}

// Schema returns the schema of a named table or source.
func (c *Catalog) Schema(name string) (*predicate.Schema, error) {
	if t, ok := c.tables[name]; ok {
		return t.Schema(), nil
	}
	if s, ok := c.sources[name]; ok {
		return s.Schema(), nil
	}
	return nil, fmt.Errorf("plan: unknown table %q", name)
}

// Node is a logical plan operator.
type Node interface {
	Schema() *predicate.Schema
	Children() []Node
	// withChildren returns a copy with the children replaced (same arity).
	withChildren(children []Node) Node
	describe() string
}

// Scan reads a base table.
type Scan struct {
	TableName string
	schema    *predicate.Schema
}

// NewScan builds a scan over a cataloged table.
func NewScan(c *Catalog, table string) (*Scan, error) {
	s, err := c.Schema(table)
	if err != nil {
		return nil, err
	}
	return &Scan{TableName: table, schema: s}, nil
}

func (s *Scan) Schema() *predicate.Schema   { return s.schema }
func (s *Scan) Children() []Node            { return nil }
func (s *Scan) withChildren(ch []Node) Node { return s }
func (s *Scan) describe() string            { return "Scan " + s.TableName }

// Filter keeps rows satisfying Pred.
type Filter struct {
	Pred  predicate.Predicate
	Input Node
}

func (f *Filter) Schema() *predicate.Schema { return f.Input.Schema() }
func (f *Filter) Children() []Node          { return []Node{f.Input} }
func (f *Filter) withChildren(ch []Node) Node {
	return &Filter{Pred: f.Pred, Input: ch[0]}
}
func (f *Filter) describe() string { return "Filter " + f.Pred.String() }

// Join is an inner equi-join on one key pair.
type Join struct {
	Left, Right       Node
	LeftKey, RightKey string
}

func (j *Join) Schema() *predicate.Schema {
	return predicate.Merge(j.Left.Schema(), j.Right.Schema())
}
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }
func (j *Join) withChildren(ch []Node) Node {
	return &Join{Left: ch[0], Right: ch[1], LeftKey: j.LeftKey, RightKey: j.RightKey}
}
func (j *Join) describe() string {
	return fmt.Sprintf("HashJoin %s = %s", j.LeftKey, j.RightKey)
}

// Project keeps only the named columns.
type Project struct {
	Cols  []string
	Input Node
}

func (p *Project) Schema() *predicate.Schema {
	var cols []predicate.Column
	in := p.Input.Schema()
	for _, name := range p.Cols {
		if c, ok := in.Lookup(name); ok {
			cols = append(cols, c)
		}
	}
	return predicate.NewSchema(cols...)
}
func (p *Project) Children() []Node { return []Node{p.Input} }
func (p *Project) withChildren(ch []Node) Node {
	return &Project{Cols: p.Cols, Input: ch[0]}
}
func (p *Project) describe() string { return "Project " + strings.Join(p.Cols, ", ") }

// Aggregate groups by columns and computes aggregates.
type Aggregate struct {
	GroupBy []string
	Aggs    []engine.AggSpec
	Input   Node
}

func (a *Aggregate) Schema() *predicate.Schema {
	var cols []predicate.Column
	in := a.Input.Schema()
	for _, g := range a.GroupBy {
		if c, ok := in.Lookup(g); ok {
			cols = append(cols, c)
		}
	}
	for _, spec := range a.Aggs {
		cols = append(cols, predicate.Column{Name: spec.As, Type: predicate.TypeInteger, NotNull: true})
	}
	return predicate.NewSchema(cols...)
}
func (a *Aggregate) Children() []Node { return []Node{a.Input} }
func (a *Aggregate) withChildren(ch []Node) Node {
	return &Aggregate{GroupBy: a.GroupBy, Aggs: a.Aggs, Input: ch[0]}
}
func (a *Aggregate) describe() string {
	return "Aggregate group by " + strings.Join(a.GroupBy, ", ")
}

// Explain renders the plan tree, one operator per line, children indented —
// the textual analogue of the paper's Fig. 1 plan drawings.
func Explain(n Node) string {
	var sb strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.describe())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}
