package plan

import (
	"math"
	"strings"
	"testing"

	"sia/internal/engine"
	"sia/internal/predicate"
	"sia/internal/predtest"
	"sia/internal/tpch"
)

func TestEstimateSelectivity(t *testing.T) {
	s := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeInteger, NotNull: true},
	)
	cases := []struct {
		src  string
		want float64
	}{
		{"a < 5", 1.0 / 3},
		{"a = 5", 1.0 / 10},
		{"a <> 5", 9.0 / 10},
		{"a < 5 AND b < 5", 1.0 / 9},
		{"a < 5 OR b < 5", 1.0/3 + 1.0/3 - 1.0/9},
		{"NOT a < 5", 2.0 / 3},
		{"TRUE", 1},
		{"FALSE", 0},
	}
	for _, c := range cases {
		got := EstimateSelectivity(predtest.MustParse(c.src, s))
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("EstimateSelectivity(%q) = %f, want %f", c.src, got, c.want)
		}
	}
}

func TestEstimateRows(t *testing.T) {
	cat := smallCatalog(t)
	lineitem, _ := cat.Table("lineitem")
	orders, _ := cat.Table("orders")

	li, err := NewScan(cat, "lineitem")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := EstimateRows(li, cat)
	if err != nil {
		t.Fatal(err)
	}
	if rows != float64(lineitem.NumRows()) {
		t.Fatalf("scan estimate %f != %d", rows, lineitem.NumRows())
	}

	// A filter scales by its selectivity estimate.
	f := &Filter{Pred: predtest.MustParse("l_quantity < 10", tpch.LineitemSchema()), Input: li}
	rows, err = EstimateRows(f, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(lineitem.NumRows()) / 3
	if math.Abs(rows-want) > 1e-9 {
		t.Fatalf("filter estimate %f, want %f", rows, want)
	}

	// A key join with an unfiltered dimension keeps the fact cardinality;
	// filtering the dimension scales the join output proportionally.
	od, _ := NewScan(cat, "orders")
	join := &Join{Left: li, Right: od, LeftKey: "l_orderkey", RightKey: "o_orderkey"}
	rows, err = EstimateRows(join, cat)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rows-float64(lineitem.NumRows())) > 1e-9 {
		t.Fatalf("unfiltered join estimate %f, want %d", rows, lineitem.NumRows())
	}
	filtered := &Join{
		Left:    li,
		Right:   &Filter{Pred: predtest.MustParse("o_orderdate < DATE '1993-01-01'", tpch.OrdersSchema()), Input: od},
		LeftKey: "l_orderkey", RightKey: "o_orderkey",
	}
	rows, err = EstimateRows(filtered, cat)
	if err != nil {
		t.Fatal(err)
	}
	want = float64(lineitem.NumRows()) / 3
	if math.Abs(rows-want) > 1e-9 {
		t.Fatalf("filtered join estimate %f, want %f", rows, want)
	}
	_ = orders
}

func TestExplainEstimate(t *testing.T) {
	cat := smallCatalog(t)
	p := joinQueryPlan(t, cat, "o_orderdate < DATE '1993-06-01'")
	out, err := ExplainEstimate(PushDownFilters(p), cat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "est.") || !strings.Contains(out, "HashJoin") {
		t.Fatalf("missing annotations:\n%s", out)
	}
}

func TestEstimateAggregate(t *testing.T) {
	cat := smallCatalog(t)
	li, _ := NewScan(cat, "lineitem")
	global := &Aggregate{Input: li}
	rows, err := EstimateRows(global, cat)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Fatalf("global aggregate estimate %f", rows)
	}
	grouped := &Aggregate{GroupBy: []string{"l_orderkey"}, Input: li}
	rows, err = EstimateRows(grouped, cat)
	if err != nil {
		t.Fatal(err)
	}
	lineitem, _ := cat.Table("lineitem")
	if rows < 2 || rows > float64(lineitem.NumRows()) {
		t.Fatalf("grouped aggregate estimate %f out of range", rows)
	}
}

func TestEstimateSelectivityWithStats(t *testing.T) {
	cat := smallCatalog(t)
	lineitem, _ := cat.Table("lineitem")
	st, err := engine.BuildStats(lineitem, "l_quantity", 25)
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string]*engine.ColumnStats{"l_quantity": st}
	s := tpch.LineitemSchema()
	// l_quantity is uniform on [1, 50]: the histogram estimate for <= 25
	// should be near 0.5, far better than the 1/3 constant.
	p := predtest.MustParse("l_quantity <= 25", s)
	got := EstimateSelectivityWithStats(p, stats)
	if math.Abs(got-0.5) > 0.06 {
		t.Fatalf("histogram estimate %f, want ~0.5", got)
	}
	// Flipped orientation: 25 >= l_quantity is the same predicate.
	flipped := MustCompare(t, "25 >= l_quantity", s)
	if g2 := EstimateSelectivityWithStats(flipped, stats); math.Abs(g2-got) > 1e-9 {
		t.Fatalf("flipped orientation differs: %f vs %f", g2, got)
	}
	// Columns without stats fall back to the constants.
	q := predtest.MustParse("l_extendedprice < 100", s)
	if g3 := EstimateSelectivityWithStats(q, stats); g3 != 1.0/3 {
		t.Fatalf("fallback = %f, want 1/3", g3)
	}
	// AND composes.
	both := predtest.MustParse("l_quantity <= 25 AND l_extendedprice < 100", s)
	want := got / 3
	if g4 := EstimateSelectivityWithStats(both, stats); math.Abs(g4-want) > 1e-9 {
		t.Fatalf("AND composition = %f, want %f", g4, want)
	}
}

// MustCompare parses a source string and asserts it is a comparison.
func MustCompare(t *testing.T, src string, s *predicate.Schema) *predicate.Compare {
	t.Helper()
	p := predtest.MustParse(src, s)
	c, ok := p.(*predicate.Compare)
	if !ok {
		t.Fatalf("%q is not a comparison", src)
	}
	return c
}
