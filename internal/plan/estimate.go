package plan

import (
	"fmt"
	"strings"

	"sia/internal/engine"
	"sia/internal/predicate"
)

// Default selectivities, in the tradition of System R's magic numbers:
// without data statistics the optimizer guesses a third of rows survive an
// inequality and a tenth survive an equality.
const (
	selInequality = 1.0 / 3
	selEquality   = 1.0 / 10
)

// EstimateRows predicts a plan node's output cardinality from base-table
// row counts and textbook selectivity constants. It powers ExplainEstimate
// and gives the Sia rewrite a quick sanity signal (a synthesized predicate
// with estimated selectivity ~1 is unlikely to pay for its scan — the
// phenomenon Table 4 measures with real selectivities).
func EstimateRows(n Node, c *Catalog) (float64, error) {
	switch x := n.(type) {
	case *Scan:
		n, err := c.rowCount(x.TableName)
		if err != nil {
			return 0, err
		}
		return float64(n), nil
	case *Filter:
		in, err := EstimateRows(x.Input, c)
		if err != nil {
			return 0, err
		}
		return in * EstimateSelectivity(x.Pred), nil
	case *Join:
		l, err := EstimateRows(x.Left, c)
		if err != nil {
			return 0, err
		}
		r, err := EstimateRows(x.Right, c)
		if err != nil {
			return 0, err
		}
		// Key-FK assumption: output ≈ the larger side scaled by the
		// smaller side's retention fraction of its base table.
		lBase, err := baseRows(x.Left, c)
		if err != nil {
			return 0, err
		}
		rBase, err := baseRows(x.Right, c)
		if err != nil {
			return 0, err
		}
		big, bigBase, small, smallBase := l, lBase, r, rBase
		if rBase > lBase {
			big, bigBase, small, smallBase = r, rBase, l, lBase
		}
		_ = bigBase
		if smallBase == 0 {
			return 0, nil
		}
		return big * (small / smallBase), nil
	case *Project:
		return EstimateRows(x.Input, c)
	case *Aggregate:
		in, err := EstimateRows(x.Input, c)
		if err != nil {
			return 0, err
		}
		if len(x.GroupBy) == 0 {
			return 1, nil
		}
		// Square-root group-count heuristic.
		g := 1.0
		for in > 1 && g*g < in {
			g++
		}
		return g, nil
	default:
		return 0, fmt.Errorf("plan: cannot estimate %T", n)
	}
}

// baseRows returns the underlying scan cardinality of a subtree (the
// denominator of retention fractions).
func baseRows(n Node, c *Catalog) (float64, error) {
	switch x := n.(type) {
	case *Scan:
		n, err := c.rowCount(x.TableName)
		if err != nil {
			return 0, err
		}
		return float64(n), nil
	case *Filter:
		return baseRows(x.Input, c)
	case *Project:
		return baseRows(x.Input, c)
	default:
		return EstimateRows(n, c)
	}
}

// EstimateSelectivity predicts the fraction of rows a predicate keeps,
// using independence for AND, inclusion-exclusion for OR, and complement
// for NOT.
func EstimateSelectivity(p predicate.Predicate) float64 {
	switch x := p.(type) {
	case *predicate.Literal:
		if x.B {
			return 1
		}
		return 0
	case *predicate.Compare:
		if x.Op == predicate.CmpEQ {
			return selEquality
		}
		if x.Op == predicate.CmpNE {
			return 1 - selEquality
		}
		return selInequality
	case *predicate.And:
		s := 1.0
		for _, q := range x.Preds {
			s *= EstimateSelectivity(q)
		}
		return s
	case *predicate.Or:
		s := 0.0
		for _, q := range x.Preds {
			sq := EstimateSelectivity(q)
			s = s + sq - s*sq
		}
		return s
	case *predicate.Not:
		return 1 - EstimateSelectivity(x.P)
	default:
		return selInequality
	}
}

// EstimateSelectivityWithStats is EstimateSelectivity with histogram
// statistics: a comparison of a single column against a constant is
// estimated from that column's histogram when one is provided, and every
// other shape falls back to the System-R constants. Statistics are keyed
// by column name (engine.BuildStats).
func EstimateSelectivityWithStats(p predicate.Predicate, stats map[string]*engine.ColumnStats) float64 {
	switch x := p.(type) {
	case *predicate.Compare:
		if sel, ok := compareFromStats(x, stats); ok {
			return sel
		}
		return EstimateSelectivity(x)
	case *predicate.And:
		s := 1.0
		for _, q := range x.Preds {
			s *= EstimateSelectivityWithStats(q, stats)
		}
		return s
	case *predicate.Or:
		s := 0.0
		for _, q := range x.Preds {
			sq := EstimateSelectivityWithStats(q, stats)
			s = s + sq - s*sq
		}
		return s
	case *predicate.Not:
		return 1 - EstimateSelectivityWithStats(x.P, stats)
	default:
		return EstimateSelectivity(p)
	}
}

// compareFromStats recognizes `col op const` (either orientation) and
// answers from the histogram.
func compareFromStats(c *predicate.Compare, stats map[string]*engine.ColumnStats) (float64, bool) {
	col, lok := c.Left.(*predicate.ColumnRef)
	k, rok := c.Right.(*predicate.Const)
	op := c.Op
	if !lok || !rok {
		col, lok = c.Right.(*predicate.ColumnRef)
		k, rok = c.Left.(*predicate.Const)
		op = op.Flip()
	}
	if !lok || !rok || k.Val.Null || !k.Type.Integral() {
		return 0, false
	}
	st, ok := stats[col.Name]
	if !ok {
		return 0, false
	}
	return st.EstimateCompare(op, col.Name, k.Val.Int)
}

// ExplainEstimate renders the plan like Explain, annotating every operator
// with its estimated output cardinality.
func ExplainEstimate(n Node, c *Catalog) (string, error) {
	var sb strings.Builder
	var walk func(n Node, depth int) error
	walk = func(n Node, depth int) error {
		rows, err := EstimateRows(n, c)
		if err != nil {
			return err
		}
		sb.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&sb, "%s  (est. %.0f rows)\n", n.describe(), rows)
		for _, ch := range n.Children() {
			if err := walk(ch, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(n, 0); err != nil {
		return "", err
	}
	return sb.String(), nil
}
