package plan

import (
	"strings"
	"testing"

	"sia/internal/core"
	"sia/internal/predicate"
	"sia/internal/predtest"
	"sia/internal/tpch"
)

func TestSiaRewriteEndToEnd(t *testing.T) {
	cat := smallCatalog(t)
	schema := tpch.JoinSchema()
	// The §2 predicate: every conjunct references o_orderdate, so plain
	// pushdown moves nothing to lineitem; the Sia rule must.
	where := `l_shipdate - o_orderdate < 20
		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
		AND o_orderdate < DATE '1993-06-01'`
	node := joinQueryPlan(t, cat, where)

	rewritten, infos, err := SiaRewrite(node, schema, core.PresetSIA())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("no synthesis attempts recorded")
	}
	var liPred predicate.Predicate
	for _, info := range infos {
		if info.Side == "left" && info.Result.Predicate != nil {
			liPred = info.Result.Predicate
		}
	}
	if liPred == nil {
		t.Fatalf("no lineitem-side predicate synthesized: %+v", infos)
	}
	if !predicate.UsesOnly(liPred, schemaCols(tpch.LineitemSchema())) {
		t.Fatalf("synthesized predicate leaks columns: %s", liPred)
	}

	// After pushdown, a filter must sit on the lineitem side.
	pushed := PushDownFilters(rewritten)
	explained := Explain(pushed)
	idx := strings.Index(explained, "Scan lineitem")
	if idx < 0 {
		t.Fatalf("plan lost lineitem:\n%s", explained)
	}
	before := explained[:idx]
	if !strings.Contains(before[strings.Index(before, "HashJoin"):], "Filter") {
		t.Fatalf("no filter above lineitem below the join:\n%s", explained)
	}

	// Semantics preserved and join input reduced.
	origTable, origStats, err := Execute(PushDownFilters(node), cat)
	if err != nil {
		t.Fatal(err)
	}
	rwTable, rwStats, err := Execute(pushed, cat)
	if err != nil {
		t.Fatal(err)
	}
	if origTable.NumRows() != rwTable.NumRows() {
		t.Fatalf("rewrite changed results: %d vs %d rows", origTable.NumRows(), rwTable.NumRows())
	}
	if rwStats.JoinInputRows >= origStats.JoinInputRows {
		t.Fatalf("rewrite did not reduce join input: %d vs %d", rwStats.JoinInputRows, origStats.JoinInputRows)
	}
}

func TestSiaRewriteSkipsImpliedPredicates(t *testing.T) {
	cat := smallCatalog(t)
	schema := tpch.JoinSchema()
	// o_orderdate already has a single-side bound; the only cross-table
	// conjunct constrains l_shipdate. Synthesis on the orders side must
	// not duplicate the existing bound.
	where := "l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'"
	node := joinQueryPlan(t, cat, where)
	rewritten, _, err := SiaRewrite(node, schema, core.PresetSIA())
	if err != nil {
		t.Fatal(err)
	}
	explained := Explain(PushDownFilters(rewritten))
	if got := strings.Count(explained, "o_orderdate"); got > 2 {
		// The original bound appears once in the orders-side filter and
		// once at most in the residual; a third occurrence means a
		// redundant synthesized copy was conjoined.
		t.Fatalf("redundant orders-side predicate:\n%s", explained)
	}
}

func TestSiaRewriteNoJoinNoChange(t *testing.T) {
	cat := smallCatalog(t)
	li, err := NewScan(cat, "lineitem")
	if err != nil {
		t.Fatal(err)
	}
	f := &Filter{Pred: predtest.MustParse("l_quantity > 10", tpch.LineitemSchema()), Input: li}
	out, infos, err := SiaRewrite(f, tpch.LineitemSchema(), core.PresetSIA())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("no join, but synthesis ran: %+v", infos)
	}
	if Explain(out) != Explain(f) {
		t.Fatalf("plan changed without a join:\n%s", Explain(out))
	}
}
