package plan

import (
	"fmt"
	"time"

	"sia/internal/engine"
	"sia/internal/predicate"
)

// ExecStats records per-run instrumentation: the Fig. 9 experiment compares
// wall-clock time of original vs rewritten plans, and the join input sizes
// explain *why* pushdown wins.
type ExecStats struct {
	// Elapsed is the total execution wall time.
	Elapsed time.Duration
	// JoinInputRows sums the row counts entering join operators.
	JoinInputRows int
	// OutputRows is the final result cardinality.
	OutputRows int
}

// Execute runs a logical plan against the catalog, materializing each
// operator bottom-up.
func Execute(n Node, c *Catalog) (*engine.Table, *ExecStats, error) {
	stats := &ExecStats{}
	start := time.Now()
	out, err := exec(n, c, stats)
	if err != nil {
		return nil, nil, err
	}
	stats.Elapsed = time.Since(start)
	stats.OutputRows = out.NumRows()
	return out, stats, nil
}

func exec(n Node, c *Catalog, stats *ExecStats) (*engine.Table, error) {
	switch x := n.(type) {
	case *Scan:
		return c.Table(x.TableName)
	case *Filter:
		in, err := exec(x.Input, c, stats)
		if err != nil {
			return nil, err
		}
		return engine.Filter(in, x.Pred), nil
	case *Join:
		// Fuse a Filter directly above a child into the join's build or
		// probe phase: the pushed-down predicate is then evaluated during
		// the scan without materializing an intermediate table, the way
		// real engines execute pushdown.
		lchild, lpred := fusedChild(x.Left)
		rchild, rpred := fusedChild(x.Right)
		l, err := exec(lchild, c, stats)
		if err != nil {
			return nil, err
		}
		r, err := exec(rchild, c, stats)
		if err != nil {
			return nil, err
		}
		out, jstats, err := engine.HashJoinWhere(l, r, x.LeftKey, x.RightKey, lpred, rpred)
		if err != nil {
			return nil, err
		}
		stats.JoinInputRows += jstats.LeftIn + jstats.RightIn
		return out, nil
	case *Project:
		in, err := exec(x.Input, c, stats)
		if err != nil {
			return nil, err
		}
		return engine.Project(in, x.Cols)
	case *Aggregate:
		in, err := exec(x.Input, c, stats)
		if err != nil {
			return nil, err
		}
		return engine.Aggregate(in, x.GroupBy, x.Aggs)
	default:
		return nil, fmt.Errorf("plan: unknown node %T", n)
	}
}

// fusedChild peels one Filter off a join input so its predicate can run
// inside the join's build/probe loop.
func fusedChild(n Node) (Node, predicate.Predicate) {
	if f, ok := n.(*Filter); ok {
		return f.Input, f.Pred
	}
	return n, nil
}
