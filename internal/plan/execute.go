package plan

import (
	"fmt"
	"time"

	"sia/internal/engine"
	"sia/internal/predicate"
)

// ExecStats records per-run instrumentation: the Fig. 9 experiment compares
// wall-clock time of original vs rewritten plans, and the join input sizes
// explain *why* pushdown wins.
type ExecStats struct {
	// Elapsed is the total execution wall time.
	Elapsed time.Duration
	// JoinInputRows sums the row counts entering join operators.
	JoinInputRows int
	// OutputRows is the final result cardinality.
	OutputRows int
}

// ExecOptions tunes plan execution without changing its results.
type ExecOptions struct {
	// Parallelism is the engine worker count for every operator in the
	// plan; non-positive means engine.DefaultParallelism (one worker per
	// CPU). The engine guarantees byte-identical results at any setting,
	// so this is purely a performance knob.
	Parallelism int
}

// Execute runs a logical plan against the catalog with default options
// (engine parallelism at DefaultParallelism), materializing each operator
// bottom-up.
func Execute(n Node, c *Catalog) (*engine.Table, *ExecStats, error) {
	return ExecuteOpts(n, c, ExecOptions{})
}

// ExecuteOpts is Execute with explicit options.
func ExecuteOpts(n Node, c *Catalog, opts ExecOptions) (*engine.Table, *ExecStats, error) {
	stats := &ExecStats{}
	start := time.Now()
	out, err := exec(n, c, stats, opts)
	if err != nil {
		return nil, nil, err
	}
	stats.Elapsed = time.Since(start)
	stats.OutputRows = out.NumRows()
	return out, stats, nil
}

func exec(n Node, c *Catalog, stats *ExecStats, opts ExecOptions) (*engine.Table, error) {
	switch x := n.(type) {
	case *Scan:
		if src, ok := c.sourceFor(x); ok {
			return src.ScanFilter(nil, opts.Parallelism)
		}
		return c.Table(x.TableName)
	case *Filter:
		// A filter directly over an external source hands its predicate to
		// the source's combined scan+filter, which may prune whole
		// segments before reading them.
		if src, ok := c.sourceFor(x.Input); ok {
			return src.ScanFilter(x.Pred, opts.Parallelism)
		}
		in, err := exec(x.Input, c, stats, opts)
		if err != nil {
			return nil, err
		}
		return engine.FilterPar(in, x.Pred, opts.Parallelism), nil
	case *Join:
		// Fuse a Filter directly above a child into the join's build or
		// probe phase: the pushed-down predicate is then evaluated during
		// the scan without materializing an intermediate table, the way
		// real engines execute pushdown. Source-backed children instead
		// pre-materialize through ScanFilter, so the pushed-down predicate
		// still reaches the source's zone maps.
		lchild, lpred := fusedChild(x.Left)
		rchild, rpred := fusedChild(x.Right)
		var l, r *engine.Table
		var err error
		if src, ok := c.sourceFor(lchild); ok {
			l, err = src.ScanFilter(lpred, opts.Parallelism)
			lpred = nil
		} else {
			l, err = exec(lchild, c, stats, opts)
		}
		if err != nil {
			return nil, err
		}
		if src, ok := c.sourceFor(rchild); ok {
			r, err = src.ScanFilter(rpred, opts.Parallelism)
			rpred = nil
		} else {
			r, err = exec(rchild, c, stats, opts)
		}
		if err != nil {
			return nil, err
		}
		out, jstats, err := engine.HashJoinWherePar(l, r, x.LeftKey, x.RightKey, lpred, rpred, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		stats.JoinInputRows += jstats.LeftIn + jstats.RightIn
		return out, nil
	case *Project:
		in, err := exec(x.Input, c, stats, opts)
		if err != nil {
			return nil, err
		}
		return engine.ProjectPar(in, x.Cols, opts.Parallelism)
	case *Aggregate:
		in, err := exec(x.Input, c, stats, opts)
		if err != nil {
			return nil, err
		}
		return engine.AggregatePar(in, x.GroupBy, x.Aggs, opts.Parallelism)
	default:
		return nil, fmt.Errorf("plan: unknown node %T", n)
	}
}

// fusedChild peels one Filter off a join input so its predicate can run
// inside the join's build/probe loop.
func fusedChild(n Node) (Node, predicate.Predicate) {
	if f, ok := n.(*Filter); ok {
		return f.Input, f.Pred
	}
	return n, nil
}
