package plan

import (
	"errors"
	"fmt"

	"sia/internal/core"
	"sia/internal/predicate"
)

// SynthesisInfo records one application of the Sia rule: which join side
// the predicate was synthesized for and the synthesis outcome.
type SynthesisInfo struct {
	// Side is "left" or "right".
	Side string
	// Cols is the target column set handed to the synthesizer.
	Cols []string
	// Result is the raw synthesis result.
	Result *core.Result
}

// SiaRewrite applies the paper's rewrite: for every Filter sitting on a
// Join whose predicate spans both sides, it synthesizes (per side) a valid
// predicate over just that side's columns and conjoins it to the filter.
// A subsequent PushDownFilters pass then moves the synthesized conjuncts
// below the join — the plan transformation of Fig. 1.
//
// The returned infos describe every synthesis attempt (used by the
// experiment harness); the rewritten plan is semantically equivalent to the
// input because only verified-valid predicates are added.
func SiaRewrite(n Node, schema *predicate.Schema, opts core.Options) (Node, []SynthesisInfo, error) {
	var infos []SynthesisInfo
	out, err := siaRewrite(n, schema, opts, &infos)
	if err != nil {
		return nil, nil, err
	}
	return out, infos, nil
}

func siaRewrite(n Node, schema *predicate.Schema, opts core.Options, infos *[]SynthesisInfo) (Node, error) {
	f, ok := n.(*Filter)
	if !ok {
		ch := n.Children()
		if len(ch) == 0 {
			return n, nil
		}
		newCh := make([]Node, len(ch))
		for i, c := range ch {
			nc, err := siaRewrite(c, schema, opts, infos)
			if err != nil {
				return nil, err
			}
			newCh[i] = nc
		}
		return n.withChildren(newCh), nil
	}
	join, ok := f.Input.(*Join)
	if !ok {
		in, err := siaRewrite(f.Input, schema, opts, infos)
		if err != nil {
			return nil, err
		}
		return &Filter{Pred: f.Pred, Input: in}, nil
	}

	pred := f.Pred
	predCols := predicate.Columns(pred)
	extra := []predicate.Predicate{}
	for _, side := range []struct {
		name string
		node Node
	}{{"left", join.Left}, {"right", join.Right}} {
		sideCols := intersect(predCols, schemaCols(side.node.Schema()))
		if len(sideCols) == 0 || len(sideCols) == len(predCols) {
			// Nothing to reduce to, or the predicate already lives
			// entirely on this side (plain pushdown handles it).
			continue
		}
		if sideFullyCovered(pred, sideCols) {
			// Every conjunct touching this side is already single-sided;
			// synthesis can add nothing pushdown would not already move.
			continue
		}
		res, err := core.Synthesize(pred, sideCols, schema, opts)
		if err != nil {
			if errors.Is(err, core.ErrUnsupported) {
				continue
			}
			return nil, fmt.Errorf("plan: sia rewrite: %w", err)
		}
		*infos = append(*infos, SynthesisInfo{Side: side.name, Cols: sideCols, Result: res})
		if res.Predicate != nil && res.Valid {
			// Drop the synthesized predicate when the conjuncts plain
			// pushdown already moves to this side imply it — re-filtering
			// with a redundant predicate costs a scan and saves nothing.
			var existing []predicate.Predicate
			for _, conj := range predicate.Conjuncts(pred) {
				if predicate.UsesOnly(conj, sideCols) {
					existing = append(existing, conj)
				}
			}
			if len(existing) > 0 {
				implied, err := core.VerifyReduction(predicate.NewAnd(existing...), res.Predicate, schema)
				if err == nil && implied {
					continue
				}
			}
			extra = append(extra, res.Predicate)
		}
	}
	in, err := siaRewrite(join, schema, opts, infos)
	if err != nil {
		return nil, err
	}
	if len(extra) == 0 {
		return &Filter{Pred: pred, Input: in}, nil
	}
	all := append([]predicate.Predicate{pred}, extra...)
	return &Filter{Pred: predicate.NewAnd(all...), Input: in}, nil
}

// sideFullyCovered reports whether every conjunct of pred that mentions a
// column of sideCols mentions only columns of sideCols.
func sideFullyCovered(pred predicate.Predicate, sideCols []string) bool {
	inSide := map[string]bool{}
	for _, c := range sideCols {
		inSide[c] = true
	}
	for _, conj := range predicate.Conjuncts(pred) {
		touches, outside := false, false
		for _, c := range predicate.Columns(conj) {
			if inSide[c] {
				touches = true
			} else {
				outside = true
			}
		}
		if touches && outside {
			return false
		}
	}
	return true
}

func intersect(a, b []string) []string {
	inB := map[string]bool{}
	for _, x := range b {
		inB[x] = true
	}
	var out []string
	for _, x := range a {
		if inB[x] {
			out = append(out, x)
		}
	}
	return out
}
