package plan

import (
	"strings"
	"testing"

	"sia/internal/engine"
	"sia/internal/predicate"
	"sia/internal/predtest"
	"sia/internal/tpch"
)

func smallCatalog(t *testing.T) *Catalog {
	t.Helper()
	orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: 0.02})
	cat := NewCatalog()
	cat.Add(orders)
	cat.Add(lineitem)
	return cat
}

func joinQueryPlan(t *testing.T, cat *Catalog, where string) Node {
	t.Helper()
	schema := tpch.JoinSchema()
	pred := predtest.MustParse(where, schema)
	l, err := NewScan(cat, "lineitem")
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewScan(cat, "orders")
	if err != nil {
		t.Fatal(err)
	}
	return &Filter{
		Pred:  pred,
		Input: &Join{Left: l, Right: o, LeftKey: "l_orderkey", RightKey: "o_orderkey"},
	}
}

func TestExecuteJoinFilter(t *testing.T) {
	cat := smallCatalog(t)
	p := joinQueryPlan(t, cat, "l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'")
	out, stats, err := Execute(p, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() == 0 {
		t.Fatal("query should return rows on TPC-H-correlated data")
	}
	if stats.JoinInputRows == 0 || stats.OutputRows != out.NumRows() {
		t.Fatalf("stats wrong: %+v", stats)
	}
	// Every output row must satisfy the predicate.
	schema := tpch.JoinSchema()
	pred := predtest.MustParse("l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'", schema)
	for row := 0; row < out.NumRows() && row < 50; row++ {
		if !predicate.Satisfies(pred, out.Tuple(row)) {
			t.Fatalf("row %d violates predicate", row)
		}
	}
}

func TestPushDownEquivalence(t *testing.T) {
	// The pushed-down plan must return exactly the same multiset of rows.
	cat := smallCatalog(t)
	where := "l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01' AND l_commitdate - l_shipdate < 29"
	orig := joinQueryPlan(t, cat, where)
	pushed := PushDownFilters(orig)

	a, _, err := Execute(orig, cat)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Execute(pushed, cat)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("pushdown changed results: %d vs %d rows", a.NumRows(), b.NumRows())
	}
	// The pushed plan must actually have moved single-table conjuncts.
	explained := Explain(pushed)
	if !strings.Contains(explained, "HashJoin") {
		t.Fatalf("plan lost its join:\n%s", explained)
	}
	joinLine := strings.Index(explained, "HashJoin")
	if !strings.Contains(explained[joinLine:], "Filter") {
		t.Fatalf("expected a filter below the join:\n%s", explained)
	}
}

func TestPushDownReducesJoinInput(t *testing.T) {
	cat := smallCatalog(t)
	where := "l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01' AND l_shipdate < DATE '1993-06-20'"
	orig := joinQueryPlan(t, cat, where)
	pushed := PushDownFilters(orig)
	_, so, err := Execute(orig, cat)
	if err != nil {
		t.Fatal(err)
	}
	_, sp, err := Execute(pushed, cat)
	if err != nil {
		t.Fatal(err)
	}
	if sp.JoinInputRows >= so.JoinInputRows {
		t.Fatalf("pushdown did not reduce join input: %d vs %d", sp.JoinInputRows, so.JoinInputRows)
	}
}

func TestPushDownBelowAggregate(t *testing.T) {
	cat := smallCatalog(t)
	li, _ := NewScan(cat, "lineitem")
	agg := &Aggregate{
		GroupBy: []string{"l_orderkey"},
		Aggs:    []engine.AggSpec{{Func: engine.AggCount, As: "n"}},
		Input:   li,
	}
	pred := predtest.MustParse("l_orderkey < 100", predicate.NewSchema(
		predicate.Column{Name: "l_orderkey", Type: predicate.TypeInteger, NotNull: true},
	))
	plan := &Filter{Pred: pred, Input: agg}
	pushed := PushDownFilters(plan)
	// The filter must now sit below the aggregate.
	if _, ok := pushed.(*Aggregate); !ok {
		t.Fatalf("expected Aggregate at the root, got:\n%s", Explain(pushed))
	}
	a, _, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Execute(pushed, cat)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("aggregation pushdown changed results: %d vs %d", a.NumRows(), b.NumRows())
	}
}

func TestConstantPropagation(t *testing.T) {
	s := predicate.NewSchema(
		predicate.Column{Name: "x", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "y", Type: predicate.TypeInteger, NotNull: true},
	)
	p := predtest.MustParse("x = 5 AND x + y = 20", s)
	out := ConstantPropagation(p)
	// After propagation, the second conjunct should not mention x.
	conjs := predicate.Conjuncts(out)
	if len(conjs) != 2 {
		t.Fatalf("conjunct count changed: %s", out)
	}
	if got := predicate.Columns(conjs[1]); len(got) != 1 || got[0] != "y" {
		t.Fatalf("x not propagated: %s", out)
	}
	// Semantics preserved.
	for _, tu := range []predicate.Tuple{
		{"x": predicate.IntVal(5), "y": predicate.IntVal(15)},
		{"x": predicate.IntVal(5), "y": predicate.IntVal(14)},
		{"x": predicate.IntVal(4), "y": predicate.IntVal(16)},
	} {
		if predicate.Eval(p, tu) != predicate.Eval(out, tu) {
			t.Fatalf("propagation changed semantics on %v", tu)
		}
	}
	// No equality: unchanged.
	q := predtest.MustParse("x < 5 AND y > 2", s)
	if ConstantPropagation(q) != q {
		t.Fatal("propagation should be identity without equalities")
	}
}

func TestTransitiveClosureReduce(t *testing.T) {
	s := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "c", Type: predicate.TypeInteger, NotNull: true},
	)
	// a - b <= 3 and b <= 7 give a <= 10.
	p := predtest.MustParse("a - b <= 3 AND b <= 7 AND c > 100", s)
	out := TransitiveClosureReduce(p, []string{"a"})
	if out == nil {
		t.Fatal("expected a derived bound on a")
	}
	if !predicate.UsesOnly(out, []string{"a"}) {
		t.Fatalf("derived predicate uses extra columns: %s", out)
	}
	if !predicate.Satisfies(out, predicate.Tuple{"a": predicate.IntVal(10)}) {
		t.Fatalf("a=10 should satisfy %s", out)
	}
	if predicate.Satisfies(out, predicate.Tuple{"a": predicate.IntVal(11)}) {
		t.Fatalf("a=11 should not satisfy %s", out)
	}
	// Chains: a - b < 3, b - c < 4, c < 5 -> a < 12 over {a} via two hops.
	p2 := predtest.MustParse("a - b < 3 AND b - c < 4 AND c < 5", s)
	out2 := TransitiveClosureReduce(p2, []string{"a"})
	if out2 == nil {
		t.Fatal("expected a chained bound on a")
	}
	if !predicate.Satisfies(out2, predicate.Tuple{"a": predicate.IntVal(9)}) {
		t.Fatalf("a=9 satisfies the chain (b=7,c=4) but %s rejects it", out2)
	}
	// The paper's §2 point: arithmetic outside the difference fragment is
	// ignored, so nothing is derivable here.
	p3 := predtest.MustParse("a - 2*b < 3 AND b < 5", s)
	if got := TransitiveClosureReduce(p3, []string{"a"}); got != nil {
		t.Fatalf("coefficient 2 is outside the fragment, got %s", got)
	}
}

func TestTransitiveClosureSoundness(t *testing.T) {
	// Every derived predicate must be implied by the original: check by
	// exhaustive small-domain enumeration.
	s := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeInteger, NotNull: true},
	)
	cases := []string{
		"a - b <= 3 AND b <= 7",
		"a - b < 3 AND b < 7",
		"a = b AND b <= 4",
		"a - b <= -2 AND b <= 0 AND a >= -30",
	}
	for _, src := range cases {
		p := predtest.MustParse(src, s)
		derived := TransitiveClosureReduce(p, []string{"a", "b"})
		if derived == nil {
			continue
		}
		for a := int64(-12); a <= 12; a++ {
			for b := int64(-12); b <= 12; b++ {
				tu := predicate.Tuple{"a": predicate.IntVal(a), "b": predicate.IntVal(b)}
				if predicate.Satisfies(p, tu) && !predicate.Satisfies(derived, tu) {
					t.Fatalf("%s: derived %s rejects satisfying tuple %v", src, derived, tu)
				}
			}
		}
	}
}

func TestExplain(t *testing.T) {
	cat := smallCatalog(t)
	p := joinQueryPlan(t, cat, "o_orderdate < DATE '1993-06-01'")
	out := Explain(PushDownFilters(p))
	for _, want := range []string{"HashJoin", "Filter", "Scan lineitem", "Scan orders"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}
