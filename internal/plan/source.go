package plan

import (
	"fmt"

	"sia/internal/engine"
	"sia/internal/predicate"
)

// TableSource is an external base table the executor reads through a
// combined scan+filter entry point instead of materializing it up front.
// internal/storage's SegmentTable is the canonical implementation: handing
// it the pushed-down predicate lets it skip whole segments via zone maps,
// which is how a Sia-synthesized single-column range predicate turns into
// I/O elimination rather than mere row filtering.
//
// ScanFilter must return exactly what engine.FilterPar over the fully
// materialized source would (all rows when p is nil), so plans over
// sources stay value-identical to plans over in-memory tables.
type TableSource interface {
	Name() string
	Schema() *predicate.Schema
	NumRows() int
	ScanFilter(p predicate.Predicate, par int) (*engine.Table, error)
}

// AddSource registers an external table source under its name.
func (c *Catalog) AddSource(s TableSource) { c.sources[s.Name()] = s }

// Source looks an external source up by name.
func (c *Catalog) Source(name string) (TableSource, error) {
	s, ok := c.sources[name]
	if !ok {
		return nil, fmt.Errorf("plan: unknown table source %q", name)
	}
	return s, nil
}

// sourceFor resolves a scan to its external source, when the scanned name
// is source-backed (in-memory tables take precedence, preserving the
// pre-source executor behavior for every existing catalog).
func (c *Catalog) sourceFor(n Node) (TableSource, bool) {
	scan, ok := n.(*Scan)
	if !ok {
		return nil, false
	}
	if _, mem := c.tables[scan.TableName]; mem {
		return nil, false
	}
	s, ok := c.sources[scan.TableName]
	return s, ok
}

// rowCount returns the cardinality of a named table or source (the
// estimator's base statistic).
func (c *Catalog) rowCount(name string) (int, error) {
	if t, ok := c.tables[name]; ok {
		return t.NumRows(), nil
	}
	if s, ok := c.sources[name]; ok {
		return s.NumRows(), nil
	}
	return 0, fmt.Errorf("plan: unknown table %q", name)
}
