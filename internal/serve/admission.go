package serve

import (
	"sync"
	"time"
)

// maxTenantBuckets bounds the tenant table so an adversary minting tenant
// names cannot grow it without bound; past the cap, the least recently
// seen tenant's bucket is dropped (it refills to full burst on return,
// which errs toward admitting).
const maxTenantBuckets = 8192

// tokenBucket is a standard leaky token bucket: capacity burst, refill
// rate tokens/second. Guarded by admission.mu.
type tokenBucket struct {
	tokens   float64
	lastFill time.Time
	lastSeen time.Time
}

// admission implements the serving tier's load shedding: a token bucket
// per tenant (fairness between tenants — one tenant's flood exhausts only
// its own bucket) plus a replica-wide cap on concurrently running
// synthesis computations (shed-before-queue: past the cap a miss is
// refused immediately with Retry-After rather than queued behind work the
// replica cannot start).
type admission struct {
	rate  float64 // tokens per second per tenant; <= 0 disables
	burst float64

	mu      sync.Mutex
	tenants map[string]*tokenBucket

	maxInflight int // concurrent synthesis cap; <= 0 disables
	inflightMu  sync.Mutex
	inflight    int

	now func() time.Time // injectable clock for tests
}

func newAdmission(rate float64, burst, maxInflight int) *admission {
	if burst <= 0 {
		burst = 1
	}
	return &admission{
		rate:        rate,
		burst:       float64(burst),
		tenants:     map[string]*tokenBucket{},
		maxInflight: maxInflight,
		now:         time.Now,
	}
}

// admit charges one token to tenant's bucket. When the bucket is empty it
// returns ok=false and the duration after which one token will have
// refilled — the Retry-After value.
func (a *admission) admit(tenant string) (ok bool, retryAfter time.Duration) {
	if a.rate <= 0 {
		return true, 0
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.tenants[tenant]
	if b == nil {
		if len(a.tenants) >= maxTenantBuckets {
			a.evictOldest()
		}
		b = &tokenBucket{tokens: a.burst, lastFill: now}
		a.tenants[tenant] = b
	}
	elapsed := now.Sub(b.lastFill).Seconds()
	if elapsed > 0 {
		b.tokens += elapsed * a.rate
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.lastFill = now
	}
	b.lastSeen = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / a.rate
	return false, time.Duration(need * float64(time.Second))
}

// evictOldest drops the least recently seen tenant. Caller holds a.mu.
func (a *admission) evictOldest() {
	var oldest string
	var when time.Time
	first := true
	for t, b := range a.tenants {
		if first || b.lastSeen.Before(when) {
			oldest, when, first = t, b.lastSeen, false
		}
	}
	delete(a.tenants, oldest)
}

// tryAcquire claims one synthesis slot, refusing (not queueing) when the
// replica is saturated. Balanced by release.
func (a *admission) tryAcquire() bool {
	if a.maxInflight <= 0 {
		return true
	}
	a.inflightMu.Lock()
	defer a.inflightMu.Unlock()
	if a.inflight >= a.maxInflight {
		return false
	}
	a.inflight++
	return true
}

func (a *admission) release() {
	if a.maxInflight <= 0 {
		return
	}
	a.inflightMu.Lock()
	a.inflight--
	a.inflightMu.Unlock()
}
