// Package serve implements the siad serving tier: the versioned v1 HTTP
// API over the synthesis cache, consistent-hash sharding across replicas
// with single-hop forwarding, per-tick request batching beyond
// singleflight, token-bucket admission control with per-tenant fairness,
// and cache snapshot/restore so a restarted replica warms instantly.
// cmd/siad is a thin flag-parsing wrapper around this package; the wire
// types and status mapping live in internal/serve/api, shared with the
// client in internal/serve/client (which is also the peer transport).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"math"
	"mime"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sia/internal/cache"
	"sia/internal/core"
	"sia/internal/obs"
	"sia/internal/predicate"
	"sia/internal/serve/api"
	"sia/internal/serve/client"
)

// DefaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is
// zero: 1 MiB fits any plausible predicate and schema with room to spare.
const DefaultMaxBodyBytes = 1 << 20

// Config configures one replica.
type Config struct {
	// Capacity bounds the synthesis cache (cache.DefaultCapacity if <= 0).
	Capacity int
	// DefaultTimeout applies when a request sets no timeout_ms;
	// MaxTimeout caps client-requested deadlines.
	DefaultTimeout, MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies (413 past it); DefaultMaxBodyBytes
	// when zero.
	MaxBodyBytes int64
	// Logger receives access logs and lifecycle events (JSON to stderr
	// when nil). Replaceable later with SetLogger.
	Logger *slog.Logger
	// Pprof exposes /debug/pprof/ when set.
	Pprof bool

	// Self is this replica's advertised peer address; Peers is the full
	// cluster membership including Self. Both empty means unsharded.
	Self  string
	Peers []string

	// BatchTick is the batching window; 0 disables grouping (requests go
	// straight to the cache, which still singleflights).
	BatchTick time.Duration

	// TenantRate is the per-tenant admission rate in requests/second
	// (0 = unlimited); TenantBurst the bucket size (default 1).
	TenantRate  float64
	TenantBurst int
	// MaxInflight caps concurrently running synthesis computations;
	// cache misses past it are shed with 429 (0 = unlimited).
	MaxInflight int

	// SnapshotPath enables cache snapshot/restore: loaded at New,
	// written every SnapshotInterval (if > 0) and by WriteSnapshot
	// (which the drain path calls).
	SnapshotPath     string
	SnapshotInterval time.Duration

	// Drain, when non-nil, is the externally owned drain flag (cmd/siad
	// shares it with its signal handler). Nil allocates one internally.
	Drain *atomic.Bool

	// Synth, when non-nil, is the externally owned synthesizer (tests
	// and cmd/siad's compatibility shim share one). Nil allocates one.
	Synth *cache.Synthesizer
}

// Server is one serving-tier replica.
type Server struct {
	cfg      Config
	synth    *cache.Synthesizer
	start    time.Time
	logger   atomic.Pointer[slog.Logger]
	draining *atomic.Bool

	ring    *ring
	peers   map[string]*client.Client
	batch   *batcher
	adm     *admission
	schemas *schemaTable

	reg      *obs.Registry
	requests *obs.Counter
	failures *obs.Counter
	latency  map[string]*obs.Histogram

	forwards     *obs.Counter
	forwardErrs  *obs.Counter
	localHits    *obs.Counter
	shedTenant   *obs.Counter
	shedCapacity *obs.Counter
	snapSaves    *obs.Counter
	snapRestored *obs.Counter

	stopOnce sync.Once
	stopCh   chan struct{}
	loopDone chan struct{}
}

// Endpoints with their own latency series; anything else lands in "other"
// so label cardinality stays bounded.
var knownPaths = []string{
	api.PathSynthesize, api.PathBatch, api.PathStats,
	api.LegacySynthesize, api.LegacyStats,
	api.PathHealthz, api.PathMetrics, "/debug/vars", "other",
}

// New builds a replica: wires the cache, ring, batcher, admission and
// metrics, restores the snapshot if one is configured, and starts the
// periodic snapshot loop. Close stops the loop; the handler itself is
// stateless beyond the server.
func New(cfg Config) (*Server, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	s := &Server{
		cfg:      cfg,
		synth:    cfg.Synth,
		start:    time.Now(),
		draining: cfg.Drain,
		schemas:  newSchemaTable(),
		stopCh:   make(chan struct{}),
	}
	if s.synth == nil {
		s.synth = cache.NewSynthesizer(cfg.Capacity)
	}
	if s.draining == nil {
		s.draining = new(atomic.Bool)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	s.logger.Store(logger)

	if len(cfg.Peers) > 0 {
		if cfg.Self == "" {
			return nil, fmt.Errorf("serve: -peers given without -self")
		}
		s.ring = newRing(cfg.Peers)
		found := false
		s.peers = map[string]*client.Client{}
		for _, p := range s.ring.peers {
			if p == cfg.Self {
				found = true
				continue
			}
			s.peers[p] = client.New(p, client.WithRetries(0))
		}
		if !found {
			return nil, fmt.Errorf("serve: self %q is not in the peer list", cfg.Self)
		}
	}

	s.adm = newAdmission(cfg.TenantRate, cfg.TenantBurst, cfg.MaxInflight)
	s.batch = newBatcher(cfg.BatchTick, s.synth, cfg.MaxTimeout)

	if err := s.registerMetrics(); err != nil {
		return nil, err
	}

	if cfg.SnapshotPath != "" {
		n, err := s.loadSnapshot(cfg.SnapshotPath)
		if err != nil {
			logger.Warn("snapshot restore failed; cold start", "path", cfg.SnapshotPath, "err", err.Error())
		} else if n > 0 {
			logger.Info("snapshot restored", "path", cfg.SnapshotPath, "entries", n)
		}
		s.snapRestored.Add(uint64(n))
		if cfg.SnapshotInterval > 0 {
			s.loopDone = make(chan struct{})
			go s.snapshotLoop()
		}
	}
	return s, nil
}

func (s *Server) registerMetrics() error {
	reg := obs.NewRegistry()
	s.reg = reg
	s.requests = reg.Counter("sia_http_requests_total", "HTTP requests served.")
	s.failures = reg.Counter("sia_http_failures_total", "HTTP requests answered with status >= 400.")
	s.latency = map[string]*obs.Histogram{}
	for _, p := range knownPaths {
		s.latency[p] = reg.Histogram("sia_http_request_seconds",
			"HTTP request latency by endpoint.", obs.DurationBuckets(),
			obs.Label{Key: "path", Value: p})
	}
	s.forwards = reg.Counter("sia_serve_shard_forwards_total", "Requests proxied to their owning peer.")
	s.forwardErrs = reg.Counter("sia_serve_shard_forward_errors_total", "Peer proxy attempts that failed over to local synthesis.")
	s.localHits = reg.Counter("sia_serve_shard_local_hits_total", "Peer-owned keys served from the local cache without the hop.")
	s.shedTenant = reg.Counter("sia_serve_shed_total", "Requests shed by admission control.", obs.Label{Key: "reason", Value: "tenant"})
	s.shedCapacity = reg.Counter("sia_serve_shed_total", "Requests shed by admission control.", obs.Label{Key: "reason", Value: "capacity"})
	s.snapSaves = reg.Counter("sia_serve_snapshot_saves_total", "Cache snapshots written.")
	s.snapRestored = reg.Counter("sia_serve_snapshot_restored_entries_total", "Cache entries warmed from a snapshot at boot.")
	s.batch.batches = reg.Counter("sia_serve_batches_total", "Batch group firings.")
	s.batch.batchReqs = reg.Counter("sia_serve_batched_requests_total", "Requests answered by a grouped run instead of their own.")
	s.batch.groupRuns = reg.Counter("sia_serve_group_runs_total", "Batch firings that ran a multi-predicate disjunction.")
	s.batch.sizes = reg.Histogram("sia_serve_batch_size", "Members per batch group firing.", obs.SizeBuckets())
	// A fresh registry cannot already hold these names; a failure here is
	// a programmer error, not a runtime condition.
	if err := s.synth.RegisterMetrics(reg); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := reg.GaugeFunc("sia_process_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() }); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// SetLogger swaps the access-log/lifecycle logger. Safe concurrently with
// request handling.
func (s *Server) SetLogger(l *slog.Logger) {
	if l != nil {
		s.logger.Store(l)
	}
}

// Synth exposes the underlying synthesizer (stats, tests).
func (s *Server) Synth() *cache.Synthesizer { return s.synth }

// StartDrain flips the drain flag: new synthesis work is refused with 503
// and the liveness probe fails so load balancers drain the replica.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Close stops the periodic snapshot loop (if any). It does not write a
// final snapshot; the drain path does that explicitly via WriteSnapshot.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	if s.loopDone != nil {
		<-s.loopDone
	}
}

// WriteSnapshot persists the cache to the configured snapshot path
// atomically, returning the entry count. A no-op (0, nil) without a path.
func (s *Server) WriteSnapshot() (int, error) {
	if s.cfg.SnapshotPath == "" {
		return 0, nil
	}
	n, err := s.writeSnapshot(s.cfg.SnapshotPath)
	if err == nil {
		s.snapSaves.Inc()
	}
	return n, err
}

func (s *Server) snapshotLoop() {
	defer close(s.loopDone)
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n, err := s.WriteSnapshot(); err != nil {
				s.logger.Load().Warn("snapshot write failed", "err", err.Error())
			} else {
				s.logger.Load().Info("snapshot written", "entries", n)
			}
		case <-s.stopCh:
			return
		}
	}
}

// Handler returns the replica's HTTP handler: the v1 routes, the legacy
// aliases (Deprecation-headered), probes, metrics and optional pprof, all
// wrapped in the metrics/access-log middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathSynthesize, s.handleSynthesize)
	mux.HandleFunc(api.PathBatch, s.handleBatch)
	mux.HandleFunc(api.PathStats, s.handleStats)
	mux.HandleFunc(api.LegacySynthesize, s.legacy(s.handleSynthesize))
	mux.HandleFunc(api.LegacyStats, s.legacy(s.handleStats))
	mux.HandleFunc(api.PathHealthz, s.handleHealthz)
	mux.HandleFunc(api.PathMetrics, s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// legacy wraps a v1 handler for its unversioned alias: identical
// behavior, plus the Deprecation header (RFC 8594) pointing callers at
// the v1 route.
func (s *Server) legacy(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.DeprecationHeader, "true")
		w.Header().Set("Link", `</v1>; rel="successor-version"`)
		h(w, r)
	}
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with request counting, per-endpoint latency
// histograms, and one structured access-log line per request. Counters
// are bumped after the handler returns, so a /stats request reports the
// state before itself.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		path := r.URL.Path
		if _, ok := s.latency[path]; !ok {
			path = "other"
		}
		s.requests.Inc()
		if rec.status >= 400 {
			s.failures.Inc()
		}
		s.latency[path].Observe(elapsed.Seconds())

		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", elapsed),
		}
		if tenant := r.Header.Get(api.TenantHeader); tenant != "" {
			attrs = append(attrs, slog.String("tenant", tenant))
		}
		if outcome := rec.Header().Get(api.CacheHeader); outcome != "" {
			attrs = append(attrs, slog.String("cache", outcome))
		}
		if shard := rec.Header().Get(api.ShardHeader); shard != "" {
			attrs = append(attrs, slog.String("shard", shard))
		}
		s.logger.Load().LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set(api.RetryAfterHeader, "5")
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return
	}
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	if status, err := checkContentType(r); err != nil {
		s.fail(w, status, err)
		return
	}
	tenant := r.Header.Get(api.TenantHeader)
	forwarded := r.Header.Get(api.ForwardedHeader) != ""

	// Admission before the body is read: shed work while it is still
	// cheap. Forwarded requests were admitted at their ingress replica.
	if !forwarded {
		if ok, retry := s.adm.admit(tenant); !ok {
			s.shedTenant.Inc()
			w.Header().Set(api.RetryAfterHeader, retryAfterSeconds(retry))
			s.fail(w, http.StatusTooManyRequests,
				fmt.Errorf("%w: tenant %q over rate", api.ErrOverloaded, tenant))
			return
		}
	}

	var req api.SynthesizeRequest
	if status, err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.fail(w, status, err)
		return
	}
	resp, outcome, retryAfter, err := s.process(r.Context(), req, tenant, forwarded)
	if err != nil {
		if retryAfter != "" {
			w.Header().Set(api.RetryAfterHeader, retryAfter)
		}
		s.fail(w, api.StatusFor(err), err)
		return
	}
	if outcome != "" {
		w.Header().Set(api.CacheHeader, outcome)
	}
	if resp.Shard != "" {
		w.Header().Set(api.ShardHeader, resp.Shard)
	}
	writeJSON(w, http.StatusOK, resp)
}

// process answers one parsed-from-the-wire synthesis request: parse,
// deadline, shard route, admission of the miss, batch/synthesize. The
// returned outcome is the X-Sia-Cache value; retryAfter (seconds, as a
// header value) accompanies ErrOverloaded.
func (s *Server) process(ctx context.Context, req api.SynthesizeRequest, tenant string, forwarded bool) (resp api.SynthesizeResponse, outcome, retryAfter string, err error) {
	pr, err := s.parse(req)
	if err != nil {
		return resp, "", "", err
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	} else if req.TimeoutMS < 0 {
		return resp, "", "", fmt.Errorf("%w: timeout_ms must be positive", core.ErrInvalidOptions)
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	start := time.Now()
	owner := s.cfg.Self
	if s.ring != nil {
		owner = s.ring.owner(pr.key)
	}

	// Local lookup first — the one Peek on this path. For a peer-owned
	// key this is the negative-lookup fast path: a positive answer skips
	// the network hop entirely; only a negative one forwards.
	if res, ok := s.synth.Peek(pr.key); ok {
		if owner != s.cfg.Self {
			s.localHits.Inc()
		}
		resp = api.ResultResponse(res)
		resp.Cached = true
		resp.ElapsedMS = time.Since(start).Milliseconds()
		resp.Shard = owner
		return resp, "hit", "", nil
	}

	if s.ring != nil && owner != s.cfg.Self && !forwarded {
		if resp, outcome, err := s.forward(ctx, req, tenant, owner, start); err == nil || errors.Is(err, api.ErrOverloaded) || errors.Is(err, core.ErrInvalidOptions) {
			// Definite answers (success, shed, bad request) relay as-is;
			// transport failures fall through to local synthesis.
			return resp, outcome, "", err
		}
		s.forwardErrs.Inc()
	}

	// A miss is about to consume a synthesis slot; shed instead of
	// queueing when the replica is saturated.
	if !s.adm.tryAcquire() {
		s.shedCapacity.Inc()
		return resp, "", "1", fmt.Errorf("%w: synthesis capacity saturated", api.ErrOverloaded)
	}
	defer s.adm.release()

	out := s.batch.do(ctx, pr)
	if out.err != nil {
		return resp, "", "", out.err
	}
	s.schemas.record(pr.key, out.res, pr.schema)
	resp = api.ResultResponse(out.res)
	resp.Cached = out.cached
	resp.Batched = out.batched
	resp.ElapsedMS = time.Since(start).Milliseconds()
	if s.ring != nil {
		resp.Shard = s.cfg.Self
	}
	switch {
	case out.batched:
		outcome = "batched"
	case out.cached:
		outcome = "hit"
	default:
		outcome = "miss"
	}
	return resp, outcome, "", nil
}

// forward proxies one request to its owning peer, single-hop.
func (s *Server) forward(ctx context.Context, req api.SynthesizeRequest, tenant, owner string, start time.Time) (api.SynthesizeResponse, string, error) {
	s.forwards.Inc()
	peer := s.peers[owner]
	if peer == nil {
		return api.SynthesizeResponse{}, "", fmt.Errorf("serve: no client for peer %q", owner)
	}
	resp, meta, err := peer.Forward(ctx, req, tenant)
	if err != nil {
		return api.SynthesizeResponse{}, "", err
	}
	out := *resp
	out.Shard = owner
	out.ElapsedMS = time.Since(start).Milliseconds()
	return out, meta.CacheOutcome, nil
}

// parse validates the wire request into the internal form.
func (s *Server) parse(req api.SynthesizeRequest) (parsedRequest, error) {
	var pr parsedRequest
	schema, err := api.BuildSchema(req.Schema)
	if err != nil {
		return pr, err
	}
	pred, err := predicate.Parse(req.Predicate, schema)
	if err != nil {
		return pr, fmt.Errorf("%w: parsing predicate: %w", core.ErrInvalidOptions, err)
	}
	opts, err := api.BuildOptions(req.Options)
	if err != nil {
		return pr, err
	}
	key, ok := cache.KeyFor(pred, req.Cols, schema, opts)
	if !ok {
		// Wire requests cannot carry a Solver or Tracer, so every one is
		// cacheable; reaching here is a programmer error.
		return pr, fmt.Errorf("serve: request unexpectedly uncacheable")
	}
	pr = parsedRequest{pred: pred, cols: req.Cols, schema: schema, opts: opts, key: key}
	return pr, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set(api.RetryAfterHeader, "5")
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return
	}
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	if status, err := checkContentType(r); err != nil {
		s.fail(w, status, err)
		return
	}
	var req api.BatchRequest
	if status, err := decodeBody(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		s.fail(w, status, err)
		return
	}
	if len(req.Items) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%w: batch has no items", core.ErrInvalidOptions))
		return
	}
	tenant := r.Header.Get(api.TenantHeader)
	forwarded := r.Header.Get(api.ForwardedHeader) != ""

	// Items run concurrently so the batcher can group them within one
	// tick — that is the endpoint's point. Each item is admitted (one
	// token each: a 100-item batch is 100 requests' worth of budget) and
	// answered independently.
	// taint: len(req.Items) is bounded by the 1 MiB MaxBytesReader cap
	// that decodeBody applies before the request can parse at all.
	out := api.BatchResponse{Items: make([]api.BatchItem, len(req.Items))}
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if !forwarded {
				if ok, _ := s.adm.admit(tenant); !ok {
					s.shedTenant.Inc()
					out.Items[i] = api.BatchItem{
						Status: http.StatusTooManyRequests,
						Error:  fmt.Sprintf("tenant %q over rate", tenant),
					}
					return
				}
			}
			resp, _, _, err := s.process(r.Context(), req.Items[i], tenant, forwarded)
			if err != nil {
				out.Items[i] = api.BatchItem{Status: api.StatusFor(err), Error: err.Error()}
				return
			}
			out.Items[i] = api.BatchItem{Status: http.StatusOK, Result: &resp}
		}(i)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the Prometheus exposition: this server's registry
// (request counters, latency, cache, shard/batch/shed series) merged with
// the process-wide Default registry (synthesis, solver, engine).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, s.reg, obs.Default())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Value(),
		Failures:      s.failures.Value(),
		Cache:         s.synth.Stats(),
		Serve: api.ServeStats{
			Shard:            s.cfg.Self,
			Peers:            s.peerList(),
			Forwards:         s.forwards.Value(),
			ForwardErrors:    s.forwardErrs.Value(),
			LocalHits:        s.localHits.Value(),
			Batches:          s.batch.batches.Value(),
			BatchedRequests:  s.batch.batchReqs.Value(),
			GroupRuns:        s.batch.groupRuns.Value(),
			ShedTenant:       s.shedTenant.Value(),
			ShedCapacity:     s.shedCapacity.Value(),
			SnapshotSaves:    s.snapSaves.Value(),
			SnapshotRestored: s.snapRestored.Value(),
		},
	})
}

func (s *Server) peerList() []string {
	if s.ring == nil {
		return nil
	}
	return s.ring.peers
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, api.ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// checkContentType enforces JSON bodies: a POST carrying an explicit
// non-JSON media type is refused with 415. An absent Content-Type is
// accepted (curl-without-headers ergonomics); a malformed one is not.
func checkContentType(r *http.Request) (int, error) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return 0, nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return http.StatusUnsupportedMediaType,
			fmt.Errorf("%w: malformed Content-Type %q", core.ErrInvalidOptions, ct)
	}
	if mt != "application/json" {
		return http.StatusUnsupportedMediaType,
			fmt.Errorf("%w: Content-Type %q unsupported (use application/json)", core.ErrInvalidOptions, mt)
	}
	return 0, nil
}

// decodeBody reads one JSON value from the request under the body cap:
// 413 past the cap, 400 for malformed or unknown-field JSON.
func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("%w: request body exceeds %d bytes", core.ErrInvalidOptions, tooLarge.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("%w: decoding request: %w", core.ErrInvalidOptions, err)
	}
	return 0, nil
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// at least 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
