package serve

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: the ring is a pure function of the peer set —
// order and duplicates do not change any key's owner.
func TestRingDeterministic(t *testing.T) {
	peers := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	a := newRing(peers)
	b := newRing([]string{peers[2], peers[0], peers[1], peers[0], ""})
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.owner(k) != b.owner(k) {
			t.Fatalf("key %q: owner differs across equivalent rings: %q vs %q", k, a.owner(k), b.owner(k))
		}
	}
}

// TestRingEmpty: no peers means unsharded mode, signalled by a nil ring.
func TestRingEmpty(t *testing.T) {
	if r := newRing(nil); r != nil {
		t.Fatal("nil peer list built a ring")
	}
	if r := newRing([]string{"", ""}); r != nil {
		t.Fatal("all-empty peer list built a ring")
	}
}

// TestRingBalance: with 64 vnodes per peer, load across 3 peers stays
// within a sane spread for uniform keys.
func TestRingBalance(t *testing.T) {
	peers := []string{"a:1", "b:1", "c:1"}
	r := newRing(peers)
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.owner(fmt.Sprintf("%x-key-%d", i*2654435761, i))]++
	}
	for _, p := range peers {
		share := float64(counts[p]) / n
		if share < 0.15 || share > 0.55 {
			t.Fatalf("peer %s owns %.1f%% of keys — ring badly unbalanced (%v)", p, share*100, counts)
		}
	}
}

// TestRingSingleOwner: every key has exactly one owner drawn from the
// peer set, and repeated lookups agree.
func TestRingSingleOwner(t *testing.T) {
	peers := []string{"a:1", "b:1"}
	r := newRing(peers)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		o := r.owner(k)
		if o != peers[0] && o != peers[1] {
			t.Fatalf("owner %q not in the peer set", o)
		}
		if r.owner(k) != o {
			t.Fatalf("key %q: owner not stable", k)
		}
	}
}
