package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"sia/internal/core"
	"sia/internal/fsatomic"
	"sia/internal/predicate"
	"sia/internal/serve/api"
)

// snapshotVersion is bumped whenever the on-disk schema changes; a loader
// refuses versions it does not understand (cold start, never a guess).
const snapshotVersion = 1

// snapshotFile is the on-disk form of a cache snapshot: a version, the
// save time, and one entry per cached synthesis result, most recently
// used first so a capacity-truncated restore keeps the hottest keys.
type snapshotFile struct {
	Version     int             `json:"version"`
	SavedAtUnix int64           `json:"saved_at_unix"`
	Entries     []snapshotEntry `json:"entries"`
}

// snapshotEntry serializes one result. The synthesized predicate travels
// as SQL text plus the schema of its columns, which is exactly enough to
// re-parse it at boot; counters and flags travel verbatim.
type snapshotEntry struct {
	Key          string             `json:"key"`
	Predicate    string             `json:"predicate,omitempty"`
	Schema       []api.SchemaColumn `json:"schema,omitempty"`
	Valid        bool               `json:"valid"`
	Optimal      bool               `json:"optimal"`
	Iterations   int                `json:"iterations"`
	TrueSamples  int                `json:"true_samples"`
	FalseSamples int                `json:"false_samples"`
	GaveUp       string             `json:"gave_up,omitempty"`
}

// schemaTable remembers, per cache key, the wire schema of the columns the
// stored result's predicate mentions — the piece a snapshot needs that the
// cache itself does not hold. It is pruned against the cache's live key
// set at every snapshot write, so it cannot outgrow the cache by more
// than the churn between two writes.
type schemaTable struct {
	mu   sync.Mutex
	cols map[string][]api.SchemaColumn
}

func newSchemaTable() *schemaTable {
	return &schemaTable{cols: map[string][]api.SchemaColumn{}}
}

// record stores the schema columns the result's predicate needs, derived
// from the request schema. A nil result predicate records an empty set.
func (t *schemaTable) record(key string, res *core.Result, schema *predicate.Schema) {
	var cols []api.SchemaColumn
	if res != nil && res.Predicate != nil {
		for _, name := range predicate.Columns(res.Predicate) {
			col, ok := schema.Lookup(name)
			if !ok {
				return // cannot reconstruct; leave unrecorded
			}
			cols = append(cols, api.SchemaColumn{
				Name:     col.Name,
				Type:     api.FormatType(col.Type),
				Nullable: !col.NotNull,
			})
		}
	}
	t.mu.Lock()
	t.cols[key] = cols
	t.mu.Unlock()
}

func (t *schemaTable) lookup(key string) ([]api.SchemaColumn, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cols, ok := t.cols[key]
	return cols, ok
}

// prune drops every key not in live.
func (t *schemaTable) prune(live map[string]bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k := range t.cols {
		if !live[k] {
			delete(t.cols, k)
		}
	}
}

// writeSnapshot persists the cache to path atomically and durably via
// fsatomic: the file is written next to its destination, fsynced, renamed
// into place, and the directory is fsynced — so a crash at any point
// leaves either the previous snapshot or the new one, never an empty or
// torn file under the final name. (A rename without the fsyncs can be
// journaled before the data blocks reach disk; a crash in that window
// used to surface an empty snapshot despite the "atomic" rename.)
func (s *Server) writeSnapshot(path string) (int, error) {
	entries := s.synth.Export()
	live := make(map[string]bool, len(entries))
	snap := snapshotFile{Version: snapshotVersion, SavedAtUnix: time.Now().Unix()}
	for _, e := range entries {
		live[e.Key] = true
		cols, ok := s.schemas.lookup(e.Key)
		if !ok {
			continue // restored-then-evicted races or pre-table entries
		}
		se := snapshotEntry{
			Key:          e.Key,
			Schema:       cols,
			Valid:        e.Res.Valid,
			Optimal:      e.Res.Optimal,
			Iterations:   e.Res.Iterations,
			TrueSamples:  e.Res.TrueSamples,
			FalseSamples: e.Res.FalseSamples,
			GaveUp:       string(e.Res.GaveUp),
		}
		if e.Res.Predicate != nil {
			se.Predicate = e.Res.Predicate.String()
		}
		snap.Entries = append(snap.Entries, se)
	}
	s.schemas.prune(live)

	raw, err := json.Marshal(&snap)
	if err != nil {
		return 0, fmt.Errorf("serve: encoding snapshot: %w", err)
	}
	if err := fsatomic.WriteFileBytes(path, raw); err != nil {
		return 0, fmt.Errorf("serve: writing snapshot: %w", err)
	}
	return len(snap.Entries), nil
}

// loadSnapshot warms the cache from path. Any file-level problem — absent
// file, truncation, garbage, an unknown version — results in a clean cold
// start: (0, nil) for an absent file, (0, err) otherwise, never a panic.
// Entries that individually fail to re-parse are skipped; the rest load.
func (s *Server) loadSnapshot(path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("serve: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(raw, &snap); err != nil {
		return 0, fmt.Errorf("serve: snapshot is corrupt (cold start): %w", err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("serve: snapshot version %d (want %d); cold start", snap.Version, snapshotVersion)
	}
	n := 0
	// Entries are saved MRU-first; load them coldest-first so Put leaves
	// the hottest keys at the LRU front (and, past capacity, retained).
	for i := len(snap.Entries) - 1; i >= 0; i-- {
		e := snap.Entries[i]
		if e.Key == "" {
			continue
		}
		res := &core.Result{
			Valid:        e.Valid,
			Optimal:      e.Optimal,
			Iterations:   e.Iterations,
			TrueSamples:  e.TrueSamples,
			FalseSamples: e.FalseSamples,
			GaveUp:       core.GiveUpReason(e.GaveUp),
		}
		var schema *predicate.Schema
		if e.Predicate != "" {
			sch, err := api.BuildSchema(e.Schema)
			if err != nil {
				continue
			}
			p, err := predicate.Parse(e.Predicate, sch)
			if err != nil {
				continue
			}
			res.Predicate = p
			schema = sch
		} else {
			schema = predicate.NewSchema()
		}
		s.synth.Put(e.Key, res)
		s.schemas.record(e.Key, res, schema)
		n++
	}
	return n, nil
}
