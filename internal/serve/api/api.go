// Package api is the wire contract of the siad serving tier: the versioned
// route table, the typed request/response bodies, the custom headers, and
// the single place where the library's sentinel errors map to HTTP status
// codes (and back). Both sides of every connection — the server in
// internal/serve and the client in internal/serve/client, which is also the
// intra-cluster fan-out transport — import this package, so a request that
// crosses a shard boundary is encoded and classified exactly once.
package api

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"sia/internal/cache"
	"sia/internal/core"
	"sia/internal/predicate"
)

// Versioned routes. The unversioned spellings from the original siad are
// kept as aliases and answered identically, with a Deprecation header.
const (
	PathSynthesize = "/v1/synthesize"
	PathBatch      = "/v1/batch"
	PathStats      = "/v1/stats"
	PathHealthz    = "/healthz"
	PathMetrics    = "/metrics"

	LegacySynthesize = "/synthesize"
	LegacyStats      = "/stats"
)

// Custom headers.
const (
	// TenantHeader names the tenant a request is accounted to for
	// admission control. Absent means the anonymous tenant "".
	TenantHeader = "X-Sia-Tenant"
	// CacheHeader reports the cache outcome of a synthesize response:
	// "hit", "miss" or "batched".
	CacheHeader = "X-Sia-Cache"
	// ShardHeader reports which replica's cache owned the request's key.
	ShardHeader = "X-Sia-Shard"
	// ForwardedHeader marks an intra-cluster proxied request. Forwarding
	// is single-hop: a replica receiving a request with this header serves
	// it locally even when its ring view names another owner, so a
	// transient membership disagreement cannot create a proxy loop.
	ForwardedHeader = "X-Sia-Forwarded"
	// DeprecationHeader is set (RFC 8594 style) on legacy alias routes.
	DeprecationHeader = "Deprecation"
	// RetryAfterHeader accompanies 429 and 503 responses with the number
	// of seconds after which a retry may be admitted.
	RetryAfterHeader = "Retry-After"
)

// Serving-tier sentinel errors. They extend the library sentinels
// (core.ErrTimeout, core.ErrInvalidOptions — re-exported as sia.ErrTimeout
// and sia.ErrInvalidOptions) with the two conditions only a service has:
// load shed and unavailability. All are matchable with errors.Is on both
// sides of the wire.
var (
	// ErrOverloaded reports that admission control shed the request
	// (tenant rate exceeded or the replica's synthesis capacity is
	// saturated). HTTP 429.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrUnavailable reports that the replica is draining or otherwise
	// refusing new work. HTTP 503.
	ErrUnavailable = errors.New("serve: unavailable")
)

// StatusFor maps an error to its HTTP status. This is the one
// sentinel→status table; the server's error paths and the client's
// status→sentinel inverse (ErrorFor) both derive from it.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrInvalidOptions):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrTimeout):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// ErrorFor is StatusFor's inverse: it reconstructs a sentinel-wrapping
// error from a response status and error body, so a client caller can use
// errors.Is exactly as if it had called the library in-process. Statuses
// in the 4xx request-shape family (400, 404, 405, 413, 415) map to
// core.ErrInvalidOptions: the request, not the service, is at fault.
func ErrorFor(status int, msg string) error {
	if msg == "" {
		msg = http.StatusText(status)
	}
	switch status {
	case http.StatusBadRequest, http.StatusNotFound, http.StatusMethodNotAllowed,
		http.StatusRequestEntityTooLarge, http.StatusUnsupportedMediaType:
		return fmt.Errorf("%w: %s", core.ErrInvalidOptions, msg)
	case http.StatusTooManyRequests:
		return fmt.Errorf("%w: %s", ErrOverloaded, msg)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrUnavailable, msg)
	case http.StatusGatewayTimeout:
		return fmt.Errorf("%w: %s", core.ErrTimeout, msg)
	default:
		return fmt.Errorf("serve: status %d: %s", status, msg)
	}
}

// SynthesizeRequest is the wire form of one synthesis call. Durations are
// carried as integral milliseconds, matching how query optimizers configure
// solver timeouts.
type SynthesizeRequest struct {
	Predicate string          `json:"predicate"`
	Cols      []string        `json:"cols"`
	Schema    []SchemaColumn  `json:"schema"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	Options   *RequestOptions `json:"options,omitempty"`
}

// SchemaColumn describes one column of the request's inline schema.
type SchemaColumn struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	Nullable bool   `json:"nullable,omitempty"`
}

// RequestOptions mirrors sia.Options with durations in milliseconds.
type RequestOptions struct {
	MaxIterations       int   `json:"max_iterations,omitempty"`
	InitialTrue         int   `json:"initial_true,omitempty"`
	InitialFalse        int   `json:"initial_false,omitempty"`
	SamplesPerIteration int   `json:"samples_per_iteration,omitempty"`
	MaxDenominator      int64 `json:"max_denominator,omitempty"`
	NonZeroSamples      bool  `json:"non_zero_samples,omitempty"`
	SolverTimeoutMS     int64 `json:"solver_timeout_ms,omitempty"`
	TimeoutMS           int64 `json:"timeout_ms,omitempty"`
}

// SynthesizeResponse is the wire form of one synthesis result.
type SynthesizeResponse struct {
	// Predicate is the synthesized reduction in SQL syntax, or "" when
	// only the trivial TRUE predicate is valid.
	Predicate    string `json:"predicate"`
	Valid        bool   `json:"valid"`
	Optimal      bool   `json:"optimal"`
	Iterations   int    `json:"iterations"`
	TrueSamples  int    `json:"true_samples"`
	FalseSamples int    `json:"false_samples"`
	GaveUp       string `json:"gave_up,omitempty"`
	// Cached reports whether the response was served without running a
	// synthesis loop in this request (a cache hit or a coalesced join).
	Cached bool `json:"cached"`
	// Batched reports whether the result came from a grouped CEGIS run
	// that served several near-identical requests in one tick. A batched
	// result is valid for this request but may be weaker (less selective)
	// than a dedicated run's, and is never marked optimal.
	Batched   bool  `json:"batched,omitempty"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// Shard names the replica whose cache owns this request's key, when
	// the serving tier runs sharded.
	Shard string `json:"shard,omitempty"`
}

// BatchRequest carries several synthesis requests in one call. Items are
// answered independently: one bad item does not fail the batch.
type BatchRequest struct {
	Items []SynthesizeRequest `json:"items"`
}

// BatchItem is the outcome of one batch element: an HTTP-status-shaped
// per-item code plus either a result or an error message.
type BatchItem struct {
	Status int                 `json:"status"`
	Result *SynthesizeResponse `json:"result,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// BatchResponse answers a BatchRequest, item i answering request i.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

// ServeStats extends the original stats payload with the serving tier's
// sharding, batching and admission counters.
type ServeStats struct {
	// Shard is this replica's advertised peer address ("" unsharded).
	Shard string `json:"shard,omitempty"`
	// Peers is the full consistent-hash membership, including self.
	Peers []string `json:"peers,omitempty"`
	// Forwards counts requests proxied to their owning peer; ForwardErrors
	// counts proxy attempts that failed over to local synthesis.
	Forwards      uint64 `json:"forwards"`
	ForwardErrors uint64 `json:"forward_errors"`
	// LocalHits counts peer-owned keys that were served from this
	// replica's cache without the hop (the negative-lookup fast path's
	// positive outcome).
	LocalHits uint64 `json:"local_hits"`
	// Batches counts grouped CEGIS runs; BatchedRequests counts requests
	// answered by one. GroupRuns counts batches whose group held more
	// than one distinct predicate (a disjunction run).
	Batches         uint64 `json:"batches"`
	BatchedRequests uint64 `json:"batched_requests"`
	GroupRuns       uint64 `json:"group_runs"`
	// ShedTenant and ShedCapacity count requests refused by admission
	// control: per-tenant rate and replica saturation respectively.
	ShedTenant   uint64 `json:"shed_tenant"`
	ShedCapacity uint64 `json:"shed_capacity"`
	// SnapshotSaves and SnapshotRestored count snapshot writes and the
	// entries warmed from disk at boot.
	SnapshotSaves    uint64 `json:"snapshot_saves"`
	SnapshotRestored uint64 `json:"snapshot_restored"`
}

// StatsResponse is the body of GET /v1/stats (and the legacy /stats alias).
type StatsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Requests      uint64      `json:"requests"`
	Failures      uint64      `json:"failures"`
	Cache         cache.Stats `json:"cache"`
	Serve         ServeStats  `json:"serve"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// BuildSchema converts the wire schema to the library's form. Errors wrap
// core.ErrInvalidOptions so StatusFor maps them to 400.
func BuildSchema(cols []SchemaColumn) (*predicate.Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: schema must declare at least one column", core.ErrInvalidOptions)
	}
	out := make([]predicate.Column, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("%w: schema column %d has no name", core.ErrInvalidOptions, i)
		}
		t, err := ParseType(c.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: column %q: %w", core.ErrInvalidOptions, c.Name, err)
		}
		out[i] = predicate.Column{Name: c.Name, Type: t, NotNull: !c.Nullable}
	}
	return predicate.NewSchema(out...), nil
}

// ParseType converts a wire type name to the library's column type.
func ParseType(s string) (predicate.Type, error) {
	switch strings.ToLower(s) {
	case "int", "integer":
		return predicate.TypeInteger, nil
	case "double", "float":
		return predicate.TypeDouble, nil
	case "date":
		return predicate.TypeDate, nil
	case "timestamp":
		return predicate.TypeTimestamp, nil
	default:
		return 0, fmt.Errorf("unknown type %q (want int, double, date or timestamp)", s)
	}
}

// FormatType is ParseType's inverse, used when a schema travels into a
// snapshot file.
func FormatType(t predicate.Type) string {
	switch t {
	case predicate.TypeInteger:
		return "int"
	case predicate.TypeDouble:
		return "double"
	case predicate.TypeDate:
		return "date"
	case predicate.TypeTimestamp:
		return "timestamp"
	default:
		return "int"
	}
}

// BuildOptions converts wire options to core.Options, applying Validate so
// malformed values fail with core.ErrInvalidOptions.
func BuildOptions(o *RequestOptions) (core.Options, error) {
	if o == nil {
		return core.Options{}, nil
	}
	opts := core.Options{
		MaxIterations:       o.MaxIterations,
		InitialTrue:         o.InitialTrue,
		InitialFalse:        o.InitialFalse,
		SamplesPerIteration: o.SamplesPerIteration,
		MaxDenominator:      o.MaxDenominator,
		NonZeroSamples:      o.NonZeroSamples,
		SolverTimeout:       time.Duration(o.SolverTimeoutMS) * time.Millisecond,
		Timeout:             time.Duration(o.TimeoutMS) * time.Millisecond,
	}
	if err := opts.Validate(); err != nil {
		return core.Options{}, err
	}
	return opts, nil
}

// ResultResponse converts a library result to its wire form. Cached and
// timing fields are the caller's to fill.
func ResultResponse(res *core.Result) SynthesizeResponse {
	resp := SynthesizeResponse{
		Valid:        res.Valid,
		Optimal:      res.Optimal,
		Iterations:   res.Iterations,
		TrueSamples:  res.TrueSamples,
		FalseSamples: res.FalseSamples,
		GaveUp:       string(res.GaveUp),
	}
	if res.Predicate != nil {
		resp.Predicate = res.Predicate.String()
	}
	return resp
}
