package api

import (
	"errors"
	"net/http"
	"testing"

	"sia/internal/core"
	"sia/internal/predicate"
)

// TestStatusErrorRoundtrip: ErrorFor inverts StatusFor — a sentinel that
// crosses the wire as a status comes back errors.Is-matchable.
func TestStatusErrorRoundtrip(t *testing.T) {
	cases := []struct {
		sentinel error
		status   int
	}{
		{core.ErrInvalidOptions, http.StatusBadRequest},
		{ErrOverloaded, http.StatusTooManyRequests},
		{ErrUnavailable, http.StatusServiceUnavailable},
		{core.ErrTimeout, http.StatusGatewayTimeout},
	}
	for _, c := range cases {
		if got := StatusFor(c.sentinel); got != c.status {
			t.Fatalf("StatusFor(%v) = %d, want %d", c.sentinel, got, c.status)
		}
		back := ErrorFor(c.status, "context message")
		if !errors.Is(back, c.sentinel) {
			t.Fatalf("ErrorFor(%d) = %v, does not match %v", c.status, back, c.sentinel)
		}
		// And the round trip is stable.
		if StatusFor(back) != c.status {
			t.Fatalf("StatusFor(ErrorFor(%d)) = %d", c.status, StatusFor(back))
		}
	}
}

// TestErrorForRequestShapeFamily: the 4xx statuses a client can cause all
// map to the library's invalid-options sentinel.
func TestErrorForRequestShapeFamily(t *testing.T) {
	for _, status := range []int{
		http.StatusBadRequest, http.StatusNotFound, http.StatusMethodNotAllowed,
		http.StatusRequestEntityTooLarge, http.StatusUnsupportedMediaType,
	} {
		if err := ErrorFor(status, ""); !errors.Is(err, core.ErrInvalidOptions) {
			t.Fatalf("status %d: %v does not match ErrInvalidOptions", status, err)
		}
	}
	if err := ErrorFor(http.StatusTeapot, "odd"); errors.Is(err, core.ErrInvalidOptions) {
		t.Fatalf("unmapped status matched a sentinel: %v", err)
	}
}

// TestStatusForUnknown: unrecognized errors are a 500, not a silent 200.
func TestStatusForUnknown(t *testing.T) {
	if got := StatusFor(errors.New("boom")); got != http.StatusInternalServerError {
		t.Fatalf("StatusFor(unknown) = %d", got)
	}
}

// TestBuildSchema: wire schemas convert with the type table; malformed
// ones fail with the invalid-options sentinel so they answer 400.
func TestBuildSchema(t *testing.T) {
	s, err := BuildSchema([]SchemaColumn{
		{Name: "a", Type: "int"},
		{Name: "d", Type: "date", Nullable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if col, ok := s.Lookup("a"); !ok || col.Type != predicate.TypeInteger || !col.NotNull {
		t.Fatalf("column a: %+v", col)
	}
	if col, ok := s.Lookup("d"); !ok || col.Type != predicate.TypeDate || col.NotNull {
		t.Fatalf("column d: %+v", col)
	}

	for name, cols := range map[string][]SchemaColumn{
		"empty":    {},
		"unnamed":  {{Name: "", Type: "int"}},
		"bad type": {{Name: "a", Type: "varchar"}},
	} {
		if _, err := BuildSchema(cols); !errors.Is(err, core.ErrInvalidOptions) {
			t.Fatalf("%s schema: error %v does not match ErrInvalidOptions", name, err)
		}
	}
}

// TestTypeRoundtrip: FormatType inverts ParseType for every library type.
func TestTypeRoundtrip(t *testing.T) {
	for _, typ := range []predicate.Type{
		predicate.TypeInteger, predicate.TypeDouble, predicate.TypeDate, predicate.TypeTimestamp,
	} {
		back, err := ParseType(FormatType(typ))
		if err != nil || back != typ {
			t.Fatalf("type %v: roundtrip gave %v, %v", typ, back, err)
		}
	}
}

// TestBuildOptions: millisecond durations convert, and validation errors
// surface as the invalid-options sentinel.
func TestBuildOptions(t *testing.T) {
	opts, err := BuildOptions(&RequestOptions{MaxIterations: 5, SolverTimeoutMS: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if opts.MaxIterations != 5 || opts.SolverTimeout.Milliseconds() != 1500 {
		t.Fatalf("converted options: %+v", opts)
	}
	if _, err := BuildOptions(&RequestOptions{MaxIterations: -1}); !errors.Is(err, core.ErrInvalidOptions) {
		t.Fatalf("invalid options error %v does not match sentinel", err)
	}
	if opts, err := BuildOptions(nil); err != nil || opts.MaxIterations != 0 || opts.SolverTimeout != 0 {
		t.Fatalf("nil options: %+v, %v", opts, err)
	}
}
