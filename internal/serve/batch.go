package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sia/internal/cache"
	"sia/internal/core"
	"sia/internal/obs"
	"sia/internal/predicate"
)

// parsedRequest is a synthesis request after validation: the predicate is
// parsed, the schema built, the options normalized and the canonical cache
// key computed. Everything past the HTTP layer works on this form.
type parsedRequest struct {
	pred   predicate.Predicate
	cols   []string
	schema *predicate.Schema
	opts   core.Options
	key    string // canonical cache key (cache.KeyFor)
}

// batchOutcome is what a waiter receives.
type batchOutcome struct {
	res     *core.Result
	cached  bool // served without running a CEGIS loop for this request
	batched bool // served by a grouped (multi-predicate) run
	err     error
}

// batcher groups near-identical synthesis requests per tick so one CEGIS
// run serves the group — the step beyond the cache's singleflight, which
// only merges byte-identical keys that overlap in time.
//
// Requests are grouped by target-column subset (names, types, nullability)
// and options fingerprint. Within a tick window, a group fires as:
//
//   - one distinct predicate: a single cached run whose result every
//     member shares (tick-window coalescing);
//   - several distinct predicates: one run for the disjunction P1 OR …
//     OR Pn. A valid reduction R of the disjunction is a valid reduction
//     of every disjunct (Pi ⟹ ∨Pj ⟹ R over the target columns), so R
//     answers every member — possibly weaker than a dedicated run's
//     result, never wrong. Grouped results are stored under each member's
//     cache key with Optimal cleared, so recurring queries hit them.
//
// A zero tick disables grouping: requests go straight to the cache.
type batcher struct {
	tick  time.Duration
	synth *cache.Synthesizer
	// budget bounds a group run when no member carries a deadline.
	budget time.Duration

	mu     sync.Mutex
	groups map[string]*batchGroup

	// Metrics (nil-safe: a zero batcher with no registry skips them).
	batches   *obs.Counter // group firings
	batchReqs *obs.Counter // requests answered by a grouped run
	groupRuns *obs.Counter // firings that ran a disjunction
	sizes     *obs.Histogram
}

type batchGroup struct {
	members []*batchMember
}

type batchMember struct {
	req      parsedRequest
	deadline time.Time // zero when the waiter has no deadline
	ch       chan batchOutcome
}

func newBatcher(tick time.Duration, synth *cache.Synthesizer, budget time.Duration) *batcher {
	return &batcher{
		tick:   tick,
		synth:  synth,
		budget: budget,
		groups: map[string]*batchGroup{},
	}
}

// do answers one parsed request through the batch path: an immediate cache
// hit bypasses the tick; otherwise the request joins its group and waits
// for the group's run (or its own deadline, whichever comes first).
func (b *batcher) do(ctx context.Context, pr parsedRequest) batchOutcome {
	if res, ok := b.synth.Peek(pr.key); ok {
		return batchOutcome{res: res, cached: true}
	}
	if b.tick <= 0 {
		res, cached, err := b.synth.Synthesize(ctx, pr.pred, pr.cols, pr.schema, pr.opts)
		return batchOutcome{res: res, cached: cached, err: err}
	}

	m := &batchMember{req: pr, ch: make(chan batchOutcome, 1)}
	if dl, ok := ctx.Deadline(); ok {
		m.deadline = dl
	}
	gk := groupKeyFor(pr)
	b.mu.Lock()
	g := b.groups[gk]
	if g == nil {
		g = &batchGroup{}
		b.groups[gk] = g
		time.AfterFunc(b.tick, func() { b.fire(gk) })
	}
	g.members = append(g.members, m)
	b.mu.Unlock()

	select {
	case out := <-m.ch:
		if cerr := ctx.Err(); cerr != nil {
			// The result landed in the same instant the deadline passed;
			// deadline expiry wins, matching the cache's semantics.
			return batchOutcome{err: fmt.Errorf("%w: %w", core.ErrTimeout, cerr)}
		}
		return out
	case <-ctx.Done():
		return batchOutcome{err: fmt.Errorf("%w: %w", core.ErrTimeout, ctx.Err())}
	}
}

// fire runs one group: it claims the group's members, partitions them into
// compatible runs, executes, and broadcasts. Runs execute on the firing
// timer's goroutine — one group, one run at a time — with a context
// detached from any single waiter (the run belongs to the whole group).
func (b *batcher) fire(gk string) {
	b.mu.Lock()
	g := b.groups[gk]
	delete(b.groups, gk)
	b.mu.Unlock()
	if g == nil || len(g.members) == 0 {
		return
	}
	inc(b.batches)
	if b.sizes != nil {
		b.sizes.Observe(float64(len(g.members)))
	}

	// Dedup by cache key, preserving arrival order.
	order := []string{}
	byKey := map[string][]*batchMember{}
	for _, m := range g.members {
		if byKey[m.req.key] == nil {
			order = append(order, m.req.key)
		}
		byKey[m.req.key] = append(byKey[m.req.key], m)
	}

	ctx, cancel := b.groupContext(g.members)
	defer cancel()

	if len(order) == 1 {
		// One distinct predicate: a single run, every member shares it.
		ms := byKey[order[0]]
		pr := ms[0].req
		res, cached, err := b.synth.Synthesize(ctx, pr.pred, pr.cols, pr.schema, pr.opts)
		for i, m := range ms {
			m.ch <- batchOutcome{res: res, cached: cached || i > 0, err: err}
		}
		if len(ms) > 1 {
			add(b.batchReqs, uint64(len(ms)-1))
		}
		return
	}

	// Several distinct predicates: one disjunction run per compatible
	// sub-group; members whose schema conflicts with the union fall back
	// to solo runs.
	keys, schema := compatibleUnion(order, byKey)
	if len(keys) >= 2 {
		inc(b.groupRuns)
		add(b.batchReqs, b.runDisjunction(ctx, keys, byKey, schema))
	} else {
		// Fewer than two compatible keys means no disjunction ran; clear
		// keys so the solo fallback below answers every member — a single
		// "compatible" member would otherwise be claimed by neither path
		// and starve until its deadline.
		keys = nil
	}
	for _, k := range order {
		if !contains(keys, k) {
			ms := byKey[k]
			pr := ms[0].req
			res, cached, err := b.synth.Synthesize(ctx, pr.pred, pr.cols, pr.schema, pr.opts)
			for i, m := range ms {
				m.ch <- batchOutcome{res: res, cached: cached || i > 0, err: err}
			}
		}
	}
}

// runDisjunction executes one grouped CEGIS run over the disjunction of
// the distinct predicates in keys and broadcasts the shared result,
// storing it under each member key with Optimal cleared. Returns the
// number of requests answered.
func (b *batcher) runDisjunction(ctx context.Context, keys []string, byKey map[string][]*batchMember, schema *predicate.Schema) uint64 {
	preds := make([]predicate.Predicate, 0, len(keys))
	for _, k := range keys {
		preds = append(preds, byKey[k][0].req.pred)
	}
	first := byKey[keys[0]][0].req
	orPred := predicate.NewOr(preds...)
	res, _, err := b.synth.Synthesize(ctx, orPred, first.cols, schema, first.opts)

	var n uint64
	for _, k := range keys {
		ms := byKey[k]
		out := batchOutcome{err: err, batched: true}
		if err == nil {
			// Members share the group result, never marked optimal: the
			// dedicated run could be stronger. Stored under the member's
			// own key so the recurring form of this request hits.
			shared := *res
			shared.Optimal = false
			out.res = &shared
			b.synth.Put(k, &shared)
		}
		for _, m := range ms {
			m.ch <- out
			n++
		}
	}
	return n
}

// groupContext builds the detached context a group run executes under: its
// deadline is the latest member deadline (every member with budget left
// deserves the run to keep going), or now+budget when no member has one.
func (b *batcher) groupContext(members []*batchMember) (context.Context, context.CancelFunc) {
	var latest time.Time
	all := true
	for _, m := range members {
		if m.deadline.IsZero() {
			all = false
			break
		}
		if m.deadline.After(latest) {
			latest = m.deadline
		}
	}
	if all && !latest.IsZero() {
		return context.WithDeadline(context.Background(), latest)
	}
	if b.budget > 0 {
		return context.WithTimeout(context.Background(), b.budget)
	}
	return context.WithCancel(context.Background())
}

// compatibleUnion merges the visible schemas of the distinct requests in
// order, returning the keys whose columns agree on type and nullability
// plus the merged schema. The first conflicting request (and later ones
// conflicting with the accumulated union) are excluded and run solo.
func compatibleUnion(order []string, byKey map[string][]*batchMember) ([]string, *predicate.Schema) {
	merged := map[string]predicate.Column{}
	var names []string
	var keys []string
	for _, k := range order {
		pr := byKey[k][0].req
		visible := append(predicate.Columns(pr.pred), pr.cols...)
		ok := true
		pending := map[string]predicate.Column{}
		for _, name := range visible {
			col, found := pr.schema.Lookup(name)
			if !found {
				ok = false
				break
			}
			if prev, seen := merged[name]; seen {
				if prev != col {
					ok = false
					break
				}
				continue
			}
			if prev, seen := pending[name]; seen && prev != col {
				ok = false
				break
			}
			pending[name] = col
		}
		if !ok {
			continue
		}
		for name, col := range pending {
			if _, seen := merged[name]; !seen {
				merged[name] = col
				names = append(names, name)
			}
		}
		keys = append(keys, k)
	}
	sort.Strings(names)
	cols := make([]predicate.Column, len(names))
	for i, n := range names {
		cols[i] = merged[n]
	}
	return keys, predicate.NewSchema(cols...)
}

// groupKeyFor computes the batching group key: the target-column subset
// with types and nullability, plus the options fingerprint. Predicate text
// is deliberately excluded — that is what varies within a group.
func groupKeyFor(pr parsedRequest) string {
	cols := append([]string(nil), pr.cols...)
	sort.Strings(cols)
	var sb strings.Builder
	for _, c := range cols {
		col, _ := pr.schema.Lookup(c)
		fmt.Fprintf(&sb, "%s/%s/%t;", c, col.Type, col.NotNull)
	}
	sb.WriteByte('|')
	sb.WriteString(pr.opts.Fingerprint())
	return sb.String()
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// inc and add are nil-safe counter helpers: a batcher wired without
// metrics (tests) skips emission.
func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func add(c *obs.Counter, n uint64) {
	if c != nil {
		c.Add(n)
	}
}
