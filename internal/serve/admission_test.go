package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives the admission bucket's injectable clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestAdmission(rate float64, burst, maxInflight int) (*admission, *fakeClock) {
	a := newAdmission(rate, burst, maxInflight)
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	a.now = clk.now
	return a, clk
}

// TestAdmitBurstAndRefill: a tenant gets its full burst, is then refused
// with a positive Retry-After, and is re-admitted after the refill time.
func TestAdmitBurstAndRefill(t *testing.T) {
	a, clk := newTestAdmission(2, 4, 0) // 2 tokens/s, burst 4

	for i := 0; i < 4; i++ {
		if ok, _ := a.admit("t"); !ok {
			t.Fatalf("request %d refused within burst", i)
		}
	}
	ok, retry := a.admit("t")
	if ok {
		t.Fatal("request past burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter %v, want (0, 500ms] at 2 tokens/s", retry)
	}

	clk.advance(600 * time.Millisecond) // refills 1.2 tokens
	if ok, _ := a.admit("t"); !ok {
		t.Fatal("refused after refill")
	}
	if ok, _ := a.admit("t"); ok {
		t.Fatal("second request admitted on 0.2 tokens")
	}
}

// TestAdmitTenantIsolation: one tenant exhausting its bucket leaves other
// tenants untouched.
func TestAdmitTenantIsolation(t *testing.T) {
	a, _ := newTestAdmission(1, 2, 0)
	for i := 0; i < 2; i++ {
		a.admit("noisy")
	}
	if ok, _ := a.admit("noisy"); ok {
		t.Fatal("noisy tenant admitted past burst")
	}
	if ok, _ := a.admit("quiet"); !ok {
		t.Fatal("quiet tenant shed by noisy tenant's flood")
	}
}

// TestAdmitDisabled: rate <= 0 admits everything.
func TestAdmitDisabled(t *testing.T) {
	a, _ := newTestAdmission(0, 0, 0)
	for i := 0; i < 100; i++ {
		if ok, _ := a.admit("any"); !ok {
			t.Fatal("disabled admission refused a request")
		}
	}
}

// TestTenantTableBounded: minting tenant names beyond the cap evicts the
// least recently seen bucket instead of growing without bound.
func TestTenantTableBounded(t *testing.T) {
	a, clk := newTestAdmission(1, 1, 0)
	for i := 0; i < maxTenantBuckets+50; i++ {
		clk.advance(time.Millisecond)
		a.admit(fmt.Sprintf("tenant-%d", i))
	}
	a.mu.Lock()
	n := len(a.tenants)
	a.mu.Unlock()
	if n > maxTenantBuckets {
		t.Fatalf("tenant table grew to %d, cap is %d", n, maxTenantBuckets)
	}
}

// TestInflightCap: tryAcquire refuses past the cap and release frees the
// slot; a zero cap disables the gate.
func TestInflightCap(t *testing.T) {
	a, _ := newTestAdmission(0, 0, 2)
	if !a.tryAcquire() || !a.tryAcquire() {
		t.Fatal("acquire refused below cap")
	}
	if a.tryAcquire() {
		t.Fatal("acquire admitted past cap")
	}
	a.release()
	if !a.tryAcquire() {
		t.Fatal("acquire refused after release")
	}

	unlimited, _ := newTestAdmission(0, 0, 0)
	for i := 0; i < 10; i++ {
		if !unlimited.tryAcquire() {
			t.Fatal("unlimited gate refused")
		}
	}
}
