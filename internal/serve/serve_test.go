package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sia/internal/core"
	"sia/internal/serve/api"
	"sia/internal/serve/client"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}

func testConfig() Config {
	return Config{
		Capacity:       64,
		DefaultTimeout: 30 * time.Second,
		MaxTimeout:     time.Minute,
		Logger:         discardLogger(),
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = discardLogger()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

const simpleBody = `{
	"predicate": "a - b < 20 AND b < 0",
	"cols": ["a"],
	"schema": [
		{"name": "a", "type": "int"},
		{"name": "b", "type": "int"}
	]
}`

func post(t *testing.T, url, path, body string) (*http.Response, api.SynthesizeResponse, string) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out api.SynthesizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp, out, string(raw)
}

// TestV1AndLegacyAliases: the v1 route and the legacy alias serve the same
// handler; only the alias is marked deprecated.
func TestV1AndLegacyAliases(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	resp, v1, _ := post(t, ts.URL, api.PathSynthesize, simpleBody)
	if resp.StatusCode != http.StatusOK || !v1.Valid {
		t.Fatalf("v1 synthesize: status %d, %+v", resp.StatusCode, v1)
	}
	if d := resp.Header.Get(api.DeprecationHeader); d != "" {
		t.Fatalf("v1 route carries Deprecation header %q", d)
	}

	resp, legacy, _ := post(t, ts.URL, api.LegacySynthesize, simpleBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy synthesize: status %d", resp.StatusCode)
	}
	if resp.Header.Get(api.DeprecationHeader) != "true" {
		t.Fatal("legacy alias missing Deprecation header")
	}
	if !legacy.Cached || legacy.Predicate != v1.Predicate {
		t.Fatalf("legacy alias not served from the same cache: %+v vs %+v", legacy, v1)
	}

	for _, p := range []string{api.PathStats, api.LegacyStats} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		var st api.StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		resp.Body.Close()
		if st.Cache.Misses != 1 {
			t.Fatalf("%s: stats %+v, want 1 miss", p, st.Cache)
		}
	}
}

// TestContentTypeEnforced: an explicit non-JSON media type is refused with
// 415; an absent Content-Type is tolerated.
func TestContentTypeEnforced(t *testing.T) {
	_, ts := newTestServer(t, testConfig())

	resp, err := http.Post(ts.URL+api.PathSynthesize, "text/plain", strings.NewReader(simpleBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain: status %d, want 415", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+api.PathSynthesize, strings.NewReader(simpleBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Del("Content-Type")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("absent Content-Type: status %d, want 200", resp2.StatusCode)
	}
}

// TestBodyCapEnforced is the regression test for the unbounded body read:
// a body past -max-body is refused with 413 and a structured error, and
// the connection survives.
func TestBodyCapEnforced(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBodyBytes = 512
	_, ts := newTestServer(t, cfg)

	huge := fmt.Sprintf(`{"predicate": %q, "cols": ["a"], "schema": [{"name": "a", "type": "int"}]}`,
		"a < 1 AND "+strings.Repeat("a < 1000000 AND ", 200)+"a < 2")
	resp, _, raw := post(t, ts.URL, api.PathSynthesize, huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (body %s)", resp.StatusCode, raw)
	}
	var e api.ErrorResponse
	if err := json.Unmarshal([]byte(raw), &e); err != nil || e.Error == "" {
		t.Fatalf("413 body %q not structured", raw)
	}

	// Within the cap still works.
	resp2, out, _ := post(t, ts.URL, api.PathSynthesize, simpleBody)
	if resp2.StatusCode != http.StatusOK || !out.Valid {
		t.Fatalf("small body after oversized: status %d", resp2.StatusCode)
	}
}

// TestBatchEndpoint: items are answered independently with per-item
// statuses; one malformed item does not fail the batch.
func TestBatchEndpoint(t *testing.T) {
	cfg := testConfig()
	cfg.BatchTick = 5 * time.Millisecond
	_, ts := newTestServer(t, cfg)

	batch := `{"items": [
		` + simpleBody + `,
		{"predicate": "a <", "cols": ["a"], "schema": [{"name": "a", "type": "int"}]},
		{"predicate": "a - b < 5 AND b < 2", "cols": ["a"], "schema": [{"name": "a", "type": "int"}, {"name": "b", "type": "int"}]}
	]}`
	resp, err := http.Post(ts.URL+api.PathBatch, "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out api.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 3 {
		t.Fatalf("batch answered %d items, want 3", len(out.Items))
	}
	if out.Items[0].Status != http.StatusOK || out.Items[0].Result == nil || !out.Items[0].Result.Valid {
		t.Fatalf("item 0: %+v", out.Items[0])
	}
	if out.Items[1].Status != http.StatusBadRequest || out.Items[1].Error == "" {
		t.Fatalf("item 1: %+v, want 400 with error", out.Items[1])
	}
	if out.Items[2].Status != http.StatusOK || out.Items[2].Result == nil {
		t.Fatalf("item 2: %+v", out.Items[2])
	}
}

// TestTenantFairness: one tenant exhausting its bucket is shed with 429 and
// Retry-After while another tenant's requests are still admitted.
func TestTenantFairness(t *testing.T) {
	cfg := testConfig()
	cfg.TenantRate = 0.001 // effectively no refill within the test
	cfg.TenantBurst = 2
	_, ts := newTestServer(t, cfg)

	send := func(tenant string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, ts.URL+api.PathSynthesize, strings.NewReader(simpleBody))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(api.TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 2; i++ {
		if resp := send("noisy"); resp.StatusCode != http.StatusOK {
			t.Fatalf("noisy request %d within burst: status %d", i, resp.StatusCode)
		}
	}
	shed := send("noisy")
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("noisy request past burst: status %d, want 429", shed.StatusCode)
	}
	if ra := shed.Header.Get(api.RetryAfterHeader); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if resp := send("quiet"); resp.StatusCode != http.StatusOK {
		t.Fatalf("quiet tenant shed alongside noisy one: status %d", resp.StatusCode)
	}
}

// --- cluster tests --------------------------------------------------------

// testCluster brings up n in-process replicas with real listeners; the
// returned swap functions allow kill-and-restart without losing the
// address.
type testReplica struct {
	addr string
	ts   *httptest.Server
	swap *swapHandler
	srv  *Server
	cfg  Config
}

type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

func testCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) []*testReplica {
	t.Helper()
	reps := make([]*testReplica, n)
	var addrs []string
	for i := range reps {
		sw := &swapHandler{}
		sw.h.Store(http.NotFoundHandler())
		ts := httptest.NewUnstartedServer(sw)
		reps[i] = &testReplica{ts: ts, swap: sw, addr: ts.Listener.Addr().String()}
		addrs = append(addrs, reps[i].addr)
		t.Cleanup(ts.Close)
	}
	for i, r := range reps {
		cfg := testConfig()
		cfg.Self = r.addr
		cfg.Peers = addrs
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		r.srv, r.cfg = srv, cfg
		r.swap.h.Store(srv.Handler())
		r.ts.Start()
	}
	return reps
}

// TestClusterShardRouting: every replica names the same owner for a key
// (deterministic routing), exactly one replica's cache stores it, and a
// repeat via any ingress is a hit.
func TestClusterShardRouting(t *testing.T) {
	reps := testCluster(t, 3, nil)

	var owner string
	for i, r := range reps {
		resp, out, raw := post(t, r.ts.URL, api.PathSynthesize, simpleBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d: status %d, body %s", i, resp.StatusCode, raw)
		}
		if out.Shard == "" {
			t.Fatalf("replica %d: response names no shard", i)
		}
		if owner == "" {
			owner = out.Shard
		} else if out.Shard != owner {
			t.Fatalf("replica %d routed to %q, others to %q", i, out.Shard, owner)
		}
		if i > 0 && !out.Cached {
			t.Fatalf("replica %d: repeat request missed the shard cache", i)
		}
	}

	// Exactly one cache holds the entry.
	holders := 0
	for _, r := range reps {
		if st := r.srv.Synth().Stats(); st.Entries > 0 {
			holders++
			if r.addr != owner {
				t.Fatalf("entry stored on %q, but shard header said %q", r.addr, owner)
			}
		}
	}
	if holders != 1 {
		t.Fatalf("%d replicas hold the entry, want exactly 1", holders)
	}

	// Total misses across the cluster: one CEGIS run for three ingresses.
	var misses uint64
	for _, r := range reps {
		misses += r.srv.Synth().Stats().Misses
	}
	if misses != 1 {
		t.Fatalf("cluster ran %d synthesis loops for one logical request", misses)
	}
}

// TestClusterRestartWarmsFromSnapshot: a killed replica restarted from its
// snapshot answers its owned keys from cache without new synthesis runs.
func TestClusterRestartWarmsFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	reps := testCluster(t, 3, func(i int, cfg *Config) {
		cfg.SnapshotPath = filepath.Join(dir, fmt.Sprintf("snap.%d", i))
	})

	// Seed several distinct keys through one ingress so every replica owns
	// a few.
	bodies := make([]string, 8)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"predicate": "a - b < %d AND b < %d", "cols": ["a"],
			"schema": [{"name": "a", "type": "int"}, {"name": "b", "type": "int"}]}`, 10+i, i)
		if resp, _, raw := post(t, reps[0].ts.URL, api.PathSynthesize, bodies[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d, body %s", i, resp.StatusCode, raw)
		}
	}

	// Kill replica 0: drain, snapshot, replace with a fresh server.
	r0 := reps[0]
	preStats := r0.srv.Synth().Stats()
	if preStats.Entries == 0 {
		t.Skip("ring assigned no keys to replica 0 (cannot exercise warm restart)")
	}
	r0.srv.StartDrain()
	if _, err := r0.srv.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	r0.srv.Close()
	srv2, err := New(r0.cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Close)
	r0.swap.h.Store(srv2.Handler())

	st2 := srv2.Synth().Stats()
	if st2.Entries != preStats.Entries {
		t.Fatalf("restored %d entries, pre-kill cache held %d", st2.Entries, preStats.Entries)
	}

	// Every seeded request must now be a hit through the restarted
	// replica, with zero new synthesis runs anywhere.
	var missesBefore uint64
	for _, r := range reps[1:] {
		missesBefore += r.srv.Synth().Stats().Misses
	}
	for i, b := range bodies {
		resp, out, raw := post(t, r0.ts.URL, api.PathSynthesize, b)
		if resp.StatusCode != http.StatusOK || !out.Cached {
			t.Fatalf("post-restart probe %d: status %d cached=%v body %s", i, resp.StatusCode, out.Cached, raw)
		}
	}
	var missesAfter uint64
	for _, r := range reps[1:] {
		missesAfter += r.srv.Synth().Stats().Misses
	}
	if st := srv2.Synth().Stats(); st.Misses != 0 || missesAfter != missesBefore {
		t.Fatalf("warm restart still ran synthesis: restarted=%d peers=%d->%d", st.Misses, missesBefore, missesAfter)
	}
}

// TestSnapshotCorruptionColdStart: truncated or garbage snapshot files
// produce a clean cold start, never a crash.
func TestSnapshotCorruptionColdStart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")

	// Build a valid snapshot first.
	cfg := testConfig()
	cfg.SnapshotPath = path
	srvA, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	if resp, _, _ := post(t, tsA.URL, api.PathSynthesize, simpleBody); resp.StatusCode != http.StatusOK {
		t.Fatal("seed failed")
	}
	if n, err := srvA.WriteSnapshot(); err != nil || n == 0 {
		t.Fatalf("snapshot write: n=%d err=%v", n, err)
	}
	tsA.Close()
	srvA.Close()

	for name, corrupt := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"garbage":   func([]byte) []byte { return []byte("not json at all") },
		"version":   func([]byte) []byte { return []byte(`{"version": 999, "entries": []}`) },
	} {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			p2 := filepath.Join(dir, name+".json")
			if err := os.WriteFile(p2, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			cfg.SnapshotPath = p2
			srv, err := New(cfg)
			if err != nil {
				t.Fatalf("corrupt snapshot must cold-start, got constructor error: %v", err)
			}
			defer srv.Close()
			if st := srv.Synth().Stats(); st.Entries != 0 {
				t.Fatalf("cold start restored %d entries from a corrupt file", st.Entries)
			}
		})
	}

	// And the intact file does restore.
	cfgB := testConfig()
	cfgB.SnapshotPath = path
	srvB, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	if st := srvB.Synth().Stats(); st.Entries == 0 {
		t.Fatal("intact snapshot restored nothing")
	}
}

// TestClientSharedWithForwarding: the same client package used by external
// callers drives a request through a non-owner ingress, proving the fan-out
// path and the public path are one implementation.
func TestClientSharedWithForwarding(t *testing.T) {
	reps := testCluster(t, 3, nil)
	req := api.SynthesizeRequest{
		Predicate: "a - b < 20 AND b < 0",
		Cols:      []string{"a"},
		Schema: []api.SchemaColumn{
			{Name: "a", Type: "int"},
			{Name: "b", Type: "int"},
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i, r := range reps {
		c := client.New(r.ts.URL)
		resp, err := c.Synthesize(ctx, req)
		if err != nil {
			t.Fatalf("ingress %d: %v", i, err)
		}
		if !resp.Valid {
			t.Fatalf("ingress %d: invalid result %+v", i, resp)
		}
		if i > 0 && !resp.Cached {
			t.Fatalf("ingress %d: repeat not served from shard cache", i)
		}
	}

	// Sentinel mapping across the wire.
	c := client.New(reps[0].ts.URL)
	_, err := c.Synthesize(ctx, api.SynthesizeRequest{Predicate: "a <", Cols: []string{"a"},
		Schema: []api.SchemaColumn{{Name: "a", Type: "int"}}})
	if !errors.Is(err, core.ErrInvalidOptions) {
		t.Fatalf("parse error not errors.Is-matchable: %v", err)
	}
}

// TestBatchFanOutNoGoroutineLeak: the handleBatch per-item fan-out
// (go func(i int) joined by wg.Wait) must unwind under cancelled request
// contexts — every item goroutine exits once its process call observes
// cancellation, and the goroutine count returns to baseline.
func TestBatchFanOutNoGoroutineLeak(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	base := runtime.NumGoroutine()

	items := make([]api.SynthesizeRequest, 8)
	for i := range items {
		items[i] = api.SynthesizeRequest{
			Predicate: fmt.Sprintf("a - b < %d AND b < %d", 10+i, i),
			Cols:      []string{"a"},
			Schema: []api.SchemaColumn{
				{Name: "a", Type: "int"},
				{Name: "b", Type: "int"},
			},
			TimeoutMS: 30_000,
		}
	}
	body, err := json.Marshal(api.BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}

	hc := &http.Client{Transport: &http.Transport{}}
	for round := 0; round < 10; round++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(round%4)*time.Millisecond)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+api.PathBatch, strings.NewReader(string(body)))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
	}
	hc.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("batch fan-out leaked goroutines: baseline %d, now %d", base, runtime.NumGoroutine())
}
