package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is the number of virtual nodes each peer contributes to the
// consistent-hash ring. 64 points per peer keeps the maximum/minimum load
// ratio within a few percent for small clusters while the ring stays tiny
// (3 peers = 192 points).
const ringVnodes = 64

// ring is a consistent-hash map from cache keys to peer addresses. It is
// immutable after construction, so lookups need no locking, and it is a
// pure function of the sorted peer list: every replica configured with the
// same -peers set computes the same owner for every key, which is what
// makes single-hop forwarding sufficient.
type ring struct {
	points []ringPoint // sorted by hash
	peers  []string    // sorted, deduplicated
}

type ringPoint struct {
	hash uint64
	peer string
}

// newRing builds the ring over peers (order-insensitive; duplicates and
// empty strings are dropped). A nil or empty peer list returns nil: the
// unsharded single-replica mode.
func newRing(peers []string) *ring {
	uniq := map[string]bool{}
	var clean []string
	for _, p := range peers {
		if p != "" && !uniq[p] {
			uniq[p] = true
			clean = append(clean, p)
		}
	}
	if len(clean) == 0 {
		return nil
	}
	sort.Strings(clean)
	r := &ring{peers: clean, points: make([]ringPoint, 0, len(clean)*ringVnodes)}
	for _, p := range clean {
		for i := 0; i < ringVnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding vnode hashes resolve by peer name so the ring stays a
		// pure function of the peer set.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// owner returns the peer owning key: the first ring point clockwise from
// the key's hash.
func (r *ring) owner(key string) string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].peer
}

// ringHash is 64-bit FNV-1a with a splitmix64-style avalanche finalizer.
// The finalizer matters: vnode labels differ only in a short suffix
// ("peer#0" … "peer#63"), and raw FNV leaves their hashes correlated
// enough that one peer can own over half the ring. Full-avalanche mixing
// of the FNV output restores the even spread consistent hashing assumes.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
