package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sia/internal/cache"
	"sia/internal/core"
	"sia/internal/predicate"
)

func mustParsed(t *testing.T, predText string, cols []string, schema *predicate.Schema) parsedRequest {
	t.Helper()
	p, err := predicate.Parse(predText, schema)
	if err != nil {
		t.Fatalf("parsing %q: %v", predText, err)
	}
	key, ok := cache.KeyFor(p, cols, schema, core.Options{})
	if !ok {
		t.Fatalf("no cache key for %q", predText)
	}
	return parsedRequest{pred: p, cols: cols, schema: schema, opts: core.Options{}, key: key}
}

func intSchema() *predicate.Schema {
	return predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeInteger, NotNull: true},
	)
}

// TestBatcherDisjunction: three distinct predicates over the same target
// columns arriving within one tick run ONE CEGIS loop (on the
// disjunction); every member gets a valid, non-optimal, batched result,
// and each member's own cache key is warmed.
func TestBatcherDisjunction(t *testing.T) {
	synth := cache.NewSynthesizer(64)
	b := newBatcher(20*time.Millisecond, synth, 30*time.Second)
	schema := intSchema()

	reqs := make([]parsedRequest, 3)
	for i := range reqs {
		reqs[i] = mustParsed(t, fmt.Sprintf("a - b < %d AND b < %d", 10+i, i), []string{"a"}, schema)
	}

	outs := make([]batchOutcome, len(reqs))
	var wg sync.WaitGroup
	for i, pr := range reqs {
		wg.Add(1)
		go func(i int, pr parsedRequest) {
			defer wg.Done()
			outs[i] = b.do(context.Background(), pr)
		}(i, pr)
	}
	wg.Wait()

	for i, out := range outs {
		if out.err != nil {
			t.Fatalf("member %d: %v", i, out.err)
		}
		if !out.batched {
			t.Fatalf("member %d not marked batched", i)
		}
		if out.res == nil || !out.res.Valid {
			t.Fatalf("member %d: invalid group result %+v", i, out.res)
		}
		if out.res.Optimal {
			t.Fatalf("member %d: grouped result claims optimality", i)
		}
	}
	if st := synth.Stats(); st.Misses != 1 {
		t.Fatalf("group of 3 ran %d synthesis loops, want 1", st.Misses)
	}
	// Each member key was stored, so the recurring form of each request
	// hits without another run.
	for i, pr := range reqs {
		if _, ok := synth.Peek(pr.key); !ok {
			t.Fatalf("member %d: own cache key not warmed by the group run", i)
		}
	}
}

// TestBatcherSameKeyCoalesces: identical requests in one tick share one
// run without a disjunction.
func TestBatcherSameKeyCoalesces(t *testing.T) {
	synth := cache.NewSynthesizer(64)
	b := newBatcher(20*time.Millisecond, synth, 30*time.Second)
	pr := mustParsed(t, "a - b < 20 AND b < 0", []string{"a"}, intSchema())

	outs := make([]batchOutcome, 4)
	var wg sync.WaitGroup
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = b.do(context.Background(), pr)
		}(i)
	}
	wg.Wait()

	cachedCount := 0
	for i, out := range outs {
		if out.err != nil || out.res == nil {
			t.Fatalf("member %d: %v", i, out.err)
		}
		if out.batched {
			t.Fatalf("member %d: single-key group marked as disjunction-batched", i)
		}
		if out.cached {
			cachedCount++
		}
	}
	if st := synth.Stats(); st.Misses != 1 {
		t.Fatalf("4 identical requests ran %d loops, want 1", st.Misses)
	}
	if cachedCount != 3 {
		t.Fatalf("%d members marked cached, want 3 (all but the runner)", cachedCount)
	}
}

// TestBatcherZeroTickPassthrough: tick 0 disables grouping — each request
// goes straight to the cache with the original coalescing semantics.
func TestBatcherZeroTickPassthrough(t *testing.T) {
	synth := cache.NewSynthesizer(64)
	b := newBatcher(0, synth, 30*time.Second)
	pr := mustParsed(t, "a - b < 20 AND b < 0", []string{"a"}, intSchema())

	out := b.do(context.Background(), pr)
	if out.err != nil || out.cached || out.batched {
		t.Fatalf("first passthrough: %+v", out)
	}
	out = b.do(context.Background(), pr)
	if out.err != nil || !out.cached {
		t.Fatalf("second passthrough not a cache hit: %+v", out)
	}
}

// TestGroupKeyExcludesPredicate: the group key depends on the target
// columns and options, never the predicate text.
func TestGroupKeyExcludesPredicate(t *testing.T) {
	schema := intSchema()
	p1 := mustParsed(t, "a < 10", []string{"a"}, schema)
	p2 := mustParsed(t, "a - b < 3 AND b < 1", []string{"a"}, schema)
	if groupKeyFor(p1) != groupKeyFor(p2) {
		t.Fatal("same cols + options produced different group keys")
	}
	p3 := mustParsed(t, "a < 10", []string{"a", "b"}, schema)
	if groupKeyFor(p1) == groupKeyFor(p3) {
		t.Fatal("different target columns shared a group key")
	}
}

// TestCompatibleUnionConflict: a request whose schema disagrees on a
// column's type is excluded from the disjunction and runs solo.
func TestCompatibleUnionConflict(t *testing.T) {
	intS := intSchema()
	dblS := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeDouble, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeInteger, NotNull: true},
	)
	p1 := mustParsed(t, "a < 10", []string{"a"}, intS)
	p2 := mustParsed(t, "a < 20", []string{"a"}, dblS)
	p3 := mustParsed(t, "a < 30", []string{"a"}, intS)

	order := []string{p1.key, p2.key, p3.key}
	byKey := map[string][]*batchMember{
		p1.key: {{req: p1}},
		p2.key: {{req: p2}},
		p3.key: {{req: p3}},
	}
	keys, schema := compatibleUnion(order, byKey)
	if len(keys) != 2 || keys[0] != p1.key || keys[1] != p3.key {
		t.Fatalf("union kept %v, want the two int-typed requests", keys)
	}
	if col, ok := schema.Lookup("a"); !ok || col.Type != predicate.TypeInteger {
		t.Fatalf("merged schema column a: %+v", col)
	}
}

// TestBatcherSingleCompatibleKeyRunsSolo: two distinct predicates share a
// group (same target columns, same options) but conflict on a non-target
// column's schema, so compatibleUnion keeps exactly one key. No
// disjunction can run with a single key; both members must fall back to
// solo runs instead of starving until their deadlines — the fire()
// regression where a lone "compatible" key was claimed by neither the
// disjunction path nor the solo loop. Both arrival orders are pinned
// deterministically.
func TestBatcherSingleCompatibleKeyRunsSolo(t *testing.T) {
	intS := intSchema()
	dblS := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeDouble, NotNull: true},
	)
	pInt := mustParsed(t, "a - b < 5 AND b < 1", []string{"a"}, intS)
	pDbl := mustParsed(t, "a - b < 3 AND b < 1", []string{"a"}, dblS)
	if groupKeyFor(pInt) != groupKeyFor(pDbl) {
		t.Fatalf("requests did not share a group key; scenario invalid")
	}

	orders := []struct {
		name  string
		first parsedRequest
		then  parsedRequest
	}{
		{"compatible-first", pInt, pDbl},
		{"conflicting-first", pDbl, pInt},
	}
	for _, tc := range orders {
		t.Run(tc.name, func(t *testing.T) {
			synth := cache.NewSynthesizer(64)
			b := newBatcher(50*time.Millisecond, synth, 30*time.Second)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()

			var wg sync.WaitGroup
			outs := make([]batchOutcome, 2)
			wg.Add(1)
			go func() { defer wg.Done(); outs[0] = b.do(ctx, tc.first) }()
			waitForMembers(t, b, groupKeyFor(tc.first), 1)
			wg.Add(1)
			go func() { defer wg.Done(); outs[1] = b.do(ctx, tc.then) }()
			wg.Wait()

			// Neither member may starve into its deadline. The
			// double-typed predicate legitimately fails synthesis (the
			// solver rejects mixed-sort atoms) — but it must fail fast
			// with the solver's own error, not core.ErrTimeout.
			for i, out := range outs {
				if errors.Is(out.err, core.ErrTimeout) {
					t.Fatalf("member %d starved: %v", i, out.err)
				}
				if out.batched {
					t.Fatalf("member %d marked batched; no disjunction can run here", i)
				}
			}
			intOut := outs[0]
			if tc.first.key != pInt.key {
				intOut = outs[1]
			}
			if intOut.err != nil {
				t.Fatalf("compatible member failed its solo run: %v", intOut.err)
			}
			if intOut.res == nil || !intOut.res.Valid {
				t.Fatalf("compatible member: invalid result %+v", intOut.res)
			}
		})
	}
}

// waitForMembers blocks until the group for gk holds at least n members,
// pinning arrival order without sleeping past the batch tick.
func waitForMembers(t *testing.T, b *batcher, gk string, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		b.mu.Lock()
		g := b.groups[gk]
		got := 0
		if g != nil {
			got = len(g.members)
		}
		b.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("group %q never reached %d members", gk, n)
}
