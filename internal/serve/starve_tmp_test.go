package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"sia/internal/cache"
	"sia/internal/predicate"
)

// Scenario: two distinct predicates land in one batch group (same target
// column subset), but their schemas conflict on a non-target predicate
// column, so compatibleUnion keeps exactly one key. fire() then neither
// runs the disjunction (len(keys) < 2) nor the solo path (key is in keys).
func TestStarveSingleCompatibleKey(t *testing.T) {
	synth := cache.NewSynthesizer(64)
	b := newBatcher(20*time.Millisecond, synth, 30*time.Second)

	intS := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeInteger, NotNull: true},
	)
	dblS := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "b", Type: predicate.TypeDouble, NotNull: true},
	)
	p1 := mustParsed(t, "a - b < 5 AND b < 1", []string{"a"}, intS)
	p2 := mustParsed(t, "a - b < 3 AND b < 1", []string{"a"}, dblS)
	if groupKeyFor(p1) != groupKeyFor(p2) {
		t.Fatalf("requests did not share a group key; scenario invalid")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	var out1, out2 batchOutcome
	wg.Add(2)
	go func() { defer wg.Done(); out1 = b.do(ctx, p1) }()
	go func() { defer wg.Done(); out2 = b.do(ctx, p2) }()
	wg.Wait()

	t.Logf("out1 (compatible member): err=%v res=%v", out1.err, out1.res != nil)
	t.Logf("out2 (conflicting member): err=%v res=%v", out2.err, out2.res != nil)
	if out1.err != nil {
		t.Fatalf("compatible member starved: %v", out1.err)
	}
}
