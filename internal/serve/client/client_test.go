package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sia/internal/core"
	"sia/internal/serve/api"
)

var wireReq = api.SynthesizeRequest{
	Predicate: "a < 10",
	Cols:      []string{"a"},
	Schema:    []api.SchemaColumn{{Name: "a", Type: "int"}},
}

// TestRetryHonorsRetryAfter: a 429 with Retry-After is retried after
// (roughly) that delay and the eventual 200 is returned.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var gapNS atomic.Int64
	var lastNS atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		now := time.Now().UnixNano()
		if prev := lastNS.Swap(now); prev != 0 {
			gapNS.Store(now - prev)
		}
		if n == 1 {
			w.Header().Set(api.RetryAfterHeader, "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: "shed"})
			return
		}
		json.NewEncoder(w).Encode(api.SynthesizeResponse{Valid: true, Predicate: "a < 10"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2))
	resp, err := c.Synthesize(context.Background(), wireReq)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Valid || calls.Load() != 2 {
		t.Fatalf("resp %+v after %d calls", resp, calls.Load())
	}
	// Retry-After: 1 with ±50% jitter means at least ~500ms between calls.
	if gap := time.Duration(gapNS.Load()); gap < 400*time.Millisecond {
		t.Fatalf("retry came after %v, ignored Retry-After: 1", gap)
	}
}

// TestRetriesExhausted: persistent 503s surface as ErrUnavailable after
// the retry budget, and the attempt count matches 1 + retries.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set(api.RetryAfterHeader, "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "draining"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	_, err := c.Synthesize(context.Background(), wireReq)
	if !errors.Is(err, api.ErrUnavailable) {
		t.Fatalf("error %v does not match ErrUnavailable", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("%d attempts, want 3 (1 + 2 retries)", n)
	}
}

// TestNoRetryOn400: request-shape errors are terminal — one attempt, and
// the error matches the library sentinel.
func TestNoRetryOn400(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "bad predicate"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(5))
	_, err := c.Synthesize(context.Background(), wireReq)
	if !errors.Is(err, core.ErrInvalidOptions) {
		t.Fatalf("error %v does not match ErrInvalidOptions", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("400 was retried %d times", n-1)
	}
}

// TestForwardSingleHop: Forward marks the request with the forwarded
// header, sends the tenant, never retries, and relays the peer's cache
// outcome and status in the meta.
func TestForwardSingleHop(t *testing.T) {
	var calls atomic.Int64
	var sawForwarded, sawTenant atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		sawForwarded.Store(r.Header.Get(api.ForwardedHeader) != "")
		sawTenant.Store(r.Header.Get(api.TenantHeader) == "t9")
		w.Header().Set(api.CacheHeader, "hit")
		json.NewEncoder(w).Encode(api.SynthesizeResponse{Valid: true, Cached: true})
	}))
	defer ts.Close()

	c := New(ts.URL)
	resp, meta, err := c.Forward(context.Background(), wireReq, "t9")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached || meta.Status != http.StatusOK || meta.CacheOutcome != "hit" {
		t.Fatalf("resp %+v meta %+v", resp, meta)
	}
	if !sawForwarded.Load() {
		t.Fatal("forwarded request missing the single-hop marker header")
	}
	if !sawTenant.Load() {
		t.Fatal("forwarded request dropped the tenant header")
	}

	// A shedding peer is NOT retried by Forward; the meta relays the answer.
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set(api.RetryAfterHeader, "7")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "shed"})
	}))
	defer shed.Close()
	calls.Store(0)
	_, meta, err = New(shed.URL, WithRetries(5)).Forward(context.Background(), wireReq, "")
	if !errors.Is(err, api.ErrOverloaded) {
		t.Fatalf("shed forward error %v", err)
	}
	if meta.Status != http.StatusTooManyRequests || meta.RetryAfter != "7" {
		t.Fatalf("shed meta %+v", meta)
	}
	if calls.Load() != 1 {
		t.Fatalf("Forward retried a 429 (%d calls)", calls.Load())
	}
}

// TestBareHostGetsScheme: a host:port base URL is usable as-is.
func TestBareHostGetsScheme(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.StatsResponse{Requests: 42})
	}))
	defer ts.Close()

	c := New(ts.Listener.Addr().String())
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 42 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRetryAfterParsing covers the Retry-After grammar: delta-seconds,
// absolute HTTP-dates (future and past), zero, and garbage.
func TestRetryAfterParsing(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
		ok   bool
	}{
		{"delta seconds", "7", 7 * time.Second, true},
		{"zero", "0", 0, true},
		{"negative", "-3", 0, false},
		{"garbage", "soon", 0, false},
		{"empty", "", 0, false},
		{"http date future", now.Add(42 * time.Second).Format(http.TimeFormat), 42 * time.Second, true},
		{"http date past", now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := retryAfterDelay(tc.v, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("retryAfterDelay(%q) = (%v, %v), want (%v, %v)", tc.v, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestRetryDelayCapsAndFallbacks: a huge Retry-After is capped to
// maxRetryAfter, zero falls back to the base backoff, and garbage uses
// exponential backoff from the base.
func TestRetryDelayCapsAndFallbacks(t *testing.T) {
	c := New("example:1", WithBackoff(100*time.Millisecond))
	now := time.Now()
	if d := c.retryDelay(0, "86400", now); d != maxRetryAfter {
		t.Fatalf("day-long Retry-After gave %v, want cap %v", d, maxRetryAfter)
	}
	if d := c.retryDelay(0, now.Add(2*time.Hour).Format(http.TimeFormat), now); d != maxRetryAfter {
		t.Fatalf("far-future HTTP-date gave %v, want cap %v", d, maxRetryAfter)
	}
	if d := c.retryDelay(0, "0", now); d != 100*time.Millisecond {
		t.Fatalf("zero Retry-After gave %v, want base backoff", d)
	}
	if d := c.retryDelay(2, "nonsense", now); d != 400*time.Millisecond {
		t.Fatalf("garbage Retry-After on attempt 2 gave %v, want 4x base", d)
	}
}

// TestJitterEnvelope: the jitter multiplier stays inside the documented
// ±50% envelope across many draws and actually varies.
func TestJitterEnvelope(t *testing.T) {
	c := New("example:1")
	seen := map[float64]bool{}
	for i := 0; i < 10000; i++ {
		m := c.jitterMult()
		if m < 0.5 || m >= 1.5 {
			t.Fatalf("draw %d: jitter multiplier %v outside [0.5, 1.5)", i, m)
		}
		seen[m] = true
	}
	if len(seen) < 100 {
		t.Fatalf("jitter drew only %d distinct values in 10000 tries", len(seen))
	}
}
