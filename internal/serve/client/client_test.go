package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sia/internal/core"
	"sia/internal/serve/api"
)

var wireReq = api.SynthesizeRequest{
	Predicate: "a < 10",
	Cols:      []string{"a"},
	Schema:    []api.SchemaColumn{{Name: "a", Type: "int"}},
}

// TestRetryHonorsRetryAfter: a 429 with Retry-After is retried after
// (roughly) that delay and the eventual 200 is returned.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var gapNS atomic.Int64
	var lastNS atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		now := time.Now().UnixNano()
		if prev := lastNS.Swap(now); prev != 0 {
			gapNS.Store(now - prev)
		}
		if n == 1 {
			w.Header().Set(api.RetryAfterHeader, "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: "shed"})
			return
		}
		json.NewEncoder(w).Encode(api.SynthesizeResponse{Valid: true, Predicate: "a < 10"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2))
	resp, err := c.Synthesize(context.Background(), wireReq)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Valid || calls.Load() != 2 {
		t.Fatalf("resp %+v after %d calls", resp, calls.Load())
	}
	// Retry-After: 1 with ±50% jitter means at least ~500ms between calls.
	if gap := time.Duration(gapNS.Load()); gap < 400*time.Millisecond {
		t.Fatalf("retry came after %v, ignored Retry-After: 1", gap)
	}
}

// TestRetriesExhausted: persistent 503s surface as ErrUnavailable after
// the retry budget, and the attempt count matches 1 + retries.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set(api.RetryAfterHeader, "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "draining"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	_, err := c.Synthesize(context.Background(), wireReq)
	if !errors.Is(err, api.ErrUnavailable) {
		t.Fatalf("error %v does not match ErrUnavailable", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("%d attempts, want 3 (1 + 2 retries)", n)
	}
}

// TestNoRetryOn400: request-shape errors are terminal — one attempt, and
// the error matches the library sentinel.
func TestNoRetryOn400(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "bad predicate"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(5))
	_, err := c.Synthesize(context.Background(), wireReq)
	if !errors.Is(err, core.ErrInvalidOptions) {
		t.Fatalf("error %v does not match ErrInvalidOptions", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("400 was retried %d times", n-1)
	}
}

// TestForwardSingleHop: Forward marks the request with the forwarded
// header, sends the tenant, never retries, and relays the peer's cache
// outcome and status in the meta.
func TestForwardSingleHop(t *testing.T) {
	var calls atomic.Int64
	var sawForwarded, sawTenant atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		sawForwarded.Store(r.Header.Get(api.ForwardedHeader) != "")
		sawTenant.Store(r.Header.Get(api.TenantHeader) == "t9")
		w.Header().Set(api.CacheHeader, "hit")
		json.NewEncoder(w).Encode(api.SynthesizeResponse{Valid: true, Cached: true})
	}))
	defer ts.Close()

	c := New(ts.URL)
	resp, meta, err := c.Forward(context.Background(), wireReq, "t9")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached || meta.Status != http.StatusOK || meta.CacheOutcome != "hit" {
		t.Fatalf("resp %+v meta %+v", resp, meta)
	}
	if !sawForwarded.Load() {
		t.Fatal("forwarded request missing the single-hop marker header")
	}
	if !sawTenant.Load() {
		t.Fatal("forwarded request dropped the tenant header")
	}

	// A shedding peer is NOT retried by Forward; the meta relays the answer.
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set(api.RetryAfterHeader, "7")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "shed"})
	}))
	defer shed.Close()
	calls.Store(0)
	_, meta, err = New(shed.URL, WithRetries(5)).Forward(context.Background(), wireReq, "")
	if !errors.Is(err, api.ErrOverloaded) {
		t.Fatalf("shed forward error %v", err)
	}
	if meta.Status != http.StatusTooManyRequests || meta.RetryAfter != "7" {
		t.Fatalf("shed meta %+v", meta)
	}
	if calls.Load() != 1 {
		t.Fatalf("Forward retried a 429 (%d calls)", calls.Load())
	}
}

// TestBareHostGetsScheme: a host:port base URL is usable as-is.
func TestBareHostGetsScheme(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.StatsResponse{Requests: 42})
	}))
	defer ts.Close()

	c := New(ts.Listener.Addr().String())
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 42 {
		t.Fatalf("stats %+v", st)
	}
}
