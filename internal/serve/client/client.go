// Package client is the Go client for the siad v1 API — and the serving
// tier's own intra-cluster transport: the peer fan-out a sharded replica
// uses to proxy a request to its owner goes through exactly this code, so
// external callers and the cluster itself exercise one path.
//
// Errors are sentinel-matchable with errors.Is, mirroring the library:
// a 400-family response matches sia.ErrInvalidOptions, 429 matches
// api.ErrOverloaded, 503 api.ErrUnavailable, 504 sia.ErrTimeout. Retries
// (429/503 only, honoring Retry-After, with jitter) are on by default for
// external use and disabled for intra-cluster forwarding, where the
// ingress replica owns the retry budget.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sia/internal/serve/api"
)

// Client talks to one siad replica. Safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	tenant  string
	retries int           // additional attempts after the first
	backoff time.Duration // base backoff when no Retry-After is given

	mu  sync.Mutex
	rng *rand.Rand
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (defaults to a client with a
// 2-minute overall timeout; per-request contexts still bound each call).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTenant sets the X-Sia-Tenant header on every request.
func WithTenant(t string) Option { return func(c *Client) { c.tenant = t } }

// WithRetries sets how many times a 429/503 answer is retried (default 2;
// 0 disables retrying).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base delay used when a retryable answer carries no
// Retry-After header (default 100ms, doubled per attempt, jittered).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// New returns a client for the replica at baseURL (e.g.
// "http://10.0.0.1:8080"; a bare host:port gets http://).
func New(baseURL string, opts ...Option) *Client {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{Timeout: 2 * time.Minute},
		retries: 2,
		backoff: 100 * time.Millisecond,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Synthesize posts one synthesis request and decodes the result. The
// returned error wraps the sentinel matching the response status.
func (c *Client) Synthesize(ctx context.Context, req api.SynthesizeRequest) (*api.SynthesizeResponse, error) {
	var out api.SynthesizeResponse
	if err := c.call(ctx, api.PathSynthesize, req, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch posts several synthesis requests in one call; item i of the
// response answers item i of the request.
func (c *Client) Batch(ctx context.Context, req api.BatchRequest) (*api.BatchResponse, error) {
	var out api.BatchResponse
	if err := c.call(ctx, api.PathBatch, req, &out, nil); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the replica's serving statistics.
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.PathStats, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, fmt.Errorf("client: GET %s: %w", api.PathStats, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	var out api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding stats: %w", err)
	}
	return &out, nil
}

// ForwardMeta carries the proxy-relevant response metadata alongside a
// forwarded result.
type ForwardMeta struct {
	// Status is the peer's HTTP status (set even when an error is
	// returned, so the proxy can relay it).
	Status int
	// CacheOutcome is the peer's X-Sia-Cache header ("hit", "miss",
	// "batched").
	CacheOutcome string
	// RetryAfter relays the peer's Retry-After header, when present.
	RetryAfter string
}

// Forward posts req to the replica as an intra-cluster single-hop proxy:
// the X-Sia-Forwarded header stops the peer from proxying again, tenant
// accounting stays with the ingress replica, and no retries happen here
// (the ingress replica decides whether to fail over to local synthesis).
// On a non-200 answer the error carries the matching sentinel and meta
// still reports the status for relaying.
func (c *Client) Forward(ctx context.Context, req api.SynthesizeRequest, tenant string) (*api.SynthesizeResponse, ForwardMeta, error) {
	var meta ForwardMeta
	body, err := json.Marshal(req)
	if err != nil {
		return nil, meta, fmt.Errorf("client: encoding request: %w", err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+api.PathSynthesize, bytes.NewReader(body))
	if err != nil {
		return nil, meta, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(api.ForwardedHeader, "1")
	if tenant != "" {
		httpReq.Header.Set(api.TenantHeader, tenant)
	}
	resp, err := c.hc.Do(httpReq)
	if err != nil {
		return nil, meta, fmt.Errorf("client: forwarding: %w", err)
	}
	defer resp.Body.Close()
	meta.Status = resp.StatusCode
	meta.CacheOutcome = resp.Header.Get(api.CacheHeader)
	meta.RetryAfter = resp.Header.Get(api.RetryAfterHeader)
	if resp.StatusCode != http.StatusOK {
		return nil, meta, statusError(resp)
	}
	var out api.SynthesizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, meta, fmt.Errorf("client: decoding forwarded response: %w", err)
	}
	return &out, meta, nil
}

// call posts body to path, retrying 429/503 per the client's budget.
func (c *Client) call(ctx context.Context, path string, body, out any, extra http.Header) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		httpReq.Header.Set("Content-Type", "application/json")
		if c.tenant != "" {
			httpReq.Header.Set(api.TenantHeader, c.tenant)
		}
		for k, vs := range extra {
			for _, v := range vs {
				httpReq.Header.Add(k, v)
			}
		}
		resp, err := c.hc.Do(httpReq)
		if err != nil {
			return fmt.Errorf("client: POST %s: %w", path, err)
		}
		if resp.StatusCode == http.StatusOK {
			err := json.NewDecoder(resp.Body).Decode(out)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("client: decoding response: %w", err)
			}
			return nil
		}
		retryAfter := resp.Header.Get(api.RetryAfterHeader)
		lastErr = statusError(resp)
		resp.Body.Close()
		if attempt >= c.retries || !retryable(resp.StatusCode) {
			return lastErr
		}
		if err := c.sleep(ctx, attempt, retryAfter); err != nil {
			return fmt.Errorf("%w (last answer: %w)", err, lastErr)
		}
	}
}

func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// maxRetryAfter caps the server-requested retry delay. Retry-After is
// remote input: a buggy or hostile server must not be able to park the
// client for hours with one header.
const maxRetryAfter = 30 * time.Second

// retryAfterDelay parses a Retry-After header value per RFC 7231 §7.1.3:
// either delta-seconds or an absolute HTTP-date. Garbage and negative
// deltas report ok=false; a date already in the past yields zero (retry
// immediately), matching the delta-seconds "0" case.
func retryAfterDelay(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// retryDelay computes the pre-jitter delay for one retry: Retry-After
// when the server named a parseable one (zero falls back to the base
// backoff, anything above maxRetryAfter is capped to it), otherwise
// exponential backoff from the base.
func (c *Client) retryDelay(attempt int, retryAfter string, now time.Time) time.Duration {
	d := c.backoff << uint(attempt)
	if ra, ok := retryAfterDelay(retryAfter, now); ok {
		d = ra
		if d == 0 {
			d = c.backoff
		}
		if d > maxRetryAfter {
			d = maxRetryAfter
		}
	}
	return d
}

// jitterMult draws the jitter multiplier, uniform in [0.5, 1.5), so
// synchronized clients do not re-stampede on the same tick.
func (c *Client) jitterMult() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return 0.5 + c.rng.Float64()
}

// sleep waits the retry delay: Retry-After when the server named one,
// otherwise exponential backoff from the base — both with ±50% jitter.
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter string) error {
	d := time.Duration(float64(c.retryDelay(attempt, retryAfter, time.Now())) * c.jitterMult())
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("client: retry abandoned: %w", ctx.Err())
	}
}

// statusError decodes the error body and wraps the sentinel for the
// status. Body read errors degrade to the bare status text.
func statusError(resp *http.Response) error {
	var msg string
	if raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10)); err == nil {
		var e api.ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		} else if len(raw) > 0 {
			msg = strings.TrimSpace(string(raw))
		}
	}
	return api.ErrorFor(resp.StatusCode, msg)
}
