package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSnapshotWriteIsAtomicAndClean is the regression test for the
// torn-snapshot bug: the writer used a bare tmp+rename with no fsync, so a
// crash after the rename could surface an empty or torn snapshot. The
// writer now goes through fsatomic (write → fsync file → rename → fsync
// dir). This test pins the observable half of that contract: every write
// leaves a fully parseable snapshot under the final name, never a partial
// file, and no temporary files linger in the directory.
func TestSnapshotWriteIsAtomicAndClean(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	cfg := testConfig()
	cfg.SnapshotPath = path
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	for i := 0; i < 3; i++ {
		if _, err := srv.WriteSnapshot(); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		var snap snapshotFile
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("write %d produced unparseable snapshot: %v", i, err)
		}
		if snap.Version != snapshotVersion {
			t.Fatalf("write %d: version %d, want %d", i, snap.Version, snapshotVersion)
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".fsatomic-") || strings.HasPrefix(e.Name(), ".sia-snapshot-") {
			t.Fatalf("leftover temporary file %s after snapshot writes", e.Name())
		}
	}
}
