// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment is a pure function from a Config to a
// printable result; cmd/siabench and the repository's benchmarks are thin
// wrappers around these.
//
// The experiment ↔ paper mapping:
//
//	Table 1  — baseline configurations            → Table1()
//	Table 2  — efficacy (valid/optimal counts)    → Table2()
//	Table 3  — efficiency (time breakdown)        → Table3()
//	Table 4  — selectivity vs runtime outcome     → Summarize() over Fig9()
//	Fig. 6   — MaxCompute case study              → maxcompute.Simulate + RenderFig6
//	Fig. 7   — iterations to converge             → Fig7()
//	Fig. 8   — sample-count distribution          → Fig8()
//	Fig. 9   — original vs rewritten runtimes     → Fig9()
//	§2       — motivating example speedup         → Motivating()
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sia/internal/core"
	"sia/internal/obs"
	"sia/internal/plan"
	"sia/internal/predicate"
	"sia/internal/smt"
	"sia/internal/tpch"
	"sia/internal/workload"
)

// Config scales the experiments. The defaults run the full evaluation in
// minutes on a laptop; the paper-scale values are documented per field.
type Config struct {
	// Queries is the number of benchmark queries (paper: 200).
	Queries int
	// Seed fixes workload generation.
	Seed int64
	// ScaleFactors are the data scales for the runtime experiments, in
	// units of tpch.BaseOrders (the paper's SF 1 and 10 correspond to
	// 100 and 1000 here; defaults are 100× smaller so the experiment
	// finishes quickly).
	ScaleFactors []float64
	// MaxIterations overrides SIA's iteration budget (paper: 41).
	MaxIterations int
	// Parallelism is the engine worker count used when executing plans
	// (Fig. 9, Table 4, Motivating). Non-positive means
	// engine.DefaultParallelism; results are identical at any setting.
	Parallelism int
	// Tracer, when non-nil, records every CEGIS loop of the synthesis
	// experiments as JSONL spans (see internal/obs). Tracing makes runs
	// uncacheable, so Fig9's synthesis memoization is bypassed.
	Tracer *obs.Tracer
	// SegmentRows is the rows-per-segment of the disk experiment
	// (Fig9Disk). Non-positive means DefaultSegmentRows.
	SegmentRows int
}

func (c Config) withDefaults() Config {
	if c.Queries == 0 {
		c.Queries = 200
	}
	if c.Seed == 0 {
		c.Seed = 20210620
	}
	if len(c.ScaleFactors) == 0 {
		c.ScaleFactors = []float64{1, 10}
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 41
	}
	return c
}

// Variant names one synthesis configuration from Table 1.
type Variant string

// The compared systems (Table 1 plus the syntax-driven baseline).
const (
	VariantSIA   Variant = "SIA"
	VariantSIAV1 Variant = "SIA_v1"
	VariantSIAV2 Variant = "SIA_v2"
)

// Variants returns the synthesis variants in presentation order.
func Variants() []Variant { return []Variant{VariantSIA, VariantSIAV1, VariantSIAV2} }

func optionsFor(v Variant, maxIter int) core.Options {
	var o core.Options
	switch v {
	case VariantSIAV1:
		o = core.PresetSIAV1()
	case VariantSIAV2:
		o = core.PresetSIAV2()
	default:
		o = core.PresetSIA()
		o.MaxIterations = maxIter
	}
	return o
}

// RunRecord is the outcome of one synthesis attempt: one benchmark query,
// one target column subset, one variant.
type RunRecord struct {
	QueryID  int
	Cols     []string
	NumCols  int
	Variant  Variant
	Possible bool // an unsatisfaction tuple exists (symbolically relevant)
	TCValid  bool // the transitive-closure baseline derived a predicate
	Result   *core.Result
}

// colSubsets returns every non-empty subset of the lineitem date columns,
// ordered by size (the paper's one/two/three column categories).
func colSubsets() [][]string {
	cols := workload.LineitemDateCols
	var out [][]string
	for mask := 1; mask < 1<<len(cols); mask++ {
		var sub []string
		for i, c := range cols {
			if mask&(1<<i) != 0 {
				sub = append(sub, c)
			}
		}
		out = append(out, sub)
	}
	sort.Slice(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

// SynthesisSweep runs every variant on every query × column-subset pair.
// It is the shared workhorse behind Table 2, Table 3, Fig. 7 and Fig. 8.
// Tasks are independent (each synthesis owns a fresh solver), so the sweep
// fans out across the machine's cores; records come back in deterministic
// (query, subset, variant) order regardless of scheduling.
func SynthesisSweep(cfg Config) ([]RunRecord, error) {
	cfg = cfg.withDefaults()
	queries := workload.Generate(workload.Config{N: cfg.Queries, Seed: cfg.Seed})
	schema := tpch.JoinSchema()
	subsets := colSubsets()

	type task struct {
		slot  int
		query workload.Query
		cols  []string
	}
	var tasks []task
	for _, q := range queries {
		predCols := map[string]bool{}
		for _, c := range predicate.Columns(q.Pred) {
			predCols[c] = true
		}
		for _, sub := range subsets {
			// Skip subsets containing columns the predicate never uses:
			// Synthesize requires Cols' ⊆ Cols (§4.1).
			usable := true
			for _, c := range sub {
				if !predCols[c] {
					usable = false
				}
			}
			if !usable {
				continue
			}
			tasks = append(tasks, task{slot: len(tasks), query: q, cols: sub})
		}
	}

	// Each task produces one record per variant, written to its own slot.
	results := make([][]RunRecord, len(tasks))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers < 1 {
		workers = 1
	}
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range ch {
				relevant, err := core.SymbolicallyRelevant(context.Background(), tk.query.Pred, tk.cols, schema, smt.New())
				if err != nil {
					relevant = false
				}
				tc := plan2TCValid(tk.query.Pred, tk.cols)
				recs := make([]RunRecord, 0, len(Variants()))
				for _, v := range Variants() {
					rec := RunRecord{
						QueryID:  tk.query.ID,
						Cols:     tk.cols,
						NumCols:  len(tk.cols),
						Variant:  v,
						Possible: relevant,
						TCValid:  tc,
					}
					if relevant {
						o := optionsFor(v, cfg.MaxIterations)
						o.Tracer = cfg.Tracer
						res, err := core.Synthesize(tk.query.Pred, tk.cols, schema, o)
						if err == nil {
							rec.Result = res
						}
					}
					recs = append(recs, rec)
				}
				results[tk.slot] = recs
			}
		}()
	}
	for _, tk := range tasks {
		ch <- tk
	}
	close(ch)
	wg.Wait()

	var out []RunRecord
	for _, recs := range results {
		out = append(out, recs...)
	}
	return out, nil
}

// Table1Row describes one baseline configuration.
type Table1Row struct {
	Variant                            Variant
	MaxIterations                      int
	InitialTrue, InitialFalse, PerIter int
}

// Table1 reproduces Table 1 (the configurations themselves).
func Table1() []Table1Row {
	rows := make([]Table1Row, 0, 3)
	for _, v := range Variants() {
		o := optionsFor(v, 41)
		per := o.SamplesPerIteration
		if o.MaxIterations == 1 {
			per = 0 // N/A in the paper's table
		}
		rows = append(rows, Table1Row{
			Variant:       v,
			MaxIterations: o.MaxIterations,
			InitialTrue:   o.InitialTrue,
			InitialFalse:  o.InitialFalse,
			PerIter:       per,
		})
	}
	return rows
}

// Table2Row aggregates efficacy for one column-count category.
type Table2Row struct {
	NumCols  int
	Possible int
	// Per variant: valid and optimal counts. TC has no optimality notion
	// in the paper's table (only a valid count).
	Valid   map[Variant]int
	Optimal map[Variant]int
	TCValid int
}

// Table2 reproduces Table 2 from a synthesis sweep.
func Table2(records []RunRecord) []Table2Row {
	byCols := map[int]*Table2Row{}
	for _, r := range records {
		row, ok := byCols[r.NumCols]
		if !ok {
			row = &Table2Row{NumCols: r.NumCols, Valid: map[Variant]int{}, Optimal: map[Variant]int{}}
			byCols[r.NumCols] = row
		}
		if r.Variant == VariantSIA { // count each (query, subset) once
			if r.Possible {
				row.Possible++
			}
			if r.TCValid {
				row.TCValid++
			}
		}
		if r.Result != nil && r.Result.Valid && r.Result.Predicate != nil {
			row.Valid[r.Variant]++
			if r.Result.Optimal {
				row.Optimal[r.Variant]++
			}
		}
	}
	var out []Table2Row
	for _, n := range []int{1, 2, 3} {
		if row, ok := byCols[n]; ok {
			out = append(out, *row)
		}
	}
	return out
}

// Table3Row aggregates the time breakdown for one column-count category.
type Table3Row struct {
	NumCols    int
	Generation map[Variant]time.Duration
	Learning   map[Variant]time.Duration
	Validation map[Variant]time.Duration
}

// Table3 reproduces Table 3: mean per-synthesis times by category.
func Table3(records []RunRecord) []Table3Row {
	type acc struct {
		gen, learn, valid time.Duration
		n                 int
	}
	accs := map[int]map[Variant]*acc{}
	for _, r := range records {
		if r.Result == nil {
			continue
		}
		if accs[r.NumCols] == nil {
			accs[r.NumCols] = map[Variant]*acc{}
		}
		a := accs[r.NumCols][r.Variant]
		if a == nil {
			a = &acc{}
			accs[r.NumCols][r.Variant] = a
		}
		a.gen += r.Result.Timing.Generation
		a.learn += r.Result.Timing.Learning
		a.valid += r.Result.Timing.Validation
		a.n++
	}
	var out []Table3Row
	for _, n := range []int{1, 2, 3} {
		m, ok := accs[n]
		if !ok {
			continue
		}
		row := Table3Row{
			NumCols:    n,
			Generation: map[Variant]time.Duration{},
			Learning:   map[Variant]time.Duration{},
			Validation: map[Variant]time.Duration{},
		}
		for v, a := range m {
			if a.n == 0 {
				continue
			}
			row.Generation[v] = a.gen / time.Duration(a.n)
			row.Learning[v] = a.learn / time.Duration(a.n)
			row.Validation[v] = a.valid / time.Duration(a.n)
		}
		out = append(out, row)
	}
	return out
}

// Fig7Result is the distribution of iterations SIA needed to reach an
// optimal predicate, per column-count (Fig. 7).
type Fig7Result struct {
	// Buckets are iteration-count upper bounds: ≤10, ≤20, ≤30, ≤41.
	Buckets []int
	// Counts[numCols][bucketIdx]; NotConverged[numCols] counts runs that
	// produced a valid but never-proven-optimal predicate.
	Counts       map[int][]int
	NotConverged map[int]int
}

// Fig7 aggregates learning-loop iteration counts for the SIA variant.
func Fig7(records []RunRecord) Fig7Result {
	res := Fig7Result{
		Buckets:      []int{10, 20, 30, 41},
		Counts:       map[int][]int{},
		NotConverged: map[int]int{},
	}
	for _, r := range records {
		if r.Variant != VariantSIA || r.Result == nil || r.Result.Predicate == nil {
			continue
		}
		if _, ok := res.Counts[r.NumCols]; !ok {
			res.Counts[r.NumCols] = make([]int, len(res.Buckets))
		}
		if !r.Result.Optimal {
			res.NotConverged[r.NumCols]++
			continue
		}
		for i, b := range res.Buckets {
			if r.Result.Iterations <= b {
				res.Counts[r.NumCols][i]++
				break
			}
		}
	}
	return res
}

// Fig8Result is the distribution of final TRUE and FALSE sample counts
// (Fig. 8), per column-count.
type Fig8Result struct {
	// Buckets are sample-count upper bounds: ≤25, ≤50, ≤100, ≤220, >220.
	Buckets     []int
	TrueCounts  map[int][]int
	FalseCounts map[int][]int
}

// Fig8 aggregates sample counts for the SIA variant.
func Fig8(records []RunRecord) Fig8Result {
	res := Fig8Result{
		Buckets:     []int{25, 50, 100, 220},
		TrueCounts:  map[int][]int{},
		FalseCounts: map[int][]int{},
	}
	put := func(m map[int][]int, numCols, v int) {
		if _, ok := m[numCols]; !ok {
			m[numCols] = make([]int, len(res.Buckets)+1)
		}
		for i, b := range res.Buckets {
			if v <= b {
				m[numCols][i]++
				return
			}
		}
		m[numCols][len(res.Buckets)]++
	}
	for _, r := range records {
		if r.Variant != VariantSIA || r.Result == nil || r.Result.Predicate == nil {
			continue
		}
		put(res.TrueCounts, r.NumCols, r.Result.TrueSamples)
		put(res.FalseCounts, r.NumCols, r.Result.FalseSamples)
	}
	return res
}

// plan2TCValid runs the transitive-closure baseline and reports whether it
// derived a non-trivial predicate over the subset.
func plan2TCValid(p predicate.Predicate, cols []string) bool {
	return plan.TransitiveClosureReduce(p, cols) != nil
}

// ensure fmt is linked for the render helpers in other files.
var _ = fmt.Sprintf
