package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallCfg keeps the experiment tests fast while still exercising every
// aggregation path.
func smallCfg() Config {
	return Config{Queries: 6, ScaleFactors: []float64{0.05}, MaxIterations: 15}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Variant != VariantSIA || rows[0].MaxIterations != 41 || rows[0].InitialTrue != 10 {
		t.Fatalf("SIA row wrong: %+v", rows[0])
	}
	if rows[1].InitialTrue != 110 || rows[2].InitialTrue != 220 {
		t.Fatalf("baseline sample counts wrong: %+v %+v", rows[1], rows[2])
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "SIA_v2") || !strings.Contains(out, "N/A") {
		t.Fatalf("render missing fields:\n%s", out)
	}
}

func TestSweepAndAggregations(t *testing.T) {
	records, err := SynthesisSweep(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no records")
	}
	// Every record triple (one per variant) shares Possible and TCValid.
	byKey := map[string][]RunRecord{}
	for _, r := range records {
		key := strings.Join(r.Cols, ",") + "#" + string(rune(r.QueryID))
		byKey[key] = append(byKey[key], r)
	}
	for key, rs := range byKey {
		for _, r := range rs[1:] {
			if r.Possible != rs[0].Possible || r.TCValid != rs[0].TCValid {
				t.Fatalf("inconsistent shared fields for %q", key)
			}
		}
	}

	t2 := Table2(records)
	if len(t2) == 0 {
		t.Fatal("empty table 2")
	}
	for _, row := range t2 {
		for _, v := range Variants() {
			if row.Valid[v] > row.Possible {
				t.Fatalf("%s valid %d > possible %d in %d-col row", v, row.Valid[v], row.Possible, row.NumCols)
			}
			if row.Optimal[v] > row.Valid[v] {
				t.Fatalf("%s optimal > valid in %d-col row", v, row.NumCols)
			}
		}
		if row.TCValid > row.Possible {
			// TC derives syntactically; everything it derives is valid,
			// and validity requires symbolic relevance to be non-trivial.
			// TC may however derive trivial-but-valid bounds for
			// non-relevant subsets, so only sanity-check the ceiling.
			t.Logf("note: TC valid %d > possible %d in %d-col row", row.TCValid, row.Possible, row.NumCols)
		}
	}
	if out := RenderTable2(t2); !strings.Contains(out, "one") {
		t.Fatalf("render table 2:\n%s", out)
	}

	t3 := Table3(records)
	if len(t3) == 0 {
		t.Fatal("empty table 3")
	}
	if out := RenderTable3(t3); !strings.Contains(out, "SIA_v1") {
		t.Fatalf("render table 3:\n%s", out)
	}

	f7 := Fig7(records)
	if out := RenderFig7(f7); !strings.Contains(out, "not optimal") {
		t.Fatalf("render fig 7:\n%s", out)
	}
	f8 := Fig8(records)
	total7, total8 := 0, 0
	for n := range f8.TrueCounts {
		for _, c := range f8.TrueCounts[n] {
			total8 += c
		}
	}
	for n := range f7.Counts {
		for _, c := range f7.Counts[n] {
			total7 += c
		}
		total7 += f7.NotConverged[n]
	}
	if total7 != total8 {
		t.Fatalf("fig 7 and fig 8 disagree on synthesized count: %d vs %d", total7, total8)
	}
	if out := RenderFig8(f8); !strings.Contains(out, "FALSE samples") {
		t.Fatalf("render fig 8:\n%s", out)
	}
}

func TestFig9AndSummaries(t *testing.T) {
	records, err := Fig9(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no runtime records")
	}
	rewritten := 0
	for _, r := range records {
		if r.Original <= 0 {
			t.Fatalf("missing original time: %+v", r)
		}
		if r.Rewritten {
			rewritten++
			if r.Synthesized == nil || r.RewrittenTime <= 0 {
				t.Fatalf("incomplete rewritten record: %+v", r)
			}
			if r.Selectivity < 0 || r.Selectivity > 1 {
				t.Fatalf("selectivity out of range: %+v", r)
			}
		}
	}
	if rewritten == 0 {
		t.Fatal("no queries were rewritten; the experiment is vacuous")
	}
	sums := Summarize(records)
	if len(sums) != 1 {
		t.Fatalf("summaries = %d", len(sums))
	}
	s := sums[0]
	if s.Faster+s.Slower != s.Rewritten {
		t.Fatalf("faster+slower != rewritten: %+v", s)
	}
	if s.Faster2x > s.Faster || s.Slower2x > s.Slower {
		t.Fatalf("2x counts exceed totals: %+v", s)
	}
	if out := RenderFig9(records, sums); !strings.Contains(out, "speedup") {
		t.Fatalf("render fig 9:\n%s", out)
	}

	// A repeated run reuses the synthesis cache: no new CEGIS loops.
	before := fig9Synth.Stats()
	if _, err := Fig9(smallCfg()); err != nil {
		t.Fatal(err)
	}
	after := fig9Synth.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("repeated Fig9 re-ran synthesis: %d -> %d misses", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Fatalf("repeated Fig9 never hit the cache: %+v -> %+v", before, after)
	}
}

func TestMotivating(t *testing.T) {
	m, err := Motivating(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Q1Time <= 0 || m.Q2Time <= 0 {
		t.Fatalf("times missing: %+v", m)
	}
	// The three inferred predicates must reduce the join input.
	if m.Q2JoinIn >= m.Q1JoinIn {
		t.Fatalf("rewrite did not reduce join input: %d vs %d", m.Q2JoinIn, m.Q1JoinIn)
	}
	if out := RenderMotivating(m); !strings.Contains(out, "speedup") {
		t.Fatalf("render: %s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Queries != 200 || cfg.MaxIterations != 41 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
	if len(cfg.ScaleFactors) != 2 {
		t.Fatalf("default scale factors: %+v", cfg.ScaleFactors)
	}
	_ = time.Now() // keep time import if assertions change
}
