package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sia/internal/predicate"
	"sia/internal/serve"
	serveapi "sia/internal/serve/api"
	serveclient "sia/internal/serve/client"
	"sia/internal/workload"
)

// ServeBenchConfig scales the serving-tier experiment: the same Zipf-skewed
// recurring workload is driven first through one replica, then through a
// 3-replica consistent-hash cluster, and finally through a kill-and-restart
// of one cluster replica to measure snapshot warming.
type ServeBenchConfig struct {
	// Requests is the stream length (default 600).
	Requests int
	// Templates is the recurring-query pool size (default 90).
	Templates int
	// Seed fixes the workload.
	Seed int64
	// Concurrency is the number of in-flight client workers (default 12).
	Concurrency int
	// CacheCapacity is the per-replica result-cache bound (default 30 —
	// deliberately smaller than the template pool, so a single replica
	// thrashes where the cluster's aggregate capacity holds the working
	// set).
	CacheCapacity int
	// Replicas is the cluster size (default 3).
	Replicas int
	// BatchTick enables request grouping in every replica (default 1ms).
	BatchTick time.Duration
	// ZipfS is the template-popularity skew (default 1.01 — nearly uniform
	// over the pool, so the recurring working set genuinely exceeds one
	// replica's cache).
	ZipfS float64
	// Recurrence is the template-reuse fraction (default 0.95).
	Recurrence float64
	// SnapshotDir holds the cluster's snapshot files (default: a temp dir).
	SnapshotDir string
}

func (c ServeBenchConfig) withDefaults() ServeBenchConfig {
	if c.Requests == 0 {
		c.Requests = 1500
	}
	if c.Templates == 0 {
		c.Templates = 60
	}
	if c.Seed == 0 {
		c.Seed = 20210620
	}
	if c.Concurrency == 0 {
		c.Concurrency = 16
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 28
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.BatchTick == 0 {
		c.BatchTick = time.Millisecond
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.01
	}
	if c.Recurrence == 0 {
		c.Recurrence = 0.98
	}
	return c
}

// TierMetrics summarizes one driven stream.
type TierMetrics struct {
	Requests        int     `json:"requests"`
	Errors          int     `json:"errors"`
	DurationSeconds float64 `json:"duration_seconds"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	P50MS           float64 `json:"p50_ms"`
	P99MS           float64 `json:"p99_ms"`
	// HitRate is the fraction of successful responses served without a
	// dedicated CEGIS run (cache hits, coalesced joins, batched runs).
	HitRate float64 `json:"hit_rate"`
	// BatchedRate is the fraction answered by a grouped run.
	BatchedRate float64 `json:"batched_rate"`
	// ShedRate is the fraction refused by admission control (429s).
	ShedRate float64 `json:"shed_rate"`
	// FirstError samples one error message when Errors > 0, for debugging
	// a failed run from the committed report alone.
	FirstError string `json:"first_error,omitempty"`
}

// ServeReport is the BENCH_serve.json schema.
type ServeReport struct {
	Workload struct {
		Requests    int     `json:"requests"`
		Templates   int     `json:"templates"`
		Seed        int64   `json:"seed"`
		Concurrency int     `json:"concurrency"`
		Capacity    int     `json:"cache_capacity_per_replica"`
		Replicas    int     `json:"replicas"`
		BatchTickMS float64 `json:"batch_tick_ms"`
	} `json:"workload"`
	Single  TierMetrics `json:"single"`
	Cluster TierMetrics `json:"cluster"`
	// Speedup is the cluster's aggregate throughput over the single
	// replica's on the same stream (acceptance: >= 2 on the skewed
	// workload).
	Speedup float64 `json:"speedup"`
	Restart struct {
		// PreHitRate and PostHitRate are the hot-template probe hit rates
		// immediately before the kill and immediately after the restarted
		// replica comes back from its snapshot (acceptance: within 0.10).
		PreHitRate  float64 `json:"pre_hit_rate"`
		PostHitRate float64 `json:"post_hit_rate"`
		Delta       float64 `json:"delta"`
		// RestoredEntries is how many cache entries the restarted replica
		// warmed from disk.
		RestoredEntries uint64 `json:"restored_entries"`
	} `json:"restart"`
}

// swapHandler lets a replica be "killed and restarted" in-process: the
// listener and address survive while the serve.Server behind them is
// replaced wholesale.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

// replica is one in-process serving-tier member.
type replica struct {
	addr string
	ts   *httptest.Server
	swap *swapHandler
	srv  *serve.Server
	cfg  serve.Config
}

func (r *replica) close() {
	if r.srv != nil {
		r.srv.Close()
	}
	r.ts.Close()
}

// startCluster brings up n replicas on real listeners. Addresses are
// allocated first (unstarted servers) so every member's config can name the
// full peer set; with n == 1 the replica runs unsharded.
func startCluster(n int, base serve.Config) ([]*replica, error) {
	reps := make([]*replica, n)
	var addrs []string
	for i := range reps {
		sw := &swapHandler{}
		sw.h.Store(http.NotFoundHandler())
		ts := httptest.NewUnstartedServer(sw)
		reps[i] = &replica{ts: ts, swap: sw, addr: ts.Listener.Addr().String()}
		addrs = append(addrs, reps[i].addr)
	}
	for i, r := range reps {
		cfg := base
		if n > 1 {
			cfg.Self = r.addr
			cfg.Peers = addrs
		}
		if base.SnapshotPath != "" {
			cfg.SnapshotPath = fmt.Sprintf("%s.%d", base.SnapshotPath, i)
		}
		srv, err := serve.New(cfg)
		if err != nil {
			for _, rr := range reps {
				rr.ts.Close()
			}
			return nil, err
		}
		r.srv, r.cfg = srv, cfg
		r.swap.h.Store(srv.Handler())
		r.ts.Start()
	}
	return reps, nil
}

// restart replaces a replica's server with a fresh one built from the same
// config: the old server drains and writes its snapshot, the new one boots
// from it. The listener (and so the peer address) survives.
func (r *replica) restart() error {
	r.srv.StartDrain()
	if _, err := r.srv.WriteSnapshot(); err != nil {
		return err
	}
	r.srv.Close()
	srv, err := serve.New(r.cfg)
	if err != nil {
		return err
	}
	r.srv = srv
	r.swap.h.Store(srv.Handler())
	return nil
}

// wireRequest converts a workload element to its wire form: the predicate
// as SQL, the schema restricted to the columns the request mentions.
func wireRequest(sr workload.ServeRequest, schema *predicate.Schema) serveapi.SynthesizeRequest {
	seen := map[string]bool{}
	var cols []serveapi.SchemaColumn
	for _, name := range append(predicate.Columns(sr.Query.Pred), sr.Cols...) {
		if seen[name] {
			continue
		}
		seen[name] = true
		col, ok := schema.Lookup(name)
		if !ok {
			continue
		}
		cols = append(cols, serveapi.SchemaColumn{
			Name:     col.Name,
			Type:     serveapi.FormatType(col.Type),
			Nullable: !col.NotNull,
		})
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i].Name < cols[j].Name })
	return serveapi.SynthesizeRequest{
		Predicate: sr.Query.Pred.String(),
		Cols:      sr.Cols,
		Schema:    cols,
		TimeoutMS: 30000,
		// The experiment measures the serving tier, not CEGIS convergence:
		// a bounded iteration/sampling budget keeps each miss at a
		// predictable few-ms cost (a run that exhausts it gives up and the
		// partial result still caches), so throughput differences reflect
		// hit rates and shedding, not outlier synthesis runs.
		Options: &serveapi.RequestOptions{
			MaxIterations:       6,
			InitialTrue:         20,
			InitialFalse:        20,
			SamplesPerIteration: 10,
			SolverTimeoutMS:     2000,
		},
	}
}

// driveStream pushes the request stream through the given ingress points
// (round-robin, like a load balancer) with the given worker count and
// tallies latency/outcome metrics. One client per (ingress, tenant) pair,
// so the tenant header is exercised exactly as a real fleet would.
func driveStream(urls []string, reqs []serveapi.SynthesizeRequest, tenants []string, concurrency int) TierMetrics {
	var clientMu sync.Mutex
	clients := map[string]*serveclient.Client{}
	clientFor := func(url, tenant string) *serveclient.Client {
		clientMu.Lock()
		defer clientMu.Unlock()
		k := url + "|" + tenant
		c := clients[k]
		if c == nil {
			c = serveclient.New(url, serveclient.WithRetries(0), serveclient.WithTenant(tenant))
			clients[k] = c
		}
		return c
	}
	durs := make([]time.Duration, len(reqs))
	var hits, batched, shed, errs atomic.Int64
	var errMu sync.Mutex
	var firstErr string

	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, concurrency)
	for i := range reqs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			c := clientFor(urls[i%len(urls)], tenants[i])
			t0 := time.Now()
			resp, err := c.Synthesize(ctx, reqs[i])
			durs[i] = time.Since(t0)
			if err != nil {
				if isOverloaded(err) {
					shed.Add(1)
				}
				errs.Add(1)
				errMu.Lock()
				if firstErr == "" {
					firstErr = err.Error()
				}
				errMu.Unlock()
				return
			}
			if resp.Cached || resp.Batched {
				hits.Add(1)
			}
			if resp.Batched {
				batched.Add(1)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	n := len(reqs)
	ok := n - int(errs.Load())
	m := TierMetrics{
		Requests:        n,
		Errors:          int(errs.Load()),
		DurationSeconds: wall.Seconds(),
		ThroughputRPS:   float64(n) / wall.Seconds(),
		ShedRate:        float64(shed.Load()) / float64(n),
		FirstError:      firstErr,
	}
	if ok > 0 {
		m.HitRate = float64(hits.Load()) / float64(ok)
		m.BatchedRate = float64(batched.Load()) / float64(ok)
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	m.P50MS = float64(sorted[n/2]) / float64(time.Millisecond)
	m.P99MS = float64(sorted[n*99/100]) / float64(time.Millisecond)
	return m
}

func isOverloaded(err error) bool {
	return errors.Is(err, serveapi.ErrOverloaded)
}

// ServeBench runs the serving-tier experiment and returns its report.
func ServeBench(cfg ServeBenchConfig) (*ServeReport, error) {
	cfg = cfg.withDefaults()
	schema := workload.ServeSchema()
	stream := workload.GenerateServe(workload.ServeConfig{
		N:              cfg.Requests,
		Templates:      cfg.Templates,
		Seed:           cfg.Seed,
		ZipfS:          cfg.ZipfS,
		RecurrenceRate: cfg.Recurrence,
	})
	reqs := make([]serveapi.SynthesizeRequest, len(stream))
	tenants := make([]string, len(stream))
	for i, sr := range stream {
		reqs[i] = wireRequest(sr, schema)
		tenants[i] = sr.Tenant
	}

	rep := &ServeReport{}
	rep.Workload.Requests = cfg.Requests
	rep.Workload.Templates = cfg.Templates
	rep.Workload.Seed = cfg.Seed
	rep.Workload.Concurrency = cfg.Concurrency
	rep.Workload.Capacity = cfg.CacheCapacity
	rep.Workload.Replicas = cfg.Replicas
	rep.Workload.BatchTickMS = float64(cfg.BatchTick) / float64(time.Millisecond)

	base := serve.Config{
		Capacity:  cfg.CacheCapacity,
		BatchTick: cfg.BatchTick,
		Logger:    slog.New(slog.NewJSONHandler(io.Discard, nil)),
	}

	// Phase 0: warmup. The SMT layer memoizes process-wide (hash-consed
	// terms, QE results), so whichever tier runs first would pay costs the
	// second does not. One discarded pass through a throwaway replica pays
	// them up front, making the measured phases comparable.
	warm, err := startCluster(1, serve.Config{
		Capacity: cfg.Requests,
		Logger:   base.Logger,
	})
	if err != nil {
		return nil, err
	}
	driveStream([]string{warm[0].ts.URL}, reqs, tenants, cfg.Concurrency)
	warm[0].close()

	// Phase 1: one replica, the whole stream.
	single, err := startCluster(1, base)
	if err != nil {
		return nil, err
	}
	rep.Single = driveStream([]string{single[0].ts.URL}, reqs, tenants, cfg.Concurrency)
	single[0].close()

	// Phase 2: the cluster, same stream, round-robin ingress. Snapshots on
	// so phase 3 can restart a member.
	snapDir := cfg.SnapshotDir
	if snapDir == "" {
		d, err := os.MkdirTemp("", "sia-serve-bench")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		snapDir = d
	}
	clusterBase := base
	clusterBase.SnapshotPath = filepath.Join(snapDir, "snapshot.json")
	cluster, err := startCluster(cfg.Replicas, clusterBase)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, r := range cluster {
			r.close()
		}
	}()
	urls := make([]string, len(cluster))
	for i, r := range cluster {
		urls[i] = r.ts.URL
	}
	rep.Cluster = driveStream(urls, reqs, tenants, cfg.Concurrency)
	if rep.Single.ThroughputRPS > 0 {
		rep.Speedup = rep.Cluster.ThroughputRPS / rep.Single.ThroughputRPS
	}

	// Phase 3: kill-and-restart. Probe the hot templates through replica 0
	// before and after it restarts from its snapshot; warming worked when
	// the first-minute hit rate survives the restart.
	probeN := cfg.Templates / 2
	probes := make([]serveapi.SynthesizeRequest, 0, probeN)
	seen := map[int]bool{}
	for _, sr := range stream {
		if sr.Template >= 0 && !seen[sr.Template] {
			seen[sr.Template] = true
			probes = append(probes, wireRequest(sr, schema))
			if len(probes) == probeN {
				break
			}
		}
	}
	probeTenants := make([]string, len(probes))
	for i := range probeTenants {
		probeTenants[i] = "tenant-probe"
	}
	pre := driveStream([]string{cluster[0].ts.URL}, probes, probeTenants, cfg.Concurrency)
	if err := cluster[0].restart(); err != nil {
		return nil, err
	}
	post := driveStream([]string{cluster[0].ts.URL}, probes, probeTenants, cfg.Concurrency)
	rep.Restart.PreHitRate = pre.HitRate
	rep.Restart.PostHitRate = post.HitRate
	rep.Restart.Delta = pre.HitRate - post.HitRate
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if st, err := serveclient.New(cluster[0].ts.URL).Stats(ctx); err == nil {
		rep.Restart.RestoredEntries = st.Serve.SnapshotRestored
	}
	return rep, nil
}

// RenderServe formats the report for the terminal.
func RenderServe(r *ServeReport) string {
	line := func(name string, m TierMetrics) string {
		return fmt.Sprintf("%-8s %8.1f req/s   p50 %7.2fms   p99 %8.2fms   hit %5.1f%%   batched %5.1f%%   shed %5.1f%%   errors %d\n",
			name, m.ThroughputRPS, m.P50MS, m.P99MS, 100*m.HitRate, 100*m.BatchedRate, 100*m.ShedRate, m.Errors)
	}
	out := line("single", r.Single) + line("cluster", r.Cluster)
	out += fmt.Sprintf("cluster/single throughput: %.2fx (acceptance: >= 2.0)\n", r.Speedup)
	out += fmt.Sprintf("restart: hit rate %.1f%% -> %.1f%% (delta %.1f pts, restored %d entries)\n",
		100*r.Restart.PreHitRate, 100*r.Restart.PostHitRate, 100*r.Restart.Delta, r.Restart.RestoredEntries)
	return out
}
