package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sia/internal/maxcompute"
)

// colName maps column counts to the paper's row labels.
func colName(n int) string {
	switch n {
	case 1:
		return "one"
	case 2:
		return "two"
	case 3:
		return "three"
	default:
		return fmt.Sprint(n)
	}
}

// RenderTable1 prints the baseline configurations (Table 1).
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %16s %16s %16s %16s\n", "", "Max Iteration #", "# Init True", "# Init False", "# Per Iteration")
	for _, r := range rows {
		per := "N/A"
		if r.PerIter > 0 {
			per = fmt.Sprint(r.PerIter)
		}
		fmt.Fprintf(&b, "%-8s %16d %16d %16d %16s\n", r.Variant, r.MaxIterations, r.InitialTrue, r.InitialFalse, per)
	}
	return b.String()
}

// RenderTable2 prints the efficacy comparison (Table 2).
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %9s | %6s %8s | %9s | %6s %8s | %6s %8s\n",
		"#cols", "#possible", "SIA", "", "TransCls", "SIA_v1", "", "SIA_v2", "")
	fmt.Fprintf(&b, "%-6s %9s | %6s %8s | %9s | %6s %8s | %6s %8s\n",
		"", "", "valid", "optimal", "valid", "valid", "optimal", "valid", "optimal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %9d | %6d %8d | %9d | %6d %8d | %6d %8d\n",
			colName(r.NumCols), r.Possible,
			r.Valid[VariantSIA], r.Optimal[VariantSIA],
			r.TCValid,
			r.Valid[VariantSIAV1], r.Optimal[VariantSIAV1],
			r.Valid[VariantSIAV2], r.Optimal[VariantSIAV2])
	}
	return b.String()
}

// RenderTable3 prints the efficiency comparison (Table 3), times in ms.
func RenderTable3(rows []Table3Row) string {
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond)) }
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s | %-26s | %-26s | %-26s\n", "#cols", "SIA (gen/learn/valid ms)", "SIA_v1 (gen/learn/valid ms)", "SIA_v2 (gen/learn/valid ms)")
	for _, r := range rows {
		line := func(v Variant) string {
			return fmt.Sprintf("%s / %s / %s", ms(r.Generation[v]), ms(r.Learning[v]), ms(r.Validation[v]))
		}
		fmt.Fprintf(&b, "%-6s | %-26s | %-26s | %-26s\n", colName(r.NumCols), line(VariantSIA), line(VariantSIAV1), line(VariantSIAV2))
	}
	return b.String()
}

// RenderFig7 prints the iterations-to-optimal distribution (Fig. 7).
func RenderFig7(f Fig7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "#cols")
	prev := 0
	for _, bb := range f.Buckets {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("%d-%d it", prev+1, bb))
		prev = bb
	}
	fmt.Fprintf(&b, " %12s\n", "not optimal")
	for _, n := range sortedKeys(f.Counts) {
		fmt.Fprintf(&b, "%-6s", colName(n))
		for _, c := range f.Counts[n] {
			fmt.Fprintf(&b, " %10d", c)
		}
		fmt.Fprintf(&b, " %12d\n", f.NotConverged[n])
	}
	return b.String()
}

// RenderFig8 prints the final sample-count distributions (Fig. 8).
func RenderFig8(f Fig8Result) string {
	var b strings.Builder
	header := func(kind string) {
		fmt.Fprintf(&b, "%s samples\n%-6s", kind, "#cols")
		prev := 0
		for _, bb := range f.Buckets {
			fmt.Fprintf(&b, " %10s", fmt.Sprintf("%d-%d", prev+1, bb))
			prev = bb
		}
		fmt.Fprintf(&b, " %10s\n", fmt.Sprintf(">%d", f.Buckets[len(f.Buckets)-1]))
	}
	section := func(m map[int][]int) {
		for _, n := range sortedKeys(m) {
			fmt.Fprintf(&b, "%-6s", colName(n))
			for _, c := range m[n] {
				fmt.Fprintf(&b, " %10d", c)
			}
			b.WriteByte('\n')
		}
	}
	header("TRUE")
	section(f.TrueCounts)
	header("FALSE")
	section(f.FalseCounts)
	return b.String()
}

// RenderFig9 prints the runtime scatter points and summary (Fig. 9 +
// Table 4).
func RenderFig9(records []RuntimeRecord, summaries []Fig9Summary) string {
	var b strings.Builder
	if errs, runs := synthErrCount(records); errs > 0 {
		fmt.Fprintf(&b, "synthesis errors: %d of %d query runs executed unrewritten (see RuntimeRecord.SynthesisErr)\n", errs, runs)
	}
	for _, s := range summaries {
		fmt.Fprintf(&b, "scale=%g: rewritten=%d faster=%d (sel %.2f) 2x-faster=%d (sel %.2f) slower=%d (sel %.2f) 2x-slower=%d (sel %.2f)\n",
			s.ScaleFactor, s.Rewritten,
			s.Faster, s.AvgSelFaster,
			s.Faster2x, s.AvgSelFast2x,
			s.Slower, s.AvgSelSlower,
			s.Slower2x, s.AvgSelSlow2x)
	}
	b.WriteString("\nquery  scale  original(ms)  rewritten(ms)  speedup  selectivity\n")
	for _, r := range records {
		if !r.Rewritten {
			continue
		}
		fmt.Fprintf(&b, "%5d  %5g  %12.2f  %13.2f  %7.2f  %11.2f\n",
			r.QueryID, r.ScaleFactor,
			float64(r.Original)/float64(time.Millisecond),
			float64(r.RewrittenTime)/float64(time.Millisecond),
			r.Speedup(), r.Selectivity)
	}
	return b.String()
}

// synthErrCount tallies the query runs whose synthesis attempt failed
// outright (as opposed to validly declining to rewrite).
func synthErrCount(records []RuntimeRecord) (errs, runs int) {
	for _, r := range records {
		runs++
		if r.SynthesisErr != "" {
			errs++
		}
	}
	return errs, runs
}

// RenderFig6 prints the case-study distributions (Fig. 6).
func RenderFig6(qs []maxcompute.SimQuery) string {
	var b strings.Builder
	prospective := maxcompute.Count(qs, maxcompute.ClassProspective)
	relevant := maxcompute.Count(qs, maxcompute.ClassRelevant)
	fmt.Fprintf(&b, "population=%d syntax-based-prospective=%d symbolically-relevant=%d\n",
		len(qs), prospective, relevant)
	fmt.Fprintf(&b, "prospective queries over 10s: %.2f%% (paper: 74.63%%)\n\n",
		100*maxcompute.FractionOver(qs, maxcompute.ClassProspective, 10))
	section := func(name string, h func([]maxcompute.SimQuery, maxcompute.QueryClass) maxcompute.Histogram) {
		fmt.Fprintf(&b, "%s\n", name)
		for _, cls := range []maxcompute.QueryClass{maxcompute.ClassProspective, maxcompute.ClassRelevant} {
			hist := h(qs, cls)
			fmt.Fprintf(&b, "  %-12s", cls)
			for i, lbl := range hist.Labels {
				fmt.Fprintf(&b, " %s:%d", lbl, hist.Counts[i])
			}
			b.WriteByte('\n')
		}
	}
	section("execution time", maxcompute.HistExec)
	section("CPU consumption", maxcompute.HistCPU)
	section("memory footprint", maxcompute.HistMemory)
	return b.String()
}

// RenderMotivating prints the §2 result.
func RenderMotivating(m *MotivatingResult) string {
	return fmt.Sprintf(
		"scale=%g Q1=%v (join input %d rows) Q2=%v (join input %d rows) speedup=%.2fx output=%d rows\n",
		m.ScaleFactor, m.Q1Time.Round(time.Millisecond), m.Q1JoinIn,
		m.Q2Time.Round(time.Millisecond), m.Q2JoinIn, m.Speedup, m.OutputRows)
}

func sortedKeys(m map[int][]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
