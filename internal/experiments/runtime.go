package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sia/internal/cache"
	"sia/internal/core"
	"sia/internal/engine"
	"sia/internal/plan"
	"sia/internal/predicate"
	"sia/internal/sql"
	"sia/internal/tpch"
	"sia/internal/workload"
)

// fig9Synth memoizes Fig9's synthesis phase. Synthesis is data-independent,
// so repeated runs (multiple scale factors, -all invocations, reruns with a
// larger query count sharing a seed prefix) reuse earlier results instead of
// re-running CEGIS loops. SynthesisSweep deliberately does NOT use it: its
// records report per-variant synthesis times, which a cache hit would fake.
var fig9Synth = cache.NewSynthesizer(0)

// RuntimeRecord is one query's runtime comparison at one scale factor
// (a point in Fig. 9's scatter plots).
type RuntimeRecord struct {
	QueryID     int
	ScaleFactor float64
	// Rewritten reports whether Sia produced a valid lineitem-side
	// predicate for this query (the paper's "114 of 200").
	Rewritten bool
	// SynthesisErr is the error text of a failed synthesis attempt (empty
	// when synthesis succeeded or was never attempted). A failed synthesis
	// is not silent: the query runs unrewritten, and the render surfaces
	// the error count.
	SynthesisErr string
	// Synthesized is the predicate pushed below the join (nil if none).
	Synthesized predicate.Predicate
	// Original and RewrittenTime are the measured execution times.
	Original, RewrittenTime time.Duration
	// Selectivity of the synthesized predicate on lineitem (Table 4).
	Selectivity float64
	// Rows returned (identical for both plans — checked).
	OutputRows int
}

// Speedup returns original/rewritten (>1 means the rewrite won).
func (r RuntimeRecord) Speedup() float64 {
	if r.RewrittenTime == 0 {
		return 1
	}
	return float64(r.Original) / float64(r.RewrittenTime)
}

// Fig9 runs the end-to-end runtime experiment: for every benchmark query,
// synthesize lineitem-side predicates, rewrite, and execute both plans on
// the engine at each scale factor.
func Fig9(cfg Config) ([]RuntimeRecord, error) {
	cfg = cfg.withDefaults()
	queries := workload.Generate(workload.Config{N: cfg.Queries, Seed: cfg.Seed})

	// Synthesis is data-independent: do it once per query.
	type rewriteInfo struct {
		pred predicate.Predicate // synthesized lineitem predicate, or nil
		err  error               // synthesis failure, recorded per query
	}
	schema := tpch.JoinSchema()
	rewrites := make([]rewriteInfo, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, q := range queries {
		cols := lineitemCols(q.Pred)
		if len(cols) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, q workload.Query, cols []string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			opts := core.PresetSIA()
			opts.MaxIterations = cfg.MaxIterations
			opts.Tracer = cfg.Tracer // a tracer bypasses fig9Synth's memoization
			res, _, err := fig9Synth.Synthesize(context.Background(), q.Pred, cols, schema, opts)
			if err != nil {
				rewrites[i] = rewriteInfo{err: err}
				return
			}
			if res.Predicate != nil && res.Valid {
				rewrites[i] = rewriteInfo{pred: res.Predicate}
			}
		}(i, q, cols)
	}
	wg.Wait()

	var out []RuntimeRecord
	for _, sf := range cfg.ScaleFactors {
		orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: sf})
		cat := plan.NewCatalog()
		cat.Add(orders)
		cat.Add(lineitem)
		for i, q := range queries {
			rec := RuntimeRecord{QueryID: q.ID, ScaleFactor: sf}
			if serr := rewrites[i].err; serr != nil {
				rec.SynthesisErr = serr.Error()
			}
			parsed, err := sql.Parse(q.SQL(), cat)
			if err != nil {
				return nil, fmt.Errorf("experiments: parse query %d: %w", q.ID, err)
			}
			node, err := parsed.Plan(cat)
			if err != nil {
				return nil, fmt.Errorf("experiments: plan query %d: %w", q.ID, err)
			}
			// Original: plain pushdown only (which moves nothing to
			// lineitem, by the workload's construction).
			origPlan := plan.PushDownFilters(node)
			origTable, origStats, err := executeBest(origPlan, cat, 3, cfg.Parallelism)
			if err != nil {
				return nil, fmt.Errorf("experiments: execute query %d: %w", q.ID, err)
			}
			rec.Original = origStats.Elapsed
			rec.OutputRows = origTable.NumRows()

			if rw := rewrites[i]; rw.pred != nil {
				rec.Rewritten = true
				rec.Synthesized = rw.pred
				rec.Selectivity = selectivity(lineitem, rw.pred)
				rwNode := &plan.Filter{Pred: predicate.NewAnd(parsed.Where, rw.pred), Input: join(node)}
				rwPlan := plan.PushDownFilters(rwNode)
				rwTable, rwStats, err := executeBest(rwPlan, cat, 3, cfg.Parallelism)
				if err != nil {
					return nil, fmt.Errorf("experiments: execute rewritten %d: %w", q.ID, err)
				}
				if rwTable.NumRows() != origTable.NumRows() {
					return nil, fmt.Errorf("experiments: query %d rewrite changed results: %d vs %d rows",
						q.ID, rwTable.NumRows(), origTable.NumRows())
				}
				rec.RewrittenTime = rwStats.Elapsed
			}
			out = append(out, rec)
		}
	}
	return out, nil
}

// executeBest runs a plan repeatedly and returns the fastest run (the
// stable estimate of the plan's cost) plus the result table for the
// equivalence check.
func executeBest(n plan.Node, cat *plan.Catalog, runs, parallelism int) (*engine.Table, *plan.ExecStats, error) {
	var bestTable *engine.Table
	var bestStats *plan.ExecStats
	for i := 0; i < runs; i++ {
		table, stats, err := plan.ExecuteOpts(n, cat, plan.ExecOptions{Parallelism: parallelism})
		if err != nil {
			return nil, nil, err
		}
		if bestStats == nil || stats.Elapsed < bestStats.Elapsed {
			bestTable, bestStats = table, stats
		}
	}
	return bestTable, bestStats, nil
}

// join unwraps a Filter(Join) plan to its join (the benchmark queries all
// have this shape).
func join(n plan.Node) plan.Node {
	if f, ok := n.(*plan.Filter); ok {
		return f.Input
	}
	return n
}

// lineitemCols returns the lineitem date columns a predicate uses.
func lineitemCols(p predicate.Predicate) []string {
	var out []string
	used := map[string]bool{}
	for _, c := range predicate.Columns(p) {
		used[c] = true
	}
	for _, c := range workload.LineitemDateCols {
		if used[c] {
			out = append(out, c)
		}
	}
	return out
}

// selectivity measures the fraction of lineitem rows the predicate keeps.
func selectivity(lineitem *engine.Table, p predicate.Predicate) float64 {
	if lineitem.NumRows() == 0 {
		return 1
	}
	kept := engine.Filter(lineitem, p)
	return float64(kept.NumRows()) / float64(lineitem.NumRows())
}

// Fig9Summary aggregates a scale factor's records into the counts the
// paper reports alongside Fig. 9 and in Table 4.
type Fig9Summary struct {
	ScaleFactor  float64
	Rewritten    int
	Faster       int
	Faster2x     int
	Slower       int
	Slower2x     int
	AvgSelFaster float64
	AvgSelFast2x float64
	AvgSelSlower float64
	AvgSelSlow2x float64
}

// Summarize computes per-scale-factor aggregates (Table 4's rows).
func Summarize(records []RuntimeRecord) []Fig9Summary {
	bySF := map[float64]*Fig9Summary{}
	type selAcc struct{ faster, fast2x, slower, slow2x []float64 }
	sels := map[float64]*selAcc{}
	var order []float64
	for _, r := range records {
		if !r.Rewritten {
			continue
		}
		s, ok := bySF[r.ScaleFactor]
		if !ok {
			s = &Fig9Summary{ScaleFactor: r.ScaleFactor}
			bySF[r.ScaleFactor] = s
			sels[r.ScaleFactor] = &selAcc{}
			order = append(order, r.ScaleFactor)
		}
		s.Rewritten++
		sp := r.Speedup()
		a := sels[r.ScaleFactor]
		if sp >= 1 {
			s.Faster++
			a.faster = append(a.faster, r.Selectivity)
			if sp >= 2 {
				s.Faster2x++
				a.fast2x = append(a.fast2x, r.Selectivity)
			}
		} else {
			s.Slower++
			a.slower = append(a.slower, r.Selectivity)
			if sp <= 0.5 {
				s.Slower2x++
				a.slow2x = append(a.slow2x, r.Selectivity)
			}
		}
	}
	var out []Fig9Summary
	for _, sf := range order {
		s := bySF[sf]
		a := sels[sf]
		s.AvgSelFaster = mean(a.faster)
		s.AvgSelFast2x = mean(a.fast2x)
		s.AvgSelSlower = mean(a.slower)
		s.AvgSelSlow2x = mean(a.slow2x)
		out = append(out, *s)
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MotivatingResult is the §2 experiment: Q1 vs Q2 on TPC-H.
type MotivatingResult struct {
	ScaleFactor        float64
	Q1Time, Q2Time     time.Duration
	Q1JoinIn, Q2JoinIn int
	OutputRows         int
	Speedup            float64
}

// Motivating reproduces the §2 measurement: the hand-rewritten Q2 (with
// the three inferred lineitem predicates) against the original Q1.
func Motivating(sf float64) (*MotivatingResult, error) {
	orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: sf})
	cat := plan.NewCatalog()
	cat.Add(orders)
	cat.Add(lineitem)
	q1 := `SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey
		AND l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'
		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10`
	q2 := q1 + ` AND l_shipdate < DATE '1993-06-20' AND l_commitdate < DATE '1993-07-18'
		AND l_commitdate - l_shipdate < 29`
	run := func(stmt string) (time.Duration, int, int, error) {
		parsed, err := sql.Parse(stmt, cat)
		if err != nil {
			return 0, 0, 0, err
		}
		node, err := parsed.Plan(cat)
		if err != nil {
			return 0, 0, 0, err
		}
		table, stats, err := executeBest(plan.PushDownFilters(node), cat, 3, 0)
		if err != nil {
			return 0, 0, 0, err
		}
		return stats.Elapsed, stats.JoinInputRows, table.NumRows(), nil
	}
	t1, j1, rows1, err := run(q1)
	if err != nil {
		return nil, err
	}
	t2, j2, rows2, err := run(q2)
	if err != nil {
		return nil, err
	}
	if rows1 != rows2 {
		return nil, fmt.Errorf("experiments: Q1 and Q2 disagree: %d vs %d rows", rows1, rows2)
	}
	return &MotivatingResult{
		ScaleFactor: sf,
		Q1Time:      t1, Q2Time: t2,
		Q1JoinIn: j1, Q2JoinIn: j2,
		OutputRows: rows1,
		Speedup:    float64(t1) / float64(t2),
	}, nil
}
