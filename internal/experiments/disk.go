package experiments

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"sia/internal/cache"
	"sia/internal/core"
	"sia/internal/engine"
	"sia/internal/plan"
	"sia/internal/predicate"
	"sia/internal/sql"
	"sia/internal/storage"
	"sia/internal/tpch"
	"sia/internal/workload"
)

// DefaultSegmentRows is the ingestion batch size of the disk experiment:
// each segment file holds this many rows (except the final remainder).
const DefaultSegmentRows = 8192

// DiskRecord is one query's disk-backed runtime comparison at one scale
// factor: the Fig. 9 measurement repeated over segment storage, where a
// Sia rewrite's synthesized predicate additionally prunes segments via
// zone maps.
type DiskRecord struct {
	QueryID     int     `json:"query_id"`
	ScaleFactor float64 `json:"scale_factor"`
	// Rewritten reports whether Sia produced a valid lineitem-side
	// predicate for this query.
	Rewritten    bool   `json:"rewritten"`
	SynthesisErr string `json:"synthesis_err,omitempty"`
	// OriginalNs and RewrittenNs are the measured disk-plan times.
	OriginalNs  int64 `json:"original_ns"`
	RewrittenNs int64 `json:"rewritten_ns,omitempty"`
	// Per-run storage activity (segments and bytes, per execution).
	OrigScanned   uint64 `json:"orig_segments_scanned"`
	OrigPruned    uint64 `json:"orig_segments_pruned"`
	OrigBytesRead uint64 `json:"orig_bytes_read"`
	RwScanned     uint64 `json:"rw_segments_scanned,omitempty"`
	RwPruned      uint64 `json:"rw_segments_pruned,omitempty"`
	RwBytesRead   uint64 `json:"rw_bytes_read,omitempty"`
	OutputRows    int    `json:"output_rows"`
}

// Speedup returns original/rewritten (>1 means the rewrite won).
func (r DiskRecord) Speedup() float64 {
	if r.RewrittenNs == 0 {
		return 1
	}
	return float64(r.OriginalNs) / float64(r.RewrittenNs)
}

// DiskSummary aggregates one scale factor.
type DiskSummary struct {
	ScaleFactor float64 `json:"scale_factor"`
	Queries     int     `json:"queries"`
	Rewritten   int     `json:"rewritten"`
	Faster      int     `json:"faster"`
	Faster2x    int     `json:"faster_2x"`
	// MeanSpeedup and MedianSpeedup are over rewritten queries.
	MeanSpeedup   float64 `json:"mean_speedup"`
	MedianSpeedup float64 `json:"median_speedup"`
	// SegmentsPruned is the total per-run segments skipped across the
	// rewritten executions; PrunedFrac is the fraction of rewritten plans'
	// candidate segments that zone maps eliminated.
	SegmentsPruned uint64  `json:"segments_pruned"`
	PrunedFrac     float64 `json:"pruned_frac"`
	// BytesReadOrig and BytesReadRw total the per-run bytes the original
	// and rewritten plans read.
	BytesReadOrig uint64 `json:"bytes_read_orig"`
	BytesReadRw   uint64 `json:"bytes_read_rw"`
}

// DiskProbe records the streaming-ingestion half of the experiment: after
// the measurements, a segment append must invalidate cached synthesis
// entries conditioned on the appended table's columns and force a fresh
// CEGIS run.
type DiskProbe struct {
	InvalidatedEntries int  `json:"invalidated_entries"`
	ResynthesisMiss    bool `json:"resynthesis_miss"`
}

// DiskReport is the full fig9-disk result.
type DiskReport struct {
	SegmentRows int           `json:"segment_rows"`
	Summaries   []DiskSummary `json:"summaries"`
	Probe       DiskProbe     `json:"probe"`
	Records     []DiskRecord  `json:"records"`
}

// sortByColumn returns t's rows stably reordered by ascending col — the
// experiment's stand-in for time-ordered streaming ingestion, which is
// what gives date zone maps their narrow per-segment ranges.
func sortByColumn(t *engine.Table, col string) (*engine.Table, error) {
	vals := t.Ints(col)
	idx := make([]int, t.NumRows())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	return engine.ReorderRows(t, idx, 0)
}

// ingest writes t into dir as segments of segRows rows each and returns
// the opened segment table.
func ingest(dir string, t *engine.Table, segRows int) (*storage.SegmentTable, error) {
	st, err := storage.Open(dir, t.Name, t.Schema())
	if err != nil {
		return nil, err
	}
	for lo := 0; lo < t.NumRows(); lo += segRows {
		hi := lo + segRows
		if hi > t.NumRows() {
			hi = t.NumRows()
		}
		if err := st.AppendRange(t, lo, hi); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// Fig9Disk runs the disk-backed runtime experiment: TPC-H data is sorted
// by its date column (time-ordered ingestion), written as zone-mapped
// segment files, and every benchmark query executes twice — the original
// plan, whose lineitem scan reads every segment, and the Sia-rewritten
// plan, whose synthesized lineitem predicate prunes segments before their
// pages are read. Results are checked value-identical between the two
// plans and against the in-memory engine.
func Fig9Disk(cfg Config) (*DiskReport, error) {
	cfg = cfg.withDefaults()
	if cfg.SegmentRows <= 0 {
		cfg.SegmentRows = DefaultSegmentRows
	}
	queries := workload.Generate(workload.Config{N: cfg.Queries, Seed: cfg.Seed})
	schema := tpch.JoinSchema()

	root, err := os.MkdirTemp("", "sia-fig9-disk-*")
	if err != nil {
		return nil, fmt.Errorf("experiments: disk experiment scratch dir: %w", err)
	}
	defer os.RemoveAll(root)

	report := &DiskReport{SegmentRows: cfg.SegmentRows}
	var probeTable *storage.SegmentTable // largest SF's lineitem, for the probe
	var probeQuery *workload.Query

	for sfIdx, sf := range cfg.ScaleFactors {
		orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: sf})
		orders, err := sortByColumn(orders, "o_orderdate")
		if err != nil {
			return nil, err
		}
		lineitem, err = sortByColumn(lineitem, "l_shipdate")
		if err != nil {
			return nil, err
		}

		sfDir := fmt.Sprintf("%s/sf%d", root, sfIdx)
		ordersDir, lineitemDir := sfDir+"/orders", sfDir+"/lineitem"
		for _, d := range []string{ordersDir, lineitemDir} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
		}
		ordersDisk, err := ingest(ordersDir, orders, cfg.SegmentRows)
		if err != nil {
			return nil, err
		}
		lineitemDisk, err := ingest(lineitemDir, lineitem, cfg.SegmentRows)
		if err != nil {
			return nil, err
		}

		diskCat, memCat := plan.NewCatalog(), plan.NewCatalog()
		diskCat.AddSource(ordersDisk)
		diskCat.AddSource(lineitemDisk)
		memCat.Add(orders)
		memCat.Add(lineitem)

		// The disk read path must reproduce the in-memory tables exactly.
		for name, mem := range map[string]*engine.Table{"orders": orders, "lineitem": lineitem} {
			src, err := diskCat.Source(name)
			if err != nil {
				return nil, err
			}
			back, err := src.ScanFilter(nil, cfg.Parallelism)
			if err != nil {
				return nil, err
			}
			if !engine.TablesEqual(mem, back) {
				return nil, fmt.Errorf("experiments: disk table %s differs from in-memory data", name)
			}
		}

		summary := DiskSummary{ScaleFactor: sf, Queries: len(queries)}
		var speedups []float64
		const runs = 3
		for qi, q := range queries {
			rec := DiskRecord{QueryID: q.ID, ScaleFactor: sf}

			parsed, err := sql.Parse(q.SQL(), diskCat)
			if err != nil {
				return nil, fmt.Errorf("experiments: parse query %d: %w", q.ID, err)
			}
			node, err := parsed.Plan(diskCat)
			if err != nil {
				return nil, fmt.Errorf("experiments: plan query %d: %w", q.ID, err)
			}
			origPlan := plan.PushDownFilters(node)

			before := storage.SnapshotCounters()
			origTable, origStats, err := executeBest(origPlan, diskCat, runs, cfg.Parallelism)
			if err != nil {
				return nil, fmt.Errorf("experiments: execute query %d: %w", q.ID, err)
			}
			delta := storage.SnapshotCounters().Sub(before)
			rec.OriginalNs = origStats.Elapsed.Nanoseconds()
			rec.OrigScanned = delta.SegmentsScanned / runs
			rec.OrigPruned = delta.SegmentsPruned / runs
			rec.OrigBytesRead = delta.BytesRead / runs
			rec.OutputRows = origTable.NumRows()
			summary.BytesReadOrig += rec.OrigBytesRead

			// The first query at each scale factor is additionally checked
			// value-identical against the in-memory engine end to end.
			if qi == 0 {
				memTable, _, err := executeBest(origPlan, memCat, 1, cfg.Parallelism)
				if err != nil {
					return nil, err
				}
				if !engine.TablesEqual(memTable, origTable) {
					return nil, fmt.Errorf("experiments: query %d disk result differs from in-memory engine", q.ID)
				}
			}

			cols := lineitemCols(q.Pred)
			if len(cols) > 0 {
				opts := core.PresetSIA()
				opts.MaxIterations = cfg.MaxIterations
				opts.Tracer = cfg.Tracer
				res, _, serr := fig9Synth.Synthesize(context.Background(), q.Pred, cols, schema, opts)
				switch {
				case serr != nil:
					rec.SynthesisErr = serr.Error()
				case res.Predicate != nil && res.Valid:
					rec.Rewritten = true
					rwNode := &plan.Filter{Pred: predicate.NewAnd(parsed.Where, res.Predicate), Input: join(node)}
					rwPlan := plan.PushDownFilters(rwNode)
					before := storage.SnapshotCounters()
					rwTable, rwStats, err := executeBest(rwPlan, diskCat, runs, cfg.Parallelism)
					if err != nil {
						return nil, fmt.Errorf("experiments: execute rewritten %d: %w", q.ID, err)
					}
					delta := storage.SnapshotCounters().Sub(before)
					// The rewrite may reorder join output (the smaller
					// lineitem side can flip build/probe roles), so compare
					// as row multisets rather than byte-for-byte.
					if !sameRows(rwTable, origTable) {
						return nil, fmt.Errorf("experiments: query %d rewrite changed results: %d vs %d rows",
							q.ID, rwTable.NumRows(), origTable.NumRows())
					}
					rec.RewrittenNs = rwStats.Elapsed.Nanoseconds()
					rec.RwScanned = delta.SegmentsScanned / runs
					rec.RwPruned = delta.SegmentsPruned / runs
					rec.RwBytesRead = delta.BytesRead / runs

					summary.Rewritten++
					summary.SegmentsPruned += rec.RwPruned
					summary.BytesReadRw += rec.RwBytesRead
					sp := rec.Speedup()
					speedups = append(speedups, sp)
					if sp >= 1 {
						summary.Faster++
					}
					if sp >= 2 {
						summary.Faster2x++
					}
					if probeQuery == nil && sfIdx == len(cfg.ScaleFactors)-1 {
						qq := q
						probeQuery = &qq
					}
				}
			}
			report.Records = append(report.Records, rec)
		}
		if n := summary.SegmentsPruned; n > 0 {
			total := uint64(0)
			for _, r := range report.Records {
				if r.ScaleFactor == sf && r.Rewritten {
					total += r.RwScanned + r.RwPruned
				}
			}
			summary.PrunedFrac = float64(n) / float64(total)
		}
		summary.MeanSpeedup = mean(speedups)
		summary.MedianSpeedup = median(speedups)
		report.Summaries = append(report.Summaries, summary)

		if sfIdx == len(cfg.ScaleFactors)-1 {
			probeTable = lineitemDisk
		}
	}

	probe, err := runDiskProbe(probeTable, probeQuery, schema, cfg)
	if err != nil {
		return nil, err
	}
	report.Probe = probe
	return report, nil
}

// runDiskProbe exercises streaming ingestion against the synthesis cache:
// a cached result over lineitem columns must be invalidated by a segment
// append and re-synthesized from scratch afterwards.
func runDiskProbe(lineitemDisk *storage.SegmentTable, q *workload.Query, schema *predicate.Schema, cfg Config) (DiskProbe, error) {
	var probe DiskProbe
	if lineitemDisk == nil || q == nil {
		return probe, nil
	}
	synth := cache.NewSynthesizer(64)
	invalidated := 0
	lineitemDisk.OnAppend(func(cols []string) { invalidated += synth.InvalidateColumns(cols) })

	opts := core.PresetSIA()
	opts.MaxIterations = cfg.MaxIterations
	cols := lineitemCols(q.Pred)
	run := func() (bool, error) {
		_, cached, err := synth.Synthesize(context.Background(), q.Pred, cols, schema, opts)
		return cached, err
	}
	if _, err := run(); err != nil { // cold fill
		return probe, err
	}
	if cached, err := run(); err != nil {
		return probe, fmt.Errorf("experiments: probe re-synthesis: %w", err)
	} else if !cached {
		return probe, fmt.Errorf("experiments: probe expected a cache hit before the append")
	}

	// Stream one more batch into lineitem: entries conditioned on its
	// columns must go.
	batch, err := lineitemDisk.ScanFilter(nil, cfg.Parallelism)
	if err != nil {
		return probe, err
	}
	n := batch.NumRows()
	if n > 64 {
		n = 64
	}
	if err := lineitemDisk.AppendRange(batch, 0, n); err != nil {
		return probe, err
	}
	probe.InvalidatedEntries = invalidated

	cached, err := run()
	if err != nil {
		return probe, err
	}
	probe.ResynthesisMiss = !cached
	return probe, nil
}

// sameRows reports whether two tables hold the same rows as multisets,
// ignoring row order (join output order is plan-dependent).
func sameRows(a, b *engine.Table) bool {
	if a.NumRows() != b.NumRows() {
		return false
	}
	cols := a.Schema().Columns()
	fingerprint := func(t *engine.Table, row int) string {
		var sb strings.Builder
		for _, c := range cols {
			v := t.Value(row, c.Name)
			fmt.Fprintf(&sb, "%v|%v|%v;", v.Null, v.Int, v.Real)
		}
		return sb.String()
	}
	counts := make(map[string]int, a.NumRows())
	for r := 0; r < a.NumRows(); r++ {
		counts[fingerprint(a, r)]++
	}
	for r := 0; r < b.NumRows(); r++ {
		k := fingerprint(b, r)
		counts[k]--
		if counts[k] == 0 {
			delete(counts, k)
		}
	}
	return len(counts) == 0
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// RenderDisk formats a DiskReport for terminal output.
func RenderDisk(r *DiskReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 9 (disk): segment storage with zone-map pruning, %d rows/segment\n", r.SegmentRows)
	fmt.Fprintf(&sb, "%10s %8s %10s %7s %9s %13s %13s %11s\n",
		"scale", "rewrit.", "faster", ">=2x", "pruned%", "mean spdup", "med spdup", "MB saved")
	for _, s := range r.Summaries {
		saved := float64(int64(s.BytesReadOrig)-int64(s.BytesReadRw)) / (1 << 20)
		fmt.Fprintf(&sb, "%10.2f %8d %10d %7d %8.1f%% %12.2fx %12.2fx %10.1f\n",
			s.ScaleFactor, s.Rewritten, s.Faster, s.Faster2x,
			100*s.PrunedFrac, s.MeanSpeedup, s.MedianSpeedup, saved)
	}
	fmt.Fprintf(&sb, "streaming probe: append invalidated %d cached syntheses; re-synthesis missed the cache: %v\n",
		r.Probe.InvalidatedEntries, r.Probe.ResynthesisMiss)
	return sb.String()
}
