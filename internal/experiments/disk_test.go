package experiments

import (
	"strings"
	"testing"

	"sia/internal/engine"
	"sia/internal/tpch"
)

func TestFig9Disk(t *testing.T) {
	cfg := smallCfg()
	cfg.SegmentRows = 128 // many segments even at the test scale
	rep, err := Fig9Disk(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) == 0 || len(rep.Summaries) != 1 {
		t.Fatalf("records=%d summaries=%d", len(rep.Records), len(rep.Summaries))
	}
	s := rep.Summaries[0]
	if s.Rewritten == 0 {
		t.Fatal("no queries were rewritten; the experiment is vacuous")
	}
	if s.SegmentsPruned == 0 {
		t.Fatal("rewritten plans pruned no segments; zone maps never fired")
	}
	if s.BytesReadRw >= s.BytesReadOrig {
		t.Fatalf("rewrite read more bytes than the original: %d vs %d", s.BytesReadRw, s.BytesReadOrig)
	}
	for _, r := range rep.Records {
		if r.OriginalNs <= 0 || r.OrigScanned == 0 {
			t.Fatalf("incomplete original record: %+v", r)
		}
		if r.Rewritten && r.RewrittenNs <= 0 {
			t.Fatalf("incomplete rewritten record: %+v", r)
		}
	}
	// The streaming probe must show the full loop: fill, hit, append,
	// invalidate, miss.
	if rep.Probe.InvalidatedEntries == 0 || !rep.Probe.ResynthesisMiss {
		t.Fatalf("probe did not observe invalidation: %+v", rep.Probe)
	}
	if out := RenderDisk(rep); !strings.Contains(out, "streaming probe") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestSameRows(t *testing.T) {
	orders, _ := tpch.Generate(tpch.Config{ScaleFactor: 0.01})
	if !sameRows(orders, orders) {
		t.Fatal("table must equal itself")
	}
	sorted, err := sortByColumn(orders, "o_totalprice")
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(orders, sorted) {
		t.Fatal("reordering must not change the row multiset")
	}
	// Same row count, different multiset: duplicate row 1 in place of row 0.
	idx := make([]int, orders.NumRows())
	for i := range idx {
		idx[i] = i
	}
	idx[0] = 1
	swapped, err := engine.ReorderRows(orders, idx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sameRows(orders, swapped) {
		t.Fatal("a replaced row must be detected")
	}
}

func TestMedian(t *testing.T) {
	if m := median(nil); m != 0 {
		t.Fatalf("median(nil) = %v", m)
	}
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}
