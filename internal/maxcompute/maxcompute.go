// Package maxcompute simulates the production-workload case study of §6.2.
//
// The paper examines one day of queries on Alibaba MaxCompute (a
// proprietary log of 204,287 *syntax-based prospective* queries, of which
// 26,104 are *symbolically relevant*), reporting the distributions of
// execution time, CPU consumption and memory footprint (Fig. 6), with the
// headline that 74.63% of prospective queries run longer than 10 seconds —
// long enough to amortize Sia's optimization time.
//
// The production log is unavailable, so this package synthesizes a
// population with the same *mechanics*:
//
//   - each query joins two tables whose sizes follow a heavy-tailed
//     (log-normal) distribution, as warehouse fact/dimension tables do;
//   - predicates are drawn from a shape mix: single-table only,
//     cross-table linear arithmetic (Sia's fragment), and cross-table
//     shapes outside the fragment (non-linear reuse, which Sia's encoder
//     rejects — standing in for the log's text/UDF predicates);
//   - the *classification* is not simulated: syntax-based prospectivity is
//     decided by inspecting conjunct column sets, and symbolic relevance
//     runs the real Sia unsatisfaction-tuple check on the real predicate;
//   - execution time, CPU and memory come from a scan+hash-join cost
//     model over the drawn table sizes.
//
// Absolute counts are scaled down (the harness reports the scale); the
// distribution shapes and the prospective→relevant funnel are the
// reproduced quantities.
package maxcompute

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sia/internal/core"
	"sia/internal/predicate"
	"sia/internal/smt"
)

// QueryClass classifies a simulated production query.
type QueryClass int

const (
	// ClassOther: not syntax-based prospective (no cross-table predicate,
	// or every involved table already has a single-table predicate).
	ClassOther QueryClass = iota
	// ClassProspective: has a cross-table predicate over a table with no
	// single-table predicate of its own — a full scan the optimizer
	// cannot avoid without Sia.
	ClassProspective
	// ClassRelevant: prospective and Sia generates an unsatisfaction
	// tuple, so a non-trivial pushdown predicate exists.
	ClassRelevant
)

func (c QueryClass) String() string {
	switch c {
	case ClassProspective:
		return "prospective"
	case ClassRelevant:
		return "relevant"
	default:
		return "other"
	}
}

// SimQuery is one simulated production query with its resource profile.
type SimQuery struct {
	ID    int
	Class QueryClass
	// ExecSeconds, CPUSeconds, MemoryGB are the simulated resource usage.
	ExecSeconds float64
	CPUSeconds  float64
	MemoryGB    float64
}

// Config controls the simulation.
type Config struct {
	// N is the population size (the paper's log has ~275k queries in
	// total; the default 2000 keeps the experiment fast — scale up with
	// this knob for the full funnel).
	N int
	// Seed fixes the random stream.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 2000
	}
	if c.Seed == 0 {
		c.Seed = 62
	}
	return c
}

// Simulate draws the population, classifies every query (running the real
// Sia relevance check on prospective ones) and attaches resource profiles.
func Simulate(cfg Config) ([]SimQuery, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	solver := smt.New()
	schema := simSchema()
	out := make([]SimQuery, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		shape := drawShape(rng)
		pred := shape.pred
		class := ClassOther
		if shape.prospective {
			class = ClassProspective
			relevant, err := core.SymbolicallyRelevant(context.Background(), pred, shape.scanSideCols, schema, solver)
			if err != nil && !errors.Is(err, core.ErrUnsupported) && !errors.Is(err, smt.ErrBudget) {
				return nil, fmt.Errorf("maxcompute: relevance check: %w", err)
			}
			if err == nil && relevant {
				class = ClassRelevant
			}
		}

		// Table sizes: log-normal rows, heavier tail for fact tables.
		factRows := math.Exp(rng.NormFloat64()*1.6 + 18.2) // median ~80M rows
		dimRows := math.Exp(rng.NormFloat64()*1.4 + 14.8)  // median ~2.7M rows
		const (
			scanRowsPerSec = 40e6 // columnar scan throughput per core
			cores          = 16
			bytesPerRow    = 160
		)
		scanSec := (factRows + dimRows) / scanRowsPerSec
		joinSec := (factRows + dimRows) / (scanRowsPerSec / 4)
		exec := (scanSec + joinSec) * (0.6 + rng.Float64())
		cpu := exec * cores * (0.35 + 0.5*rng.Float64())
		mem := math.Min(dimRows, factRows) * bytesPerRow / 1e9 * (0.8 + 0.4*rng.Float64())

		out = append(out, SimQuery{
			ID:          i + 1,
			Class:       class,
			ExecSeconds: exec,
			CPUSeconds:  cpu,
			MemoryGB:    mem,
		})
	}
	return out, nil
}

// simSchema is the two-table warehouse schema the shapes draw from.
func simSchema() *predicate.Schema {
	return predicate.NewSchema(
		predicate.Column{Name: "f_a", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "f_b", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "d_x", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "d_y", Type: predicate.TypeInteger, NotNull: true},
	)
}

type queryShape struct {
	pred predicate.Predicate
	// prospective: a cross-table conjunct exists and the fact side (f_*)
	// has no single-table conjunct.
	prospective bool
	// scanSideCols are the fact-side columns a pushdown predicate would
	// need to use.
	scanSideCols []string
}

// drawShape mixes predicate shapes roughly like a production log: most
// queries are unremarkable; a minority are prospective; a fraction of those
// fall in Sia's fragment.
func drawShape(rng *rand.Rand) queryShape {
	fa := predicate.Col("f_a", predicate.TypeInteger)
	fb := predicate.Col("f_b", predicate.TypeInteger)
	dx := predicate.Col("d_x", predicate.TypeInteger)
	k := func(lo, hi int64) *predicate.Const { return predicate.IntConst(lo + rng.Int63n(hi-lo+1)) }
	cross := func() predicate.Predicate {
		// f_a - d_x ⋈ c, plus a dimension-side bound.
		ops := []predicate.CmpOp{predicate.CmpLT, predicate.CmpLE, predicate.CmpGT, predicate.CmpGE}
		return predicate.NewAnd(
			predicate.Cmp(ops[rng.Intn(len(ops))], predicate.Sub(fa, dx), k(-50, 200)),
			predicate.Cmp(predicate.CmpLT, dx, k(0, 1000)),
		)
	}
	switch r := rng.Float64(); {
	case r < 0.55:
		// Single-table predicates only: never prospective.
		return queryShape{
			pred: predicate.NewAnd(
				predicate.Cmp(predicate.CmpGT, fa, k(0, 500)),
				predicate.Cmp(predicate.CmpLT, dx, k(0, 500)),
			),
		}
	case r < 0.75:
		// Cross-table but the fact side also has its own conjunct: the
		// optimizer can already push something down.
		return queryShape{
			pred: predicate.NewAnd(cross(), predicate.Cmp(predicate.CmpGT, fb, k(0, 100))),
		}
	case r < 0.93:
		// Prospective, within Sia's fragment.
		return queryShape{
			pred:         cross(),
			prospective:  true,
			scanSideCols: []string{"f_a"},
		}
	default:
		// Prospective but outside the fragment: the fact column is reused
		// inside a non-linear product, which Sia's encoder rejects — the
		// stand-in for the log's text/UDF predicates.
		return queryShape{
			pred: predicate.NewAnd(
				predicate.Cmp(predicate.CmpGT, predicate.Mul(fa, dx), k(10, 1000)),
				predicate.Cmp(predicate.CmpLT, predicate.Sub(fa, dx), k(0, 100)),
			),
			prospective:  true,
			scanSideCols: []string{"f_a"},
		}
	}
}

// Histogram buckets a metric the way Fig. 6 presents it.
type Histogram struct {
	Labels []string
	Counts []int
}

// HistExec buckets execution seconds: <1s, 1–10s, 10–100s, >100s.
func HistExec(qs []SimQuery, class QueryClass) Histogram {
	return bucket(qs, class, []float64{1, 10, 100}, []string{"<1s", "1-10s", "10-100s", ">100s"},
		func(q SimQuery) float64 { return q.ExecSeconds })
}

// HistCPU buckets CPU seconds: <10, 10–100, 100–1000, >1000.
func HistCPU(qs []SimQuery, class QueryClass) Histogram {
	return bucket(qs, class, []float64{10, 100, 1000}, []string{"<10s", "10-100s", "100-1000s", ">1000s"},
		func(q SimQuery) float64 { return q.CPUSeconds })
}

// HistMemory buckets memory GB: <1, 1–10, 10–100, >100.
func HistMemory(qs []SimQuery, class QueryClass) Histogram {
	return bucket(qs, class, []float64{1, 10, 100}, []string{"<1GB", "1-10GB", "10-100GB", ">100GB"},
		func(q SimQuery) float64 { return q.MemoryGB })
}

func bucket(qs []SimQuery, class QueryClass, edges []float64, labels []string, metric func(SimQuery) float64) Histogram {
	h := Histogram{Labels: labels, Counts: make([]int, len(labels))}
	for _, q := range qs {
		if !inClass(q, class) {
			continue
		}
		v := metric(q)
		i := 0
		for i < len(edges) && v >= edges[i] {
			i++
		}
		h.Counts[i]++
	}
	return h
}

// inClass: relevant queries are a subset of prospective ones, as in the
// paper's funnel.
func inClass(q SimQuery, class QueryClass) bool {
	if class == ClassProspective {
		return q.Class == ClassProspective || q.Class == ClassRelevant
	}
	return q.Class == class
}

// FractionOver returns the share of queries of a class whose metric
// exceeds the threshold (the paper's "74.63% take longer than 10 seconds").
func FractionOver(qs []SimQuery, class QueryClass, seconds float64) float64 {
	n, over := 0, 0
	for _, q := range qs {
		if !inClass(q, class) {
			continue
		}
		n++
		if q.ExecSeconds > seconds {
			over++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(over) / float64(n)
}

// Count returns the number of queries in a class.
func Count(qs []SimQuery, class QueryClass) int {
	n := 0
	for _, q := range qs {
		if inClass(q, class) {
			n++
		}
	}
	return n
}
