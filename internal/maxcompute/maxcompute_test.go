package maxcompute

import "testing"

func TestSimulateFunnel(t *testing.T) {
	qs, err := Simulate(Config{N: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 400 {
		t.Fatalf("population = %d", len(qs))
	}
	total := len(qs)
	prospective := Count(qs, ClassProspective)
	relevant := Count(qs, ClassRelevant)
	if prospective == 0 || relevant == 0 {
		t.Fatalf("degenerate funnel: %d prospective, %d relevant", prospective, relevant)
	}
	// The paper's funnel: relevant ⊂ prospective ⊂ population.
	if relevant > prospective || prospective > total {
		t.Fatalf("funnel inverted: %d/%d/%d", relevant, prospective, total)
	}
	// The Sia-fragment shapes must classify as relevant, the non-linear
	// ones must not: relevant should be a strict subset.
	if relevant == prospective {
		t.Fatal("non-linear prospective queries should not be symbolically relevant")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(Config{N: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(Config{N: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Class != b[i].Class || a[i].ExecSeconds != b[i].ExecSeconds {
			t.Fatalf("simulation is not deterministic at %d", i)
		}
	}
}

func TestHistograms(t *testing.T) {
	qs, err := Simulate(Config{N: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []Histogram{
		HistExec(qs, ClassProspective),
		HistCPU(qs, ClassProspective),
		HistMemory(qs, ClassProspective),
	} {
		if len(h.Labels) != len(h.Counts) {
			t.Fatalf("ragged histogram: %+v", h)
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		if sum != Count(qs, ClassProspective) {
			t.Fatalf("histogram loses queries: %d != %d", sum, Count(qs, ClassProspective))
		}
	}
}

func TestFractionOver(t *testing.T) {
	qs := []SimQuery{
		{Class: ClassProspective, ExecSeconds: 5},
		{Class: ClassProspective, ExecSeconds: 50},
		{Class: ClassRelevant, ExecSeconds: 500},
		{Class: ClassOther, ExecSeconds: 5000},
	}
	// Prospective includes relevant: 2 of 3 exceed 10s.
	got := FractionOver(qs, ClassProspective, 10)
	if got < 0.66 || got > 0.67 {
		t.Fatalf("FractionOver = %f", got)
	}
	if FractionOver(nil, ClassProspective, 10) != 0 {
		t.Fatal("empty population should yield 0")
	}
}
