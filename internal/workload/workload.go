// Package workload generates the paper's benchmark: 200 queries derived
// from (a sub-query of) TPC-H Q4 with randomly generated conjunctive
// predicates (§6.3). Every query follows the template
//
//	SELECT * FROM lineitem, orders
//	WHERE o_orderkey = l_orderkey AND <predicate>
//
// where <predicate> is a conjunction of 3–8 binary arithmetic comparisons
// over l_shipdate, l_commitdate, l_receiptdate and o_orderdate, each term
// referencing o_orderdate (so no term can be pushed below the join to
// lineitem as written). Unsatisfiable predicates are re-generated, exactly
// as in the paper.
package workload

import (
	"fmt"
	"math/rand"

	"sia/internal/core"
	"sia/internal/predicate"
	"sia/internal/smt"
	"sia/internal/tpch"
)

// LineitemDateCols are the lineitem columns predicates draw from; the
// efficacy experiment synthesizes predicates over every non-empty subset.
var LineitemDateCols = []string{"l_shipdate", "l_commitdate", "l_receiptdate"}

// Query is one generated benchmark query.
type Query struct {
	ID   int
	Pred predicate.Predicate
}

// SQL renders the full statement.
func (q Query) SQL() string {
	return fmt.Sprintf("SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey AND %s", q.Pred)
}

// Config controls generation.
type Config struct {
	// N is the number of queries (paper: 200).
	N int
	// Seed fixes the random stream; 0 uses a default.
	Seed int64
	// MinTerms and MaxTerms bound the conjunction size (paper: 3–8).
	MinTerms, MaxTerms int
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 200
	}
	if c.Seed == 0 {
		c.Seed = 20210620 // SIGMOD '21 started June 20.
	}
	if c.MinTerms == 0 {
		c.MinTerms = 3
	}
	if c.MaxTerms == 0 {
		c.MaxTerms = 8
	}
	return c
}

// Generate produces the benchmark queries. Each predicate is checked for
// satisfiability with the solver and re-drawn if unsatisfiable.
func Generate(cfg Config) []Query {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := tpch.JoinSchema()
	solver := smt.New()
	var out []Query
	for id := 1; len(out) < cfg.N; id++ {
		nTerms := cfg.MinTerms + rng.Intn(cfg.MaxTerms-cfg.MinTerms+1)
		var terms []predicate.Predicate
		for i := 0; i < nTerms; i++ {
			terms = append(terms, randomTerm(rng, schema))
		}
		p := predicate.NewAnd(terms...)
		if !satisfiable(solver, p, schema) {
			continue
		}
		out = append(out, Query{ID: len(out) + 1, Pred: p})
	}
	return out
}

// randomTerm draws one binary comparison per the template's shapes. Every
// shape references o_orderdate, so the raw term cannot be pushed to
// lineitem.
func randomTerm(rng *rand.Rand, schema *predicate.Schema) predicate.Predicate {
	ops := []predicate.CmpOp{predicate.CmpLT, predicate.CmpLE, predicate.CmpGT, predicate.CmpGE}
	op := ops[rng.Intn(len(ops))]
	order := predicate.Col("o_orderdate", predicate.TypeDate)
	lcol := func() *predicate.ColumnRef {
		return predicate.Col(LineitemDateCols[rng.Intn(len(LineitemDateCols))], predicate.TypeDate)
	}
	interval := func(lo, hi int64) *predicate.Const {
		return predicate.IntConst(lo + rng.Int63n(hi-lo+1))
	}
	dateConst := func() *predicate.Const {
		// Dates within the populated window (1992-06 .. 1998-06).
		lo := predicate.DateToDays(1992, 6, 1)
		hi := predicate.DateToDays(1998, 6, 1)
		return predicate.DateConst(lo + rng.Int63n(hi-lo+1))
	}
	switch r := rng.Float64(); {
	case r < 0.15:
		// o_orderdate CMP date
		return predicate.Cmp(op, order, dateConst())
	case r < 0.30:
		// X - o_orderdate CMP interval
		return predicate.Cmp(op, predicate.Sub(lcol(), order), interval(-30, 150))
	case r < 0.55:
		// X - Y CMP Y - o_orderdate + interval — the §2 form; after
		// linearization Y carries coefficient 2, putting the term outside
		// the transitive-closure fragment.
		a := lcol()
		b := lcol()
		return predicate.Cmp(op,
			predicate.Sub(a, b),
			predicate.Add(predicate.Sub(b, order), interval(-40, 60)))
	case r < 0.75:
		// X - o_orderdate CMP Y - o_orderdate + interval
		return predicate.Cmp(op,
			predicate.Sub(lcol(), order),
			predicate.Add(predicate.Sub(lcol(), order), interval(-40, 60)))
	case r < 0.90:
		// X - Y CMP Z - o_orderdate + interval (up to four columns)
		a, b := lcol(), lcol()
		return predicate.Cmp(op,
			predicate.Sub(a, b),
			predicate.Add(predicate.Sub(lcol(), order), interval(-40, 60)))
	default:
		// o_orderdate - X CMP interval
		return predicate.Cmp(op, predicate.Sub(order, lcol()), interval(-150, 30))
	}
}

func satisfiable(solver *smt.Solver, p predicate.Predicate, schema *predicate.Schema) bool {
	f, err := core.EncodePredicate(p, schema)
	if err != nil {
		return false
	}
	sat, err := solver.Satisfiable(f)
	return err == nil && sat
}
