package workload

import (
	"strings"
	"testing"

	"sia/internal/core"
	"sia/internal/predicate"
	"sia/internal/smt"
	"sia/internal/tpch"
)

func TestGenerateCountAndDeterminism(t *testing.T) {
	a := Generate(Config{N: 25})
	b := Generate(Config{N: 25})
	if len(a) != 25 || len(b) != 25 {
		t.Fatalf("counts: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Pred.String() != b[i].Pred.String() {
			t.Fatalf("query %d differs across runs", i)
		}
	}
}

func TestGeneratedQueriesFollowTemplate(t *testing.T) {
	schema := tpch.JoinSchema()
	solver := smt.New()
	for _, q := range Generate(Config{N: 40}) {
		conjs := predicate.Conjuncts(q.Pred)
		if len(conjs) < 3 || len(conjs) > 8 {
			t.Fatalf("query %d has %d terms, want 3-8", q.ID, len(conjs))
		}
		// Every term must reference o_orderdate (so the raw predicate
		// cannot be pushed to lineitem).
		for _, c := range conjs {
			found := false
			for _, col := range predicate.Columns(c) {
				if col == "o_orderdate" {
					found = true
				}
			}
			if !found {
				t.Fatalf("query %d term %q does not reference o_orderdate", q.ID, c)
			}
		}
		// Satisfiability was the generator's contract.
		f, err := core.EncodePredicate(q.Pred, schema)
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		sat, err := solver.Satisfiable(f)
		if err != nil {
			t.Fatalf("query %d: %v", q.ID, err)
		}
		if !sat {
			t.Fatalf("query %d is unsatisfiable: %s", q.ID, q.Pred)
		}
		// The SQL rendering contains the join template.
		if !strings.Contains(q.SQL(), "o_orderkey = l_orderkey") {
			t.Fatalf("query %d SQL missing join: %s", q.ID, q.SQL())
		}
	}
}

func TestGeneratedQueriesParseable(t *testing.T) {
	// Each rendered predicate must survive a parse round trip against the
	// TPC-H schema.
	schema := tpch.JoinSchema()
	for _, q := range Generate(Config{N: 20}) {
		if _, err := predicate.Parse(q.Pred.String(), schema); err != nil {
			t.Fatalf("query %d does not re-parse: %v\n%s", q.ID, err, q.Pred)
		}
	}
}
