package workload

import (
	"fmt"
	"math/rand"

	"sia/internal/predicate"
	"sia/internal/tpch"
)

// ServeConfig controls generation of a serving-tier workload: a stream of
// synthesis requests the way a fleet of query optimizers would issue them
// (the SynQL picture from §6.2 of the paper) — a pool of recurring query
// templates hit with Zipf-skewed popularity, a fraction of never-seen-
// before queries, and a mix of tenants with one dominating.
type ServeConfig struct {
	// N is the number of requests in the stream.
	N int
	// Templates is the size of the recurring-query pool.
	Templates int
	// Seed fixes the random stream; 0 uses a default.
	Seed int64
	// ZipfS is the Zipf skew exponent over the template pool (> 1; larger
	// means the hot templates dominate more).
	ZipfS float64
	// RecurrenceRate is the fraction of requests that reuse a template
	// verbatim; the remainder are fresh queries never seen again.
	RecurrenceRate float64
	// Tenants is the number of distinct tenants; requests are assigned
	// Zipf-skewed so tenant-0 is the heavy one.
	Tenants int
	// MinTerms and MaxTerms bound conjunction sizes (defaults 3–8).
	MinTerms, MaxTerms int
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.N == 0 {
		c.N = 1000
	}
	if c.Templates == 0 {
		c.Templates = 64
	}
	if c.Seed == 0 {
		c.Seed = 20210620
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.07
	}
	if c.RecurrenceRate == 0 {
		c.RecurrenceRate = 0.9
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.MinTerms == 0 {
		c.MinTerms = 3
	}
	if c.MaxTerms == 0 {
		c.MaxTerms = 8
	}
	return c
}

// ServeRequest is one element of the serving stream.
type ServeRequest struct {
	// Tenant identifies the issuing tenant ("tenant-0" is the heavy one).
	Tenant string
	// Query is the underlying benchmark query.
	Query Query
	// Cols are the synthesis target columns for this query.
	Cols []string
	// Template is the template index for recurring requests, -1 for fresh
	// queries.
	Template int
}

// Schema returns the schema serving requests are expressed over (the
// TPC-H lineitem ⋈ orders join schema used by the whole benchmark).
func ServeSchema() *predicate.Schema { return tpch.JoinSchema() }

// GenerateServe produces the serving stream. All queries (templates and
// fresh ones) are drawn by the same satisfiable-conjunction generator as
// the paper benchmark; each template keeps a fixed target-column subset so
// its recurrences share one cache key.
func GenerateServe(cfg ServeConfig) []ServeRequest {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	fresh := int(float64(cfg.N)*(1-cfg.RecurrenceRate)) + 1
	pool := Generate(Config{
		N:        cfg.Templates + fresh,
		Seed:     cfg.Seed + 1,
		MinTerms: cfg.MinTerms,
		MaxTerms: cfg.MaxTerms,
	})
	templates, freshPool := pool[:cfg.Templates], pool[cfg.Templates:]

	// Per-template target columns: a non-empty subset of the lineitem date
	// columns the template's predicate actually mentions (synthesis
	// requires every target to occur in the predicate), fixed for the
	// template's lifetime.
	targetsFor := func(q Query) []string {
		var present []string
		mentioned := map[string]bool{}
		for _, n := range predicate.Columns(q.Pred) {
			mentioned[n] = true
		}
		for _, c := range LineitemDateCols {
			if mentioned[c] {
				present = append(present, c)
			}
		}
		if len(present) == 0 {
			// Every template shape references o_orderdate and at least one
			// lineitem column, so this cannot happen; fall back defensively.
			return []string{"o_orderdate"}
		}
		subsets := colSubsetsOf(present)
		return subsets[rng.Intn(len(subsets))]
	}
	tmplCols := make([][]string, cfg.Templates)
	for i := range tmplCols {
		tmplCols[i] = targetsFor(templates[i])
	}

	tmplZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Templates-1))
	tenantZipf := rand.NewZipf(rng, 1.3, 1, uint64(cfg.Tenants-1))

	out := make([]ServeRequest, 0, cfg.N)
	nextFresh := 0
	for i := 0; i < cfg.N; i++ {
		req := ServeRequest{Tenant: fmt.Sprintf("tenant-%d", tenantZipf.Uint64())}
		if rng.Float64() < cfg.RecurrenceRate || nextFresh >= len(freshPool) {
			t := int(tmplZipf.Uint64())
			req.Query = templates[t]
			req.Cols = tmplCols[t]
			req.Template = t
		} else {
			req.Query = freshPool[nextFresh]
			req.Cols = targetsFor(req.Query)
			req.Template = -1
			nextFresh++
		}
		out = append(out, req)
	}
	return out
}

// colSubsetsOf returns every non-empty subset of cols.
func colSubsetsOf(cols []string) [][]string {
	var out [][]string
	for mask := 1; mask < 1<<len(cols); mask++ {
		var sub []string
		for i, c := range cols {
			if mask&(1<<i) != 0 {
				sub = append(sub, c)
			}
		}
		out = append(out, sub)
	}
	return out
}
