package svm

import (
	"fmt"
	"math"
	"math/big"
)

// IntegerPlane is an exact half-plane Σ Coeffs[i]·xᵢ + C > 0.
type IntegerPlane struct {
	Coeffs []*big.Int
	C      *big.Int
}

// Accepts evaluates the half-plane on an exact point.
func (p IntegerPlane) Accepts(x []*big.Rat) bool {
	sum := new(big.Rat).SetInt(p.C)
	tmp := new(big.Rat)
	for i, c := range p.Coeffs {
		sum.Add(sum, tmp.Mul(new(big.Rat).SetInt(c), x[i]))
	}
	return sum.Sign() > 0
}

// IntegerizePlane converts float SVM weights (W, B) into candidate integer
// half-planes with coefficient magnitudes bounded by maxCoeff. For each
// scale k = 1..maxCoeff it normalizes by max |W|, multiplies by k, and
// rounds to the nearest integers, emitting each distinct rounding once.
//
// Bounding the coefficients by a single scale (instead of per-weight
// rationalization) matters downstream: Cooper's quantifier elimination pays
// for the LCM of coefficient magnitudes, so a plane like (16, -144, 720)
// — easily produced by clearing denominators of independently rationalized
// weights — would make verification and counter-example queries explode.
// The caller picks the candidate that best classifies its training samples.
func IntegerizePlane(w []float64, b float64, maxCoeff int64) []IntegerPlane {
	norm := 0.0
	for _, x := range w {
		if a := math.Abs(x); a > norm {
			norm = a
		}
	}
	if norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
		return nil
	}
	var out []IntegerPlane
	seen := map[string]bool{}
	for k := int64(1); k <= maxCoeff; k++ {
		coeffs := make([]*big.Int, len(w))
		key := ""
		allZero := true
		for i, x := range w {
			v := int64(math.Round(x / norm * float64(k)))
			coeffs[i] = big.NewInt(v)
			if v != 0 {
				allZero = false
			}
			key += coeffs[i].String() + ","
		}
		if allZero {
			continue
		}
		// The rounded constant decides which boundary points the plane
		// accepts, and an off-by-one there is the difference between a
		// valid and an invalid predicate; emit the neighbors too and let
		// the caller's exact scoring pick.
		c := int64(math.Round(b / norm * float64(k)))
		for _, cc := range []int64{c, c - 1, c + 1} {
			kk := key + fmt.Sprint(cc)
			if seen[kk] {
				continue
			}
			seen[kk] = true
			out = append(out, IntegerPlane{Coeffs: coeffs, C: big.NewInt(cc)})
		}
	}
	return out
}
