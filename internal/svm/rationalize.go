package svm

import (
	"math"
	"math/big"
)

// Rationalize returns the best rational approximation of f with denominator
// at most maxDen, computed with the Stern–Brocot / continued-fraction
// method. Sia needs small exact coefficients: the SMT layer reasons over
// exact rationals, and Cooper's elimination cost grows with coefficient
// LCMs, so a float weight like 0.49999999 must become 1/2, not
// 49999999/100000000.
func Rationalize(f float64, maxDen int64) *big.Rat {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return new(big.Rat)
	}
	neg := f < 0
	if neg {
		f = -f
	}
	// Continued-fraction expansion with convergents p/q.
	var (
		p0, q0 = int64(0), int64(1)
		p1, q1 = int64(1), int64(0)
		x      = f
	)
	for i := 0; i < 64; i++ {
		a := int64(math.Floor(x))
		p2 := a*p1 + p0
		q2 := a*q1 + q0
		if q2 > maxDen || p2 < 0 || q2 < 0 { // overflow or bound hit
			// Try the best semiconvergent that still fits.
			if q1 > 0 {
				k := (maxDen - q0) / q1
				if k > 0 {
					sp, sq := k*p1+p0, k*q1+q0
					if better(f, sp, sq, p1, q1) {
						p1, q1 = sp, sq
					}
				}
			}
			break
		}
		p0, q0, p1, q1 = p1, q1, p2, q2
		frac := x - math.Floor(x)
		if frac < 1e-12 {
			break
		}
		x = 1 / frac
	}
	r := big.NewRat(p1, q1)
	if neg {
		r.Neg(r)
	}
	return r
}

// better reports whether p1/q1 approximates f at least as well as p2/q2.
func better(f float64, p1, q1, p2, q2 int64) bool {
	return math.Abs(f-float64(p1)/float64(q1)) <= math.Abs(f-float64(p2)/float64(q2))
}

// IntegerHyperplane converts a trained hyperplane (W, B) into exact integer
// coefficients defining the same (approximate) half-plane
//
//	Σ coeffs[i]·xᵢ + c > 0.
//
// Weights are first normalized by the largest |W| entry (so relative
// precision is uniform), rationalized with denominators at most maxDen, and
// scaled by the LCM of denominators. The second return value is the
// constant. Returns ok=false if every weight is zero.
func IntegerHyperplane(w []float64, b float64, maxDen int64) (coeffs []*big.Int, c *big.Int, ok bool) {
	norm := 0.0
	for _, x := range w {
		if a := math.Abs(x); a > norm {
			norm = a
		}
	}
	if norm == 0 {
		return nil, nil, false
	}
	rats := make([]*big.Rat, len(w)+1)
	for i, x := range w {
		rats[i] = Rationalize(x/norm, maxDen)
	}
	rats[len(w)] = Rationalize(b/norm, maxDen)

	lcm := big.NewInt(1)
	for _, r := range rats {
		d := r.Denom()
		g := new(big.Int).GCD(nil, nil, lcm, d)
		lcm.Div(lcm, g).Mul(lcm, d)
	}
	coeffs = make([]*big.Int, len(w))
	allZero := true
	for i := range w {
		v := new(big.Rat).Mul(rats[i], new(big.Rat).SetInt(lcm))
		coeffs[i] = new(big.Int).Set(v.Num())
		if coeffs[i].Sign() != 0 {
			allZero = false
		}
	}
	if allZero {
		return nil, nil, false
	}
	cv := new(big.Rat).Mul(rats[len(w)], new(big.Rat).SetInt(lcm))
	return coeffs, new(big.Int).Set(cv.Num()), true
}
