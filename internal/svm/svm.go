// Package svm implements the linear support vector machine Sia uses to
// learn candidate predicates (the paper uses LIBSVM with a linear kernel;
// this is a from-scratch, stdlib-only replacement).
//
// The trainer solves the L2-regularized L1-loss (hinge) SVM
//
//	min_w  ½‖w‖² + C·Σᵢ max(0, 1 − yᵢ·w·xᵢ)
//
// by dual coordinate descent (the LIBLINEAR algorithm), which is
// deterministic, dependency-free, and fast for the tiny training sets Sia
// produces (tens to hundreds of samples). The bias is handled with the
// standard augmented-feature trick.
//
// Because the model is a linear function of the input columns, the learned
// classifier maps directly to a linear SQL predicate w·x + b > 0 and to a
// linear-arithmetic SMT formula, which keeps Sia's verification problem
// decidable (§5.4 of the paper).
package svm

import (
	"errors"
	"fmt"
	"math"
)

// Example is one training sample: a feature vector and a label (+1 or -1).
type Example struct {
	X []float64
	Y float64
}

// Options configures training.
type Options struct {
	// C is the penalty parameter. 0 means the default (10).
	C float64
	// Tol is the stopping tolerance on the projected gradient. 0 means
	// the default (1e-8).
	Tol float64
	// MaxIter bounds the outer coordinate-descent sweeps. 0 means the
	// default (2000).
	MaxIter int
}

func (o Options) c() float64 {
	if o.C > 0 {
		return o.C
	}
	return 10
}

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-8
}

func (o Options) maxIter() int {
	if o.MaxIter > 0 {
		return o.MaxIter
	}
	return 2000
}

// Model is a trained linear classifier: Score(x) = W·x + B, classifying x
// as positive when the score is strictly positive.
type Model struct {
	W []float64
	B float64
}

// Score returns W·x + B.
func (m Model) Score(x []float64) float64 {
	s := m.B
	for i, w := range m.W {
		s += w * x[i]
	}
	return s
}

// Classify reports whether x falls on the positive side of the hyperplane.
func (m Model) Classify(x []float64) bool { return m.Score(x) > 0 }

// ErrNoData is returned when the training set is empty or degenerate.
var ErrNoData = errors.New("svm: empty training set")

// Train fits a linear SVM with dual coordinate descent. Features are
// internally scaled to unit range (per dimension) for conditioning; the
// returned weights are unscaled back to the original feature space.
// Training is deterministic: the coordinate order is fixed, so identical
// inputs yield identical models.
func Train(examples []Example, opt Options) (Model, error) {
	if len(examples) == 0 {
		return Model{}, ErrNoData
	}
	dim := len(examples[0].X)
	for _, e := range examples {
		if len(e.X) != dim {
			return Model{}, fmt.Errorf("svm: inconsistent feature dimension %d != %d", len(e.X), dim)
		}
		if e.Y != 1 && e.Y != -1 {
			return Model{}, fmt.Errorf("svm: label must be +1 or -1, got %v", e.Y)
		}
	}

	// Per-feature scaling: divide each feature by its max |value|.
	scale := make([]float64, dim)
	for j := 0; j < dim; j++ {
		m := 0.0
		for _, e := range examples {
			if a := math.Abs(e.X[j]); a > m {
				m = a
			}
		}
		if m == 0 {
			m = 1
		}
		scale[j] = m
	}

	// Augmented representation: x' = (x/scale, 1); w' has dim+1 entries,
	// the last being the bias.
	n := len(examples)
	aug := dim + 1
	xs := make([][]float64, n)
	qii := make([]float64, n)
	for i, e := range examples {
		v := make([]float64, aug)
		for j := 0; j < dim; j++ {
			v[j] = e.X[j] / scale[j]
		}
		v[dim] = 1
		xs[i] = v
		for _, f := range v {
			qii[i] += f * f
		}
	}

	c := opt.c()
	alpha := make([]float64, n)
	w := make([]float64, aug)
	tol := opt.tol()
	for iter := 0; iter < opt.maxIter(); iter++ {
		maxPG := 0.0
		for i := 0; i < n; i++ {
			y := examples[i].Y
			g := y*dot(w, xs[i]) - 1
			// Projected gradient for the box constraint 0 <= alpha <= C.
			pg := g
			if alpha[i] <= 0 && g > 0 {
				pg = 0
			} else if alpha[i] >= c && g < 0 {
				pg = 0
			}
			if a := math.Abs(pg); a > maxPG {
				maxPG = a
			}
			if pg == 0 || qii[i] == 0 {
				continue
			}
			old := alpha[i]
			alpha[i] = math.Min(math.Max(old-g/qii[i], 0), c)
			d := (alpha[i] - old) * y
			for j, f := range xs[i] {
				w[j] += d * f
			}
		}
		if maxPG < tol {
			break
		}
	}

	m := Model{W: make([]float64, dim), B: w[dim]}
	for j := 0; j < dim; j++ {
		m.W[j] = w[j] / scale[j]
	}
	return m, nil
}

// Misclassified returns the subset of examples the model labels wrongly.
// A positive example scoring exactly zero counts as misclassified, matching
// the strict acceptance Sia requires for TRUE samples.
func (m Model) Misclassified(examples []Example) []Example {
	var out []Example
	for _, e := range examples {
		score := m.Score(e.X)
		if e.Y > 0 && score <= 0 {
			out = append(out, e)
		} else if e.Y < 0 && score > 0 {
			out = append(out, e)
		}
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
