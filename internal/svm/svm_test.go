package svm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrainSeparable2D(t *testing.T) {
	// Points above the line y = x are positive.
	var ex []Example
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		x := r.Float64()*20 - 10
		y := r.Float64()*20 - 10
		if math.Abs(y-x) < 0.5 {
			continue // margin
		}
		lbl := -1.0
		if y > x {
			lbl = 1.0
		}
		ex = append(ex, Example{X: []float64{x, y}, Y: lbl})
	}
	m, err := Train(ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ex {
		if (m.Score(e.X) > 0) != (e.Y > 0) {
			t.Fatalf("misclassified %v (score %f)", e, m.Score(e.X))
		}
	}
	// The hyperplane should be close to y - x = 0: w ~ (-1, 1)*k, b ~ 0.
	if m.W[1] <= 0 || m.W[0] >= 0 {
		t.Fatalf("unexpected weight signs: %+v", m)
	}
	ratio := -m.W[0] / m.W[1]
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("hyperplane slope off: w=%v ratio=%f", m.W, ratio)
	}
}

func TestTrainPaperFirstIteration(t *testing.T) {
	// §3.2 of the paper: initial TRUE samples (-5,1) (2,-6) (-27,-44)
	// (-28,-46) (-7,-1); FALSE samples (-40,-2) (-56,-2) (-53,-2) (-48,-2).
	// These are linearly separable; any correct separator must classify
	// all TRUE samples positive.
	ex := []Example{
		{X: []float64{-5, 1}, Y: 1},
		{X: []float64{2, -6}, Y: 1},
		{X: []float64{-27, -44}, Y: 1},
		{X: []float64{-28, -46}, Y: 1},
		{X: []float64{-7, -1}, Y: 1},
		{X: []float64{-40, -2}, Y: -1},
		{X: []float64{-56, -2}, Y: -1},
		{X: []float64{-53, -2}, Y: -1},
		{X: []float64{-48, -2}, Y: -1},
	}
	m, err := Train(ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mc := m.Misclassified(ex); len(mc) != 0 {
		t.Fatalf("separable set misclassified: %v (model %+v)", mc, m)
	}
}

func TestTrainDeterministic(t *testing.T) {
	ex := []Example{
		{X: []float64{1, 2}, Y: 1},
		{X: []float64{-1, -2}, Y: -1},
		{X: []float64{3, 1}, Y: 1},
		{X: []float64{-2, 0}, Y: -1},
	}
	a, err := Train(ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatalf("training is not deterministic: %v vs %v", a.W, b.W)
		}
	}
	if a.B != b.B {
		t.Fatalf("bias differs: %v vs %v", a.B, b.B)
	}
}

func TestTrainNonSeparable(t *testing.T) {
	// XOR-ish pattern cannot be linearly separated; Train must still
	// return a finite model without error.
	ex := []Example{
		{X: []float64{0, 0}, Y: 1},
		{X: []float64{1, 1}, Y: 1},
		{X: []float64{0, 1}, Y: -1},
		{X: []float64{1, 0}, Y: -1},
	}
	m, err := Train(ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range append(append([]float64{}, m.W...), m.B) {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("non-finite weight: %+v", m)
		}
	}
	if mc := m.Misclassified(ex); len(mc) == 0 {
		t.Fatal("XOR cannot be linearly separated; someone must be misclassified")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Fatal("empty set should error")
	}
	if _, err := Train([]Example{{X: []float64{1}, Y: 0.5}}, Options{}); err == nil {
		t.Fatal("bad label should error")
	}
	if _, err := Train([]Example{{X: []float64{1}, Y: 1}, {X: []float64{1, 2}, Y: -1}}, Options{}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestTrainLargeScaleFeatures(t *testing.T) {
	// Date-like features in the thousands must not break conditioning.
	var ex []Example
	for d := int64(0); d < 40; d++ {
		lbl := -1.0
		if d > 20 {
			lbl = 1.0
		}
		ex = append(ex, Example{X: []float64{float64(d * 100)}, Y: lbl})
	}
	m, err := Train(ex, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mc := m.Misclassified(ex); len(mc) != 0 {
		t.Fatalf("threshold split misclassified %d samples", len(mc))
	}
}

func TestRationalizeExact(t *testing.T) {
	cases := []struct {
		f    float64
		den  int64
		want string
	}{
		{0.5, 100, "1/2"},
		{-0.5, 100, "-1/2"},
		{0.3333333333333333, 100, "1/3"},
		{2.0, 100, "2"},
		{0, 100, "0"},
		{0.49999999, 100, "1/2"},
		{1.25, 100, "5/4"},
		{-7.0 / 3.0, 100, "-7/3"},
	}
	for _, c := range cases {
		got := Rationalize(c.f, c.den)
		if got.RatString() != c.want {
			t.Errorf("Rationalize(%v, %d) = %s, want %s", c.f, c.den, got.RatString(), c.want)
		}
	}
}

func TestRationalizeBounds(t *testing.T) {
	// Property: the result's denominator never exceeds the bound and the
	// approximation error is at most 1/maxDen (guaranteed for best
	// rational approximations it is at most 1/(den·maxDen)).
	f := func(num int16, den uint8) bool {
		d := int64(den%50) + 1
		x := float64(num) / 97.0
		r := Rationalize(x, d)
		if r.Denom().Int64() > d {
			return false
		}
		fr, _ := r.Float64()
		return math.Abs(fr-x) <= 1.0/float64(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRationalizeNonFinite(t *testing.T) {
	if Rationalize(math.NaN(), 10).Sign() != 0 {
		t.Fatal("NaN should rationalize to 0")
	}
	if Rationalize(math.Inf(1), 10).Sign() != 0 {
		t.Fatal("Inf should rationalize to 0")
	}
}

func TestIntegerHyperplane(t *testing.T) {
	w := []float64{2.0, -1.0}
	b := 0.5
	coeffs, c, ok := IntegerHyperplane(w, b, 64)
	if !ok {
		t.Fatal("expected ok")
	}
	// Normalized by max |w| = 2: (1, -1/2, 1/4) -> LCM 4 -> (4, -2, 1).
	if coeffs[0].Int64() != 4 || coeffs[1].Int64() != -2 || c.Int64() != 1 {
		t.Fatalf("got %v + %v", coeffs, c)
	}
	// The integer hyperplane must define the same half-plane.
	for i := 0; i < 50; i++ {
		x := []float64{float64(i%10 - 5), float64(i%7 - 3)}
		orig := w[0]*x[0] + w[1]*x[1] + b
		scaled := float64(coeffs[0].Int64())*x[0] + float64(coeffs[1].Int64())*x[1] + float64(c.Int64())
		if (orig > 0) != (scaled > 0) && math.Abs(orig) > 1e-9 {
			t.Fatalf("half-plane changed at %v: %f vs %f", x, orig, scaled)
		}
	}
	if _, _, ok := IntegerHyperplane([]float64{0, 0}, 1, 64); ok {
		t.Fatal("all-zero weights should not be ok")
	}
}

func TestIntegerHyperplaneSmallCoeffs(t *testing.T) {
	// Near-rational weights should produce small integers, keeping the
	// downstream Cooper elimination cheap.
	coeffs, c, ok := IntegerHyperplane([]float64{0.9999999, -2.0000001}, 31.999999, 64)
	if !ok {
		t.Fatal("expected ok")
	}
	if coeffs[0].Int64() != 1 || coeffs[1].Int64() != -2 || c.Int64() != 32 {
		t.Fatalf("expected (1, -2, 32), got (%v, %v)", coeffs, c)
	}
}
