package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"sia/internal/predicate"
	"sia/internal/smt"
	"sia/internal/svm"
)

// errNotSeparable is returned when Learn cannot make progress: some TRUE
// sample coincides with (or is surrounded by) FALSE samples so that no
// disjunction of hyperplanes classifies every TRUE sample correctly. This
// is the paper's §6.7 limitation; the synthesis loop gives up cleanly.
var errNotSeparable = errors.New("sia: training samples are not linearly separable")

// learner runs the paper's Alg. 2: train a linear SVM; if some TRUE samples
// are misclassified, train another SVM on just those TRUE samples plus all
// FALSE samples; repeat until every TRUE sample is classified correctly;
// return the disjunction of all models.
type learner struct {
	space  sampleSpace
	schema *predicate.Schema
	opts   Options
	// sampler gives access to the projected feasible region for
	// orientation-boundedness checks; may be nil in tests.
	sampler *sampler

	// invalidCount tracks Verify failures per plane orientation. When an
	// orientation keeps producing invalid candidates, the feasible region
	// may simply be unbounded in that direction — then no constant can
	// ever make it valid, and CEGIS would chase counter-examples forever
	// (one notch per iteration). After a few strikes the orientation's
	// boundedness is decided with the solver and unbounded ones are
	// blacklisted.
	invalidCount map[string]int
	blacklisted  map[string]bool
}

// orientationKey canonicalizes a plane's direction: coefficients divided by
// their GCD, sign preserved (a lower bound and an upper bound are different
// orientations).
func orientationKey(p svm.IntegerPlane) string {
	g := new(big.Int)
	for _, c := range p.Coeffs {
		a := new(big.Int).Abs(c)
		if a.Sign() == 0 {
			continue
		}
		if g.Sign() == 0 {
			g.Set(a)
		} else {
			g.GCD(nil, nil, g, a)
		}
	}
	if g.Sign() == 0 {
		g.SetInt64(1)
	}
	key := ""
	for _, c := range p.Coeffs {
		key += new(big.Int).Quo(c, g).String() + ","
	}
	return key
}

// noteInvalid records a Verify failure for every plane of the candidate,
// deciding boundedness (and blacklisting) after three strikes.
func (l *learner) noteInvalid(ctx context.Context, lr *learnResult) {
	if l.invalidCount == nil {
		l.invalidCount = map[string]int{}
		l.blacklisted = map[string]bool{}
	}
	for _, p := range lr.planes {
		key := orientationKey(p)
		l.invalidCount[key]++
		if l.invalidCount[key] == 3 && l.sampler != nil && !l.blacklisted[key] {
			if unbounded, err := l.orientationUnbounded(ctx, p); err == nil && unbounded {
				l.blacklisted[key] = true
			}
		}
	}
}

// orientationUnbounded checks whether w·x can be driven below any bound on
// the feasible (projected) region — if so, no plane w·x + c > 0 is ever a
// valid reduction.
func (l *learner) orientationUnbounded(ctx context.Context, p svm.IntegerPlane) (bool, error) {
	dir := smt.NewTerm(nil)
	for i, c := range p.Coeffs {
		if c.Sign() != 0 {
			dir.AddVar(l.space.Vars[i], new(big.Rat).SetInt(c))
		}
	}
	low := smt.LT(dir, smt.NewTerm(new(big.Rat).SetInt64(-1_000_000_000)))
	return l.opts.Solver.SatisfiableCtx(ctx, smt.NewAnd(l.sampler.satBase, low))
}

// learnResult is the candidate predicate as a disjunction of exact integer
// half-planes.
type learnResult struct {
	planes []svm.IntegerPlane
}

// Learn implements Alg. 2. It guarantees (or fails trying) that every TRUE
// sample satisfies the returned disjunction of half-planes.
//
// Two departures from a naive SVM call, both needed for the loop to work:
//
//   - C escalation: Sia requires every TRUE sample classified correctly,
//     but with a small C the SVM may prefer sacrificing a few TRUE samples
//     to paying for a tight margin, which would look like
//     non-separability. C is escalated toward a hard margin until a plane
//     makes progress.
//   - Bounded integerization: float weights are snapped to integer
//     coefficients with magnitude ≤ MaxDenominator by a single scale, and
//     the best-classifying candidate is chosen with exact arithmetic.
//     Verification and counter-example queries pay Cooper-elimination cost
//     proportional to coefficient LCMs, so small coefficients keep the
//     solver fast.
func (l *learner) Learn(ts, fs []Sample) (*learnResult, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("sia: no TRUE samples to learn from")
	}
	var falseEx []svm.Example
	for _, f := range fs {
		falseEx = append(falseEx, svm.Example{X: f.Features(), Y: -1})
	}
	// Bound on acceptable plane constants: a plane whose offset dwarfs
	// every sample's reach (|Σcᵢxᵢ| ≤ maxAbs·dim·maxCoeff) classifies all
	// samples identically — it is degenerate noise from a near-zero SVM
	// weight vector, and its huge constant would poison later solver
	// queries. Such candidates are discarded.
	maxAbs := new(big.Rat).SetInt64(1)
	for _, s := range append(append([]Sample(nil), ts...), fs...) {
		for _, v := range s.Vals {
			if a := new(big.Rat).Abs(v); a.Cmp(maxAbs) > 0 {
				maxAbs = a
			}
		}
	}
	cBound := new(big.Rat).Mul(maxAbs, new(big.Rat).SetInt64(l.opts.MaxDenominator*int64(len(l.space.Cols)+2)))
	cBound.Add(cBound, new(big.Rat).SetInt64(64))

	res := &learnResult{}
	pending := ts
	axis := axisPlanes(ts)
	// Each round must classify at least one TRUE sample correctly, so the
	// number of rounds is bounded by len(ts); the cap is a safety net.
	for round := 0; round < len(ts)+1; round++ {
		if len(pending) == 0 {
			return res, nil
		}
		batch := falseEx[:len(falseEx):len(falseEx)]
		for _, t := range pending {
			batch = append(batch, svm.Example{X: t.Features(), Y: 1})
		}
		var best *svm.IntegerPlane
		bestScore := -1 << 30
		var bestStill []Sample
		consider := func(plane svm.IntegerPlane) {
			if new(big.Rat).Abs(new(big.Rat).SetInt(plane.C)).Cmp(cBound) > 0 {
				return
			}
			if l.blacklisted[orientationKey(plane)] {
				return
			}
			score, still := l.scorePlane(plane, pending, fs)
			if len(still) == len(pending) {
				// A plane that rescues no pending TRUE sample cannot
				// advance Alg. 2, however well it treats the FALSE side;
				// considering it would stall the round.
				return
			}
			if score > bestScore {
				best, bestScore, bestStill = &plane, score, still
			}
		}
		// Axis-aligned bound planes (the tightest per-column bounds that
		// cover every TRUE sample) complement the SVM's single
		// orientation: an interval-shaped TRUE region needs cuts on both
		// sides, but a soft-margin SVM proposes only the orientation with
		// the larger FALSE mass. The SVM stays the primary learner; these
		// are extra candidates scored by the same exact rule.
		for _, p := range axis {
			consider(p)
		}
		for _, c := range []float64{10, 1e3, 1e6, 1e9} {
			model, err := svm.Train(batch, svm.Options{C: c})
			if err != nil {
				return nil, fmt.Errorf("sia: training SVM: %w", err)
			}
			for _, plane := range svm.IntegerizePlane(model.W, model.B, l.opts.MaxDenominator) {
				consider(plane)
			}
			if best != nil && len(bestStill) == 0 {
				break
			}
		}
		if best == nil || len(bestStill) == len(pending) {
			// No progress at any C or scale: the remaining TRUE samples
			// cannot be separated from the FALSE samples by an additional
			// hyperplane (§6.7's limitation).
			return nil, errNotSeparable
		}
		res.planes = append(res.planes, *best)
		pending = bestStill
	}
	return nil, errNotSeparable
}

// axisPlanes returns the tightest bound half-planes that accept every TRUE
// sample along each elementary direction: per column xᵢ (xᵢ > minᵢ - 1 and
// xᵢ < maxᵢ + 1) and per column pair the difference xᵢ - xⱼ. Differences
// matter because date predicates overwhelmingly constrain gaps between
// dates (every predicate in the paper's benchmark does); an SVM trained on
// clustered counter-examples often misses that orientation. Bounds are
// exact for integral columns and a unit-slack cover for reals; verification
// treats these candidates like any other.
func axisPlanes(ts []Sample) []svm.IntegerPlane {
	if len(ts) == 0 {
		return nil
	}
	dim := len(ts[0].Vals)
	var out []svm.IntegerPlane
	// value(i, j) computes the projection of a sample onto the direction:
	// column i alone (j < 0) or the difference xᵢ - xⱼ.
	value := func(s Sample, i, j int) *big.Rat {
		if j < 0 {
			return s.Vals[i]
		}
		return new(big.Rat).Sub(s.Vals[i], s.Vals[j])
	}
	direction := func(i, j int) func(sign int64, c *big.Int) svm.IntegerPlane {
		return func(sign int64, c *big.Int) svm.IntegerPlane {
			coeffs := make([]*big.Int, dim)
			for k := range coeffs {
				coeffs[k] = big.NewInt(0)
			}
			coeffs[i] = big.NewInt(sign)
			if j >= 0 {
				coeffs[j] = big.NewInt(-sign)
			}
			return svm.IntegerPlane{Coeffs: coeffs, C: c}
		}
	}
	addBounds := func(i, j int) {
		lo := new(big.Rat).Set(value(ts[0], i, j))
		hi := new(big.Rat).Set(lo)
		for _, t := range ts[1:] {
			v := value(t, i, j)
			if v.Cmp(lo) < 0 {
				lo.Set(v)
			}
			if v.Cmp(hi) > 0 {
				hi.Set(v)
			}
		}
		mk := direction(i, j)
		// dir > lo - 1: coefficient +1 on the direction, C = 1 - floor(lo).
		loC := new(big.Int).Neg(floorRat(lo))
		loC.Add(loC, big.NewInt(1))
		out = append(out, mk(1, loC))
		// dir < hi + 1: coefficient -1, C = ceil(hi) + 1.
		hiC := new(big.Int).Add(ceilRat(hi), big.NewInt(1))
		out = append(out, mk(-1, hiC))
	}
	for i := 0; i < dim; i++ {
		addBounds(i, -1)
		for j := i + 1; j < dim; j++ {
			addBounds(i, j)
		}
	}
	return out
}

func floorRat(r *big.Rat) *big.Int {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return q
}

func ceilRat(r *big.Rat) *big.Int {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() > 0 && !r.IsInt() {
		q.Add(q, big.NewInt(1))
	}
	return q
}

// scorePlane evaluates a candidate half-plane exactly. The score counts
// correctly classified samples, weighting TRUE coverage first (the loop's
// progress depends on it); still collects the TRUE samples the plane
// rejects.
func (l *learner) scorePlane(p svm.IntegerPlane, pending, fs []Sample) (score int, still []Sample) {
	for _, t := range pending {
		if p.Accepts(t.Vals) {
			score += 2
		} else {
			still = append(still, t)
		}
	}
	for _, f := range fs {
		if !p.Accepts(f.Vals) {
			score++
		}
	}
	return score, still
}

// predicate converts the learned disjunction into a predicate AST over the
// original columns.
func (r *learnResult) predicate(space sampleSpace, schema *predicate.Schema) predicate.Predicate {
	var disjuncts []predicate.Predicate
	for _, plane := range r.planes {
		lin := predicate.NewLinear()
		for i, c := range plane.Coeffs {
			if c.Sign() != 0 {
				lin.AddTerm(space.Cols[i], new(big.Rat).SetInt(c))
			}
		}
		lin.Const = new(big.Rat).SetInt(plane.C)
		expr, _ := predicate.LinearToExpr(lin, schema)
		disjuncts = append(disjuncts, predicate.Cmp(predicate.CmpGT, expr, predicate.IntConst(0)))
	}
	return predicate.NewOr(disjuncts...)
}
