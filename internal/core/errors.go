package core

import (
	"errors"
	"fmt"

	"sia/internal/smt"
)

// Sentinel errors of the synthesis API. Every error returned by the public
// surface either is nil or matches (errors.Is) one of these, ErrUnsupported
// (see encode.go), or wraps a lower-layer failure that is a genuine bug.
var (
	// ErrTimeout is returned when the caller's context is cancelled or its
	// deadline passes during synthesis. The concrete error also wraps the
	// context's own error, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) work too. Note the internal
	// wall-clock budget (Options.Timeout) does NOT produce this error: its
	// expiry returns the best valid predicate found so far with
	// Result.GaveUp == ReasonTimeout and a nil error.
	ErrTimeout = errors.New("sia: synthesis cancelled")

	// ErrBudget is returned when the SMT solver's per-call budget is
	// exhausted in a phase that cannot recover by giving up gracefully
	// (e.g. VerifyReduction). It wraps smt.ErrBudget, so callers holding
	// only the internal solver error still match.
	ErrBudget = fmt.Errorf("sia: solver budget exhausted: %w", smt.ErrBudget)

	// ErrInvalidOptions is returned for a nonsensical request: negative
	// Options fields, an empty target column set, or target columns that do
	// not occur in the predicate.
	ErrInvalidOptions = errors.New("sia: invalid options")
)

// publicErr converts internal solver errors into the public sentinels:
// context cancellation becomes ErrTimeout, budget exhaustion becomes
// ErrBudget. Other errors pass through unchanged.
func publicErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, smt.ErrInterrupted):
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	case errors.Is(err, ErrBudget):
		return err
	case errors.Is(err, smt.ErrBudget):
		return fmt.Errorf("%w: %s", ErrBudget, err)
	default:
		return err
	}
}
