package core

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"

	"sia/internal/predicate"
	"sia/internal/smt"
)

// Sample is one training tuple: concrete values for the target column set,
// in the order of sampleSpace.Cols.
type Sample struct {
	Vals []*big.Rat
}

// Key returns a canonical string identity for deduplication.
func (s Sample) Key() string {
	key := ""
	for _, v := range s.Vals {
		key += v.RatString() + "|"
	}
	return key
}

// Features converts the sample to an SVM feature vector.
func (s Sample) Features() []float64 {
	out := make([]float64, len(s.Vals))
	for i, v := range s.Vals {
		out[i], _ = v.Float64()
	}
	return out
}

// sampleSpace fixes the target column set (sorted) and the SMT variables
// standing for those columns.
type sampleSpace struct {
	Cols []string
	Vars []smt.Var
}

func newSampleSpace(e *encoder, cols []string) sampleSpace {
	sorted := append([]string(nil), cols...)
	sort.Strings(sorted)
	vars := make([]smt.Var, len(sorted))
	for i, c := range sorted {
		vars[i] = e.colVar(c)
	}
	return sampleSpace{Cols: sorted, Vars: vars}
}

// blockSample returns the weak (tuple-level) NotOld clause for one sample:
// ¬(col₁ = v₁ ∧ … ∧ colₖ = vₖ), which forces the solver to produce a model
// differing from the sample in at least one column.
func (sp sampleSpace) blockSample(s Sample) smt.Formula {
	eqs := make([]smt.Formula, len(sp.Vars))
	for i, v := range sp.Vars {
		eqs[i] = smt.EQ(smt.VarTerm(v), smt.NewTerm(s.Vals[i]))
	}
	return smt.NewNot(smt.NewAnd(eqs...))
}

// blockValues returns the paper's strong NotOld clause (§5.3: "each term …
// sets the variables representing columns in Cols' not to be equal to any
// of the values in already existing samples"): every column must take a
// value unseen in that column. Strong blocking spreads samples out, which
// is what makes few samples informative for the SVM; it can however become
// unsatisfiable before the sample space is exhausted, so enumeration falls
// back to tuple-level blocking on UNSAT.
func (sp sampleSpace) blockValues(s Sample) smt.Formula {
	nes := make([]smt.Formula, len(sp.Vars))
	for i, v := range sp.Vars {
		nes[i] = smt.NE(smt.VarTerm(v), smt.NewTerm(s.Vals[i]))
	}
	return smt.NewAnd(nes...)
}

// notOld conjoins blocking clauses for every known sample; strong selects
// per-column value blocking vs tuple blocking.
func (sp sampleSpace) notOld(samples []Sample, strong bool) smt.Formula {
	fs := make([]smt.Formula, len(samples))
	for i, s := range samples {
		if strong {
			fs[i] = sp.blockValues(s)
		} else {
			fs[i] = sp.blockSample(s)
		}
	}
	return smt.NewAnd(fs...)
}

// nonZeroHeuristic is the paper's sampling heuristic: generated values are
// pushed away from zero, which keeps the SVM's training samples informative.
func (sp sampleSpace) nonZeroHeuristic() smt.Formula {
	fs := make([]smt.Formula, len(sp.Vars))
	for i, v := range sp.Vars {
		fs[i] = smt.NE(smt.VarTerm(v), smt.ConstTerm(0))
	}
	return smt.NewAnd(fs...)
}

// extractSample reads the sample-space values out of a solver model.
func (sp sampleSpace) extractSample(m smt.Model) Sample {
	vals := make([]*big.Rat, len(sp.Vars))
	for i, v := range sp.Vars {
		if r, ok := m[v]; ok {
			vals[i] = new(big.Rat).Set(r)
		} else {
			vals[i] = new(big.Rat)
		}
	}
	return Sample{Vals: vals}
}

// sampler generates satisfaction and unsatisfaction tuples for a predicate
// and a target column set using the solver (§5.3).
type sampler struct {
	solver *smt.Solver
	space  sampleSpace
	// satBase is ∃(other columns). p, quantifier-eliminated once; its
	// models over Cols' are exactly the feasible restrictions (Def. 4),
	// i.e. the TRUE samples. Projecting once keeps every subsequent model
	// query over only |Cols'| variables.
	satBase smt.Formula
	// unsatBase is ∀(other columns). ¬p, quantifier-eliminated once; its
	// models are FALSE samples (unsatisfaction tuples).
	unsatBase smt.Formula
	// heuristic is conjoined when enabled and dropped on infeasibility.
	heuristic smt.Formula
}

// newSampler builds a sampler for predicate formula pf whose free variables
// are p's columns; cols is the target subset.
func newSampler(ctx context.Context, solver *smt.Solver, e *encoder, pf smt.Formula, cols []string, opts Options) (*sampler, error) {
	space := newSampleSpace(e, cols)
	inCols := map[smt.Var]bool{}
	for _, v := range space.Vars {
		inCols[v] = true
	}
	// ∀ col ∉ Cols'. ¬p — the unsatisfaction-tuple condition (Def. 4) —
	// and its complement ∃ col ∉ Cols'. p, the feasible restrictions.
	unsat := smt.Formula(smt.NewNot(pf))
	sat := pf
	for _, v := range smt.FreeVars(pf) {
		if !inCols[v] {
			unsat = &smt.ForAll{V: v, F: unsat}
			sat = &smt.Exists{V: v, F: sat}
		}
	}
	unsatQF, err := solver.QECtx(ctx, unsat)
	if err != nil {
		return nil, fmt.Errorf("sia: eliminating quantifiers for unsatisfaction tuples: %w", err)
	}
	satQF, err := solver.QECtx(ctx, sat)
	if err != nil {
		return nil, fmt.Errorf("sia: projecting the predicate onto %v: %w", cols, err)
	}
	s := &sampler{
		solver:    solver,
		space:     space,
		satBase:   smt.Simplify(satQF),
		unsatBase: smt.Simplify(unsatQF),
		heuristic: smt.Bool(true),
	}
	if opts.NonZeroSamples {
		s.heuristic = space.nonZeroHeuristic()
	}
	return s, nil
}

// hasUnsatTuple reports whether any unsatisfaction tuple exists at all. If
// none does, the only valid optimal reduction is TRUE and synthesis is
// pointless (the query is not "symbolically relevant", §6.2).
func (s *sampler) hasUnsatTuple(ctx context.Context) (bool, error) {
	return s.solver.SatisfiableCtx(ctx, s.unsatBase)
}

// trueSamples generates up to n new TRUE samples distinct from known. The
// returned exhausted flag is set when every satisfaction tuple has been
// enumerated (§5.3: the satisfying region of Cols' is finite). Initial
// sampling uses the strong per-column NotOld, which spreads samples widely.
func (s *sampler) trueSamples(ctx context.Context, n int, known []Sample) (out []Sample, exhausted bool, err error) {
	return s.enumerate(ctx, s.satBase, n, known, true)
}

// falseSamples generates up to n new FALSE samples (unsatisfaction tuples)
// distinct from known.
func (s *sampler) falseSamples(ctx context.Context, n int, known []Sample) (out []Sample, exhausted bool, err error) {
	return s.enumerate(ctx, s.unsatBase, n, known, true)
}

// counterTrue generates up to n TRUE counter-examples: tuples that satisfy
// p but are rejected by the (invalid) learned predicate (§5.5).
// Counter-examples use weak (tuple-level) blocking: they live near the
// decision boundary, and per-column blocking would exile later samples
// from exactly the region the learner needs to refine.
func (s *sampler) counterTrue(ctx context.Context, learned smt.Formula, n int, known []Sample) ([]Sample, error) {
	out, _, err := s.enumerate(ctx, smt.NewAnd(s.satBase, smt.NewNot(learned)), n, known, false)
	return out, err
}

// counterFalse generates up to n FALSE counter-examples: unsatisfaction
// tuples that the (valid) learned predicate wrongly accepts. An empty
// result with exhausted=true proves the learned predicate optimal
// (Lemma 4).
func (s *sampler) counterFalse(ctx context.Context, learned smt.Formula, n int, known []Sample) (out []Sample, exhausted bool, err error) {
	return s.enumerate(ctx, smt.NewAnd(s.unsatBase, learned), n, known, false)
}

// enumerate produces up to n fresh samples from the models of base.
//
// The fast path enumerates candidate points of the (blocking-free) formula
// by recursive projection, applying the NotOld policy in code: in diversify
// mode, the strong per-column rule of §5.3 (every column takes an unseen
// value — this spreads the initial samples); otherwise tuple-level
// distinctness (counter-examples must stay near the decision boundary).
// Keeping blocking out of the formula keeps every quantifier-elimination
// call small, which is where the bulk of synthesis time goes.
//
// Candidate enumeration visits a complete set of interval/congruence
// representatives but not every point of a dense region, so a shortfall
// does not yet prove exhaustion; the slow path then resumes the classic
// loop — Model(base ∧ NotOld) with tuple-level blocking clauses — whose
// UNSAT answer is a real exhaustion proof (§5.3).
func (s *sampler) enumerate(ctx context.Context, base smt.Formula, n int, known []Sample, diversify bool) (out []Sample, exhausted bool, err error) {
	seenTuples := map[string]bool{}
	seenCols := make([]map[string]bool, len(s.space.Vars))
	for i := range seenCols {
		seenCols[i] = map[string]bool{}
	}
	note := func(sm Sample) {
		seenTuples[sm.Key()] = true
		for i, v := range sm.Vals {
			seenCols[i][v.RatString()] = true
		}
	}
	for _, sm := range known {
		note(sm)
	}

	fresh := func(sm Sample, strong bool) bool {
		if seenTuples[sm.Key()] {
			return false
		}
		if strong {
			for i, v := range sm.Vals {
				if seenCols[i][v.RatString()] {
					return false
				}
			}
		}
		return true
	}

	// Fast path: blocking-free enumeration, two passes in diversify mode
	// (strong per-column rule with the non-zero heuristic first, then
	// tuple-level) and one pass otherwise.
	passes := []bool{false}
	if diversify {
		passes = []bool{true, false}
	}
	for _, strong := range passes {
		if len(out) >= n {
			break
		}
		query := base
		if strong {
			query = smt.NewAnd(base, s.heuristic)
		}
		// Scan more candidates than needed: many will be duplicates of
		// known samples or rejected by the strong rule.
		budget := 4*n + 4*len(known) + 16
		err := s.solver.EnumerateModelsCtx(ctx, query, s.space.Vars, budget, func(m smt.Model) bool {
			sm := s.space.extractSample(m)
			if fresh(sm, strong) {
				note(sm)
				out = append(out, sm)
			}
			return len(out) < n
		})
		if err != nil && !errors.Is(err, smt.ErrBudget) {
			return out, false, err
		}
	}
	if len(out) >= n {
		return out, false, nil
	}

	// Slow path: classic blocked enumeration; its UNSAT proves exhaustion.
	for len(out) < n {
		all := append(append([]Sample(nil), known...), out...)
		query := smt.NewAnd(base, s.space.notOld(all, false))
		m, err := s.solver.ModelCtx(ctx, query)
		if errors.Is(err, smt.ErrUnsat) {
			return out, true, nil
		}
		if err != nil {
			return out, false, err
		}
		sm := s.space.extractSample(m)
		note(sm)
		out = append(out, sm)
	}
	return out, false, nil
}

// samplesToTuple converts a sample to a predicate tuple for evaluation.
func samplesToTuple(space sampleSpace, s Sample, schema *predicate.Schema) predicate.Tuple {
	t := predicate.Tuple{}
	for i, c := range space.Cols {
		typ := predicate.TypeInteger
		if schema != nil {
			if col, ok := schema.Lookup(c); ok {
				typ = col.Type
			}
		}
		t[c] = ratToValue(s.Vals[i], typ)
	}
	return t
}
