package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"sia/internal/predtest"
	"sia/internal/smt"
)

func TestTraceHook(t *testing.T) {
	s := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", s)
	var calls int
	var sawValid bool
	opts := Options{Trace: func(iter int, cand fmt.Stringer, valid bool) {
		calls++
		if cand.String() == "" {
			t.Error("empty candidate in trace")
		}
		if valid {
			sawValid = true
		}
	}}
	res, err := Synthesize(p, []string{"a"}, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicate == nil {
		t.Fatalf("synthesis failed: %+v", res)
	}
	if calls == 0 {
		t.Fatal("trace hook never invoked")
	}
	if calls != res.Iterations {
		t.Fatalf("trace calls %d != iterations %d", calls, res.Iterations)
	}
	if !sawValid {
		t.Fatal("no valid candidate ever traced despite a valid result")
	}
}

func TestSynthesisTimeout(t *testing.T) {
	s := intSchema("a1", "a2", "b1")
	p := predtest.MustParse("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0", s)
	opts := Options{Timeout: time.Nanosecond}
	res, err := Synthesize(p, []string{"a1", "a2"}, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.GaveUp != ReasonTimeout {
		t.Fatalf("expected timeout give-up, got %q (optimal=%v)", res.GaveUp, res.Optimal)
	}
	if res.Optimal {
		t.Fatal("a timed-out run cannot be optimal")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIterations != 41 || o.InitialTrue != 10 || o.InitialFalse != 10 || o.SamplesPerIteration != 5 {
		t.Fatalf("paper defaults wrong: %+v", o)
	}
	if o.Solver == nil || o.Solver.Timeout != o.SolverTimeout {
		t.Fatal("solver timeout not wired")
	}
	// Explicit values survive.
	o2 := Options{MaxIterations: 7, InitialTrue: 3, InitialFalse: 4, SamplesPerIteration: 2}.withDefaults()
	if o2.MaxIterations != 7 || o2.InitialTrue != 3 || o2.InitialFalse != 4 || o2.SamplesPerIteration != 2 {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options invalid: %v", err)
	}
	if err := (Options{MaxIterations: 10, Timeout: time.Second}).Validate(); err != nil {
		t.Fatalf("positive options invalid: %v", err)
	}
	bad := Options{MaxIterations: -1, InitialFalse: -3, SolverTimeout: -time.Second}
	err := bad.Validate()
	if err == nil {
		t.Fatal("negative options accepted")
	}
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("error %v does not match ErrInvalidOptions", err)
	}
	// One error names every offending field.
	for _, field := range []string{"MaxIterations", "InitialFalse", "SolverTimeout"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("error %q does not name %s", err, field)
		}
	}
	// SynthesizeContext rejects them before doing any work.
	s := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", s)
	if _, serr := SynthesizeContext(context.Background(), p, []string{"a"}, s, bad); !errors.Is(serr, ErrInvalidOptions) {
		t.Fatalf("SynthesizeContext error %v does not match ErrInvalidOptions", serr)
	}
}

func TestExplicitSolverTimeoutHonored(t *testing.T) {
	// An explicitly set SolverTimeout overrides the Timeout of a
	// caller-supplied Solver (historically it was silently ignored).
	sv := smt.New()
	sv.Timeout = time.Minute
	o := Options{Solver: sv, SolverTimeout: 3 * time.Second}.withDefaults()
	if o.Solver.Timeout != 3*time.Second {
		t.Fatalf("explicit SolverTimeout ignored: solver timeout = %v", o.Solver.Timeout)
	}
	// Without an explicit SolverTimeout the supplied solver's own budget
	// is preserved.
	sv2 := smt.New()
	sv2.Timeout = time.Minute
	o2 := Options{Solver: sv2}.withDefaults()
	if o2.Solver.Timeout != time.Minute {
		t.Fatalf("supplied solver's timeout clobbered: %v", o2.Solver.Timeout)
	}
	// A supplied solver with no budget inherits the default.
	sv3 := smt.New()
	sv3.Timeout = 0
	o3 := Options{Solver: sv3}.withDefaults()
	if o3.Solver.Timeout != o3.SolverTimeout || o3.Solver.Timeout == 0 {
		t.Fatalf("unbudgeted supplied solver not defaulted: %v", o3.Solver.Timeout)
	}
}

func TestOptionsFingerprint(t *testing.T) {
	// Zero options and the explicit paper preset must agree: defaults are
	// applied before fingerprinting.
	if (Options{}).Fingerprint() != PresetSIA().Fingerprint() {
		t.Fatalf("zero vs preset fingerprints differ:\n%s\n%s",
			Options{}.Fingerprint(), PresetSIA().Fingerprint())
	}
	// Any numeric field must show up.
	if (Options{MaxIterations: 7}).Fingerprint() == (Options{}).Fingerprint() {
		t.Fatal("MaxIterations not fingerprinted")
	}
	// Solver and Trace are excluded (the cache handles them separately).
	withSolver := Options{Solver: smt.New()}
	if withSolver.Fingerprint() != (Options{}).Fingerprint() {
		t.Fatal("Solver leaked into the fingerprint")
	}
}

func TestTimingAccumulation(t *testing.T) {
	var tt Timing
	tt.Add(Timing{Generation: time.Second, Learning: 2 * time.Second, Validation: 3 * time.Second})
	tt.Add(Timing{Generation: time.Second})
	if tt.Generation != 2*time.Second || tt.Learning != 2*time.Second || tt.Validation != 3*time.Second {
		t.Fatalf("Add wrong: %+v", tt)
	}
	if tt.Total() != 7*time.Second {
		t.Fatalf("Total = %v", tt.Total())
	}
}
