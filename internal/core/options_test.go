package core

import (
	"fmt"
	"testing"
	"time"

	"sia/internal/predtest"
)

func TestTraceHook(t *testing.T) {
	s := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", s)
	var calls int
	var sawValid bool
	opts := Options{Trace: func(iter int, cand fmt.Stringer, valid bool) {
		calls++
		if cand.String() == "" {
			t.Error("empty candidate in trace")
		}
		if valid {
			sawValid = true
		}
	}}
	res, err := Synthesize(p, []string{"a"}, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicate == nil {
		t.Fatalf("synthesis failed: %+v", res)
	}
	if calls == 0 {
		t.Fatal("trace hook never invoked")
	}
	if calls != res.Iterations {
		t.Fatalf("trace calls %d != iterations %d", calls, res.Iterations)
	}
	if !sawValid {
		t.Fatal("no valid candidate ever traced despite a valid result")
	}
}

func TestSynthesisTimeout(t *testing.T) {
	s := intSchema("a1", "a2", "b1")
	p := predtest.MustParse("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0", s)
	opts := Options{Timeout: time.Nanosecond}
	res, err := Synthesize(p, []string{"a1", "a2"}, s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.GaveUp != ReasonTimeout {
		t.Fatalf("expected timeout give-up, got %q (optimal=%v)", res.GaveUp, res.Optimal)
	}
	if res.Optimal {
		t.Fatal("a timed-out run cannot be optimal")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIterations != 41 || o.InitialTrue != 10 || o.InitialFalse != 10 || o.SamplesPerIteration != 5 {
		t.Fatalf("paper defaults wrong: %+v", o)
	}
	if o.Solver == nil || o.Solver.Timeout != o.SolverTimeout {
		t.Fatal("solver timeout not wired")
	}
	// Explicit values survive.
	o2 := Options{MaxIterations: 7, InitialTrue: 3, InitialFalse: 4, SamplesPerIteration: 2}.withDefaults()
	if o2.MaxIterations != 7 || o2.InitialTrue != 3 || o2.InitialFalse != 4 || o2.SamplesPerIteration != 2 {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}

func TestTimingAccumulation(t *testing.T) {
	var tt Timing
	tt.Add(Timing{Generation: time.Second, Learning: 2 * time.Second, Validation: 3 * time.Second})
	tt.Add(Timing{Generation: time.Second})
	if tt.Generation != 2*time.Second || tt.Learning != 2*time.Second || tt.Validation != 3*time.Second {
		t.Fatalf("Add wrong: %+v", tt)
	}
	if tt.Total() != 7*time.Second {
		t.Fatalf("Total = %v", tt.Total())
	}
}
