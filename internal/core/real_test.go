package core

import (
	"context"
	"testing"

	"sia/internal/predicate"
	"sia/internal/predtest"
)

func realSchema(names ...string) *predicate.Schema {
	cols := make([]predicate.Column, len(names))
	for i, n := range names {
		cols[i] = predicate.Column{Name: n, Type: predicate.TypeDouble, NotNull: true}
	}
	return predicate.NewSchema(cols...)
}

// TestSynthesizeRealColumns exercises the linear-real-arithmetic path
// (Loos–Weispfenning elimination) end to end: DOUBLE columns, fractional
// coefficients, dense order.
func TestSynthesizeRealColumns(t *testing.T) {
	s := realSchema("x", "y")
	// x - y < 2.5 AND y < 1.5  =>  over {x}: x < 4 (no integer
	// tightening: reals are dense, so x can approach 4 arbitrarily).
	p := predtest.MustParse("x - y < 2.5 AND y < 1.5", s)
	res, err := Synthesize(p, []string{"x"}, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertValidReduction(t, p, res, []string{"x"}, s)
	t.Logf("real synthesis: %q optimal=%v iters=%d", res.Predicate, res.Optimal, res.Iterations)
	// Values safely inside / outside the feasible region.
	if !predicate.Satisfies(res.Predicate, predicate.Tuple{"x": predicate.RealVal(3.0)}) {
		t.Fatalf("x=3.0 is feasible but rejected by %s", res.Predicate)
	}
	if predicate.Satisfies(res.Predicate, predicate.Tuple{"x": predicate.RealVal(10.0)}) {
		t.Fatalf("x=10 is an unsatisfaction point but accepted by %s", res.Predicate)
	}
}

func TestSymbolicRelevanceRealColumns(t *testing.T) {
	s := realSchema("x", "y")
	// x < y with y unconstrained: no unsatisfaction tuple for {x}.
	free := predtest.MustParse("x < y", s)
	rel, err := SymbolicallyRelevant(context.Background(), free, []string{"x"}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel {
		t.Fatal("x < y with free y should not be symbolically relevant for {x}")
	}
	// Bounding y creates unsatisfaction tuples for {x}.
	bounded := predtest.MustParse("x < y AND y < 7.25", s)
	rel, err = SymbolicallyRelevant(context.Background(), bounded, []string{"x"}, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rel {
		t.Fatal("x < y AND y < 7.25 should be symbolically relevant for {x}")
	}
}

// TestSynthesizeDisjunctivePredicate feeds an original predicate with OR —
// the grammar of §4.1 allows arbitrary boolean structure even though the
// benchmark template is conjunctive.
func TestSynthesizeDisjunctivePredicate(t *testing.T) {
	s := intSchema("a", "b")
	// (a - b < 0 AND b < 10) OR (a < -50 AND b > 0): over {a} the
	// feasible set is a < 9 ∪ a < -50 = a <= 8.
	p := predtest.MustParse("(a - b < 0 AND b < 10) OR (a < -50 AND b > 0)", s)
	res, err := Synthesize(p, []string{"a"}, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertValidReduction(t, p, res, []string{"a"}, s)
	if !res.Optimal {
		t.Fatalf("disjunctive case should converge (gave up: %s)", res.GaveUp)
	}
	if !predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(8)}) {
		t.Fatalf("a=8 feasible but rejected by %s", res.Predicate)
	}
	if predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(9)}) {
		t.Fatalf("a=9 unsatisfiable but accepted by %s", res.Predicate)
	}
}

// TestSynthesizeDisjointRegions exercises a TRUE region that is a union of
// two separated intervals: the optimal reduction needs a disjunction of
// half-planes, which Alg. 2 produces by training per-round SVMs on the
// still-misclassified TRUE samples.
func TestSynthesizeDisjointRegions(t *testing.T) {
	s := intSchema("a", "b")
	p := predtest.MustParse("(a - b = 0 AND b > 0 AND b < 5) OR (a - b = 100 AND b > 0 AND b < 5)", s)
	res, err := Synthesize(p, []string{"a"}, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertValidReduction(t, p, res, []string{"a"}, s)
	t.Logf("disjoint regions: %q optimal=%v gaveUp=%s", res.Predicate, res.Optimal, res.GaveUp)
	// Both islands must be accepted (validity); the gap between them must
	// be rejected if the result was proven optimal.
	for _, v := range []int64{1, 4, 101, 104} {
		if !predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(v)}) {
			t.Fatalf("feasible a=%d rejected by %s", v, res.Predicate)
		}
	}
	if res.Optimal {
		for _, v := range []int64{50, 0, 105} {
			if predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(v)}) {
				t.Fatalf("unsatisfaction tuple a=%d accepted by optimal %s", v, res.Predicate)
			}
		}
	}
}
