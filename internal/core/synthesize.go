package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"sia/internal/obs"
	"sia/internal/predicate"
	"sia/internal/smt"
)

// GiveUpReason explains why synthesis stopped before proving optimality.
type GiveUpReason string

const (
	// ReasonNone: the loop converged to an optimal predicate.
	ReasonNone GiveUpReason = ""
	// ReasonNoUnsatTuples: no unsatisfaction tuple exists, so the only
	// valid optimal reduction is the trivial TRUE — nothing to push down.
	ReasonNoUnsatTuples GiveUpReason = "no-unsat-tuples"
	// ReasonMaxIterations: the iteration budget ran out (§5.1, line 3).
	ReasonMaxIterations GiveUpReason = "max-iterations"
	// ReasonNotSeparable: the samples are not separable by a disjunction
	// of half-planes the learner can find (§6.7's limitation).
	ReasonNotSeparable GiveUpReason = "not-separable"
	// ReasonSolverBudget: the solver exceeded its elimination budget (the
	// analogue of a Z3 timeout).
	ReasonSolverBudget GiveUpReason = "solver-budget"
	// ReasonNullCounterexamples: the candidate fails validation only on
	// tuples containing NULLs, which cannot become training samples.
	ReasonNullCounterexamples GiveUpReason = "null-only-counterexamples"
	// ReasonTimeout: the synthesis wall-clock budget (Options.Timeout)
	// expired; the best valid predicate found so far is returned.
	ReasonTimeout GiveUpReason = "timeout"
)

// Result is the outcome of one synthesis run.
type Result struct {
	// Predicate is the synthesized valid predicate over the target
	// columns, or nil when only the trivial TRUE predicate is valid
	// (the paper's "returns NULL" case).
	Predicate predicate.Predicate
	// Valid reports whether Predicate is a proven valid reduction.
	Valid bool
	// Optimal reports whether Predicate was proven optimal (no remaining
	// unsatisfaction tuple is accepted, Lemma 4).
	Optimal bool
	// Iterations is the number of learning-loop iterations executed.
	Iterations int
	// TrueSamples and FalseSamples are the final training-set sizes.
	TrueSamples, FalseSamples int
	// Timing breaks down synthesis time (Table 3's categories).
	Timing Timing
	// GaveUp explains early termination (empty when Optimal).
	GaveUp GiveUpReason
}

// SymbolicallyRelevant reports whether an unsatisfaction tuple exists for p
// with respect to cols — the §6.2 case-study test: only then can a
// non-trivial valid reduction exist (Lemma 4), making the query worth
// handing to the full synthesis loop. Cancelling ctx aborts the check with
// an error matching ErrTimeout.
func SymbolicallyRelevant(ctx context.Context, p predicate.Predicate, cols []string, schema *predicate.Schema, solver *smt.Solver) (bool, error) {
	if solver == nil {
		solver = smt.New()
	}
	enc := newEncoder(schema)
	rewritten, err := enc.rewriteNonLinear(p)
	if err != nil {
		return false, err
	}
	pf, err := enc.Encode(rewritten)
	if err != nil {
		return false, err
	}
	smp, err := newSampler(ctx, solver, enc, pf, cols, Options{}.withDefaults())
	if err != nil {
		return false, publicErr(err)
	}
	ok, err := smp.hasUnsatTuple(ctx)
	return ok, publicErr(err)
}

// Synthesize runs Alg. 1 without cancellation support; it is equivalent to
// SynthesizeContext with context.Background().
func Synthesize(p predicate.Predicate, cols []string, schema *predicate.Schema, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), p, cols, schema, opts)
}

// SynthesizeContext runs Alg. 1: it learns a valid (and, when the loop
// converges, optimal) predicate over cols that is implied by p. The schema
// supplies column types and nullability; cols must be a subset of p's
// columns.
//
// Cancelling ctx (or passing a context whose deadline expires) aborts
// synthesis within one solver call and returns an error matching ErrTimeout
// — distinct from the internal Options.Timeout budget, whose expiry returns
// the best predicate found so far with a nil error.
func SynthesizeContext(ctx context.Context, p predicate.Predicate, cols []string, schema *predicate.Schema, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	mRuns.Inc()
	start := time.Now()
	if opts.Tracer.Enabled() {
		opts.Tracer.Emit(obs.Span{Event: obs.EvSynthesisStart, Pred: p.String(), Cols: strings.Join(cols, ",")})
	}
	res, err := synthesizeContext(ctx, p, cols, schema, opts)
	recordRun(res, time.Since(start), err)
	traceDone(opts.Tracer, res, err)
	return res, err
}

// synthesizeContext is SynthesizeContext after option validation and
// instrumentation: the actual Alg. 1 driver.
func synthesizeContext(ctx context.Context, p predicate.Predicate, cols []string, schema *predicate.Schema, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: no target columns given", ErrInvalidOptions)
	}
	pcols := map[string]bool{}
	for _, c := range predicate.Columns(p) {
		pcols[c] = true
	}
	for _, c := range cols {
		if !pcols[c] {
			return nil, fmt.Errorf("%w: column %q does not occur in the predicate", ErrInvalidOptions, c)
		}
	}

	enc := newEncoder(schema)
	rewritten, err := enc.rewriteNonLinear(p)
	if err != nil {
		return nil, err
	}
	// A requested column absorbed into a virtual column cannot appear in
	// the synthesized predicate.
	for _, c := range cols {
		if enc.virtualCols[c] {
			return nil, fmt.Errorf("%w: column %q only occurs inside a non-linear term", ErrUnsupported, c)
		}
	}
	pf, err := enc.Encode(rewritten)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	start := time.Now()
	smp, err := newSampler(ctx, opts.Solver, enc, pf, cols, opts)
	res.Timing.Generation += time.Since(start)
	if err != nil {
		if errors.Is(err, smt.ErrBudget) {
			res.GaveUp = ReasonSolverBudget
			return res, nil
		}
		return nil, publicErr(err)
	}

	loop := &synthesisLoop{
		ctx:     ctx,
		opts:    opts,
		enc:     enc,
		schema:  schema,
		sampler: smp,
		learner: &learner{space: smp.space, schema: schema, opts: opts, sampler: smp},
		res:     res,
	}
	if err := loop.run(rewritten); err != nil {
		return nil, publicErr(err)
	}
	return res, nil
}

// verdictString renders a verification verdict without allocating.
func verdictString(valid bool) string {
	if valid {
		return "valid"
	}
	return "invalid"
}

// traceDone emits the synthesis_done span summarizing a finished run.
func traceDone(t *obs.Tracer, res *Result, err error) {
	if !t.Enabled() {
		return
	}
	s := obs.Span{Event: obs.EvSynthesisDone}
	if err != nil {
		s.Err = err.Error()
		t.Emit(s)
		return
	}
	s.Iter = res.Iterations
	s.TrueSamples = res.TrueSamples
	s.FalseSamples = res.FalseSamples
	s.Verdict = verdictString(res.Valid)
	s.Optimal = res.Optimal
	s.GaveUp = string(res.GaveUp)
	s.Gen = res.Timing.Generation
	s.Learn = res.Timing.Learning
	s.Validate = res.Timing.Validation
	if res.Predicate != nil {
		s.Pred = res.Predicate.String()
	}
	t.Emit(s)
}

type synthesisLoop struct {
	ctx     context.Context
	opts    Options
	enc     *encoder
	schema  *predicate.Schema
	sampler *sampler
	learner *learner
	res     *Result

	ts, fs []Sample
}

// The trace helpers below are nil-safe and allocation-free when tracing is
// off: they build the span from values already at hand and never format
// strings. Predicate rendering stays behind Enabled() at the call sites.

// traceSamples records an initial sample-generation batch.
func (l *synthesisLoop) traceSamples(kind string, count int, exhausted bool, dur time.Duration) {
	l.opts.Tracer.Emit(obs.Span{Event: obs.EvSamples, Kind: kind, Count: count, Exhausted: exhausted, Dur: dur})
}

// traceIteration records one SVM fit: training-set sizes and plane count.
func (l *synthesisLoop) traceIteration(iter, planes int, dur time.Duration) {
	l.opts.Tracer.Emit(obs.Span{Event: obs.EvIteration, Iter: iter,
		TrueSamples: len(l.ts), FalseSamples: len(l.fs), Planes: planes, Dur: dur})
}

// traceVerify records a verification verdict for one candidate.
func (l *synthesisLoop) traceVerify(iter int, valid bool, dur time.Duration) {
	l.opts.Tracer.Emit(obs.Span{Event: obs.EvVerify, Iter: iter, Verdict: verdictString(valid), Dur: dur})
}

// traceCounterexamples records a counter-example batch of the given kind.
func (l *synthesisLoop) traceCounterexamples(iter int, kind string, count int, exhausted bool, dur time.Duration) {
	l.opts.Tracer.Emit(obs.Span{Event: obs.EvCounterexamples, Iter: iter,
		Kind: kind, Count: count, Exhausted: exhausted, Dur: dur})
}

func (l *synthesisLoop) run(p predicate.Predicate) error {
	res := l.res

	// Symbolic relevance check: without an unsatisfaction tuple there is
	// nothing a non-trivial valid predicate could reject (Lemma 4).
	start := time.Now()
	relevant, err := l.sampler.hasUnsatTuple(l.ctx)
	res.Timing.Generation += time.Since(start)
	if err != nil {
		return l.giveUp(err)
	}
	if !relevant {
		res.GaveUp = ReasonNoUnsatTuples
		return nil
	}

	// Initial samples (§5.3).
	start = time.Now()
	ts, tExhausted, err := l.sampler.trueSamples(l.ctx, l.opts.InitialTrue, nil)
	dur := time.Since(start)
	res.Timing.Generation += dur
	if err != nil {
		return l.giveUp(err)
	}
	l.traceSamples("true", len(ts), tExhausted, dur)
	if tExhausted {
		// The satisfaction tuples over cols form a finite set that has
		// been fully enumerated: the strongest valid predicate is the
		// disjunction of equalities with the TRUE samples (§5.3).
		res.Predicate = l.equalityDisjunction(ts, false)
		res.Valid, res.Optimal = true, true
		res.TrueSamples = len(ts)
		return nil
	}
	l.ts = ts

	start = time.Now()
	fs, fExhausted, err := l.sampler.falseSamples(l.ctx, l.opts.InitialFalse, nil)
	dur = time.Since(start)
	res.Timing.Generation += dur
	if err != nil {
		return l.giveUp(err)
	}
	l.traceSamples("false", len(fs), fExhausted, dur)
	if fExhausted {
		// All unsatisfaction tuples are known: their complement is
		// exactly the set of feasible restrictions, i.e. the optimal
		// valid predicate (Lemmas 3 and 4).
		res.Predicate = l.equalityDisjunction(fs, true)
		res.Valid, res.Optimal = true, true
		res.TrueSamples, res.FalseSamples = len(ts), len(fs)
		return nil
	}
	l.fs = fs

	start = time.Now()
	ver, err := newVerifier(l.opts.Solver, l.enc, p)
	res.Timing.Validation += time.Since(start)
	if err != nil {
		return err
	}

	// The accumulated valid predicate is a conjunction of proven-valid
	// candidates (Lemma 2), kept as separate conjuncts so that a tighter
	// plane learned later can evict the looser planes it subsumes.
	type validConjunct struct {
		pred predicate.Predicate
		f    smt.Formula
	}
	var conjuncts []validConjunct
	validPred := func() predicate.Predicate {
		ps := make([]predicate.Predicate, len(conjuncts))
		for i, c := range conjuncts {
			ps[i] = c.pred
		}
		return predicate.NewAnd(ps...)
	}
	validFormula := func() smt.Formula {
		fs := make([]smt.Formula, len(conjuncts))
		for i, c := range conjuncts {
			fs[i] = c.f
		}
		return smt.NewAnd(fs...)
	}

	// prune drops every conjunct implied by the conjunction of the
	// others, so the final predicate is minimal (pairwise eviction during
	// the loop cannot catch conjuncts subsumed by a *combination* of
	// later ones, e.g. a1 < 71 once a1 - a2 < 29 and a2 < 19 both hold).
	prune := func() {
		for i := 0; i < len(conjuncts); i++ {
			rest := make([]smt.Formula, 0, len(conjuncts)-1)
			for j, c := range conjuncts {
				if j != i {
					rest = append(rest, c.f)
				}
			}
			needed, err := l.opts.Solver.SatisfiableCtx(l.ctx, smt.NewAnd(smt.NewAnd(rest...), smt.NewNot(conjuncts[i].f)))
			if err == nil && !needed {
				conjuncts = append(conjuncts[:i], conjuncts[i+1:]...)
				i--
			}
		}
	}

	finish := func(reason GiveUpReason) {
		res.GaveUp = reason
		if len(conjuncts) > 0 {
			prune()
			res.Predicate = validPred()
			res.Valid = true
		}
		res.TrueSamples, res.FalseSamples = len(l.ts), len(l.fs)
	}

	loopStart := time.Now()
	for iter := 0; iter < l.opts.MaxIterations; iter++ {
		// The caller walking away is an error (ErrTimeout); the internal
		// wall-clock budget expiring is a graceful partial result.
		if err := l.ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrTimeout, err)
		}
		if time.Since(loopStart) > l.opts.Timeout {
			finish(ReasonTimeout)
			return nil
		}
		res.Iterations = iter + 1

		start = time.Now()
		lr, err := l.learner.Learn(l.ts, l.fs)
		dur = time.Since(start)
		res.Timing.Learning += dur
		if errors.Is(err, errNotSeparable) {
			finish(ReasonNotSeparable)
			return nil
		}
		if err != nil {
			return err
		}
		l.traceIteration(iter+1, len(lr.planes), dur)
		candidate := lr.predicate(l.sampler.space, l.schema)

		start = time.Now()
		valid, err := ver.Verify(l.ctx, candidate)
		dur = time.Since(start)
		res.Timing.Validation += dur
		if err != nil {
			return l.giveUpWith(err, finish)
		}
		l.traceVerify(iter+1, valid, dur)
		if l.opts.Trace != nil {
			l.opts.Trace(iter, candidate, valid)
		}

		candFormula, err := l.enc.Encode(candidate)
		if err != nil {
			return err
		}

		if valid {
			// Strengthen: conjoin with everything proven valid so far
			// (Lemma 2: validity is closed under conjunction) — unless the
			// accumulated predicate already implies the candidate, in
			// which case conjoining would only bloat the result and every
			// downstream solver query. Symmetrically, a new candidate that
			// implies an existing conjunct makes that conjunct redundant,
			// so it is evicted.
			start = time.Now()
			useful, err := l.opts.Solver.SatisfiableCtx(l.ctx, smt.NewAnd(validFormula(), smt.NewNot(candFormula)))
			if err == nil && useful {
				kept := conjuncts[:0]
				for _, c := range conjuncts {
					redundant, cerr := l.opts.Solver.SatisfiableCtx(l.ctx, smt.NewAnd(candFormula, smt.NewNot(c.f)))
					if cerr != nil {
						err = cerr
						break
					}
					if redundant {
						kept = append(kept, c)
					}
				}
				if err == nil {
					conjuncts = append(kept, validConjunct{pred: candidate, f: candFormula})
				}
			}
			res.Timing.Validation += time.Since(start)
			if err != nil {
				return l.giveUpWith(err, finish)
			}

			start = time.Now()
			fs1, exhausted, err := l.sampler.counterFalse(l.ctx, validFormula(), l.opts.SamplesPerIteration, l.fs)
			dur = time.Since(start)
			res.Timing.Generation += dur
			if err != nil {
				return l.giveUpWith(err, finish)
			}
			l.traceCounterexamples(iter+1, "false", len(fs1), exhausted, dur)
			if len(fs1) == 0 && exhausted {
				// No unsatisfaction tuple is accepted: optimal (Lemma 4).
				prune()
				res.Predicate = validPred()
				res.Valid, res.Optimal = true, true
				res.TrueSamples, res.FalseSamples = len(l.ts), len(l.fs)
				return nil
			}
			l.fs = append(l.fs, fs1...)
		} else {
			start = time.Now()
			l.learner.noteInvalid(l.ctx, lr)
			ts1, err := l.sampler.counterTrue(l.ctx, candFormula, l.opts.SamplesPerIteration, l.ts)
			dur = time.Since(start)
			res.Timing.Generation += dur
			if err != nil {
				return l.giveUpWith(err, finish)
			}
			l.traceCounterexamples(iter+1, "true", len(ts1), false, dur)
			if len(ts1) == 0 {
				// Validation failed, yet no concrete (NULL-free)
				// counter-example exists: the candidate only misbehaves
				// on NULL-carrying tuples, which cannot be encoded as
				// training samples.
				finish(ReasonNullCounterexamples)
				return nil
			}
			l.ts = append(l.ts, ts1...)
		}
	}
	finish(ReasonMaxIterations)
	return nil
}

// giveUp converts solver budget exhaustion into a clean non-result.
func (l *synthesisLoop) giveUp(err error) error {
	if errors.Is(err, smt.ErrBudget) {
		l.res.GaveUp = ReasonSolverBudget
		l.res.TrueSamples, l.res.FalseSamples = len(l.ts), len(l.fs)
		return nil
	}
	return err
}

// giveUpWith additionally preserves the best valid predicate found so far.
func (l *synthesisLoop) giveUpWith(err error, finish func(GiveUpReason)) error {
	if errors.Is(err, smt.ErrBudget) {
		finish(ReasonSolverBudget)
		return nil
	}
	return err
}

// equalityDisjunction builds ⋁ over samples of (col₁ = v₁ ∧ … ∧ colₖ = vₖ),
// negated when negate is set (used for the finite FALSE-set case).
func (l *synthesisLoop) equalityDisjunction(samples []Sample, negate bool) predicate.Predicate {
	var disjuncts []predicate.Predicate
	for _, s := range samples {
		var eqs []predicate.Predicate
		for i, col := range l.sampler.space.Cols {
			typ := predicate.TypeInteger
			if l.schema != nil {
				if c, ok := l.schema.Lookup(col); ok {
					typ = c.Type
				}
			}
			val := ratToValue(s.Vals[i], typ)
			eqs = append(eqs, predicate.Cmp(predicate.CmpEQ, predicate.Col(col, typ), &predicate.Const{Val: val, Type: typ}))
		}
		disjuncts = append(disjuncts, predicate.NewAnd(eqs...))
	}
	d := predicate.NewOr(disjuncts...)
	if negate {
		return predicate.NewNot(d)
	}
	return d
}
