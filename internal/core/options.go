// Package core implements Sia's counter-example guided predicate synthesis
// (SIGMOD '21, §3 and §5): given a predicate p over columns Cols and a
// subset Cols' ⊆ Cols, it learns a predicate p₁ over only Cols' such that
// p ⟹ p₁ (a valid dimensionality reduction, Def. 2) and, when the loop
// converges, p₁ rejects every unsatisfaction tuple of p (optimal, Def. 3).
//
// The loop alternates:
//
//  1. sample generation — an SMT solver produces satisfaction tuples (TRUE
//     samples: restrictions to Cols' that extend to a p-satisfying tuple)
//     and unsatisfaction tuples (FALSE samples: restrictions no extension
//     of which satisfies p);
//  2. learning — a linear SVM separates the samples; the disjunction of as
//     many hyperplanes as needed classifies every TRUE sample correctly
//     (Alg. 2);
//  3. verification — the solver checks p ∧ ¬p₁ unsatisfiable under
//     three-valued logic; and
//  4. counter-example generation — TRUE counter-examples when p₁ is
//     invalid, FALSE counter-examples when p₁ is valid but possibly
//     sub-optimal.
package core

import (
	"fmt"
	"strings"
	"time"

	"sia/internal/obs"
	"sia/internal/smt"
)

// Options configures the synthesis loop. The zero value uses the paper's
// SIA configuration (Table 1).
type Options struct {
	// MaxIterations bounds the learning loop (paper: 41).
	MaxIterations int
	// InitialTrue and InitialFalse are the initial sample counts
	// (paper: 10 each).
	InitialTrue, InitialFalse int
	// SamplesPerIteration is the number of counter-examples added per
	// loop iteration (paper: 5).
	SamplesPerIteration int
	// MaxDenominator bounds the integer coefficient magnitudes used when
	// converting SVM weights to exact half-planes. Smaller values give
	// simpler predicates and much cheaper verification (Cooper's
	// elimination cost grows with coefficient LCMs). Default 8.
	MaxDenominator int64
	// NonZeroSamples applies the paper's sampling heuristic that forces
	// generated values away from zero, which improves SVM conditioning
	// (§5.3 "Additional Heuristics"). If the heuristic makes sampling
	// infeasible it is dropped automatically.
	NonZeroSamples bool
	// SolverTimeout bounds each individual solver call; an expired call
	// behaves like a Z3 timeout (§6.2 recommends running Sia "with an
	// explicit timeout"). Default 2s. An explicitly set (non-zero)
	// SolverTimeout is always honored, overriding the Timeout of a
	// caller-supplied Solver; when left zero, a supplied Solver keeps its
	// own Timeout.
	SolverTimeout time.Duration
	// Timeout bounds the whole synthesis; on expiry the best valid
	// predicate found so far is returned. Default 30s.
	Timeout time.Duration
	// Solver is the SMT solver to use; nil creates a fresh one.
	Solver *smt.Solver
	// Trace, when set, is invoked once per learning-loop iteration with
	// the candidate and the verification verdict — for debugging and for
	// the experiment harness's convergence diagnostics.
	Trace func(iteration int, candidate fmt.Stringer, valid bool)
	// Tracer, when set, records structured JSONL spans for every CEGIS
	// event (iterations, verify verdicts, counter-example batches, the
	// final outcome). A nil Tracer is free: the hot path performs no
	// allocations and no work. Like Solver and Trace, a non-nil Tracer
	// makes a run uncacheable (cache.KeyFor detects it).
	Tracer *obs.Tracer
}

// normalized fills the numeric defaults without touching the solver. It is
// shared by withDefaults and Fingerprint so the two can never disagree on
// what the zero value means.
func (o Options) normalized() Options {
	if o.MaxIterations == 0 {
		o.MaxIterations = 41
	}
	if o.InitialTrue == 0 {
		o.InitialTrue = 10
	}
	if o.InitialFalse == 0 {
		o.InitialFalse = 10
	}
	if o.SamplesPerIteration == 0 {
		o.SamplesPerIteration = 5
	}
	if o.MaxDenominator == 0 {
		o.MaxDenominator = 8
	}
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	return o
}

func (o Options) withDefaults() Options {
	explicitSolverTimeout := o.SolverTimeout != 0
	o = o.normalized()
	if o.SolverTimeout == 0 {
		o.SolverTimeout = 2 * time.Second
	}
	if o.Solver == nil {
		o.Solver = smt.New()
	}
	// An explicitly requested per-call timeout wins over the supplied
	// solver's own; otherwise a solver that already carries a timeout
	// keeps it.
	if explicitSolverTimeout || o.Solver.Timeout == 0 {
		o.Solver.Timeout = o.SolverTimeout
	}
	// Tracing flows through to the solver so qe_memo hit/miss spans land
	// in the same trace as the CEGIS events; a solver supplied with its
	// own tracer keeps it.
	if o.Solver.Tracer == nil {
		o.Solver.Tracer = o.Tracer
	}
	return o
}

// Validate rejects nonsensical configurations: any negative field. It
// returns nil or a single error matching ErrInvalidOptions that names every
// offending field. The zero value (and any field left zero) is always
// valid — zero means "use the default".
func (o Options) Validate() error {
	var bad []string
	if o.MaxIterations < 0 {
		bad = append(bad, "MaxIterations")
	}
	if o.InitialTrue < 0 {
		bad = append(bad, "InitialTrue")
	}
	if o.InitialFalse < 0 {
		bad = append(bad, "InitialFalse")
	}
	if o.SamplesPerIteration < 0 {
		bad = append(bad, "SamplesPerIteration")
	}
	if o.MaxDenominator < 0 {
		bad = append(bad, "MaxDenominator")
	}
	if o.SolverTimeout < 0 {
		bad = append(bad, "SolverTimeout")
	}
	if o.Timeout < 0 {
		bad = append(bad, "Timeout")
	}
	if len(bad) > 0 {
		return fmt.Errorf("%w: negative %s", ErrInvalidOptions, strings.Join(bad, ", "))
	}
	return nil
}

// Fingerprint returns a canonical string identifying every option that can
// influence a synthesis result, with defaults applied — two Options with
// equal fingerprints produce identical Results for the same (predicate,
// cols, schema) input. Solver, Trace and Tracer are deliberately excluded:
// a caller-supplied solver or trace hook makes a run uncacheable, which
// cache.KeyFor detects separately.
func (o Options) Fingerprint() string {
	n := o.normalized()
	st := n.SolverTimeout
	if st == 0 {
		st = 2 * time.Second
	}
	return fmt.Sprintf("iters=%d|t0=%d|f0=%d|per=%d|maxden=%d|nonzero=%t|solvertimeout=%s|timeout=%s",
		n.MaxIterations, n.InitialTrue, n.InitialFalse, n.SamplesPerIteration,
		n.MaxDenominator, n.NonZeroSamples, st, n.Timeout)
}

// The paper's baseline configurations (Table 1).

// PresetSIA is the full counter-example guided configuration: at most 41
// iterations, 10+10 initial samples, 5 samples per iteration.
func PresetSIA() Options {
	return Options{MaxIterations: 41, InitialTrue: 10, InitialFalse: 10, SamplesPerIteration: 5}
}

// PresetSIAV1 is the non-iterative baseline with 110+110 initial samples —
// the same total sample budget SIA reaches at its final iteration.
func PresetSIAV1() Options {
	return Options{MaxIterations: 1, InitialTrue: 110, InitialFalse: 110, SamplesPerIteration: 5}
}

// PresetSIAV2 is the non-iterative baseline with twice SIA_v1's samples.
func PresetSIAV2() Options {
	return Options{MaxIterations: 1, InitialTrue: 220, InitialFalse: 220, SamplesPerIteration: 5}
}

// Timing breaks down where synthesis time went, mirroring Table 3's
// categories.
type Timing struct {
	// Generation is time spent obtaining initial samples and
	// counter-examples from the solver.
	Generation time.Duration
	// Learning is time spent training SVM models.
	Learning time.Duration
	// Validation is time spent verifying candidate predicates and
	// checking optimality.
	Validation time.Duration
}

// Add accumulates another timing into t.
func (t *Timing) Add(o Timing) {
	t.Generation += o.Generation
	t.Learning += o.Learning
	t.Validation += o.Validation
}

// Total returns the sum of all phases.
func (t Timing) Total() time.Duration { return t.Generation + t.Learning + t.Validation }
