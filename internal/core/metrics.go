package core

import (
	"time"

	"sia/internal/obs"
)

// Process-wide synthesis metrics in the Default registry, registered at
// init so every name is scrapeable before the first run.
var (
	mRuns       = obs.Default().Counter("sia_synthesis_runs_total", "Synthesis runs started.")
	mErrors     = obs.Default().Counter("sia_synthesis_errors_total", "Synthesis runs that returned an error.")
	mIterations = obs.Default().Counter("sia_synthesis_iterations_total", "CEGIS learning-loop iterations executed.")
	mDuration   = obs.Default().Histogram("sia_synthesis_duration_seconds",
		"Wall time of whole synthesis runs.", obs.DurationBuckets())

	mGaveUp = func() map[GiveUpReason]*obs.Counter {
		m := map[GiveUpReason]*obs.Counter{}
		for _, r := range []GiveUpReason{
			ReasonNoUnsatTuples, ReasonMaxIterations, ReasonNotSeparable,
			ReasonSolverBudget, ReasonNullCounterexamples, ReasonTimeout,
		} {
			m[r] = obs.Default().Counter("sia_synthesis_gaveup_total",
				"Synthesis runs that stopped before proving optimality, by reason.",
				obs.Label{Key: "reason", Value: string(r)})
		}
		return m
	}()

	mPhaseSeconds = func() map[string]*obs.Histogram {
		m := map[string]*obs.Histogram{}
		for _, p := range []string{"generation", "learning", "validation"} {
			m[p] = obs.Default().Histogram("sia_synthesis_phase_seconds",
				"Per-run synthesis time by phase (Table 3's categories).",
				obs.DurationBuckets(), obs.Label{Key: "phase", Value: p})
		}
		return m
	}()
)

// recordRun publishes one finished run's metrics: duration, iteration
// count, the Table-3 phase breakdown, and the give-up reason (if any).
func recordRun(res *Result, dur time.Duration, err error) {
	mDuration.Observe(dur.Seconds())
	if err != nil {
		mErrors.Inc()
		return
	}
	if res == nil {
		return
	}
	mIterations.Add(uint64(res.Iterations))
	if c, ok := mGaveUp[res.GaveUp]; ok {
		c.Inc()
	}
	mPhaseSeconds["generation"].Observe(res.Timing.Generation.Seconds())
	mPhaseSeconds["learning"].Observe(res.Timing.Learning.Seconds())
	mPhaseSeconds["validation"].Observe(res.Timing.Validation.Seconds())
}
