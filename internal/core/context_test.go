package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sia/internal/predtest"
)

func TestSynthesizeContextPreCancelled(t *testing.T) {
	s := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SynthesizeContext(ctx, p, []string{"a"}, s, Options{})
	if res != nil {
		t.Fatalf("cancelled synthesis returned a result: %+v", res)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("error %v does not match ErrTimeout", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not expose context.Canceled", err)
	}
}

// TestSynthesizeContextCancelMidLoop cancels from inside the Trace hook —
// i.e. between iterations, with solver work still pending — and asserts the
// loop notices within one solver call rather than running its remaining
// iterations.
func TestSynthesizeContextCancelMidLoop(t *testing.T) {
	s := intSchema("a1", "a2", "b1")
	p := predtest.MustParse("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0", s)

	ctx, cancel := context.WithCancel(context.Background())
	var cancelled time.Time
	iterations := 0
	opts := Options{Trace: func(int, fmt.Stringer, bool) {
		iterations++
		if iterations == 1 {
			cancelled = time.Now()
			cancel()
		}
	}}
	res, err := SynthesizeContext(ctx, p, []string{"a1", "a2"}, s, opts)
	if res != nil || !errors.Is(err, ErrTimeout) || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-loop cancel: res=%v err=%v", res, err)
	}
	if iterations != 1 {
		t.Fatalf("loop ran %d iterations after cancellation, want 1", iterations)
	}
	// "Promptly": a single solver call on this problem takes microseconds;
	// a second's grace keeps the bound unflaky while still catching a loop
	// that ignores ctx until its iteration budget runs out.
	if waited := time.Since(cancelled); waited > time.Second {
		t.Fatalf("cancellation took %v to propagate", waited)
	}
}

func TestSynthesizeContextDeadline(t *testing.T) {
	s := intSchema("a1", "a2", "b1")
	p := predtest.MustParse("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0", s)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	_, err := SynthesizeContext(ctx, p, []string{"a1", "a2"}, s, Options{})
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error %v should match ErrTimeout and DeadlineExceeded", err)
	}
}

func TestVerifyReductionContextCancelled(t *testing.T) {
	s := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", s)
	cand := predtest.MustParse("a < 20", s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VerifyReductionContext(ctx, p, cand, s); !errors.Is(err, ErrTimeout) {
		t.Fatalf("error %v does not match ErrTimeout", err)
	}
	// And the non-context form still verifies.
	ok, err := VerifyReduction(p, cand, s)
	if err != nil || !ok {
		t.Fatalf("VerifyReduction: ok=%v err=%v", ok, err)
	}
}

func TestSymbolicallyRelevantCancelled(t *testing.T) {
	s := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SymbolicallyRelevant(ctx, p, []string{"a"}, s, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("error %v does not match ErrTimeout", err)
	}
}
