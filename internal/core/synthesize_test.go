package core

import (
	"context"
	"testing"

	"sia/internal/predicate"
	"sia/internal/predtest"
	"sia/internal/smt"
)

// assertValidReduction verifies independently (fresh solver, fresh encoder)
// that res.Predicate is implied by p and uses only cols.
func assertValidReduction(t *testing.T, p predicate.Predicate, res *Result, cols []string, s *predicate.Schema) {
	t.Helper()
	if res.Predicate == nil {
		t.Fatalf("no predicate synthesized (gave up: %s)", res.GaveUp)
	}
	if !res.Valid {
		t.Fatalf("result not marked valid: %+v", res)
	}
	if !predicate.UsesOnly(res.Predicate, cols) {
		t.Fatalf("predicate %s uses columns outside %v", res.Predicate, cols)
	}
	enc := newEncoder(s)
	v, err := newVerifier(smt.New(), enc, p)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := v.Verify(context.Background(), res.Predicate)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("synthesized predicate %s is NOT implied by %s", res.Predicate, p)
	}
}

// assertOptimal checks with a fresh solver that no unsatisfaction tuple of
// p (w.r.t. cols) satisfies the synthesized predicate (Lemma 4).
func assertOptimal(t *testing.T, p predicate.Predicate, res *Result, cols []string, s *predicate.Schema) {
	t.Helper()
	solver := smt.New()
	enc := newEncoder(s)
	pf, err := enc.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	candF, err := enc.Encode(res.Predicate)
	if err != nil {
		t.Fatal(err)
	}
	inCols := map[string]bool{}
	for _, c := range cols {
		inCols[c] = true
	}
	unsat := smt.Formula(smt.NewNot(pf))
	for _, v := range smt.FreeVars(pf) {
		if !inCols[v.Name] {
			unsat = &smt.ForAll{V: v, F: unsat}
		}
	}
	sat, err := solver.Satisfiable(smt.NewAnd(unsat, candF))
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Fatalf("an unsatisfaction tuple satisfies %s: not optimal", res.Predicate)
	}
}

func TestSynthesizePaperWalkthrough(t *testing.T) {
	// §3.2: p = (a2 - b1 < 20) AND (a1 - a2 < a2 - b1 + 10) AND (b1 < 0),
	// target columns {a1, a2}. The optimal reduction is
	// (a2 <= 18) AND (a1 - a2 <= 28).
	s := intSchema("a1", "a2", "b1")
	p := predtest.MustParse("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0", s)
	cols := []string{"a1", "a2"}
	res, err := Synthesize(p, cols, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertValidReduction(t, p, res, cols, s)
	t.Logf("synthesized %q in %d iterations (optimal=%v, %d true / %d false samples)",
		res.Predicate, res.Iterations, res.Optimal, res.TrueSamples, res.FalseSamples)
	if res.Optimal {
		assertOptimal(t, p, res, cols, s)
	}
}

func TestSynthesizeSingleColumn(t *testing.T) {
	// The one-column case from the paper's motivating rewrite: with
	// p = (a - b < 20) AND (b < 0), the reduction to {a} is a < 19,
	// i.e. a <= 18.
	s := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", s)
	res, err := Synthesize(p, []string{"a"}, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertValidReduction(t, p, res, []string{"a"}, s)
	if !res.Optimal {
		t.Fatalf("single halfplane should converge to optimal, gave up: %s", res.GaveUp)
	}
	assertOptimal(t, p, res, []string{"a"}, s)
	// Semantics spot-check: a=18 must be accepted, a=19 rejected.
	if !predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(18)}) {
		t.Fatalf("a=18 is feasible but rejected by %s", res.Predicate)
	}
	if predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(19)}) {
		t.Fatalf("a=19 is an unsatisfaction tuple but accepted by %s", res.Predicate)
	}
}

func TestSynthesizeNoUnsatTuples(t *testing.T) {
	// p = a > b: for every a there is a b making it true, so there is no
	// unsatisfaction tuple for {a} and the only valid reduction is TRUE.
	s := intSchema("a", "b")
	p := predtest.MustParse("a > b", s)
	res, err := Synthesize(p, []string{"a"}, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicate != nil || res.GaveUp != ReasonNoUnsatTuples {
		t.Fatalf("expected no-unsat-tuples give-up, got %+v", res)
	}
}

func TestSynthesizeFiniteTrueSet(t *testing.T) {
	// p = (a = 3 OR a = 5) AND b > a: only two satisfaction tuples exist
	// over {a}; the strongest valid predicate is their disjunction.
	s := intSchema("a", "b")
	p := predtest.MustParse("(a = 3 OR a = 5) AND b > a", s)
	res, err := Synthesize(p, []string{"a"}, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertValidReduction(t, p, res, []string{"a"}, s)
	if !res.Optimal {
		t.Fatalf("finite TRUE set should be optimal, gave up: %s", res.GaveUp)
	}
	for _, v := range []int64{3, 5} {
		if !predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(v)}) {
			t.Fatalf("a=%d should satisfy %s", v, res.Predicate)
		}
	}
	for _, v := range []int64{2, 4, 6, 0} {
		if predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(v)}) {
			t.Fatalf("a=%d should not satisfy %s", v, res.Predicate)
		}
	}
}

func TestSynthesizeFiniteFalseSet(t *testing.T) {
	// p = (a >= 0 OR a <= -3) AND b > a: the unsatisfaction tuples over
	// {a} are exactly a ∈ {-1, -2}; the optimal predicate rejects them.
	s := intSchema("a", "b")
	p := predtest.MustParse("(a >= 0 OR a <= -3) AND b > a", s)
	res, err := Synthesize(p, []string{"a"}, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertValidReduction(t, p, res, []string{"a"}, s)
	if !res.Optimal {
		t.Fatalf("finite FALSE set should be optimal, gave up: %s", res.GaveUp)
	}
	for _, v := range []int64{-1, -2} {
		if predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(v)}) {
			t.Fatalf("unsatisfaction tuple a=%d accepted by %s", v, res.Predicate)
		}
	}
	for _, v := range []int64{0, -3, 7, -100} {
		if !predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(v)}) {
			t.Fatalf("feasible a=%d rejected by %s", v, res.Predicate)
		}
	}
}

func TestSynthesizeUnsatisfiablePredicate(t *testing.T) {
	// An unsatisfiable p implies anything; the loop detects there are no
	// satisfaction tuples at all and returns the strongest predicate
	// (the empty disjunction, FALSE).
	s := intSchema("a", "b")
	p := predtest.MustParse("a > b AND b > a", s)
	res, err := Synthesize(p, []string{"a"}, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicate == nil || !res.Optimal {
		t.Fatalf("expected optimal FALSE predicate, got %+v", res)
	}
	if predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(0)}) {
		t.Fatalf("nothing should satisfy %s", res.Predicate)
	}
}

func TestSynthesizeColumnValidation(t *testing.T) {
	s := intSchema("a", "b")
	p := predtest.MustParse("a > b", s)
	if _, err := Synthesize(p, []string{"zzz"}, s, Options{}); err == nil {
		t.Fatal("columns outside the predicate should be rejected")
	}
	if _, err := Synthesize(p, nil, s, Options{}); err == nil {
		t.Fatal("empty column set should be rejected")
	}
}

func TestSynthesizeTwoSidedBound(t *testing.T) {
	// p constrains a to a band through b: |a - b| < 5 with 0 < b < 10.
	// With integer b in [1, 9] and |a - b| <= 4, the feasible a range is
	// [-3, 13]. The optimal reduction needs two hyperplanes, exercising
	// the conjunction in Alg. 1 (line 7) across iterations.
	s := intSchema("a", "b")
	p := predtest.MustParse("a - b < 5 AND b - a < 5 AND b > 0 AND b < 10", s)
	cols := []string{"a"}
	res, err := Synthesize(p, cols, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertValidReduction(t, p, res, cols, s)
	t.Logf("two-sided: %q optimal=%v iters=%d", res.Predicate, res.Optimal, res.Iterations)
	if !res.Optimal {
		t.Fatalf("two-sided band should converge to optimal, gave up: %s", res.GaveUp)
	}
	assertOptimal(t, p, res, cols, s)
	for _, v := range []int64{-3, 0, 13} {
		if !predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(v)}) {
			t.Fatalf("feasible a=%d rejected by %s", v, res.Predicate)
		}
	}
	for _, v := range []int64{-4, 14} {
		if predicate.Satisfies(res.Predicate, predicate.Tuple{"a": predicate.IntVal(v)}) {
			t.Fatalf("unsatisfaction tuple a=%d accepted by %s", v, res.Predicate)
		}
	}
}

func TestSynthesizePaperLimitation(t *testing.T) {
	// §6.7: p = a > b AND a < b + 50 AND b > 0 AND b < 150 over {a}:
	// the TRUE region is an interval (1..199) but FALSE samples lie on
	// both sides, so single-hyperplane learning rounds may fail; Sia must
	// either converge to a valid predicate or give up cleanly — never
	// return an invalid one.
	s := intSchema("a", "b")
	p := predtest.MustParse("a > b AND a < b + 50 AND b > 0 AND b < 150", s)
	cols := []string{"a"}
	res, err := Synthesize(p, cols, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicate != nil {
		assertValidReduction(t, p, res, cols, s)
		t.Logf("limitation case synthesized %q (optimal=%v, gaveUp=%s)", res.Predicate, res.Optimal, res.GaveUp)
	} else {
		t.Logf("limitation case gave up: %s", res.GaveUp)
	}
}

func TestSynthesizePresets(t *testing.T) {
	s := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", s)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"SIA", PresetSIA()},
		{"SIA_v1", PresetSIAV1()},
		{"SIA_v2", PresetSIAV2()},
	} {
		res, err := Synthesize(p, []string{"a"}, s, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Predicate == nil {
			t.Logf("%s: gave up (%s)", tc.name, res.GaveUp)
			continue
		}
		assertValidReduction(t, p, res, []string{"a"}, s)
		if tc.opts.MaxIterations == 1 && res.Iterations > 1 {
			t.Fatalf("%s: ran %d iterations, expected 1", tc.name, res.Iterations)
		}
	}
}

func TestSynthesizeTimingAndCounts(t *testing.T) {
	s := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", s)
	res, err := Synthesize(p, []string{"a"}, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing.Generation == 0 {
		t.Error("generation time not recorded")
	}
	if res.Iterations > 0 && res.Timing.Learning == 0 {
		t.Error("learning time not recorded")
	}
	if res.TrueSamples == 0 || res.FalseSamples == 0 {
		t.Errorf("sample counts not recorded: %+v", res)
	}
}

func TestSynthesizeDateColumns(t *testing.T) {
	// The full §2 predicate with DATE columns; reduction to the two
	// lineitem columns.
	s := predicate.NewSchema(
		predicate.Column{Name: "l_shipdate", Type: predicate.TypeDate, NotNull: true},
		predicate.Column{Name: "l_commitdate", Type: predicate.TypeDate, NotNull: true},
		predicate.Column{Name: "o_orderdate", Type: predicate.TypeDate, NotNull: true},
	)
	p := predtest.MustParse(`l_shipdate - o_orderdate < 20
		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
		AND o_orderdate < DATE '1993-06-01'`, s)
	cols := []string{"l_commitdate", "l_shipdate"}
	res, err := Synthesize(p, cols, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertValidReduction(t, p, res, cols, s)
	t.Logf("TPC-H style: %q optimal=%v iters=%d", res.Predicate, res.Optimal, res.Iterations)
}
