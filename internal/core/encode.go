package core

import (
	"errors"
	"fmt"
	"math/big"

	"sia/internal/predicate"
	"sia/internal/smt"
)

// ErrUnsupported is returned when a predicate lies outside the decidable
// fragment Sia handles (e.g. a non-linear column product whose columns also
// appear elsewhere in the predicate, §5.2).
var ErrUnsupported = errors.New("sia: unsupported predicate")

// EncodePredicate translates a predicate into an SMT formula under the
// two-valued encoding, applying the §5.2 virtual-column rewrite for
// non-linear terms first. It is the package's one-shot encoding entry
// point, used by the workload generator (satisfiability re-checks) and the
// experiment harness.
func EncodePredicate(p predicate.Predicate, schema *predicate.Schema) (smt.Formula, error) {
	enc := newEncoder(schema)
	rw, err := enc.rewriteNonLinear(p)
	if err != nil {
		return nil, err
	}
	return enc.Encode(rw)
}

// encoder translates predicates into SMT formulas over column variables.
type encoder struct {
	schema *predicate.Schema
	// virtual maps the printed form of a non-linear sub-expression to the
	// virtual column that replaces it (§5.2: multiplication or division of
	// columns is treated as a single column when those columns appear
	// nowhere else).
	virtual map[string]*predicate.ColumnRef
	// virtualCols records which real columns are consumed by virtual
	// columns, to reject predicates that also use them directly.
	virtualCols map[string]bool
	nextVirtual int
}

func newEncoder(schema *predicate.Schema) *encoder {
	return &encoder{
		schema:      schema,
		virtual:     map[string]*predicate.ColumnRef{},
		virtualCols: map[string]bool{},
	}
}

// sortFor maps a column type to an SMT sort.
func sortFor(t predicate.Type) smt.Sort {
	if t.Integral() {
		return smt.SortInt
	}
	return smt.SortReal
}

// colVar returns the SMT variable standing for a column's value.
func (e *encoder) colVar(name string) smt.Var {
	t := predicate.TypeInteger
	if e.schema != nil {
		if c, ok := e.schema.Lookup(name); ok {
			t = c.Type
		}
	}
	if v, ok := e.virtual[name]; ok {
		t = v.Type
	}
	return smt.Var{Name: name, Sort: sortFor(t)}
}

// nullVar returns the SMT 0/1 variable standing for "column is NULL".
func nullVar(name string) smt.Var { return smt.IntVar("$null$" + name) }

// rewriteNonLinear replaces maximal non-linear sub-expressions (column
// products, divisions with columns in the divisor) by virtual columns. It
// returns ErrUnsupported when a column consumed by a virtual column is also
// used elsewhere, since the substitution would then change semantics.
func (e *encoder) rewriteNonLinear(p predicate.Predicate) (predicate.Predicate, error) {
	var outsideCols []string
	var rewriteExpr func(x predicate.Expr) (predicate.Expr, error)
	rewriteExpr = func(x predicate.Expr) (predicate.Expr, error) {
		if _, err := predicate.Linearize(x); err == nil {
			outsideCols = append(outsideCols, predicate.ExprColumns(x, nil)...)
			return x, nil
		}
		switch b := x.(type) {
		case *predicate.BinaryExpr:
			// If the node itself is the non-linear culprit, virtualize it
			// when both operands are linear; otherwise recurse.
			lLin := exprIsLinear(b.Left)
			rLin := exprIsLinear(b.Right)
			if lLin && rLin && (b.Op == predicate.OpMul || b.Op == predicate.OpDiv) {
				return e.virtualize(b), nil
			}
			l, err := rewriteExpr(b.Left)
			if err != nil {
				return nil, err
			}
			r, err := rewriteExpr(b.Right)
			if err != nil {
				return nil, err
			}
			nb := &predicate.BinaryExpr{Op: b.Op, Left: l, Right: r}
			if _, err := predicate.Linearize(nb); err != nil {
				// Still non-linear after virtualizing children (e.g. a
				// product of products): virtualize the whole node.
				return e.virtualize(nb), nil
			}
			return nb, nil
		default:
			return nil, fmt.Errorf("%w: non-linear expression %q", ErrUnsupported, x.String())
		}
	}
	var rewrite func(p predicate.Predicate) (predicate.Predicate, error)
	rewrite = func(p predicate.Predicate) (predicate.Predicate, error) {
		switch x := p.(type) {
		case *predicate.Compare:
			l, err := rewriteExpr(x.Left)
			if err != nil {
				return nil, err
			}
			r, err := rewriteExpr(x.Right)
			if err != nil {
				return nil, err
			}
			return &predicate.Compare{Op: x.Op, Left: l, Right: r}, nil
		case *predicate.And:
			ps := make([]predicate.Predicate, len(x.Preds))
			for i, q := range x.Preds {
				var err error
				if ps[i], err = rewrite(q); err != nil {
					return nil, err
				}
			}
			return &predicate.And{Preds: ps}, nil
		case *predicate.Or:
			ps := make([]predicate.Predicate, len(x.Preds))
			for i, q := range x.Preds {
				var err error
				if ps[i], err = rewrite(q); err != nil {
					return nil, err
				}
			}
			return &predicate.Or{Preds: ps}, nil
		case *predicate.Not:
			inner, err := rewrite(x.P)
			if err != nil {
				return nil, err
			}
			return &predicate.Not{P: inner}, nil
		case *predicate.Literal:
			return x, nil
		default:
			panic(fmt.Sprintf("sia: unknown predicate %T", p))
		}
	}
	out, err := rewrite(p)
	if err != nil {
		return nil, err
	}
	// A column absorbed into a virtual column must not occur outside it.
	for _, c := range outsideCols {
		if e.virtualCols[c] {
			return nil, fmt.Errorf("%w: column %q is used both inside and outside a non-linear term", ErrUnsupported, c)
		}
	}
	return out, nil
}

func exprIsLinear(x predicate.Expr) bool {
	_, err := predicate.Linearize(x)
	return err == nil
}

// virtualize assigns (or reuses) a virtual column for a non-linear
// expression. The virtual column is integer-sorted when every constituent
// column is integral and the operator is multiplication; division and real
// operands make it real-sorted.
func (e *encoder) virtualize(x *predicate.BinaryExpr) *predicate.ColumnRef {
	key := x.String()
	if v, ok := e.virtual[key]; ok {
		return v
	}
	typ := predicate.TypeInteger
	if x.Op == predicate.OpDiv {
		typ = predicate.TypeDouble
	}
	for _, c := range predicate.ExprColumns(x, nil) {
		if e.schema != nil {
			if col, ok := e.schema.Lookup(c); ok && !col.Type.Integral() {
				typ = predicate.TypeDouble
			}
		}
		e.virtualCols[c] = true
	}
	e.nextVirtual++
	v := predicate.Col(fmt.Sprintf("$virt%d", e.nextVirtual), typ)
	e.virtual[v.Name] = v
	e.virtual[key] = v
	return v
}

// linearTerm converts a linear predicate expression to an SMT term.
func (e *encoder) linearTerm(x predicate.Expr) (*smt.Term, error) {
	lin, err := predicate.Linearize(x)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	t := smt.NewTerm(lin.Const)
	for _, col := range lin.Columns() {
		t.AddVar(e.colVar(col), lin.Coeffs[col])
	}
	return t, nil
}

// compareFormula builds the SMT atom for l op r.
func (e *encoder) compareFormula(op predicate.CmpOp, l, r predicate.Expr) (smt.Formula, error) {
	lt, err := e.linearTerm(l)
	if err != nil {
		return nil, err
	}
	rt, err := e.linearTerm(r)
	if err != nil {
		return nil, err
	}
	switch op {
	case predicate.CmpLT:
		return smt.LT(lt, rt), nil
	case predicate.CmpGT:
		return smt.GT(lt, rt), nil
	case predicate.CmpLE:
		return smt.LE(lt, rt), nil
	case predicate.CmpGE:
		return smt.GE(lt, rt), nil
	case predicate.CmpEQ:
		return smt.EQ(lt, rt), nil
	case predicate.CmpNE:
		return smt.NE(lt, rt), nil
	default:
		panic(fmt.Sprintf("sia: unknown comparison %v", op))
	}
}

// Encode translates a (pre-rewritten, linear) predicate into an SMT formula
// under the two-valued encoding used for sample generation: every column is
// assumed non-NULL, because generated training tuples are always concrete
// (§5.2: "In other procedures associated with generating training samples,
// it uses an alternate encoding scheme with only the first variable").
func (e *encoder) Encode(p predicate.Predicate) (smt.Formula, error) {
	switch x := p.(type) {
	case *predicate.Compare:
		return e.compareFormula(x.Op, x.Left, x.Right)
	case *predicate.And:
		fs := make([]smt.Formula, 0, len(x.Preds))
		for _, q := range x.Preds {
			f, err := e.Encode(q)
			if err != nil {
				return nil, err
			}
			fs = append(fs, f)
		}
		return smt.NewAnd(fs...), nil
	case *predicate.Or:
		fs := make([]smt.Formula, 0, len(x.Preds))
		for _, q := range x.Preds {
			f, err := e.Encode(q)
			if err != nil {
				return nil, err
			}
			fs = append(fs, f)
		}
		return smt.NewOr(fs...), nil
	case *predicate.Not:
		inner, err := e.Encode(x.P)
		if err != nil {
			return nil, err
		}
		return smt.NewNot(inner), nil
	case *predicate.Literal:
		return smt.Bool(x.B), nil
	default:
		panic(fmt.Sprintf("sia: unknown predicate %T", p))
	}
}

// EncodeIsTrue translates a predicate into the three-valued-logic encoding
// of [Zhou et al., PVLDB'19] used by Verify (§5.2): each nullable column c
// has an auxiliary 0/1 variable null(c), a comparison is TRUE only when all
// its columns are non-NULL and the relation holds, and AND/OR/NOT follow
// Kleene semantics. The returned formula holds exactly when the predicate
// evaluates to TRUE (not FALSE, not NULL).
func (e *encoder) EncodeIsTrue(p predicate.Predicate) (smt.Formula, error) {
	return e.encode3VL(p, true)
}

func (e *encoder) encode3VL(p predicate.Predicate, wantTrue bool) (smt.Formula, error) {
	switch x := p.(type) {
	case *predicate.Compare:
		atom, err := e.compareFormula(x.Op, x.Left, x.Right)
		if err != nil {
			return nil, err
		}
		if !wantTrue {
			atom = smt.NewNot(atom)
		}
		fs := []smt.Formula{}
		for _, c := range e.nullableColumns(x) {
			// null(c) = 0.
			fs = append(fs, smt.EQ(smt.VarTerm(nullVar(c)), smt.ConstTerm(0)))
		}
		fs = append(fs, atom)
		return smt.NewAnd(fs...), nil
	case *predicate.And:
		fs := make([]smt.Formula, 0, len(x.Preds))
		for _, q := range x.Preds {
			f, err := e.encode3VL(q, wantTrue)
			if err != nil {
				return nil, err
			}
			fs = append(fs, f)
		}
		if wantTrue {
			// AND is TRUE iff all conjuncts are TRUE.
			return smt.NewAnd(fs...), nil
		}
		// AND is FALSE iff some conjunct is FALSE.
		return smt.NewOr(fs...), nil
	case *predicate.Or:
		fs := make([]smt.Formula, 0, len(x.Preds))
		for _, q := range x.Preds {
			f, err := e.encode3VL(q, wantTrue)
			if err != nil {
				return nil, err
			}
			fs = append(fs, f)
		}
		if wantTrue {
			return smt.NewOr(fs...), nil
		}
		return smt.NewAnd(fs...), nil
	case *predicate.Not:
		// NOT p is TRUE iff p is FALSE, and vice versa.
		return e.encode3VL(x.P, !wantTrue)
	case *predicate.Literal:
		return smt.Bool(x.B == wantTrue), nil
	default:
		panic(fmt.Sprintf("sia: unknown predicate %T", p))
	}
}

// nullableColumns returns the columns of a comparison that may be NULL
// (columns marked NotNull in the schema are skipped, which keeps the
// verification formula small for NOT NULL catalogs like TPC-H).
func (e *encoder) nullableColumns(c *predicate.Compare) []string {
	var out []string
	seen := map[string]bool{}
	for _, name := range predicate.ExprColumns(c.Left, predicate.ExprColumns(c.Right, nil)) {
		if seen[name] {
			continue
		}
		seen[name] = true
		if e.schema != nil {
			if col, ok := e.schema.Lookup(name); ok && col.NotNull {
				continue
			}
		}
		out = append(out, name)
	}
	return out
}

// nullDomain constrains every null indicator to {0, 1}.
func nullDomain(cols []string) smt.Formula {
	fs := make([]smt.Formula, 0, 2*len(cols))
	for _, c := range cols {
		nv := smt.VarTerm(nullVar(c))
		fs = append(fs, smt.GE(nv.Clone(), smt.ConstTerm(0)), smt.LE(nv.Clone(), smt.ConstTerm(1)))
	}
	return smt.NewAnd(fs...)
}

// ratToValue converts a model value to a predicate Value for the column's
// type, rounding only when the column is real-sorted (integral sorts always
// receive integral rationals from the solver).
func ratToValue(r *big.Rat, t predicate.Type) predicate.Value {
	if t.Integral() {
		return predicate.IntVal(r.Num().Int64())
	}
	f, _ := r.Float64()
	return predicate.RealVal(f)
}
