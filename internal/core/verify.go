package core

import (
	"context"

	"sia/internal/predicate"
	"sia/internal/smt"
)

// VerifyReduction reports whether candidate is a valid dimensionality
// reduction of p under three-valued logic (Def. 2): every tuple p accepts,
// candidate accepts. It is the standalone form of the loop's Verify step,
// usable to check hand-written rewrites. It is equivalent to
// VerifyReductionContext with context.Background().
func VerifyReduction(p, candidate predicate.Predicate, schema *predicate.Schema) (bool, error) {
	return VerifyReductionContext(context.Background(), p, candidate, schema)
}

// VerifyReductionContext is VerifyReduction honoring ctx: cancellation
// aborts the solver within one elimination step and returns an error
// matching ErrTimeout; a solver budget overrun returns an error matching
// ErrBudget.
func VerifyReductionContext(ctx context.Context, p, candidate predicate.Predicate, schema *predicate.Schema) (bool, error) {
	enc := newEncoder(schema)
	rw, err := enc.rewriteNonLinear(p)
	if err != nil {
		return false, err
	}
	v, err := newVerifier(smt.New(), enc, rw)
	if err != nil {
		return false, err
	}
	ok, err := v.Verify(ctx, candidate)
	return ok, publicErr(err)
}

// verifier decides whether a candidate predicate is a valid dimensionality
// reduction of the original predicate, i.e. whether p ⟹ p₁ (§5.5).
//
// Verification uses the three-valued-logic encoding (§5.2): a tuple may
// carry NULLs, and a predicate "accepts" a tuple only when it evaluates to
// TRUE (not NULL). p ⟹ p₁ therefore means: no tuple exists on which p is
// TRUE but p₁ is not TRUE. The check feeds p ∧ ¬p₁ (in the 3VL encoding)
// to the solver; unsatisfiability proves validity.
type verifier struct {
	solver *smt.Solver
	enc    *encoder
	// pIsTrue is the cached 3VL encoding of the original predicate.
	pIsTrue smt.Formula
	// domain constrains the NULL indicator variables to {0,1}.
	domain smt.Formula
}

func newVerifier(solver *smt.Solver, enc *encoder, p predicate.Predicate) (*verifier, error) {
	isTrue, err := enc.EncodeIsTrue(p)
	if err != nil {
		return nil, err
	}
	var nullable []string
	for _, c := range predicate.Columns(p) {
		if enc.schema != nil {
			if col, ok := enc.schema.Lookup(c); ok && col.NotNull {
				continue
			}
		}
		nullable = append(nullable, c)
	}
	return &verifier{
		solver:  solver,
		enc:     enc,
		pIsTrue: isTrue,
		domain:  nullDomain(nullable),
	}, nil
}

// Verify reports whether candidate is a valid reduction of the original
// predicate (Def. 2: every tuple accepted by p is accepted by candidate).
func (v *verifier) Verify(ctx context.Context, candidate predicate.Predicate) (bool, error) {
	candTrue, err := v.enc.EncodeIsTrue(candidate)
	if err != nil {
		return false, err
	}
	counter := smt.NewAnd(v.pIsTrue, smt.NewNot(candTrue), v.domain)
	sat, err := v.solver.SatisfiableCtx(ctx, counter)
	if err != nil {
		return false, err
	}
	return !sat, nil
}
