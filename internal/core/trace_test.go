package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"sia/internal/obs"
	"sia/internal/predtest"
)

// TestSynthesizeEmitsTrace runs the paper's walkthrough with a tracer
// attached and checks the JSONL structure: one start span, one iteration
// and one verify span per loop iteration, and a final done span carrying
// the outcome and the Table-3 timing breakdown.
func TestSynthesizeEmitsTrace(t *testing.T) {
	s := intSchema("a1", "a2", "b1")
	p := predtest.MustParse("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0", s)
	cols := []string{"a1", "a2"}

	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	res, err := Synthesize(p, cols, s, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if cerr := tr.Close(); cerr != nil {
		t.Fatalf("tracer close: %v", cerr)
	}

	byEvent := map[string][]map[string]any{}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if uerr := json.Unmarshal(sc.Bytes(), &m); uerr != nil {
			t.Fatalf("trace line is not valid JSON: %v\n%s", uerr, sc.Text())
		}
		ev := m["event"].(string)
		byEvent[ev] = append(byEvent[ev], m)
	}
	if len(byEvent[obs.EvSynthesisStart]) != 1 {
		t.Fatalf("want 1 start span, got %d", len(byEvent[obs.EvSynthesisStart]))
	}
	if got := len(byEvent[obs.EvIteration]); got != res.Iterations {
		t.Errorf("iteration spans = %d, want %d (one per CEGIS iteration)", got, res.Iterations)
	}
	if got := len(byEvent[obs.EvVerify]); got != res.Iterations {
		t.Errorf("verify spans = %d, want %d", got, res.Iterations)
	}
	done := byEvent[obs.EvSynthesisDone]
	if len(done) != 1 {
		t.Fatalf("want 1 done span, got %d", len(done))
	}
	d := done[0]
	if d["verdict"] != "valid" {
		t.Errorf("done verdict = %v, want valid", d["verdict"])
	}
	if res.Optimal && d["optimal"] != true {
		t.Errorf("done span lost optimality: %v", d)
	}
	if d["pred"] == nil || d["pred"] == "" {
		t.Errorf("done span missing predicate: %v", d)
	}
	if int(d["iter"].(float64)) != res.Iterations {
		t.Errorf("done iter = %v, want %d", d["iter"], res.Iterations)
	}
}

// TestNilTracerSynthesisHotPathZeroAlloc guards the acceptance criterion:
// with tracing disabled (nil tracer), the per-iteration trace hooks on the
// synthesis hot path perform zero allocations.
func TestNilTracerSynthesisHotPathZeroAlloc(t *testing.T) {
	l := &synthesisLoop{opts: Options{}} // nil Tracer: tracing off
	l.ts = make([]Sample, 3)
	l.fs = make([]Sample, 4)
	allocs := testing.AllocsPerRun(100, func() {
		l.traceSamples("true", 10, false, time.Millisecond)
		l.traceIteration(2, 3, time.Millisecond)
		l.traceVerify(2, true, time.Millisecond)
		l.traceCounterexamples(2, "false", 5, false, time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %v per iteration, want 0", allocs)
	}
}
