package core

import (
	"context"
	"errors"
	"testing"

	"sia/internal/predicate"
	"sia/internal/predtest"
	"sia/internal/smt"
)

func intSchema(names ...string) *predicate.Schema {
	cols := make([]predicate.Column, len(names))
	for i, n := range names {
		cols[i] = predicate.Column{Name: n, Type: predicate.TypeInteger, NotNull: true}
	}
	return predicate.NewSchema(cols...)
}

func nullableSchema(names ...string) *predicate.Schema {
	cols := make([]predicate.Column, len(names))
	for i, n := range names {
		cols[i] = predicate.Column{Name: n, Type: predicate.TypeInteger}
	}
	return predicate.NewSchema(cols...)
}

func TestEncodePlainMatchesEval(t *testing.T) {
	s := intSchema("a", "b", "c")
	cases := []string{
		"a + 10 > b + 20 AND b + 10 > 20",
		"a - b < 20 AND c - a < a - b + 10 AND b < 0",
		"a = b OR NOT (a < c)",
		"2*a - 3*b <= c + 4",
		"(a + b) / 2 >= c",
	}
	solver := smt.New()
	for _, src := range cases {
		p := predtest.MustParse(src, s)
		enc := newEncoder(s)
		f, err := enc.Encode(p)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		// The formula and the predicate must agree on concrete tuples.
		for a := int64(-3); a <= 3; a += 3 {
			for b := int64(-2); b <= 2; b += 2 {
				for c := int64(-25); c <= 25; c += 25 {
					tu := predicate.Tuple{"a": predicate.IntVal(a), "b": predicate.IntVal(b), "c": predicate.IntVal(c)}
					want := predicate.Satisfies(p, tu)
					g := f
					for name, val := range map[string]int64{"a": a, "b": b, "c": c} {
						g = smt.Subst(g, smt.IntVar(name), smt.ConstTerm(val))
					}
					sat, err := solver.Satisfiable(g)
					if err != nil {
						t.Fatalf("%s: %v", src, err)
					}
					if sat != want {
						t.Fatalf("%s at (%d,%d,%d): formula=%v eval=%v", src, a, b, c, sat, want)
					}
				}
			}
		}
	}
}

func TestEncodeVirtualColumns(t *testing.T) {
	s := intSchema("a", "b", "c")
	// a*b is non-linear but a, b appear nowhere else: a virtual column
	// stands in for the product (§5.2).
	p := predtest.MustParse("a * b > 10 AND c < 5", s)
	enc := newEncoder(s)
	rw, err := enc.rewriteNonLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	cols := predicate.Columns(rw)
	for _, c := range cols {
		if c == "a" || c == "b" {
			t.Fatalf("columns of the product should be gone, got %v", cols)
		}
	}
	if _, err := enc.Encode(rw); err != nil {
		t.Fatal(err)
	}
	// Reusing the same product maps to the same virtual column.
	p2 := predtest.MustParse("a * b > 10 AND a * b < 100", s)
	enc2 := newEncoder(s)
	rw2, err := enc2.rewriteNonLinear(p2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(predicate.Columns(rw2)); got != 1 {
		t.Fatalf("the same product should map to one virtual column, got %v", predicate.Columns(rw2))
	}
}

func TestEncodeNonLinearRejected(t *testing.T) {
	s := intSchema("a", "b", "c")
	// a occurs both inside the product and on its own: substitution
	// would change semantics, so the predicate is unsupported.
	p := predtest.MustParse("a * b > 10 AND a > 2", s)
	enc := newEncoder(s)
	if _, err := enc.rewriteNonLinear(p); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("expected ErrUnsupported, got %v", err)
	}
}

func TestEncode3VLNullability(t *testing.T) {
	// p = (a > 0) OR (b = b) is TRUE whenever b is non-NULL. The candidate
	// a = a is TRUE only when a is non-NULL. With nullable columns the
	// implication fails (b=0, a=NULL); with NOT NULL columns it holds.
	solver := smt.New()
	for _, tc := range []struct {
		schema *predicate.Schema
		want   bool
	}{
		{intSchema("a", "b"), true},
		{nullableSchema("a", "b"), false},
	} {
		p := predtest.MustParse("a > 0 OR b = b", tc.schema)
		cand := predtest.MustParse("a = a", tc.schema)
		enc := newEncoder(tc.schema)
		v, err := newVerifier(solver, enc, p)
		if err != nil {
			t.Fatal(err)
		}
		valid, err := v.Verify(context.Background(), cand)
		if err != nil {
			t.Fatal(err)
		}
		if valid != tc.want {
			t.Fatalf("3VL validity with schema %v: got %v, want %v", tc.schema.Columns(), valid, tc.want)
		}
	}
}

func TestVerifyBasic(t *testing.T) {
	s := intSchema("a", "b")
	p := predtest.MustParse("a > 0 AND b > 0", s)
	solver := smt.New()
	enc := newEncoder(s)
	v, err := newVerifier(solver, enc, p)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := v.Verify(context.Background(), predtest.MustParse("a > -5", s))
	if err != nil {
		t.Fatal(err)
	}
	if !valid {
		t.Fatal("a > -5 is implied by a > 0 AND b > 0")
	}
	valid, err = v.Verify(context.Background(), predtest.MustParse("a > 5", s))
	if err != nil {
		t.Fatal(err)
	}
	if valid {
		t.Fatal("a > 5 is not implied by a > 0")
	}
	// Validity is preserved with NULLs when the implication is forced by
	// a conjunct: p TRUE requires a, b non-NULL.
	ns := nullableSchema("a", "b")
	pn := predtest.MustParse("a > 0 AND b > 0", ns)
	encN := newEncoder(ns)
	vn, err := newVerifier(solver, encN, pn)
	if err != nil {
		t.Fatal(err)
	}
	valid, err = vn.Verify(context.Background(), predtest.MustParse("a > -5", ns))
	if err != nil {
		t.Fatal(err)
	}
	if !valid {
		t.Fatal("conjunctive p forces non-NULL; a > -5 must stay valid")
	}
}

func TestVerifyPaperMotivatingRewrite(t *testing.T) {
	// §2: the three inferred predicates of Q2 are valid reductions of
	// Q1's predicate; a too-strong variant is not.
	s := predicate.NewSchema(
		predicate.Column{Name: "l_shipdate", Type: predicate.TypeDate, NotNull: true},
		predicate.Column{Name: "l_commitdate", Type: predicate.TypeDate, NotNull: true},
		predicate.Column{Name: "o_orderdate", Type: predicate.TypeDate, NotNull: true},
	)
	p := predtest.MustParse(`l_shipdate - o_orderdate < 20
		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
		AND o_orderdate < DATE '1993-06-01'`, s)
	solver := smt.New()
	enc := newEncoder(s)
	v, err := newVerifier(solver, enc, p)
	if err != nil {
		t.Fatal(err)
	}
	validOnes := []string{
		"l_shipdate < DATE '1993-06-20'",
		"l_commitdate < DATE '1993-07-18'",
		"l_commitdate - l_shipdate < 29",
	}
	for _, src := range validOnes {
		ok, err := v.Verify(context.Background(), predtest.MustParse(src, s))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s should be a valid reduction", src)
		}
	}
	invalid := []string{
		"l_shipdate < DATE '1993-06-19'",   // too strong by one day
		"l_commitdate - l_shipdate < 28",   // too strong
		"l_commitdate > DATE '1993-01-01'", // unrelated direction
	}
	for _, src := range invalid {
		ok, err := v.Verify(context.Background(), predtest.MustParse(src, s))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("%s should NOT be a valid reduction", src)
		}
	}
}
