// Package obs is Sia's observability layer: a stdlib-only,
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) exported in Prometheus text exposition format and expvar
// JSON, plus a structured JSONL tracer for CEGIS-loop events.
//
// The paper's evaluation (§6, Table 3) hinges on where synthesis time goes
// — solver sampling vs. SVM fitting vs. verification — and this package is
// what makes those phases visible in a running service: internal/smt,
// internal/core, internal/cache and internal/engine record into metrics
// owned by the Default registry (or a caller-supplied one), and cmd/siad
// serves the result at GET /metrics.
//
// Instruments are lock-free on the hot path (atomic adds; the histogram's
// sum is a CAS loop) and never allocate per update. The Tracer is nil-safe:
// a nil *Tracer's Emit is a no-op that performs zero allocations, so
// instrumented loops pay nothing when tracing is off.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
// memo: a monotonic metrics counter is write-only to the code being
// certified; memoized results never read it back.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets, in the
// Prometheus style: bucket i counts observations <= Bounds[i], with an
// implicit +Inf bucket at the end. All methods are safe for concurrent use
// and allocation-free.
//
// Reads (Snapshot) are not atomic with respect to concurrent observations:
// a scrape racing an Observe may see the count incremented before the sum.
// The skew is at most the in-flight observations, which is the usual
// contract for scraped metrics.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram returns a histogram over the given strictly increasing
// upper bounds. An empty bounds slice yields a histogram with only the
// +Inf bucket (still a valid count/sum pair).
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
// memo: a metrics histogram is write-only to the code being certified;
// memoized results never read it back.
func (h *Histogram) Observe(v float64) {
	// First bound >= v: the bucket whose "le" the observation falls under.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	// cancel: lock-free float accumulation; the CAS retries only under
	// concurrent writers and each retry makes global progress.
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds ("le" values), excluding +Inf.
	Bounds []float64
	// Counts are per-bucket (non-cumulative) counts, one per bound plus a
	// final +Inf bucket.
	Counts []uint64
	// Count and Sum are the total observation count and value sum.
	Count uint64
	Sum   float64
}

// Snapshot returns the histogram's current buckets, count and sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// DurationBuckets are the default bucket bounds (in seconds) for latency
// histograms, spanning 100µs to 10s — solver calls sit at the bottom of
// the range, whole synthesis runs at the top.
func DurationBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// SizeBuckets are power-of-two bucket bounds for small-count histograms —
// batch group sizes, fan-out widths — spanning 1 to 256.
func SizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}
