package obs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ErrAlreadyRegistered is returned (wrapped) when a collector-function
// metric is registered under a name+label series that already exists.
// Instrument-returning registrations (Counter, Gauge, Histogram) never hit
// it: they return the existing instrument instead.
var ErrAlreadyRegistered = errors.New("obs: metric already registered")

// Label is one metric dimension, e.g. {Key: "op", Value: "filter"}. Series
// of the same metric name with different label values are distinct
// instruments that share one HELP/TYPE header in the exposition.
type Label struct {
	Key, Value string
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		panic("obs: unknown metric kind")
	}
}

// series is one (name, labels) instrument. Exactly one of the value fields
// is set; fn-backed series are read at scrape time.
type series struct {
	labels  []Label
	key     string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// value returns the series' current scalar value (counters and gauges).
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return float64(s.gauge.Value())
	case s.fn != nil:
		return s.fn()
	default:
		return 0
	}
}

// family groups every series sharing a metric name.
type family struct {
	name, help string
	kind       kind
	bounds     []float64 // histogram bucket spec, for conflict detection
	series     []*series
	byKey      map[string]*series
}

// Registry is a set of named metrics. All methods are safe for concurrent
// use. Registration is get-or-register: asking twice for the same
// name+labels returns the same instrument, so packages can declare their
// metrics in var blocks without coordination. Registering a name under a
// different kind (or a histogram under different buckets) is a programmer
// error and panics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the instrumented internal
// packages (smt, core, engine) record into. cmd/siad serves it at
// /metrics alongside its own per-server registry.
func Default() *Registry { return defaultRegistry }

// labelKey canonicalizes a label set: sorted by key, rendered once.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(escapeLabelValue(l.Value))
	}
	return b.String()
}

// lookup returns (creating if needed) the family for name, enforcing kind
// consistency. Caller holds r.mu.
func (r *Registry) lookup(name, help string, k kind, bounds []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, bounds: append([]float64(nil), bounds...), byKey: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s", name, f.kind, k))
	}
	if k == kindHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: histogram %q already registered with different buckets", name))
	}
	return f
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the counter registered under name+labels, creating and
// registering it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter, nil)
	key := labelKey(labels)
	if s, ok := f.byKey[key]; ok {
		if s.counter == nil {
			panic(fmt.Sprintf("obs: metric %q{%s} is function-backed, not an instrument", name, key))
		}
		return s.counter
	}
	s := &series{labels: append([]Label(nil), labels...), key: key, counter: &Counter{}}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s.counter
}

// Gauge returns the gauge registered under name+labels, creating and
// registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge, nil)
	key := labelKey(labels)
	if s, ok := f.byKey[key]; ok {
		if s.gauge == nil {
			panic(fmt.Sprintf("obs: metric %q{%s} is function-backed, not an instrument", name, key))
		}
		return s.gauge
	}
	s := &series{labels: append([]Label(nil), labels...), key: key, gauge: &Gauge{}}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s.gauge
}

// Histogram returns the histogram registered under name+labels with the
// given bucket bounds, creating and registering it on first use. Asking
// again with different bounds panics.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogram, bounds)
	key := labelKey(labels)
	if s, ok := f.byKey[key]; ok {
		return s.hist
	}
	s := &series{labels: append([]Label(nil), labels...), key: key, hist: NewHistogram(bounds)}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for components that already keep their own counters
// (e.g. a cache instance exposing its hit count). Unlike the instrument
// forms, a duplicate series is an error: two closures cannot share state.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) error {
	return r.registerFunc(name, help, kindCounter, fn, labels)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) error {
	return r.registerFunc(name, help, kindGauge, fn, labels)
}

func (r *Registry) registerFunc(name, help string, k kind, fn func() float64, labels []Label) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, byKey: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != k {
		return fmt.Errorf("%w: %q as %s, requested %s", ErrAlreadyRegistered, name, f.kind, k)
	}
	key := labelKey(labels)
	if _, ok := f.byKey[key]; ok {
		return fmt.Errorf("%w: %q{%s}", ErrAlreadyRegistered, name, key)
	}
	s := &series{labels: append([]Label(nil), labels...), key: key, fn: fn}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return nil
}

// sortedFamilies returns the families in name order with each family's
// series in label-key order — the deterministic exposition order. Caller
// holds r.mu.
func (r *Registry) sortedFamilies() []*family {
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	out := make([]*family, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
		out = append(out, f)
	}
	return out
}
