package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Trace event names. One synthesis run emits one EvSynthesisStart, then per
// CEGIS iteration one EvIteration (fit stats), one EvVerify (verdict) and
// usually one EvCounterexamples (sample generation), and finally one
// EvSynthesisDone carrying the outcome and the Table-3 timing breakdown.
// EvSamples covers the initial sample generation before the loop;
// EvCache is emitted by the result cache for hit/miss/coalesce outcomes.
// EvQEMemo is emitted by the SMT solver's quantifier-elimination memo for
// each outermost elimination, with Outcome "hit" or "miss".
const (
	EvSynthesisStart  = "synthesis_start"
	EvSamples         = "samples"
	EvIteration       = "iteration"
	EvVerify          = "verify"
	EvCounterexamples = "counterexamples"
	EvSynthesisDone   = "synthesis_done"
	EvCache           = "cache"
	EvQEMemo          = "qe_memo"
)

// Span is one trace event. Event is required; every other field is emitted
// only when non-zero, so each event kind pays for exactly the fields it
// sets. Emit stamps the monotonic timestamp and sequence number.
type Span struct {
	// Event is the event name (one of the Ev constants).
	Event string
	// Iter is the 1-based CEGIS iteration, when the event belongs to one.
	Iter int
	// TrueSamples and FalseSamples are training-set sizes.
	TrueSamples, FalseSamples int
	// Planes is the number of half-planes in the fitted SVM disjunction.
	Planes int
	// Verdict is "valid" or "invalid" for verify events, and the final
	// validity for synthesis_done.
	Verdict string
	// Kind distinguishes sample kinds: "true" or "false".
	Kind string
	// Count is a generated-sample count.
	Count int
	// Exhausted marks a sample space proven fully enumerated.
	Exhausted bool
	// Optimal marks a synthesis_done whose predicate was proven optimal.
	Optimal bool
	// GaveUp is the core.GiveUpReason string for early termination.
	GaveUp string
	// Outcome is the cache outcome: "hit", "miss" or "coalesced".
	Outcome string
	// Pred is a predicate in SQL syntax (candidate or result). Callers
	// should build it only when Enabled() — String() allocates.
	Pred string
	// Cols is the comma-joined target column set.
	Cols string
	// Err is an error message.
	Err string
	// Dur is the duration of the step the event describes.
	Dur time.Duration
	// Gen, Learn and Validate are the Table-3 phase totals, on
	// synthesis_done events.
	Gen, Learn, Validate time.Duration
}

// Tracer records Spans as JSON lines on an io.Writer: one object per line,
// timestamps in microseconds measured on the monotonic clock since the
// tracer was created, and a per-tracer sequence number so merged traces
// remain sortable. All methods are nil-safe and safe for concurrent use;
// a nil *Tracer is the canonical "tracing off" value and its Emit performs
// no work and no allocations.
//
// Writes are buffered. A background goroutine flushes the buffer every
// flushInterval so a long-running trace is readable while the process
// lives; Close stops that goroutine, flushes, and reports the first write
// error. Close does not close the underlying writer.
type Tracer struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	buf   []byte
	seq   uint64
	err   error
	start time.Time

	done chan struct{}
	wg   sync.WaitGroup
}

const flushInterval = 500 * time.Millisecond

// NewTracer returns a tracer writing JSONL spans to w.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{
		bw:    bufio.NewWriterSize(w, 1<<16),
		buf:   make([]byte, 0, 512),
		start: time.Now(),
		done:  make(chan struct{}),
	}
	t.wg.Add(1)
	go t.flushLoop()
	return t
}

// flushLoop periodically flushes the write buffer until Close.
func (t *Tracer) flushLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(flushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-ticker.C:
			t.mu.Lock()
			if ferr := t.bw.Flush(); ferr != nil && t.err == nil {
				t.err = ferr
			}
			t.mu.Unlock()
		}
	}
}

// Enabled reports whether spans are being recorded. Call it before
// building expensive span fields (predicate strings, joined column lists).
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one span. On a nil tracer it is a no-op that performs zero
// allocations, so call sites on hot paths need no separate guard.
// memo: tracing is a write-only observability channel; the code being
// certified never reads a span back, so the clock, lock and buffered
// write are invisible to memoized results.
//
// sia:hotpath
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	us := time.Since(t.start).Microseconds()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	b := t.buf[:0]
	b = append(b, `{"event":`...)
	b = appendJSONString(b, s.Event)
	b = appendIntField(b, "seq", int64(t.seq))
	b = appendIntField(b, "t_us", us)
	if s.Iter != 0 {
		b = appendIntField(b, "iter", int64(s.Iter))
	}
	if s.TrueSamples != 0 {
		b = appendIntField(b, "true_samples", int64(s.TrueSamples))
	}
	if s.FalseSamples != 0 {
		b = appendIntField(b, "false_samples", int64(s.FalseSamples))
	}
	if s.Planes != 0 {
		b = appendIntField(b, "planes", int64(s.Planes))
	}
	if s.Verdict != "" {
		b = appendStringField(b, "verdict", s.Verdict)
	}
	if s.Kind != "" {
		b = appendStringField(b, "kind", s.Kind)
	}
	if s.Count != 0 {
		b = appendIntField(b, "count", int64(s.Count))
	}
	if s.Exhausted {
		b = append(b, `,"exhausted":true`...)
	}
	if s.Optimal {
		b = append(b, `,"optimal":true`...)
	}
	if s.GaveUp != "" {
		b = appendStringField(b, "gave_up", s.GaveUp)
	}
	if s.Outcome != "" {
		b = appendStringField(b, "outcome", s.Outcome)
	}
	if s.Pred != "" {
		b = appendStringField(b, "pred", s.Pred)
	}
	if s.Cols != "" {
		b = appendStringField(b, "cols", s.Cols)
	}
	if s.Err != "" {
		b = appendStringField(b, "err", s.Err)
	}
	if s.Dur != 0 {
		b = appendIntField(b, "dur_us", s.Dur.Microseconds())
	}
	if s.Gen != 0 {
		b = appendIntField(b, "gen_us", s.Gen.Microseconds())
	}
	if s.Learn != 0 {
		b = appendIntField(b, "learn_us", s.Learn.Microseconds())
	}
	if s.Validate != 0 {
		b = appendIntField(b, "validate_us", s.Validate.Microseconds())
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, werr := t.bw.Write(b); werr != nil && t.err == nil {
		t.err = werr
	}
}

// Flush forces buffered spans to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ferr := t.bw.Flush(); ferr != nil && t.err == nil {
		t.err = ferr
	}
	return t.err
}

// Close stops the background flusher, flushes buffered spans, and returns
// the first write error encountered over the tracer's lifetime. It does
// not close the underlying writer. Close is idempotent on a nil tracer
// only; a non-nil tracer must be closed once.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	close(t.done)
	t.wg.Wait()
	return t.Flush()
}

// appendIntField appends `,"key":v`.
func appendIntField(b []byte, key string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

// appendStringField appends `,"key":"escaped v"`.
func appendStringField(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return appendJSONString(b, v)
}

// appendJSONString appends v as a JSON string literal, escaping quotes,
// backslashes and control characters. Valid UTF-8 passes through.
// alloc: append-style builder; writes into the caller's reusable buffer
// and only grows it when capacity runs out (amortized across events).
func appendJSONString(b []byte, v string) []byte {
	b = append(b, '"')
	// goroutine: bounded — i advances by at least one byte per iteration.
	for i := 0; i < len(v); {
		c := v[i]
		switch {
		case c == '"':
			b = append(b, '\\', '"')
			i++
		case c == '\\':
			b = append(b, '\\', '\\')
			i++
		case c == '\n':
			b = append(b, '\\', 'n')
			i++
		case c == '\r':
			b = append(b, '\\', 'r')
			i++
		case c == '\t':
			b = append(b, '\\', 't')
			i++
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
			i++
		case c < utf8.RuneSelf:
			b = append(b, c)
			i++
		default:
			r, size := utf8.DecodeRuneInString(v[i:])
			if r == utf8.RuneError && size == 1 {
				b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
				i++
				break
			}
			b = append(b, v[i:i+size]...)
			i += size
		}
	}
	return append(b, '"')
}
