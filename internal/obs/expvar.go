package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
)

// snapshot returns the registry's metrics as a JSON-marshalable map:
// scalar series as numbers, histograms as {count, sum, buckets} objects.
// Series keys carry their labels in exposition syntax, so
// `sia_engine_operator_seconds{op="filter"}` is one key.
func (r *Registry) snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.series {
			key := f.name + renderLabels(s.labels, "", "")
			if f.kind != kindHistogram {
				out[key] = s.value()
				continue
			}
			snap := s.hist.Snapshot()
			buckets := make(map[string]uint64, len(snap.Counts))
			cum := uint64(0)
			for i, b := range snap.Bounds {
				cum += snap.Counts[i]
				buckets[formatValue(b)] = cum
			}
			cum += snap.Counts[len(snap.Counts)-1]
			buckets["+Inf"] = cum
			out[key] = map[string]any{
				"count":   snap.Count,
				"sum":     snap.Sum,
				"buckets": buckets,
			}
		}
	}
	return out
}

// WriteJSON writes the union of the given registries' metrics as one JSON
// object (the expvar-style export). Later registries win on (unexpected)
// key collisions.
func WriteJSON(w io.Writer, regs ...*Registry) error {
	merged := make(map[string]any)
	for _, r := range regs {
		for k, v := range r.snapshot() {
			merged[k] = v
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(merged)
}

// ExpvarVar adapts the registry to the expvar.Var interface, for callers
// that integrate with the standard /debug/vars page.
func (r *Registry) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return r.snapshot() })
}

var publishOnce sync.Once

// PublishExpvar publishes the Default registry under the expvar name
// "sia_metrics", once per process (expvar rejects duplicate names).
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("sia_metrics", Default().ExpvarVar())
	})
}
