package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"sia/internal/analysis"
)

// TestEmitIsAnnotatedHotPath ties the AllocsPerRun tests above to the
// static allocation budget: the zero-alloc guarantees they measure are only
// enforced repo-wide if Emit actually carries the // sia:hotpath marker the
// alloc-budget analyzer keys on.
func TestEmitIsAnnotatedHotPath(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "trace.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse trace.go: %v", err)
	}
	found := false
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != "Emit" || fd.Recv == nil {
			continue
		}
		found = true
		if fd.Doc == nil || !strings.Contains(fd.Doc.Text(), "sia:hotpath") {
			t.Errorf("Tracer.Emit lacks the // sia:hotpath annotation; the zero-alloc tests are not backed by static analysis")
		}
	}
	if !found {
		t.Fatal("no Tracer.Emit declaration found in trace.go")
	}
}

// TestObsPassesAllocBudget runs the alloc-budget analyzer over this package
// so a new allocation sneaking into Emit's cone fails here, next to the
// AllocsPerRun measurements, not only in the repo-wide lint.
func TestObsPassesAllocBudget(t *testing.T) {
	cfg := &analysis.Config{}
	pkgs, err := analysis.Load("../..", []string{"./internal/obs"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := analysis.Run(pkgs, []*analysis.Analyzer{analysis.AllocBudget(cfg)}, cfg)
	for _, f := range findings {
		t.Error(f.String())
	}
}
