package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric of every given registry in the
// Prometheus text exposition format (version 0.0.4), families in name
// order per registry. Metric names must be disjoint across the registries;
// a duplicated family would be emitted twice and rejected by the scraper.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	for _, r := range regs {
		if err := r.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) writePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	if f.kind != kindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels, "", ""), formatValue(s.value()))
		return err
	}
	snap := s.hist.Snapshot()
	cum := uint64(0)
	for i, b := range snap.Bounds {
		cum += snap.Counts[i]
		le := strconv.FormatFloat(b, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, "le", le), cum); err != nil {
			return err
		}
	}
	cum += snap.Counts[len(snap.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(s.labels, "", ""), formatValue(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels, "", ""), snap.Count)
	return err
}

// renderLabels renders a label set (plus an optional extra label, used for
// the histogram "le" dimension) as {k="v",...}, or "" when empty.
func renderLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes a HELP line per the exposition format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with special cases for infinities and NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
