package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	const workers, perWorker = 8, 1000
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(2)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	// Boundary values land in the bucket whose le equals them (le is <=).
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 1} // (-inf,1], (1,2], (2,5], (5,+inf)
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0.5+1+1.5+2+3+5+7 {
		t.Errorf("sum = %g", s.Sum)
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", s.Count, workers*perWorker)
	}
	want := float64(workers*perWorker) * 0.001
	if math.Abs(s.Sum-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", s.Sum, want)
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-increasing bounds")
		}
	}()
	NewHistogram([]float64{1, 1})
}

func TestRegistryGetOrRegister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("sia_test_total", "help")
	b := r.Counter("sia_test_total", "help")
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	l1 := r.Counter("sia_test_total", "help", Label{"op", "x"})
	l2 := r.Counter("sia_test_total", "help", Label{"op", "y"})
	if l1 == l2 {
		t.Error("distinct label values shared a counter")
	}
	h1 := r.Histogram("sia_test_seconds", "help", []float64{1, 2})
	h2 := r.Histogram("sia_test_seconds", "help", []float64{1, 2})
	if h1 != h2 {
		t.Error("same histogram series returned distinct instruments")
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("sia_conc_total", "help").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("sia_conc_total", "help").Value(); got != workers*200 {
		t.Errorf("counter = %d, want %d", got, workers*200)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("sia_kind_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge over counter")
		}
	}()
	r.Gauge("sia_kind_total", "help")
}

func TestRegistryHistogramBoundsConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("sia_hb_seconds", "help", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for conflicting bucket bounds")
		}
	}()
	r.Histogram("sia_hb_seconds", "help", []float64{1, 3})
}

func TestFuncMetricsAndDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.CounterFunc("sia_fn_total", "help", func() float64 { return 41 }); err != nil {
		t.Fatalf("CounterFunc: %v", err)
	}
	err := r.CounterFunc("sia_fn_total", "help", func() float64 { return 0 })
	if err == nil {
		t.Fatal("duplicate CounterFunc series did not error")
	}
	if !strings.Contains(err.Error(), "already registered") {
		t.Errorf("unexpected error: %v", err)
	}
	var sb strings.Builder
	if werr := WritePrometheus(&sb, r); werr != nil {
		t.Fatalf("WritePrometheus: %v", werr)
	}
	if !strings.Contains(sb.String(), "sia_fn_total 41") {
		t.Errorf("function metric missing from exposition:\n%s", sb.String())
	}
}
