package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerEmitsParseableJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Span{Event: EvSynthesisStart, Pred: `x > "quoted"` + "\nline2", Cols: "a,b"})
	tr.Emit(Span{Event: EvIteration, Iter: 1, TrueSamples: 10, FalseSamples: 12, Planes: 3, Dur: 1500 * time.Microsecond})
	tr.Emit(Span{Event: EvVerify, Iter: 1, Verdict: "invalid"})
	tr.Emit(Span{Event: EvSynthesisDone, Iter: 1, Verdict: "valid", Optimal: true,
		Gen: time.Millisecond, Learn: 2 * time.Millisecond, Validate: 3 * time.Millisecond})
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", len(lines)+1, err, sc.Text())
		}
		lines = append(lines, m)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if lines[0]["event"] != EvSynthesisStart || lines[0]["pred"] != `x > "quoted"`+"\nline2" {
		t.Errorf("start span wrong: %v", lines[0])
	}
	if lines[1]["iter"].(float64) != 1 || lines[1]["planes"].(float64) != 3 || lines[1]["dur_us"].(float64) != 1500 {
		t.Errorf("iteration span wrong: %v", lines[1])
	}
	if lines[3]["optimal"] != true || lines[3]["validate_us"].(float64) != 3000 {
		t.Errorf("done span wrong: %v", lines[3])
	}

	// seq strictly increasing, t_us monotone non-decreasing.
	for i := 1; i < len(lines); i++ {
		if lines[i]["seq"].(float64) != lines[i-1]["seq"].(float64)+1 {
			t.Errorf("seq not sequential at line %d", i)
		}
		if lines[i]["t_us"].(float64) < lines[i-1]["t_us"].(float64) {
			t.Errorf("t_us not monotone at line %d", i)
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Emit(Span{Event: EvIteration, Iter: i + 1})
			}
		}()
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("interleaved write corrupted line %d: %v", n+1, err)
		}
		n++
	}
	if n != workers*perWorker {
		t.Errorf("got %d lines, want %d", n, workers*perWorker)
	}
}

func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Emit(Span{Event: EvIteration, Iter: 3, TrueSamples: 10, Verdict: "valid"})
	})
	if allocs != 0 {
		t.Errorf("nil Emit allocates %v per run, want 0", allocs)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
}

func TestEnabledTracerSteadyStateZeroAlloc(t *testing.T) {
	// After warm-up the append buffer is reused, so even enabled emits
	// should not allocate.
	tr := NewTracer(&countingWriter{})
	defer tr.Close()
	tr.Emit(Span{Event: EvIteration, Iter: 1, Pred: strings.Repeat("x", 400)})
	allocs := testing.AllocsPerRun(100, func() {
		tr.Emit(Span{Event: EvIteration, Iter: 2, TrueSamples: 11, FalseSamples: 13})
	})
	if allocs != 0 {
		t.Errorf("enabled Emit allocates %v per run after warm-up, want 0", allocs)
	}
}

// countingWriter discards writes without growing memory.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

func TestTracerCloseStopsFlusher(t *testing.T) {
	before := runtime.NumGoroutine()
	var bufs [8]bytes.Buffer
	for i := range bufs {
		tr := NewTracer(&bufs[i])
		tr.Emit(Span{Event: EvCache, Outcome: "hit"})
		if err := tr.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	// Give the runtime a moment to retire exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestTracerBackgroundFlush(t *testing.T) {
	var mu sync.Mutex
	var flushed bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return flushed.Write(p)
	})
	tr := NewTracer(w)
	defer tr.Close()
	tr.Emit(Span{Event: EvCache, Outcome: "miss"})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := flushed.Len()
		mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Error("background flusher never flushed the buffered span")
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestAppendJSONStringEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", `"plain"`},
		{"a\"b", `"a\"b"`},
		{`back\slash`, `"back\\slash"`},
		{"nl\ntab\t", `"nl\ntab\t"`},
		{"ctl\x01", `"ctl` + "\\" + `u0001"`},
		{"héllo ☃", "\"héllo ☃\""},
		{"bad" + "\xff", `"bad` + "\\" + `ufffd"`},
	}
	for _, tc := range cases {
		got := string(appendJSONString(nil, tc.in))
		if got != tc.want {
			t.Errorf("appendJSONString(%q) = %s, want %s", tc.in, got, tc.want)
		}
		if !json.Valid([]byte(got)) {
			t.Errorf("appendJSONString(%q) produced invalid JSON: %s", tc.in, got)
		}
		var back string
		if err := json.Unmarshal([]byte(got), &back); err != nil {
			t.Errorf("appendJSONString(%q) does not round-trip: %v", tc.in, err)
		}
	}
}
