package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("sia_b_total", `help with \ and
newline`).Add(3)
	r.Gauge("sia_a_entries", "entries").Set(7)
	h := r.Histogram("sia_lat_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP sia_b_total help with \\\\ and\\nnewline\n",
		"# TYPE sia_b_total counter\n",
		"sia_b_total 3\n",
		"# TYPE sia_a_entries gauge\n",
		"sia_a_entries 7\n",
		"# TYPE sia_lat_seconds histogram\n",
		`sia_lat_seconds_bucket{le="0.1"} 1` + "\n",
		`sia_lat_seconds_bucket{le="1"} 2` + "\n",
		`sia_lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"sia_lat_seconds_sum 2.55\n",
		"sia_lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear in name order.
	if strings.Index(out, "sia_a_entries") > strings.Index(out, "sia_b_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("sia_esc_total", "help", Label{"q", `a"b\c` + "\n"}).Inc()
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `sia_esc_total{q="a\"b\\c\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped label missing %q:\n%s", want, sb.String())
	}
}

func TestWritePrometheusMergedRegistries(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("sia_one_total", "h").Inc()
	r2.Counter("sia_two_total", "h").Add(2)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r1, r2); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(sb.String(), "sia_one_total 1") || !strings.Contains(sb.String(), "sia_two_total 2") {
		t.Errorf("merged exposition incomplete:\n%s", sb.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("sia_j_total", "h", Label{"op", "filter"}).Add(5)
	h := r.Histogram("sia_j_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	var sb strings.Builder
	if err := WriteJSON(&sb, r); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if v, ok := got[`sia_j_total{op="filter"}`].(float64); !ok || v != 5 {
		t.Errorf("counter key missing or wrong: %v", got)
	}
	hv, ok := got["sia_j_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram key missing: %v", got)
	}
	if hv["count"].(float64) != 2 {
		t.Errorf("histogram count = %v, want 2", hv["count"])
	}
	buckets := hv["buckets"].(map[string]any)
	if buckets["1"].(float64) != 1 || buckets["+Inf"].(float64) != 2 {
		t.Errorf("cumulative buckets wrong: %v", buckets)
	}
}

func TestExpvarVar(t *testing.T) {
	r := NewRegistry()
	r.Gauge("sia_ev_entries", "h").Set(9)
	var got map[string]any
	if err := json.Unmarshal([]byte(r.ExpvarVar().String()), &got); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v", err)
	}
	if got["sia_ev_entries"].(float64) != 9 {
		t.Errorf("expvar snapshot = %v", got)
	}
}
