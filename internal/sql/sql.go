// Package sql is the minimal SQL frontend for the benchmark dialect:
//
//	SELECT <* | col[, col]* | COUNT(*)>
//	FROM table [, table]*
//	WHERE <predicate>
//	[GROUP BY col[, col]*]
//
// It binds column references against a catalog, extracts equi-join keys
// from the WHERE clause, and lowers the statement to a logical plan
// (join tree + filter + projection/aggregation). The paper performs this
// step with Apache Calcite.
package sql

import (
	"fmt"
	"strings"

	"sia/internal/engine"
	"sia/internal/plan"
	"sia/internal/predicate"
)

// Query is a parsed and bound SELECT statement.
type Query struct {
	// Tables are the FROM-clause table names in order.
	Tables []string
	// SelectCols is nil for SELECT *; CountStar is set for COUNT(*).
	SelectCols []string
	CountStar  bool
	// Where is the bound WHERE predicate (including join conditions).
	Where predicate.Predicate
	// GroupBy lists the GROUP BY columns (empty if absent).
	GroupBy []string
	// Schema is the merged schema of all FROM tables.
	Schema *predicate.Schema
}

// Parse parses and binds a SELECT statement against the catalog.
func Parse(stmt string, cat *plan.Catalog) (*Query, error) {
	sel, from, where, groupBy, err := splitClauses(stmt)
	if err != nil {
		return nil, err
	}
	q := &Query{}
	for _, t := range splitList(from) {
		q.Tables = append(q.Tables, strings.TrimSpace(t))
	}
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("sql: empty FROM clause")
	}
	var schemas []*predicate.Schema
	for _, t := range q.Tables {
		s, err := cat.Schema(t)
		if err != nil {
			return nil, err
		}
		schemas = append(schemas, s)
	}
	q.Schema = predicate.Merge(schemas...)

	sel = strings.TrimSpace(sel)
	switch {
	case sel == "*":
	case strings.EqualFold(sel, "COUNT(*)"):
		q.CountStar = true
	default:
		for _, c := range splitList(sel) {
			name := strings.TrimSpace(c)
			if _, ok := q.Schema.Lookup(name); !ok {
				return nil, fmt.Errorf("sql: unknown column %q in SELECT", name)
			}
			q.SelectCols = append(q.SelectCols, name)
		}
	}

	if strings.TrimSpace(where) == "" {
		q.Where = predicate.TruePred
	} else {
		p, err := predicate.Parse(where, q.Schema)
		if err != nil {
			return nil, err
		}
		q.Where = p
	}

	for _, g := range splitList(groupBy) {
		name := strings.TrimSpace(g)
		if name == "" {
			continue
		}
		if _, ok := q.Schema.Lookup(name); !ok {
			return nil, fmt.Errorf("sql: unknown column %q in GROUP BY", name)
		}
		q.GroupBy = append(q.GroupBy, name)
	}
	return q, nil
}

// splitClauses slices the statement into SELECT/FROM/WHERE/GROUP BY parts
// by scanning for top-level keywords (outside parentheses and quotes).
func splitClauses(stmt string) (sel, from, where, groupBy string, err error) {
	s := strings.TrimSpace(stmt)
	s = strings.TrimSuffix(s, ";")
	upper := strings.ToUpper(s)
	if !strings.HasPrefix(upper, "SELECT") {
		return "", "", "", "", fmt.Errorf("sql: statement must start with SELECT")
	}
	idxFrom := keywordIndex(upper, "FROM")
	if idxFrom < 0 {
		return "", "", "", "", fmt.Errorf("sql: missing FROM clause")
	}
	idxWhere := keywordIndex(upper, "WHERE")
	idxGroup := keywordIndex(upper, "GROUP BY")

	sel = s[len("SELECT"):idxFrom]
	endFrom := len(s)
	if idxWhere >= 0 {
		endFrom = idxWhere
	} else if idxGroup >= 0 {
		endFrom = idxGroup
	}
	from = s[idxFrom+len("FROM") : endFrom]
	if idxWhere >= 0 {
		endWhere := len(s)
		if idxGroup >= 0 {
			if idxGroup < idxWhere {
				return "", "", "", "", fmt.Errorf("sql: GROUP BY before WHERE")
			}
			endWhere = idxGroup
		}
		where = s[idxWhere+len("WHERE") : endWhere]
	}
	if idxGroup >= 0 {
		groupBy = s[idxGroup+len("GROUP BY"):]
	}
	return sel, from, where, groupBy, nil
}

// keywordIndex finds a top-level occurrence of kw (case-insensitive, word
// boundaries, outside quotes and parentheses). Returns -1 when absent.
func keywordIndex(upper, kw string) int {
	depth := 0
	inStr := false
	for i := 0; i+len(kw) <= len(upper); i++ {
		switch upper[i] {
		case '\'':
			inStr = !inStr
			continue
		case '(':
			if !inStr {
				depth++
			}
			continue
		case ')':
			if !inStr {
				depth--
			}
			continue
		}
		if inStr || depth > 0 {
			continue
		}
		if strings.HasPrefix(upper[i:], kw) &&
			(i == 0 || !isWordChar(upper[i-1])) &&
			(i+len(kw) == len(upper) || !isWordChar(upper[i+len(kw)])) {
			return i
		}
	}
	return -1
}

func isWordChar(c byte) bool {
	return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_'
}

func splitList(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// Plan lowers the query to a logical plan: a left-deep join tree over the
// FROM tables using equi-join conjuncts from WHERE, the remaining predicate
// as a Filter, then aggregation or projection.
func (q *Query) Plan(cat *plan.Catalog) (plan.Node, error) {
	scans := map[string]plan.Node{}
	colToTable := map[string]string{}
	for _, t := range q.Tables {
		sc, err := plan.NewScan(cat, t)
		if err != nil {
			return nil, err
		}
		scans[t] = sc
		for _, c := range sc.Schema().Columns() {
			colToTable[c.Name] = t
		}
	}

	// Split WHERE into join conditions (col = col across tables) and the
	// residual filter.
	type joinCond struct{ lt, lc, rt, rc string }
	var joins []joinCond
	var residual []predicate.Predicate
	for _, conj := range predicate.Conjuncts(q.Where) {
		if cmp, ok := conj.(*predicate.Compare); ok && cmp.Op == predicate.CmpEQ {
			lcol, lok := cmp.Left.(*predicate.ColumnRef)
			rcol, rok := cmp.Right.(*predicate.ColumnRef)
			if lok && rok {
				lt, rt := colToTable[lcol.Name], colToTable[rcol.Name]
				if lt != "" && rt != "" && lt != rt {
					joins = append(joins, joinCond{lt, lcol.Name, rt, rcol.Name})
					continue
				}
			}
		}
		residual = append(residual, conj)
	}

	// Left-deep join tree in FROM order.
	joined := map[string]bool{q.Tables[0]: true}
	root := scans[q.Tables[0]]
	remaining := append([]joinCond(nil), joins...)
	for range q.Tables[1:] {
		found := false
		for i, jc := range remaining {
			var newTable, joinedCol, newCol string
			switch {
			case joined[jc.lt] && !joined[jc.rt]:
				newTable, joinedCol, newCol = jc.rt, jc.lc, jc.rc
			case joined[jc.rt] && !joined[jc.lt]:
				newTable, joinedCol, newCol = jc.lt, jc.rc, jc.lc
			default:
				continue
			}
			root = &plan.Join{Left: root, Right: scans[newTable], LeftKey: joinedCol, RightKey: newCol}
			joined[newTable] = true
			remaining = append(remaining[:i], remaining[i+1:]...)
			found = true
			break
		}
		if !found {
			return nil, fmt.Errorf("sql: no join condition connects the remaining tables (cross joins are not supported)")
		}
	}
	// Join conditions between already-joined tables become filters.
	for _, jc := range remaining {
		residual = append(residual, predicate.Cmp(predicate.CmpEQ,
			predicate.Col(jc.lc, predicate.TypeInteger),
			predicate.Col(jc.rc, predicate.TypeInteger)))
	}

	var node plan.Node = root
	if len(residual) > 0 {
		node = &plan.Filter{Pred: predicate.NewAnd(residual...), Input: node}
	}
	switch {
	case len(q.GroupBy) > 0:
		aggs := []engine.AggSpec{{Func: engine.AggCount, As: "count"}}
		node = &plan.Aggregate{GroupBy: q.GroupBy, Aggs: aggs, Input: node}
	case q.CountStar:
		node = &plan.Aggregate{GroupBy: nil, Aggs: []engine.AggSpec{{Func: engine.AggCount, As: "count"}}, Input: node}
	case q.SelectCols != nil:
		node = &plan.Project{Cols: q.SelectCols, Input: node}
	}
	return node, nil
}
