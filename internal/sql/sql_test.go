package sql

import (
	"strings"
	"testing"

	"sia/internal/plan"
	"sia/internal/predicate"
	"sia/internal/predtest"
	"sia/internal/tpch"
)

func testCatalog(t *testing.T) *plan.Catalog {
	t.Helper()
	orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: 0.01})
	cat := plan.NewCatalog()
	cat.Add(orders)
	cat.Add(lineitem)
	return cat
}

func TestParseBenchmarkTemplate(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(`SELECT * FROM lineitem, orders
		WHERE o_orderkey = l_orderkey
		AND l_shipdate - o_orderdate < 20 AND o_orderdate < DATE '1993-06-01'`, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 || q.Tables[0] != "lineitem" || q.Tables[1] != "orders" {
		t.Fatalf("tables = %v", q.Tables)
	}
	if q.SelectCols != nil || q.CountStar {
		t.Fatalf("expected SELECT *: %+v", q)
	}
	if got := len(predicate.Conjuncts(q.Where)); got != 3 {
		t.Fatalf("conjuncts = %d", got)
	}
}

func TestParseSelectList(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse("SELECT l_orderkey, l_shipdate FROM lineitem WHERE l_quantity > 10", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.SelectCols) != 2 {
		t.Fatalf("select cols = %v", q.SelectCols)
	}
	qc, err := Parse("SELECT COUNT(*) FROM lineitem WHERE l_quantity > 10", cat)
	if err != nil {
		t.Fatal(err)
	}
	if !qc.CountStar {
		t.Fatal("COUNT(*) not detected")
	}
}

func TestParseGroupBy(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse("SELECT l_orderkey FROM lineitem WHERE l_quantity > 0 GROUP BY l_orderkey", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "l_orderkey" {
		t.Fatalf("group by = %v", q.GroupBy)
	}
}

func TestParseErrors(t *testing.T) {
	cat := testCatalog(t)
	for _, stmt := range []string{
		"DELETE FROM lineitem",
		"SELECT * FROM nope WHERE 1 = 1",
		"SELECT zzz FROM lineitem",
		"SELECT * FROM lineitem WHERE zzz > 1",
		"SELECT *",
		"SELECT * FROM lineitem GROUP BY zzz",
	} {
		if _, err := Parse(stmt, cat); err == nil {
			t.Errorf("expected error for %q", stmt)
		}
	}
}

func TestPlanJoinExtraction(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse(`SELECT * FROM lineitem, orders
		WHERE o_orderkey = l_orderkey AND o_orderdate < DATE '1995-01-01'`, cat)
	if err != nil {
		t.Fatal(err)
	}
	node, err := q.Plan(cat)
	if err != nil {
		t.Fatal(err)
	}
	explained := plan.Explain(node)
	if !strings.Contains(explained, "HashJoin") {
		t.Fatalf("join not extracted:\n%s", explained)
	}
	// The join condition must not linger in the filter.
	if strings.Contains(explained, "o_orderkey = l_orderkey") {
		t.Fatalf("join condition left in filter:\n%s", explained)
	}
	out, _, err := plan.Execute(node, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() == 0 {
		t.Fatal("no rows")
	}
}

func TestPlanExecutionMatchesSemantics(t *testing.T) {
	// Join + filter through the planner must agree with a brute-force
	// nested-loop evaluation of the predicate.
	cat := testCatalog(t)
	where := "o_orderkey = l_orderkey AND l_shipdate - o_orderdate < 30 AND o_orderdate < DATE '1994-01-01'"
	q, err := Parse("SELECT * FROM lineitem, orders WHERE "+where, cat)
	if err != nil {
		t.Fatal(err)
	}
	node, err := q.Plan(cat)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := plan.Execute(node, cat)
	if err != nil {
		t.Fatal(err)
	}

	lineitem, _ := cat.Table("lineitem")
	orders, _ := cat.Table("orders")
	pred := predtest.MustParse(where, q.Schema)
	want := 0
	for i := 0; i < lineitem.NumRows(); i++ {
		li := lineitem.Tuple(i)
		for j := 0; j < orders.NumRows(); j++ {
			tu := predicate.Tuple{}
			for k, v := range li {
				tu[k] = v
			}
			for k, v := range orders.Tuple(j) {
				tu[k] = v
			}
			if predicate.Satisfies(pred, tu) {
				want++
			}
		}
	}
	if out.NumRows() != want {
		t.Fatalf("planned execution returned %d rows, nested-loop reference %d", out.NumRows(), want)
	}
}

func TestPlanCountStar(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse("SELECT COUNT(*) FROM lineitem WHERE l_quantity > 25", cat)
	if err != nil {
		t.Fatal(err)
	}
	node, err := q.Plan(cat)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := plan.Execute(node, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("COUNT(*) returned %d rows", out.NumRows())
	}
	lineitem, _ := cat.Table("lineitem")
	want := int64(0)
	for i := 0; i < lineitem.NumRows(); i++ {
		if lineitem.Value(i, "l_quantity").Int > 25 {
			want++
		}
	}
	if got := out.Value(0, "count").Int; got != want {
		t.Fatalf("COUNT(*) = %d, want %d", got, want)
	}
}

func TestPlanCrossJoinRejected(t *testing.T) {
	cat := testCatalog(t)
	q, err := Parse("SELECT * FROM lineitem, orders WHERE l_quantity > 0", cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Plan(cat); err == nil {
		t.Fatal("cross join should be rejected")
	}
}
