package cache

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"sia/internal/core"
	"sia/internal/obs"
	"sia/internal/predtest"
)

func TestRegisterMetricsExposesCounters(t *testing.T) {
	c := New(2)
	reg := obs.NewRegistry()
	if err := c.RegisterMetrics(reg); err != nil {
		t.Fatalf("RegisterMetrics: %v", err)
	}
	ctx := context.Background()
	mk := func(context.Context) (*core.Result, error) { return &core.Result{}, nil }
	if _, _, err := c.Do(ctx, "k1", mk); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Do(ctx, "k1", mk); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Do(ctx, "k2", mk); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Do(ctx, "k3", mk); err != nil { // evicts k1 or k2
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := obs.WritePrometheus(&sb, reg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"sia_cache_hits_total 1",
		"sia_cache_misses_total 3",
		"sia_cache_coalesced_total 0",
		"sia_cache_evictions_total 1",
		"sia_cache_entries 2",
		"sia_cache_inflight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// The Stats view and the registry must agree.
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("Stats view disagrees: %+v", st)
	}

	// Registering the same instance twice must fail with the sentinel.
	err := c.RegisterMetrics(reg)
	if !errors.Is(err, obs.ErrAlreadyRegistered) {
		t.Errorf("second registration: got %v, want ErrAlreadyRegistered", err)
	}
}

// TestSetTracerRacesDo is the -race regression for the tracer swap: Do
// emits outcome spans from many goroutines while SetTracer concurrently
// attaches, replaces and detaches tracers. Before tracer access became
// atomic this was a data race on the tracer field.
func TestSetTracerRacesDo(t *testing.T) {
	c := New(64)
	var buf1, buf2 bytes.Buffer
	tr1, tr2 := obs.NewTracer(&buf1), obs.NewTracer(&buf2)
	ctx := context.Background()
	mk := func(context.Context) (*core.Result, error) { return &core.Result{}, nil }

	var wg, swapper sync.WaitGroup
	stop := make(chan struct{})
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				c.SetTracer(tr1)
			case 1:
				c.SetTracer(tr2)
			default:
				c.SetTracer(nil)
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*200+i)%32)
				if _, _, err := c.Do(ctx, key, mk); err != nil {
					t.Errorf("Do: %v", err)
					return
				}
			}
		}(g)
	}
	// Let the Do goroutines finish first so every outcome span lands on
	// whichever tracer was current; then stop the swapper before closing
	// the tracers (Emit on a closed tracer would write to a dead buffer).
	wg.Wait()
	close(stop)
	swapper.Wait()
	if err := tr1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheTracerEmitsOutcomes(t *testing.T) {
	c := New(4)
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	c.SetTracer(tr)
	ctx := context.Background()
	mk := func(context.Context) (*core.Result, error) { return &core.Result{}, nil }
	if _, _, err := c.Do(ctx, "k", mk); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Do(ctx, "k", mk); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var outcomes []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad trace line: %v", err)
		}
		if m["event"] != obs.EvCache {
			t.Errorf("unexpected event %v", m["event"])
		}
		outcomes = append(outcomes, m["outcome"].(string))
	}
	if len(outcomes) != 2 || outcomes[0] != "miss" || outcomes[1] != "hit" {
		t.Errorf("outcomes = %v, want [miss hit]", outcomes)
	}
}

func TestKeyForTracerBypassesCache(t *testing.T) {
	schema := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", schema)
	cols := []string{"a"}
	var tr *obs.Tracer
	if _, ok := KeyFor(p, cols, schema, core.Options{Tracer: tr}); !ok {
		t.Error("nil Tracer (tracing off) must stay cacheable")
	}
	var buf bytes.Buffer
	live := obs.NewTracer(&buf)
	defer live.Close()
	if _, ok := KeyFor(p, cols, schema, core.Options{Tracer: live}); ok {
		t.Error("a live Tracer must make the request uncacheable")
	}
}
