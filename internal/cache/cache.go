package cache

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"sia/internal/core"
	"sia/internal/obs"
	"sia/internal/predicate"
)

// DefaultCapacity bounds the entry count of a zero-configured cache.
const DefaultCapacity = 4096

// Stats is a point-in-time snapshot of the cache's counters. Hits, Misses,
// Coalesced and Evictions are monotone; Entries and InFlight are gauges.
type Stats struct {
	// Hits counts requests answered from a stored entry.
	Hits uint64 `json:"hits"`
	// Misses counts requests that started a new computation (one CEGIS
	// loop each).
	Misses uint64 `json:"misses"`
	// Coalesced counts requests that joined an in-flight computation
	// instead of starting their own — the singleflight savings.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Invalidations counts entries dropped by InvalidateTags — results
	// whose underlying table data changed (e.g. a segment append).
	Invalidations uint64 `json:"invalidations"`
	// Entries is the current number of stored results.
	Entries int `json:"entries"`
	// InFlight is the current number of running computations.
	InFlight int `json:"in_flight"`
}

// Cache memoizes synthesis results under canonical keys with LRU bounding
// and singleflight deduplication. All methods are safe for concurrent use.
//
// Stored results are shared: a hit returns the same *core.Result pointer
// the original computation produced, so callers must treat Results as
// immutable (every field is write-once metadata or an immutable predicate
// tree, so ordinary use never mutates one).
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*call

	// tagIndex maps each tag to the set of stored keys carrying it, so
	// InvalidateTags removes matching entries without a full scan. Kept
	// exactly in sync with entries by insert, eviction and invalidation.
	tagIndex map[string]map[string]bool

	// The monotone counters are obs instruments so a registry can read
	// them live; Stats() is a snapshot view over the same values.
	hits, misses, coalesced, evictions, invalidations obs.Counter

	// tracer is read by traceOutcome on every request, concurrently with
	// SetTracer; the atomic pointer keeps that pair race-free without
	// widening c.mu over trace emission.
	tracer atomic.Pointer[obs.Tracer]
}

type entry struct {
	key  string
	res  *core.Result
	tags []string
}

// call is one in-flight computation. Its lifecycle: created by the first
// requester (the leader), joined by coalescing waiters, completed exactly
// once by the detached runner goroutine, which closes done. If every
// waiter's context expires first, the call is marked abandoned and its
// runner cancelled — a later identical request then starts a fresh call
// rather than inheriting a cancelled one.
type call struct {
	done      chan struct{}
	res       *core.Result
	err       error
	waiters   int
	completed bool
	abandoned bool
	cancel    context.CancelFunc
	tags      []string
}

// New returns a cache bounded to capacity entries (DefaultCapacity when
// capacity is <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*call{},
		tagIndex: map[string]map[string]bool{},
	}
}

// Do returns the cached result for key, computing it with fn on a miss.
// Concurrent calls with the same key share a single fn invocation; cached
// reports whether the result was served without running fn in this call
// (an LRU hit or a coalesced join).
//
// fn runs on a goroutine whose context is detached from ctx's
// cancellation: the computation belongs to every waiter, not to whichever
// request happened to arrive first, so one impatient client cannot kill
// the work for the others. When ctx expires while fn is still running, Do
// returns an error matching core.ErrTimeout (and ctx.Err()) immediately;
// the computation keeps running for the remaining waiters and is cancelled
// only when the last waiter is gone. An expired ctx always yields that
// error — even when the entry is already stored or the computation lands
// in the same instant — so a caller's deadline is honored
// deterministically. Successful results are stored; errors are not (the
// next request retries).
func (c *Cache) Do(ctx context.Context, key string, fn func(context.Context) (*core.Result, error)) (res *core.Result, cached bool, err error) {
	return c.DoTagged(ctx, key, nil, fn)
}

// DoTagged is Do with invalidation tags: a successfully stored result
// carries tags, and a later InvalidateTags on any of them removes it. The
// synthesizer tags entries with the visible-schema columns their predicate
// conditions on, so a data append to those columns invalidates exactly the
// results it could stale.
func (c *Cache) DoTagged(ctx context.Context, key string, tags []string, fn func(context.Context) (*core.Result, error)) (res *core.Result, cached bool, err error) {
	for {
		// A dead context fails fast even on what would be a cache hit:
		// the caller's budget is spent, and cancelled means cancelled.
		if cerr := ctx.Err(); cerr != nil {
			return nil, false, fmt.Errorf("%w: %w", core.ErrTimeout, cerr)
		}
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			c.hits.Inc()
			res := el.Value.(*entry).res
			c.mu.Unlock()
			c.traceOutcome("hit")
			return res, true, nil
		}
		if cl, ok := c.inflight[key]; ok && !cl.abandoned {
			cl.waiters++
			c.coalesced.Inc()
			c.mu.Unlock()
			c.traceOutcome("coalesced")
			res, err, retry := c.wait(ctx, cl)
			if retry {
				continue
			}
			return res, err == nil, err
		}
		// Miss: become the leader. The runner's context inherits ctx's
		// values but not its cancellation; it is cancelled only when the
		// last waiter abandons the call.
		c.misses.Inc()
		runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		cl := &call{done: make(chan struct{}), cancel: cancel, waiters: 1, tags: tags}
		c.inflight[key] = cl
		c.mu.Unlock()
		c.traceOutcome("miss")
		go c.run(key, cl, runCtx, fn)
		res, err, retry := c.wait(ctx, cl)
		if retry {
			continue
		}
		return res, false, err
	}
}

// wait blocks until the call completes or ctx expires. retry is set when
// the call was abandoned under the waiter (its result is a cancellation
// artifact, not an answer) while the waiter's own context is still live.
func (c *Cache) wait(ctx context.Context, cl *call) (res *core.Result, err error, retry bool) {
	select {
	case <-cl.done:
		c.mu.Lock()
		abandoned := cl.abandoned
		c.mu.Unlock()
		if abandoned && cl.err != nil && ctx.Err() == nil {
			return nil, nil, true
		}
		// The computation can land in the same instant the waiter's
		// context expires, leaving both select arms ready. Deadline
		// expiry wins, so the caller's budget is honored
		// deterministically; the result is still stored for later
		// callers.
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("%w: %w", core.ErrTimeout, cerr), false
		}
		return cl.res, cl.err, false
	case <-ctx.Done():
		c.mu.Lock()
		cl.waiters--
		if cl.waiters == 0 && !cl.completed {
			cl.abandoned = true
			cl.cancel()
		}
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %w", core.ErrTimeout, ctx.Err()), false
	}
}

// run executes one computation and publishes its outcome.
func (c *Cache) run(key string, cl *call, runCtx context.Context, fn func(context.Context) (*core.Result, error)) {
	res, err := fn(runCtx)
	c.mu.Lock()
	cl.res, cl.err = res, err
	cl.completed = true
	// A fresh call may have replaced an abandoned one; only the owner
	// clears the slot.
	if c.inflight[key] == cl {
		delete(c.inflight, key)
	}
	if err == nil {
		c.insert(key, res, cl.tags)
	}
	c.mu.Unlock()
	close(cl.done)
	cl.cancel()
}

// insert stores res under key with tags, evicting from the LRU tail past
// capacity. Caller holds c.mu.
func (c *Cache) insert(key string, res *core.Result, tags []string) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry)
		c.untag(e)
		e.res = res
		e.tags = tags
		c.tag(e)
		c.ll.MoveToFront(el)
		return
	}
	e := &entry{key: key, res: res, tags: tags}
	c.entries[key] = c.ll.PushFront(e)
	c.tag(e)
	// goroutine: bounded — every iteration removes one list element, so
	// the loop runs at most Len()-capacity times.
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		be := back.Value.(*entry)
		delete(c.entries, be.key)
		c.untag(be)
		c.evictions.Inc()
	}
}

// tag adds e's key under each of its tags. Caller holds c.mu.
func (c *Cache) tag(e *entry) {
	for _, t := range e.tags {
		keys := c.tagIndex[t]
		if keys == nil {
			keys = map[string]bool{}
			c.tagIndex[t] = keys
		}
		keys[e.key] = true
	}
}

// untag removes e's key from the index, dropping emptied tag sets. Caller
// holds c.mu.
func (c *Cache) untag(e *entry) {
	for _, t := range e.tags {
		keys := c.tagIndex[t]
		delete(keys, e.key)
		if len(keys) == 0 {
			delete(c.tagIndex, t)
		}
	}
}

// InvalidateTags removes every stored entry carrying at least one of the
// given tags and returns how many were dropped. In-flight computations are
// unaffected (their results land after the invalidation and reflect
// whatever data they read); absent tags are a no-op.
func (c *Cache) InvalidateTags(tags []string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for _, t := range tags {
		// goroutine: bounded — iterates the keys indexed under one tag,
		// each removed exactly once.
		for key := range c.tagIndex[t] {
			el, ok := c.entries[key]
			if !ok {
				continue
			}
			c.ll.Remove(el)
			delete(c.entries, key)
			c.untag(el.Value.(*entry))
			c.invalidations.Inc()
			removed++
		}
	}
	return removed
}

// Peek returns the stored result for key without computing on a miss. A
// found entry is refreshed in the LRU and counted as a hit (it served a
// request); an absent key is not counted as a miss, so Stats.Misses keeps
// meaning "CEGIS loops started". The serving tier uses Peek as the local
// fast path before forwarding a peer-owned key: a positive lookup skips
// the network hop, a negative one proxies.
func (c *Cache) Peek(key string) (*core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*entry).res, true
}

// Put stores res under key without counting a miss, evicting past
// capacity. It backs snapshot restore (warming a rebooted replica) and
// batched group runs (one grouped result stored under each member's key);
// ordinary synthesis results should flow through Do.
func (c *Cache) Put(key string, res *core.Result) {
	c.PutTagged(key, res, nil)
}

// PutTagged is Put with invalidation tags (see DoTagged).
func (c *Cache) PutTagged(key string, res *core.Result, tags []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, res, tags)
}

// Entry is one exported cache entry.
type Entry struct {
	Key string
	Res *core.Result
}

// Export returns the stored entries, most recently used first. The slice
// is a snapshot: later cache mutations do not affect it. Snapshot writers
// use the MRU order so a capacity-truncated restore keeps the hottest
// keys.
func (c *Cache) Export() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, Entry{Key: e.key, Res: e.res})
	}
	return out
}

// Stats returns a snapshot of the cache's counters and gauges.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Coalesced:     c.coalesced.Value(),
		Evictions:     c.evictions.Value(),
		Invalidations: c.invalidations.Value(),
		Entries:       c.ll.Len(),
		InFlight:      len(c.inflight),
	}
}

// SetTracer attaches a tracer whose EvCache spans record the outcome of
// every request (hit, miss, coalesced). A nil tracer (the default)
// disables emission at zero cost. Safe to call concurrently with Do;
// requests already past their outcome point keep the tracer they loaded.
func (c *Cache) SetTracer(t *obs.Tracer) { c.tracer.Store(t) }

// traceOutcome emits one cache-outcome span. Nil-safe and free when no
// tracer is attached.
func (c *Cache) traceOutcome(outcome string) {
	c.tracer.Load().Emit(obs.Span{Event: obs.EvCache, Outcome: outcome})
}

// RegisterMetrics exposes this cache instance's counters and gauges in reg
// under the sia_cache_* names. Each cache instance can register with at
// most one registry (a second registration of the same names fails with an
// error wrapping obs.ErrAlreadyRegistered).
func (c *Cache) RegisterMetrics(reg *obs.Registry) error {
	type metric struct {
		name, help string
		fn         func() float64
		gauge      bool
	}
	gauges := func() (entries, inflight int) {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.ll.Len(), len(c.inflight)
	}
	metrics := []metric{
		{"sia_cache_hits_total", "Requests answered from a stored entry.",
			func() float64 { return float64(c.hits.Value()) }, false},
		{"sia_cache_misses_total", "Requests that started a new CEGIS computation.",
			func() float64 { return float64(c.misses.Value()) }, false},
		{"sia_cache_coalesced_total", "Requests that joined an in-flight computation (singleflight savings).",
			func() float64 { return float64(c.coalesced.Value()) }, false},
		{"sia_cache_evictions_total", "Entries dropped by the LRU bound.",
			func() float64 { return float64(c.evictions.Value()) }, false},
		{"sia_cache_invalidations_total", "Entries dropped because their underlying table data changed.",
			func() float64 { return float64(c.invalidations.Value()) }, false},
		{"sia_cache_entries", "Current number of stored results.",
			func() float64 { e, _ := gauges(); return float64(e) }, true},
		{"sia_cache_inflight", "Current number of running computations.",
			func() float64 { _, f := gauges(); return float64(f) }, true},
	}
	for _, m := range metrics {
		var err error
		if m.gauge {
			err = reg.GaugeFunc(m.name, m.help, m.fn)
		} else {
			err = reg.CounterFunc(m.name, m.help, m.fn)
		}
		if err != nil {
			return fmt.Errorf("cache: register %s: %w", m.name, err)
		}
	}
	return nil
}

// Synthesizer couples a Cache with core.SynthesizeContext: the drop-in
// cached form of the synthesis entry point.
type Synthesizer struct {
	cache *Cache
}

// NewSynthesizer returns a cached synthesizer bounded to capacity results
// (DefaultCapacity when capacity is <= 0).
func NewSynthesizer(capacity int) *Synthesizer {
	return &Synthesizer{cache: New(capacity)}
}

// Synthesize is core.SynthesizeContext memoized through the cache. cached
// reports whether the result was served without running a CEGIS loop for
// this call. Uncacheable requests (a caller-supplied Options.Solver, Trace
// or Tracer — see KeyFor) bypass the cache entirely.
//
// Stored entries are tagged with the request's visible-schema columns (the
// predicate's columns plus the synthesis targets), so InvalidateColumns
// after a data change removes exactly the results it could stale.
func (s *Synthesizer) Synthesize(ctx context.Context, p predicate.Predicate, cols []string, schema *predicate.Schema, opts core.Options) (res *core.Result, cached bool, err error) {
	key, ok := KeyFor(p, cols, schema, opts)
	if !ok {
		res, err := core.SynthesizeContext(ctx, p, cols, schema, opts)
		return res, false, err
	}
	return s.cache.DoTagged(ctx, key, visibleColumns(p, cols), func(runCtx context.Context) (*core.Result, error) {
		return core.SynthesizeContext(runCtx, p, cols, schema, opts)
	})
}

// visibleColumns is the union of the predicate's columns and the synthesis
// target columns — the data a cached result is conditioned on.
func visibleColumns(p predicate.Predicate, cols []string) []string {
	seen := make(map[string]bool, len(cols))
	var out []string
	for _, c := range predicate.Columns(p) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range cols {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// InvalidateColumns removes every cached result conditioned on any of the
// named columns and returns how many were dropped. Streaming ingestion
// calls this from a SegmentTable append hook: new rows can change a
// predicate's selectivity or even its validity, so results over the
// touched columns must be re-synthesized, not served stale.
func (s *Synthesizer) InvalidateColumns(cols []string) int {
	return s.cache.InvalidateTags(cols)
}

// Peek returns the cached result for key without synthesizing on a miss.
func (s *Synthesizer) Peek(key string) (*core.Result, bool) { return s.cache.Peek(key) }

// Put stores res under key without counting a miss (snapshot restore and
// batched group fills).
func (s *Synthesizer) Put(key string, res *core.Result) { s.cache.Put(key, res) }

// Export returns the stored entries, most recently used first.
func (s *Synthesizer) Export() []Entry { return s.cache.Export() }

// Do runs the cache's memoized computation under an explicit key. The
// serving tier's batcher uses it to run grouped synthesis through the same
// singleflight machinery as ordinary requests.
func (s *Synthesizer) Do(ctx context.Context, key string, fn func(context.Context) (*core.Result, error)) (*core.Result, bool, error) {
	return s.cache.Do(ctx, key, fn)
}

// Stats returns the underlying cache's counters.
func (s *Synthesizer) Stats() Stats { return s.cache.Stats() }

// RegisterMetrics exposes the underlying cache's metrics in reg.
func (s *Synthesizer) RegisterMetrics(reg *obs.Registry) error {
	return s.cache.RegisterMetrics(reg)
}

// SetTracer attaches a tracer to the underlying cache. Safe to call
// concurrently with Synthesize.
func (s *Synthesizer) SetTracer(t *obs.Tracer) { s.cache.SetTracer(t) }
