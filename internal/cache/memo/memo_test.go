package memo

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicGetAdd(t *testing.T) {
	c := New[string, int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	if ev := c.Add("a", 1); ev {
		t.Fatal("first insert evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("got %d,%v want 1,true", v, ok)
	}
	if ev := c.Add("a", 2); ev {
		t.Fatal("overwrite evicted")
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Fatalf("overwrite lost: got %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d want 1", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int, int](3)
	for i := 0; i < 3; i++ {
		c.Add(i, i*10)
	}
	// Touch 0 so it is most recently used; 1 becomes the LRU victim.
	c.Get(0)
	if ev := c.Add(3, 30); !ev {
		t.Fatal("insert at capacity did not evict")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for _, k := range []int{0, 2, 3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %d missing", k)
		}
	}
}

func TestPurge(t *testing.T) {
	c := New[int, int](8)
	for i := 0; i < 8; i++ {
		c.Add(i, i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len %d after purge", c.Len())
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("purged entry still present")
	}
	c.Add(1, 1)
	if v, ok := c.Get(1); !ok || v != 1 {
		t.Fatal("cache unusable after purge")
	}
}

func TestCapacityBound(t *testing.T) {
	const cap = 16
	c := New[int, int](cap)
	for i := 0; i < 10*cap; i++ {
		c.Add(i, i)
		if n := c.Len(); n > cap {
			t.Fatalf("len %d exceeds capacity %d", n, cap)
		}
	}
	if c.Len() != cap {
		t.Fatalf("len %d want %d", c.Len(), cap)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Errorf("corrupt value %d", v)
				}
				c.Add(k, i)
			}
		}(g)
	}
	wg.Wait()
}
