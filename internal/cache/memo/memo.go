// Package memo provides a small, bounded, concurrency-safe memoization
// cache with LRU eviction. It is the building block for hot-path memo
// tables (such as the SMT quantifier-elimination memo) that need a hard
// footprint bound and deterministic eviction, without the admission
// policies or tracing of internal/cache. Unlike internal/cache it never
// computes values itself: the caller decides what is safe to store, which
// matters when a computation can be aborted mid-way (a cancelled
// elimination must not poison the table).
package memo

import (
	"container/list"
	"sync"
)

// Cache is a bounded LRU map from K to V. The zero value is not usable;
// call New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache bounded to capacity entries. capacity must be
// positive.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("memo: capacity must be positive")
	}
	return &Cache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element),
	}
}

// Get returns the value stored under k and reports whether it was present,
// marking the entry as most recently used.
// memo: the cache is semantically transparent — Get returns only what Add
// stored under the same key; locking and LRU bookkeeping are invisible to
// results.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Add stores v under k, making it the most recently used entry, and
// reports whether an older entry was evicted to make room. Adding an
// existing key overwrites its value without eviction.
// memo: the cache is semantically transparent — storing a deterministic
// result under its key cannot change any future answer, only whether it
// is recomputed; locking and LRU bookkeeping are invisible to results.
func (c *Cache[K, V]) Add(k K, v V) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[K, V]).val = v
		return false
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
		evicted = true
	}
	c.items[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v})
	return evicted
}

// Len returns the number of entries currently cached.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge empties the cache.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}
