package cache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sia/internal/core"
	"sia/internal/predicate"
	"sia/internal/predtest"
	"sia/internal/smt"
)

func intSchema(names ...string) *predicate.Schema {
	cols := make([]predicate.Column, len(names))
	for i, n := range names {
		cols[i] = predicate.Column{Name: n, Type: predicate.TypeInteger, NotNull: true}
	}
	return predicate.NewSchema(cols...)
}

func result(tag int) *core.Result {
	return &core.Result{Valid: true, Iterations: tag}
}

func TestDoCachesAndHits(t *testing.T) {
	c := New(8)
	calls := 0
	fn := func(context.Context) (*core.Result, error) {
		calls++
		return result(1), nil
	}
	r1, cached, err := c.Do(context.Background(), "k", fn)
	if err != nil || cached {
		t.Fatalf("first Do: res=%v cached=%v err=%v", r1, cached, err)
	}
	r2, cached, err := c.Do(context.Background(), "k", fn)
	if err != nil || !cached {
		t.Fatalf("second Do: cached=%v err=%v", cached, err)
	}
	if r1 != r2 {
		t.Fatalf("hit returned a different Result pointer")
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Coalesced != 0 || s.Entries != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestDoDoesNotCacheErrors(t *testing.T) {
	c := New(8)
	calls := 0
	fail := errors.New("boom")
	fn := func(context.Context) (*core.Result, error) {
		calls++
		if calls == 1 {
			return nil, fail
		}
		return result(2), nil
	}
	if _, _, err := c.Do(context.Background(), "k", fn); !errors.Is(err, fail) {
		t.Fatalf("want boom, got %v", err)
	}
	r, cached, err := c.Do(context.Background(), "k", fn)
	if err != nil || cached || r.Iterations != 2 {
		t.Fatalf("retry after error: res=%+v cached=%v err=%v", r, cached, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2", calls)
	}
}

// TestSingleflight is the acceptance check: N concurrent identical requests
// run fn exactly once; everyone gets the same pointer; the counters prove
// the coalescing.
func TestSingleflight(t *testing.T) {
	c := New(8)
	const n = 32
	var calls atomic.Int64
	release := make(chan struct{})
	fn := func(context.Context) (*core.Result, error) {
		calls.Add(1)
		<-release
		return result(7), nil
	}
	var wg sync.WaitGroup
	results := make([]*core.Result, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			r, _, err := c.Do(context.Background(), "k", fn)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = r
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// All n goroutines have entered Do; let the one leader finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("result %d differs", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (stats %+v)", s.Misses, s)
	}
	if s.Coalesced+s.Hits != n-1 {
		t.Fatalf("coalesced+hits = %d, want %d (stats %+v)", s.Coalesced+s.Hits, n-1, s)
	}
	if s.InFlight != 0 {
		t.Fatalf("inflight = %d after completion", s.InFlight)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(context.Background(), key, func(context.Context) (*core.Result, error) {
			return result(i), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats %+v, want 2 entries 1 eviction", s)
	}
	// k0 was evicted; k2 (most recent) must still hit.
	_, cached, err := c.Do(context.Background(), "k2", func(context.Context) (*core.Result, error) {
		t.Fatal("k2 recomputed")
		return nil, nil
	})
	if err != nil || !cached {
		t.Fatalf("k2: cached=%v err=%v", cached, err)
	}
	if _, cached, _ = c.Do(context.Background(), "k0", func(context.Context) (*core.Result, error) {
		return result(0), nil
	}); cached {
		t.Fatal("k0 should have been evicted")
	}
}

// TestWaiterCancellation: a waiter whose context expires leaves promptly
// with an ErrTimeout-compatible error while the computation continues for
// the patient waiter.
func TestWaiterCancellation(t *testing.T) {
	c := New(8)
	release := make(chan struct{})
	fn := func(context.Context) (*core.Result, error) {
		<-release
		return result(1), nil
	}

	patientDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", fn)
		patientDone <- err
	}()
	// Give the patient goroutine time to become the leader.
	time.Sleep(10 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	impatient := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", fn)
		impatient <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-impatient:
		if !errors.Is(err, core.ErrTimeout) || !errors.Is(err, context.Canceled) {
			t.Fatalf("impatient waiter error = %v, want ErrTimeout+Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}

	close(release)
	if err := <-patientDone; err != nil {
		t.Fatalf("patient waiter: %v", err)
	}
}

// TestAbandonedComputationCancelled: when every waiter gives up, the
// runner's context is cancelled so the computation stops, and a later
// request starts fresh rather than inheriting the cancelled run.
func TestAbandonedComputationCancelled(t *testing.T) {
	c := New(8)
	runnerCancelled := make(chan struct{})
	started := make(chan struct{})
	first := true
	fn := func(ctx context.Context) (*core.Result, error) {
		if first {
			first = false
			close(started)
			<-ctx.Done()
			close(runnerCancelled)
			return nil, fmt.Errorf("%w: %w", core.ErrTimeout, ctx.Err())
		}
		return result(9), nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", fn)
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("abandoning caller error = %v", err)
	}
	select {
	case <-runnerCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned runner was never cancelled")
	}

	// A fresh request must run a fresh computation and succeed.
	r, cached, err := c.Do(context.Background(), "k", fn)
	if err != nil || r == nil || r.Iterations != 9 {
		t.Fatalf("fresh request: res=%+v cached=%v err=%v", r, cached, err)
	}
}

// TestCacheHitIdenticalToColdRun is the acceptance check that a hit returns
// a Result byte-equal to a cold run: same pointer, and an independent cold
// cache produces a structurally identical Result for the same key.
func TestCacheHitIdenticalToColdRun(t *testing.T) {
	schema := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", schema)

	cold, err := core.SynthesizeContext(context.Background(), p, []string{"a"}, schema, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	s := NewSynthesizer(8)
	warm1, cached1, err := s.Synthesize(context.Background(), p, []string{"a"}, schema, core.Options{})
	if err != nil || cached1 {
		t.Fatalf("first: cached=%v err=%v", cached1, err)
	}
	warm2, cached2, err := s.Synthesize(context.Background(), p, []string{"a"}, schema, core.Options{})
	if err != nil || !cached2 {
		t.Fatalf("second: cached=%v err=%v", cached2, err)
	}
	if warm1 != warm2 {
		t.Fatal("hit returned a different pointer than the miss")
	}
	if cold.Predicate.String() != warm2.Predicate.String() ||
		cold.Valid != warm2.Valid || cold.Optimal != warm2.Optimal ||
		cold.Iterations != warm2.Iterations ||
		cold.TrueSamples != warm2.TrueSamples || cold.FalseSamples != warm2.FalseSamples ||
		cold.GaveUp != warm2.GaveUp {
		t.Fatalf("cached result differs from cold run:\ncold: %+v\nwarm: %+v", cold, warm2)
	}
}

func TestKeyFor(t *testing.T) {
	schema := intSchema("a", "b")
	p := predtest.MustParse("a - b < 20 AND b < 0", schema)
	q := predtest.MustParse("a - b < 21 AND b < 0", schema)

	k1, ok := KeyFor(p, []string{"a", "b"}, schema, core.Options{})
	if !ok {
		t.Fatal("cacheable request reported uncacheable")
	}
	// Column order must not matter.
	k2, _ := KeyFor(p, []string{"b", "a"}, schema, core.Options{})
	if k1 != k2 {
		t.Fatal("column order changed the key")
	}
	// Predicate text must matter.
	k3, _ := KeyFor(q, []string{"a", "b"}, schema, core.Options{})
	if k3 == k1 {
		t.Fatal("different predicates share a key")
	}
	// Zero options and explicit defaults must agree.
	k4, _ := KeyFor(p, []string{"a", "b"}, schema, core.PresetSIA())
	if k4 != k1 {
		t.Fatalf("zero options and PresetSIA disagree")
	}
	// Different options must differ.
	k5, _ := KeyFor(p, []string{"a", "b"}, schema, core.Options{MaxIterations: 7})
	if k5 == k1 {
		t.Fatal("different options share a key")
	}
	// Supplied solver or trace ⇒ uncacheable.
	if _, ok := KeyFor(p, []string{"a"}, schema, core.Options{Solver: smt.New()}); ok {
		t.Fatal("custom solver should be uncacheable")
	}
	if _, ok := KeyFor(p, []string{"a"}, schema, core.Options{Trace: func(int, fmt.Stringer, bool) {}}); ok {
		t.Fatal("trace hook should be uncacheable")
	}
}

// TestNoGoroutineLeaks: after a storm of hits, coalesced waits, and
// abandoned computations, the goroutine count returns to baseline.
func TestNoGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	c := New(4)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*time.Millisecond)
			defer cancel()
			key := fmt.Sprintf("k%d", i%8)
			_, _, _ = c.Do(ctx, key, func(runCtx context.Context) (*core.Result, error) {
				select {
				case <-time.After(time.Duration(i%3) * time.Millisecond):
					return result(i), nil
				case <-runCtx.Done():
					return nil, runCtx.Err()
				}
			})
		}(i)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", base, runtime.NumGoroutine())
}
