// Package cache is a synthesis-result cache with request coalescing: it
// memoizes core.SynthesizeContext results keyed by a canonical form of
// (predicate, cols, schema, options), bounds its memory with an LRU, and
// deduplicates concurrent identical requests so N callers share one CEGIS
// loop (singleflight). The paper notes synthesis results are reusable
// across recurring queries (§6.2); this package is what makes that reuse
// cheap in a serving context (cmd/siad) and in repeated experiment runs.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"sia/internal/core"
	"sia/internal/predicate"
)

// KeyFor returns the canonical cache key for a synthesis request, or
// ok=false when the request is uncacheable: a caller-supplied Solver
// (whose private budgets and accumulated statistics make runs
// non-reproducible) or a Trace hook or Tracer (whose side effects must run
// on every call) bypass the cache.
//
// The key is syntactic, not semantic: two predicates that are logically
// equivalent but print differently (e.g. "a < 1 AND b < 2" vs
// "b < 2 AND a < 1") occupy separate entries. Deciding semantic equality
// would itself need the solver — the cost the cache exists to avoid — and
// recurring queries arrive syntactically identical anyway. Target columns
// are order-insensitive (synthesis sorts them internally), so they are
// sorted before hashing. Of the schema, only the columns the request can
// observe — those of the predicate and the target set — contribute, making
// keys stable when unrelated columns are added to a catalog. Options
// contribute via their Fingerprint (defaults applied, Solver/Trace
// excluded).
//
// sia:memoize
func KeyFor(p predicate.Predicate, cols []string, schema *predicate.Schema, opts core.Options) (key string, ok bool) {
	if opts.Solver != nil || opts.Trace != nil || opts.Tracer != nil {
		return "", false
	}
	sortedCols := append([]string(nil), cols...)
	sort.Strings(sortedCols)

	// Schema restriction: every column mentioned by the predicate or
	// requested as a target, described as name/type/nullability.
	seen := map[string]bool{}
	var visible []string
	note := func(c string) {
		if !seen[c] {
			seen[c] = true
			visible = append(visible, c)
		}
	}
	for _, c := range predicate.Columns(p) {
		note(c)
	}
	for _, c := range cols {
		note(c)
	}
	sort.Strings(visible)
	var schemaDesc strings.Builder
	for _, name := range visible {
		typ, notNull := "?", false
		if schema != nil {
			if col, found := schema.Lookup(name); found {
				typ, notNull = col.Type.String(), col.NotNull
			}
		}
		fmt.Fprintf(&schemaDesc, "%s/%s/%t;", name, typ, notNull)
	}

	h := sha256.New()
	fmt.Fprintf(h, "pred\x00%s\x00cols\x00%s\x00schema\x00%s\x00opts\x00%s",
		p.String(), strings.Join(sortedCols, ","), schemaDesc.String(), opts.Fingerprint())
	return hex.EncodeToString(h.Sum(nil)), true
}
