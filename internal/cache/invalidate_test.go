package cache

import (
	"context"
	"testing"

	"sia/internal/core"
	"sia/internal/predicate"
)

func TestInvalidateTags(t *testing.T) {
	c := New(8)
	fill := func(key string, tags ...string) {
		_, _, err := c.DoTagged(context.Background(), key, tags,
			func(context.Context) (*core.Result, error) { return result(1), nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	fill("a", "x", "y")
	fill("b", "y")
	fill("c", "z")
	fill("d") // untagged: never invalidated

	if n := c.InvalidateTags([]string{"nope"}); n != 0 {
		t.Fatalf("absent tag removed %d entries", n)
	}
	if n := c.InvalidateTags([]string{"y"}); n != 2 {
		t.Fatalf("tag y removed %d entries, want 2", n)
	}
	for key, want := range map[string]bool{"a": false, "b": false, "c": true, "d": true} {
		if _, ok := c.Peek(key); ok != want {
			t.Fatalf("after invalidate, Peek(%s) = %v, want %v", key, ok, want)
		}
	}
	s := c.Stats()
	if s.Invalidations != 2 || s.Entries != 2 {
		t.Fatalf("stats %+v", s)
	}

	// Repeating the invalidation is a no-op: the tag index was cleaned.
	if n := c.InvalidateTags([]string{"y", "x"}); n != 0 {
		t.Fatalf("second invalidation removed %d entries", n)
	}

	// A re-stored key under new tags is tracked under the new tags only.
	fill("a", "z")
	if n := c.InvalidateTags([]string{"x"}); n != 0 {
		t.Fatalf("stale tag x removed %d entries", n)
	}
	if n := c.InvalidateTags([]string{"z"}); n != 2 {
		t.Fatalf("tag z removed %d entries, want 2", n)
	}
}

func TestEvictionCleansTagIndex(t *testing.T) {
	c := New(2)
	for _, key := range []string{"a", "b", "c"} { // capacity 2: evicts "a"
		c.PutTagged(key, result(1), []string{"t"})
	}
	if _, ok := c.Peek("a"); ok {
		t.Fatal("entry a should have been evicted")
	}
	if n := c.InvalidateTags([]string{"t"}); n != 2 {
		t.Fatalf("invalidation removed %d entries, want 2 (evicted key must not count)", n)
	}
	c.mu.Lock()
	idx := len(c.tagIndex)
	c.mu.Unlock()
	if idx != 0 {
		t.Fatalf("tag index holds %d tags after all entries left", idx)
	}
}

// TestSynthesizeTagsVisibleColumns pins the synthesizer-level contract the
// storage append hook relies on: a cached result is invalidated by any of
// the columns its request could see, and survives unrelated columns.
func TestSynthesizeTagsVisibleColumns(t *testing.T) {
	schema := intSchema("a", "b", "c")
	p := predicate.NewAnd(
		predicate.Cmp(predicate.CmpLT, predicate.Col("a", predicate.TypeInteger), predicate.IntConst(10)),
		predicate.Cmp(predicate.CmpGT, predicate.Col("b", predicate.TypeInteger), predicate.IntConst(0)),
	)
	s := NewSynthesizer(8)
	opts := core.Options{}

	synth := func() bool {
		_, cached, err := s.Synthesize(context.Background(), p, []string{"b"}, schema, opts)
		if err != nil {
			t.Fatal(err)
		}
		return cached
	}
	if synth() {
		t.Fatal("first synthesis should miss")
	}
	if !synth() {
		t.Fatal("second synthesis should hit")
	}
	if n := s.InvalidateColumns([]string{"c"}); n != 0 {
		t.Fatalf("unrelated column invalidated %d entries", n)
	}
	if !synth() {
		t.Fatal("result should survive an unrelated-column invalidation")
	}
	if n := s.InvalidateColumns([]string{"b"}); n != 1 { // target column
		t.Fatalf("target column invalidated %d entries, want 1", n)
	}
	if synth() {
		t.Fatal("synthesis after target-column invalidation should miss")
	}
	if n := s.InvalidateColumns([]string{"a"}); n != 1 { // predicate column
		t.Fatalf("predicate column invalidated %d entries, want 1", n)
	}
}
