package cache

import (
	"context"
	"testing"

	"sia/internal/core"
)

// TestPeekSemantics: Peek serves stored entries counting a hit, refuses
// absent keys without counting a miss (Misses keeps meaning "CEGIS loops
// started"), and refreshes the entry's LRU position.
func TestPeekSemantics(t *testing.T) {
	c := New(2)
	if _, ok := c.Peek("absent"); ok {
		t.Fatal("Peek invented an entry")
	}
	if s := c.Stats(); s.Misses != 0 || s.Hits != 0 {
		t.Fatalf("negative Peek moved counters: %+v", s)
	}

	c.Put("a", result(1))
	res, ok := c.Peek("a")
	if !ok || res.Iterations != 1 {
		t.Fatalf("Peek(a) = %v, %v", res, ok)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("positive Peek counters: %+v", s)
	}

	// Peek refreshes recency: after peeking "a", inserting past capacity
	// evicts "b", not "a".
	c.Put("b", result(2))
	c.Peek("a")
	c.Put("c", result(3))
	if _, ok := c.Peek("a"); !ok {
		t.Fatal("peeked entry was evicted before an unpeeked one")
	}
	if _, ok := c.Peek("b"); ok {
		t.Fatal("LRU tail survived eviction")
	}
}

// TestPutSemantics: Put stores without counting a miss, overwrites in
// place, and evicts past capacity.
func TestPutSemantics(t *testing.T) {
	c := New(2)
	c.Put("k", result(1))
	c.Put("k", result(2))
	if res, ok := c.Peek("k"); !ok || res.Iterations != 2 {
		t.Fatalf("overwrite: %v, %v", res, ok)
	}
	if s := c.Stats(); s.Misses != 0 || s.Entries != 1 {
		t.Fatalf("stats after Put: %+v", s)
	}

	c.Put("l", result(3))
	c.Put("m", result(4))
	if s := c.Stats(); s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats after eviction: %+v", s)
	}

	// A Put entry serves Do as a plain hit.
	res, cached, err := c.Do(context.Background(), "m", func(context.Context) (*core.Result, error) {
		t.Fatal("Do recomputed a Put entry")
		return nil, nil
	})
	if err != nil || !cached || res.Iterations != 4 {
		t.Fatalf("Do over Put: res=%v cached=%v err=%v", res, cached, err)
	}
}

// TestExportMRUOrder: Export walks most recently used first and returns a
// snapshot unaffected by later mutations.
func TestExportMRUOrder(t *testing.T) {
	c := New(8)
	for i, k := range []string{"a", "b", "c"} {
		c.Put(k, result(i))
	}
	c.Peek("a") // "a" becomes MRU

	exp := c.Export()
	if len(exp) != 3 {
		t.Fatalf("exported %d entries", len(exp))
	}
	want := []string{"a", "c", "b"}
	for i, e := range exp {
		if e.Key != want[i] {
			t.Fatalf("export order %v, want %v", keysOf(exp), want)
		}
	}

	c.Put("d", result(9))
	if len(exp) != 3 {
		t.Fatal("export snapshot grew with the cache")
	}
}

func keysOf(es []Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Key
	}
	return out
}
