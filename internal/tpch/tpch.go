// Package tpch generates TPC-H-shaped data for the orders and lineitem
// tables. The paper evaluates on TPC-H (scale factors 1 and 10) with
// PostgreSQL; this generator reproduces the schema subset and — crucially —
// the date correlations the benchmark queries exercise:
//
//	o_orderdate   ~ U[STARTDATE, ENDDATE - 151 days]
//	l_shipdate    = o_orderdate + U[1, 121]
//	l_commitdate  = o_orderdate + U[30, 90]
//	l_receiptdate = l_shipdate  + U[1, 30]
//
// (TPC-H specification rev. 2.16, clause 4.2.3.) These correlations are
// what make Sia's synthesized lineitem-only predicates selective, so
// preserving them preserves the shape of Fig. 9 and Table 4.
//
// Generation is deterministic for a given seed and scale factor. One unit
// of scale corresponds to BaseOrders orders (the full TPC-H SF-1 is
// 1,500,000 orders; experiments default to a scaled-down multiple so they
// run on a laptop, and the harness reports which scale was used).
package tpch

import (
	"math/rand"

	"sia/internal/engine"
	"sia/internal/predicate"
)

// BaseOrders is the number of orders per unit of scale factor, 1/100 of
// the official TPC-H SF-1 row count. Pass ScaleFactor: 100 for a full SF-1
// database.
const BaseOrders = 15000

// Dates of the TPC-H data population window.
var (
	startDate = predicate.DateToDays(1992, 1, 1)
	endDate   = predicate.DateToDays(1998, 12, 31)
)

// Config controls generation.
type Config struct {
	// ScaleFactor scales row counts: Orders = BaseOrders × ScaleFactor.
	// 1.0 by default.
	ScaleFactor float64
	// Seed makes generation reproducible. 0 uses a fixed default.
	Seed int64
}

// OrdersSchema returns the schema of the generated orders table.
func OrdersSchema() *predicate.Schema {
	return predicate.NewSchema(
		predicate.Column{Name: "o_orderkey", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "o_custkey", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "o_totalprice", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "o_orderdate", Type: predicate.TypeDate, NotNull: true},
	)
}

// LineitemSchema returns the schema of the generated lineitem table.
func LineitemSchema() *predicate.Schema {
	return predicate.NewSchema(
		predicate.Column{Name: "l_orderkey", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "l_linenumber", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "l_quantity", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "l_extendedprice", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "l_shipdate", Type: predicate.TypeDate, NotNull: true},
		predicate.Column{Name: "l_commitdate", Type: predicate.TypeDate, NotNull: true},
		predicate.Column{Name: "l_receiptdate", Type: predicate.TypeDate, NotNull: true},
	)
}

// JoinSchema returns the merged schema of orders ⋈ lineitem, with
// nullability preserved (all NOT NULL, as in TPC-H).
func JoinSchema() *predicate.Schema {
	return predicate.Merge(LineitemSchema(), OrdersSchema())
}

// Generate produces the orders and lineitem tables.
func Generate(cfg Config) (orders, lineitem *engine.Table) {
	if cfg.ScaleFactor == 0 {
		cfg.ScaleFactor = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 19920101
	}
	rng := rand.New(rand.NewSource(seed))
	nOrders := int(float64(BaseOrders) * cfg.ScaleFactor)

	orders = engine.NewTable("orders", OrdersSchema())
	lineitem = engine.NewTable("lineitem", LineitemSchema())

	maxOrderDate := endDate - 151
	for key := 1; key <= nOrders; key++ {
		orderDate := startDate + rng.Int63n(maxOrderDate-startDate+1)
		custKey := int64(rng.Intn(nOrders/10 + 1))
		nLines := 1 + rng.Intn(7)
		total := int64(0)
		for line := 1; line <= nLines; line++ {
			qty := int64(1 + rng.Intn(50))
			price := qty * int64(90000+rng.Intn(20001)) / 100
			total += price
			ship := orderDate + 1 + rng.Int63n(121)
			commit := orderDate + 30 + rng.Int63n(61)
			receipt := ship + 1 + rng.Int63n(30)
			lineitem.AppendRow(
				predicate.IntVal(int64(key)),
				predicate.IntVal(int64(line)),
				predicate.IntVal(qty),
				predicate.IntVal(price),
				predicate.IntVal(ship),
				predicate.IntVal(commit),
				predicate.IntVal(receipt),
			)
		}
		orders.AppendRow(
			predicate.IntVal(int64(key)),
			predicate.IntVal(custKey),
			predicate.IntVal(total),
			predicate.IntVal(orderDate),
		)
	}
	return orders, lineitem
}
