package tpch

import (
	"testing"

	"sia/internal/predicate"
)

func TestGenerateDeterministic(t *testing.T) {
	o1, l1 := Generate(Config{ScaleFactor: 0.01})
	o2, l2 := Generate(Config{ScaleFactor: 0.01})
	if o1.NumRows() != o2.NumRows() || l1.NumRows() != l2.NumRows() {
		t.Fatal("generation is not deterministic in row counts")
	}
	for i := 0; i < o1.NumRows(); i += 7 {
		if o1.Value(i, "o_orderdate").Int != o2.Value(i, "o_orderdate").Int {
			t.Fatal("generation is not deterministic in values")
		}
	}
}

func TestGenerateScale(t *testing.T) {
	o, l := Generate(Config{ScaleFactor: 0.02})
	wantOrders := int(float64(BaseOrders) * 0.02)
	if o.NumRows() != wantOrders {
		t.Fatalf("orders = %d, want %d", o.NumRows(), wantOrders)
	}
	// TPC-H averages 4 lineitems per order (1..7 uniform).
	ratio := float64(l.NumRows()) / float64(o.NumRows())
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("lineitem/order ratio = %f, want ~4", ratio)
	}
}

func TestGenerateDateCorrelations(t *testing.T) {
	// The spec's clause 4.2.3 correlations must hold row by row.
	o, l := Generate(Config{ScaleFactor: 0.02})
	orderDates := map[int64]int64{}
	for i := 0; i < o.NumRows(); i++ {
		orderDates[o.Value(i, "o_orderkey").Int] = o.Value(i, "o_orderdate").Int
		od := o.Value(i, "o_orderdate").Int
		if od < predicate.DateToDays(1992, 1, 1) || od > predicate.DateToDays(1998, 12, 31)-151 {
			t.Fatalf("o_orderdate out of window: %s", predicate.FormatDate(od))
		}
	}
	for i := 0; i < l.NumRows(); i++ {
		key := l.Value(i, "l_orderkey").Int
		od, ok := orderDates[key]
		if !ok {
			t.Fatalf("lineitem %d references missing order %d", i, key)
		}
		ship := l.Value(i, "l_shipdate").Int
		commit := l.Value(i, "l_commitdate").Int
		receipt := l.Value(i, "l_receiptdate").Int
		if d := ship - od; d < 1 || d > 121 {
			t.Fatalf("l_shipdate - o_orderdate = %d, want [1,121]", d)
		}
		if d := commit - od; d < 30 || d > 90 {
			t.Fatalf("l_commitdate - o_orderdate = %d, want [30,90]", d)
		}
		if d := receipt - ship; d < 1 || d > 30 {
			t.Fatalf("l_receiptdate - l_shipdate = %d, want [1,30]", d)
		}
		q := l.Value(i, "l_quantity").Int
		if q < 1 || q > 50 {
			t.Fatalf("l_quantity = %d", q)
		}
	}
}

func TestSchemasNotNull(t *testing.T) {
	for _, s := range []*predicate.Schema{OrdersSchema(), LineitemSchema(), JoinSchema()} {
		for _, c := range s.Columns() {
			if !c.NotNull {
				t.Fatalf("TPC-H column %s must be NOT NULL", c.Name)
			}
		}
	}
	if len(JoinSchema().Columns()) != len(OrdersSchema().Columns())+len(LineitemSchema().Columns()) {
		t.Fatal("join schema lost columns")
	}
}
