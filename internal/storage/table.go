package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"sia/internal/engine"
	"sia/internal/predicate"
)

// segFileExt is the segment file suffix; files are numbered in append
// order and scanned sorted by name, so directory order is ingestion order.
const segFileExt = ".siaseg"

// SegmentTable is a logical table stored as a directory of immutable
// segment files. Streaming ingestion appends whole segments; scans visit
// segments in append order, skipping any whose zone maps refute the
// pushed-down predicate, and concatenate the per-segment results — which
// makes a scan's output row order identical to filtering the in-memory
// concatenation of all segments.
type SegmentTable struct {
	dir    string
	name   string
	schema *predicate.Schema

	mu       sync.RWMutex
	segs     []*Segment
	onAppend []func(cols []string)
}

// Open opens (or initializes, when dir is empty) the segment table named
// name in dir, validating every existing segment file against schema.
func Open(dir, name string, schema *predicate.Schema) (*SegmentTable, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: reading table dir: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == segFileExt {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	st := &SegmentTable{dir: dir, name: name, schema: schema}
	for _, p := range paths {
		seg, err := OpenSegment(p)
		if err != nil {
			return nil, err
		}
		if err := matchSchema(schema, seg.Columns()); err != nil {
			return nil, fmt.Errorf("storage: segment %s: %w", p, err)
		}
		st.segs = append(st.segs, seg)
	}
	return st, nil
}

// matchSchema checks that a segment's catalog is exactly the table schema.
func matchSchema(schema *predicate.Schema, cols []predicate.Column) error {
	want := schema.Columns()
	if len(cols) != len(want) {
		return fmt.Errorf("has %d columns, table schema has %d", len(cols), len(want))
	}
	for i := range want {
		if cols[i] != want[i] {
			return fmt.Errorf("column %d is %+v, table schema has %+v", i, cols[i], want[i])
		}
	}
	return nil
}

// Name returns the logical table name.
func (st *SegmentTable) Name() string { return st.name }

// Schema returns the table schema.
func (st *SegmentTable) Schema() *predicate.Schema { return st.schema }

// NumRows returns the total row count across all segments.
func (st *SegmentTable) NumRows() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	for _, s := range st.segs {
		n += s.NumRows()
	}
	return n
}

// NumSegments returns the number of segments currently in the table.
func (st *SegmentTable) NumSegments() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.segs)
}

// OnAppend registers a hook invoked after every successful append with the
// table's visible-schema column names. The synthesis cache subscribes here
// so results conditioned on the table's data are invalidated the moment
// new rows land.
func (st *SegmentTable) OnAppend(fn func(cols []string)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.onAppend = append(st.onAppend, fn)
}

// Append writes all rows of t as one new segment. t's schema must equal
// the table schema.
func (st *SegmentTable) Append(t *engine.Table) error {
	return st.AppendRange(t, 0, t.NumRows())
}

// AppendRange writes rows [lo, hi) of t as one new segment file, durably
// and atomically, then fires the append hooks. A failed append leaves the
// table unchanged.
func (st *SegmentTable) AppendRange(t *engine.Table, lo, hi int) error {
	if err := matchSchema(st.schema, t.Schema().Columns()); err != nil {
		return fmt.Errorf("storage: appending to %s: %w", st.name, err)
	}
	st.mu.Lock()
	path := filepath.Join(st.dir, fmt.Sprintf("seg-%06d%s", len(st.segs), segFileExt))
	if _, err := WriteSegment(path, t, lo, hi); err != nil {
		st.mu.Unlock()
		return err
	}
	seg, err := OpenSegment(path)
	if err != nil {
		st.mu.Unlock()
		return err
	}
	st.segs = append(st.segs, seg)
	hooks := st.onAppend
	st.mu.Unlock()

	cols := make([]string, 0, len(st.schema.Columns()))
	for _, c := range st.schema.Columns() {
		cols = append(cols, c.Name)
	}
	for _, fn := range hooks {
		fn(cols)
	}
	return nil
}

// ScanFilter scans the table and returns the rows satisfying p (all rows
// when p is nil), evaluated on par workers. Segments whose zone maps prove
// p cannot be TRUE on any row are skipped without reading their column
// pages; the rest are loaded, checksum-verified, filtered, and
// concatenated in segment order. The result is value-identical to
// engine.FilterPar over the in-memory concatenation of every segment.
func (st *SegmentTable) ScanFilter(p predicate.Predicate, par int) (*engine.Table, error) {
	st.mu.RLock()
	segs := append([]*Segment(nil), st.segs...)
	st.mu.RUnlock()

	var parts []*engine.Table
	for _, seg := range segs {
		if !seg.CanMatch(p) {
			mSegmentsPruned.Inc()
			continue
		}
		t, err := seg.Load(st.name)
		if err != nil {
			return nil, err
		}
		if p != nil {
			t = engine.FilterPar(t, p, par)
		}
		parts = append(parts, t)
	}
	return concatTables(st.name, st.schema, parts)
}

// concatTables stacks parts (all sharing schema) into one table, in order.
func concatTables(name string, schema *predicate.Schema, parts []*engine.Table) (*engine.Table, error) {
	nRows := 0
	for _, p := range parts {
		nRows += p.NumRows()
	}
	cols := schema.Columns()
	values := make([]engine.ColumnValues, 0, len(cols))
	for _, c := range cols {
		cv := engine.ColumnValues{Name: c.Name}
		if c.Type.Integral() {
			cv.Ints = make([]int64, 0, nRows)
			for _, p := range parts {
				cv.Ints = append(cv.Ints, p.Ints(c.Name)...)
			}
		} else {
			cv.Reals = make([]float64, 0, nRows)
			for _, p := range parts {
				cv.Reals = append(cv.Reals, p.Reals(c.Name)...)
			}
		}
		if !c.NotNull {
			cv.Nulls = make([]bool, 0, nRows)
			for _, p := range parts {
				cv.Nulls = append(cv.Nulls, p.Nulls(c.Name)...)
			}
		}
		values = append(values, cv)
	}
	return engine.NewTableFromColumns(name, schema, nRows, values)
}
