package storage

import (
	"errors"
	"testing"

	"sia/internal/engine"
	"sia/internal/predicate"
)

// FuzzReadSegment drives the byte-level segment decoder with hostile
// input. The contract under fuzz is the library's no-panic guarantee: any
// byte string either decodes to a table or returns an error — structural
// damage matching ErrCorrupt — and a *valid* image that decodes must
// re-encode to an equal table (the decoder cannot invent or drop rows).
func FuzzReadSegment(f *testing.F) {
	// Seed with well-formed segments of a few shapes so the fuzzer mutates
	// real structure instead of flailing at the magic check.
	seed := func(rows int, nullable bool) []byte {
		schema := predicate.NewSchema(
			predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
			predicate.Column{Name: "b", Type: predicate.TypeDouble, NotNull: !nullable},
		)
		t := engine.NewTable("t", schema)
		for i := 0; i < rows; i++ {
			b := predicate.RealVal(float64(i) * 1.5)
			if nullable && i%3 == 0 {
				b = predicate.NullValue()
			}
			t.AppendRow(predicate.IntVal(int64(i*7-20)), b)
		}
		buf, _, err := encodeSegment(t, 0, rows)
		if err != nil {
			f.Fatal(err)
		}
		return buf
	}
	f.Add(seed(0, false))
	f.Add(seed(5, false))
	f.Add(seed(64, true))
	f.Add([]byte(segMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := DecodeSegment("fuzz", data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("DecodeSegment returned a non-corruption error: %v", err)
			}
			return
		}
		// Valid image: re-encoding its table must produce a decodable
		// segment holding equal data.
		buf, _, err := encodeSegment(tbl, 0, tbl.NumRows())
		if err != nil {
			t.Fatalf("re-encoding a decoded table failed: %v", err)
		}
		back, err := DecodeSegment("fuzz", buf)
		if err != nil {
			t.Fatalf("re-encoded segment does not decode: %v", err)
		}
		if !engine.TablesEqual(tbl, back) {
			t.Fatal("decode → encode → decode changed the data")
		}
	})
}
