package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"sia/internal/engine"
	"sia/internal/predicate"
)

// Segment is an opened, validated segment file. Opening reads and checks
// only the header, catalog and footer (a few hundred bytes regardless of
// segment size); the column pages stay on disk until Load, so a scan that
// prunes the segment via its zone maps never pays for them.
type Segment struct {
	path string
	meta *segMeta
}

// OpenSegment opens and validates the segment file at path: magic, header
// and footer checksums, catalog sanity, the exact file size the header
// implies, and header/footer row-count agreement. Structural damage
// surfaces as an error matching ErrCorrupt; I/O failures pass through.
func OpenSegment(path string) (*Segment, error) {
	start := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: opening segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: stating segment: %w", err)
	}
	size := st.Size()
	if size < headerFixedLen+trailerLen {
		return nil, corrupt("%s: file of %d bytes is too small for a segment", path, size)
	}

	fixed := make([]byte, headerFixedLen)
	if _, err := io.ReadFull(f, fixed); err != nil {
		return nil, fmt.Errorf("storage: reading segment header: %w", err)
	}
	headerLen := int64(headerFixedLen) + int64(binary.LittleEndian.Uint32(fixed[20:])) + 4
	if headerLen > size {
		return nil, corrupt("%s: header claims %d bytes in a %d-byte file", path, headerLen, size)
	}
	hdr := make([]byte, headerLen)
	copy(hdr, fixed)
	if _, err := io.ReadFull(f, hdr[headerFixedLen:]); err != nil {
		return nil, fmt.Errorf("storage: reading segment catalog: %w", err)
	}
	layout, err := parseHeader(hdr, size)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}

	ft := make([]byte, layout.footerLen+trailerLen)
	if _, err := f.ReadAt(ft, layout.footerOff); err != nil {
		return nil, fmt.Errorf("storage: reading segment footer: %w", err)
	}
	zones, err := parseFooter(ft, layout)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}

	mBytesRead.Add(uint64(headerLen) + uint64(len(ft)))
	mOpenSeconds.Observe(time.Since(start).Seconds())
	return &Segment{path: path, meta: &segMeta{layout: layout, zones: zones}}, nil
}

// NumRows returns the segment's row count.
func (s *Segment) NumRows() int { return s.meta.rows() }

// Columns returns the segment's column catalog in file order.
func (s *Segment) Columns() []predicate.Column { return s.meta.cols() }

// Zones returns the per-column zone maps in catalog order.
func (s *Segment) Zones() []ZoneMap { return s.meta.zones }

// Load reads the segment's column pages, verifies each page checksum, and
// decodes them into an engine table named name. Every Load re-reads the
// file — decoded segments are deliberately not cached, so the I/O a pruned
// segment avoids is real.
func (s *Segment) Load(name string) (*engine.Table, error) {
	start := time.Now()
	f, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("storage: opening segment: %w", err)
	}
	defer f.Close()

	layout := s.meta.layout
	pagesOff := align8(int64(0))
	if len(layout.pages) > 0 {
		pagesOff = layout.pages[0].off
	}
	pages := make([]byte, layout.footerOff-pagesOff)
	if _, err := f.ReadAt(pages, pagesOff); err != nil {
		return nil, fmt.Errorf("storage: reading segment pages: %w", err)
	}

	cols := s.meta.cols()
	values := make([]engine.ColumnValues, 0, len(cols))
	for i, c := range cols {
		page := layout.pages[i]
		rel := page.off - pagesOff
		if err := verifyPage(c, pages[rel:rel+page.dataLen()+4]); err != nil {
			return nil, fmt.Errorf("%s: %w", s.path, err)
		}
		values = append(values, decodePage(c, s.meta.rows(), pages[rel:rel+page.dataLen()]))
	}
	t, err := engine.NewTableFromColumns(name, predicate.NewSchema(cols...), s.meta.rows(), values)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", s.path, corrupt("rebuilding table: %v", err))
	}

	mBytesRead.Add(uint64(len(pages)))
	mSegmentsScanned.Inc()
	mDecodeSeconds.Observe(time.Since(start).Seconds())
	return t, nil
}
