// Package storage is Sia's disk-backed columnar segment store. The
// in-memory engine caps the reproduction's scale factor and confines the
// Sia rewrite's payoff to row filtering; this package moves base tables to
// disk so a synthesized single-column predicate — exactly the shape zone
// maps evaluate — turns into *I/O elimination*: segments whose per-column
// min/max ranges cannot satisfy a pushed-down predicate are never read or
// decoded at all.
//
// A logical table is a directory of immutable segment files, appended by
// streaming ingestion and scanned in file order. Each segment is a
// self-describing, mmap-friendly flat file: fixed-width little-endian
// columns (int64 values; float64 bit patterns for DOUBLE) with optional
// null bitmaps, a header carrying magic/version/row-count/column catalog,
// a CRC-32 checksum per column page, and a footer holding per-column
// min/max zone maps and null counts. Writes are atomic and durable
// (tmp + fsync + rename + dir fsync via internal/fsatomic), so a crash
// mid-append leaves the previous segment set intact.
//
// Every corruption — truncation, bad magic, checksum mismatch, a footer
// that disagrees with the header's row count — surfaces as an error
// matching ErrCorrupt via errors.Is; the reader never panics on hostile
// bytes (see FuzzReadSegment).
package storage

import "errors"

// ErrCorrupt is the typed corruption sentinel: every structural problem a
// segment file can have — truncation, unknown magic or version, CRC
// mismatch on the header, a column page, or the footer, and header/footer
// row-count disagreement — returns an error wrapping ErrCorrupt, so
// callers distinguish "this file is damaged" (quarantine, re-ingest) from
// I/O errors (retry) with errors.Is.
var ErrCorrupt = errors.New("storage: corrupt segment")
