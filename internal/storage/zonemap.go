package storage

import (
	"math/big"

	"sia/internal/predicate"
)

// Zone-map pruning is a tiny abstract interpretation: each segment is
// summarized by per-column intervals (the footer's min/max over non-NULL
// values) plus NULL presence, and a predicate is evaluated over that
// summary into the *set* of three-valued truth outcomes its rows could
// produce. A scan may skip a segment exactly when TRUE is not in that set —
// SQL filters keep only TRUE rows, so a segment that can yield at most
// FALSE/UNKNOWN contributes nothing.
//
// The evaluation is a sound over-approximation: anything it cannot bound
// (non-linear expressions, DOUBLE columns, columns the segment does not
// carry) widens to "any outcome", which can only prevent pruning, never
// cause a wrong skip. Soundness is pinned by a property test that checks
// the abstract truth set against row-by-row predicate.Eval on random
// segments.

// truthSet is a bitmask over the three-valued logic outcomes a predicate
// can take on some row of a segment.
type truthSet uint8

const (
	canTrue truthSet = 1 << iota
	canFalse
	canUnknown

	truthAny = canTrue | canFalse | canUnknown
)

// colStat is the per-column abstraction the evaluator consumes.
type colStat struct {
	typ predicate.Type
	zm  ZoneMap
}

// stats returns the segment's column summaries keyed by name.
func (m *segMeta) stats() map[string]colStat {
	out := make(map[string]colStat, len(m.cols()))
	for i, c := range m.cols() {
		out[c.Name] = colStat{typ: c.Type, zm: m.zones[i]}
	}
	return out
}

// evalTruth abstractly evaluates p over the column summaries, returning
// every truth value some row could produce.
func evalTruth(p predicate.Predicate, stats map[string]colStat) truthSet {
	switch x := p.(type) {
	case *predicate.Literal:
		if x.B {
			return canTrue
		}
		return canFalse
	case *predicate.Not:
		return evalTruth(x.P, stats).negate()
	case *predicate.And:
		// Empty AND is TRUE (mirrors the evaluator).
		s := truthSet(canTrue)
		for _, q := range x.Preds {
			s = combine(s, evalTruth(q, stats), kleeneAnd)
		}
		return s
	case *predicate.Or:
		s := truthSet(canFalse)
		for _, q := range x.Preds {
			s = combine(s, evalTruth(q, stats), kleeneOr)
		}
		return s
	case *predicate.Compare:
		return evalCompare(x, stats)
	default:
		return truthAny
	}
}

func (s truthSet) negate() truthSet {
	out := s & canUnknown
	if s&canTrue != 0 {
		out |= canFalse
	}
	if s&canFalse != 0 {
		out |= canTrue
	}
	return out
}

// combine lifts a three-valued connective to truth sets pointwise: the
// result contains op(a, b) for every a in s1 and b in s2.
func combine(s1, s2 truthSet, op func(a, b predicate.TriBool) predicate.TriBool) truthSet {
	var out truthSet
	for _, a := range triValues(s1) {
		for _, b := range triValues(s2) {
			out |= triBit(op(a, b))
		}
	}
	return out
}

func triValues(s truthSet) []predicate.TriBool {
	out := make([]predicate.TriBool, 0, 3)
	if s&canTrue != 0 {
		out = append(out, predicate.True)
	}
	if s&canFalse != 0 {
		out = append(out, predicate.False)
	}
	if s&canUnknown != 0 {
		out = append(out, predicate.Unknown)
	}
	return out
}

func triBit(v predicate.TriBool) truthSet {
	switch v {
	case predicate.True:
		return canTrue
	case predicate.False:
		return canFalse
	default:
		return canUnknown
	}
}

func kleeneAnd(a, b predicate.TriBool) predicate.TriBool {
	switch {
	// tribool: this IS the Kleene AND truth table — False absorbs, and the
	// next case keeps Unknown distinct from True.
	case a == predicate.False || b == predicate.False:
		return predicate.False
	case a == predicate.Unknown || b == predicate.Unknown:
		return predicate.Unknown
	default:
		return predicate.True
	}
}

func kleeneOr(a, b predicate.TriBool) predicate.TriBool {
	switch {
	// tribool: this IS the Kleene OR truth table — True absorbs, and the
	// next case keeps Unknown distinct from False.
	case a == predicate.True || b == predicate.True:
		return predicate.True
	case a == predicate.Unknown || b == predicate.Unknown:
		return predicate.Unknown
	default:
		return predicate.False
	}
}

// evalCompare bounds Left−Right by exact interval arithmetic over the
// column min/max summaries and reads the comparison's possible outcomes
// off the interval's position relative to zero. NULLs in a referenced
// column add UNKNOWN; an all-NULL referenced column forces UNKNOWN for
// every row; anything unboundable widens to truthAny.
//
// NULL handling walks the *syntactic* column set, not the linear form's
// coefficients: a column can vanish from the linear form (0*ts, ts-ts) yet
// still poison the expression with NULL, because NULL propagates through
// arithmetic regardless of its coefficient.
func evalCompare(c *predicate.Compare, stats map[string]colStat) truthSet {
	hasNull := false
	refd := predicate.ExprColumns(c.Left, nil)
	refd = predicate.ExprColumns(c.Right, refd)
	for _, col := range refd {
		st, ok := stats[col]
		if !ok || !st.typ.Integral() {
			return truthAny // column not summarized as an int64 interval
		}
		if !st.zm.HasValues {
			// Every row's value is NULL: the whole comparison is UNKNOWN
			// on every row, regardless of the other terms.
			return canUnknown
		}
		if st.zm.NullCount > 0 {
			hasNull = true
		}
	}

	lhs, err := predicate.Linearize(c.Left)
	if err != nil {
		return truthAny
	}
	rhs, err := predicate.Linearize(c.Right)
	if err != nil {
		return truthAny
	}
	diff := lhs.Clone()
	diff.AddScaled(rhs, big.NewRat(-1, 1))

	lo := new(big.Rat).Set(diff.Const)
	hi := new(big.Rat).Set(diff.Const)
	for col, coeff := range diff.Coeffs {
		st := stats[col] // present and integral: checked above
		cmin := new(big.Rat).SetInt64(st.zm.Min)
		cmax := new(big.Rat).SetInt64(st.zm.Max)
		if coeff.Sign() >= 0 {
			lo.Add(lo, new(big.Rat).Mul(coeff, cmin))
			hi.Add(hi, new(big.Rat).Mul(coeff, cmax))
		} else {
			lo.Add(lo, new(big.Rat).Mul(coeff, cmax))
			hi.Add(hi, new(big.Rat).Mul(coeff, cmin))
		}
	}

	s := intervalOutcomes(c.Op, lo, hi)
	if hasNull {
		s |= canUnknown
	}
	return s
}

// intervalOutcomes returns the outcomes of "x op 0" over x ∈ [lo, hi].
func intervalOutcomes(op predicate.CmpOp, lo, hi *big.Rat) truthSet {
	var s truthSet
	loSign, hiSign := lo.Sign(), hi.Sign()
	point := lo.Cmp(hi) == 0
	switch op {
	case predicate.CmpLT:
		if loSign < 0 {
			s |= canTrue
		}
		if hiSign >= 0 {
			s |= canFalse
		}
	case predicate.CmpLE:
		if loSign <= 0 {
			s |= canTrue
		}
		if hiSign > 0 {
			s |= canFalse
		}
	case predicate.CmpGT:
		if hiSign > 0 {
			s |= canTrue
		}
		if loSign <= 0 {
			s |= canFalse
		}
	case predicate.CmpGE:
		if hiSign >= 0 {
			s |= canTrue
		}
		if loSign < 0 {
			s |= canFalse
		}
	case predicate.CmpEQ:
		if loSign <= 0 && hiSign >= 0 {
			s |= canTrue
		}
		if !(point && loSign == 0) {
			s |= canFalse
		}
	case predicate.CmpNE:
		if !(point && loSign == 0) {
			s |= canTrue
		}
		if loSign <= 0 && hiSign >= 0 {
			s |= canFalse
		}
	default:
		return truthAny
	}
	return s
}

// CanMatch reports whether some row of the segment could satisfy p
// (evaluate to TRUE). A false return is a proof from the zone maps that a
// scan may skip the segment without reading any column page. A nil
// predicate matches everything.
func (s *Segment) CanMatch(p predicate.Predicate) bool {
	if p == nil {
		return true
	}
	return evalTruth(p, s.meta.stats())&canTrue != 0
}
