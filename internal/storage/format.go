package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"sia/internal/engine"
	"sia/internal/fsatomic"
	"sia/internal/predicate"
)

// Segment file layout (all integers little-endian):
//
//	┌──────────────────────────────────────────────────────────────┐
//	│ header   magic "SIASEG01" (8) — name + format version        │
//	│          rowCount uint64                                     │
//	│          colCount uint32 · catalogLen uint32                 │
//	│          catalog: per column {nameLen u16, name, type u8,    │
//	│                               notNull u8}                    │
//	│          headerCRC uint32 (CRC-32/IEEE of everything above)  │
//	│          zero padding to an 8-byte boundary                  │
//	├──────────────────────────────────────────────────────────────┤
//	│ pages    one per column, in catalog order, each 8-aligned:   │
//	│          values  rowCount × 8 bytes (int64, or float64 bits) │
//	│          bitmap  ⌈rowCount/8⌉ bytes, nullable columns only   │
//	│                  (bit r&7 of byte r>>3 set ⇔ row r is NULL)  │
//	│          pageCRC uint32 over values+bitmap · pad to 8        │
//	├──────────────────────────────────────────────────────────────┤
//	│ footer   rowCount uint64 (echo — must agree with the header) │
//	│          per column {min u64, max u64, nullCount u64}        │
//	│          (min/max are int64 bits over non-NULL values;       │
//	│           float64 bits for DOUBLE; min>max ⇔ no values)      │
//	│ trailer  footerCRC uint32 · footerLen uint32 ·               │
//	│          end magic "SIASEGZ1" (8)                            │
//	└──────────────────────────────────────────────────────────────┘
//
// The fixed 8-byte stride and 8-aligned page starts make the value arrays
// directly overlayable by an mmap-style reader; every offset is computable
// from the header alone, so the reader seeks straight to any column. The
// trailer sits at a fixed distance from the end of the file, so zone maps
// load with one small read regardless of segment size.
const (
	segMagic    = "SIASEG01"
	segEndMagic = "SIASEGZ1"

	headerFixedLen = 8 + 8 + 4 + 4 // magic, rowCount, colCount, catalogLen
	trailerLen     = 4 + 4 + 8     // footerCRC, footerLen, end magic

	// maxSegmentRows and maxSegmentCols bound what a header may claim
	// before any size arithmetic happens, so a corrupt row count can never
	// drive allocation or overflow the layout computation.
	maxSegmentRows = 1 << 31
	maxSegmentCols = 1 << 12
	maxColNameLen  = 1 << 10
)

// ZoneMap is one column's per-segment statistics: the min/max over its
// non-NULL values and the NULL count. For DOUBLE columns Min and Max hold
// math.Float64bits patterns; for integral columns they are the values
// themselves. HasValues is false when every row is NULL (or the segment is
// empty), in which case Min/Max are meaningless.
type ZoneMap struct {
	Min, Max  int64
	NullCount uint64
	HasValues bool
}

// pageSpec locates one column page inside a segment file.
type pageSpec struct {
	off    int64 // start of the values array (8-aligned)
	valLen int64
	bmLen  int64 // 0 for NOT NULL columns
}

// dataLen returns the CRC-covered byte count (values + bitmap).
func (p pageSpec) dataLen() int64 { return p.valLen + p.bmLen }

// segLayout is the computed geometry of a segment file: where every page
// and the footer live, and the exact total size. It is a pure function of
// (rowCount, catalog), which is what lets the reader cross-check a file's
// actual size against what its header implies.
type segLayout struct {
	rows      int
	cols      []predicate.Column
	pages     []pageSpec
	footerOff int64
	footerLen int64
	size      int64
}

func align8(v int64) int64 { return (v + 7) &^ 7 }

// computeLayout derives the file geometry from the header's claims.
// Bounds on rows and cols are enforced by the header parser, so the
// arithmetic here cannot overflow int64.
func computeLayout(rows int, cols []predicate.Column, headerLen int64) segLayout {
	l := segLayout{rows: rows, cols: cols}
	off := align8(headerLen)
	bmLen := int64(0)
	if rows > 0 {
		bmLen = int64((rows + 7) / 8)
	}
	for _, c := range cols {
		p := pageSpec{off: off, valLen: int64(rows) * 8}
		if !c.NotNull {
			p.bmLen = bmLen
		}
		l.pages = append(l.pages, p)
		off = align8(p.off + p.dataLen() + 4)
	}
	l.footerOff = off
	l.footerLen = 8 + 24*int64(len(cols))
	l.size = l.footerOff + l.footerLen + trailerLen
	return l
}

// corrupt wraps ErrCorrupt with a description of what disagreed.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// encodeSegment serializes rows [lo, hi) of t into the segment format,
// returning the file bytes and the per-column zone maps it embedded.
func encodeSegment(t *engine.Table, lo, hi int) ([]byte, []ZoneMap, error) {
	if lo < 0 || hi < lo || hi > t.NumRows() {
		return nil, nil, fmt.Errorf("storage: row range [%d,%d) outside table of %d rows", lo, hi, t.NumRows())
	}
	cols := t.Schema().Columns()
	if len(cols) == 0 || len(cols) > maxSegmentCols {
		return nil, nil, fmt.Errorf("storage: cannot encode %d columns", len(cols))
	}
	rows := hi - lo

	catalog := make([]byte, 0, 32*len(cols))
	for _, c := range cols {
		if len(c.Name) == 0 || len(c.Name) > maxColNameLen {
			return nil, nil, fmt.Errorf("storage: column name %q out of range", c.Name)
		}
		catalog = binary.LittleEndian.AppendUint16(catalog, uint16(len(c.Name)))
		catalog = append(catalog, c.Name...)
		catalog = append(catalog, byte(c.Type), boolByte(c.NotNull))
	}
	headerLen := int64(headerFixedLen + len(catalog) + 4)
	layout := computeLayout(rows, cols, headerLen)

	buf := make([]byte, layout.size)
	copy(buf, segMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(rows))
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(cols)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(catalog)))
	copy(buf[headerFixedLen:], catalog)
	binary.LittleEndian.PutUint32(buf[headerFixedLen+len(catalog):],
		crc32.ChecksumIEEE(buf[:headerFixedLen+len(catalog)]))

	zones := make([]ZoneMap, len(cols))
	for i, c := range cols {
		page := layout.pages[i]
		vals := buf[page.off : page.off+page.valLen]
		bm := buf[page.off+page.valLen : page.off+page.dataLen()]
		zones[i] = encodeColumn(t, c, lo, hi, vals, bm)
		binary.LittleEndian.PutUint32(buf[page.off+page.dataLen():],
			crc32.ChecksumIEEE(buf[page.off:page.off+page.dataLen()]))
	}

	footer := buf[layout.footerOff : layout.footerOff+layout.footerLen]
	binary.LittleEndian.PutUint64(footer, uint64(rows))
	for i := range cols {
		binary.LittleEndian.PutUint64(footer[8+24*i:], uint64(zones[i].Min))
		binary.LittleEndian.PutUint64(footer[8+24*i+8:], uint64(zones[i].Max))
		binary.LittleEndian.PutUint64(footer[8+24*i+16:], zones[i].NullCount)
	}
	tr := buf[layout.footerOff+layout.footerLen:]
	binary.LittleEndian.PutUint32(tr, crc32.ChecksumIEEE(footer))
	binary.LittleEndian.PutUint32(tr[4:], uint32(layout.footerLen))
	copy(tr[8:], segEndMagic)
	return buf, zones, nil
}

// encodeColumn fills one column page (values and, when nullable, the NULL
// bitmap) for rows [lo, hi) and returns the column's zone map. NULL rows
// write a zero value slot; only non-NULL values feed min/max.
func encodeColumn(t *engine.Table, c predicate.Column, lo, hi int, vals, bm []byte) ZoneMap {
	zm := ZoneMap{Min: math.MaxInt64, Max: math.MinInt64}
	var fmin, fmax = math.Inf(1), math.Inf(-1)
	nulls := t.Nulls(c.Name)
	put := func(i int, bits int64) {
		binary.LittleEndian.PutUint64(vals[8*i:], uint64(bits))
	}
	for r := lo; r < hi; r++ {
		i := r - lo
		if nulls != nil && nulls[r] {
			zm.NullCount++
			bm[i>>3] |= 1 << (i & 7)
			put(i, 0)
			continue
		}
		if c.Type.Integral() {
			v := t.Ints(c.Name)[r]
			if v < zm.Min {
				zm.Min = v
			}
			if v > zm.Max {
				zm.Max = v
			}
			put(i, v)
		} else {
			v := t.Reals(c.Name)[r]
			if v < fmin {
				fmin = v
			}
			if v > fmax {
				fmax = v
			}
			put(i, int64(math.Float64bits(v)))
		}
	}
	zm.HasValues = zm.NullCount < uint64(hi-lo)
	if !c.Type.Integral() {
		zm.Min = int64(math.Float64bits(fmin))
		zm.Max = int64(math.Float64bits(fmax))
	}
	return zm
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// WriteSegment encodes rows [lo, hi) of t as one segment file at path,
// atomically and durably (tmp + fsync + rename + directory fsync), and
// returns the zone maps it embedded. On error the previous file at path,
// if any, is untouched.
func WriteSegment(path string, t *engine.Table, lo, hi int) ([]ZoneMap, error) {
	buf, zones, err := encodeSegment(t, lo, hi)
	if err != nil {
		return nil, err
	}
	if err := fsatomic.WriteFileBytes(path, buf); err != nil {
		return nil, fmt.Errorf("storage: writing segment: %w", err)
	}
	mBytesWritten.Add(uint64(len(buf)))
	return zones, nil
}

// segMeta is everything a parsed segment header+footer says about a file:
// its schema, geometry, and zone maps — enough to decide pruning and to
// locate pages, without touching any column data.
type segMeta struct {
	layout segLayout
	zones  []ZoneMap
}

func (m *segMeta) rows() int                { return m.layout.rows }
func (m *segMeta) cols() []predicate.Column { return m.layout.cols }

// parseHeader validates the fixed header and catalog held in hdr (which
// must contain at least the full header region) and returns the implied
// layout. totalSize is the file's actual size, cross-checked against the
// layout so a truncated or padded file is rejected before any page read.
func parseHeader(hdr []byte, totalSize int64) (segLayout, error) {
	var zero segLayout
	if int64(len(hdr)) < headerFixedLen {
		return zero, corrupt("file of %d bytes is shorter than the %d-byte fixed header", totalSize, headerFixedLen)
	}
	if string(hdr[:8]) != segMagic {
		return zero, corrupt("bad magic %q (want %q)", hdr[:8], segMagic)
	}
	rows64 := binary.LittleEndian.Uint64(hdr[8:])
	colCount := binary.LittleEndian.Uint32(hdr[16:])
	catalogLen := binary.LittleEndian.Uint32(hdr[20:])
	if rows64 > maxSegmentRows {
		return zero, corrupt("row count %d exceeds the format bound %d", rows64, maxSegmentRows)
	}
	if colCount == 0 || colCount > maxSegmentCols {
		return zero, corrupt("column count %d outside [1,%d]", colCount, maxSegmentCols)
	}
	headerLen := int64(headerFixedLen) + int64(catalogLen) + 4
	if int64(len(hdr)) < headerLen {
		return zero, corrupt("truncated header: %d bytes, catalog claims %d", len(hdr), headerLen)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[headerFixedLen+int(catalogLen):])
	if got := crc32.ChecksumIEEE(hdr[:headerFixedLen+int(catalogLen)]); got != wantCRC {
		return zero, corrupt("header checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}

	catalog := hdr[headerFixedLen : headerFixedLen+int(catalogLen)]
	cols := make([]predicate.Column, 0, colCount)
	seen := make(map[string]bool, colCount)
	for i := uint32(0); i < colCount; i++ {
		if len(catalog) < 2 {
			return zero, corrupt("catalog truncated at column %d", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(catalog))
		catalog = catalog[2:]
		if nameLen == 0 || nameLen > maxColNameLen || len(catalog) < nameLen+2 {
			return zero, corrupt("catalog entry %d has name length %d with %d bytes left", i, nameLen, len(catalog))
		}
		name := string(catalog[:nameLen])
		typ := predicate.Type(catalog[nameLen])
		notNull := catalog[nameLen+1]
		catalog = catalog[nameLen+2:]
		if typ != predicate.TypeInteger && typ != predicate.TypeDouble &&
			typ != predicate.TypeDate && typ != predicate.TypeTimestamp {
			return zero, corrupt("column %q has unknown type %d", name, typ)
		}
		if notNull > 1 {
			return zero, corrupt("column %q has bad notNull byte %d", name, notNull)
		}
		if seen[name] {
			return zero, corrupt("duplicate column %q in catalog", name)
		}
		seen[name] = true
		cols = append(cols, predicate.Column{Name: name, Type: typ, NotNull: notNull == 1})
	}
	if len(catalog) != 0 {
		return zero, corrupt("%d trailing bytes after the last catalog entry", len(catalog))
	}

	layout := computeLayout(int(rows64), cols, headerLen)
	if layout.size != totalSize {
		return zero, corrupt("file is %d bytes, header implies %d (truncated or padded)", totalSize, layout.size)
	}
	return layout, nil
}

// parseFooter validates the footer+trailer bytes (the last
// footerLen+trailerLen bytes of the file) against the layout and returns
// the zone maps. The row-count echo must agree with the header.
func parseFooter(ft []byte, layout segLayout) ([]ZoneMap, error) {
	if int64(len(ft)) != layout.footerLen+trailerLen {
		return nil, corrupt("footer region is %d bytes, want %d", len(ft), layout.footerLen+trailerLen)
	}
	footer := ft[:layout.footerLen]
	tr := ft[layout.footerLen:]
	if string(tr[8:16]) != segEndMagic {
		return nil, corrupt("bad end magic %q (want %q)", tr[8:16], segEndMagic)
	}
	if got := int64(binary.LittleEndian.Uint32(tr[4:])); got != layout.footerLen {
		return nil, corrupt("trailer footer length %d disagrees with catalog-implied %d", got, layout.footerLen)
	}
	wantCRC := binary.LittleEndian.Uint32(tr)
	if got := crc32.ChecksumIEEE(footer); got != wantCRC {
		return nil, corrupt("footer checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
	}
	echo := binary.LittleEndian.Uint64(footer)
	if echo != uint64(layout.rows) {
		return nil, corrupt("footer row count %d disagrees with header row count %d", echo, layout.rows)
	}
	zones := make([]ZoneMap, len(layout.cols))
	for i := range layout.cols {
		zones[i] = ZoneMap{
			Min:       int64(binary.LittleEndian.Uint64(footer[8+24*i:])),
			Max:       int64(binary.LittleEndian.Uint64(footer[8+24*i+8:])),
			NullCount: binary.LittleEndian.Uint64(footer[8+24*i+16:]),
		}
		if zones[i].NullCount > uint64(layout.rows) {
			return nil, corrupt("column %q claims %d NULLs in %d rows", layout.cols[i].Name, zones[i].NullCount, layout.rows)
		}
		zones[i].HasValues = zones[i].NullCount < uint64(layout.rows)
	}
	return zones, nil
}

// parseSegment validates a whole in-memory segment image (header, size,
// footer — not page checksums, which are verified page by page on decode)
// and returns its metadata.
func parseSegment(data []byte) (*segMeta, error) {
	layout, err := parseHeader(data, int64(len(data)))
	if err != nil {
		return nil, err
	}
	zones, err := parseFooter(data[layout.footerOff:], layout)
	if err != nil {
		return nil, err
	}
	return &segMeta{layout: layout, zones: zones}, nil
}

// decodePage turns one column's page bytes (values + optional bitmap,
// checksum already verified) into engine column arrays.
func decodePage(c predicate.Column, rows int, page []byte) engine.ColumnValues {
	cv := engine.ColumnValues{Name: c.Name}
	vals := page[:rows*8]
	if c.Type.Integral() {
		cv.Ints = make([]int64, rows)
		decodeInt64s(cv.Ints, vals)
	} else {
		cv.Reals = make([]float64, rows)
		decodeFloat64s(cv.Reals, vals)
	}
	if !c.NotNull {
		bm := page[rows*8:]
		cv.Nulls = make([]bool, rows)
		for i := range cv.Nulls {
			cv.Nulls[i] = bm[i>>3]&(1<<(i&7)) != 0
		}
	}
	return cv
}

// decodeInt64s fills dst from little-endian 8-byte slots — the segment
// scan's innermost decode loop.
//
// sia:hotpath
func decodeInt64s(dst []int64, src []byte) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
	}
}

// decodeFloat64s fills dst from little-endian float64 bit patterns.
//
// sia:hotpath
func decodeFloat64s(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}

// DecodeSegment decodes a complete in-memory segment image into an engine
// table named name, verifying every checksum. It is the byte-level entry
// point the fuzz target drives; OpenSegment/Load is the file-level reader
// built on the same validators.
func DecodeSegment(name string, data []byte) (*engine.Table, error) {
	meta, err := parseSegment(data)
	if err != nil {
		return nil, err
	}
	cols := meta.cols()
	values := make([]engine.ColumnValues, 0, len(cols))
	for i, c := range cols {
		page := meta.layout.pages[i]
		if err := verifyPage(c, data[page.off:page.off+page.dataLen()+4]); err != nil {
			return nil, err
		}
		values = append(values, decodePage(c, meta.rows(), data[page.off:page.off+page.dataLen()]))
	}
	t, err := engine.NewTableFromColumns(name, predicate.NewSchema(cols...), meta.rows(), values)
	if err != nil {
		return nil, corrupt("rebuilding table: %v", err)
	}
	return t, nil
}

// verifyPage checks one column page's CRC (page holds values+bitmap+crc).
func verifyPage(c predicate.Column, page []byte) error {
	dataLen := len(page) - 4
	wantCRC := binary.LittleEndian.Uint32(page[dataLen:])
	if got := crc32.ChecksumIEEE(page[:dataLen]); got != wantCRC {
		return corrupt("column %q page checksum mismatch (stored %08x, computed %08x)", c.Name, wantCRC, got)
	}
	return nil
}
