package storage

import "sia/internal/obs"

// Process-wide storage counters, registered in the default obs registry so
// they export alongside the engine and serving metrics. Scan paths bump
// them unconditionally; the benchmark harness reads Snapshot() deltas to
// report per-experiment pruning effectiveness.
var (
	mSegmentsScanned = obs.Default().Counter("sia_storage_segments_scanned_total",
		"Segments whose column pages were read and decoded by a scan.")
	mSegmentsPruned = obs.Default().Counter("sia_storage_segments_pruned_total",
		"Segments skipped entirely because zone maps refuted the pushed-down predicate.")
	mBytesRead = obs.Default().Counter("sia_storage_bytes_read_total",
		"Bytes of segment files read from disk (headers, footers and column pages).")
	mBytesWritten = obs.Default().Counter("sia_storage_bytes_written_total",
		"Bytes of segment files written to disk.")
	mOpenSeconds = obs.Default().Histogram("sia_storage_segment_open_seconds",
		"Latency of opening a segment (header + footer read and validation).", obs.DurationBuckets())
	mDecodeSeconds = obs.Default().Histogram("sia_storage_segment_decode_seconds",
		"Latency of loading a segment's column pages into an engine table.", obs.DurationBuckets())
)

// CounterSnapshot is a point-in-time copy of the storage counters. Two
// snapshots subtract to give per-interval activity.
type CounterSnapshot struct {
	SegmentsScanned uint64 `json:"segments_scanned"`
	SegmentsPruned  uint64 `json:"segments_pruned"`
	BytesRead       uint64 `json:"bytes_read"`
	BytesWritten    uint64 `json:"bytes_written"`
}

// SnapshotCounters reads the current storage counter values.
func SnapshotCounters() CounterSnapshot {
	return CounterSnapshot{
		SegmentsScanned: mSegmentsScanned.Value(),
		SegmentsPruned:  mSegmentsPruned.Value(),
		BytesRead:       mBytesRead.Value(),
		BytesWritten:    mBytesWritten.Value(),
	}
}

// Sub returns the counter deltas s−prev (component-wise).
func (s CounterSnapshot) Sub(prev CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{
		SegmentsScanned: s.SegmentsScanned - prev.SegmentsScanned,
		SegmentsPruned:  s.SegmentsPruned - prev.SegmentsPruned,
		BytesRead:       s.BytesRead - prev.BytesRead,
		BytesWritten:    s.BytesWritten - prev.BytesWritten,
	}
}
