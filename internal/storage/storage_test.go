package storage

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sia/internal/engine"
	"sia/internal/predicate"
)

// testSchema covers all four column types plus a nullable column.
func testSchema() *predicate.Schema {
	return predicate.NewSchema(
		predicate.Column{Name: "id", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "d", Type: predicate.TypeDate, NotNull: true},
		predicate.Column{Name: "ts", Type: predicate.TypeTimestamp, NotNull: false},
		predicate.Column{Name: "x", Type: predicate.TypeDouble, NotNull: false},
	)
}

// buildTable fills a table with rows rows of deterministic pseudo-random
// data, including NULLs in the nullable columns.
func buildTable(t *testing.T, rows int, seed int64) *engine.Table {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tbl := engine.NewTable("t", testSchema())
	for i := 0; i < rows; i++ {
		ts := predicate.IntVal(r.Int63n(1e9))
		if r.Intn(5) == 0 {
			ts = predicate.NullValue()
		}
		x := predicate.RealVal(r.NormFloat64() * 100)
		if r.Intn(7) == 0 {
			x = predicate.NullValue()
		}
		tbl.AppendRow(
			predicate.IntVal(int64(i)),
			predicate.IntVal(r.Int63n(5000)-2500),
			ts,
			x,
		)
	}
	return tbl
}

func writeTestSegment(t *testing.T, tbl *engine.Table) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg-000000"+segFileExt)
	if _, err := WriteSegment(path, tbl, 0, tbl.NumRows()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, rows := range []int{0, 1, 7, 8, 9, 1000} {
		tbl := buildTable(t, rows, int64(rows)+1)
		path := writeTestSegment(t, tbl)
		seg, err := OpenSegment(path)
		if err != nil {
			t.Fatalf("rows=%d: open: %v", rows, err)
		}
		if seg.NumRows() != rows {
			t.Fatalf("rows=%d: segment reports %d rows", rows, seg.NumRows())
		}
		got, err := seg.Load("t")
		if err != nil {
			t.Fatalf("rows=%d: load: %v", rows, err)
		}
		if !engine.TablesEqual(tbl, got) {
			t.Fatalf("rows=%d: decoded table differs from original", rows)
		}
	}
}

func TestSegmentZoneMapsMatchData(t *testing.T) {
	tbl := buildTable(t, 500, 3)
	path := writeTestSegment(t, tbl)
	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	cols := seg.Columns()
	zones := seg.Zones()
	for i, c := range cols {
		if !c.Type.Integral() {
			continue
		}
		vals := tbl.Ints(c.Name)
		nulls := tbl.Nulls(c.Name)
		var min, max int64
		var nNull uint64
		first := true
		for r := 0; r < tbl.NumRows(); r++ {
			if nulls != nil && nulls[r] {
				nNull++
				continue
			}
			if first || vals[r] < min {
				min = vals[r]
			}
			if first || vals[r] > max {
				max = vals[r]
			}
			first = false
		}
		zm := zones[i]
		if zm.NullCount != nNull {
			t.Errorf("%s: null count %d, want %d", c.Name, zm.NullCount, nNull)
		}
		if !zm.HasValues {
			t.Errorf("%s: zone map claims no values", c.Name)
		}
		if zm.Min != min || zm.Max != max {
			t.Errorf("%s: zone [%d,%d], want [%d,%d]", c.Name, zm.Min, zm.Max, min, max)
		}
	}
}

// corruptions is the table of byte-level mutilations that must every one
// surface as ErrCorrupt — from either OpenSegment or Load — and never as a
// panic.
func TestCorruptSegmentsReturnErrCorrupt(t *testing.T) {
	tbl := buildTable(t, 200, 5)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		openErr bool // corruption must already fail OpenSegment
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }, true},
		{"truncated mid file", func(b []byte) []byte { return b[:len(b)/2] }, true},
		{"truncated by one byte", func(b []byte) []byte { return b[:len(b)-1] }, true},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, true},
		{"bad end magic", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, true},
		{"header crc flip", func(b []byte) []byte { b[9] ^= 0x01; return b }, true},
		{"footer crc flip", func(b []byte) []byte { b[len(b)-20] ^= 0x01; return b }, true},
		{"header size lie", func(b []byte) []byte {
			// Bump the header row count and re-fix the header CRC, so the
			// checksum passes and only the layout-vs-file-size cross-check
			// can catch the lie.
			rows := binary.LittleEndian.Uint64(b[8:])
			binary.LittleEndian.PutUint64(b[8:], rows+1)
			catalogLen := int(binary.LittleEndian.Uint32(b[20:]))
			crcEnd := headerFixedLen + catalogLen
			binary.LittleEndian.PutUint32(b[crcEnd:], crc32.ChecksumIEEE(b[:crcEnd]))
			return b
		}, true},
		{"page bit flip", func(b []byte) []byte {
			// Flip a value byte in the first column page, far from any
			// header/footer structure.
			b[256] ^= 0x40
			return b
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTestSegment(t, tbl)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			seg, err := OpenSegment(path)
			if tc.openErr {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("OpenSegment error = %v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("OpenSegment should pass for %s, got %v", tc.name, err)
			}
			if _, err := seg.Load("t"); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load error = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestFooterRowCountDisagreement builds a file whose header and footer
// disagree with CRCs *re-fixed*, so only the explicit echo check fires.
func TestFooterRowCountDisagreement(t *testing.T) {
	tbl := buildTable(t, 16, 9)
	path := writeTestSegment(t, tbl)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The footer starts footerLen+trailerLen from the end. Patch its row
	// count echo and recompute the footer CRC stored in the trailer.
	footerLen := int(binary.LittleEndian.Uint32(raw[len(raw)-12:]))
	footerOff := len(raw) - trailerLen - footerLen
	binary.LittleEndian.PutUint64(raw[footerOff:], 17)
	crc := crc32.ChecksumIEEE(raw[footerOff : footerOff+footerLen])
	binary.LittleEndian.PutUint32(raw[len(raw)-trailerLen:], crc)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegment(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenSegment error = %v, want ErrCorrupt (row-count disagreement)", err)
	}
}

func TestOpenSegmentMissingFile(t *testing.T) {
	_, err := OpenSegment(filepath.Join(t.TempDir(), "nope"+segFileExt))
	if err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing file should be an I/O error, got %v", err)
	}
}

// TestZoneMapSoundness is the pruning safety property: for random
// predicates over random segments, every truth value predicate.Eval
// produces on some row must be contained in evalTruth's abstract set. In
// particular a pruned segment (TRUE not in the set) must have no TRUE row.
func TestZoneMapSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		tbl := buildTable(t, 50, int64(trial))
		path := writeTestSegment(t, tbl)
		seg, err := OpenSegment(path)
		if err != nil {
			t.Fatal(err)
		}
		p := randPredicate(r, 3)
		set := evalTruth(p, seg.meta.stats())
		for row := 0; row < tbl.NumRows(); row++ {
			got := predicate.Eval(p, tbl.Tuple(row))
			if set&triBit(got) == 0 {
				t.Fatalf("trial %d: predicate %s evaluates to %v on row %d but abstract set is %03b",
					trial, p.String(), got, row, set)
			}
		}
	}
}

// randPredicate builds a random predicate over the test schema's integral
// columns (plus the occasional double, which the evaluator must widen on).
func randPredicate(r *rand.Rand, depth int) predicate.Predicate {
	if depth <= 0 || r.Intn(3) == 0 {
		ops := []predicate.CmpOp{
			predicate.CmpLT, predicate.CmpGT, predicate.CmpLE,
			predicate.CmpGE, predicate.CmpEQ, predicate.CmpNE,
		}
		return predicate.Cmp(ops[r.Intn(len(ops))], randExpr(r, 2), randExpr(r, 2))
	}
	switch r.Intn(3) {
	case 0:
		return predicate.NewAnd(randPredicate(r, depth-1), randPredicate(r, depth-1))
	case 1:
		return predicate.NewOr(randPredicate(r, depth-1), randPredicate(r, depth-1))
	default:
		return &predicate.Not{P: randPredicate(r, depth-1)}
	}
}

func randExpr(r *rand.Rand, depth int) predicate.Expr {
	if depth <= 0 || r.Intn(2) == 0 {
		switch r.Intn(4) {
		case 0:
			return predicate.Col("id", predicate.TypeInteger)
		case 1:
			return predicate.Col("d", predicate.TypeDate)
		case 2:
			return predicate.Col("ts", predicate.TypeTimestamp)
		default:
			return predicate.IntConst(r.Int63n(5000) - 2500)
		}
	}
	switch r.Intn(3) {
	case 0:
		return predicate.Add(randExpr(r, depth-1), randExpr(r, depth-1))
	case 1:
		return predicate.Sub(randExpr(r, depth-1), randExpr(r, depth-1))
	default:
		return predicate.Mul(predicate.IntConst(r.Int63n(5)-2), randExpr(r, depth-1))
	}
}

// TestScanFilterMatchesInMemory is the end-to-end contract: a SegmentTable
// scan with pruning must return exactly what the in-memory engine returns
// for the same predicate over the concatenated data, and pruning must
// actually fire for a range predicate over clustered data.
func TestScanFilterMatchesInMemory(t *testing.T) {
	schema := predicate.NewSchema(
		predicate.Column{Name: "k", Type: predicate.TypeInteger, NotNull: true},
		predicate.Column{Name: "v", Type: predicate.TypeInteger, NotNull: false},
	)
	full := engine.NewTable("t", schema)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 4000; i++ {
		v := predicate.IntVal(r.Int63n(100))
		if r.Intn(9) == 0 {
			v = predicate.NullValue()
		}
		full.AppendRow(predicate.IntVal(int64(i)), v) // k clustered by construction
	}

	dir := t.TempDir()
	st, err := Open(dir, "t", schema)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < full.NumRows(); lo += 500 {
		if err := st.AppendRange(full, lo, lo+500); err != nil {
			t.Fatal(err)
		}
	}
	if st.NumSegments() != 8 || st.NumRows() != 4000 {
		t.Fatalf("table has %d segments / %d rows", st.NumSegments(), st.NumRows())
	}

	// k in [1000, 1200): zone maps must confine the scan to segments 2-3.
	p := predicate.NewAnd(
		predicate.Cmp(predicate.CmpGE, predicate.Col("k", predicate.TypeInteger), predicate.IntConst(1000)),
		predicate.Cmp(predicate.CmpLT, predicate.Col("k", predicate.TypeInteger), predicate.IntConst(1200)),
	)
	before := SnapshotCounters()
	got, err := st.ScanFilter(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	delta := SnapshotCounters().Sub(before)
	want := engine.FilterPar(full, p, 1)
	if !engine.TablesEqual(want, got) {
		t.Fatalf("scan result differs from in-memory filter (%d vs %d rows)", got.NumRows(), want.NumRows())
	}
	if delta.SegmentsPruned != 7 || delta.SegmentsScanned != 1 {
		t.Fatalf("pruned %d / scanned %d segments, want 7 / 1", delta.SegmentsPruned, delta.SegmentsScanned)
	}

	// Reopening the directory must see the same data; a nil predicate
	// returns everything.
	st2, err := Open(dir, "t", schema)
	if err != nil {
		t.Fatal(err)
	}
	all, err := st2.ScanFilter(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.TablesEqual(full, all) {
		t.Fatal("full scan after reopen differs from original data")
	}
}

func TestAppendHooksFire(t *testing.T) {
	schema := predicate.NewSchema(
		predicate.Column{Name: "a", Type: predicate.TypeInteger, NotNull: true},
	)
	st, err := Open(t.TempDir(), "t", schema)
	if err != nil {
		t.Fatal(err)
	}
	var calls [][]string
	st.OnAppend(func(cols []string) { calls = append(calls, cols) })
	tbl := engine.NewTable("t", schema)
	tbl.AppendRow(predicate.IntVal(1))
	if err := st.Append(tbl); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || len(calls[0]) != 1 || calls[0][0] != "a" {
		t.Fatalf("hook calls = %v, want [[a]]", calls)
	}

	// Schema-mismatched appends fail cleanly and fire no hook.
	other := engine.NewTable("u", predicate.NewSchema(
		predicate.Column{Name: "b", Type: predicate.TypeInteger, NotNull: true},
	))
	if err := st.Append(other); err == nil {
		t.Fatal("append with wrong schema should fail")
	}
	if len(calls) != 1 {
		t.Fatalf("failed append fired a hook: %v", calls)
	}
}
