// Package smt implements the satisfiability-modulo-theories substrate Sia
// depends on. The paper uses Z3; Go has no solid Z3 bindings, so this
// package is a from-scratch decision procedure for the exact fragment Sia's
// queries live in:
//
//   - linear integer arithmetic with quantifiers (Presburger arithmetic),
//     decided by Cooper's quantifier-elimination algorithm, and
//   - linear real arithmetic with quantifiers, decided by Loos–Weispfenning
//     virtual substitution.
//
// Both fragments admit the alternating ∃∀ queries Sia issues when searching
// for unsatisfaction tuples (§4.2: "This formula contains an alternating
// quantifier that supports linear arithmetic ... so it is a decidable
// problem"). On top of quantifier elimination the package provides
// satisfiability checking and model extraction, which together supply every
// solver operation in the paper: SAT checks for Verify, and model
// enumeration (with blocking constraints) for GenerateSamples, CounterT and
// CounterF.
//
// All arithmetic is exact: coefficients ride an int64/int64 fast path and
// promote to math/big rationals on overflow (see coef), so results are never
// subject to floating-point error.
package smt

import (
	"fmt"
	"math/big"
)

// Sort is the sort (type) of a variable.
type Sort int

const (
	// SortInt is the sort of integer-valued variables.
	SortInt Sort = iota
	// SortReal is the sort of real-valued variables.
	SortReal
)

func (s Sort) String() string {
	if s == SortInt {
		return "Int"
	}
	return "Real"
}

// Var is a sorted variable. Vars are value types and compare with ==.
type Var struct {
	Name string
	Sort Sort
}

func (v Var) String() string { return v.Name }

// IntVar returns an integer-sorted variable.
func IntVar(name string) Var { return Var{Name: name, Sort: SortInt} }

// RealVar returns a real-sorted variable.
func RealVar(name string) Var { return Var{Name: name, Sort: SortReal} }

// varLess is the canonical cell order: by name, then by sort. Every Term
// keeps its cells in this order, which makes iteration deterministic and
// lets Equal and the renderers walk cells lockstep without sorting.
func varLess(a, b Var) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.Sort < b.Sort
}

// cell is one variable's coefficient inside a term. Cells hold their coef
// by value: cloning a term is one slice copy instead of a map plus one
// heap cell per variable, which is what keeps Clone off the GC's back in
// the eliminator hot loops.
type cell struct {
	v Var
	c coef
}

// Term is a linear term: a rational constant plus a sum of rational
// coefficients times variables. Cells are kept sorted by varLess and a
// zero coefficient is never stored.
//
// Coefficients are held by value as coef (int64 fast path, big.Rat
// overflow fallback), so typical integer workloads never touch the heap
// for arithmetic. The public accessors still speak *big.Rat and always
// return fresh copies — a returned rational never aliases term internals.
//
// An interned term (see InternTerm) is frozen: the in-place mutators panic
// on it, enforcing the clone-then-mutate discipline that makes sharing
// canonical pointers safe.
type Term struct {
	cells []cell
	konst coef

	// Interning metadata, set once under the intern shard lock before the
	// term is published; read-only afterwards. str caches the display
	// rendering; key caches the sort-qualified interner key (String() drops
	// variable sorts, so display strings alone would fold an integer term
	// onto an identically named real one).
	frozen bool
	str    string
	key    string
}

// mutable panics when t has been interned; interned terms are shared and
// must be cloned before mutation.
func (t *Term) mutable() {
	if t.frozen {
		panic("smt: in-place mutation of an interned term")
	}
}

// NewTerm returns the constant term c (c may be nil for zero). c is copied,
// never retained: later mutations of c cannot reach the term.
// alloc: constructing a term is the product; the QE budgets
// (maxNodes/maxDisjuncts) bound how many terms an elimination can build.
func NewTerm(c *big.Rat) *Term {
	t := &Term{}
	if c != nil {
		t.konst.setRat(c)
	}
	return t
}

// ConstTerm returns the integer constant term n.
// alloc: term constructor; bounded by the elimination budgets.
func ConstTerm(n int64) *Term {
	t := &Term{}
	t.konst.setInt64(n)
	return t
}

// VarTerm returns the term 1*v.
// alloc: term constructor; bounded by the elimination budgets.
func VarTerm(v Var) *Term {
	t := &Term{cells: make([]cell, 1)}
	t.cells[0].v = v
	t.cells[0].c.setInt64(1)
	return t
}

// Clone returns a deep copy of the term. The clone-then-mutate discipline
// is what keeps the in-place arithmetic below memo-safe; hot paths are
// expected to hoist clones out of inner loops (see eliminateInt).
// alloc: a deep copy is this function's contract — one slice copy, plus a
// big.Rat copy per promoted coefficient (rare).
func (t *Term) Clone() *Term {
	c := &Term{}
	c.konst.set(&t.konst)
	if len(t.cells) > 0 {
		c.cells = make([]cell, len(t.cells))
		copy(c.cells, t.cells)
		for i := range c.cells {
			if r := c.cells[i].c.r; r != nil {
				// alloc: deep copy of a promoted (over-int64) coefficient
				c.cells[i].c.r = new(big.Rat).Set(r)
			}
		}
	}
	return c
}

// find returns the index of v's cell. When v is absent, it returns the
// index at which v's cell would be inserted and false. Terms are small (a
// handful of variables), so a linear scan beats binary search in practice.
func (t *Term) find(v Var) (int, bool) {
	for i := range t.cells {
		cv := t.cells[i].v
		if cv == v {
			return i, true
		}
		if varLess(v, cv) {
			return i, false
		}
	}
	return len(t.cells), false
}

// insertAt opens a cell for v at index i (as computed by find) and returns
// its coefficient, which starts at zero. Any previously taken cell pointers
// are invalidated by the slice growth.
// alloc: growing the cell array is the cost of a term's first mention of a
// variable; bounded by the elimination budgets.
func (t *Term) insertAt(i int, v Var) *coef {
	t.cells = append(t.cells, cell{})
	copy(t.cells[i+1:], t.cells[i:])
	t.cells[i] = cell{v: v}
	return &t.cells[i].c
}

// removeAt deletes the cell at index i, preserving order.
func (t *Term) removeAt(i int) {
	// alloc: compaction within the existing cell array; never grows
	t.cells = append(t.cells[:i], t.cells[i+1:]...)
}

// at returns v's coefficient cell, or nil if absent. Internal fast-path
// accessor; the cell aliases term internals and must not be retained
// across mutations (inserts may reallocate the cell array).
func (t *Term) at(v Var) *coef {
	if i, ok := t.find(v); ok {
		return &t.cells[i].c
	}
	return nil
}

// remove deletes v's cell in place if present.
func (t *Term) remove(v Var) {
	t.mutable()
	if i, ok := t.find(v); ok {
		t.removeAt(i)
	}
}

// setCoefInt64 sets v's coefficient to exactly n (n must be non-zero),
// inserting the cell if absent.
func (t *Term) setCoefInt64(v Var, n int64) {
	t.mutable()
	i, ok := t.find(v)
	if !ok {
		t.insertAt(i, v)
	}
	t.cells[i].c.setInt64(n)
}

// addCoef adds c*v to the term in place. c must not alias one of t's own
// cells (insertion may move them).
func (t *Term) addCoef(v Var, c *coef) {
	t.mutable()
	i, ok := t.find(v)
	var cur *coef
	if !ok {
		cur = t.insertAt(i, v)
	} else {
		cur = &t.cells[i].c
	}
	cur.add(c)
	if cur.isZero() {
		t.removeAt(i)
	}
}

// AddVar adds coeff*v to the term in place and returns the term. coeff is
// read, never retained.
func (t *Term) AddVar(v Var, coeff *big.Rat) *Term {
	var c coef
	c.setRat(coeff)
	t.addCoef(v, &c)
	return t
}

// AddConst adds c to the term's constant in place and returns the term.
// c is read, never retained.
func (t *Term) AddConst(c *big.Rat) *Term {
	t.mutable()
	var k coef
	k.setRat(c)
	t.konst.add(&k)
	return t
}

// AddInt64 adds the integer n to the term's constant in place.
func (t *Term) AddInt64(n int64) *Term {
	t.mutable()
	t.konst.addInt64(n)
	return t
}

// Add adds o to the term in place and returns the term. o must not be t
// itself.
func (t *Term) Add(o *Term) *Term {
	for i := range o.cells {
		t.addCoef(o.cells[i].v, &o.cells[i].c)
	}
	t.mutable()
	t.konst.add(&o.konst)
	return t
}

// AddScaled adds k*o to the term in place and returns the term. k is read,
// never retained.
// alloc: one scratch coefficient per call, reused across all of o's
// coefficients.
func (t *Term) AddScaled(o *Term, k *big.Rat) *Term {
	var kc coef
	kc.setRat(k)
	return t.addScaledCoef(o, &kc)
}

// addScaledCoef adds k*o to the term in place; the internal form of
// AddScaled for callers that already hold a coef. o must not be t itself.
func (t *Term) addScaledCoef(o *Term, k *coef) *Term {
	t.mutable()
	var tmp coef
	for i := range o.cells {
		tmp.set(&o.cells[i].c)
		tmp.mul(k)
		t.addCoef(o.cells[i].v, &tmp)
	}
	tmp.set(&o.konst)
	tmp.mul(k)
	t.konst.add(&tmp)
	return t
}

// Scale multiplies the term by k in place and returns the term. k is read,
// never retained.
func (t *Term) Scale(k *big.Rat) *Term {
	var kc coef
	kc.setRat(k)
	return t.scaleCoef(&kc)
}

// scaleCoef multiplies the term by k in place; the internal form of Scale.
func (t *Term) scaleCoef(k *coef) *Term {
	t.mutable()
	if k.isZero() {
		t.cells = nil
		t.konst.setInt64(0)
		return t
	}
	for i := range t.cells {
		t.cells[i].c.mul(k)
	}
	t.konst.mul(k)
	return t
}

// Neg negates the term in place and returns the term.
func (t *Term) Neg() *Term {
	t.mutable()
	for i := range t.cells {
		t.cells[i].c.neg()
	}
	t.konst.neg()
	return t
}

// Coeff returns the coefficient of v (zero if absent) as a fresh rational
// the caller owns; it never aliases term internals.
// alloc: materializing the big.Rat copy is this accessor's contract.
func (t *Term) Coeff(v Var) *big.Rat {
	if c := t.at(v); c != nil {
		return c.rat()
	}
	return new(big.Rat)
}

// Const returns the constant part as a fresh rational the caller owns; it
// never aliases term internals.
// alloc: materializing the big.Rat copy is this accessor's contract.
func (t *Term) Const() *big.Rat { return t.konst.rat() }

// IsConst reports whether the term has no variables.
func (t *Term) IsConst() bool { return len(t.cells) == 0 }

// Has reports whether v occurs in the term with non-zero coefficient.
func (t *Term) Has(v Var) bool {
	_, ok := t.find(v)
	return ok
}

// Vars appends the term's variables to dst in canonical (sorted) order.
// alloc: append grows the caller's buffer.
func (t *Term) Vars(dst []Var) []Var {
	for i := range t.cells {
		dst = append(dst, t.cells[i].v)
	}
	return dst
}

// Subst replaces v by the term repl: t becomes t[v := repl]. Returns t.
// repl must not be t itself.
func (t *Term) Subst(v Var, repl *Term) *Term {
	t.mutable()
	i, ok := t.find(v)
	if !ok {
		return t
	}
	var k coef
	k.set(&t.cells[i].c)
	t.removeAt(i)
	return t.addScaledCoef(repl, &k)
}

// substTermCopy returns t[v := repl] as a fresh term without mutating t
// (t may be frozen). It merges the two sorted cell arrays in one pass into
// a result allocated at final capacity — the allocation-lean form of
// t.Clone().Subst(v, repl), which is what the eliminators substitute test
// points with.
// alloc: one result term and one cell array sized up front; promoted
// coefficients (rare) deep-copy their big.Rat.
func substTermCopy(t *Term, v Var, repl *Term) *Term {
	i, ok := t.find(v)
	if !ok {
		return t.Clone()
	}
	var k coef
	k.set(&t.cells[i].c)
	res := &Term{cells: make([]cell, 0, len(t.cells)-1+len(repl.cells))}
	var tmp coef
	// push opens the next result cell and returns its zero coefficient.
	push := func(pv Var) *coef {
		res.cells = append(res.cells, cell{v: pv})
		return &res.cells[len(res.cells)-1].c
	}
	pop := func() { res.cells = res.cells[:len(res.cells)-1] }
	a, b := 0, 0
	// cancel: every iteration advances a or b, so the merge finishes in
	// len(t.cells)+len(repl.cells) steps.
	for a < len(t.cells) || b < len(repl.cells) {
		if a == i {
			a++
			continue
		}
		switch {
		case b == len(repl.cells) || (a < len(t.cells) && varLess(t.cells[a].v, repl.cells[b].v)):
			push(t.cells[a].v).set(&t.cells[a].c)
			a++
		case a == len(t.cells) || varLess(repl.cells[b].v, t.cells[a].v):
			nc := push(repl.cells[b].v)
			nc.set(&repl.cells[b].c)
			nc.mul(&k)
			if nc.isZero() {
				pop()
			}
			b++
		default: // same variable in both
			nc := push(t.cells[a].v)
			nc.set(&t.cells[a].c)
			tmp.set(&repl.cells[b].c)
			tmp.mul(&k)
			nc.add(&tmp)
			if nc.isZero() {
				pop()
			}
			a++
			b++
		}
	}
	res.konst.set(&t.konst)
	tmp.set(&repl.konst)
	tmp.mul(&k)
	res.konst.add(&tmp)
	return res
}

// DenomLCM returns the least common multiple of the denominators of all
// coefficients and the constant.
// alloc: one fresh accumulator; the result is the caller's to keep.
func (t *Term) DenomLCM() *big.Int {
	if l, ok := t.denomLCM64(); ok {
		return big.NewInt(l)
	}
	l := big.NewInt(1)
	lcmInto(l, t.konst.denomBig())
	for i := range t.cells {
		lcmInto(l, t.cells[i].c.denomBig())
	}
	return l
}

// denomLCM64 is DenomLCM's int64 fast path: it reports the LCM and whether
// every denominator and the running LCM stayed inside the fast domain.
func (t *Term) denomLCM64() (int64, bool) {
	l := int64(1)
	// alloc: one closure per LCM scan; keeps the per-denominator step inlined
	step := func(d int64) bool {
		m, ok := mul64(l/gcd64(l, d), d)
		if !ok {
			return false
		}
		l = m
		return true
	}
	if d, ok := t.konst.den64(); !ok || !step(d) {
		return 0, false
	}
	for i := range t.cells {
		if d, ok := t.cells[i].c.den64(); !ok || !step(d) {
			return 0, false
		}
	}
	return l, true
}

// scaledCoeffAbs64 returns |coeff(v)| · denomLCM(t) / denom(coeff(v)) — the
// integer magnitude v's coefficient takes once t is scaled to integer
// coefficients — when every intermediate fits the fast domain. v must occur
// in t.
func (t *Term) scaledCoeffAbs64(v Var) (int64, bool) {
	c := t.at(v)
	n, okN := c.num64()
	d, okD := c.den64()
	l, okL := t.denomLCM64()
	if !okN || !okD || !okL {
		return 0, false
	}
	a, ok := mul64(n, l/d)
	if !ok {
		return 0, false
	}
	if a < 0 {
		a = -a
	}
	return a, true
}

// AllIntVars reports whether every variable of the term is integer-sorted.
func (t *Term) AllIntVars() bool {
	for i := range t.cells {
		if t.cells[i].v.Sort != SortInt {
			return false
		}
	}
	return true
}

// String renders the term. Hot callers (bound dedup in the eliminators)
// use it as a canonical key; interned terms carry the rendering cached, so
// repeated keying of a shared term is a string-header copy.
// alloc: string building is the product on the uncached path.
func (t *Term) String() string {
	if t.frozen {
		return t.str
	}
	return string(t.appendString(nil))
}

// appendString appends the canonical rendering of t to b. Cells are stored
// sorted, so the rendering needs no sorting pass.
// alloc: append grows the caller's buffer.
func (t *Term) appendString(b []byte) []byte {
	if len(t.cells) == 0 {
		return t.konst.appendRat(b)
	}
	for i := range t.cells {
		c := &t.cells[i].c
		if i > 0 {
			b = append(b, " + "...)
		}
		if c.isOne() {
			b = append(b, t.cells[i].v.Name...)
		} else {
			b = c.appendRat(b)
			b = append(b, '*')
			b = append(b, t.cells[i].v.Name...)
		}
	}
	if t.konst.sign() != 0 {
		b = append(b, " + "...)
		b = t.konst.appendRat(b)
	}
	return b
}

// appendKey appends the interner key of t: the canonical rendering with
// each variable qualified by its sort, so same-named variables of
// different sorts never collide in the intern tables.
// alloc: key rendering grows the caller's buffer; paid once per interned
// term, then served from the cached key.
func (t *Term) appendKey(b []byte) []byte {
	if t.frozen {
		return append(b, t.key...)
	}
	b = t.konst.appendRat(b)
	for i := range t.cells {
		b = append(b, '+')
		b = t.cells[i].c.appendRat(b)
		b = append(b, '*')
		b = append(b, t.cells[i].v.Name...)
		b = append(b, '\x00', byte(t.cells[i].v.Sort))
	}
	return b
}

// Equal reports whether two terms are identical. Interned terms compare by
// pointer first, which is the common case in the eliminator hot loops;
// otherwise both cell arrays are in canonical order and compare lockstep.
func (t *Term) Equal(o *Term) bool {
	if t == o {
		return true
	}
	if !t.konst.equal(&o.konst) || len(t.cells) != len(o.cells) {
		return false
	}
	for i := range t.cells {
		if t.cells[i].v != o.cells[i].v || !t.cells[i].c.equal(&o.cells[i].c) {
			return false
		}
	}
	return true
}

// Eval evaluates the term under the assignment, which must bind every
// variable of the term.
func (t *Term) Eval(m Model) (*big.Rat, error) {
	res := t.konst.rat()
	tmp := new(big.Rat)
	var scratch big.Rat
	for i := range t.cells {
		v := t.cells[i].v
		val, ok := m[v]
		if !ok {
			return nil, fmt.Errorf("smt: unbound variable %s", v)
		}
		res.Add(res, tmp.Mul(t.cells[i].c.ratScratch(&scratch), val))
	}
	return res, nil
}

var ratOne = big.NewRat(1, 1)

// lcmInto sets l = lcm(l, d) for positive d.
// alloc: one scratch integer for the GCD.
func lcmInto(l, d *big.Int) {
	g := new(big.Int).GCD(nil, nil, l, d)
	l.Div(l, g).Mul(l, d)
}
