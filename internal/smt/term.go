// Package smt implements the satisfiability-modulo-theories substrate Sia
// depends on. The paper uses Z3; Go has no solid Z3 bindings, so this
// package is a from-scratch decision procedure for the exact fragment Sia's
// queries live in:
//
//   - linear integer arithmetic with quantifiers (Presburger arithmetic),
//     decided by Cooper's quantifier-elimination algorithm, and
//   - linear real arithmetic with quantifiers, decided by Loos–Weispfenning
//     virtual substitution.
//
// Both fragments admit the alternating ∃∀ queries Sia issues when searching
// for unsatisfaction tuples (§4.2: "This formula contains an alternating
// quantifier that supports linear arithmetic ... so it is a decidable
// problem"). On top of quantifier elimination the package provides
// satisfiability checking and model extraction, which together supply every
// solver operation in the paper: SAT checks for Verify, and model
// enumeration (with blocking constraints) for GenerateSamples, CounterT and
// CounterF.
//
// All arithmetic is exact (math/big rationals), so results are never subject
// to floating-point error.
package smt

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Sort is the sort (type) of a variable.
type Sort int

const (
	// SortInt is the sort of integer-valued variables.
	SortInt Sort = iota
	// SortReal is the sort of real-valued variables.
	SortReal
)

func (s Sort) String() string {
	if s == SortInt {
		return "Int"
	}
	return "Real"
}

// Var is a sorted variable. Vars are value types and compare with ==.
type Var struct {
	Name string
	Sort Sort
}

func (v Var) String() string { return v.Name }

// IntVar returns an integer-sorted variable.
func IntVar(name string) Var { return Var{Name: name, Sort: SortInt} }

// RealVar returns a real-sorted variable.
func RealVar(name string) Var { return Var{Name: name, Sort: SortReal} }

// Term is a linear term: a rational constant plus a sum of rational
// coefficients times variables. The zero map entry is never stored.
type Term struct {
	coeffs map[Var]*big.Rat
	konst  *big.Rat
}

// NewTerm returns the constant term c (c may be nil for zero).
// alloc: constructing a term is the product; exact arithmetic needs heap
// rationals, and the QE budgets (maxNodes/maxDisjuncts) bound how many
// terms an elimination can build.
func NewTerm(c *big.Rat) *Term {
	t := &Term{coeffs: map[Var]*big.Rat{}, konst: new(big.Rat)}
	if c != nil {
		t.konst.Set(c)
	}
	return t
}

// ConstTerm returns the integer constant term n.
// alloc: term constructor; bounded by the elimination budgets.
func ConstTerm(n int64) *Term { return NewTerm(new(big.Rat).SetInt64(n)) }

// VarTerm returns the term 1*v.
// alloc: term constructor; bounded by the elimination budgets.
func VarTerm(v Var) *Term {
	t := NewTerm(nil)
	t.AddVar(v, big.NewRat(1, 1))
	return t
}

// Clone returns a deep copy of the term. The clone-then-mutate discipline
// is what keeps the in-place arithmetic below memo-safe; hot paths are
// expected to hoist clones out of inner loops (see eliminateInt).
// alloc: a deep copy is this function's contract.
func (t *Term) Clone() *Term {
	c := &Term{coeffs: make(map[Var]*big.Rat, len(t.coeffs)), konst: new(big.Rat).Set(t.konst)}
	for v, r := range t.coeffs {
		c.coeffs[v] = new(big.Rat).Set(r)
	}
	return c
}

// AddVar adds coeff*v to the term in place and returns the term.
// alloc: first mention of a variable stores one fresh rational; repeated
// additions reuse it.
func (t *Term) AddVar(v Var, coeff *big.Rat) *Term {
	cur, ok := t.coeffs[v]
	if !ok {
		cur = new(big.Rat)
		t.coeffs[v] = cur
	}
	cur.Add(cur, coeff)
	if cur.Sign() == 0 {
		delete(t.coeffs, v)
	}
	return t
}

// AddConst adds c to the term's constant in place and returns the term.
func (t *Term) AddConst(c *big.Rat) *Term {
	t.konst.Add(t.konst, c)
	return t
}

// AddInt64 adds the integer n to the term's constant in place.
// alloc: one scratch rational per call; the konst update itself is in place.
func (t *Term) AddInt64(n int64) *Term {
	return t.AddConst(new(big.Rat).SetInt64(n))
}

// Add adds o to the term in place and returns the term.
func (t *Term) Add(o *Term) *Term {
	for v, r := range o.coeffs {
		t.AddVar(v, r)
	}
	return t.AddConst(o.konst)
}

// AddScaled adds k*o to the term in place and returns the term.
// alloc: one scratch rational per call, reused across all of o's
// coefficients.
func (t *Term) AddScaled(o *Term, k *big.Rat) *Term {
	tmp := new(big.Rat)
	for v, r := range o.coeffs {
		t.AddVar(v, tmp.Mul(r, k))
	}
	return t.AddConst(tmp.Mul(o.konst, k))
}

// Scale multiplies the term by k in place and returns the term.
// alloc: the k == 0 branch replaces the coefficient map; the common path
// multiplies in place.
func (t *Term) Scale(k *big.Rat) *Term {
	if k.Sign() == 0 {
		t.coeffs = map[Var]*big.Rat{}
		t.konst.SetInt64(0)
		return t
	}
	for _, r := range t.coeffs {
		r.Mul(r, k)
	}
	t.konst.Mul(t.konst, k)
	return t
}

// Neg negates the term in place and returns the term.
// alloc: one rational for the -1 multiplier.
func (t *Term) Neg() *Term { return t.Scale(big.NewRat(-1, 1)) }

// Coeff returns the coefficient of v (zero if absent). The returned value
// must not be mutated.
func (t *Term) Coeff(v Var) *big.Rat {
	if c, ok := t.coeffs[v]; ok {
		return c
	}
	return ratZero
}

// Const returns the constant part. The returned value must not be mutated.
func (t *Term) Const() *big.Rat { return t.konst }

// IsConst reports whether the term has no variables.
func (t *Term) IsConst() bool { return len(t.coeffs) == 0 }

// Has reports whether v occurs in the term with non-zero coefficient.
func (t *Term) Has(v Var) bool { _, ok := t.coeffs[v]; return ok }

// Vars appends the term's variables to dst in sorted order.
// alloc: append grows the caller's buffer; sort.Slice boxes one closure.
// memo: the appended window is sorted before returning, so map iteration
// order cannot reach the result.
func (t *Term) Vars(dst []Var) []Var {
	start := len(dst)
	for v := range t.coeffs {
		dst = append(dst, v)
	}
	sort.Slice(dst[start:], func(i, j int) bool { return dst[start+i].Name < dst[start+j].Name })
	return dst
}

// Subst replaces v by the term repl: t becomes t[v := repl]. Returns t.
// alloc: one rational to detach v's coefficient before it is deleted.
func (t *Term) Subst(v Var, repl *Term) *Term {
	c, ok := t.coeffs[v]
	if !ok {
		return t
	}
	k := new(big.Rat).Set(c)
	delete(t.coeffs, v)
	return t.AddScaled(repl, k)
}

// DenomLCM returns the least common multiple of the denominators of all
// coefficients and the constant.
// alloc: one fresh accumulator; the result is the caller's to keep.
func (t *Term) DenomLCM() *big.Int {
	l := big.NewInt(1)
	lcmInto(l, t.konst.Denom())
	for _, c := range t.coeffs {
		lcmInto(l, c.Denom())
	}
	return l
}

// AllIntVars reports whether every variable of the term is integer-sorted.
func (t *Term) AllIntVars() bool {
	for v := range t.coeffs {
		if v.Sort != SortInt {
			return false
		}
	}
	return true
}

// String renders the term. Hot callers (bound dedup in the eliminators)
// use it as a canonical key; rendering is inherently allocating.
// alloc: string building is the product.
func (t *Term) String() string {
	vars := t.Vars(nil)
	if len(vars) == 0 {
		return t.konst.RatString()
	}
	var sb strings.Builder
	for i, v := range vars {
		c := t.coeffs[v]
		if i > 0 {
			sb.WriteString(" + ")
		}
		if c.Cmp(ratOne) == 0 {
			sb.WriteString(v.Name)
		} else {
			fmt.Fprintf(&sb, "%s*%s", c.RatString(), v.Name)
		}
	}
	if t.konst.Sign() != 0 {
		fmt.Fprintf(&sb, " + %s", t.konst.RatString())
	}
	return sb.String()
}

// Equal reports whether two terms are identical.
func (t *Term) Equal(o *Term) bool {
	if t.konst.Cmp(o.konst) != 0 || len(t.coeffs) != len(o.coeffs) {
		return false
	}
	for v, c := range t.coeffs {
		oc, ok := o.coeffs[v]
		if !ok || c.Cmp(oc) != 0 {
			return false
		}
	}
	return true
}

// Eval evaluates the term under the assignment, which must bind every
// variable of the term.
func (t *Term) Eval(m Model) (*big.Rat, error) {
	res := new(big.Rat).Set(t.konst)
	tmp := new(big.Rat)
	for v, c := range t.coeffs {
		val, ok := m[v]
		if !ok {
			return nil, fmt.Errorf("smt: unbound variable %s", v)
		}
		res.Add(res, tmp.Mul(c, val))
	}
	return res, nil
}

var (
	ratZero = new(big.Rat)
	ratOne  = big.NewRat(1, 1)
)

// lcmInto sets l = lcm(l, d) for positive d.
// alloc: one scratch integer for the GCD.
func lcmInto(l, d *big.Int) {
	g := new(big.Int).GCD(nil, nil, l, d)
	l.Div(l, g).Mul(l, d)
}
