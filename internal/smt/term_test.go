package smt

import (
	"math/big"
	"testing"
)

func TestTermArithmetic(t *testing.T) {
	x, y := IntVar("x"), IntVar("y")
	tm := VarTerm(x)
	tm.AddVar(y, big.NewRat(3, 1))
	tm.AddInt64(5)
	if got := tm.String(); got != "x + 3*y + 5" {
		t.Fatalf("String = %q", got)
	}
	tm.AddVar(x, big.NewRat(-1, 1))
	if tm.Has(x) {
		t.Fatal("zero coefficient should be removed")
	}
	tm.Scale(big.NewRat(2, 1))
	if got := tm.Coeff(y).RatString(); got != "6" {
		t.Fatalf("Coeff(y) = %s after scale", got)
	}
	if got := tm.Const().RatString(); got != "10" {
		t.Fatalf("Const = %s after scale", got)
	}
	tm.Neg()
	if got := tm.Const().RatString(); got != "-10" {
		t.Fatalf("Const = %s after neg", got)
	}
}

func TestTermSubst(t *testing.T) {
	x, y, z := IntVar("x"), IntVar("y"), IntVar("z")
	// t = 2x + y + 1; x := z - 3  =>  2z + y - 5
	tm := NewTerm(nil)
	tm.AddVar(x, big.NewRat(2, 1))
	tm.AddVar(y, big.NewRat(1, 1))
	tm.AddInt64(1)
	repl := VarTerm(z)
	repl.AddInt64(-3)
	tm.Subst(x, repl)
	if tm.Has(x) {
		t.Fatal("x should be gone")
	}
	if got := tm.Coeff(z).RatString(); got != "2" {
		t.Fatalf("coeff z = %s", got)
	}
	if got := tm.Const().RatString(); got != "-5" {
		t.Fatalf("const = %s", got)
	}
}

func TestTermEval(t *testing.T) {
	x, y := IntVar("x"), IntVar("y")
	tm := NewTerm(nil)
	tm.AddVar(x, big.NewRat(2, 1))
	tm.AddVar(y, big.NewRat(-1, 2))
	tm.AddInt64(7)
	m := Model{x: big.NewRat(3, 1), y: big.NewRat(4, 1)}
	v, err := tm.Eval(m)
	if err != nil {
		t.Fatal(err)
	}
	if v.RatString() != "11" { // 6 - 2 + 7
		t.Fatalf("Eval = %s", v.RatString())
	}
	if _, err := tm.Eval(Model{x: big.NewRat(1, 1)}); err == nil {
		t.Fatal("expected unbound variable error")
	}
}

func TestTermDenomLCM(t *testing.T) {
	x, y := IntVar("x"), IntVar("y")
	tm := NewTerm(big.NewRat(1, 6))
	tm.AddVar(x, big.NewRat(1, 4))
	tm.AddVar(y, big.NewRat(2, 3))
	if got := tm.DenomLCM().Int64(); got != 12 {
		t.Fatalf("DenomLCM = %d, want 12", got)
	}
}

func TestTermClone(t *testing.T) {
	x := IntVar("x")
	a := VarTerm(x)
	b := a.Clone()
	b.AddInt64(5)
	if a.Const().Sign() != 0 {
		t.Fatal("Clone is not deep")
	}
	if !a.Equal(VarTerm(x)) {
		t.Fatal("original mutated")
	}
	if a.Equal(b) {
		t.Fatal("Equal should distinguish modified clone")
	}
}

func TestRatFloor(t *testing.T) {
	cases := []struct {
		num, den int64
		want     int64
	}{
		{7, 2, 3}, {-7, 2, -4}, {6, 2, 3}, {-6, 2, -3}, {0, 1, 0}, {1, 3, 0}, {-1, 3, -1},
	}
	for _, c := range cases {
		got := ratFloor(big.NewRat(c.num, c.den))
		if got.Int64() != c.want {
			t.Errorf("floor(%d/%d) = %s, want %d", c.num, c.den, got, c.want)
		}
	}
}
