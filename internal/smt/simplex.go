package smt

import (
	"math/big"
)

// This file implements an exact-arithmetic Phase-I simplex over the
// rationals, used as a sound fast path in Satisfiable: a conjunction of
// linear atoms that is infeasible over ℚ is certainly infeasible over ℤ,
// so the (far more expensive) quantifier-elimination pipeline can be
// skipped. Rational feasibility proves nothing for integer variables
// (2x = 7 is ℚ-feasible), so a feasible answer falls through to the exact
// procedure. This mirrors how DPLL(T) solvers front-load an LRA simplex
// before integer reasoning.

// simplexVerdict is the outcome of the rational relaxation check.
type simplexVerdict int

const (
	// simplexInfeasible: no rational point satisfies the relaxed system —
	// a proof of UNSAT for the original conjunction.
	simplexInfeasible simplexVerdict = iota
	// simplexFeasible: the relaxed system has a rational solution; the
	// exact procedure must still decide.
	simplexFeasible
	// simplexInapplicable: the formula is not a conjunction of linear
	// atoms this check can relax (disjunction, negated divisibility, …).
	simplexInapplicable
)

// relaxConjunction extracts the atoms of a conjunction, relaxing strict
// inequalities t < 0 to t ≤ 0 and dropping ≠ atoms and divisibility
// constraints — all sound weakenings for an infeasibility pre-check.
// Returns nil rows and simplexInapplicable when f is not a conjunction of
// atoms.
func relaxConjunction(f Formula) ([]*Term, []bool, simplexVerdict) {
	var les []*Term // each entry asserts term ≤ 0
	var eqs []bool  // parallel: true when the row is an equality term = 0
	applicable := true
	var walk func(g Formula) bool
	walk = func(g Formula) bool {
		switch x := g.(type) {
		case Bool:
			return bool(x) // FALSE makes the conjunction trivially infeasible
		case *And:
			for _, c := range x.Fs {
				if !walk(c) {
					return false
				}
			}
			return true
		case *Atom:
			switch x.Op {
			case OpLT, OpLE:
				les = append(les, x.T)
				eqs = append(eqs, false)
			case OpEQ:
				les = append(les, x.T)
				eqs = append(eqs, true)
			case OpNE:
				// Dropping t ≠ 0 only weakens the system.
			}
			return true
		case *Div:
			// Divisibility constraints have no rational content; dropping
			// them weakens the system, which keeps the check sound.
			return true
		default:
			applicable = false
			return true
		}
	}
	if !walk(f) {
		return nil, nil, simplexInfeasible
	}
	if !applicable {
		return nil, nil, simplexInapplicable
	}
	return les, eqs, simplexFeasible
}

// simplexCheck decides rational feasibility of the conjunction f (if f has
// the right shape). It never errs toward simplexInfeasible: that verdict
// is a proof.
func simplexCheck(f Formula) simplexVerdict {
	rows, eqRows, verdict := relaxConjunction(f)
	if verdict != simplexFeasible {
		return verdict
	}
	if len(rows) == 0 {
		return simplexFeasible
	}
	// Collect variables; each unrestricted variable x becomes x⁺ - x⁻
	// with x⁺, x⁻ ≥ 0 (standard-form transformation).
	varIdx := map[Var]int{}
	var vars []Var
	for _, t := range rows {
		for _, v := range t.Vars(nil) {
			if _, ok := varIdx[v]; !ok {
				varIdx[v] = len(vars)
				vars = append(vars, v)
			}
		}
	}
	n := 2 * len(vars) // x⁺/x⁻ pairs
	m := len(rows)

	// Build A·y = b with y ≥ 0: row i is tᵢ ≤ 0 → Σ aᵢⱼ·yⱼ + sᵢ = -cᵢ
	// (slack sᵢ ≥ 0), or tᵢ = 0 → no slack. Right-hand sides are made
	// non-negative by row negation so Phase I can start from the
	// artificial basis.
	type row struct {
		a []*big.Rat
		b *big.Rat
	}
	slacks := 0
	for _, isEq := range eqRows {
		if !isEq {
			slacks++
		}
	}
	total := n + slacks
	rowsStd := make([]row, m)
	slackAt := 0
	for i, t := range rows {
		a := make([]*big.Rat, total)
		for j := range a {
			a[j] = new(big.Rat)
		}
		for _, v := range t.Vars(nil) {
			c := t.Coeff(v)
			j := varIdx[v]
			a[2*j].Add(a[2*j], c)
			a[2*j+1].Sub(a[2*j+1], c)
		}
		b := new(big.Rat).Neg(t.Const())
		if !eqRows[i] {
			a[n+slackAt].SetInt64(1)
			slackAt++
		}
		if b.Sign() < 0 {
			for _, x := range a {
				x.Neg(x)
			}
			b.Neg(b)
		}
		rowsStd[i] = row{a: a, b: b}
	}

	// Phase I tableau: minimize the sum of one artificial variable per
	// row. Feasible iff the optimum is zero.
	cols := total + m // + artificials
	tab := make([][]*big.Rat, m+1)
	for i := 0; i <= m; i++ {
		tab[i] = make([]*big.Rat, cols+1)
		for j := range tab[i] {
			tab[i][j] = new(big.Rat)
		}
	}
	basis := make([]int, m)
	for i, r := range rowsStd {
		copy(tab[i][:total], r.a)
		tab[i][total+i].SetInt64(1)
		tab[i][cols].Set(r.b)
		basis[i] = total + i
	}
	// Objective row: z = Σ artificials; expressed in terms of the
	// non-basic columns by subtracting each constraint row.
	obj := tab[m]
	for i := 0; i < m; i++ {
		for j := 0; j <= cols; j++ {
			if j >= total && j < total+m {
				continue // artificial columns stay zero in the reduced row
			}
			obj[j].Sub(obj[j], tab[i][j])
		}
	}

	// Bland's rule guarantees termination without cycling.
	for iter := 0; iter < 10000; iter++ {
		pivotCol := -1
		for j := 0; j < total; j++ { // never re-enter artificials
			if obj[j].Sign() < 0 {
				pivotCol = j
				break
			}
		}
		if pivotCol < 0 {
			break
		}
		pivotRow := -1
		var best *big.Rat
		for i := 0; i < m; i++ {
			if tab[i][pivotCol].Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(tab[i][cols], tab[i][pivotCol])
			if pivotRow < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && basis[i] < basis[pivotRow]) {
				pivotRow, best = i, ratio
			}
		}
		if pivotRow < 0 {
			// Unbounded Phase-I objective cannot happen (it is bounded
			// below by 0); defensively report feasible (sound).
			return simplexFeasible
		}
		pivot(tab, basis, pivotRow, pivotCol, cols)
	}
	if obj[cols].Sign() != 0 {
		// Optimum of Σ artificials is > 0 (stored negated in the reduced
		// row, hence != 0): the system has no rational solution.
		return simplexInfeasible
	}
	return simplexFeasible
}

// pivot performs a full tableau pivot on (pr, pc).
func pivot(tab [][]*big.Rat, basis []int, pr, pc, cols int) {
	p := new(big.Rat).Set(tab[pr][pc])
	inv := new(big.Rat).Inv(p)
	for j := 0; j <= cols; j++ {
		tab[pr][j].Mul(tab[pr][j], inv)
	}
	tmp := new(big.Rat)
	for i := range tab {
		if i == pr || tab[i][pc].Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Set(tab[i][pc])
		for j := 0; j <= cols; j++ {
			tmp.Mul(factor, tab[pr][j])
			tab[i][j].Sub(tab[i][j], tmp)
		}
	}
	basis[pr] = pc
}
