package smt

import (
	"math"
	"math/big"
	"strconv"
)

// coef is a rational coefficient with an int64 fast path. While the value
// fits, it is num/den with den > 0 and gcd(|num|, den) == 1, and arithmetic
// stays on the stack; any overflow promotes the value to an exact *big.Rat.
// Big-path results demote back to the fast fields as soon as they fit, so a
// transiently large intermediate does not poison later arithmetic.
//
// The zero value is the rational 0 — big.Rat's num==nil zero is mirrored
// here by treating den == 0 as den == 1 (see norm). MinInt64 is excluded
// from the fast domain so |num| and -num never overflow.
type coef struct {
	num, den int64
	r        *big.Rat // non-nil: big fallback; num/den are then invalid
}

// fastOK reports whether n is inside the fast domain.
func fastOK(n int64) bool { return n != math.MinInt64 }

// add64 returns a+b and whether it did not overflow.
func add64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// mul64 returns a*b and whether it did not overflow.
func mul64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		return 0, false
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}

// gcd64 returns gcd(|a|, |b|); both must be inside the fast domain.
// cancel: Euclid's algorithm converges in at most ~90 steps on int64.
func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	// cancel: Euclid's loop converges in at most ~90 steps on int64.
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// denom returns the denominator, mapping the zero value's 0 to 1.
func (c *coef) denom() int64 {
	if c.den == 0 {
		return 1
	}
	return c.den
}

// setInt64 sets c to the integer n.
func (c *coef) setInt64(n int64) {
	if !fastOK(n) {
		// alloc: over-int64 promotion; slow path by design
		c.r = new(big.Rat).SetInt64(n)
		return
	}
	c.num, c.den, c.r = n, 1, nil
}

// setFrac64 sets c to num/den (den != 0), reducing.
func (c *coef) setFrac64(num, den int64) {
	if !fastOK(num) || !fastOK(den) {
		// alloc: over-int64 promotion; slow path by design
		c.r = new(big.Rat).SetFrac64(num, den)
		c.demote()
		return
	}
	if den < 0 {
		num, den = -num, -den
	}
	if g := gcd64(num, den); g > 1 {
		num /= g
		den /= g
	}
	c.num, c.den, c.r = num, den, nil
}

// setRat sets c to a copy of x (which is never retained).
func (c *coef) setRat(x *big.Rat) {
	if n, d := x.Num(), x.Denom(); n.IsInt64() && d.IsInt64() && fastOK(n.Int64()) && fastOK(d.Int64()) {
		// big.Rat is always normalized, so the fast fields are canonical.
		c.num, c.den, c.r = n.Int64(), d.Int64(), nil
		return
	}
	// alloc: promotion copy; big coefficients are the slow path by design
	c.r = new(big.Rat).Set(x)
}

// set copies o into c.
func (c *coef) set(o *coef) {
	if o.r == nil {
		c.num, c.den, c.r = o.num, o.denom(), nil
		return
	}
	if c.r == nil {
		// alloc: promotion copy when the source is already big
		c.r = new(big.Rat).Set(o.r)
		return
	}
	c.r.Set(o.r)
}

// promote moves c onto the big path and returns the big value.
func (c *coef) promote() *big.Rat {
	if c.r == nil {
		// alloc: overflow promotion is the fast path's escape hatch
		c.r = new(big.Rat).SetFrac64(c.num, c.denom())
	}
	return c.r
}

// demote moves a big value back to the fast fields when it fits.
func (c *coef) demote() {
	if c.r == nil {
		return
	}
	if n, d := c.r.Num(), c.r.Denom(); n.IsInt64() && d.IsInt64() && fastOK(n.Int64()) && fastOK(d.Int64()) {
		c.num, c.den, c.r = n.Int64(), d.Int64(), nil
	}
}

// ratScratch promotes o's value into scratch without touching o.
func (o *coef) ratScratch(scratch *big.Rat) *big.Rat {
	if o.r != nil {
		return o.r
	}
	return scratch.SetFrac64(o.num, o.denom())
}

// add sets c += o.
func (c *coef) add(o *coef) {
	if c.r == nil && o.r == nil {
		a, b, x, y := c.num, c.denom(), o.num, o.denom()
		// a/b + x/y over lcm(b, y): reduce by g = gcd(b, y) first so the
		// cross products stay small for the common den==1 cases.
		g := gcd64(b, y)
		yg := y / g
		if n1, ok := mul64(a, yg); ok {
			if n2, ok := mul64(x, b/g); ok {
				if n, ok := add64(n1, n2); ok {
					if d, ok := mul64(b, yg); ok {
						c.reduce64fast(n, d)
						return
					}
				}
			}
		}
	}
	var scratch big.Rat
	c.promote().Add(c.r, o.ratScratch(&scratch))
	c.demote()
}

// addInt64 sets c += n.
func (c *coef) addInt64(n int64) {
	if c.r == nil && fastOK(n) {
		if p, ok := mul64(n, c.denom()); ok {
			if s, ok := add64(c.num, p); ok && fastOK(s) {
				c.num = s
				return
			}
		}
	}
	var scratch big.Rat
	c.promote().Add(c.r, scratch.SetInt64(n))
	c.demote()
}

// mul sets c *= o.
func (c *coef) mul(o *coef) {
	if c.r == nil && o.r == nil {
		// Cross-reduce before multiplying: (a/b)·(x/y) with g1 = gcd(a, y),
		// g2 = gcd(x, b) keeps products minimal and the result canonical.
		a, b, x, y := c.num, c.denom(), o.num, o.denom()
		if g := gcd64(a, y); g > 1 {
			a /= g
			y /= g
		}
		if g := gcd64(x, b); g > 1 {
			x /= g
			b /= g
		}
		if n, ok := mul64(a, x); ok {
			if d, ok := mul64(b, y); ok {
				c.num, c.den, c.r = n, d, nil
				return
			}
		}
	}
	var scratch big.Rat
	c.promote().Mul(c.r, o.ratScratch(&scratch))
	c.demote()
}

// quo sets c /= o (o must be non-zero).
func (c *coef) quo(o *coef) {
	if o.r == nil {
		var inv coef
		inv.num, inv.den = o.denom(), o.num
		if inv.den < 0 {
			inv.num, inv.den = -inv.num, -inv.den
		}
		c.mul(&inv)
		return
	}
	var scratch big.Rat
	c.promote().Quo(c.r, o.ratScratch(&scratch))
	c.demote()
}

// neg sets c = -c.
func (c *coef) neg() {
	if c.r == nil {
		c.num = -c.num
		return
	}
	c.r.Neg(c.r)
	c.demote()
}

// inv sets c = 1/c (c must be non-zero).
func (c *coef) inv() {
	if c.r == nil {
		n, d := c.denom(), c.num
		if d < 0 {
			n, d = -n, -d
		}
		c.num, c.den = n, d
		return
	}
	c.r.Inv(c.r)
	c.demote()
}

// reduce64fast stores num/den (den > 0 guaranteed by callers' lcm math)
// after gcd reduction, staying on the fast path.
func (c *coef) reduce64fast(num, den int64) {
	if g := gcd64(num, den); g > 1 {
		num /= g
		den /= g
	}
	c.num, c.den, c.r = num, den, nil
}

// sign returns -1, 0 or 1.
func (c *coef) sign() int {
	if c.r == nil {
		switch {
		case c.num > 0:
			return 1
		case c.num < 0:
			return -1
		default:
			return 0
		}
	}
	return c.r.Sign()
}

// isZero reports whether c == 0.
func (c *coef) isZero() bool { return c.sign() == 0 }

// isInt reports whether c is an integer.
func (c *coef) isInt() bool {
	if c.r == nil {
		return c.denom() == 1
	}
	return c.r.IsInt()
}

// isOne reports whether c == 1.
func (c *coef) isOne() bool {
	if c.r == nil {
		return c.num == 1 && c.denom() == 1
	}
	return c.r.Cmp(ratOne) == 0
}

// cmp compares c and o: -1, 0 or 1.
func (c *coef) cmp(o *coef) int {
	if c.r == nil && o.r == nil {
		// a/b ⋈ x/y  ==  a·y ⋈ x·b (b, y > 0).
		if l, ok := mul64(c.num, o.denom()); ok {
			if r, ok := mul64(o.num, c.denom()); ok {
				switch {
				case l < r:
					return -1
				case l > r:
					return 1
				default:
					return 0
				}
			}
		}
	}
	var s1, s2 big.Rat
	return c.ratScratch(&s1).Cmp(o.ratScratch(&s2))
}

// equal reports whether c == o. Both representations are canonical, so the
// fast/fast case is a field compare.
func (c *coef) equal(o *coef) bool {
	if c.r == nil && o.r == nil {
		return c.num == o.num && c.denom() == o.denom()
	}
	return c.cmp(o) == 0
}

// rat returns a fresh big.Rat with c's value; the caller owns it.
// alloc: materializing a big.Rat is this function's contract.
func (c *coef) rat() *big.Rat {
	if c.r == nil {
		return new(big.Rat).SetFrac64(c.num, c.denom())
	}
	return new(big.Rat).Set(c.r)
}

// numBig returns c's numerator as a fresh big.Int.
// alloc: materializing a big.Int is this function's contract.
func (c *coef) numBig() *big.Int {
	if c.r == nil {
		return big.NewInt(c.num)
	}
	return new(big.Int).Set(c.r.Num())
}

// denomBig returns c's denominator as a fresh big.Int.
// alloc: materializing a big.Int is this function's contract.
func (c *coef) denomBig() *big.Int {
	if c.r == nil {
		return big.NewInt(c.denom())
	}
	return new(big.Int).Set(c.r.Denom())
}

// num64 returns the numerator and whether it fits in the fast domain.
func (c *coef) num64() (int64, bool) {
	if c.r == nil {
		return c.num, true
	}
	if n := c.r.Num(); n.IsInt64() && fastOK(n.Int64()) {
		return n.Int64(), true
	}
	return 0, false
}

// den64 returns the denominator and whether it fits in the fast domain.
func (c *coef) den64() (int64, bool) {
	if c.r == nil {
		return c.denom(), true
	}
	if d := c.r.Denom(); d.IsInt64() && fastOK(d.Int64()) {
		return d.Int64(), true
	}
	return 0, false
}

// appendRat appends c in big.Rat.RatString form ("n" or "n/d").
func (c *coef) appendRat(b []byte) []byte {
	if c.r == nil {
		b = strconv.AppendInt(b, c.num, 10)
		if d := c.denom(); d != 1 {
			b = append(b, '/')
			b = strconv.AppendInt(b, d, 10)
		}
		return b
	}
	// alloc: big.Rat rendering; over-int64 slow path
	return append(b, c.r.RatString()...)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// setBigInt sets c to the integer n, which is copied, never retained.
func (c *coef) setBigInt(n *big.Int) {
	if n.IsInt64() && fastOK(n.Int64()) {
		c.num, c.den, c.r = n.Int64(), 1, nil
		return
	}
	// alloc: promotion copy; big coefficients are the slow path by design
	c.r = new(big.Rat).SetInt(n)
}
