package smt

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"
)

// bruteExistsInt decides ∃v f for a formula univariate in v (all other
// variables already substituted) by scanning an integer range wide enough
// to cover every interval boundary of the formula's atoms. The test
// formulas contain no divisibility atoms, so the solution set is a finite
// union of intervals with endpoints among the atom bounds; scanning
// [-span, span] with span beyond every bound is complete.
func bruteExistsInt(t *testing.T, f Formula, v Var, span int64) bool {
	t.Helper()
	for k := -span; k <= span; k++ {
		if evalFormula(t, f, Model{v: new(big.Rat).SetInt64(k)}) {
			return true
		}
	}
	return false
}

// bruteExistsReal decides ∃v f for a univariate real formula by testing
// all bound points, midpoints and outer points.
func bruteExistsReal(t *testing.T, f Formula, v Var) bool {
	t.Helper()
	var bounds []*big.Rat
	err := walkLeaves(NNF(f), func(leaf Formula) error {
		if a, ok := leaf.(*Atom); ok && a.T.Has(v) {
			c := a.T.Coeff(v)
			rest := new(big.Rat).Set(a.T.Const())
			bounds = append(bounds, rest.Neg(rest).Quo(rest, c))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cands := []*big.Rat{new(big.Rat)}
	for i, b := range bounds {
		cands = append(cands, b,
			new(big.Rat).Sub(b, big.NewRat(1, 1)),
			new(big.Rat).Add(b, big.NewRat(1, 1)))
		for _, o := range bounds[i+1:] {
			mid := new(big.Rat).Add(b, o)
			mid.Quo(mid, big.NewRat(2, 1))
			cands = append(cands, mid)
		}
	}
	for _, c := range cands {
		if evalFormula(t, f, Model{v: c}) {
			return true
		}
	}
	return false
}

func substAll(f Formula, m Model) Formula {
	for v, val := range m {
		f = Subst(f, v, NewTerm(val))
	}
	return f
}

func TestCooperDifferential(t *testing.T) {
	// Property: QE(∃x f), evaluated under random assignments to the
	// remaining variables, agrees with brute-force search over x.
	r := rand.New(rand.NewSource(777))
	x, y, z := IntVar("x"), IntVar("y"), IntVar("z")
	vars := []Var{x, y, z}
	s := New()
	for i := 0; i < 250; i++ {
		f := randQF(r, vars, 3, false)
		g, err := s.QE(&Exists{V: x, F: f})
		if err != nil {
			t.Fatalf("QE failed on %s: %v", f, err)
		}
		for j := 0; j < 12; j++ {
			m := randModel(r, []Var{y, z}, 12)
			got := Simplify(substAll(g, m))
			gb, ok := got.(Bool)
			if !ok {
				t.Fatalf("QE result not ground after substitution: %s", got)
			}
			want := bruteExistsInt(t, substAll(f, m), x, 600)
			if bool(gb) != want {
				t.Fatalf("Cooper mismatch on %s with %v: QE=%v brute=%v\nQE formula: %s", f, m, gb, want, g)
			}
		}
	}
}

func TestCooperForAllDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(778))
	x, y := IntVar("x"), IntVar("y")
	s := New()
	for i := 0; i < 120; i++ {
		f := randQF(r, []Var{x, y}, 2, false)
		g, err := s.QE(&ForAll{V: x, F: f})
		if err != nil {
			t.Fatalf("QE failed on %s: %v", f, err)
		}
		for j := 0; j < 10; j++ {
			m := randModel(r, []Var{y}, 12)
			got := Simplify(substAll(g, m))
			gb, ok := got.(Bool)
			if !ok {
				t.Fatalf("not ground: %s", got)
			}
			// ∀x f == ¬∃x ¬f.
			want := !bruteExistsInt(t, substAll(NNF(NewNot(f)), m), x, 600)
			if bool(gb) != want {
				t.Fatalf("ForAll mismatch on %s with %v: QE=%v brute=%v", f, m, gb, want)
			}
		}
	}
}

func TestRealDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(779))
	x, y, z := RealVar("x"), RealVar("y"), RealVar("z")
	vars := []Var{x, y, z}
	s := New()
	for i := 0; i < 250; i++ {
		f := randQF(r, vars, 3, true)
		g, err := s.QE(&Exists{V: x, F: f})
		if err != nil {
			t.Fatalf("QE failed on %s: %v", f, err)
		}
		for j := 0; j < 12; j++ {
			m := randModel(r, []Var{y, z}, 12)
			got := Simplify(substAll(g, m))
			gb, ok := got.(Bool)
			if !ok {
				t.Fatalf("not ground: %s", got)
			}
			want := bruteExistsReal(t, substAll(f, m), x)
			if bool(gb) != want {
				t.Fatalf("LW mismatch on %s with %v: QE=%v brute=%v\nQE: %s", f, m, gb, want, g)
			}
		}
	}
}

func TestSatisfiableBasics(t *testing.T) {
	s := New()
	x, y := IntVar("x"), IntVar("y")
	cases := []struct {
		f    Formula
		want bool
	}{
		{LT(VarTerm(x), ConstTerm(0)), true},
		{NewAnd(LT(VarTerm(x), ConstTerm(0)), GT(VarTerm(x), ConstTerm(0))), false},
		{NewAnd(LT(VarTerm(x), VarTerm(y)), LT(VarTerm(y), VarTerm(x))), false},
		// x < y < x+1 has no integer solution.
		{NewAnd(LT(VarTerm(x), VarTerm(y)), LT(VarTerm(y), VarTerm(x).Clone().AddInt64(1))), false},
		{EQ(VarTerm(x).Clone().Scale(big.NewRat(2, 1)), ConstTerm(7)), false}, // 2x=7 over Z
		{EQ(VarTerm(x).Clone().Scale(big.NewRat(2, 1)), ConstTerm(8)), true},
		{Bool(true), true},
		{Bool(false), false},
	}
	for _, c := range cases {
		got, err := s.Satisfiable(c.f)
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		if got != c.want {
			t.Errorf("Satisfiable(%s) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestSatisfiableRealDensity(t *testing.T) {
	s := New()
	x, y := RealVar("x"), RealVar("y")
	// x < y < x+1 has real solutions (unlike the integer case).
	f := NewAnd(LT(VarTerm(x), VarTerm(y)), LT(VarTerm(y), VarTerm(x).Clone().AddInt64(1)))
	got, err := s.Satisfiable(f)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("dense order: x < y < x+1 must be satisfiable over reals")
	}
	// 2x = 7 over reals is satisfiable.
	g, err := s.Satisfiable(EQ(VarTerm(x).Clone().Scale(big.NewRat(2, 1)), ConstTerm(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !g {
		t.Fatal("2x=7 over R must be satisfiable")
	}
}

func TestValid(t *testing.T) {
	s := New()
	x := IntVar("x")
	// x <= x is valid; x < x is not.
	v, err := s.Valid(LE(VarTerm(x), VarTerm(x).Clone()))
	if err != nil {
		t.Fatal(err)
	}
	if !v {
		t.Fatal("x <= x should be valid")
	}
	v, err = s.Valid(LT(VarTerm(x), ConstTerm(10)))
	if err != nil {
		t.Fatal(err)
	}
	if v {
		t.Fatal("x < 10 should not be valid")
	}
}

func TestAlternatingQuantifiers(t *testing.T) {
	s := New()
	a, b := IntVar("a"), IntVar("b")
	// ∀b ∃a (a > b): true over integers.
	f := &ForAll{V: b, F: &Exists{V: a, F: GT(VarTerm(a), VarTerm(b))}}
	got, err := s.Satisfiable(f)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("∀b ∃a (a > b) should hold")
	}
	// ∃a ∀b (a > b): false.
	g := &Exists{V: a, F: &ForAll{V: b, F: GT(VarTerm(a), VarTerm(b))}}
	got, err = s.Satisfiable(g)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("∃a ∀b (a > b) should not hold")
	}
}

func TestPaperUnsatisfactionTuples(t *testing.T) {
	// Fig. 2 of the paper: p = (a1 - a2 < b1) AND (b1 + 5 < 10).
	// A pair (a1, a2) is an unsatisfaction tuple iff no b1 makes p hold:
	// we need b1 with a1 - a2 < b1 < 5, i.e. it exists iff a1 - a2 < 4.
	s := New()
	a1, a2, b1 := IntVar("a1"), IntVar("a2"), IntVar("b1")
	p := NewAnd(
		LT(VarTerm(a1).Clone().AddScaled(VarTerm(a2), big.NewRat(-1, 1)), VarTerm(b1)),
		LT(VarTerm(b1).Clone().AddInt64(5), ConstTerm(10)),
	)
	unsat := func(v1, v2 int64) bool {
		f := &ForAll{V: b1, F: NewNot(p)}
		g := substAll(f, Model{a1: new(big.Rat).SetInt64(v1), a2: new(big.Rat).SetInt64(v2)})
		ok, err := s.Satisfiable(g)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	// The paper's FALSE samples: (17,4), (14,2) — unsatisfaction tuples.
	if !unsat(17, 4) || !unsat(14, 2) {
		t.Fatal("paper FALSE samples should be unsatisfaction tuples")
	}
	// The paper's TRUE samples: (5,4), (7,5) — satisfiable restrictions.
	if unsat(5, 4) || unsat(7, 5) {
		t.Fatal("paper TRUE samples should not be unsatisfaction tuples")
	}
}

func TestModelBasic(t *testing.T) {
	s := New()
	x, y := IntVar("x"), IntVar("y")
	f := NewAnd(GT(VarTerm(x), ConstTerm(3)), LT(VarTerm(x), ConstTerm(6)), EQ(VarTerm(y), VarTerm(x).Clone().AddInt64(10)))
	m, err := s.Model(f)
	if err != nil {
		t.Fatal(err)
	}
	if !evalFormula(t, f, m) {
		t.Fatalf("model %v does not satisfy %s", m, f)
	}
	if !m[x].IsInt() || !m[y].IsInt() {
		t.Fatalf("integer variables must get integer values: %v", m)
	}
}

func TestModelUnsat(t *testing.T) {
	s := New()
	x := IntVar("x")
	f := NewAnd(GT(VarTerm(x), ConstTerm(3)), LT(VarTerm(x), ConstTerm(4)))
	_, err := s.Model(f)
	if !errors.Is(err, ErrUnsat) {
		t.Fatalf("expected ErrUnsat, got %v", err)
	}
}

func TestModelDifferential(t *testing.T) {
	// Property: whenever Satisfiable says yes, Model returns an
	// assignment that actually satisfies the formula.
	r := rand.New(rand.NewSource(991))
	x, y, z := IntVar("x"), IntVar("y"), IntVar("z")
	vars := []Var{x, y, z}
	s := New()
	sats := 0
	for i := 0; i < 150; i++ {
		f := randQF(r, vars, 3, false)
		sat, err := s.Satisfiable(f)
		if errors.Is(err, ErrBudget) {
			// Cooper's worst case is exponential; a budget refusal is the
			// honest analogue of a Z3 timeout and is acceptable on random
			// adversarial inputs.
			continue
		}
		if err != nil {
			t.Fatalf("sat: %v", err)
		}
		m, err := s.Model(f)
		if errors.Is(err, ErrBudget) {
			continue
		}
		if sat {
			sats++
			if err != nil {
				t.Fatalf("Model failed on satisfiable %s: %v", f, err)
			}
			if !evalFormula(t, f, m) {
				t.Fatalf("model %v does not satisfy %s", m, f)
			}
			for _, v := range vars {
				if val, ok := m[v]; ok && !val.IsInt() {
					t.Fatalf("non-integral value %s for %s", val, v)
				}
			}
		} else if !errors.Is(err, ErrUnsat) {
			t.Fatalf("Model on unsat %s: %v", f, err)
		}
	}
	if sats < 30 {
		t.Fatalf("test generator too weak: only %d satisfiable formulas", sats)
	}
}

func TestModelRealDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(992))
	x, y := RealVar("x"), RealVar("y")
	vars := []Var{x, y}
	s := New()
	for i := 0; i < 100; i++ {
		f := randQF(r, vars, 2, true)
		sat, err := s.Satisfiable(f)
		if err != nil {
			t.Fatalf("sat: %v", err)
		}
		if !sat {
			continue
		}
		m, err := s.Model(f)
		if err != nil {
			t.Fatalf("Model failed on %s: %v", f, err)
		}
		if !evalFormula(t, f, m) {
			t.Fatalf("model %v does not satisfy %s", m, f)
		}
	}
}

func TestModelWithBlocking(t *testing.T) {
	// Enumerate distinct models the way GenerateSamples does: add a
	// blocking constraint per found model and re-solve.
	s := New()
	x := IntVar("x")
	f := Formula(NewAnd(GE(VarTerm(x), ConstTerm(0)), LE(VarTerm(x), ConstTerm(4))))
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		m, err := s.Model(f)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		key := m[x].RatString()
		if seen[key] {
			t.Fatalf("duplicate model %s", key)
		}
		seen[key] = true
		f = NewAnd(f, NE(VarTerm(x), NewTerm(m[x])))
	}
	// All five values are exhausted now.
	if _, err := s.Model(f); !errors.Is(err, ErrUnsat) {
		t.Fatalf("expected exhaustion, got %v", err)
	}
}

func TestBudgetExceeded(t *testing.T) {
	s := &Solver{MaxModulus: 50}
	x, y := IntVar("x"), IntVar("y")
	// Coefficient 97 forces a divisibility period of 97 > 50.
	tm := VarTerm(x)
	tm.Scale(big.NewRat(97, 1))
	tm.AddVar(y, big.NewRat(1, 1))
	f := &Exists{V: x, F: EQ(tm, ConstTerm(5))}
	_, err := s.QE(f)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestMixedSortRejected(t *testing.T) {
	s := New()
	x, r := IntVar("x"), RealVar("r")
	f := &Exists{V: x, F: LT(VarTerm(x), VarTerm(r))}
	if _, err := s.QE(f); err == nil {
		t.Fatal("eliminating an integer from a mixed atom should error")
	}
	// The reverse — eliminating the real — is fine.
	g := &Exists{V: r, F: LT(VarTerm(x), VarTerm(r))}
	out, err := s.QE(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := Simplify(out); got != Bool(true) {
		t.Fatalf("∃r (x < r) should be true, got %s", got)
	}
}

func TestQEStatsAccumulate(t *testing.T) {
	s := New()
	x := IntVar("x")
	if _, err := s.Satisfiable(&Exists{V: x, F: GT(VarTerm(x), ConstTerm(0))}); err != nil {
		t.Fatal(err)
	}
	if s.Stats.SatQueries != 1 || s.Stats.Eliminations == 0 {
		t.Fatalf("stats not tracked: %+v", s.Stats)
	}
}
