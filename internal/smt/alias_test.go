package smt

import (
	"math/big"
	"testing"
)

// The Term constructors and accessors must never retain or hand out
// big.Rat values that alias caller- or term-owned storage: a caller
// mutating a rational it passed in (or got back) must not corrupt the
// term. These tests mutate on both sides of every boundary and check the
// term's rendering stays fixed.

func TestNewTermDoesNotAliasInput(t *testing.T) {
	c := big.NewRat(3, 2)
	tm := NewTerm(c)
	want := tm.String()
	c.SetInt64(999)
	if got := tm.String(); got != want {
		t.Fatalf("mutating NewTerm input changed the term: %q -> %q", want, got)
	}
}

func TestAddVarDoesNotAliasInput(t *testing.T) {
	x := IntVar("x")
	c := big.NewRat(5, 3)
	tm := NewTerm(new(big.Rat)).AddVar(x, c)
	want := tm.String()
	c.SetFrac64(-7, 11)
	if got := tm.String(); got != want {
		t.Fatalf("mutating AddVar input changed the term: %q -> %q", want, got)
	}
	// Adding to an existing coefficient must not capture the input either.
	c2 := big.NewRat(1, 3)
	tm.AddVar(x, c2)
	want = tm.String()
	c2.SetInt64(123)
	if got := tm.String(); got != want {
		t.Fatalf("mutating second AddVar input changed the term: %q -> %q", want, got)
	}
}

func TestAddConstDoesNotAliasInput(t *testing.T) {
	c := big.NewRat(9, 4)
	tm := NewTerm(new(big.Rat)).AddConst(c)
	want := tm.String()
	c.SetInt64(-1)
	if got := tm.String(); got != want {
		t.Fatalf("mutating AddConst input changed the term: %q -> %q", want, got)
	}
}

func TestScaleDoesNotAliasInput(t *testing.T) {
	x := IntVar("x")
	k := big.NewRat(2, 7)
	tm := VarTerm(x).Scale(k)
	want := tm.String()
	k.SetInt64(0)
	if got := tm.String(); got != want {
		t.Fatalf("mutating Scale input changed the term: %q -> %q", want, got)
	}
}

func TestCoeffAndConstReturnCopies(t *testing.T) {
	x := IntVar("x")
	tm := NewTerm(big.NewRat(1, 2)).AddVar(x, big.NewRat(4, 3))
	want := tm.String()
	tm.Coeff(x).SetInt64(77)
	tm.Const().SetInt64(-77)
	if got := tm.String(); got != want {
		t.Fatalf("mutating Coeff/Const results changed the term: %q -> %q", want, got)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	x, y := IntVar("x"), IntVar("y")
	orig := VarTerm(x).AddVar(y, big.NewRat(3, 1)).AddConst(big.NewRat(1, 5))
	cl := orig.Clone()
	wantOrig, wantClone := orig.String(), cl.String()
	if wantOrig != wantClone {
		t.Fatalf("clone differs: %q vs %q", wantOrig, wantClone)
	}
	// Mutate the clone through every mutator; the original must not move.
	cl.AddVar(x, big.NewRat(10, 1)).AddConst(big.NewRat(1, 1)).Scale(big.NewRat(2, 1)).Neg()
	cl.AddInt64(3)
	if got := orig.String(); got != wantOrig {
		t.Fatalf("mutating a clone changed the original: %q -> %q", wantOrig, got)
	}
	// And a clone of a frozen (interned) term must be mutable while the
	// canonical term stays fixed.
	canon := InternTerm(orig)
	wantCanon := canon.String()
	cl2 := canon.Clone()
	cl2.AddInt64(42)
	if got := canon.String(); got != wantCanon {
		t.Fatalf("mutating a clone changed the interned term: %q -> %q", wantCanon, got)
	}
}

func TestFrozenTermMutationPanics(t *testing.T) {
	x := IntVar("x")
	canon := InternTerm(VarTerm(x))
	defer func() {
		if recover() == nil {
			t.Fatal("mutating an interned term did not panic")
		}
	}()
	canon.AddInt64(1)
}
