package smt

import "fmt"

// NNF converts a formula to negation normal form: negations are pushed onto
// atoms (and absorbed into the atom relation), so the result contains no Not
// nodes. Quantifiers are flipped when a negation passes through them.
func NNF(f Formula) Formula { return nnf(f, false) }

func nnf(f Formula, neg bool) Formula {
	switch x := f.(type) {
	case Bool:
		return Bool(bool(x) != neg)
	case *Atom:
		if !neg {
			return x
		}
		return negAtom(x)
	case *Div:
		if !neg {
			return x
		}
		return &Div{Neg: !x.Neg, M: x.M, T: x.T}
	case *And:
		fs := make([]Formula, 0, len(x.Fs))
		for _, g := range x.Fs {
			fs = append(fs, nnf(g, neg))
		}
		if neg {
			return NewOr(fs...)
		}
		return NewAnd(fs...)
	case *Or:
		fs := make([]Formula, 0, len(x.Fs))
		for _, g := range x.Fs {
			fs = append(fs, nnf(g, neg))
		}
		if neg {
			return NewAnd(fs...)
		}
		return NewOr(fs...)
	case *Not:
		return nnf(x.F, !neg)
	case *Exists:
		inner := nnf(x.F, neg)
		if neg {
			return &ForAll{V: x.V, F: inner}
		}
		return &Exists{V: x.V, F: inner}
	case *ForAll:
		inner := nnf(x.F, neg)
		if neg {
			return &Exists{V: x.V, F: inner}
		}
		return &ForAll{V: x.V, F: inner}
	default:
		panic(fmt.Sprintf("smt: unknown formula %T", f))
	}
}

// negAtom returns the complement of an atom as an atom:
//
//	!(t <  0)  ==  -t <= 0
//	!(t <= 0)  ==  -t <  0
//	!(t =  0)  ==   t != 0
//	!(t != 0)  ==   t =  0
func negAtom(a *Atom) Formula {
	switch a.Op {
	case OpLT:
		return newAtom(OpLE, a.T.Clone().Neg())
	case OpLE:
		return newAtom(OpLT, a.T.Clone().Neg())
	case OpEQ:
		return newAtom(OpNE, a.T.Clone())
	case OpNE:
		return newAtom(OpEQ, a.T.Clone())
	default:
		panic("smt: bad atom op")
	}
}
