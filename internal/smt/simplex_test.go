package smt

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestSimplexBasics(t *testing.T) {
	x, y := RealVar("x"), RealVar("y")
	feasible := NewAnd(
		LE(VarTerm(x), ConstTerm(10)),
		GE(VarTerm(x), ConstTerm(0)),
		LE(VarTerm(y), VarTerm(x)),
	)
	if got := simplexCheck(Simplify(NNF(feasible))); got != simplexFeasible {
		t.Fatalf("feasible system judged %v", got)
	}
	infeasible := NewAnd(
		LE(VarTerm(x), ConstTerm(0)),
		GE(VarTerm(x), ConstTerm(1)),
	)
	if got := simplexCheck(Simplify(NNF(infeasible))); got != simplexInfeasible {
		t.Fatalf("infeasible system judged %v", got)
	}
	// x = y, x + y = 1, x - y = 1 is infeasible (forces y = 0 and x = 1 ≠ y).
	eqs := NewAnd(
		EQ(VarTerm(x), VarTerm(y)),
		EQ(VarTerm(x).Clone().AddVar(y, big.NewRat(1, 1)), ConstTerm(1)),
		EQ(VarTerm(x).Clone().AddVar(y, big.NewRat(-1, 1)), ConstTerm(1)),
	)
	if got := simplexCheck(Simplify(NNF(eqs))); got != simplexInfeasible {
		t.Fatalf("inconsistent equalities judged %v", got)
	}
}

func TestSimplexInapplicableShapes(t *testing.T) {
	x := IntVar("x")
	or := NewOr(LE(VarTerm(x), ConstTerm(0)), GE(VarTerm(x), ConstTerm(5)))
	if got := simplexCheck(or); got != simplexInapplicable {
		t.Fatalf("disjunction judged %v", got)
	}
	q := &Exists{V: x, F: LE(VarTerm(x), ConstTerm(0))}
	if got := simplexCheck(q); got != simplexInapplicable {
		t.Fatalf("quantified formula judged %v", got)
	}
	// An OR nested under an AND is also out of scope.
	mixed := NewAnd(LE(VarTerm(x), ConstTerm(3)), or)
	if got := simplexCheck(mixed); got != simplexInapplicable {
		t.Fatalf("mixed shape judged %v", got)
	}
}

func TestSimplexRelaxationIsSound(t *testing.T) {
	// Integer-only infeasibility must NOT be reported: 2x = 7 is
	// ℚ-feasible, and ≠/divisibility content is dropped.
	x := IntVar("x")
	frac := EQ(VarTerm(x).Clone().Scale(big.NewRat(2, 1)), ConstTerm(7))
	if got := simplexCheck(frac); got == simplexInfeasible {
		t.Fatal("2x=7 is rational-feasible; simplex must not claim UNSAT")
	}
	// For a REAL variable the strict gap 0 < r < 1 is genuinely feasible
	// and the ≤-relaxation must agree. (For an integer variable the
	// canonicalizer tightens the bounds to x ≤ 0 ∧ x ≥ 1 first, so the
	// simplex correctly proves UNSAT there — integer tightening composes
	// with the rational relaxation.)
	rv := RealVar("r")
	gap := NewAnd(LT(VarTerm(rv), ConstTerm(1)), GT(VarTerm(rv), ConstTerm(0)))
	if got := simplexCheck(Simplify(NNF(gap))); got == simplexInfeasible {
		t.Fatal("0 < r < 1 is rational-feasible; the strict relaxation must not claim UNSAT")
	}
	intGap := NewAnd(LT(VarTerm(x), ConstTerm(1)), GT(VarTerm(x), ConstTerm(0)))
	if got := simplexCheck(Simplify(NNF(intGap))); got != simplexInfeasible {
		t.Fatalf("integer gap 0 < x < 1 should be settled by tightening + simplex, got %v", got)
	}
}

func TestSimplexDifferentialAgainstSolver(t *testing.T) {
	// Property: on random conjunctions over REAL variables with ≤/≥/=
	// atoms only, the simplex verdict must equal full satisfiability
	// (over the reals the relaxation is exact for these shapes).
	r := rand.New(rand.NewSource(2024))
	vars := []Var{RealVar("x"), RealVar("y"), RealVar("z")}
	for trial := 0; trial < 150; trial++ {
		var fs []Formula
		n := 2 + r.Intn(5)
		for i := 0; i < n; i++ {
			tm := randTerm(r, vars, true)
			if tm.IsConst() {
				tm.AddVar(vars[r.Intn(len(vars))], big.NewRat(1, 1))
			}
			switch r.Intn(3) {
			case 0:
				fs = append(fs, &Atom{Op: OpLE, T: tm})
			case 1:
				fs = append(fs, &Atom{Op: OpLE, T: tm.Clone().Neg()})
			default:
				fs = append(fs, &Atom{Op: OpEQ, T: tm})
			}
		}
		f := NewAnd(fs...)
		verdict := simplexCheck(Simplify(NNF(f)))
		if verdict == simplexInapplicable {
			t.Fatalf("trial %d: conjunction judged inapplicable", trial)
		}
		s := &Solver{}
		// Bypass the fast path to get the independent answer.
		closed := Formula(f)
		for _, v := range FreeVars(f) {
			closed = &Exists{V: v, F: closed}
		}
		qf, err := s.QE(closed)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b, ok := Simplify(qf).(Bool)
		if !ok {
			t.Fatalf("trial %d: not ground", trial)
		}
		want := simplexFeasible
		if !bool(b) {
			want = simplexInfeasible
		}
		if verdict != want {
			t.Fatalf("trial %d: simplex %v, solver %v for %s", trial, verdict, want, f)
		}
	}
}

func TestSatisfiableUsesSimplexCut(t *testing.T) {
	s := New()
	x, y := IntVar("x"), IntVar("y")
	f := NewAnd(
		LE(VarTerm(x).Clone().AddVar(y, big.NewRat(1, 1)), ConstTerm(0)),
		GE(VarTerm(x), ConstTerm(5)),
		GE(VarTerm(y), ConstTerm(5)),
	)
	sat, err := s.Satisfiable(f)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Fatal("x+y<=0 with x,y>=5 should be UNSAT")
	}
	if s.Stats.SimplexCuts == 0 {
		t.Fatal("the simplex fast path should have settled this query")
	}
	if s.Stats.Eliminations != 0 {
		t.Fatalf("no eliminations expected on the fast path, got %d", s.Stats.Eliminations)
	}
}
