package smt

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sia/internal/cache/memo"
	"sia/internal/obs"
)

// ErrBudget is returned (wrapped) when quantifier elimination exceeds the
// solver's size limits. Callers treat it like a solver timeout: Sia gives up
// on the current synthesis rather than crashing.
var ErrBudget = errors.New("smt: elimination budget exceeded")

// ErrInterrupted is returned (wrapped, together with the context's own
// error) when the caller's context is cancelled or its deadline passes
// during a solver call. Unlike ErrBudget — a per-call budget the synthesis
// loop recovers from — ErrInterrupted means the caller walked away, so it
// propagates out of the whole pipeline.
var ErrInterrupted = errors.New("smt: interrupted")

// ErrUnsat is returned by Model when the formula has no model.
var ErrUnsat = errors.New("smt: unsatisfiable")

// Model is a satisfying assignment: exact rational values per variable
// (integer-sorted variables always map to integral rationals).
type Model map[Var]*big.Rat

// Stats counts the work a solver has performed.
type Stats struct {
	SatQueries   int // calls to Satisfiable (including internal ones)
	Eliminations int // quantifier eliminations performed
	ModelQueries int // calls to Model
	SimplexCuts  int // UNSAT answers settled by the rational simplex fast path
}

// Solver decides satisfiability of linear-arithmetic formulas with
// quantifiers and extracts models. The zero value is ready to use; limits
// default to values suited to Sia's predicate sizes.
type Solver struct {
	// MaxNodes bounds the node count of any intermediate formula during a
	// single quantifier elimination. 0 means the default.
	MaxNodes int
	// MaxDisjuncts bounds the number of substitution instances a single
	// Cooper elimination may expand. 0 means the default.
	MaxDisjuncts int
	// MaxModulus bounds the divisibility period δ in Cooper elimination.
	// 0 means the default.
	MaxModulus int
	// Timeout bounds the wall-clock time of one public call (Satisfiable,
	// Valid, Model, QE). Exceeding it returns ErrBudget — the analogue of
	// the Z3 timeout the paper configures ("the optimizer may use SIA
	// with an explicit timeout", §6.2). 0 means no timeout.
	Timeout time.Duration
	// Tracer, when set, emits one qe_memo span (Outcome "hit" or "miss")
	// per outermost quantifier elimination. A nil Tracer is free.
	Tracer *obs.Tracer

	Stats     Stats
	statsMu   sync.Mutex // guards Stats during parallel disjunct elimination
	freshID   atomic.Int64
	ctx       context.Context
	deadline  time.Time
	elimDepth atomic.Int32
}

// arm binds the caller's context and starts the timeout clock for a public
// entry point. Nested public calls (e.g. Model calling QE) keep the
// outermost context, deadline and query kind. The returned func disarms the
// solver and records the call's wall time under sia_smt_query_seconds; it
// must be deferred by every public entry point.
func (s *Solver) arm(ctx context.Context, kind string) func() {
	if s.ctx != nil {
		return func() {}
	}
	s.ctx = ctx
	start := time.Now()
	if s.Timeout > 0 {
		s.deadline = start.Add(s.Timeout)
	}
	return func() {
		s.ctx = nil
		s.deadline = time.Time{}
		mQuerySeconds[kind].Observe(time.Since(start).Seconds())
	}
}

// checkStop returns a non-nil error when the current call must stop: the
// caller's context was cancelled (ErrInterrupted, wrapping ctx.Err()) or
// the per-call timeout expired (ErrBudget). It is polled from the hot
// elimination and enumeration loops, bounding how long a cancellation can
// go unnoticed to a fraction of one solver call.
func (s *Solver) checkStop() error {
	if s.ctx != nil {
		// alloc: context implementations live in the runtime; Err returns a
		// cached sentinel without allocating, and the wrap below only runs
		// on the way out
		if err := s.ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", ErrInterrupted, err)
		}
	}
	// memo: the deadline poll can only select early abort (ErrBudget);
	// results that complete are unaffected by the clock
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return fmt.Errorf("%w: timeout after %v", ErrBudget, s.Timeout)
	}
	return nil
}

// New returns a solver with default limits.
func New() *Solver { return &Solver{} }

func (s *Solver) maxNodes() int {
	if s.MaxNodes > 0 {
		return s.MaxNodes
	}
	return 400000
}

func (s *Solver) maxDisjuncts() int {
	if s.MaxDisjuncts > 0 {
		return s.MaxDisjuncts
	}
	return 50000
}

func (s *Solver) maxModulus() int {
	if s.MaxModulus > 0 {
		return s.MaxModulus
	}
	return 100000
}

func (s *Solver) freshVar() Var {
	// memo: the counter only keeps generated names distinct; eliminated
	// variables never appear in results
	id := s.freshID.Add(1)
	// alloc: one short name per eliminated quantifier
	return Var{Name: fmt.Sprintf("$q%d", id), Sort: SortInt}
}

// QE returns a quantifier-free formula equivalent to f.
func (s *Solver) QE(f Formula) (Formula, error) {
	return s.QECtx(context.Background(), f)
}

// QECtx is QE honoring ctx: cancellation surfaces as ErrInterrupted within
// one elimination step.
func (s *Solver) QECtx(ctx context.Context, f Formula) (Formula, error) {
	defer s.arm(ctx, opQE)()
	if err := s.checkStop(); err != nil {
		return nil, err
	}
	switch x := f.(type) {
	case Bool, *Atom, *Div:
		return f, nil
	case *And:
		fs := make([]Formula, 0, len(x.Fs))
		for _, g := range x.Fs {
			r, err := s.QE(g)
			if err != nil {
				return nil, err
			}
			fs = append(fs, r)
		}
		return NewAnd(fs...), nil
	case *Or:
		fs := make([]Formula, 0, len(x.Fs))
		for _, g := range x.Fs {
			r, err := s.QE(g)
			if err != nil {
				return nil, err
			}
			fs = append(fs, r)
		}
		return NewOr(fs...), nil
	case *Not:
		inner, err := s.QE(x.F)
		if err != nil {
			return nil, err
		}
		return NewNot(inner), nil
	case *Exists:
		inner, err := s.QE(x.F)
		if err != nil {
			return nil, err
		}
		return s.eliminate(x.V, inner)
	case *ForAll:
		inner, err := s.QE(x.F)
		if err != nil {
			return nil, err
		}
		elim, err := s.eliminate(x.V, NNF(NewNot(inner)))
		if err != nil {
			return nil, err
		}
		return Simplify(NNF(NewNot(elim))), nil
	default:
		panic(fmt.Sprintf("smt: unknown formula %T", f))
	}
}

// qeMemo caches the results of successful eliminations process-wide,
// keyed by (variable sort, variable name, sort-qualified formula key).
// Memoization is sound because elimination is deterministic given (v, f):
// the solver's budgets only decide whether a call aborts early, never what
// a completed call returns, and aborted calls are never cached. Entries
// are immutable interned/simplified formulas shared by all solvers, under
// the same clone-then-mutate discipline the interner enforces.
var qeMemo = memo.New[string, Formula](qeMemoCap)

// qeMemoCap bounds the elimination memo. A synthesis sweep issues tens
// of thousands of eliminations but only ~10k distinct (v, f) keys, and
// the CEGIS loop re-asks old keys across iterations, so the cap must
// hold the whole working set: at 4096 the Table 2/3 workload thrashed
// (≈5.8k evictions against 9.9k misses). 64k entries of small result
// formulas keep residency in the tens of MB while making eviction the
// exception.
const qeMemoCap = 1 << 16

// qeMemoKey renders the memo key for eliminating v from f. The formula
// part is the interner's sort-qualified key, so same-named variables of
// different sorts never share an entry.
// alloc: key rendering; frozen formulas contribute their cached keys.
func qeMemoKey(v Var, f Formula) string {
	b := make([]byte, 0, 64)
	b = append(b, byte(v.Sort))
	b = append(b, v.Name...)
	b = append(b, '\x00')
	b = appendFormulaKey(b, f)
	return string(b)
}

// eliminate removes one existential variable from a quantifier-free
// formula, dispatching on the variable's sort. Existentials distribute over
// disjunction, which keeps intermediate formulas small when the input is
// already a union of cases (as Cooper's output is). Results of completed
// eliminations are memoized in qeMemo; at the outermost level, independent
// disjuncts are eliminated in parallel.
//
// sia:memoize
func (s *Solver) eliminate(v Var, f Formula) (Formula, error) {
	// memo: depth tracking and wall-time observation select only which
	// metrics are recorded; results never depend on them.
	depth := s.elimDepth.Add(1)
	if depth == 1 {
		// memo: wall clock feeds the latency metric only
		start := time.Now()
		defer func() {
			// memo: depth tracking, metrics only
			s.elimDepth.Add(-1)
			// alloc: deferred metrics closure, once per outermost elimination
			// memo: wall-time observation, metrics only
			mQuerySeconds[opElimination].Observe(time.Since(start).Seconds())
		}()
	} else {
		// memo: depth tracking, metrics only
		defer s.elimDepth.Add(-1)
	}
	if err := s.checkStop(); err != nil {
		return nil, err
	}
	f = Simplify(NNF(f))
	if !occurs(v, f) {
		return f, nil
	}
	s.bumpEliminations()
	key := qeMemoKey(v, f)
	// memo: qeMemo lookups are semantically transparent — a hit returns
	// exactly what the recomputation would; counters and spans are
	// observability only.
	if r, ok := qeMemo.Get(key); ok {
		mQEMemoHits.Inc()
		s.traceQEMemo(depth, "hit")
		return r, nil
	}
	mQEMemoMisses.Inc()
	s.traceQEMemo(depth, "miss")
	r, err := s.eliminateUncached(depth, v, f)
	if err != nil {
		return nil, err
	}
	// A result assembled while the context was dying may be incomplete in
	// ways the error plumbing has not surfaced yet at this level; caching
	// it would poison every later call with the same key. Skip the store
	// unless the call is still clean (sia_smt_qe_memo_skips_total).
	if s.checkStop() != nil {
		mQEMemoSkips.Inc()
		return r, nil
	}
	// memo: storing the deterministic result under its key is invisible to
	// every future answer; only recomputation is avoided.
	if qeMemo.Add(key, r) {
		mQEMemoEvictions.Inc()
	}
	return r, nil
}

// bumpEliminations counts one elimination request against the solver's
// Stats and the process totals. Memo hits count too: Stats.Eliminations is
// "elimination requests answered", and the memo counters break out how
// many were served from cache.
// memo: statistics counters; results never depend on them. The mutex only
// serializes the per-solver counter against parallel disjunct workers.
func (s *Solver) bumpEliminations() {
	s.statsMu.Lock()
	s.Stats.Eliminations++
	s.statsMu.Unlock()
	mEliminations.Inc()
}

// traceQEMemo emits the per-outermost-elimination memo span.
// memo: tracing is observability only; results never depend on it.
func (s *Solver) traceQEMemo(depth int32, outcome string) {
	if depth == 1 && s.Tracer.Enabled() {
		s.Tracer.Emit(obs.Span{Event: obs.EvQEMemo, Outcome: outcome})
	}
}

// eliminateUncached is eliminate past the memo lookup: the actual
// distribution over disjunction and sort dispatch.
func (s *Solver) eliminateUncached(depth int32, v Var, f Formula) (Formula, error) {
	if or, ok := f.(*Or); ok {
		if depth == 1 && len(or.Fs) >= parallelDisjunctMin && runtime.GOMAXPROCS(0) > 1 {
			return s.eliminateDisjunctsParallel(v, or)
		}
		fs := make([]Formula, 0, len(or.Fs))
		for _, g := range or.Fs {
			r, err := s.eliminate(v, g)
			if err != nil {
				return nil, err
			}
			if b, ok := r.(Bool); ok && bool(b) {
				return Bool(true), nil
			}
			fs = append(fs, r)
		}
		return Simplify(NewOr(fs...)), nil
	}
	if v.Sort == SortInt {
		return s.eliminateInt(v, f)
	}
	return s.eliminateReal(v, f)
}

// parallelDisjunctMin is the smallest outermost disjunct count worth
// fanning out: below it the goroutine setup outweighs the per-disjunct
// elimination work.
const parallelDisjunctMin = 4

// eliminateDisjunctsParallel eliminates v from each disjunct of or on a
// pool of workers that claim disjunct indices off a shared counter (the
// morsel pattern from internal/engine). Results are joined in index order
// and folded exactly as the serial loop does, so the outcome — including
// which error or early Bool(true) the caller observes — matches the
// serial elimination: claims are issued in ascending order and a worker
// finishes what it claimed, so every index before the first error/true
// trigger is complete by the join.
//
// alloc: per-call worker bookkeeping (result slices, WaitGroup); one
// outermost elimination amortizes it over its disjuncts.
// memo: the parallel schedule only reorders independent sub-eliminations;
// the ascending join makes the result identical to the serial loop's.
func (s *Solver) eliminateDisjunctsParallel(v Var, or *Or) (Formula, error) {
	n := len(or.Fs)
	results := make([]Formula, n)
	errs := make([]error, n)
	done := make([]bool, n)
	var next atomic.Int64
	var stop atomic.Bool
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// memo: worker goroutines compute independent sub-eliminations;
		// the deterministic ascending join below erases scheduling order.
		go func() {
			defer wg.Done()
			// cancel: claim loop; the shared counter only grows, so each
			// worker exits after at most n claims, and every claimed
			// eliminate polls checkStop internally.
			for {
				// Check stop before claiming, never after: a claimed index
				// is always computed, so the claimed prefix has no gaps and
				// the ascending join below sees every index up to the first
				// error/true trigger.
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := s.eliminate(v, or.Fs[i])
				results[i], errs[i], done[i] = r, err, true
				if err != nil {
					stop.Store(true)
					return
				}
				if b, ok := r.(Bool); ok && bool(b) {
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	fs := make([]Formula, 0, n)
	for i, g := range or.Fs {
		if !done[i] {
			// Only reachable past the first trigger index (claims are
			// ascending and always completed); compute in place so the
			// scan never has to distinguish the two cases.
			results[i], errs[i] = s.eliminate(v, g)
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
		if b, ok := results[i].(Bool); ok && bool(b) {
			return Bool(true), nil
		}
		fs = append(fs, results[i])
	}
	return Simplify(NewOr(fs...)), nil
}

// Satisfiable decides whether f has a model. Free variables are treated as
// existentially quantified.
func (s *Solver) Satisfiable(f Formula) (bool, error) {
	return s.SatisfiableCtx(context.Background(), f)
}

// SatisfiableCtx is Satisfiable honoring ctx: cancellation surfaces as
// ErrInterrupted within one elimination step.
func (s *Solver) SatisfiableCtx(ctx context.Context, f Formula) (bool, error) {
	defer s.arm(ctx, opSat)()
	// A dead context fails fast even when a shortcut (the simplex cut
	// below) could still produce an answer: cancelled means cancelled.
	if err := s.checkStop(); err != nil {
		return false, err
	}
	s.Stats.SatQueries++
	mSatQueries.Inc()
	f = Simplify(NNF(f))
	// Fast path: a conjunction of linear atoms that is already infeasible
	// over the rationals needs no quantifier elimination.
	if simplexCheck(f) == simplexInfeasible {
		s.Stats.SimplexCuts++
		mSimplexCuts.Inc()
		return false, nil
	}
	closed := f
	for _, v := range FreeVars(f) {
		closed = &Exists{V: v, F: closed}
	}
	g, err := s.QE(closed)
	if err != nil {
		return false, err
	}
	g = Simplify(g)
	b, ok := g.(Bool)
	if !ok {
		return false, fmt.Errorf("smt: internal: closed formula reduced to %s", g)
	}
	return bool(b), nil
}

// Valid decides whether f holds under every assignment of its free
// variables.
func (s *Solver) Valid(f Formula) (bool, error) {
	return s.ValidCtx(context.Background(), f)
}

// ValidCtx is Valid honoring ctx.
func (s *Solver) ValidCtx(ctx context.Context, f Formula) (bool, error) {
	sat, err := s.SatisfiableCtx(ctx, NewNot(f))
	if err != nil {
		return false, err
	}
	return !sat, nil
}

// Model returns a satisfying assignment for f's free variables, or ErrUnsat.
//
// The procedure assigns variables one at a time: for each variable v it
// projects all later variables away with quantifier elimination, obtaining
// a univariate formula whose solution set is a finite union of intervals
// (and congruence classes, for integers); it then picks a concrete value
// from that set and substitutes it before moving on. This mirrors how the
// paper extracts concrete tuples from Z3's models (§5.3) while remaining
// exact.
func (s *Solver) Model(f Formula) (Model, error) {
	return s.ModelCtx(context.Background(), f)
}

// ModelCtx is Model honoring ctx: cancellation surfaces as ErrInterrupted
// within one elimination step.
func (s *Solver) ModelCtx(ctx context.Context, f Formula) (Model, error) {
	defer s.arm(ctx, opModel)()
	if err := s.checkStop(); err != nil {
		return nil, err
	}
	s.Stats.ModelQueries++
	mModelQueries.Inc()
	vars := FreeVars(f)
	qf, err := s.QE(f)
	if err != nil {
		return nil, err
	}
	qf = Simplify(NNF(qf))
	if b, ok := qf.(Bool); ok {
		if !bool(b) {
			return nil, ErrUnsat
		}
		m := Model{}
		for _, v := range vars {
			m[v] = new(big.Rat)
		}
		return m, nil
	}

	// Forward elimination: stages[i] == ∃vars[0..i-1]. qf, so stages[i]
	// mentions only vars[i:]. Each stage is computed once.
	stages := make([]Formula, len(vars)+1)
	stages[0] = qf
	for i, v := range vars {
		g, err := s.eliminate(v, stages[i])
		if err != nil {
			return nil, err
		}
		stages[i+1] = g
	}
	if b, ok := Simplify(stages[len(vars)]).(Bool); !ok || !bool(b) {
		return nil, ErrUnsat
	}

	// Back substitution: pick vars[n-1] from stages[n-1] (univariate),
	// then vars[i] from stages[i] with vars[i+1:] already substituted.
	model := Model{}
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		g := stages[i]
		for j := i + 1; j < len(vars); j++ {
			g = Subst(g, vars[j], NewTerm(model[vars[j]]))
		}
		g = Simplify(g)
		val, err := solveUnivariate(v, g)
		if err != nil {
			return nil, fmt.Errorf("smt: internal: back substitution failed at %s: %w", v, err)
		}
		model[v] = val
	}
	// Final sanity check: the full assignment must satisfy the formula.
	check := qf
	for _, v := range vars {
		check = Subst(check, v, NewTerm(model[v]))
	}
	if b, ok := Simplify(check).(Bool); !ok || !bool(b) {
		return nil, fmt.Errorf("smt: internal: model check failed")
	}
	return model, nil
}

// solveUnivariate picks a value for v from a satisfiable quantifier-free
// formula whose only free variable is v. The solution set of such a formula
// is a finite union of intervals with endpoints among the atoms' bound
// constants, refined (for integers) by congruence constraints of period δ.
// Testing the bounds themselves, their δ-neighborhoods, and points beyond
// the extremes is therefore complete.
func solveUnivariate(v Var, f Formula) (*big.Rat, error) {
	if b, ok := f.(Bool); ok {
		if !bool(b) {
			return nil, ErrUnsat
		}
		return new(big.Rat), nil // any value works; use 0
	}
	var bounds []*big.Rat
	seenBounds := map[string]bool{}
	delta := big.NewInt(1)
	err := walkLeaves(f, func(leaf Formula) error {
		switch x := leaf.(type) {
		case *Atom:
			c := x.T.Coeff(v)
			if c.Sign() == 0 {
				return fmt.Errorf("smt: internal: ground atom %s survived simplification", x)
			}
			rest := new(big.Rat).Set(x.T.Const())
			// bound = -rest/c
			b := rest.Neg(rest)
			b.Quo(b, c)
			if key := b.RatString(); !seenBounds[key] {
				seenBounds[key] = true
				bounds = append(bounds, b)
			}
		case *Div:
			if x.T.Has(v) {
				lcmInto(delta, x.M)
			}
		default:
			// walkLeaves yields only Atom and Div leaves.
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var candidates []*big.Rat
	seenCand := map[string]bool{}
	push := func(r *big.Rat) {
		if key := r.RatString(); !seenCand[key] {
			seenCand[key] = true
			candidates = append(candidates, r)
		}
	}
	if v.Sort == SortInt {
		if !delta.IsInt64() || delta.Int64() > 1_000_000 {
			return nil, fmt.Errorf("%w: univariate period %s too large", ErrBudget, delta)
		}
		dn := delta.Int64()
		if est := int64(2*len(bounds)+1) * (2*dn + 3); est > 500000 {
			return nil, fmt.Errorf("%w: %d univariate candidates", ErrBudget, est)
		}
		base := []*big.Rat{new(big.Rat)}
		for _, b := range bounds {
			fl := ratFloor(b)
			base = append(base, new(big.Rat).SetInt(fl), new(big.Rat).SetInt(new(big.Int).Add(fl, bigOne)))
		}
		if base64, ok := intBases64(base, dn); ok {
			// Lazy int64 scan: identical candidate order and dedup as the
			// materializing loop below, so the first satisfying value — the
			// function's result — is unchanged, but candidates after it are
			// never built and dedup keys never allocate.
			seen64 := make(map[int64]bool, len(base64))
			for _, b := range base64 {
				for j := int64(-dn - 1); j <= dn+1; j++ {
					n := b + j
					if seen64[n] {
						continue
					}
					seen64[n] = true
					g := Simplify(Subst(f, v, ConstTerm(n)))
					if sat, ok := g.(Bool); ok && bool(sat) {
						return new(big.Rat).SetInt64(n), nil
					}
				}
			}
			return nil, ErrUnsat
		}
		for _, b := range base {
			for j := int64(-dn - 1); j <= dn+1; j++ {
				push(new(big.Rat).Add(b, new(big.Rat).SetInt64(j)))
			}
		}
	} else {
		push(new(big.Rat))
		sort.Slice(bounds, func(i, j int) bool { return bounds[i].Cmp(bounds[j]) < 0 })
		for i, b := range bounds {
			push(new(big.Rat).Set(b))
			if i+1 < len(bounds) {
				mid := new(big.Rat).Add(b, bounds[i+1])
				mid.Quo(mid, big.NewRat(2, 1))
				push(mid)
			}
		}
		if len(bounds) > 0 {
			push(new(big.Rat).Sub(bounds[0], ratOne))
			push(new(big.Rat).Add(bounds[len(bounds)-1], ratOne))
		}
	}

	for _, cand := range candidates {
		g := Simplify(Subst(f, v, NewTerm(cand)))
		if b, ok := g.(Bool); ok && bool(b) {
			return cand, nil
		}
	}
	return nil, ErrUnsat
}

// ratFloor returns ⌊r⌋ as a big.Int.
func ratFloor(r *big.Rat) *big.Int {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, bigOne)
	}
	return q
}
