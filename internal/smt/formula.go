package smt

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
)

// Formula is a first-order formula over linear arithmetic atoms.
type Formula interface {
	fmt.Stringer
	formula()
}

// Bool is the constant TRUE or FALSE formula.
type Bool bool

func (Bool) formula() {}

func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// AtomOp relates a term to zero.
type AtomOp int

const (
	// OpLT asserts t < 0.
	OpLT AtomOp = iota
	// OpLE asserts t <= 0.
	OpLE
	// OpEQ asserts t = 0.
	OpEQ
	// OpNE asserts t != 0.
	OpNE
)

func (op AtomOp) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	default:
		// alloc: unreachable for valid operators; diagnostic rendering only
		return fmt.Sprintf("AtomOp(%d)", int(op))
	}
}

// Atom asserts T Op 0.
//
// An interned atom (see Intern) is frozen: its rendering and the canonical
// key of its complement are cached, and its term is frozen too.
type Atom struct {
	Op AtomOp
	T  *Term

	// Interning metadata, set once under the intern shard lock before the
	// atom is published; read-only afterwards. str caches the display
	// rendering, key the sort-qualified interner key, negKey the canonical
	// display key of the complement. canon marks leaves published by the
	// simplifier's canonicalizers (internLeaf): they are Simplify fixed
	// points, so Simplify returns them unchanged without re-deriving the
	// canonical form.
	frozen bool
	canon  bool
	str    string
	key    string
	negKey string
}

func (*Atom) formula() {}

// String renders the atom; used by the eliminators as a dedup key.
// Interned atoms return the cached rendering.
// alloc: string building is the product on the uncached path.
func (a *Atom) String() string {
	if a.frozen {
		return a.str
	}
	return string(a.appendString(nil))
}

// alloc: display rendering grows the caller's buffer; interned atoms pay
// it once and serve the cached string afterwards.
func (a *Atom) appendString(b []byte) []byte {
	b = a.T.appendString(b)
	b = append(b, ' ')
	b = append(b, a.Op.String()...)
	return append(b, " 0"...)
}

// Div asserts M | T (M divides the value of T), or its negation when Neg is
// set. T must be integer-valued; Div atoms are only produced internally by
// Cooper's algorithm and by integer-aware simplification.
type Div struct {
	Neg bool
	M   *big.Int
	T   *Term

	// Interning metadata; see Atom.
	frozen bool
	canon  bool
	str    string
	key    string
}

func (*Div) formula() {}

// String renders the divisibility atom. Interned divisibility atoms return
// the cached rendering.
// alloc: string building is the product on the uncached path.
func (d *Div) String() string {
	if d.frozen {
		return d.str
	}
	return string(d.appendString(nil))
}

// alloc: display rendering grows the caller's buffer; interned atoms pay
// it once and serve the cached string afterwards.
func (d *Div) appendString(b []byte) []byte {
	if d.Neg {
		b = append(b, '!')
	}
	b = append(b, '(')
	b = append(b, d.M.String()...)
	b = append(b, " | "...)
	b = d.T.appendString(b)
	return append(b, ')')
}

// And is an n-ary conjunction.
type And struct {
	Fs []Formula

	// Interning metadata; see Atom.
	frozen bool
	str    string
	key    string
}

func (*And) formula() {}

func (a *And) String() string {
	if a.frozen {
		return a.str
	}
	return joinFormulas(a.Fs, " & ", "true")
}

// Or is an n-ary disjunction.
type Or struct {
	Fs []Formula

	// Interning metadata; see Atom.
	frozen bool
	str    string
	key    string
}

func (*Or) formula() {}

func (o *Or) String() string {
	if o.frozen {
		return o.str
	}
	return joinFormulas(o.Fs, " | ", "false")
}

// Not negates a formula.
type Not struct {
	F Formula

	// Interning metadata; see Atom.
	frozen bool
	str    string
	key    string
}

func (*Not) formula() {}

// String renders the negation.
// alloc: string building is the product on the uncached path.
func (n *Not) String() string {
	if n.frozen {
		return n.str
	}
	return "!(" + n.F.String() + ")"
}

// Exists existentially quantifies a variable.
type Exists struct {
	V Var
	F Formula

	// Interning metadata; see Atom.
	frozen bool
	str    string
	key    string
}

func (*Exists) formula() {}

// String renders the quantifier.
// alloc: string building is the product on the uncached path.
func (e *Exists) String() string {
	if e.frozen {
		return e.str
	}
	return fmt.Sprintf("exists %s:%s. (%s)", e.V.Name, e.V.Sort, e.F)
}

// ForAll universally quantifies a variable.
type ForAll struct {
	V Var
	F Formula

	// Interning metadata; see Atom.
	frozen bool
	str    string
	key    string
}

func (*ForAll) formula() {}

// String renders the quantifier.
// alloc: string building is the product on the uncached path.
func (f *ForAll) String() string {
	if f.frozen {
		return f.str
	}
	return fmt.Sprintf("forall %s:%s. (%s)", f.V.Name, f.V.Sort, f.F)
}

// joinFormulas renders an n-ary connective.
// alloc: string building is the product.
func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		switch f.(type) {
		case *And, *Or:
			parts[i] = "(" + f.String() + ")"
		default:
			parts[i] = f.String()
		}
	}
	return strings.Join(parts, sep)
}

// Convenience constructors. These perform constant folding so that trivial
// formulas collapse immediately.

// NewAnd returns the conjunction of fs, flattening and folding constants.
// alloc: formula construction is the product; growth is bounded by the
// eliminator's maxNodes budget.
func NewAnd(fs ...Formula) Formula {
	var flat []Formula
	for _, f := range fs {
		switch x := f.(type) {
		case Bool:
			if !x {
				return Bool(false)
			}
		case *And:
			flat = append(flat, x.Fs...)
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return Bool(true)
	case 1:
		return flat[0]
	}
	return &And{Fs: flat}
}

// NewOr returns the disjunction of fs, flattening and folding constants.
// alloc: formula construction is the product; growth is bounded by the
// eliminator's maxNodes budget.
func NewOr(fs ...Formula) Formula {
	var flat []Formula
	for _, f := range fs {
		switch x := f.(type) {
		case Bool:
			if x {
				return Bool(true)
			}
		case *Or:
			flat = append(flat, x.Fs...)
		default:
			flat = append(flat, f)
		}
	}
	switch len(flat) {
	case 0:
		return Bool(false)
	case 1:
		return flat[0]
	}
	return &Or{Fs: flat}
}

// NewNot returns the negation of f, folding constants and double negation.
// alloc: formula construction is the product.
func NewNot(f Formula) Formula {
	switch x := f.(type) {
	case Bool:
		return Bool(!x)
	case *Not:
		return x.F
	default:
		return &Not{F: f}
	}
}

// LT returns the atom a < b.
func LT(a, b *Term) Formula { return newAtom(OpLT, diff(a, b)) }

// LE returns the atom a <= b.
func LE(a, b *Term) Formula { return newAtom(OpLE, diff(a, b)) }

// GT returns the atom a > b.
func GT(a, b *Term) Formula { return newAtom(OpLT, diff(b, a)) }

// GE returns the atom a >= b.
func GE(a, b *Term) Formula { return newAtom(OpLE, diff(b, a)) }

// EQ returns the atom a = b.
func EQ(a, b *Term) Formula { return newAtom(OpEQ, diff(a, b)) }

// NE returns the atom a != b.
func NE(a, b *Term) Formula { return newAtom(OpNE, diff(a, b)) }

func diff(a, b *Term) *Term { return a.Clone().AddScaled(b, big.NewRat(-1, 1)) }

// newAtom folds ground atoms to Bool.
// alloc: formula construction is the product.
func newAtom(op AtomOp, t *Term) Formula {
	if t.IsConst() {
		// Only the sign of the constant matters; skip the big.Rat copy.
		return Bool(evalAtomSign(op, t.konst.sign()))
	}
	return &Atom{Op: op, T: t}
}

func evalAtomConst(op AtomOp, c *big.Rat) bool { return evalAtomSign(op, c.Sign()) }

// evalAtomSign decides op against the sign of the (constant) term.
func evalAtomSign(op AtomOp, s int) bool {
	switch op {
	case OpLT:
		return s < 0
	case OpLE:
		return s <= 0
	case OpEQ:
		return s == 0
	case OpNE:
		return s != 0
	default:
		panic("smt: bad atom op")
	}
}

// FormulaEqual reports whether two formulas are structurally identical.
// Interned nodes compare by pointer first.
func FormulaEqual(a, b Formula) bool {
	if a == b {
		return true
	}
	switch x := a.(type) {
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case *Atom:
		y, ok := b.(*Atom)
		return ok && x.Op == y.Op && x.T.Equal(y.T)
	case *Div:
		y, ok := b.(*Div)
		return ok && x.Neg == y.Neg && x.M.Cmp(y.M) == 0 && x.T.Equal(y.T)
	case *And:
		y, ok := b.(*And)
		if !ok || len(x.Fs) != len(y.Fs) {
			return false
		}
		for i := range x.Fs {
			if !FormulaEqual(x.Fs[i], y.Fs[i]) {
				return false
			}
		}
		return true
	case *Or:
		y, ok := b.(*Or)
		if !ok || len(x.Fs) != len(y.Fs) {
			return false
		}
		for i := range x.Fs {
			if !FormulaEqual(x.Fs[i], y.Fs[i]) {
				return false
			}
		}
		return true
	case *Not:
		y, ok := b.(*Not)
		return ok && FormulaEqual(x.F, y.F)
	case *Exists:
		y, ok := b.(*Exists)
		return ok && x.V == y.V && FormulaEqual(x.F, y.F)
	case *ForAll:
		y, ok := b.(*ForAll)
		return ok && x.V == y.V && FormulaEqual(x.F, y.F)
	default:
		panic(fmt.Sprintf("smt: unknown formula %T", a))
	}
}

// FreeVars returns the sorted free variables of f.
func FreeVars(f Formula) []Var {
	seen := map[Var]bool{}
	var bound []Var
	var walk func(Formula)
	isBound := func(v Var) bool {
		for _, b := range bound {
			if b == v {
				return true
			}
		}
		return false
	}
	collect := func(t *Term) {
		for _, v := range t.Vars(nil) {
			if !isBound(v) {
				seen[v] = true
			}
		}
	}
	walk = func(f Formula) {
		switch x := f.(type) {
		case Bool:
		case *Atom:
			collect(x.T)
		case *Div:
			collect(x.T)
		case *And:
			for _, g := range x.Fs {
				walk(g)
			}
		case *Or:
			for _, g := range x.Fs {
				walk(g)
			}
		case *Not:
			walk(x.F)
		case *Exists:
			bound = append(bound, x.V)
			walk(x.F)
			bound = bound[:len(bound)-1]
		case *ForAll:
			bound = append(bound, x.V)
			walk(x.F)
			bound = bound[:len(bound)-1]
		default:
			panic(fmt.Sprintf("smt: unknown formula %T", f))
		}
	}
	walk(f)
	vars := make([]Var, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	return vars
}

// Subst returns f with every free occurrence of v replaced by the term
// repl. f must be quantifier-free in v's scope for the substitution to be
// capture-free; quantifiers binding v shadow the substitution.
// alloc: builds the substituted tree; untouched subtrees are shared, and
// growth is bounded by the eliminator's maxNodes budget.
func Subst(f Formula, v Var, repl *Term) Formula {
	switch x := f.(type) {
	case Bool:
		return x
	case *Atom:
		if !x.T.Has(v) {
			return x
		}
		return newAtom(x.Op, substTermCopy(x.T, v, repl))
	case *Div:
		if !x.T.Has(v) {
			return x
		}
		return simplifyDiv(&Div{Neg: x.Neg, M: x.M, T: substTermCopy(x.T, v, repl)})
	case *And:
		fs := make([]Formula, 0, len(x.Fs))
		for _, g := range x.Fs {
			fs = append(fs, Subst(g, v, repl))
		}
		return NewAnd(fs...)
	case *Or:
		fs := make([]Formula, 0, len(x.Fs))
		for _, g := range x.Fs {
			fs = append(fs, Subst(g, v, repl))
		}
		return NewOr(fs...)
	case *Not:
		return NewNot(Subst(x.F, v, repl))
	case *Exists:
		if x.V == v {
			return x
		}
		return &Exists{V: x.V, F: Subst(x.F, v, repl)}
	case *ForAll:
		if x.V == v {
			return x
		}
		return &ForAll{V: x.V, F: Subst(x.F, v, repl)}
	default:
		panic(fmt.Sprintf("smt: unknown formula %T", f))
	}
}

// simplifyDiv folds a divisibility atom whose term is constant.
func simplifyDiv(d *Div) Formula {
	if !d.T.IsConst() {
		return d
	}
	holds := false
	k := &d.T.konst
	if k.r == nil {
		if k.denom() == 1 {
			if d.M.IsInt64() {
				holds = k.num%d.M.Int64() == 0
			} else {
				// |M| exceeds int64 while the numerator fits it, so the
				// only multiple of M in range is zero.
				holds = k.num == 0
			}
		}
	} else if k.r.IsInt() {
		// alloc: one scratch integer for the over-int64 modulus check
		m := new(big.Int).Mod(k.r.Num(), d.M)
		holds = m.Sign() == 0
	}
	return Bool(holds != d.Neg)
}

// CountNodes returns the number of nodes in the formula tree, used for
// budget checks during quantifier elimination.
func CountNodes(f Formula) int {
	switch x := f.(type) {
	case Bool, *Atom, *Div:
		return 1
	case *And:
		n := 1
		for _, g := range x.Fs {
			n += CountNodes(g)
		}
		return n
	case *Or:
		n := 1
		for _, g := range x.Fs {
			n += CountNodes(g)
		}
		return n
	case *Not:
		return 1 + CountNodes(x.F)
	case *Exists:
		return 1 + CountNodes(x.F)
	case *ForAll:
		return 1 + CountNodes(x.F)
	default:
		panic(fmt.Sprintf("smt: unknown formula %T", f))
	}
}
