package smt

import (
	"fmt"
	"math/big"
)

// Simplify rewrites a formula into an equivalent, usually smaller one:
// ground atoms fold to constants, atoms are put in a canonical scaled form,
// divisibility terms are reduced modulo their modulus, duplicate children of
// AND/OR collapse, and a child together with its complement collapses the
// whole connective. Simplify is applied after every quantifier-elimination
// step to keep intermediate formulas tractable.
//
// Simplified atoms and divisibility constraints are interned: structurally
// equal leaves come back as one shared, frozen node whose canonical string
// is cached, which is what makes the dedup keys below cheap.
// alloc: rebuilds the simplified tree; the result is usually smaller than
// the input and growth is bounded by the eliminator's maxNodes budget.
func Simplify(f Formula) Formula {
	switch x := f.(type) {
	case Bool:
		return x
	case *Atom:
		if x.canon {
			// Published by a canonicalizer: already a Simplify fixed point.
			return x
		}
		return canonAtom(x.Op, x.T.Clone())
	case *Div:
		if x.canon {
			// Published by a canonicalizer: already a Simplify fixed point.
			return x
		}
		return canonDiv(x)
	case *And:
		return simplifyJunction(x.Fs, true)
	case *Or:
		return simplifyJunction(x.Fs, false)
	case *Not:
		inner := Simplify(x.F)
		if a, ok := inner.(*Atom); ok {
			n := negAtom(a)
			if na, ok := n.(*Atom); ok {
				return canonAtom(na.Op, na.T.Clone())
			}
			return n
		}
		if d, ok := inner.(*Div); ok {
			return internLeaf(&Div{Neg: !d.Neg, M: d.M, T: d.T})
		}
		return NewNot(inner)
	case *Exists:
		inner := Simplify(x.F)
		if b, ok := inner.(Bool); ok {
			return b
		}
		if !occurs(x.V, inner) {
			return inner
		}
		return &Exists{V: x.V, F: inner}
	case *ForAll:
		inner := Simplify(x.F)
		if b, ok := inner.(Bool); ok {
			return b
		}
		if !occurs(x.V, inner) {
			return inner
		}
		return &ForAll{V: x.V, F: inner}
	default:
		panic(fmt.Sprintf("smt: unknown formula %T", f))
	}
}

// occurs reports whether v occurs free in f.
func occurs(v Var, f Formula) bool {
	switch x := f.(type) {
	case Bool:
		return false
	case *Atom:
		return x.T.Has(v)
	case *Div:
		return x.T.Has(v)
	case *And:
		for _, g := range x.Fs {
			if occurs(v, g) {
				return true
			}
		}
		return false
	case *Or:
		for _, g := range x.Fs {
			if occurs(v, g) {
				return true
			}
		}
		return false
	case *Not:
		return occurs(v, x.F)
	case *Exists:
		return x.V != v && occurs(v, x.F)
	case *ForAll:
		return x.V != v && occurs(v, x.F)
	default:
		panic(fmt.Sprintf("smt: unknown formula %T", f))
	}
}

// canonAtom scales the term to a canonical representative: denominators are
// cleared, the coefficient content is divided out, and for sign-symmetric
// relations (=, !=) the first variable's coefficient is made positive. All
// scalings are by positive rationals, so the relation is preserved. If the
// term has integer variables only and integer coefficients, a strict
// inequality t < 0 is tightened to t + 1 <= 0. The result is interned.
// alloc: the canonical atom is the product; the scalings stay on the coef
// fast path for int64-sized coefficients.
func canonAtom(op AtomOp, t *Term) Formula {
	return internLeaf(canonAtomRaw(op, t))
}

// canonAtomRaw is canonAtom without the interning step; negAtomKey uses it
// to render a complement's canonical form without publishing a node (doing
// so from inside the interner would re-enter it).
func canonAtomRaw(op AtomOp, t *Term) Formula {
	if t.IsConst() {
		return Bool(evalAtomSign(op, t.konst.sign()))
	}
	clearDenominators(t)
	divideContent(t)
	// For =, != flip sign so the lexicographically first variable has a
	// positive coefficient, giving syntactically equal canonical forms.
	if op == OpEQ || op == OpNE {
		vars := t.Vars(nil)
		if len(vars) > 0 && t.at(vars[0]).sign() < 0 {
			t.Neg()
		}
	}
	// Integer tightening: over all-integer terms, strict bounds become
	// non-strict, bounds round down through the variable-coefficient GCD,
	// and fractional equalities fold to constants.
	if t.AllIntVars() && intCoeffs(t) {
		switch op {
		case OpLT:
			// t < 0 with integer t  ==  t <= -1  ==  t+1 <= 0.
			op = OpLE
			t.AddInt64(1)
			t = tightenIntLE(t)
		case OpLE:
			t = tightenIntLE(t)
		case OpEQ, OpNE:
			divideVarGCD(t)
			if !t.konst.isInt() {
				// Integer combination can never equal a fraction.
				return Bool(op == OpNE)
			}
		}
	}
	return newAtom(op, t)
}

// clearDenominators scales t by the LCM of its denominators so every
// coefficient and the constant become integers. No-op for the common
// all-integer case.
func clearDenominators(t *Term) {
	if allIntRat(t) {
		return
	}
	if l, ok := t.denomLCM64(); ok {
		var k coef
		k.setInt64(l)
		t.scaleCoef(&k)
		return
	}
	// alloc: big-integer LCM scaling; the over-int64 slow path
	t.Scale(new(big.Rat).SetInt(t.DenomLCM()))
}

// divideContent divides t by the GCD of the numerators of all coefficients
// and the constant (denominators already cleared).
func divideContent(t *Term) {
	if g, ok := contentGCD64(t); ok {
		if g > 1 {
			var k coef
			k.setFrac64(1, g)
			t.scaleCoef(&k)
		}
		return
	}
	content := contentGCDBig(t)
	if content.Cmp(bigOne) != 0 {
		// alloc: big-integer content division; the over-int64 slow path
		t.Scale(new(big.Rat).SetFrac(bigOne, content))
	}
}

// contentGCD64 is divideContent's fast path: the GCD of all numerators when
// every one fits int64. GCD is commutative, so map iteration order cannot
// reach the result.
func contentGCD64(t *Term) (int64, bool) {
	var g int64
	for i := range t.cells {
		n, ok := t.cells[i].c.num64()
		if !ok {
			return 0, false
		}
		g = gcd64(g, n)
	}
	n, ok := t.konst.num64()
	if !ok {
		return 0, false
	}
	if g = gcd64(g, n); g == 0 {
		g = 1
	}
	return g, true
}

// contentGCDBig is the arbitrary-precision fallback of divideContent.
// alloc: scratch integers for the GCD accumulation; slow path by design.
func contentGCDBig(t *Term) *big.Int {
	g := new(big.Int)
	acc := func(n *big.Int) {
		// memo: numBig hands over a fresh big.Int; Abs mutates that
		// caller-owned scratch value only.
		n.Abs(n)
		if n.Sign() != 0 {
			if g.Sign() == 0 {
				g.Set(n)
			} else {
				g.GCD(nil, nil, g, n)
			}
		}
	}
	for i := range t.cells {
		acc(t.cells[i].c.numBig())
	}
	acc(t.konst.numBig())
	if g.Sign() == 0 {
		g.SetInt64(1)
	}
	return g
}

// divideVarGCD divides t by the GCD of its (integer) variable coefficients.
func divideVarGCD(t *Term) {
	if g, ok := varCoeffGCD64(t); ok {
		if g > 1 {
			var k coef
			k.setFrac64(1, g)
			t.scaleCoef(&k)
		}
		return
	}
	g := varCoeffGCDBig(t)
	if g.Cmp(bigOne) > 0 {
		// alloc: big-integer GCD division; the over-int64 slow path
		t.Scale(new(big.Rat).SetFrac(bigOne, g))
	}
}

// varCoeffGCD64 is divideVarGCD's fast path over int64 numerators.
func varCoeffGCD64(t *Term) (int64, bool) {
	var g int64
	for i := range t.cells {
		n, ok := t.cells[i].c.num64()
		if !ok {
			return 0, false
		}
		g = gcd64(g, n)
	}
	if g == 0 {
		g = 1
	}
	return g, true
}

// varCoeffGCDBig is the arbitrary-precision fallback of divideVarGCD.
// alloc: scratch integers for the GCD accumulation; slow path by design.
func varCoeffGCDBig(t *Term) *big.Int {
	g := new(big.Int)
	for i := range t.cells {
		n := t.cells[i].c.numBig()
		n.Abs(n)
		if g.Sign() == 0 {
			g.Set(n)
		} else {
			g.GCD(nil, nil, g, n)
		}
	}
	if g.Sign() == 0 {
		g.SetInt64(1)
	}
	return g
}

// tightenIntLE rewrites g·s + c <= 0 (integer-valued s, integer coefficient
// GCD g) as s - floor(-c/g) <= 0, the tightest integer bound.
func tightenIntLE(t *Term) *Term {
	divideVarGCD(t)
	return roundIntAtomLE(t)
}

// intCoeffs reports whether every variable coefficient is an integer (the
// constant may still be fractional).
func intCoeffs(t *Term) bool {
	for i := range t.cells {
		if !t.cells[i].c.isInt() {
			return false
		}
	}
	return true
}

// floorDiv64 returns floor(a/b) for b > 0.
func floorDiv64(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a < 0 {
		q--
	}
	return q
}

// roundIntAtomLE tightens t <= 0 where all variable parts are integral:
// sum + c <= 0  ==  sum <= floor(-c)  ==  sum - floor(-c) <= 0.
func roundIntAtomLE(t *Term) *Term {
	if t.konst.isInt() {
		return t
	}
	if n, okN := t.konst.num64(); okN {
		if d, okD := t.konst.den64(); okD {
			t.konst.setInt64(-floorDiv64(-n, d))
			return t
		}
	}
	// alloc: scratch integers for the floor computation; slow path by design.
	negC := new(big.Rat).Neg(t.konst.rat())
	// alloc: floor quotient scratch; slow path by design
	fl := new(big.Int).Quo(negC.Num(), negC.Denom())
	// big.Int Quo truncates toward zero; adjust to floor for negatives.
	if negC.Sign() < 0 {
		// alloc: remainder scratch for the floor adjustment; slow path
		r := new(big.Int).Rem(negC.Num(), negC.Denom())
		if r.Sign() != 0 {
			fl.Sub(fl, bigOne)
		}
	}
	t.konst.setBigInt(fl.Neg(fl))
	return t
}

// canonDiv canonicalizes a divisibility atom: the term's coefficients and
// constant are reduced modulo M, and ground instances fold to Bool. The
// result is interned.
// alloc: the reduced atom is the product; the modular reductions stay on
// the coef fast path for int64-sized values.
func canonDiv(d *Div) Formula {
	if d.M.Cmp(bigOne) == 0 {
		return Bool(!d.Neg)
	}
	t := d.T.Clone()
	if !allIntRat(t) {
		// Non-integer coefficients: leave untouched (only produced by
		// pathological inputs; correctness is preserved).
		return internLeaf(&Div{Neg: d.Neg, M: d.M, T: t})
	}
	m, mFast := d.M.Int64(), d.M.IsInt64() && fastOK(d.M.Int64())
	// modCoef reduces c modulo M in place; reports whether it became zero.
	modCoef := func(c *coef) bool {
		if n, ok := c.num64(); ok && mFast {
			r := n % m
			if r < 0 {
				r += m
			}
			if r == 0 {
				return true
			}
			// memo: c is a coefficient of the locally cloned term t
			c.setInt64(r)
			return false
		}
		// alloc: big-integer modulus; the over-int64 slow path
		mod := new(big.Int).Mod(c.numBig(), d.M)
		if mod.Sign() == 0 {
			return true
		}
		// memo: c is a coefficient of the locally cloned term t
		c.setBigInt(mod)
		return false
	}
	kept := t.cells[:0]
	for i := range t.cells {
		if !modCoef(&t.cells[i].c) {
			kept = append(kept, t.cells[i])
		}
	}
	t.cells = kept
	if modCoef(&t.konst) {
		t.konst.setInt64(0)
	}
	return internLeaf(simplifyDiv(&Div{Neg: d.Neg, M: d.M, T: t}))
}

// allIntRat reports whether the constant and every coefficient are integers.
func allIntRat(t *Term) bool {
	if !t.konst.isInt() {
		return false
	}
	for i := range t.cells {
		if !t.cells[i].c.isInt() {
			return false
		}
	}
	return true
}

// simplifyJunction simplifies the children of an AND (isAnd) or OR,
// deduplicates them syntactically, and detects complementary atom pairs.
// Children coming out of Simplify are interned leaves or rebuilt
// connectives, so the String() dedup keys are cached for the leaves that
// dominate junction width.
// alloc: the dedup table, visitor closure, and rebuilt child list are the
// per-junction working set; bounded by the input's size.
func simplifyJunction(fs []Formula, isAnd bool) Formula {
	var out []Formula
	seen := map[string]bool{}
	var visit func(g Formula) bool // returns false to abort (absorbing elt)
	visit = func(g Formula) bool {
		g = Simplify(g)
		switch x := g.(type) {
		case Bool:
			if bool(x) == isAnd {
				return true // identity element, drop
			}
			return false // absorbing element
		case *And:
			if isAnd {
				for _, c := range x.Fs {
					if !visit(c) {
						return false
					}
				}
				return true
			}
		case *Or:
			if !isAnd {
				for _, c := range x.Fs {
					if !visit(c) {
						return false
					}
				}
				return true
			}
		default:
			// Every other node is kept as an opaque child below.
		}
		key := g.String()
		if seen[key] {
			return true
		}
		// Complement detection for atoms: an AND containing both an atom
		// and its negation is false; dually for OR.
		if a, ok := g.(*Atom); ok {
			if seen[negAtomKey(a)] {
				return false
			}
		}
		if d, ok := g.(*Div); ok {
			if seen[(&Div{Neg: !d.Neg, M: d.M, T: d.T}).String()] {
				return false
			}
		}
		seen[key] = true
		out = append(out, g)
		return true
	}
	for _, g := range fs {
		if !visit(g) {
			return Bool(!isAnd)
		}
	}
	if isAnd {
		return NewAnd(out...)
	}
	return NewOr(out...)
}

// negAtomKey returns the canonical string of the atom's complement, so that
// complement detection works against already-canonicalized siblings.
// Interned atoms carry the complement key cached.
func negAtomKey(a *Atom) string {
	if a.frozen {
		return a.negKey
	}
	return computeNegAtomKey(a)
}

// computeNegAtomKey canonicalizes and renders the atom's complement. It
// must not publish interned nodes: internAtom calls it while interning the
// complement's complement, so going through the interning canonAtom here
// would recurse without end.
func computeNegAtomKey(a *Atom) string {
	n := negAtom(a)
	if na, ok := n.(*Atom); ok {
		n = canonAtomRaw(na.Op, na.T.Clone())
	}
	return n.String()
}

var bigOne = big.NewInt(1)
