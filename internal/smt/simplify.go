package smt

import (
	"fmt"
	"math/big"
)

// Simplify rewrites a formula into an equivalent, usually smaller one:
// ground atoms fold to constants, atoms are put in a canonical scaled form,
// divisibility terms are reduced modulo their modulus, duplicate children of
// AND/OR collapse, and a child together with its complement collapses the
// whole connective. Simplify is applied after every quantifier-elimination
// step to keep intermediate formulas tractable.
// alloc: rebuilds the simplified tree; the result is usually smaller than
// the input and growth is bounded by the eliminator's maxNodes budget.
func Simplify(f Formula) Formula {
	switch x := f.(type) {
	case Bool:
		return x
	case *Atom:
		return canonAtom(x.Op, x.T.Clone())
	case *Div:
		return canonDiv(x)
	case *And:
		return simplifyJunction(x.Fs, true)
	case *Or:
		return simplifyJunction(x.Fs, false)
	case *Not:
		inner := Simplify(x.F)
		if a, ok := inner.(*Atom); ok {
			n := negAtom(a)
			if na, ok := n.(*Atom); ok {
				return canonAtom(na.Op, na.T.Clone())
			}
			return n
		}
		if d, ok := inner.(*Div); ok {
			return &Div{Neg: !d.Neg, M: d.M, T: d.T}
		}
		return NewNot(inner)
	case *Exists:
		inner := Simplify(x.F)
		if b, ok := inner.(Bool); ok {
			return b
		}
		if !occurs(x.V, inner) {
			return inner
		}
		return &Exists{V: x.V, F: inner}
	case *ForAll:
		inner := Simplify(x.F)
		if b, ok := inner.(Bool); ok {
			return b
		}
		if !occurs(x.V, inner) {
			return inner
		}
		return &ForAll{V: x.V, F: inner}
	default:
		panic(fmt.Sprintf("smt: unknown formula %T", f))
	}
}

// occurs reports whether v occurs free in f.
func occurs(v Var, f Formula) bool {
	switch x := f.(type) {
	case Bool:
		return false
	case *Atom:
		return x.T.Has(v)
	case *Div:
		return x.T.Has(v)
	case *And:
		for _, g := range x.Fs {
			if occurs(v, g) {
				return true
			}
		}
		return false
	case *Or:
		for _, g := range x.Fs {
			if occurs(v, g) {
				return true
			}
		}
		return false
	case *Not:
		return occurs(v, x.F)
	case *Exists:
		return x.V != v && occurs(v, x.F)
	case *ForAll:
		return x.V != v && occurs(v, x.F)
	default:
		panic(fmt.Sprintf("smt: unknown formula %T", f))
	}
}

// canonAtom scales the term to a canonical representative: denominators are
// cleared, the coefficient content is divided out, and for sign-symmetric
// relations (=, !=) the first variable's coefficient is made positive. All
// scalings are by positive rationals, so the relation is preserved. If the
// term has integer variables only and integer coefficients, a strict
// inequality t < 0 is tightened to t + 1 <= 0.
// alloc: scratch rationals for the canonical scaling; the canonical atom
// is the product.
func canonAtom(op AtomOp, t *Term) Formula {
	if t.IsConst() {
		return Bool(evalAtomConst(op, t.Const()))
	}
	// Clear denominators and divide by content.
	scale := new(big.Rat).SetInt(t.DenomLCM())
	t.Scale(scale)
	content := contentGCD(t)
	if content.Cmp(bigOne) != 0 {
		t.Scale(new(big.Rat).SetFrac(bigOne, content))
	}
	// For =, != flip sign so the lexicographically first variable has a
	// positive coefficient, giving syntactically equal canonical forms.
	if op == OpEQ || op == OpNE {
		vars := t.Vars(nil)
		if len(vars) > 0 && t.Coeff(vars[0]).Sign() < 0 {
			t.Neg()
		}
	}
	// Integer tightening: over all-integer terms, strict bounds become
	// non-strict, bounds round down through the variable-coefficient GCD,
	// and fractional equalities fold to constants.
	if t.AllIntVars() && intCoeffs(t) {
		switch op {
		case OpLT:
			// t < 0 with integer t  ==  t <= -1  ==  t+1 <= 0.
			op = OpLE
			t.AddInt64(1)
			t = tightenIntLE(t)
		case OpLE:
			t = tightenIntLE(t)
		case OpEQ, OpNE:
			g := varCoeffGCD(t)
			if g.Cmp(bigOne) > 0 {
				t.Scale(new(big.Rat).SetFrac(bigOne, g))
			}
			if !t.Const().IsInt() {
				// Integer combination can never equal a fraction.
				return Bool(op == OpNE)
			}
		}
	}
	return newAtom(op, t)
}

// varCoeffGCD returns the GCD of the (integer) variable coefficients.
// alloc: scratch integers for the GCD accumulation.
func varCoeffGCD(t *Term) *big.Int {
	g := new(big.Int)
	for _, v := range t.Vars(nil) {
		n := new(big.Int).Abs(t.Coeff(v).Num())
		if g.Sign() == 0 {
			g.Set(n)
		} else {
			g.GCD(nil, nil, g, n)
		}
	}
	if g.Sign() == 0 {
		g.SetInt64(1)
	}
	return g
}

// tightenIntLE rewrites g·s + c <= 0 (integer-valued s, integer coefficient
// GCD g) as s - floor(-c/g) <= 0, the tightest integer bound.
// alloc: one scratch rational for the 1/g scaling.
func tightenIntLE(t *Term) *Term {
	g := varCoeffGCD(t)
	if g.Cmp(bigOne) > 0 {
		t.Scale(new(big.Rat).SetFrac(bigOne, g))
	}
	return roundIntAtomLE(t)
}

// intCoeffs reports whether every variable coefficient is an integer (the
// constant may still be fractional).
func intCoeffs(t *Term) bool {
	for _, v := range t.Vars(nil) {
		if !t.Coeff(v).IsInt() {
			return false
		}
	}
	return true
}

// roundIntAtomLE tightens t <= 0 where all variable parts are integral:
// sum + c <= 0  ==  sum <= floor(-c)  ==  sum - floor(-c) <= 0.
// alloc: scratch integers for the floor computation.
func roundIntAtomLE(t *Term) *Term {
	c := t.Const()
	if c.IsInt() {
		return t
	}
	negC := new(big.Rat).Neg(c)
	fl := new(big.Int).Quo(negC.Num(), negC.Denom())
	// big.Int Quo truncates toward zero; adjust to floor for negatives.
	if negC.Sign() < 0 {
		r := new(big.Int).Rem(negC.Num(), negC.Denom())
		if r.Sign() != 0 {
			fl.Sub(fl, bigOne)
		}
	}
	t.konst.SetInt(new(big.Int).Neg(fl))
	return t
}

// contentGCD returns the GCD of the numerators of all coefficients and the
// constant, assuming denominators are already cleared. Returns 1 if the
// term is zero apart from signs.
// alloc: scratch integers and one accumulator closure per call.
func contentGCD(t *Term) *big.Int {
	g := new(big.Int)
	acc := func(r *big.Rat) {
		n := new(big.Int).Abs(r.Num())
		if n.Sign() != 0 {
			if g.Sign() == 0 {
				g.Set(n)
			} else {
				g.GCD(nil, nil, g, n)
			}
		}
	}
	for _, v := range t.Vars(nil) {
		acc(t.Coeff(v))
	}
	acc(t.Const())
	if g.Sign() == 0 {
		g.SetInt64(1)
	}
	return g
}

// canonDiv canonicalizes a divisibility atom: the term's coefficients and
// constant are reduced modulo M, and ground instances fold to Bool.
// alloc: the reduced atom and its modulus scratch are the product.
func canonDiv(d *Div) Formula {
	if d.M.Cmp(bigOne) == 0 {
		return Bool(!d.Neg)
	}
	t := d.T.Clone()
	if !allIntRat(t) {
		// Non-integer coefficients: leave untouched (only produced by
		// pathological inputs; correctness is preserved).
		return &Div{Neg: d.Neg, M: d.M, T: t}
	}
	for _, v := range t.Vars(nil) {
		c := t.coeffs[v]
		mod := new(big.Int).Mod(c.Num(), d.M)
		if mod.Sign() == 0 {
			delete(t.coeffs, v)
		} else {
			c.SetInt(mod)
		}
	}
	kmod := new(big.Int).Mod(t.konst.Num(), d.M)
	t.konst.SetInt(kmod)
	return simplifyDiv(&Div{Neg: d.Neg, M: d.M, T: t})
}

func allIntRat(t *Term) bool {
	if !t.konst.IsInt() {
		return false
	}
	for _, v := range t.Vars(nil) {
		if !t.Coeff(v).IsInt() {
			return false
		}
	}
	return true
}

// simplifyJunction simplifies the children of an AND (isAnd) or OR,
// deduplicates them syntactically, and detects complementary atom pairs.
// alloc: the dedup table, visitor closure, and rebuilt child list are the
// per-junction working set; bounded by the input's size.
func simplifyJunction(fs []Formula, isAnd bool) Formula {
	var out []Formula
	seen := map[string]bool{}
	var visit func(g Formula) bool // returns false to abort (absorbing elt)
	visit = func(g Formula) bool {
		g = Simplify(g)
		switch x := g.(type) {
		case Bool:
			if bool(x) == isAnd {
				return true // identity element, drop
			}
			return false // absorbing element
		case *And:
			if isAnd {
				for _, c := range x.Fs {
					if !visit(c) {
						return false
					}
				}
				return true
			}
		case *Or:
			if !isAnd {
				for _, c := range x.Fs {
					if !visit(c) {
						return false
					}
				}
				return true
			}
		default:
			// Every other node is kept as an opaque child below.
		}
		key := g.String()
		if seen[key] {
			return true
		}
		// Complement detection for atoms: an AND containing both an atom
		// and its negation is false; dually for OR.
		if a, ok := g.(*Atom); ok {
			if seen[negAtomKey(a)] {
				return false
			}
		}
		if d, ok := g.(*Div); ok {
			if seen[(&Div{Neg: !d.Neg, M: d.M, T: d.T}).String()] {
				return false
			}
		}
		seen[key] = true
		out = append(out, g)
		return true
	}
	for _, g := range fs {
		if !visit(g) {
			return Bool(!isAnd)
		}
	}
	if isAnd {
		return NewAnd(out...)
	}
	return NewOr(out...)
}

// negAtomKey returns the canonical string of the atom's complement, so that
// complement detection works against already-canonicalized siblings.
func negAtomKey(a *Atom) string {
	n := negAtom(a)
	if na, ok := n.(*Atom); ok {
		n = canonAtom(na.Op, na.T.Clone())
	}
	return n.String()
}

var bigOne = big.NewInt(1)
