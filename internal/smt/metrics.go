package smt

import "sia/internal/obs"

// Package-level metrics in the Default registry, mirroring the per-solver
// Stats struct as process-wide totals. Registered at init so every metric
// name is present in a /metrics scrape even before the first query.
var (
	mSatQueries   = obs.Default().Counter("sia_smt_sat_queries_total", "Satisfiability queries answered (including internal ones).")
	mModelQueries = obs.Default().Counter("sia_smt_model_queries_total", "Model-extraction queries answered.")
	mEliminations = obs.Default().Counter("sia_smt_eliminations_total", "Quantifier eliminations performed.")
	mSimplexCuts  = obs.Default().Counter("sia_smt_simplex_cuts_total", "UNSAT answers settled by the rational simplex fast path.")

	mInternHits   = obs.Default().Counter("sia_smt_intern_hits_total", "Hash-cons lookups answered with an existing canonical pointer.")
	mInternMisses = obs.Default().Counter("sia_smt_intern_misses_total", "Hash-cons lookups that inserted a new canonical value.")
	mInternResets = obs.Default().Counter("sia_smt_intern_resets_total", "Interner shard resets (the table's bound was hit).")

	mQEMemoHits      = obs.Default().Counter("sia_smt_qe_memo_hits_total", "Quantifier eliminations answered from the memo cache.")
	mQEMemoMisses    = obs.Default().Counter("sia_smt_qe_memo_misses_total", "Quantifier eliminations computed and offered to the memo cache.")
	mQEMemoEvictions = obs.Default().Counter("sia_smt_qe_memo_evictions_total", "Memoized eliminations dropped by the cache's LRU bound.")
	mQEMemoSkips     = obs.Default().Counter("sia_smt_qe_memo_skips_total", "Elimination results not cached because the call was cancelled or over budget.")

	mQuerySeconds = func() map[string]*obs.Histogram {
		h := map[string]*obs.Histogram{}
		for _, kind := range []string{opQE, opSat, opModel, opEnumerate, opElimination} {
			h[kind] = obs.Default().Histogram("sia_smt_query_seconds",
				"Wall time of outermost public solver calls, by query kind.",
				obs.DurationBuckets(), obs.Label{Key: "kind", Value: kind})
		}
		return h
	}()
)

// Query kinds for the sia_smt_query_seconds histogram. A nested public call
// (Model calling QE) is charged to the outermost kind only.
const (
	opQE        = "qe"
	opSat       = "sat"
	opModel     = "model"
	opEnumerate = "enumerate"
	// opElimination is charged per outermost eliminate call rather than per
	// public entry point: it is the unit the QE memo cache works at, so its
	// mean is the figure of merit for the SMT fast path (BENCH_smt.json).
	opElimination = "elimination"
)

// QueryStat summarizes one kind of the sia_smt_query_seconds histogram.
type QueryStat struct {
	// Count is the number of outermost public solver calls of this kind.
	Count uint64 `json:"count"`
	// SumSeconds is the total wall time across those calls.
	SumSeconds float64 `json:"sum_seconds"`
	// MeanSeconds is SumSeconds / Count (0 when Count is 0).
	MeanSeconds float64 `json:"mean_seconds"`
}

// BenchSnapshot is a point-in-time view of the process-wide solver metrics,
// in the shape siabench -bench-out writes (the BENCH_smt.json artifact).
type BenchSnapshot struct {
	// Query maps query kind (qe, sat, model, enumerate) to its wall-time
	// totals. The "elimination" cost the ROADMAP targets is the sum charged
	// to whichever public kind drove it; per-kind means expose the drop.
	Query map[string]QueryStat `json:"query_seconds"`
	// SatQueries, ModelQueries, Eliminations and SimplexCuts mirror the
	// process-wide Stats counters.
	SatQueries   uint64 `json:"sat_queries"`
	ModelQueries uint64 `json:"model_queries"`
	Eliminations uint64 `json:"eliminations"`
	SimplexCuts  uint64 `json:"simplex_cuts"`
	// InternHits/Misses/Resets are the hash-cons interner's counters.
	InternHits   uint64 `json:"intern_hits"`
	InternMisses uint64 `json:"intern_misses"`
	InternResets uint64 `json:"intern_resets"`
	// QEMemo* are the quantifier-elimination memo cache's counters.
	QEMemoHits      uint64 `json:"qe_memo_hits"`
	QEMemoMisses    uint64 `json:"qe_memo_misses"`
	QEMemoEvictions uint64 `json:"qe_memo_evictions"`
	QEMemoSkips     uint64 `json:"qe_memo_skips"`
}

// Snapshot returns the current process-wide solver metrics. It reads the
// same instruments a /metrics scrape renders, so numbers agree with the
// Prometheus view modulo in-flight updates.
func Snapshot() BenchSnapshot {
	s := BenchSnapshot{
		Query:           map[string]QueryStat{},
		SatQueries:      mSatQueries.Value(),
		ModelQueries:    mModelQueries.Value(),
		Eliminations:    mEliminations.Value(),
		SimplexCuts:     mSimplexCuts.Value(),
		InternHits:      mInternHits.Value(),
		InternMisses:    mInternMisses.Value(),
		InternResets:    mInternResets.Value(),
		QEMemoHits:      mQEMemoHits.Value(),
		QEMemoMisses:    mQEMemoMisses.Value(),
		QEMemoEvictions: mQEMemoEvictions.Value(),
		QEMemoSkips:     mQEMemoSkips.Value(),
	}
	for kind, h := range mQuerySeconds {
		snap := h.Snapshot()
		qs := QueryStat{Count: snap.Count, SumSeconds: snap.Sum}
		if snap.Count > 0 {
			qs.MeanSeconds = snap.Sum / float64(snap.Count)
		}
		s.Query[kind] = qs
	}
	return s
}
