package smt

import "sia/internal/obs"

// Package-level metrics in the Default registry, mirroring the per-solver
// Stats struct as process-wide totals. Registered at init so every metric
// name is present in a /metrics scrape even before the first query.
var (
	mSatQueries   = obs.Default().Counter("sia_smt_sat_queries_total", "Satisfiability queries answered (including internal ones).")
	mModelQueries = obs.Default().Counter("sia_smt_model_queries_total", "Model-extraction queries answered.")
	mEliminations = obs.Default().Counter("sia_smt_eliminations_total", "Quantifier eliminations performed.")
	mSimplexCuts  = obs.Default().Counter("sia_smt_simplex_cuts_total", "UNSAT answers settled by the rational simplex fast path.")

	mQuerySeconds = func() map[string]*obs.Histogram {
		h := map[string]*obs.Histogram{}
		for _, kind := range []string{opQE, opSat, opModel, opEnumerate} {
			h[kind] = obs.Default().Histogram("sia_smt_query_seconds",
				"Wall time of outermost public solver calls, by query kind.",
				obs.DurationBuckets(), obs.Label{Key: "kind", Value: kind})
		}
		return h
	}()
)

// Query kinds for the sia_smt_query_seconds histogram. A nested public call
// (Model calling QE) is charged to the outermost kind only.
const (
	opQE        = "qe"
	opSat       = "sat"
	opModel     = "model"
	opEnumerate = "enumerate"
)
