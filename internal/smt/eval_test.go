package smt

import (
	"math/big"
	"math/rand"
	"testing"
)

// evalFormula evaluates a quantifier-free formula under a full assignment.
// It is an independent reference implementation used to cross-check the
// solver's algebraic machinery.
func evalFormula(t *testing.T, f Formula, m Model) bool {
	t.Helper()
	switch x := f.(type) {
	case Bool:
		return bool(x)
	case *Atom:
		v, err := x.T.Eval(m)
		if err != nil {
			t.Fatalf("eval: %v", err)
		}
		return evalAtomConst(x.Op, v)
	case *Div:
		v, err := x.T.Eval(m)
		if err != nil {
			t.Fatalf("eval: %v", err)
		}
		holds := v.IsInt() && new(big.Int).Mod(v.Num(), x.M).Sign() == 0
		return holds != x.Neg
	case *And:
		for _, g := range x.Fs {
			if !evalFormula(t, g, m) {
				return false
			}
		}
		return true
	case *Or:
		for _, g := range x.Fs {
			if evalFormula(t, g, m) {
				return true
			}
		}
		return false
	case *Not:
		return !evalFormula(t, x.F, m)
	default:
		t.Fatalf("eval: unexpected %T", f)
		return false
	}
}

// randTerm builds a random linear term over the given variables with small
// integer coefficients (occasionally rational).
func randTerm(r *rand.Rand, vars []Var, allowRational bool) *Term {
	tm := NewTerm(new(big.Rat).SetInt64(int64(r.Intn(21) - 10)))
	for _, v := range vars {
		if r.Intn(2) == 0 {
			continue
		}
		num := int64(r.Intn(9) - 4)
		if num == 0 {
			num = 1
		}
		den := int64(1)
		if allowRational && r.Intn(4) == 0 {
			den = int64(r.Intn(3) + 2)
		}
		tm.AddVar(v, big.NewRat(num, den))
	}
	return tm
}

// randQF builds a random quantifier-free formula (with Not nodes) over vars.
func randQF(r *rand.Rand, vars []Var, depth int, allowRational bool) Formula {
	if depth <= 0 || r.Intn(3) == 0 {
		tm := randTerm(r, vars, allowRational)
		if tm.IsConst() {
			tm.AddVar(vars[r.Intn(len(vars))], big.NewRat(1, 1))
		}
		ops := []AtomOp{OpLT, OpLE, OpEQ, OpNE}
		return &Atom{Op: ops[r.Intn(len(ops))], T: tm}
	}
	switch r.Intn(4) {
	case 0:
		return NewAnd(randQF(r, vars, depth-1, allowRational), randQF(r, vars, depth-1, allowRational))
	case 1:
		return NewOr(randQF(r, vars, depth-1, allowRational), randQF(r, vars, depth-1, allowRational))
	case 2:
		return NewNot(randQF(r, vars, depth-1, allowRational))
	default:
		return NewAnd(randQF(r, vars, depth-1, allowRational), NewOr(randQF(r, vars, depth-1, allowRational), randQF(r, vars, depth-1, allowRational)))
	}
}

func randModel(r *rand.Rand, vars []Var, span int64) Model {
	m := Model{}
	for _, v := range vars {
		m[v] = new(big.Rat).SetInt64(r.Int63n(2*span+1) - span)
	}
	return m
}

func TestNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	vars := []Var{IntVar("x"), IntVar("y"), IntVar("z")}
	for i := 0; i < 400; i++ {
		f := randQF(r, vars, 3, false)
		g := NNF(f)
		for j := 0; j < 15; j++ {
			m := randModel(r, vars, 15)
			if evalFormula(t, f, m) != evalFormula(t, g, m) {
				t.Fatalf("NNF changed semantics:\n f=%s\n g=%s\n m=%v", f, g, m)
			}
		}
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	vars := []Var{IntVar("x"), IntVar("y"), IntVar("z")}
	for i := 0; i < 400; i++ {
		f := randQF(r, vars, 3, true)
		g := Simplify(f)
		for j := 0; j < 15; j++ {
			m := randModel(r, vars, 15)
			if evalFormula(t, f, m) != evalFormula(t, g, m) {
				t.Fatalf("Simplify changed semantics:\n f=%s\n g=%s\n m=%v", f, g, m)
			}
		}
	}
}

func TestSimplifyIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	vars := []Var{IntVar("x"), IntVar("y")}
	for i := 0; i < 200; i++ {
		f := Simplify(randQF(r, vars, 3, true))
		g := Simplify(f)
		if f.String() != g.String() {
			t.Fatalf("Simplify not idempotent:\n once=%s\n twice=%s", f, g)
		}
	}
}

func TestSimplifyComplementDetection(t *testing.T) {
	x := IntVar("x")
	lt := &Atom{Op: OpLT, T: VarTerm(x)}               // x < 0
	ge := &Atom{Op: OpLE, T: VarTerm(x).Clone().Neg()} // -x <= 0, i.e. x >= 0
	if got := Simplify(NewAnd(lt, ge)); got != Bool(false) {
		t.Fatalf("x<0 AND x>=0 should simplify to false, got %s", got)
	}
	if got := Simplify(NewOr(lt, ge)); got != Bool(true) {
		t.Fatalf("x<0 OR x>=0 should simplify to true, got %s", got)
	}
}

func TestSimplifyDivReduction(t *testing.T) {
	x := IntVar("x")
	// 3 | (7x + 10)  ==  3 | (x + 1)
	tm := NewTerm(big.NewRat(10, 1))
	tm.AddVar(x, big.NewRat(7, 1))
	d := Simplify(&Div{M: big.NewInt(3), T: tm})
	dd, ok := d.(*Div)
	if !ok {
		t.Fatalf("expected Div, got %s", d)
	}
	if dd.T.Coeff(x).RatString() != "1" || dd.T.Const().RatString() != "1" {
		t.Fatalf("modulus reduction failed: %s", dd)
	}
	// 1 | t is always true.
	if got := Simplify(&Div{M: big.NewInt(1), T: VarTerm(x)}); got != Bool(true) {
		t.Fatalf("1 | x should be true, got %s", got)
	}
	// Ground: 4 | 8 true, 4 | 9 false, negation flips.
	if got := Simplify(&Div{M: big.NewInt(4), T: ConstTerm(8)}); got != Bool(true) {
		t.Fatalf("4|8 = %s", got)
	}
	if got := Simplify(&Div{Neg: true, M: big.NewInt(4), T: ConstTerm(9)}); got != Bool(true) {
		t.Fatalf("!(4|9) = %s", got)
	}
}

func TestCanonAtomIntegerTightening(t *testing.T) {
	x := IntVar("x")
	// 2x < 5 over integers == x <= 2 == x - 2 <= 0.
	tm := VarTerm(x)
	tm.Scale(big.NewRat(2, 1))
	tm.AddInt64(-5)
	got := Simplify(&Atom{Op: OpLT, T: tm})
	a, ok := got.(*Atom)
	if !ok || a.Op != OpLE {
		t.Fatalf("expected LE atom, got %s", got)
	}
	if a.T.Coeff(x).RatString() != "1" || a.T.Const().RatString() != "-2" {
		t.Fatalf("tightening wrong: %s", got)
	}
	// Fractional equality over integers is impossible: 2x = 5.
	tm2 := VarTerm(x)
	tm2.Scale(big.NewRat(2, 1))
	tm2.AddConst(big.NewRat(-5, 1))
	eq := Simplify(&Atom{Op: OpEQ, T: tm2})
	if eq != Bool(false) {
		t.Fatalf("2x=5 over Z should be false, got %s", eq)
	}
	ne := Simplify(&Atom{Op: OpNE, T: tm2.Clone()})
	if ne != Bool(true) {
		t.Fatalf("2x!=5 over Z should be true, got %s", ne)
	}
}

func TestFreeVars(t *testing.T) {
	x, y, z := IntVar("x"), IntVar("y"), IntVar("z")
	inner := LT(VarTerm(x), VarTerm(y))
	f := &Exists{V: x, F: NewAnd(inner, LE(VarTerm(z), ConstTerm(3)))}
	vars := FreeVars(f)
	if len(vars) != 2 || vars[0] != y || vars[1] != z {
		t.Fatalf("FreeVars = %v", vars)
	}
}

func TestSubstShadowing(t *testing.T) {
	x, y := IntVar("x"), IntVar("y")
	f := &Exists{V: x, F: LT(VarTerm(x), VarTerm(y))}
	g := Subst(f, x, ConstTerm(5))
	if g.String() != f.String() {
		t.Fatalf("bound variable must not be substituted: %s", g)
	}
	h := Subst(f, y, ConstTerm(5))
	if occurs(y, h) {
		t.Fatalf("free variable should be substituted: %s", h)
	}
}
