package smt

import (
	"errors"
	"math/big"
	"testing"
	"time"
)

func TestSolverTimeout(t *testing.T) {
	// An adversarial nested formula with large coefficients grinds Cooper
	// into its worst case; a tiny timeout must surface as ErrBudget, not
	// a hang.
	s := &Solver{Timeout: time.Millisecond}
	vars := []Var{IntVar("a"), IntVar("b"), IntVar("c"), IntVar("d")}
	var fs []Formula
	for i, v := range vars {
		tm := VarTerm(v)
		tm.Scale(big.NewRat(int64(17+10*i), 1))
		for j, w := range vars {
			if j != i {
				tm.AddVar(w, big.NewRat(int64(3+j), 1))
			}
		}
		fs = append(fs, NE(tm, ConstTerm(int64(5+i))))
	}
	f := NewAnd(fs...)
	start := time.Now()
	_, err := s.Satisfiable(f)
	elapsed := time.Since(start)
	if err == nil {
		// Fast machines may finish inside the window; only a hang or a
		// wrong error type is a failure.
		t.Logf("formula solved within the timeout (%v)", elapsed)
		return
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout did not bound the call: took %v", elapsed)
	}
}

func TestSolverTimeoutResets(t *testing.T) {
	// After a timed-out call, the solver must stay usable: the deadline
	// is per-call, not sticky.
	s := &Solver{Timeout: 200 * time.Millisecond}
	x := IntVar("x")
	ok, err := s.Satisfiable(GT(VarTerm(x), ConstTerm(0)))
	if err != nil || !ok {
		t.Fatalf("simple query failed: %v %v", err, ok)
	}
	m, err := s.Model(GT(VarTerm(x), ConstTerm(41)))
	if err != nil {
		t.Fatal(err)
	}
	if m[x].Cmp(big.NewRat(42, 1)) < 0 {
		t.Fatalf("model %v violates x > 41", m)
	}
}
