package smt

import (
	"context"
	"fmt"
	"math/big"
)

// EnumerateModels yields up to limit distinct models of a quantifier-free
// formula over the given variables, invoking emit for each; emit returns
// false to stop early.
//
// Unlike repeated Model calls with blocking clauses, enumeration recurses
// over candidate values per variable: at each level the remaining variables
// are projected away once (without any blocking constraints, so the
// formulas stay small), the finite candidate set of the resulting
// univariate formula is scanned, and each satisfying value is substituted
// before recursing. The candidate set covers every interval/congruence
// pattern of the univariate solution set, so enumeration finds a
// representative subset of the region — but not necessarily every point of
// an interval. Callers that must distinguish "no more points" from
// "candidates ran out" (Sia's optimality proof does) should confirm
// exhaustion with a blocked Satisfiable query.
func (s *Solver) EnumerateModels(f Formula, vars []Var, limit int, emit func(Model) bool) error {
	return s.EnumerateModelsCtx(context.Background(), f, vars, limit, emit)
}

// EnumerateModelsCtx is EnumerateModels honoring ctx: cancellation surfaces
// as ErrInterrupted within one elimination step.
func (s *Solver) EnumerateModelsCtx(ctx context.Context, f Formula, vars []Var, limit int, emit func(Model) bool) error {
	defer s.arm(ctx, opEnumerate)()
	qf, err := s.QE(f)
	if err != nil {
		return err
	}
	qf = Simplify(NNF(qf))
	if b, ok := qf.(Bool); ok && !bool(b) {
		return nil
	}
	remaining := limit
	current := Model{}
	return s.enumerateRec(qf, vars, current, &remaining, emit)
}

func (s *Solver) enumerateRec(f Formula, vars []Var, current Model, remaining *int, emit func(Model) bool) error {
	if *remaining <= 0 {
		return nil
	}
	if err := s.checkStop(); err != nil {
		return err
	}
	if len(vars) == 0 {
		if b, ok := f.(Bool); ok && bool(b) {
			out := Model{}
			for v, val := range current {
				out[v] = new(big.Rat).Set(val)
			}
			*remaining--
			if !emit(out) {
				*remaining = 0
			}
		}
		return nil
	}
	v := vars[0]
	// Project the rest away to get the univariate feasibility condition
	// for v under the current prefix.
	proj := f
	for _, w := range vars[1:] {
		proj = &Exists{V: w, F: proj}
	}
	uni, err := s.QE(proj)
	if err != nil {
		return err
	}
	uni = Simplify(NNF(uni))
	if b, ok := uni.(Bool); ok && !bool(b) {
		return nil
	}
	// Widen the scan window with demand: a single-column request for n
	// samples needs ~n integers per interval, not just the bound
	// neighborhoods.
	spread := int64(enumSpread)
	if want := int64(*remaining) + 4; len(vars) == 1 && want > spread {
		spread = want
	}
	cands, err := univariateCandidates(v, uni, spread)
	if err != nil {
		return err
	}
	for _, c := range cands {
		if *remaining <= 0 {
			return nil
		}
		ok := Simplify(Subst(uni, v, NewTerm(c)))
		if b, isB := ok.(Bool); !isB || !bool(b) {
			continue
		}
		current[v] = c
		sub := Simplify(Subst(f, v, NewTerm(c)))
		if err := s.enumerateRec(sub, vars[1:], current, remaining, emit); err != nil {
			return err
		}
		delete(current, v)
	}
	return nil
}

// enumSpread widens the integer scan window around each bound during model
// enumeration: satisfiability only needs a δ-neighborhood, but enumeration
// wants a richer harvest of points per interval.
const enumSpread = 12

// univariateCandidates returns a finite candidate set that covers every
// interval/congruence pattern of the univariate formula's solution set, in
// deterministic order. spread ≥ δ+1 widens the window scanned around each
// bound (integers only).
func univariateCandidates(v Var, f Formula, spread int64) ([]*big.Rat, error) {
	if _, ok := f.(Bool); ok {
		return []*big.Rat{new(big.Rat)}, nil
	}
	var bounds []*big.Rat
	seenBounds := map[string]bool{}
	delta := big.NewInt(1)
	err := walkLeaves(f, func(leaf Formula) error {
		switch x := leaf.(type) {
		case *Atom:
			c := x.T.Coeff(v)
			if c.Sign() == 0 {
				return fmt.Errorf("smt: internal: ground atom %s survived simplification", x)
			}
			rest := new(big.Rat).Set(x.T.Const())
			b := rest.Neg(rest)
			b.Quo(b, c)
			if key := b.RatString(); !seenBounds[key] {
				seenBounds[key] = true
				bounds = append(bounds, b)
			}
		case *Div:
			if x.T.Has(v) {
				lcmInto(delta, x.M)
			}
		default:
			// walkLeaves yields only Atom and Div leaves.
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var candidates []*big.Rat
	seen := map[string]bool{}
	push := func(r *big.Rat) {
		if key := r.RatString(); !seen[key] {
			seen[key] = true
			candidates = append(candidates, r)
		}
	}
	if v.Sort == SortInt {
		if !delta.IsInt64() || delta.Int64() > 100000 {
			return nil, fmt.Errorf("%w: enumeration period %s too large", ErrBudget, delta)
		}
		dn := delta.Int64() + 1
		if dn < spread {
			dn = spread
		}
		if est := int64(2*len(bounds)+1) * (2*dn + 1); est > 200000 {
			return nil, fmt.Errorf("%w: %d enumeration candidates", ErrBudget, est)
		}
		base := []*big.Rat{new(big.Rat)}
		for _, b := range bounds {
			fl := ratFloor(b)
			base = append(base, new(big.Rat).SetInt(fl), new(big.Rat).SetInt(new(big.Int).Add(fl, bigOne)))
		}
		// Order matters for enumeration quality: emit center-out offsets
		// (0, +1, -1, +2, -2, …) round-robin across the base points, so
		// the first models drawn sit at the bounds and near zero rather
		// than at one arbitrary end of the scan window.
		if base64, ok := intBases64(base, dn); ok {
			// Same values in the same order as the slow loop below, but
			// dedup runs on int64 keys and only kept candidates
			// materialize a big.Rat.
			seen64 := make(map[int64]bool, len(base64))
			push64 := func(n int64) {
				if !seen64[n] {
					seen64[n] = true
					candidates = append(candidates, new(big.Rat).SetInt64(n))
				}
			}
			for j := int64(0); j <= dn; j++ {
				for _, b := range base64 {
					push64(b + j)
					if j != 0 {
						push64(b - j)
					}
				}
			}
			return candidates, nil
		}
		for j := int64(0); j <= dn; j++ {
			for _, b := range base {
				push(new(big.Rat).Add(b, new(big.Rat).SetInt64(j)))
				if j != 0 {
					push(new(big.Rat).Sub(b, new(big.Rat).SetInt64(j)))
				}
			}
		}
	} else {
		push(new(big.Rat))
		for i, b := range bounds {
			push(new(big.Rat).Set(b))
			push(new(big.Rat).Sub(b, ratOne))
			push(new(big.Rat).Add(b, ratOne))
			for _, o := range bounds[i+1:] {
				mid := new(big.Rat).Add(b, o)
				mid.Quo(mid, big.NewRat(2, 1))
				push(mid)
			}
		}
	}
	return candidates, nil
}

// intBases64 extracts the base points as int64 values when every one is an
// integer far enough from the int64 edges that adding or subtracting
// offsets up to dn+1 cannot overflow. It is the gate for the allocation-
// free candidate loops in univariateCandidates and solveUnivariate.
func intBases64(base []*big.Rat, dn int64) ([]int64, bool) {
	const margin = int64(1) << 61
	if dn >= margin {
		return nil, false
	}
	// alloc: one int64 per base point; the fast path's working set
	out := make([]int64, len(base))
	for i, b := range base {
		if !b.IsInt() || !b.Num().IsInt64() {
			return nil, false
		}
		n := b.Num().Int64()
		if n > margin || n < -margin {
			return nil, false
		}
		out[i] = n
	}
	return out, true
}
