package smt

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestCoefDifferential drives coef through randomized arithmetic mirrored
// on big.Rat and requires bit-exact agreement, including around the int64
// overflow promotion/demotion boundary.
func TestCoefDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randVal := func() (coef, *big.Rat) {
		var n, d int64
		switch rng.Intn(4) {
		case 0:
			n, d = int64(rng.Intn(21)-10), 1
		case 1:
			n, d = int64(rng.Intn(2001)-1000), int64(rng.Intn(40)+1)
		case 2:
			n, d = rng.Int63()-rng.Int63(), int64(rng.Intn(1000)+1)
		default:
			// Near the overflow boundary.
			n, d = (1<<62)+rng.Int63n(1<<10), (1<<61)+int64(rng.Intn(7)+1)
		}
		var c coef
		c.setFrac64(n, d)
		return c, new(big.Rat).SetFrac64(n, d)
	}
	check := func(op string, c *coef, want *big.Rat) {
		t.Helper()
		if got := c.rat(); got.Cmp(want) != 0 {
			t.Fatalf("%s: coef=%s want %s", op, got.RatString(), want.RatString())
		}
		// Canonical-form invariant on the fast path.
		if c.r == nil {
			d := c.denom()
			if d <= 0 || gcd64(c.num, d) > 1 && c.num != 0 {
				t.Fatalf("%s: non-canonical fast coef %d/%d", op, c.num, d)
			}
		}
	}
	for i := 0; i < 200000; i++ {
		a, ra := randVal()
		b, rb := randVal()
		switch rng.Intn(7) {
		case 0:
			a.add(&b)
			check("add", &a, ra.Add(ra, rb))
		case 1:
			a.mul(&b)
			check("mul", &a, ra.Mul(ra, rb))
		case 2:
			if !b.isZero() {
				a.quo(&b)
				check("quo", &a, ra.Quo(ra, rb))
			}
		case 3:
			a.neg()
			check("neg", &a, ra.Neg(ra))
		case 4:
			if !a.isZero() {
				a.inv()
				check("inv", &a, ra.Inv(ra))
			}
		case 5:
			n := rng.Int63n(1 << 40)
			a.addInt64(n)
			check("addInt64", &a, ra.Add(ra, new(big.Rat).SetInt64(n)))
		default:
			if got, want := a.cmp(&b), ra.Cmp(rb); got != want {
				t.Fatalf("cmp: got %d want %d (%s vs %s)", got, want, ra.RatString(), rb.RatString())
			}
			if got, want := a.equal(&b), ra.Cmp(rb) == 0; got != want {
				t.Fatalf("equal: got %v want %v", got, want)
			}
		}
	}
}
