package smt

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"
)

func TestEnumerateModelsFiniteRegion(t *testing.T) {
	// 0 <= x <= 5, 0 <= y <= 3, x < y has exactly (0,1..3),(1,2..3),(2,3):
	// 6 integer points; enumeration must find them all, each satisfying.
	x, y := IntVar("x"), IntVar("y")
	f := NewAnd(
		GE(VarTerm(x), ConstTerm(0)), LE(VarTerm(x), ConstTerm(5)),
		GE(VarTerm(y), ConstTerm(0)), LE(VarTerm(y), ConstTerm(3)),
		LT(VarTerm(x), VarTerm(y)),
	)
	s := New()
	got := map[string]bool{}
	err := s.EnumerateModels(f, []Var{x, y}, 100, func(m Model) bool {
		if !evalFormula(t, f, m) {
			t.Fatalf("emitted non-model %v", m)
		}
		key := m[x].RatString() + "," + m[y].RatString()
		if got[key] {
			t.Fatalf("duplicate model %s", key)
		}
		got[key] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("found %d models, want 6: %v", len(got), got)
	}
}

func TestEnumerateModelsLimit(t *testing.T) {
	x := IntVar("x")
	f := GE(VarTerm(x), ConstTerm(0)) // infinite region
	s := New()
	count := 0
	if err := s.EnumerateModels(f, []Var{x}, 7, func(Model) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("limit not respected: %d", count)
	}
	// emit returning false stops early.
	count = 0
	if err := s.EnumerateModels(f, []Var{x}, 100, func(Model) bool { count++; return count < 3 }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestEnumerateModelsUnsat(t *testing.T) {
	x := IntVar("x")
	f := NewAnd(GT(VarTerm(x), ConstTerm(0)), LT(VarTerm(x), ConstTerm(0)))
	s := New()
	count := 0
	if err := s.EnumerateModels(f, []Var{x}, 10, func(Model) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("unsat formula yielded %d models", count)
	}
}

func TestEnumerateModelsBoundaryFirst(t *testing.T) {
	// The candidate order is center-out around zero and the bounds, so an
	// interval far from zero must surface its boundary points among the
	// first few models.
	x := IntVar("x")
	f := NewAnd(GE(VarTerm(x), ConstTerm(500)), LE(VarTerm(x), ConstTerm(600)))
	s := New()
	var first []string
	if err := s.EnumerateModels(f, []Var{x}, 4, func(m Model) bool {
		first = append(first, m[x].RatString())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, v := range first {
		seen[v] = true
	}
	if !seen["500"] || !seen["600"] {
		t.Fatalf("boundary points not among the first models: %v", first)
	}
}

func TestEnumerateModelsMatchesBruteForce(t *testing.T) {
	// Property: for random formulas with a bounded box conjoined, the
	// enumerated model set equals the brute-force solution set.
	r := rand.New(rand.NewSource(4242))
	x, y := IntVar("x"), IntVar("y")
	vars := []Var{x, y}
	for trial := 0; trial < 60; trial++ {
		inner := randQF(r, vars, 2, false)
		box := NewAnd(
			GE(VarTerm(x), ConstTerm(-4)), LE(VarTerm(x), ConstTerm(4)),
			GE(VarTerm(y), ConstTerm(-4)), LE(VarTerm(y), ConstTerm(4)),
		)
		f := NewAnd(box, inner)
		want := map[string]bool{}
		for xv := int64(-4); xv <= 4; xv++ {
			for yv := int64(-4); yv <= 4; yv++ {
				m := Model{x: ratInt(xv), y: ratInt(yv)}
				if evalFormula(t, f, m) {
					want[fmt.Sprintf("%d,%d", xv, yv)] = true
				}
			}
		}
		s := New()
		got := map[string]bool{}
		err := s.EnumerateModels(f, vars, 200, func(m Model) bool {
			got[m[x].RatString()+","+m[y].RatString()] = true
			return true
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (%s): got %d models, want %d\ngot: %v\nwant: %v", trial, inner, len(got), len(want), got, want)
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing model %s", trial, k)
			}
		}
	}
}

func ratInt(v int64) *big.Rat { return new(big.Rat).SetInt64(v) }
