package smt

import (
	"context"
	"errors"
	"math/big"
	"testing"
	"time"
)

// adversarial returns a formula that grinds Cooper's elimination long
// enough for cancellation to land mid-call.
func adversarial() Formula {
	vars := []Var{IntVar("a"), IntVar("b"), IntVar("c"), IntVar("d")}
	var fs []Formula
	for i, v := range vars {
		tm := VarTerm(v)
		tm.Scale(big.NewRat(int64(17+10*i), 1))
		for j, w := range vars {
			if j != i {
				tm.AddVar(w, big.NewRat(int64(3+j), 1))
			}
		}
		fs = append(fs, NE(tm, ConstTerm(int64(5+i))))
	}
	return NewAnd(fs...)
}

func TestSolverContextPreCancelled(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.SatisfiableCtx(ctx, adversarial())
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("expected ErrInterrupted, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not expose context.Canceled", err)
	}
	// Cancellation is the caller's doing, not a structural budget failure.
	if errors.Is(err, ErrBudget) {
		t.Fatalf("interruption %v must not look like budget exhaustion", err)
	}
}

func TestSolverContextCancelMidCall(t *testing.T) {
	s := New()
	s.Timeout = 0 // only ctx may stop this call
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.SatisfiableCtx(ctx, adversarial())
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Skip("formula solved before cancellation on this machine")
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("expected ErrInterrupted, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled solver call did not return")
	}
}

func TestSolverContextDisarmsAfterCall(t *testing.T) {
	// A cancelled ctx from a previous call must not leak into the next one.
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := IntVar("x")
	if _, err := s.SatisfiableCtx(ctx, GT(VarTerm(x), ConstTerm(0))); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("expected ErrInterrupted, got %v", err)
	}
	ok, err := s.Satisfiable(GT(VarTerm(x), ConstTerm(0)))
	if err != nil || !ok {
		t.Fatalf("solver unusable after cancelled call: ok=%v err=%v", ok, err)
	}
	m, err := s.ModelCtx(context.Background(), GT(VarTerm(x), ConstTerm(41)))
	if err != nil {
		t.Fatal(err)
	}
	if m[x].Cmp(big.NewRat(42, 1)) < 0 {
		t.Fatalf("model %v violates x > 41", m)
	}
}
