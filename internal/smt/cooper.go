package smt

import (
	"fmt"
	"math/big"
)

// eliminateInt eliminates an existentially quantified integer variable from
// a quantifier-free formula in negation normal form using Cooper's
// algorithm. The formula may contain atoms over other (integer) variables;
// atoms that do not mention v pass through untouched.
//
// The algorithm:
//
//  1. Every atom mentioning v is scaled to integer coefficients, and
//     inequalities are normalized to strict form (valid because all
//     variables in such atoms are integers).
//  2. With m the LCM of |coeff(v)| across those atoms, each is re-scaled so
//     the coefficient becomes ±m, and m·v is replaced by a fresh variable y
//     constrained by m | y.
//  3. Equalities and disequalities on y are expanded into strict bounds, so
//     y appears only in atoms y < t, t < y, and d | y + t.
//  4. With δ the LCM of the divisibility moduli and B the set of lower
//     bound terms, ∃y F(y) is equivalent to
//     ⋁_{j=1..δ} F_{-∞}(j) ∨ ⋁_{j=1..δ} ⋁_{b∈B} F(b+j).
//     The dual (upper bound) form is used when it has fewer substitution
//     terms.
//
// sia:hotpath
func (s *Solver) eliminateInt(v Var, f Formula) (Formula, error) {
	// Pass 1: validate and compute m, the LCM of |coeff(v)|.
	// alloc: per-elimination LCM accumulator, scratch and one visitor closure
	m := big.NewInt(1)
	var scratch big.Int
	// alloc: one visitor closure per elimination
	err := walkLeaves(f, func(leaf Formula) error {
		switch x := leaf.(type) {
		case *Atom:
			if !x.T.Has(v) {
				return nil
			}
			if !x.T.AllIntVars() {
				return fmt.Errorf("smt: cannot eliminate integer %s from mixed-sort atom %s", v, x)
			}
			// Scaling the atom by its denominator LCM L makes every
			// coefficient integral; v's becomes num(c)·L/den(c). Computing
			// that number directly avoids cloning the whole term per atom.
			if a, ok := x.T.scaledCoeffAbs64(v); ok {
				lcmInto(m, scratch.SetInt64(a))
				return nil
			}
			c := x.T.at(v)
			// alloc: scratch integers per over-int64 atom; slow path by design
			a := c.numBig()
			a.Mul(a, x.T.DenomLCM())
			a.Quo(a, c.denomBig()).Abs(a)
			lcmInto(m, a)
		case *Div:
			if !x.T.Has(v) {
				return nil
			}
			c := x.T.at(v)
			if !c.isInt() {
				return fmt.Errorf("smt: non-integer coefficient in divisibility atom %s", x)
			}
			if n, ok := c.num64(); ok {
				if n < 0 {
					n = -n
				}
				lcmInto(m, scratch.SetInt64(n))
				return nil
			}
			// alloc: one scratch integer per over-int64 divisibility atom
			a := c.numBig()
			lcmInto(m, a.Abs(a))
		default:
			// walkLeaves yields only Atom and Div leaves.
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Pass 2: rewrite so v's coefficient is ±1 on the fresh variable y.
	y := s.freshVar()
	// alloc: one rewriter closure per elimination; the rewritten formula is
	// the product
	rewritten, err := rewriteLeaves(f, func(leaf Formula) (Formula, error) {
		switch x := leaf.(type) {
		case *Atom:
			if !x.T.Has(v) {
				return leaf, nil
			}
			t := x.T.Clone()
			clearDenominators(t)
			op := x.Op
			if op == OpLE {
				// Integer atoms: t <= 0  ==  t - 1 < 0.
				op = OpLT
				t.AddInt64(-1)
			}
			// Scale so coeff(v) becomes ±m, then swap m·v for y.
			if n, ok := t.at(v).num64(); ok && m.IsInt64() {
				if n < 0 {
					n = -n
				}
				var k coef
				k.setInt64(m.Int64() / n)
				t.scaleCoef(&k)
			} else {
				// alloc: per-atom scaling factor m/|a|; over-int64 slow path
				a := t.at(v).numBig()
				// alloc: scale factor materialization; over-int64 slow path
				t.Scale(new(big.Rat).SetFrac(new(big.Int).Quo(m, a.Abs(a)), bigOne))
			}
			sign := t.at(v).sign()
			// alloc: substituting y for v opens one cell in the atom's term
			t.setCoefInt64(y, int64(sign))
			t.remove(v)
			return expandIntAtom(op, t, y), nil
		case *Div:
			if !x.T.Has(v) {
				return leaf, nil
			}
			t := x.T.Clone()
			a := t.at(v).numBig()
			// alloc: per-atom scaling factor and scaled modulus
			k := new(big.Int).Quo(m, a.Abs(a))
			var kc coef
			kc.setBigInt(k)
			t.scaleCoef(&kc)
			// alloc: per-atom scaled modulus
			mod := new(big.Int).Mul(x.M, k)
			sign := t.at(v).sign()
			// alloc: substituting y for v opens one cell in the atom's term
			t.setCoefInt64(y, int64(sign))
			t.remove(v)
			if sign < 0 {
				t.Neg() // d | t  ==  d | -t
			}
			// alloc: the rewritten divisibility atom is the product
			return &Div{Neg: x.Neg, M: mod, T: t}, nil
		default:
			return leaf, nil
		}
	})
	if err != nil {
		return nil, err
	}
	work := rewritten
	if m.Cmp(bigOne) != 0 {
		// alloc: the m | y constraint, once per elimination
		work = NewAnd(work, &Div{M: new(big.Int).Set(m), T: VarTerm(y)})
	}

	// Collect δ, lower bound terms and upper bound terms.
	// alloc: per-elimination period accumulator, bound dedup tables, and
	// one collector closure
	delta := big.NewInt(1)
	var lowers, uppers []*Term
	// alloc: per-elimination bound dedup tables
	lowerSeen, upperSeen := map[string]bool{}, map[string]bool{}
	// alloc: one collector closure per elimination
	err = walkLeaves(work, func(leaf Formula) error {
		switch x := leaf.(type) {
		case *Atom:
			if !x.T.Has(y) {
				return nil
			}
			if x.Op != OpLT {
				return fmt.Errorf("smt: internal: unexpected %s atom on %s", x.Op, y)
			}
			rest := x.T.Clone()
			rest.remove(y)
			if x.T.at(y).sign() > 0 {
				// y + r < 0, i.e. y < -r: upper bound -r.
				rest.Neg()
				if key := rest.String(); !upperSeen[key] {
					// alloc: dedup table grows once per distinct bound
					upperSeen[key] = true
					uppers = append(uppers, rest)
				}
			} else {
				// -y + r < 0, i.e. r < y: lower bound r.
				if key := rest.String(); !lowerSeen[key] {
					// alloc: dedup table grows once per distinct bound
					lowerSeen[key] = true
					lowers = append(lowers, rest)
				}
			}
		case *Div:
			if x.T.Has(y) {
				lcmInto(delta, x.M)
			}
		default:
			// walkLeaves yields only Atom and Div leaves.
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	if !delta.IsInt64() || delta.Int64() > int64(s.maxModulus()) {
		return nil, fmt.Errorf("%w: divisibility period %s too large eliminating %s", ErrBudget, delta, v)
	}
	dn := delta.Int64()
	useLower := len(lowers) <= len(uppers)
	bounds := lowers
	if !useLower {
		bounds = uppers
	}
	if (int64(len(bounds))+1)*dn > int64(s.maxDisjuncts()) {
		return nil, fmt.Errorf("%w: %d×%d substitutions eliminating %s", ErrBudget, len(bounds)+1, dn, v)
	}

	// Each bound is cloned once and shifted incrementally: entering
	// iteration j the shifted term equals b ± j — the previous iteration's
	// value ± 1 — so the per-(j, bound) deep clone of the old loop becomes a
	// single constant update. Subst only reads the replacement term, never
	// retains it, so reuse across iterations is safe.
	// alloc: one clone per bound, reused across all δ iterations
	shifted := make([]*Term, len(bounds))
	for i, b := range bounds {
		shifted[i] = b.Clone()
	}
	step := int64(1)
	if !useLower {
		step = -1
	}
	var disjuncts []Formula
	total := 0
	for j := int64(1); j <= dn; j++ {
		if err := s.checkStop(); err != nil {
			return nil, err
		}
		inf := Simplify(substInfinity(work, y, j, useLower))
		if b, ok := inf.(Bool); ok && bool(b) {
			return Bool(true), nil
		}
		disjuncts = append(disjuncts, inf)
		total += CountNodes(inf)
		for _, repl := range shifted {
			repl.AddInt64(step)
			d := Simplify(Subst(work, y, repl))
			if bb, ok := d.(Bool); ok && bool(bb) {
				return Bool(true), nil
			}
			disjuncts = append(disjuncts, d)
			total += CountNodes(d)
			if total > s.maxNodes() {
				return nil, fmt.Errorf("%w: formula grew past %d nodes eliminating %s", ErrBudget, s.maxNodes(), v)
			}
		}
	}
	return Simplify(NewOr(disjuncts...)), nil
}

// expandIntAtom turns an atom whose y-coefficient is ±1 into strict bounds
// on y.
// alloc: the expanded bound atoms are the product.
func expandIntAtom(op AtomOp, t *Term, y Var) Formula {
	switch op {
	case OpLT:
		return &Atom{Op: OpLT, T: t}
	case OpEQ, OpNE:
		// Normalize the coefficient of y to +1 (t = 0 iff -t = 0).
		if t.at(y).sign() < 0 {
			t = t.Clone().Neg()
		}
		if op == OpEQ {
			// y + r = 0  ==  y + r - 1 < 0  AND  -(y + r) - 1 < 0.
			l := t.Clone().AddInt64(-1)
			r := t.Clone().Neg().AddInt64(-1)
			return NewAnd(&Atom{Op: OpLT, T: l}, &Atom{Op: OpLT, T: r})
		}
		// y + r != 0  ==  y + r < 0  OR  -(y + r) < 0.
		return NewOr(&Atom{Op: OpLT, T: t.Clone()}, &Atom{Op: OpLT, T: t.Clone().Neg()})
	default:
		panic(fmt.Sprintf("smt: internal: unexpected op %v after normalization", op))
	}
}

// substInfinity computes F with y sent to -∞ (useLower) or +∞: bound atoms
// collapse to constants and divisibility atoms get y := ±j (any value with
// the right residue, since they are periodic).
// alloc: one rewrite closure and residue term per call; the rewritten
// tree is the product.
func substInfinity(f Formula, y Var, j int64, useLower bool) Formula {
	repl := ConstTerm(j)
	if !useLower {
		repl = ConstTerm(-j)
	}
	out, err := rewriteLeaves(f, func(leaf Formula) (Formula, error) {
		switch x := leaf.(type) {
		case *Atom:
			if !x.T.Has(y) {
				return leaf, nil
			}
			if x.T.at(y).sign() > 0 {
				// Upper bound y < t: true at -∞, false at +∞.
				return Bool(useLower), nil
			}
			return Bool(!useLower), nil
		case *Div:
			if !x.T.Has(y) {
				return leaf, nil
			}
			return simplifyDiv(&Div{Neg: x.Neg, M: x.M, T: x.T.Clone().Subst(y, repl)}), nil
		default:
			return leaf, nil
		}
	})
	if err != nil {
		panic("smt: internal: substInfinity rewrite failed: " + err.Error()) // callback never errors
	}
	return out
}

// walkLeaves visits every Atom/Div leaf of a quantifier-free NNF formula.
// memo: the visit callbacks are function literals created in this package;
// their effects are analyzed at their creation sites (closure effects
// belong to the creating unit), so the indirect call adds nothing.
func walkLeaves(f Formula, visit func(Formula) error) error {
	switch x := f.(type) {
	case Bool:
		return nil
	case *Atom, *Div:
		return visit(f)
	case *And:
		for _, g := range x.Fs {
			if err := walkLeaves(g, visit); err != nil {
				return err
			}
		}
		return nil
	case *Or:
		for _, g := range x.Fs {
			if err := walkLeaves(g, visit); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("smt: internal: unexpected %T in quantifier-free NNF", f)
	}
}

// rewriteLeaves rebuilds a quantifier-free NNF formula with every Atom/Div
// leaf replaced by the callback's result.
// alloc: rebuilds the tree; growth is bounded by the eliminator's budgets.
// memo: the repl callbacks are function literals created in this package;
// their effects are analyzed at their creation sites (closure effects
// belong to the creating unit), so the indirect call adds nothing.
func rewriteLeaves(f Formula, repl func(Formula) (Formula, error)) (Formula, error) {
	switch x := f.(type) {
	case Bool:
		return x, nil
	case *Atom, *Div:
		return repl(f)
	case *And:
		fs := make([]Formula, 0, len(x.Fs))
		for _, g := range x.Fs {
			r, err := rewriteLeaves(g, repl)
			if err != nil {
				return nil, err
			}
			fs = append(fs, r)
		}
		return NewAnd(fs...), nil
	case *Or:
		fs := make([]Formula, 0, len(x.Fs))
		for _, g := range x.Fs {
			r, err := rewriteLeaves(g, repl)
			if err != nil {
				return nil, err
			}
			fs = append(fs, r)
		}
		return NewOr(fs...), nil
	default:
		return nil, fmt.Errorf("smt: internal: unexpected %T in quantifier-free NNF", f)
	}
}
