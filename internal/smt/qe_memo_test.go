package smt

import (
	"context"
	"errors"
	"math/big"
	"runtime"
	"sync/atomic"
	"testing"
)

// cancelAfterErrs is a context whose Err() starts failing from the k-th
// call onward, which lets a test land a cancellation deterministically on
// every checkStop poll point in turn.
type cancelAfterErrs struct {
	context.Context
	k     int32
	calls atomic.Int32
}

func (c *cancelAfterErrs) Err() error {
	if c.calls.Add(1) >= c.k {
		return context.Canceled
	}
	return c.Context.Err()
}

// qeMemoTestFormula needs enough elimination structure that a cancellation
// can land mid-way through nested eliminate calls.
func qeMemoTestFormula() Formula {
	x, y, z := IntVar("mx"), IntVar("my"), IntVar("mz")
	conj := func(fs ...Formula) Formula { return NewAnd(fs...) }
	two := func(v Var) *Term { return VarTerm(v).Scale(big.NewRat(2, 1)) }
	three := func(v Var) *Term { return VarTerm(v).Scale(big.NewRat(3, 1)) }
	return NewOr(
		conj(LT(two(x).Add(three(y)), ConstTerm(7)), EQ(VarTerm(x).AddScaled(VarTerm(y), big.NewRat(-1, 1)), ConstTerm(1)), LE(VarTerm(z), VarTerm(x))),
		conj(LE(three(x), VarTerm(y)), LT(VarTerm(y), two(z)), LT(VarTerm(z), ConstTerm(5))),
		conj(EQ(two(y), three(z)), LT(VarTerm(x), VarTerm(z)), LT(ConstTerm(-3), VarTerm(x))),
		conj(LE(VarTerm(x).Add(VarTerm(y)).Add(VarTerm(z)), ConstTerm(0)), LT(ConstTerm(0), VarTerm(x))),
	)
}

// TestQEMemoCancellationSweep is the poisoned-entry regression: a result
// produced while the context was being cancelled must never be cached. The
// sweep lands a cancellation on every checkStop poll point of a clean run
// in turn, then re-runs on a fresh solver and context and requires the
// answer the clean run produced — a poisoned memo entry would surface here
// as a wrong or malformed result.
func TestQEMemoCancellationSweep(t *testing.T) {
	f := qeMemoTestFormula()
	qeMemo.Purge()
	probe := &cancelAfterErrs{Context: context.Background(), k: 1 << 30}
	want, err := New().SatisfiableCtx(probe, f)
	if err != nil {
		t.Fatal(err)
	}
	polls := probe.calls.Load()
	if polls < 3 {
		t.Fatalf("formula too shallow: only %d polls", polls)
	}
	step := int32(1)
	if polls > 300 {
		step = polls / 300
	}
	sawCancel := false
	for k := int32(1); k <= polls; k += step {
		qeMemo.Purge()
		ctx := &cancelAfterErrs{Context: context.Background(), k: k}
		if _, err := New().SatisfiableCtx(ctx, f); err != nil {
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("k=%d: unexpected error kind: %v", k, err)
			}
			sawCancel = true
		}
		got, err := New().SatisfiableCtx(context.Background(), f)
		if err != nil {
			t.Fatalf("k=%d: rerun after cancellation failed: %v", k, err)
		}
		if got != want {
			t.Fatalf("k=%d: rerun after cancellation answered %v, clean run answered %v", k, got, want)
		}
	}
	if !sawCancel {
		t.Fatal("sweep never landed a cancellation")
	}
}

// TestQEMemoBudgetErrorNotCached drives an elimination into ErrBudget with
// a tiny disjunct budget and then requires a full-budget solver to produce
// the clean answer: a budget-aborted partial result must not be served
// from the memo.
func TestQEMemoBudgetErrorNotCached(t *testing.T) {
	f := qeMemoTestFormula()
	qeMemo.Purge()
	want, err := New().Satisfiable(f)
	if err != nil {
		t.Fatal(err)
	}
	qeMemo.Purge()
	small := &Solver{MaxDisjuncts: 1}
	if _, err := small.Satisfiable(f); err == nil {
		t.Skip("budget of 1 disjunct did not trip on this formula")
	} else if !errors.Is(err, ErrBudget) {
		t.Fatalf("unexpected error kind: %v", err)
	}
	got, err := New().Satisfiable(f)
	if err != nil {
		t.Fatalf("rerun after budget abort failed: %v", err)
	}
	if got != want {
		t.Fatalf("rerun after budget abort answered %v, clean run answered %v", got, want)
	}
}

// TestQEMemoHitsServeSameAnswer checks the memo actually fires across
// solver instances and that a hit reproduces the miss's answer.
func TestQEMemoHitsServeSameAnswer(t *testing.T) {
	f := qeMemoTestFormula()
	qeMemo.Purge()
	first, err := New().Satisfiable(f)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := mQEMemoHits.Value()
	second, err := New().Satisfiable(f)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatalf("memo-served run answered %v, first run answered %v", second, first)
	}
	if mQEMemoHits.Value() == hitsBefore {
		t.Fatal("second identical query produced no memo hits")
	}
}

// TestParallelDisjunctsMatchSerial pins the parallel outermost-Or
// elimination to the serial loop's result, byte for byte.
func TestParallelDisjunctsMatchSerial(t *testing.T) {
	x, y := IntVar("px"), IntVar("py")
	var disjuncts []Formula
	for i := int64(0); i < 8; i++ {
		disjuncts = append(disjuncts, NewAnd(
			LT(VarTerm(x).Scale(big.NewRat(i+2, 1)).Add(VarTerm(y)), ConstTerm(3*i+1)),
			LE(ConstTerm(-i), VarTerm(x)),
			EQ(VarTerm(y).AddScaled(VarTerm(x), big.NewRat(-(i + 1), 1)), ConstTerm(i)),
		))
	}
	g := &Exists{V: x, F: NewOr(disjuncts...)}

	old := runtime.GOMAXPROCS(1)
	qeMemo.Purge()
	serial, serialErr := New().QE(g)
	runtime.GOMAXPROCS(old)
	if serialErr != nil {
		t.Fatal(serialErr)
	}

	qeMemo.Purge()
	parallel, parallelErr := New().QE(g)
	if parallelErr != nil {
		t.Fatal(parallelErr)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("parallel elimination diverged:\n serial:   %s\n parallel: %s", serial, parallel)
	}
}
