package smt

import (
	"math/big"
	"math/rand"
	"testing"
)

// genTerm builds a fresh random term over a small variable pool. Calling
// it twice with identically seeded generators yields structurally equal
// but pointer-distinct values.
func genTerm(rng *rand.Rand, vars []Var) *Term {
	t := NewTerm(big.NewRat(int64(rng.Intn(9)-4), int64(rng.Intn(3)+1)))
	for _, v := range vars {
		if rng.Intn(2) == 0 {
			t.AddVar(v, big.NewRat(int64(rng.Intn(7)-3), 1))
		}
	}
	return t
}

func genFormula(rng *rand.Rand, vars []Var, depth int) Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		ops := []AtomOp{OpLT, OpLE, OpEQ, OpNE}
		return &Atom{Op: ops[rng.Intn(len(ops))], T: genTerm(rng, vars)}
	}
	switch rng.Intn(4) {
	case 0:
		return &And{Fs: []Formula{genFormula(rng, vars, depth-1), genFormula(rng, vars, depth-1)}}
	case 1:
		return &Or{Fs: []Formula{genFormula(rng, vars, depth-1), genFormula(rng, vars, depth-1)}}
	case 2:
		return &Not{F: genFormula(rng, vars, depth-1)}
	default:
		return &Div{Neg: rng.Intn(2) == 0, M: big.NewInt(int64(rng.Intn(5) + 2)), T: genTerm(rng, vars)}
	}
}

// TestInternCanonical is the interner's core property: Intern(a) and
// Intern(b) return the same pointer exactly when a and b are structurally
// equal. The formula count stays far below the shard cap so no reset can
// rotate canonical pointers mid-test.
func TestInternCanonical(t *testing.T) {
	vars := []Var{IntVar("x"), IntVar("y"), RealVar("r")}
	const n = 120
	seeds := make([]int64, n)
	orig := make([]Formula, n)
	interned := make([]Formula, n)
	for i := range seeds {
		seeds[i] = int64(i % 40) // forced duplicates across the pool
		rng := rand.New(rand.NewSource(seeds[i]))
		orig[i] = genFormula(rng, vars, 3)
		// Intern a separately built copy, so Intern never sees the
		// original pointer and must match by structure alone.
		rng = rand.New(rand.NewSource(seeds[i]))
		interned[i] = Intern(genFormula(rng, vars, 3))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			eq := FormulaEqual(orig[i], orig[j])
			same := interned[i] == interned[j]
			if eq != same {
				t.Fatalf("equal=%v pointerEqual=%v for\n  %s\n  %s", eq, same, orig[i], orig[j])
			}
		}
	}
	for i := 0; i < n; i++ {
		if !FormulaEqual(orig[i], interned[i]) {
			t.Fatalf("interned formula differs structurally:\n  %s\n  %s", orig[i], interned[i])
		}
		if orig[i].String() != interned[i].String() {
			t.Fatalf("interning changed the rendering: %q vs %q", orig[i], interned[i])
		}
	}
}

// TestInternSortsDistinguished pins the regression where the intern key
// dropped variable sorts: an integer x and a real x render identically but
// must never share a canonical node.
func TestInternSortsDistinguished(t *testing.T) {
	fi := LT(VarTerm(IntVar("x")), ConstTerm(0))
	fr := LT(VarTerm(RealVar("x")), ConstTerm(0))
	ai, ar := Intern(fi), Intern(fr)
	if ai == ar {
		t.Fatalf("int and real atoms interned to one node: %s", ai)
	}
	ti := InternTerm(VarTerm(IntVar("y")))
	tr := InternTerm(VarTerm(RealVar("y")))
	if ti == tr {
		t.Fatal("int and real terms interned to one node")
	}
}

// TestCoefFastPathAllocs guards the int64 fast path: arithmetic on
// small-magnitude coefficients must not allocate.
func TestCoefFastPathAllocs(t *testing.T) {
	var a, b coef
	if avg := testing.AllocsPerRun(200, func() {
		a.setFrac64(7, 3)
		b.setFrac64(-5, 6)
		a.add(&b)
		a.mul(&b)
		a.addInt64(11)
		a.neg()
		if a.isZero() {
			t.Fatal("unexpected zero")
		}
	}); avg != 0 {
		t.Fatalf("coef fast path allocates: %.1f allocs/op", avg)
	}
}

// TestTermAddInt64Allocs guards the in-place constant bump used by integer
// tightening in the canonicalizer.
func TestTermAddInt64Allocs(t *testing.T) {
	tm := ConstTerm(3)
	if avg := testing.AllocsPerRun(200, func() {
		tm.AddInt64(1)
		tm.AddInt64(-1)
	}); avg != 0 {
		t.Fatalf("Term.AddInt64 fast path allocates: %.1f allocs/op", avg)
	}
}
