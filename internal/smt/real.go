package smt

import (
	"fmt"
	"math/big"
)

// eliminateReal eliminates an existentially quantified real variable from a
// quantifier-free NNF formula using Loos–Weispfenning virtual substitution:
//
//	∃x F  ==  ⋁_{t ∈ testpoints} F[x := t]
//
// where the test points are -∞, every lower bound value s (from atoms
// x ≥ s and x = s), and every s + ε (from atoms x > s and x ≠ s). The
// substitutions of -∞ and s + ε are virtual: each atom is rewritten into an
// equivalent ε-free condition.
//
// The procedure is sound in mixed formulas: atoms mentioning x may also
// mention integer variables, because only x's real-valued range is reasoned
// about. Divisibility atoms mentioning x are rejected (they would make x
// integer-constrained, which contradicts its sort; they are never produced
// for real variables).
//
// sia:hotpath
func (s *Solver) eliminateReal(v Var, f Formula) (Formula, error) {
	// Collect test points.
	type testPoint struct {
		term *Term // nil for -∞
		eps  bool  // substitute term + ε
	}
	// alloc: per-elimination test-point list
	points := []testPoint{{term: nil}}
	// alloc: per-elimination dedup table
	seenExact := map[string]bool{}
	// alloc: per-elimination dedup table
	seenEps := map[string]bool{}
	// alloc: one collector closure per elimination
	err := walkLeaves(f, func(leaf Formula) error {
		switch x := leaf.(type) {
		case *Div:
			if x.T.Has(v) {
				return fmt.Errorf("smt: divisibility atom %s constrains real variable %s", x, v)
			}
			return nil
		case *Atom:
			if !x.T.Has(v) {
				return nil
			}
			a := x.T.Coeff(v)
			// Solve the atom for v: v ⋈ s with s = -rest/a.
			rest := x.T.Clone()
			rest.remove(v)
			// alloc: one reciprocal per bound atom
			bound := rest.Neg().Scale(new(big.Rat).Inv(a))
			key := bound.String()
			// alloc: per-atom dedup closure
			addExact := func() {
				if !seenExact[key] {
					// alloc: dedup table grows once per distinct bound
					seenExact[key] = true
					points = append(points, testPoint{term: bound})
				}
			}
			// alloc: per-atom dedup closure
			addEps := func() {
				if !seenEps[key] {
					// alloc: dedup table grows once per distinct bound
					seenEps[key] = true
					points = append(points, testPoint{term: bound, eps: true})
				}
			}
			neg := a.Sign() < 0
			switch x.Op {
			case OpLT: // a·v + r < 0: v < s if a>0, v > s if a<0.
				if neg {
					addEps()
				}
			case OpLE: // v <= s or v >= s.
				if neg {
					addExact()
				}
			case OpEQ:
				addExact()
			case OpNE:
				addEps()
			}
			return nil
		default:
			return nil
		}
	})
	if err != nil {
		return nil, err
	}

	var disjuncts []Formula
	total := 0
	for _, tp := range points {
		if err := s.checkStop(); err != nil {
			return nil, err
		}
		var g Formula
		if tp.term == nil {
			g = substRealMinusInf(f, v)
		} else if tp.eps {
			g = substRealEps(f, v, tp.term)
		} else {
			g = Subst(f, v, tp.term)
		}
		g = Simplify(g)
		if b, ok := g.(Bool); ok {
			if bool(b) {
				return Bool(true), nil
			}
			continue
		}
		disjuncts = append(disjuncts, g)
		total += CountNodes(g)
		if total > s.maxNodes() {
			return nil, fmt.Errorf("%w: formula grew past %d nodes eliminating %s", ErrBudget, s.maxNodes(), v)
		}
	}
	return Simplify(NewOr(disjuncts...)), nil
}

// substRealMinusInf virtually substitutes v := -∞.
// alloc: one rewrite closure per call; the rewritten tree is the product.
func substRealMinusInf(f Formula, v Var) Formula {
	out, err := rewriteLeaves(f, func(leaf Formula) (Formula, error) {
		a, ok := leaf.(*Atom)
		if !ok || !a.T.Has(v) {
			return leaf, nil
		}
		c := a.T.Coeff(v)
		switch a.Op {
		case OpLT, OpLE:
			// a·v → -∞·sign(a): the atom holds iff the term diverges to -∞.
			return Bool(c.Sign() > 0), nil
		case OpEQ:
			return Bool(false), nil
		case OpNE:
			return Bool(true), nil
		default:
			panic("smt: bad atom op")
		}
	})
	if err != nil {
		panic("smt: internal: substRealMinusInf rewrite failed: " + err.Error()) // callback never errors
	}
	return out
}

// substRealEps virtually substitutes v := s + ε for an infinitesimal ε > 0.
// With t = a·s + r the value of atom a·v + r at s + ε is t + a·ε, so:
//
//	a > 0:  t + a·ε <  0  ==  t < 0      a < 0:  t + a·ε <  0  ==  t <= 0
//	a > 0:  t + a·ε <= 0  ==  t < 0      a < 0:  t + a·ε <= 0  ==  t <= 0
//	        t + a·ε =  0  ==  false              t + a·ε != 0  ==  true
//
// alloc: one rewrite closure per call; the rewritten tree is the product.
func substRealEps(f Formula, v Var, s0 *Term) Formula {
	out, err := rewriteLeaves(f, func(leaf Formula) (Formula, error) {
		a, ok := leaf.(*Atom)
		if !ok || !a.T.Has(v) {
			return leaf, nil
		}
		c := a.T.Coeff(v)
		t := a.T.Clone().Subst(v, s0)
		switch a.Op {
		case OpLT, OpLE:
			if c.Sign() > 0 {
				return newAtom(OpLT, t), nil
			}
			return newAtom(OpLE, t), nil
		case OpEQ:
			return Bool(false), nil
		case OpNE:
			return Bool(true), nil
		default:
			panic("smt: bad atom op")
		}
	})
	if err != nil {
		panic("smt: internal: substRealEps rewrite failed: " + err.Error()) // callback never errors
	}
	return out
}
