package smt

import "sync"

// Hash-consing interner: structurally equal terms and formulas are folded
// onto one canonical, frozen node, process-wide. Canonical nodes cache
// their display rendering (and, for atoms, the canonical key of their
// complement), so the string-keyed dedup tables in the eliminators and
// simplifier pay for a rendering once per distinct value instead of once
// per occurrence, and Term.Equal degenerates to a pointer comparison in
// the hot loops.
//
// Intern-table keys are NOT display strings: String() drops variable
// sorts, so an integer term and an identically named real term render the
// same. The tables key on a sort-qualified encoding (appendKey /
// appendFormulaKey) instead.
//
// The tables are sharded by key hash and bounded: a shard that exceeds
// internShardCap entries is reset wholesale (sia_smt_intern_resets_total).
// Canonical pointers already handed out stay valid — frozen nodes carry
// their cached strings — they just stop being dedup targets, so a reset
// can rotate which pointer is canonical for a value. Exact string keys
// (never pointer identity) are therefore the only safe cross-reset dedup
// key, which is what every caller uses.
//
// Interning claims ownership: a frozen Term panics on in-place mutation,
// enforcing the clone-then-mutate discipline the solver already follows.

const (
	internShards   = 32
	internShardCap = 1 << 13 // entries per shard before a wholesale reset
)

type internShard struct {
	mu    sync.Mutex
	terms map[string]*Term
	atoms map[string]*Atom
	divs  map[string]*Div
	forms map[string]Formula // connectives
	n     int
}

var internTable [internShards]internShard

// shardFor picks the shard for key (FNV-1a).
func shardFor(key string) *internShard {
	var h uint64 = fnvOffset
	// cancel: bounded by the key length; rendering already paid more.
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrime
	}
	return &internTable[h%internShards]
}

// room makes space for one more entry, resetting the shard at the cap.
// Caller holds sh.mu.
// alloc: fresh maps on a shard reset; bounds the interner's footprint.
func (sh *internShard) room() {
	if sh.n < internShardCap {
		sh.n++
		return
	}
	sh.terms = make(map[string]*Term)
	sh.atoms = make(map[string]*Atom)
	sh.divs = make(map[string]*Div)
	sh.forms = make(map[string]Formula)
	sh.n = 1
	mInternResets.Inc()
}

// appendFormulaKey appends f's interner key to b: an unambiguous,
// sort-qualified encoding of the tree. Frozen nodes contribute their
// cached key.
// alloc: key rendering grows the caller's buffer; paid once per interned
// node, then served from the cached key.
func appendFormulaKey(b []byte, f Formula) []byte {
	switch x := f.(type) {
	case Bool:
		if x {
			return append(b, 'T')
		}
		return append(b, 'F')
	case *Atom:
		if x.frozen {
			return append(b, x.key...)
		}
		b = append(b, 'a', byte('0'+int(x.Op)))
		return x.T.appendKey(b)
	case *Div:
		if x.frozen {
			return append(b, x.key...)
		}
		b = append(b, 'd')
		if x.Neg {
			b = append(b, '!')
		}
		b = append(b, x.M.String()...)
		b = append(b, '|')
		return x.T.appendKey(b)
	case *And:
		if x.frozen {
			return append(b, x.key...)
		}
		b = append(b, '&', '(')
		// cancel: bounded by the child count of one connective node.
		for _, g := range x.Fs {
			b = appendFormulaKey(b, g)
			b = append(b, ',')
		}
		return append(b, ')')
	case *Or:
		if x.frozen {
			return append(b, x.key...)
		}
		b = append(b, 'o', '(')
		// cancel: bounded by the child count of one connective node.
		for _, g := range x.Fs {
			b = appendFormulaKey(b, g)
			b = append(b, ',')
		}
		return append(b, ')')
	case *Not:
		if x.frozen {
			return append(b, x.key...)
		}
		b = append(b, 'N', '(')
		b = appendFormulaKey(b, x.F)
		return append(b, ')')
	case *Exists:
		if x.frozen {
			return append(b, x.key...)
		}
		b = append(b, 'E')
		b = append(b, x.V.Name...)
		b = append(b, '\x00', byte(x.V.Sort), '(')
		b = appendFormulaKey(b, x.F)
		return append(b, ')')
	case *ForAll:
		if x.frozen {
			return append(b, x.key...)
		}
		b = append(b, 'A')
		b = append(b, x.V.Name...)
		b = append(b, '\x00', byte(x.V.Sort), '(')
		b = appendFormulaKey(b, x.F)
		return append(b, ')')
	default:
		// Unknown node types never reach the interner; render defensively.
		return append(b, f.String()...)
	}
}

// formulaKey returns f's interner key as a string.
// alloc: key rendering; frozen inputs return their cached key.
func formulaKey(f Formula) string {
	switch x := f.(type) {
	case *Atom:
		if x.frozen {
			return x.key
		}
	case *Div:
		if x.frozen {
			return x.key
		}
	case *And:
		if x.frozen {
			return x.key
		}
	case *Or:
		if x.frozen {
			return x.key
		}
	case *Not:
		if x.frozen {
			return x.key
		}
	case *Exists:
		if x.frozen {
			return x.key
		}
	case *ForAll:
		if x.frozen {
			return x.key
		}
	default:
		// Bool (and any unknown node) has no cached key; render below.
	}
	return string(appendFormulaKey(nil, f))
}

// InternTerm returns the canonical shared term equal to t. When t itself
// becomes canonical it is frozen in place — the caller gives up the right
// to mutate it (mutators panic on frozen terms; Clone first).
// alloc: renders t's canonical key; cached on the canonical node.
// memo: the interner is an idempotent cache — one key always maps to one
// canonical node for a shard generation, the freeze happens before the
// node is published, and the locking and hit/miss counters are invisible
// to results.
func InternTerm(t *Term) *Term {
	if t.frozen {
		return t
	}
	key := string(t.appendKey(nil))
	sh := shardFor(key)
	sh.mu.Lock()
	if c, ok := sh.terms[key]; ok {
		sh.mu.Unlock()
		mInternHits.Inc()
		return c
	}
	sh.mu.Unlock()
	// Freeze outside the lock: the display rendering is only needed on a
	// miss, and publishing happens under a fresh lookup below.
	t.key = key
	t.str = string(t.appendString(nil))
	t.frozen = true
	sh.mu.Lock()
	if c, ok := sh.terms[key]; ok {
		sh.mu.Unlock()
		mInternHits.Inc()
		return c
	}
	if sh.terms == nil {
		// alloc: lazy shard map initialization, once per shard generation
		sh.terms = make(map[string]*Term)
	}
	sh.room()
	sh.terms[key] = t
	sh.mu.Unlock()
	mInternMisses.Inc()
	return t
}

// internAtom returns the canonical shared atom equal to a, with the
// rendering and complement key cached on it.
// alloc: renders the key and builds the canonical node on a miss.
// memo: the interner is an idempotent cache — one key always maps to one
// canonical node for a shard generation; locking and counters are
// invisible to results.
func internAtom(a *Atom, canon bool) *Atom {
	if a.frozen {
		return a
	}
	key := string(appendFormulaKey(nil, a))
	sh := shardFor(key)
	sh.mu.Lock()
	if c, ok := sh.atoms[key]; ok {
		sh.mu.Unlock()
		mInternHits.Inc()
		return c
	}
	sh.mu.Unlock()
	// Miss: build the canonical node outside the shard lock — both the
	// complement-key computation and InternTerm may take (this) shard's
	// lock themselves.
	n := &Atom{Op: a.Op, T: InternTerm(a.T), frozen: true, canon: canon, key: key,
		str: a.String(), negKey: computeNegAtomKey(a)}
	sh.mu.Lock()
	if c, ok := sh.atoms[key]; ok {
		sh.mu.Unlock()
		mInternHits.Inc()
		return c
	}
	if sh.atoms == nil {
		// alloc: lazy shard map initialization, once per shard generation
		sh.atoms = make(map[string]*Atom)
	}
	sh.room()
	sh.atoms[key] = n
	sh.mu.Unlock()
	mInternMisses.Inc()
	return n
}

// internDivNode returns the canonical shared divisibility atom equal to d.
// alloc: renders the key and builds the canonical node on a miss.
// memo: the interner is an idempotent cache — one key always maps to one
// canonical node for a shard generation; locking and counters are
// invisible to results.
func internDivNode(d *Div, canon bool) *Div {
	if d.frozen {
		return d
	}
	key := string(appendFormulaKey(nil, d))
	sh := shardFor(key)
	sh.mu.Lock()
	if c, ok := sh.divs[key]; ok {
		sh.mu.Unlock()
		mInternHits.Inc()
		return c
	}
	sh.mu.Unlock()
	n := &Div{Neg: d.Neg, M: d.M, T: InternTerm(d.T), frozen: true, canon: canon, key: key, str: d.String()}
	sh.mu.Lock()
	if c, ok := sh.divs[key]; ok {
		sh.mu.Unlock()
		mInternHits.Inc()
		return c
	}
	if sh.divs == nil {
		// alloc: lazy shard map initialization, once per shard generation
		sh.divs = make(map[string]*Div)
	}
	sh.room()
	sh.divs[key] = n
	sh.mu.Unlock()
	mInternMisses.Inc()
	return n
}

// internLeaf interns atom and divisibility leaves; every other formula
// passes through. This is the hook the simplifier's canonicalizers use:
// its inputs are Simplify fixed points, so the published nodes carry the
// canon mark and later Simplify passes return them unchanged.
func internLeaf(f Formula) Formula {
	switch x := f.(type) {
	case *Atom:
		return internAtom(x, true)
	case *Div:
		return internDivNode(x, true)
	default:
		return f
	}
}

// internForm dedups a connective node under its formula key. n must have
// interned children; publish stamps the frozen metadata right before the
// node becomes visible.
func internForm(key string, publish func() Formula) Formula {
	sh := shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c, ok := sh.forms[key]; ok {
		mInternHits.Inc()
		return c
	}
	n := publish()
	if sh.forms == nil {
		// alloc: lazy shard map initialization, once per shard generation
		sh.forms = make(map[string]Formula)
	}
	sh.room()
	sh.forms[key] = n
	mInternMisses.Inc()
	return n
}

// Intern returns the canonical shared node structurally equal to f,
// interning the whole tree bottom-up. Two formulas a and b satisfy
// Intern(a) == Intern(b) exactly when FormulaEqual(a, b) — modulo shard
// resets, which can rotate the canonical pointer between the two calls.
// The result is frozen: its rendering is cached and its terms must be
// cloned before mutation. Callers hand over ownership of any non-interned
// nodes in f.
func Intern(f Formula) Formula {
	switch x := f.(type) {
	case Bool:
		return x
	case *Atom:
		return internAtom(x, false)
	case *Div:
		return internDivNode(x, false)
	case *And:
		if x.frozen {
			return x
		}
		n := &And{Fs: internChildren(x.Fs)}
		key := formulaKey(n)
		str := n.String()
		return internForm(key, func() Formula {
			n.key, n.str, n.frozen = key, str, true
			return n
		})
	case *Or:
		if x.frozen {
			return x
		}
		n := &Or{Fs: internChildren(x.Fs)}
		key := formulaKey(n)
		str := n.String()
		return internForm(key, func() Formula {
			n.key, n.str, n.frozen = key, str, true
			return n
		})
	case *Not:
		if x.frozen {
			return x
		}
		n := &Not{F: Intern(x.F)}
		key := formulaKey(n)
		str := n.String()
		return internForm(key, func() Formula {
			n.key, n.str, n.frozen = key, str, true
			return n
		})
	case *Exists:
		if x.frozen {
			return x
		}
		n := &Exists{V: x.V, F: Intern(x.F)}
		key := formulaKey(n)
		str := n.String()
		return internForm(key, func() Formula {
			n.key, n.str, n.frozen = key, str, true
			return n
		})
	case *ForAll:
		if x.frozen {
			return x
		}
		n := &ForAll{V: x.V, F: Intern(x.F)}
		key := formulaKey(n)
		str := n.String()
		return internForm(key, func() Formula {
			n.key, n.str, n.frozen = key, str, true
			return n
		})
	default:
		return f
	}
}

// internChildren interns a child list into a fresh slice.
func internChildren(fs []Formula) []Formula {
	// alloc: one slice per connective; children are shared canonical nodes
	out := make([]Formula, len(fs))
	// cancel: bounded by the child count of one connective node.
	for i, g := range fs {
		out[i] = Intern(g)
	}
	return out
}
