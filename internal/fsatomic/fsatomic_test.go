package fsatomic

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileBytesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	want := []byte("hello, durable world")
	if err := WriteFileBytes(path, want); err != nil {
		t.Fatalf("WriteFileBytes: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("content = %q, want %q", got, want)
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := WriteFileBytes(path, []byte("old")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := WriteFileBytes(path, []byte("new content")); err != nil {
		t.Fatalf("second write: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new content" {
		t.Fatalf("content = %q, want %q", got, "new content")
	}
}

// TestWriteFileErrorKeepsOld is the crash-safety contract a caller can
// test for: when the write callback fails, the destination keeps its
// previous content and no temporary file is left behind.
func TestWriteFileErrorKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileBytes(path, []byte("precious")); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	boom := errors.New("disk full")
	err := WriteFile(path, func(f *os.File) error {
		_, _ = f.Write([]byte("torn"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped %v", err, boom)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "precious" {
		t.Fatalf("content = %q, %v; want old content intact", got, rerr)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".fsatomic-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"))
	if err == nil {
		t.Fatal("want error for missing parent directory")
	}
}
