// Package fsatomic writes files atomically *and* durably: content goes to
// a temporary file in the destination directory, is fsynced, renamed over
// the destination, and the parent directory is fsynced so the rename
// itself survives a crash.
//
// Rename-only "atomic" writes (the usual tmp+rename idiom) leave a window
// where a crash after the rename surfaces an empty or torn file: the
// rename can reach the journal before the data blocks do. Both the serving
// tier's cache snapshots and the storage layer's segment files are read
// back after restarts, so they use this package instead of hand-rolling
// the idiom.
package fsatomic

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically and durably replaces path with the bytes produced
// by write. On any error the destination is left untouched (the previous
// content, if any, remains) and the temporary file is removed.
//
// The sequence is: create tmp in path's directory → write(tmp) → fsync
// tmp → close → rename tmp over path → fsync the directory. A reader
// therefore never observes a partially written file from this writer, and
// a crash at any point leaves either the old content or the new content —
// never a torn or empty file.
func WriteFile(path string, write func(f *os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".fsatomic-*")
	if err != nil {
		return fmt.Errorf("fsatomic: temp file: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(step string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("fsatomic: %s %s: %w", step, path, err)
	}
	if err := write(tmp); err != nil {
		return fail("writing", err)
	}
	// The data must be on disk before the rename publishes it: a rename
	// can be journaled ahead of the data blocks, and a crash in between
	// would surface an empty or torn file under the final name.
	if err := tmp.Sync(); err != nil {
		return fail("syncing", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsatomic: closing %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("fsatomic: publishing %s: %w", path, err)
	}
	return syncDir(dir)
}

// WriteFileBytes is WriteFile for callers that already hold the whole
// content in memory.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Some filesystems reject fsync on directories; that is not a data-loss
// path (the rename is still atomic), so only open errors are reported.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsatomic: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return fmt.Errorf("fsatomic: syncing dir %s: %w", dir, err)
	}
	return nil
}
