package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one of the mini-modules under testdata/.
func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", name), []string{"./..."})
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s: no packages", name)
	}
	return pkgs
}

// runOne runs a single analyzer over a fixture and returns its findings.
func runOne(t *testing.T, fixture string, cfg *Config, a *Analyzer) []Finding {
	t.Helper()
	pkgs := loadFixture(t, fixture)
	return Run(pkgs, []*Analyzer{a}, cfg)
}

// wantFindings asserts the exact count and that each expected substring
// appears in some finding message.
func wantFindings(t *testing.T, got []Finding, n int, substrs ...string) {
	t.Helper()
	if len(got) != n {
		for _, f := range got {
			t.Logf("  %s: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
		t.Fatalf("got %d findings, want %d", len(got), n)
	}
	for _, want := range substrs {
		found := false
		for _, f := range got {
			if strings.Contains(f.Message, want) {
				found = true
				break
			}
		}
		if !found {
			for _, f := range got {
				t.Logf("  %s: [%s] %s", f.Pos, f.Analyzer, f.Message)
			}
			t.Errorf("no finding mentions %q", want)
		}
	}
}

func TestExhaustiveSwitchGood(t *testing.T) {
	cfg := &Config{SwitchInterfaces: []string{"exgood.Node"}}
	got := runOne(t, "exhaustive_good", cfg, ExhaustiveSwitch(cfg))
	wantFindings(t, got, 0)
}

func TestExhaustiveSwitchBad(t *testing.T) {
	cfg := &Config{SwitchInterfaces: []string{"exbad.Node"}}
	got := runOne(t, "exhaustive_bad", cfg, ExhaustiveSwitch(cfg))
	wantFindings(t, got, 1, "*exbad.Leaf")
}

func triCfg(mod string) *Config {
	return &Config{
		TriBoolType: mod + "/tri.TriBool",
		TrueName:    "True",
		FalseName:   "False",
		TriBoolPkg:  mod + "/tri",
	}
}

func TestTriBoolMisuseGood(t *testing.T) {
	cfg := triCfg("tbgood")
	got := runOne(t, "tribool_good", cfg, TriBoolMisuse(cfg))
	wantFindings(t, got, 0)
}

func TestTriBoolMisuseBad(t *testing.T) {
	cfg := triCfg("tbbad")
	got := runOne(t, "tribool_bad", cfg, TriBoolMisuse(cfg))
	wantFindings(t, got, 4, "Unknown", "conversion")
}

func TestNoPanicGood(t *testing.T) {
	cfg := &Config{LibraryPrefixes: []string{"npgood/internal/"}}
	got := runOne(t, "nopanic_good", cfg, NoPanicInLibrary(cfg))
	wantFindings(t, got, 0)
}

func TestNoPanicBad(t *testing.T) {
	cfg := &Config{LibraryPrefixes: []string{"npbad/internal/"}}
	got := runOne(t, "nopanic_bad", cfg, NoPanicInLibrary(cfg))
	wantFindings(t, got, 2, "panic")
}

func TestHygieneGood(t *testing.T) {
	cfg := &Config{HygienePackages: []string{"hygood/engine"}}
	got := runOne(t, "hygiene_good", cfg, Hygiene(cfg))
	wantFindings(t, got, 0)
}

func TestHygieneBad(t *testing.T) {
	cfg := &Config{HygienePackages: []string{"hybad/engine"}}
	got := runOne(t, "hygiene_bad", cfg, Hygiene(cfg))
	wantFindings(t, got, 5, "defer", "range", "sync")
}

func TestCtxFirstGood(t *testing.T) {
	cfg := &Config{}
	got := runOne(t, "ctxfirst_good", cfg, CtxFirst(cfg))
	wantFindings(t, got, 0)
}

func TestCtxFirstBad(t *testing.T) {
	cfg := &Config{}
	got := runOne(t, "ctxfirst_bad", cfg, CtxFirst(cfg))
	wantFindings(t, got, 2, "Fetch", "Do")
}

// TestRepoIsClean runs every analyzer with the default configuration over
// the repository itself — the same invocation cmd/sialint performs — and
// expects zero findings. A regression here means new code violated one of
// the enforced invariants.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := Load(filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatalf("load repo: %v", err)
	}
	cfg := DefaultConfig()
	got := Run(pkgs, Analyzers(cfg), cfg)
	for _, f := range got {
		t.Errorf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	}
}
