package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanMisuse tracks channel lifecycle states — nil, open, closed — with a
// forward dataflow per function body and reports the misuses that panic
// or hang at runtime:
//
//   - send on a channel that is definitely closed (panics);
//   - close of a channel that is definitely closed (panics);
//   - send or receive on a definitely nil channel outside a select
//     (blocks forever);
//   - a select receive, inside a loop, from a definitely closed channel
//     without the comma-ok form (the case fires instantly with zero
//     values every iteration — a busy spin);
//   - close of a bare channel-typed parameter: the function does not own
//     the channel, and closing a channel you did not create is how
//     send-after-close panics are manufactured at a distance. (Closing a
//     receive-only channel is already a compile error, so that variant of
//     non-ownership needs no analyzer.)
//
// Channels are named by identifier/selector path ("ch", "s.stopCh").
// The analysis is optimistic about calls: passing a channel to another
// function leaves its state unchanged, and a deferred close is treated
// as running at return (it cannot make an earlier send unsafe). Assigning
// anything but make/nil sets the state to unknown, and unknown states
// never report. Escape with `// chan: <reason>` on the offending
// statement when the pattern is deliberate.
func ChanMisuse(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "chan-misuse",
		Doc:  "send-after-close, double-close, nil-channel ops, close-by-non-owner, closed-select spins",
		Run: func(pass *Pass) {
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					switch fn := n.(type) {
					case *ast.FuncDecl:
						if fn.Body != nil {
							pass.checkChanMisuse(fn.Type, fn.Body)
						}
					case *ast.FuncLit:
						if fn.Body != nil {
							pass.checkChanMisuse(fn.Type, fn.Body)
						}
					}
					return true
				})
			}
		},
	}
}

// chanState is the per-channel abstract state.
type chanState int8

const (
	chanUnknown chanState = iota // anything — calls, params, fields
	chanNil                      // definitely nil
	chanOpen                     // definitely open (made here, not closed)
	chanClosed                   // definitely closed
)

// chanFact maps channel paths to states. nil is the dataflow bottom.
// Absent keys are chanUnknown.
type chanFact struct {
	state map[string]chanState
}

func (f *chanFact) clone() *chanFact {
	c := &chanFact{state: make(map[string]chanState, len(f.state))}
	for k, v := range f.state {
		c.state[k] = v
	}
	return c
}

type chanLattice struct{}

func (chanLattice) Bottom() *chanFact { return nil }

func (chanLattice) Join(a, b *chanFact) *chanFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	j := &chanFact{state: map[string]chanState{}}
	for k, av := range a.state {
		if b.state[k] == av {
			j.state[k] = av
		}
		// disagreement (including absence) decays to chanUnknown: dropped
	}
	return j
}

func (chanLattice) Equal(a, b *chanFact) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.state) != len(b.state) {
		return false
	}
	for k, v := range a.state {
		if b.state[k] != v {
			return false
		}
	}
	return true
}

// chanOp is one channel operation found in a block.
type chanOp struct {
	kind chanOpKind
	key  string
	to   chanState // opAssign: the new state
	pos  token.Pos
	sel  bool // op sits in a select communication clause
	ok   bool // receive uses the comma-ok form
	loop bool // op sits inside a for/range loop
}

type chanOpKind int8

const (
	opSend chanOpKind = iota
	opRecv
	opClose
	opAssign
)

// checkChanMisuse solves the channel-state dataflow over one function body
// and reports on the fixed point.
func (pass *Pass) checkChanMisuse(ftype *ast.FuncType, body *ast.BlockStmt) {
	ctx := pass.newChanContext(ftype, body)
	if !ctx.any {
		return
	}
	g := NewCFG(body)
	ops := map[*Block][]chanOp{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ctx.chanOpsIn(n, func(op chanOp) {
				ops[b] = append(ops[b], op)
			})
		}
	}
	lat := chanLattice{}
	entry := &chanFact{state: map[string]chanState{}}
	transfer := func(b *Block, in *chanFact) *chanFact {
		if in == nil {
			return nil
		}
		out := in.clone()
		for _, op := range ops[b] {
			ctx.applyChanOp(out, op, nil)
		}
		return out
	}
	in, _ := ForwardSolve(g, lat, entry, transfer)

	// Report pass: replay reachable blocks against their fixed-point
	// in-facts. Select communications appear in both the select head block
	// and their case block, so findings dedupe by position.
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] || pass.Pkg.commentedWith(pos, "chan:") {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	for _, b := range g.Blocks {
		fact := in[b]
		if fact == nil {
			continue
		}
		cur := fact.clone()
		for _, n := range b.Nodes {
			ctx.chanOpsIn(n, func(op chanOp) {
				ctx.applyChanOp(cur, op, report)
			})
		}
	}
}

// applyChanOp mutates fact by one operation; report (when non-nil) fires
// for misuses.
func (ctx *chanContext) applyChanOp(fact *chanFact, op chanOp, report func(pos token.Pos, format string, args ...any)) {
	st := fact.state[op.key]
	switch op.kind {
	case opAssign:
		fact.state[op.key] = op.to
	case opClose:
		if report != nil {
			if st == chanClosed {
				report(op.pos, "close of %s, which is already closed on this path (panics)", op.key)
			} else if ctx.params[op.key] {
				report(op.pos, "close of parameter %s: this function does not own the channel; close where it was made, or justify with // chan:", op.key)
			}
		}
		fact.state[op.key] = chanClosed
	case opSend:
		if report != nil {
			switch st {
			case chanClosed:
				report(op.pos, "send on %s after it is closed on this path (panics)", op.key)
			case chanNil:
				if !op.sel {
					report(op.pos, "send on %s, which is nil on this path (blocks forever)", op.key)
				}
			}
		}
	case opRecv:
		if report != nil {
			switch st {
			case chanNil:
				if !op.sel {
					report(op.pos, "receive from %s, which is nil on this path (blocks forever)", op.key)
				}
			case chanClosed:
				if op.sel && op.loop && !op.ok {
					report(op.pos, "select receive from %s, which is closed on this path: the case fires every iteration with zero values (busy spin); use the comma-ok form or remove the case", op.key)
				}
			}
		}
	}
}

// chanContext caches the per-body classification needed to decode ops:
// channel-typed parameters, select communication spans, comma-ok receive
// expressions, and loop spans.
type chanContext struct {
	pass    *Pass
	params  map[string]bool       // bare channel-typed parameter names
	inSel   []posSpan             // select communication clause spans
	okRecvs map[*ast.UnaryExpr]bool
	loops   []posSpan
	any     bool // body touches any channel at all
}

type posSpan struct{ lo, hi token.Pos }

func (s posSpan) contains(p token.Pos) bool { return s.lo <= p && p < s.hi }

func inSpans(spans []posSpan, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

func (pass *Pass) newChanContext(ftype *ast.FuncType, body *ast.BlockStmt) *chanContext {
	ctx := &chanContext{pass: pass, params: map[string]bool{}, okRecvs: map[*ast.UnaryExpr]bool{}}
	if ftype != nil && ftype.Params != nil {
		for _, field := range ftype.Params.List {
			if _, ok := field.Type.(*ast.ChanType); !ok {
				continue
			}
			for _, name := range field.Names {
				ctx.params[name.Name] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // its body is checked on its own
		case *ast.ForStmt:
			ctx.loops = append(ctx.loops, posSpan{x.Pos(), x.End()})
		case *ast.RangeStmt:
			ctx.loops = append(ctx.loops, posSpan{x.Pos(), x.End()})
		case *ast.CommClause:
			if x.Comm != nil {
				ctx.inSel = append(ctx.inSel, posSpan{x.Comm.Pos(), x.Comm.End()})
			}
		case *ast.AssignStmt:
			// v, ok := <-ch — the comma-ok receive form.
			if len(x.Lhs) == 2 && len(x.Rhs) == 1 {
				if ue, ok := x.Rhs[0].(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					ctx.okRecvs[ue] = true
				}
			}
		case *ast.SendStmt, *ast.UnaryExpr, *ast.CallExpr, *ast.ChanType:
			switch y := n.(type) {
			case *ast.SendStmt:
				ctx.any = true
			case *ast.UnaryExpr:
				if y.Op == token.ARROW {
					ctx.any = true
				}
			case *ast.CallExpr:
				if id, ok := y.Fun.(*ast.Ident); ok && id.Name == "close" {
					ctx.any = true
				}
			case *ast.ChanType:
				ctx.any = true
			}
		}
		return true
	})
	return ctx
}

// chanKey renders e as a channel path when e has channel type; "" otherwise.
func (ctx *chanContext) chanKey(e ast.Expr) string {
	t := ctx.pass.Pkg.Info.TypeOf(e)
	if t == nil {
		return ""
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return ""
	}
	return exprName(e)
}

// chanOpsIn scans one block node for channel operations, without
// descending into function literals (they execute on their own schedule)
// or defers (a deferred close runs at return and cannot precede this
// body's sends).
func (ctx *chanContext) chanOpsIn(n ast.Node, emit func(chanOp)) {
	ast.Inspect(n, func(child ast.Node) bool {
		switch x := child.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if key := ctx.chanKey(x.Chan); key != "" {
				emit(chanOp{kind: opSend, key: key, pos: x.Pos(),
					sel: inSpans(ctx.inSel, x.Pos()), loop: inSpans(ctx.loops, x.Pos())})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if key := ctx.chanKey(x.X); key != "" {
					emit(chanOp{kind: opRecv, key: key, pos: x.Pos(),
						sel: inSpans(ctx.inSel, x.Pos()), ok: ctx.okRecvs[x],
						loop: inSpans(ctx.loops, x.Pos())})
				}
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if key := ctx.chanKey(x.Args[0]); key != "" {
					emit(chanOp{kind: opClose, key: key, pos: x.Pos()})
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					key := ctx.chanKey(lhs)
					if key == "" {
						continue
					}
					emit(chanOp{kind: opAssign, key: key, to: ctx.rhsChanState(x.Rhs[i]), pos: x.Pos()})
				}
			} else {
				// multi-value RHS (call, comma-ok): states go unknown
				for _, lhs := range x.Lhs {
					if key := ctx.chanKey(lhs); key != "" {
						emit(chanOp{kind: opAssign, key: key, to: chanUnknown, pos: x.Pos()})
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) > 0 {
						continue
					}
					// var ch chan T — the zero value is nil.
					for _, name := range vs.Names {
						if key := ctx.chanKey(name); key != "" {
							emit(chanOp{kind: opAssign, key: key, to: chanNil, pos: name.Pos()})
						}
					}
				}
			}
		}
		return true
	})
}

// rhsChanState classifies the value assigned into a channel variable.
func (ctx *chanContext) rhsChanState(e ast.Expr) chanState {
	switch x := e.(type) {
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" {
			return chanOpen
		}
	case *ast.Ident:
		if x.Name == "nil" {
			return chanNil
		}
	}
	return chanUnknown
}
