package analysis

import (
	"go/ast"
	"go/types"
)

// WgBalance checks sync.WaitGroup pairing around goroutine launches, the
// two mechanical mistakes that turn a fan-out into a race or a hang:
//
//   - wg.Add called inside the launched goroutine instead of before the go
//     statement — Wait can run before the goroutine is scheduled, see a
//     zero counter, and return while work is still in flight;
//   - a goroutine that calls wg.Done on a WaitGroup with no wg.Add
//     anywhere before the go statement in the launching function — either
//     the Add is missing (Done panics on a zero counter) or the pairing is
//     split across functions where no analyzer or reviewer can match it.
//
// The rule is module-wide: correct WaitGroup usage has the same shape
// everywhere, `wg.Add(n)` before `go`, `defer wg.Done()` inside.
func WgBalance(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "wg-balance",
		Doc:  "wg.Add precedes the go statement; never Add inside the launched goroutine",
		Run: func(pass *Pass) {
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					var body *ast.BlockStmt
					switch fn := n.(type) {
					case *ast.FuncDecl:
						body = fn.Body
					case *ast.FuncLit:
						body = fn.Body
					default:
						return true
					}
					if body != nil {
						pass.checkWgBalance(body)
					}
					return true
				})
			}
		},
	}
}

// checkWgBalance inspects one function body's go statements. The lexical
// order of the body is the approximation of "happens before the launch":
// an Add textually after the go statement cannot synchronize it.
func (pass *Pass) checkWgBalance(body *ast.BlockStmt) {
	// Collect the positions of every wg.Add in this body outside any
	// function literal, keyed by WaitGroup path.
	addsBefore := map[string][]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if key, ok := pass.asWgCall(call, "Add"); ok {
				addsBefore[key] = append(addsBefore[key], call)
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested launches are checked against their own body
		}
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true // go someFunc(...): pairing is someFunc's contract
		}
		// Adds inside the launched goroutine race with Wait.
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			if call, ok := inner.(*ast.CallExpr); ok {
				if key, ok := pass.asWgCall(call, "Add"); ok {
					pass.Reportf(call.Pos(),
						"%s.Add inside the launched goroutine races with Wait; call Add before the go statement", key)
				}
			}
			return true
		})
		// A Done inside the goroutine needs an Add before the launch.
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			key, ok := pass.asWgCall(call, "Done")
			if !ok {
				return true
			}
			preceded := false
			for _, add := range addsBefore[key] {
				if add.Pos() < gs.Pos() {
					preceded = true
					break
				}
			}
			if !preceded && !pass.Pkg.commentedWith(gs.Pos(), "wg:") {
				pass.Reportf(gs.Pos(),
					"goroutine calls %s.Done but no %s.Add precedes the go statement in this function; pair them in one function, or justify with // wg:", key, key)
			}
			return false // one report per launch is enough
		})
		return true
	})
}

// asWgCall decodes a call as method (Add/Done/Wait) on a sync.WaitGroup
// reachable through an identifier/selector path, returning the rendered
// WaitGroup path.
func (pass *Pass) asWgCall(call *ast.CallExpr, method string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return "", false
	}
	t := pass.Pkg.Info.TypeOf(sel.X)
	if t == nil || !isWaitGroup(t) {
		return "", false
	}
	key := exprName(sel.X)
	if key == "" {
		return "", false
	}
	return key, true
}

// isWaitGroup reports whether t is sync.WaitGroup (possibly behind a
// pointer).
func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
