// Generic dataflow over control-flow graphs: forward and backward fact
// propagation to a fixed point with a worklist. Analyses supply a
// join-semilattice and a monotone transfer function; the solver guarantees
// termination for lattices of finite height, including on irreducible
// graphs (goto can produce loops with two entry points, which structured
// traversals mishandle but a worklist does not care about).
package analysis

// Lattice is the join-semilattice an analysis computes over. Bottom is the
// fact for unreachable code and the identity of Join; Join must be
// commutative, associative, and idempotent; Equal decides convergence.
type Lattice[F any] interface {
	Bottom() F
	Join(a, b F) F
	Equal(a, b F) bool
}

// maxDataflowSteps bounds a single Solve as a defense against a
// non-monotone transfer function: width * height of any lattice used here
// is far below it, so a well-formed analysis always converges first.
const maxDataflowSteps = 1 << 20

// ForwardSolve propagates facts along control-flow edges until nothing
// changes. The entry fact seeds g.Entry; every other block starts at
// Bottom. It returns the fixed-point fact at the entry and exit of every
// block: in[b] is the join over predecessors' outs (entry included for
// g.Entry), out[b] = transfer(b, in[b]).
func ForwardSolve[F any](g *CFG, lat Lattice[F], entry F, transfer func(b *Block, in F) F) (in, out map[*Block]F) {
	in = make(map[*Block]F, len(g.Blocks))
	out = make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = lat.Bottom()
		out[b] = lat.Bottom()
	}
	in[g.Entry] = entry
	work := newWorklist(g.Blocks)
	for steps := 0; steps < maxDataflowSteps; steps++ {
		b, ok := work.pop()
		if !ok {
			break
		}
		acc := lat.Bottom()
		if b == g.Entry {
			acc = entry
		}
		for _, p := range b.Preds {
			acc = lat.Join(acc, out[p])
		}
		in[b] = acc
		next := transfer(b, acc)
		if !lat.Equal(next, out[b]) {
			out[b] = next
			for _, s := range b.Succs {
				work.push(s)
			}
		}
	}
	return in, out
}

// BackwardSolve is ForwardSolve against the edges: facts flow from
// successors to predecessors, the exit fact seeds g.Exit, and for each
// block out[b] is the join over successors' ins, in[b] = transfer(b,
// out[b]).
func BackwardSolve[F any](g *CFG, lat Lattice[F], exit F, transfer func(b *Block, out F) F) (in, out map[*Block]F) {
	in = make(map[*Block]F, len(g.Blocks))
	out = make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = lat.Bottom()
		out[b] = lat.Bottom()
	}
	out[g.Exit] = exit
	work := newWorklist(g.Blocks)
	for steps := 0; steps < maxDataflowSteps; steps++ {
		b, ok := work.pop()
		if !ok {
			break
		}
		acc := lat.Bottom()
		if b == g.Exit {
			acc = exit
		}
		for _, s := range b.Succs {
			acc = lat.Join(acc, in[s])
		}
		out[b] = acc
		next := transfer(b, acc)
		if !lat.Equal(next, in[b]) {
			in[b] = next
			for _, p := range b.Preds {
				work.push(p)
			}
		}
	}
	return in, out
}

// worklist is a FIFO queue of blocks with O(1) duplicate suppression.
type worklist struct {
	queue  []*Block
	queued map[*Block]bool
}

func newWorklist(blocks []*Block) *worklist {
	w := &worklist{queued: make(map[*Block]bool, len(blocks))}
	for _, b := range blocks {
		w.push(b)
	}
	return w
}

func (w *worklist) push(b *Block) {
	if !w.queued[b] {
		w.queued[b] = true
		w.queue = append(w.queue, b)
	}
}

func (w *worklist) pop() (*Block, bool) {
	if len(w.queue) == 0 {
		return nil, false
	}
	b := w.queue[0]
	w.queue = w.queue[1:]
	w.queued[b] = false
	return b, true
}
