package analysis

import (
	"go/ast"
	"go/types"
)

// Hygiene enforces two hot-path rules in the configured packages (the
// execution engine and the SMT solver, where per-row and per-node work
// dominates): sync primitives must never be copied by value (a copied
// mutex silently forks its lock state), and defer must not appear lexically
// inside a loop body (each iteration queues another deferred call that only
// runs at function exit — an accumulating cost and a classic
// resource-release bug in row loops). A defer inside a function literal is
// fine even when the literal sits in a loop: the deferred call runs when
// the literal returns.
func Hygiene(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "hygiene",
		Doc:  "no copied sync types and no defer inside loops in hot-path packages",
		Run: func(pass *Pass) {
			if !stringIn(pass.Pkg.Path, cfg.HygienePackages) {
				return
			}
			for _, file := range pass.Pkg.Files {
				pass.checkDeferInLoops(file, 0)
				ast.Inspect(file, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.FuncDecl:
						pass.checkFuncSig(x.Recv, x.Type)
					case *ast.FuncLit:
						pass.checkFuncSig(nil, x.Type)
					case *ast.RangeStmt:
						pass.checkRangeCopies(x)
					case *ast.AssignStmt:
						pass.checkAssignCopies(x)
					}
					return true
				})
			}
		},
	}
}

func stringIn(s string, set []string) bool {
	for _, x := range set {
		if s == x {
			return true
		}
	}
	return false
}

// checkDeferInLoops walks a statement tree tracking lexical loop depth.
// Function literals reset the depth: their defers run at the literal's own
// return.
func (pass *Pass) checkDeferInLoops(n ast.Node, depth int) {
	switch x := n.(type) {
	case nil:
		return
	case *ast.DeferStmt:
		if depth > 0 {
			pass.Reportf(x.Pos(), "defer inside a loop runs only at function exit; hoist it or wrap the body in a function")
		}
		pass.checkDeferInLoops(x.Call, depth)
		return
	case *ast.ForStmt:
		pass.checkDeferInLoops(x.Body, depth+1)
		return
	case *ast.RangeStmt:
		pass.checkDeferInLoops(x.Body, depth+1)
		return
	case *ast.FuncLit:
		pass.checkDeferInLoops(x.Body, 0)
		return
	}
	// Generic recursion over any other node's children.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil || child == n {
			return child == n
		}
		switch child.(type) {
		case *ast.DeferStmt, *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			pass.checkDeferInLoops(child, depth)
			return false
		}
		return true
	})
}

// checkFuncSig flags receivers, parameters, and results that pass a
// lock-containing type by value.
func (pass *Pass) checkFuncSig(recv *ast.FieldList, ftype *ast.FuncType) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.Pkg.Info.Types[field.Type].Type
			if t == nil {
				continue
			}
			if lock := lockIn(t); lock != "" {
				pass.Reportf(field.Pos(), "%s passes %s by value, copying its %s; use a pointer", kind, t, lock)
			}
		}
	}
	check(recv, "receiver")
	if ftype != nil {
		check(ftype.Params, "parameter")
		check(ftype.Results, "result")
	}
}

// checkRangeCopies flags range statements whose value variable copies a
// lock-containing element.
func (pass *Pass) checkRangeCopies(rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	t := pass.Pkg.Info.TypeOf(rng.Value)
	if t == nil {
		return
	}
	if lock := lockIn(t); lock != "" {
		pass.Reportf(rng.Value.Pos(), "range value copies %s, which contains %s; iterate by index or over pointers", t, lock)
	}
}

// checkAssignCopies flags assignments that copy an existing lock-containing
// value (reads of variables, fields, derefs, or elements — not composite
// literals or call results, which construct fresh values).
func (pass *Pass) checkAssignCopies(as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		if ident, ok := rhs.(*ast.Ident); ok {
			if obj, isUse := pass.Pkg.Info.Uses[ident]; !isUse || obj == nil {
				continue
			} else if _, isVar := obj.(*types.Var); !isVar {
				continue
			}
		}
		t := pass.Pkg.Info.Types[rhs].Type
		if t == nil {
			continue
		}
		if lock := lockIn(t); lock != "" {
			pass.Reportf(rhs.Pos(), "assignment copies %s, which contains %s; use a pointer", t, lock)
		}
	}
}

// lockIn returns the name of the sync primitive a value of type t would
// copy, or "" if t is copy-safe. Pointers, slices, maps, channels, and
// interfaces share rather than copy their referents.
func lockIn(t types.Type) string {
	return lockInRec(t, map[types.Type]bool{})
}

func lockInRec(t types.Type, seen map[types.Type]bool) string {
	t = types.Unalias(t)
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
		return lockInRec(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := lockInRec(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return lockInRec(u.Elem(), seen)
	}
	return ""
}
