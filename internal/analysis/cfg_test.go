package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses a function body (given as the full function source) and
// builds its CFG.
func buildCFG(t *testing.T, fnSrc string) *CFG {
	t.Helper()
	src := "package p\n" + fnSrc
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			return NewCFG(fn.Body)
		}
	}
	t.Fatalf("no function in %q", fnSrc)
	return nil
}

// wantGraph asserts the exact successor structure of a CFG in its String
// rendering.
func wantGraph(t *testing.T, g *CFG, want string) {
	t.Helper()
	got := strings.TrimSpace(g.String())
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("graph mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCFGIf(t *testing.T) {
	g := buildCFG(t, `
func f(a bool) int {
	x := 0
	if a {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	wantGraph(t, g, `
b0(entry) -> b1 b2
b1(if.then) -> b3
b2(if.else) -> b3
b3(if.done) -> b5
b4(unreach) -> b5
b5(exit) ->`)
}

func TestCFGIfNoElse(t *testing.T) {
	g := buildCFG(t, `
func f(a bool) {
	if a {
		work()
	}
	done()
}`)
	wantGraph(t, g, `
b0(entry) -> b1 b2
b1(if.then) -> b2
b2(if.done) -> b3
b3(exit) ->`)
}

func TestCFGFor(t *testing.T) {
	g := buildCFG(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
	done()
}`)
	wantGraph(t, g, `
b0(entry) -> b1
b1(for.head) -> b2 b4
b2(for.body) -> b3
b3(for.post) -> b1
b4(for.done) -> b5
b5(exit) ->`)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	back := g.BackEdgeSources(g.Loops[0])
	if len(back) != 1 || back[0].Kind != "for.post" {
		t.Errorf("back edges %v, want [for.post]", kinds(back))
	}
}

func TestCFGForever(t *testing.T) {
	g := buildCFG(t, `
func f() {
	for {
		work()
	}
}`)
	// No edge from for.head to for.done: the loop can only be left by a
	// break, and there is none, so done and exit stay unreachable from
	// entry via the loop.
	wantGraph(t, g, `
b0(entry) -> b1
b1(for.head) -> b2
b2(for.body) -> b1
b3(for.done) -> b4
b4(exit) ->`)
}

func TestCFGRange(t *testing.T) {
	g := buildCFG(t, `
func f(xs []int) {
	total := 0
	for _, x := range xs {
		total += x
	}
	use(total)
}`)
	wantGraph(t, g, `
b0(entry) -> b1
b1(range.head) -> b2 b3
b2(range.body) -> b1
b3(range.done) -> b4
b4(exit) ->`)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	back := g.BackEdgeSources(g.Loops[0])
	if len(back) != 1 || back[0].Kind != "range.body" {
		t.Errorf("back edges %v, want [range.body]", kinds(back))
	}
}

func TestCFGSwitch(t *testing.T) {
	g := buildCFG(t, `
func f(x int) int {
	switch x {
	case 1:
		return 10
	case 2:
		fallthrough
	default:
		x++
	}
	return x
}`)
	// b2/b3/b4 are the two cases and the default; b3's fallthrough edge
	// targets the default block b4, and case 1's return edges to exit.
	wantGraph(t, g, `
b0(entry) -> b2 b3 b4
b1(switch.done) -> b8
b2(switch.case) -> b8
b3(switch.case) -> b4
b4(switch.default) -> b1
b5(unreach) -> b1
b6(unreach) -> b1
b7(unreach) -> b8
b8(exit) ->`)
}

func TestCFGSwitchNoDefault(t *testing.T) {
	g := buildCFG(t, `
func f(x int) {
	switch x {
	case 1:
		work()
	}
	done()
}`)
	// Without a default the head also flows straight to done.
	wantGraph(t, g, `
b0(entry) -> b1 b2
b1(switch.done) -> b3
b2(switch.case) -> b1
b3(exit) ->`)
}

func TestCFGSelect(t *testing.T) {
	g := buildCFG(t, `
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
		work()
	}
	return 0
}`)
	// No default clause: the head blocks until a comm is ready, so its only
	// successors are the two comm clauses.
	wantGraph(t, g, `
b0(entry) -> b2 b4
b1(select.done) -> b6
b2(select.case) -> b6
b3(unreach) -> b1
b4(select.case) -> b1
b5(unreach) -> b6
b6(exit) ->`)
}

func TestCFGGoto(t *testing.T) {
	g := buildCFG(t, `
func f(n int) {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	done()
}`)
	wantGraph(t, g, `
b0(entry) -> b1
b1(label.loop) -> b2 b4
b2(if.then) -> b1
b3(unreach) -> b4
b4(if.done) -> b5
b5(exit) ->`)
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildCFG(t, `
func f(xs, ys []int) {
outer:
	for _, x := range xs {
		for _, y := range ys {
			if x == y {
				break outer
			}
			work(x, y)
		}
	}
	done()
}`)
	wantGraph(t, g, `
b0(entry) -> b1
b1(label.outer) -> b2
b2(range.head) -> b3 b4
b3(range.body) -> b5
b4(range.done) -> b11
b5(range.head) -> b6 b7
b6(range.body) -> b8 b10
b7(range.done) -> b2
b8(if.then) -> b4
b9(unreach) -> b10
b10(if.done) -> b5
b11(exit) ->`)
	// break outer exits the outer loop: the inner if.then block's successor
	// is the outer loop's done block (b4), not the inner one (b7).
}

func TestCFGLabeledContinue(t *testing.T) {
	g := buildCFG(t, `
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if skip(i, j) {
				continue outer
			}
		}
	}
}`)
	// The continue outer edge must target the outer loop's post block.
	var outerPost *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.post" {
			outerPost = b
			break // blocks are created outer-first
		}
	}
	if outerPost == nil {
		t.Fatal("no for.post block")
	}
	foundFromThen := false
	for _, p := range outerPost.Preds {
		if p.Kind == "if.then" {
			foundFromThen = true
		}
	}
	if !foundFromThen {
		t.Errorf("continue outer does not reach the outer post block; preds are %v", kinds(outerPost.Preds))
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g := buildCFG(t, `
func f(a bool) {
	if !a {
		panic("p: boom")
	}
	work()
}`)
	wantGraph(t, g, `
b0(entry) -> b1 b3
b1(if.then) -> b4
b2(unreach) -> b3
b3(if.done) -> b4
b4(exit) ->`)
}

// TestCFGDeferInLoop pins that a defer inside a loop body stays in the
// body block — one registration per iteration — and does not disturb the
// loop's edge structure.
func TestCFGDeferInLoop(t *testing.T) {
	g := buildCFG(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		defer done(i)
	}
}`)
	wantGraph(t, g, `
b0(entry) -> b1
b1(for.head) -> b2 b4
b2(for.body) -> b3
b3(for.post) -> b1
b4(for.done) -> b5
b5(exit) ->`)
	var body *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.body" {
			body = b
		}
	}
	foundDefer := false
	for _, n := range body.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			foundDefer = true
		}
	}
	if !foundDefer {
		t.Errorf("defer statement not recorded in the loop body block")
	}
}

// TestCFGSelectDefault pins that a select with a default clause gives the
// head exactly its clause blocks as successors — the default makes the
// select non-blocking, and both arms here return, leaving select.done
// unreachable from entry.
func TestCFGSelectDefault(t *testing.T) {
	g := buildCFG(t, `
func f(a chan int) int {
	select {
	case x := <-a:
		return x
	default:
		return -1
	}
}`)
	wantGraph(t, g, `
b0(entry) -> b2 b4
b1(select.done) -> b6
b2(select.case) -> b6
b3(unreach) -> b1
b4(select.case) -> b6
b5(unreach) -> b1
b6(exit) ->`)
}

// TestCFGLabeledContinueRanges pins continue-to-label across nested range
// loops: the if.then block's successor must be the OUTER range head (b2),
// not the inner one (b5) — range loops have no post block, so continue
// targets the head directly.
func TestCFGLabeledContinueRanges(t *testing.T) {
	g := buildCFG(t, `
func f(xss [][]int) {
outer:
	for _, xs := range xss {
		for _, x := range xs {
			if x < 0 {
				continue outer
			}
			work(x)
		}
	}
}`)
	wantGraph(t, g, `
b0(entry) -> b1
b1(label.outer) -> b2
b2(range.head) -> b3 b4
b3(range.body) -> b5
b4(range.done) -> b11
b5(range.head) -> b6 b7
b6(range.body) -> b8 b10
b7(range.done) -> b2
b8(if.then) -> b2
b9(unreach) -> b10
b10(if.done) -> b5
b11(exit) ->`)
}

// TestCFGDeadCodeAfterPanic pins that statements after a terminating panic
// land in an unreach block with no predecessor on any entry path, while the
// panic block itself edges straight to exit.
func TestCFGDeadCodeAfterPanic(t *testing.T) {
	g := buildCFG(t, `
func f() {
	panic("p: stop")
	work()
}`)
	wantGraph(t, g, `
b0(entry) -> b2
b1(unreach) -> b2
b2(exit) ->`)
	var dead *Block
	for _, b := range g.Blocks {
		if b.Kind == "unreach" {
			dead = b
		}
	}
	if len(dead.Preds) != 0 {
		t.Errorf("dead block has preds %v, want none", kinds(dead.Preds))
	}
	if len(dead.Nodes) == 0 {
		t.Errorf("statements after panic were not collected into the dead block")
	}
}

func kinds(bs []*Block) []string {
	var out []string
	for _, b := range bs {
		out = append(out, b.Kind)
	}
	return out
}

// boolLattice is the two-point lattice used by the solver tests.
type boolLattice struct{}

func (boolLattice) Bottom() bool         { return false }
func (boolLattice) Join(a, b bool) bool  { return a || b }
func (boolLattice) Equal(a, b bool) bool { return a == b }

// TestForwardSolveIrreducible drives the forward solver over an
// irreducible graph — a loop with two entry points, built with gotos —
// and checks it reaches the fixed point. "Reachable from entry" is the
// analysis: entry fact true, transfer the identity.
func TestForwardSolveIrreducible(t *testing.T) {
	g := buildCFG(t, `
func f(a bool) {
	if a {
		goto first
	}
	goto second
first:
	work()
	goto second
second:
	work()
	if a {
		goto first
	}
}`)
	in, _ := ForwardSolve[bool](g, boolLattice{}, true, func(b *Block, in bool) bool { return in })
	for _, b := range g.Blocks {
		if b.Kind == "label.first" || b.Kind == "label.second" {
			if !in[b] {
				t.Errorf("block b%d(%s) not marked reachable", b.Index, b.Kind)
			}
		}
	}
	if !in[g.Exit] {
		t.Errorf("exit not reachable")
	}
}

// TestForwardSolveCountsToFixedPoint checks a non-trivial lattice
// (bounded counter) converges on a cyclic graph rather than oscillating.
func TestForwardSolveCountsToFixedPoint(t *testing.T) {
	g := buildCFG(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
}`)
	// Saturating counter capped at 3: monotone, finite height.
	in, _ := ForwardSolve[int](g, capLattice{}, 0, func(b *Block, in int) int {
		if in >= 3 {
			return 3
		}
		return in + 1
	})
	for _, b := range g.Blocks {
		if b.Kind == "for.head" && in[b] != 3 {
			t.Errorf("loop head fact %d, want saturated 3", in[b])
		}
	}
}

type capLattice struct{}

func (capLattice) Bottom() int { return 0 }
func (capLattice) Join(a, b int) int {
	if a > b {
		return a
	}
	return b
}
func (capLattice) Equal(a, b int) bool { return a == b }

// TestBackwardSolve checks backward propagation: "reaches exit" flows
// against the edges from the exit block.
func TestBackwardSolve(t *testing.T) {
	g := buildCFG(t, `
func f(a bool) {
	if a {
		return
	}
	work()
}`)
	_, out := BackwardSolve[bool](g, boolLattice{}, true, func(b *Block, out bool) bool { return out })
	if !out[g.Entry] {
		t.Errorf("entry cannot reach exit in backward solve")
	}
}
