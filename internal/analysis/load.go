package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path
	Name  string // package name
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by file name
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the packages of the module rooted at or above
// dir that match the given patterns ("./...", "./internal/...", "./cmd/sia",
// or bare import paths). Test files are not loaded: sialint checks library
// and binary code, and test helpers are free to panic. Only the standard
// library may be imported besides the module's own packages, which preserves
// — and relies on — the repo's zero-dependency property.
func Load(dir string, patterns []string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		dirs:    map[string]string{},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	if err := l.scanDirs(); err != nil {
		return nil, err
	}
	var matched []string
	for path, pdir := range l.dirs {
		if matchesAny(abs, pdir, path, patterns) {
			matched = append(matched, path)
		}
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}
	sort.Strings(matched)
	var out []*Package
	for _, path := range matched {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		gomod := filepath.Join(d, "go.mod")
		if _, statErr := os.Stat(gomod); statErr == nil {
			path, perr := readModulePath(gomod)
			if perr != nil {
				return "", "", perr
			}
			return d, path, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found at or above %s", dir)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 2 && fields[0] == "module" {
			return strings.Trim(fields[1], `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// matchesAny reports whether the package at pdir (import path ipath) matches
// any pattern, resolved relative to the invocation directory base.
func matchesAny(base, pdir, ipath string, patterns []string) bool {
	rel, err := filepath.Rel(base, pdir)
	if err != nil || strings.HasPrefix(rel, "..") {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		switch {
		case pat == "..." && rel != "":
			return true
		case rel == "." && (pat == "" || pat == "."):
			return true
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		case pat == rel && rel != "":
			return true
		case pat == ipath:
			return true
		}
	}
	return false
}

type loader struct {
	fset    *token.FileSet
	root    string            // module root directory
	modPath string            // module path
	dirs    map[string]string // import path -> absolute directory
	pkgs    map[string]*Package
	loading map[string]bool // cycle detection
	std     types.Importer  // stdlib importer, created lazily
	stdSrc  types.Importer  // source-based fallback
}

// scanDirs enumerates the module's package directories, skipping testdata,
// vendor, and hidden directories.
func (l *loader) scanDirs() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if goFilesIn(path) {
			rel, rerr := filepath.Rel(l.root, path)
			if rerr != nil {
				return rerr
			}
			ipath := l.modPath
			if rel != "." {
				ipath = l.modPath + "/" + filepath.ToSlash(rel)
			}
			l.dirs[ipath] = path
		}
		return nil
	})
}

// goFilesIn reports whether dir directly contains at least one non-test Go
// file that the loader would include.
func goFilesIn(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && includeGoFile(dir, e.Name()) {
			return true
		}
	}
	return false
}

// includeGoFile reports whether name is a Go file the loader should parse
// and type-check as part of the package in dir. Mirroring the go tool, it
// excludes test files, files whose name starts with "_" or "." (editor
// backups, scratch drafts), and files carrying a build constraint the
// current platform does not satisfy — most importantly `//go:build ignore`
// on generator programs, which would otherwise break type-checking of the
// surrounding package with a spurious "package main" clash.
func includeGoFile(dir, name string) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
		return false
	}
	if strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
		return false
	}
	return constraintSatisfied(filepath.Join(dir, name))
}

// constraintSatisfied reads the build constraints in the file header (the
// lines before the package clause) and evaluates them against the running
// platform. Unreadable files pass — the parser will produce the real error.
func constraintSatisfied(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return true
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	inBlockComment := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlockComment {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				inBlockComment = false
			}
			continue
		}
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "/*"):
			if !strings.Contains(line[2:], "*/") {
				inBlockComment = true
			}
			continue
		case strings.HasPrefix(line, "//"):
			if constraint.IsGoBuild(line) || constraint.IsPlusBuild(line) {
				expr, perr := constraint.Parse(line)
				if perr == nil && !expr.Eval(buildTagSatisfied) {
					return false
				}
			}
			continue
		default:
			// First non-comment line is the package clause: constraints must
			// precede it, so the scan is done.
			return true
		}
	}
	return true
}

// buildTagSatisfied is the tag evaluator for constraintSatisfied: the
// running OS/arch and compiler are true, any released language version is
// true, everything else — including the conventional "ignore" tag — is
// false.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	return strings.HasPrefix(tag, "go1.")
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: package %s not found in module %s", path, l.modPath)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && includeGoFile(dir, e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, perr
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Name:  files[0].Name.Name,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal packages are
// type-checked from source, everything else resolves through the standard
// library importers.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.std == nil {
		l.std = importer.Default()
	}
	pkg, err := l.std.Import(path)
	if err == nil {
		return pkg, nil
	}
	// The gc importer needs export data, which some toolchain installs
	// lack; fall back to type-checking the standard library from source.
	if l.stdSrc == nil {
		l.stdSrc = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.stdSrc.Import(path)
}
