// Package analysis is sialint's stdlib-only static-analysis framework. It
// loads and type-checks the module's packages with go/parser and go/types
// (no external dependencies), then runs project-specific analyzers that
// enforce invariants the Go compiler cannot: exhaustive dispatch over Sia's
// AST interfaces, disciplined use of three-valued logic, panic hygiene in
// library code, and lock/defer hygiene in the hot execution paths.
//
// The framework is deliberately small: an Analyzer is a named function over
// a type-checked Pass, and a Finding is a position plus a message. The
// cmd/sialint driver loads packages, runs every registered analyzer, and
// exits non-zero when any finding is reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Config points the analyzers at the project-specific types and packages
// they enforce invariants for. Tests retarget it at fixture modules; the
// driver uses DefaultConfig.
type Config struct {
	// SwitchInterfaces are the fully qualified interface types
	// ("pkgpath.Name") whose type switches must be exhaustive or carry an
	// explicit default clause.
	SwitchInterfaces []string

	// TriBoolType is the fully qualified three-valued logic type
	// ("pkgpath.Name"); TrueName/FalseName are the constant identifiers
	// whose comparisons collapse Unknown.
	TriBoolType string
	TrueName    string
	FalseName   string

	// TriBoolPkg is the one package path allowed to convert between the
	// tri-bool type and bool/integer types.
	TriBoolPkg string

	// LibraryPrefixes are package path prefixes subject to the
	// no-panic-in-library rule.
	LibraryPrefixes []string

	// ExtraPanicPrefixes are panic-message prefixes accepted in addition to
	// the package's own name (e.g. the module name for packages that back
	// the public API).
	ExtraPanicPrefixes []string

	// HygienePackages are the package paths subject to the mutex-and-loop
	// hygiene checks (hot execution paths).
	HygienePackages []string

	// CancelPackages are the package paths whose while-style loops (a for
	// statement with no post clause: `for {...}` and `for cond {...}`) must
	// poll cancellation on every cycle or carry a `// cancel:`
	// justification.
	CancelPackages []string

	// CancelFunctions are function or method names whose call counts as a
	// cancellation poll, in addition to the built-in forms (a method call
	// on a context.Context, any call passing a context.Context argument,
	// and a decrement of a budget-named variable).
	CancelFunctions []string

	// ErrWrapBoundaryPackages are the package paths whose exported
	// functions form the public error surface: a return of a freshly
	// constructed, unwrapped error (errors.New or fmt.Errorf without %w)
	// there can never match a sentinel with errors.Is.
	ErrWrapBoundaryPackages []string

	// LockPackages are the package paths subject to the path-sensitive
	// lock-balance analyzer (double-lock, return with a held mutex).
	LockPackages []string

	// GoroutinePackages are the package paths whose go statements are
	// subject to the goroutine-leak analyzer: every launched body (and
	// everything it reaches inside this package set) must terminate on all
	// CFG paths — by polling cancellation or a channel on every cycle of
	// every while-style loop — or carry a `// goroutine:` justification.
	GoroutinePackages []string

	// TaintPackages are the package paths swept by the taint-bound
	// analyzer: request-derived values must pass a clamp or sanitizer
	// before reaching a timeout, allocation size, loop bound, or a field
	// of a TaintBoundTypes value.
	TaintPackages []string

	// TaintSources are the fully qualified struct types ("pkgpath.Name")
	// whose field reads produce tainted (request-controlled) values.
	TaintSources []string

	// TaintSanitizers are function or method names whose call returns a
	// clean value and scrubs its receiver (validators and clamps such as
	// Options.Validate or api.BuildOptions).
	TaintSanitizers []string

	// TaintBoundTypes are the fully qualified types whose fields must
	// never be assigned a tainted value directly (e.g. core.Options —
	// request options must go through a sanitizer).
	TaintBoundTypes []string
}

// DefaultConfig returns the configuration for the Sia module itself.
func DefaultConfig() *Config {
	return &Config{
		SwitchInterfaces: []string{
			"sia/internal/predicate.Expr",
			"sia/internal/predicate.Predicate",
			"sia/internal/smt.Formula",
		},
		TriBoolType:        "sia/internal/predicate.TriBool",
		TrueName:           "True",
		FalseName:          "False",
		TriBoolPkg:         "sia/internal/predicate",
		LibraryPrefixes:    []string{"sia/internal/"},
		ExtraPanicPrefixes: []string{"sia"},
		HygienePackages:    []string{"sia/internal/engine", "sia/internal/smt"},
		CancelPackages: []string{
			"sia/internal/smt",
			"sia/internal/core",
			"sia/internal/engine",
		},
		CancelFunctions: []string{"checkStop"},
		ErrWrapBoundaryPackages: []string{
			"sia",
			"sia/internal/core",
			"sia/internal/cache",
		},
		LockPackages: []string{"sia/internal/engine", "sia/internal/cache"},
		GoroutinePackages: []string{
			"sia/internal/serve",
			"sia/internal/serve/client",
			"sia/internal/cache",
			"sia/internal/obs",
			"sia/internal/experiments",
			"sia/internal/workload",
			"sia/internal/engine",
			"sia/internal/smt",
			"sia/internal/core",
			"sia/cmd/siad",
		},
		TaintPackages: []string{"sia/internal/serve", "sia/cmd/siad"},
		TaintSources: []string{
			"sia/internal/serve/api.SynthesizeRequest",
			"sia/internal/serve/api.RequestOptions",
			"sia/internal/serve/api.BatchRequest",
			"sia/internal/serve/api.SchemaColumn",
		},
		TaintSanitizers: []string{"Validate", "BuildOptions", "BuildSchema"},
		TaintBoundTypes: []string{"sia/internal/core.Options"},
	}
}

// Finding is one analyzer report at a source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is a named check over one type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer, with the whole loaded
// package graph available for whole-program facts (e.g. the implementation
// set of an interface).
type Pass struct {
	Cfg      *Config
	Pkg      *Package
	All      []*Package
	Shared   *Shared // per-run cache of whole-program state (may be nil)
	analyzer string
	sink     *[]Finding
}

// Program returns the per-run interprocedural call graph, building it on
// first use. Passes constructed without a Shared (tests) get a private one.
func (p *Pass) Program() *Program {
	if p.Shared == nil {
		p.Shared = &Shared{}
	}
	return p.Shared.ProgramFor(p.All)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Finding{
		Analyzer: p.analyzer,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the sialint suite bound to cfg.
func Analyzers(cfg *Config) []*Analyzer {
	return []*Analyzer{
		ExhaustiveSwitch(cfg),
		TriBoolMisuse(cfg),
		NoPanicInLibrary(cfg),
		Hygiene(cfg),
		CtxFirst(cfg),
		CancelPoll(cfg),
		ErrWrap(cfg),
		LockBalance(cfg),
		WgBalance(cfg),
		AllocBudget(cfg),
		MemoSafe(cfg),
		GoroutineLeak(cfg),
		AtomicMix(cfg),
		ChanMisuse(cfg),
		TaintBound(cfg),
	}
}

// Run applies every analyzer to every package and returns the findings
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Finding {
	var findings []Finding
	shared := &Shared{}
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{Cfg: cfg, Pkg: pkg, All: pkgs, Shared: shared, analyzer: a.Name, sink: &findings}
			a.Run(pass)
		}
	}
	sortFindings(findings)
	return findings
}

// RunParallel is Run with per-package concurrency, bounded by workers
// (non-positive means GOMAXPROCS). It is safe because the units of shared
// state are all read-only at this point — packages and type information are
// immutable after Load, analyzer closures hold only the Config — and each
// package gets a private findings sink, merged after the barrier. The final
// sort makes the output identical to Run regardless of scheduling.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, cfg *Config, workers int) []Finding {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perPkg := make([][]Finding, len(pkgs))
	sem := make(chan struct{}, workers)
	shared := &Shared{}
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var local []Finding
			for _, a := range analyzers {
				pass := &Pass{Cfg: cfg, Pkg: pkg, All: pkgs, Shared: shared, analyzer: a.Name, sink: &local}
				a.Run(pass)
			}
			perPkg[i] = local
		}()
	}
	wg.Wait()
	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	sortFindings(findings)
	return findings
}

// sortFindings orders findings by file, line, column, analyzer name, and
// finally message. The full key makes rendered output byte-identical across
// Run, RunParallel, and repeated invocations: an analyzer may report several
// findings at one position (e.g. alloc-budget for distinct hot roots), and
// without the message tiebreaker their relative order would depend on
// goroutine scheduling.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// lookupNamed resolves a fully qualified "pkgpath.Name" type across the
// loaded packages. It returns nil when the package or name is absent (the
// analyzer then has nothing to check, which keeps fixtures self-contained).
func lookupNamed(all []*Package, qualified string) *types.Named {
	dot := strings.LastIndex(qualified, ".")
	if dot < 0 {
		return nil
	}
	path, name := qualified[:dot], qualified[dot+1:]
	for _, pkg := range all {
		if pkg.Path != path || pkg.Types == nil {
			continue
		}
		obj := pkg.Types.Scope().Lookup(name)
		if obj == nil {
			return nil
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			return nil
		}
		return named
	}
	return nil
}

// commentedWith reports whether the line of pos, or the line above it, has a
// comment containing marker in the file enclosing pos.
func (pkg *Package) commentedWith(pos token.Pos, marker string) bool {
	file := pkg.fileAt(pos)
	if file == nil {
		return false
	}
	line := pkg.Fset.Position(pos).Line
	for _, grp := range file.Comments {
		marked := false
		for _, c := range grp.List {
			if strings.Contains(c.Text, marker) {
				marked = true
				break
			}
		}
		if !marked {
			continue
		}
		start := pkg.Fset.Position(grp.Pos()).Line
		end := pkg.Fset.Position(grp.End()).Line
		// Same line as the flagged expression, or the comment block that
		// ends on the line directly above it.
		if (start <= line && line <= end) || end == line-1 {
			return true
		}
	}
	return false
}

// justification is commentedWith plus the text after the marker: it returns
// the justification written on the line of pos (or the comment block ending
// directly above it) and whether one was found.
func (pkg *Package) justification(pos token.Pos, marker string) (string, bool) {
	file := pkg.fileAt(pos)
	if file == nil {
		return "", false
	}
	line := pkg.Fset.Position(pos).Line
	for _, grp := range file.Comments {
		reason, marked := "", false
		for i, c := range grp.List {
			if idx := strings.Index(c.Text, marker); idx >= 0 {
				marked = true
				reason = joinReason(grp.List, i, strings.TrimSpace(c.Text[idx+len(marker):]))
				break
			}
		}
		if !marked {
			continue
		}
		start := pkg.Fset.Position(grp.Pos()).Line
		end := pkg.Fset.Position(grp.End()).Line
		if (start <= line && line <= end) || end == line-1 {
			return reason, true
		}
	}
	return "", false
}

// fileAt returns the package file whose range covers pos.
func (pkg *Package) fileAt(pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
