package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// GoroutineLeak certifies that every go statement in the configured
// packages launches a body that can reach termination on all CFG paths.
// The serving tier spawns goroutines per request (the batch fan-out), per
// subsystem (snapshot and trace flush loops), and per synthesis miss (the
// singleflight runner); one of them looping without a termination signal
// is a leak that -race never sees and production discovers as monotonic
// goroutine-count growth.
//
// The check is interprocedural: from each go statement the analyzer
// resolves the launched function through the call graph (named functions,
// methods, and function literals alike) and walks everything reachable
// from it inside the configured package set. Every while-style loop on
// that cone — a for statement with no post clause, whose trip count is
// data-dependent — must poll a termination signal on every cycle:
//
//   - a cancellation poll in the cancel-poll sense (a context method, a
//     ctx-passing call, a configured poll function, a budget decrement);
//   - a channel operation (send, receive, select communication, or a
//     range over a channel) — closing the channel or sending on it is the
//     module's shutdown convention.
//
// Counted three-clause loops and range loops are exempt (their trip
// counts are bounded). Escapes: `// goroutine: <reason>` on the go
// statement blankets the whole launch; on a loop it covers that loop; an
// existing `// cancel:` justification on a loop is honored too — a loop
// proven bounded for cancel-poll is bounded here for the same reason.
//
// WaitGroup awareness (reusing the wg-balance decoding): a launch whose
// body calls wg.Done on a WaitGroup the launcher Waits on is joined — a
// non-terminating loop there does not merely leak, it hangs the launcher
// at Wait, and the report says so.
func GoroutineLeak(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "goroutine-leak",
		Doc:  "every go statement's body reaches termination on all CFG paths",
		Run: func(pass *Pass) {
			if !stringIn(pass.Pkg.Path, cfg.GoroutinePackages) {
				return
			}
			prog := pass.Program()
			st := prog.goroAnalysis(cfg)
			for _, node := range prog.Nodes {
				if node.Pkg != pass.Pkg {
					continue
				}
				for _, f := range st.findings[node] {
					pass.Reportf(f.pos, "%s", f.msg)
				}
			}
		},
	}
}

// goroFinding is one leak report attributed to the node holding the loop.
type goroFinding struct {
	pos token.Pos
	msg string
}

// goroLaunch is one go statement selected for checking.
type goroLaunch struct {
	node    *FuncNode   // the launching function
	stmt    *ast.GoStmt
	targets []*FuncNode // resolved launch targets (literal or named)
	desc    string      // "file.go:123" of the go statement
	joined  bool        // launcher Waits on a WaitGroup the body Dones
}

type goroState struct {
	findings map[*FuncNode][]goroFinding
}

// goroAnalysis runs the whole-program goroutine-leak analysis once per
// Program and caches the result.
func (p *Program) goroAnalysis(cfg *Config) *goroState {
	p.goroOnce.Do(func() {
		st := &goroState{findings: map[*FuncNode][]goroFinding{}}
		launches := p.collectLaunches(cfg)
		// checked tracks nodes already analyzed so one flagged loop is
		// reported once, attributed to the first launch that reaches it.
		checked := map[*FuncNode]bool{}
		for _, l := range launches {
			cone := p.launchCone(l.targets, cfg)
			for _, n := range cone {
				if checked[n] {
					continue
				}
				checked[n] = true
				p.checkGoroNode(cfg, st, n, l)
			}
		}
		p.goro = st
	})
	return p.goro
}

// collectLaunches gathers the go statements of the configured packages in
// program order, resolving each to its launch targets and deciding
// joined-ness. Launches justified with // goroutine: are dropped here.
func (p *Program) collectLaunches(cfg *Config) []goroLaunch {
	var out []goroLaunch
	for _, node := range p.Nodes {
		if node.Body == nil || !stringIn(node.Pkg.Path, cfg.GoroutinePackages) {
			continue
		}
		siteEdges := map[ast.Node][]Edge{}
		for _, e := range node.Edges {
			siteEdges[e.Site] = append(siteEdges[e.Site], e)
		}
		shim := &Pass{Cfg: cfg, Pkg: node.Pkg}
		walkOwn(node, func(n ast.Node) {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return
			}
			if node.Pkg.commentedWith(gs.Pos(), "goroutine:") {
				return
			}
			l := goroLaunch{node: node, stmt: gs, desc: shortSite(node.Pkg, gs.Pos())}
			if lit, okL := gs.Call.Fun.(*ast.FuncLit); okL {
				if ln := p.byLit[lit]; ln != nil {
					l.targets = append(l.targets, ln)
				}
				l.joined = launchJoined(shim, node, gs, lit)
			} else {
				for _, e := range siteEdges[gs.Call] {
					if e.Callee != nil {
						l.targets = append(l.targets, e.Callee)
					}
				}
			}
			if len(l.targets) > 0 {
				out = append(out, l)
			}
		})
	}
	return out
}

// launchCone returns the nodes reachable from the launch targets through
// the call graph, staying inside the configured package set (loops past
// it belong to cancel-poll's domain), in deterministic order.
func (p *Program) launchCone(targets []*FuncNode, cfg *Config) []*FuncNode {
	var cone []*FuncNode
	seen := map[*FuncNode]bool{}
	queue := append([]*FuncNode(nil), targets...)
	for _, t := range targets {
		seen[t] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if !stringIn(n.Pkg.Path, cfg.GoroutinePackages) {
			continue
		}
		cone = append(cone, n)
		for _, e := range n.Edges {
			if e.Callee != nil && !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return cone
}

// checkGoroNode flags every while-style loop in n's body that has a cycle
// with no termination poll.
func (p *Program) checkGoroNode(cfg *Config, st *goroState, n *FuncNode, l goroLaunch) {
	if n.Body == nil {
		return
	}
	shim := &Pass{Cfg: cfg, Pkg: n.Pkg}
	g := NewCFG(n.Body)
	for _, loop := range g.Loops {
		forStmt, ok := loop.Stmt.(*ast.ForStmt)
		if !ok || forStmt.Post != nil {
			continue // range or counted loop: trip count is bounded
		}
		if n.Pkg.commentedWith(forStmt.Pos(), "goroutine:") ||
			n.Pkg.commentedWith(forStmt.Pos(), "cancel:") {
			continue
		}
		polls := func(b *Block) bool {
			for _, nd := range b.Nodes {
				if shim.nodePolls(nd) || chanOpIn(n.Pkg, nd, b.Kind == "range.head") {
					return true
				}
			}
			return false
		}
		if hasCycleAvoiding(g, loop, polls) {
			msg := fmt.Sprintf(
				"goroutine launched at %s can run forever: this loop has a cycle that never polls cancellation or touches a channel; bound it, poll ctx/done, or justify with // goroutine:",
				l.desc)
			if l.joined {
				msg += " (the launcher joins this goroutine, so wg.Wait hangs with it)"
			}
			st.findings[n] = append(st.findings[n], goroFinding{pos: forStmt.Pos(), msg: msg})
		}
	}
}

// chanOpIn reports whether executing node nd performs a channel operation:
// a send, a receive, or — when the node sits in a range head — the
// evaluation of a channel being ranged over. Function literals are opaque
// (their channel ops run when they run).
func chanOpIn(pkg *Package, nd ast.Node, rangeHead bool) bool {
	found := false
	ast.Inspect(nd, func(child ast.Node) bool {
		if found {
			return false
		}
		switch x := child.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
				return false
			}
		case ast.Expr:
			if rangeHead {
				if t := pkg.Info.TypeOf(x); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// launchJoined reports whether the goroutine launched by gs is joined by
// its launcher: the literal body calls wg.Done and the launching function
// calls wg.Wait on the same WaitGroup after the go statement.
func launchJoined(shim *Pass, node *FuncNode, gs *ast.GoStmt, lit *ast.FuncLit) bool {
	doneKeys := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, okW := shim.asWgCall(call, "Done"); okW {
				doneKeys[key] = true
			}
		}
		return true
	})
	if len(doneKeys) == 0 {
		return false
	}
	joined := false
	walkOwn(node, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < gs.End() {
			return
		}
		if key, okW := shim.asWgCall(call, "Wait"); okW && doneKeys[key] {
			joined = true
		}
	})
	return joined
}

// shortSite renders a position as "file.go:123" for report messages.
func shortSite(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
