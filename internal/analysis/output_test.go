package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleFindings() []Finding {
	return []Finding{
		{
			Analyzer: "cancel-poll",
			Pos:      token.Position{Filename: "/repo/internal/smt/solver.go", Line: 10, Column: 2},
			Message:  "loop does not poll cancellation",
		},
		{
			Analyzer: "err-wrap",
			Pos:      token.Position{Filename: "/repo/core/errors.go", Line: 3, Column: 9},
			Message:  "use errors.Is",
		},
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleFindings(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Tool     string `json:"tool"`
		Count    int    `json:"count"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.Tool != "sialint" || got.Count != 2 || len(got.Findings) != 2 {
		t.Fatalf("envelope = %+v", got)
	}
	f := got.Findings[0]
	if f.Analyzer != "cancel-poll" || f.File != "internal/smt/solver.go" || f.Line != 10 || f.Column != 2 {
		t.Errorf("finding[0] = %+v", f)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("empty findings must encode as [], not null:\n%s", buf.String())
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	analyzers := Analyzers(DefaultConfig())
	if err := WriteSARIF(&buf, sampleFindings(), analyzers, "/repo"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("log envelope = %+v", log)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "sialint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Only the two analyzers with findings become rules, sorted by id.
	if len(run.Tool.Driver.Rules) != 2 ||
		run.Tool.Driver.Rules[0].ID != "cancel-poll" || run.Tool.Driver.Rules[1].ID != "err-wrap" {
		t.Errorf("rules = %+v", run.Tool.Driver.Rules)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "cancel-poll" || r.Level != "error" {
		t.Errorf("result[0] = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/smt/solver.go" || loc.Region.StartLine != 10 {
		t.Errorf("location = %+v", loc)
	}
}

// TestRunParallelMatchesRun pins that the concurrent driver produces the
// exact finding sequence of the serial one on a real corpus (the bad
// fixtures, which actually produce findings).
func TestRunParallelMatchesRun(t *testing.T) {
	cfg := cancelCfg("cpbad")
	pkgs := loadFixture(t, "cancelpoll_bad")
	analyzers := []*Analyzer{CancelPoll(cfg)}
	serial := Run(pkgs, analyzers, cfg)
	for _, workers := range []int{0, 1, 2, 8} {
		parallel := RunParallel(pkgs, analyzers, cfg, workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: got %d findings, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Errorf("workers=%d: finding %d = %+v, want %+v", workers, i, parallel[i], serial[i])
			}
		}
	}
}
