package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the context placement convention on the public surface:
// any exported function or method that takes a context.Context must take it
// as its first parameter. The convention ("Contexts should not be stored...
// pass a Context as the first parameter", the context package's own
// documentation) is what lets callers spot cancellation support at a
// glance; a context buried later in the signature is invariably a refactor
// leftover.
func CtxFirst(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "ctx-first",
		Doc:  "exported functions taking a context.Context must take it first",
		Run: func(pass *Pass) {
			for _, file := range pass.Pkg.Files {
				for _, decl := range file.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || !fn.Name.IsExported() {
						continue
					}
					obj, ok := pass.Pkg.Info.Defs[fn.Name].(*types.Func)
					if !ok {
						continue
					}
					sig, ok := obj.Type().(*types.Signature)
					if !ok {
						continue
					}
					params := sig.Params()
					for i := 1; i < params.Len(); i++ {
						if isContextType(params.At(i).Type()) {
							pass.Reportf(fn.Name.Pos(),
								"exported %s takes context.Context as parameter %d; a context must be the first parameter",
								fn.Name.Name, i+1)
							break
						}
					}
				}
			}
		},
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
