package analysis

import (
	"encoding/json"
	"io"
)

// The memo report is the machine-readable output of the memo-safe analysis:
// one entry per // sia:memoize function, stating whether it is certified
// memoization-pure, how much code the certification covers, and every
// violation and reviewed justification inside that cone. The ROADMAP's QE
// subproblem cache consumes this to decide what it may memoize.

// MemoReportSite locates one effect.
type MemoReportSite struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
	Reason  string `json:"reason,omitempty"` // present on justifications
}

// MemoReportEntry is the verdict for one annotated entry point.
type MemoReportEntry struct {
	Function       string           `json:"function"`
	File           string           `json:"file"`
	Line           int              `json:"line"`
	Certified      bool             `json:"certified"`
	Reachable      int              `json:"reachable"` // call-graph nodes in the entry's cone
	Violations     []MemoReportSite `json:"violations"`
	Justifications []MemoReportSite `json:"justifications"`
}

// MemoReport is the document WriteMemoReport emits.
type MemoReport struct {
	Tool    string            `json:"tool"`
	Entries []MemoReportEntry `json:"entries"`
}

// BuildMemoReport runs the memo-safe analysis over pkgs and assembles the
// report. Paths are rewritten relative to baseDir when possible.
func BuildMemoReport(pkgs []*Package, baseDir string) *MemoReport {
	prog := BuildProgram(pkgs)
	return buildMemoReport(prog, baseDir)
}

func buildMemoReport(prog *Program, baseDir string) *MemoReport {
	report := &MemoReport{Tool: "sialint", Entries: []MemoReportEntry{}}
	st := prog.memoAnalysis()
	if st == nil {
		return report
	}
	site := func(pkg *Package, iss memoIssue) MemoReportSite {
		pos := pkg.Fset.Position(iss.pos)
		return MemoReportSite{
			File:    relativeTo(baseDir, pos.Filename),
			Line:    pos.Line,
			Column:  pos.Column,
			Message: iss.msg,
			Reason:  iss.reason,
		}
	}
	for _, entry := range prog.MemoEntries() {
		reach := prog.ReachableFrom([]*FuncNode{entry})
		units := map[*FuncNode]bool{}
		for n := range reach {
			u := n.Root()
			if _, ok := st.sums[u]; !ok {
				u = n
			}
			units[u] = true
		}
		pos := entry.Pkg.Fset.Position(entry.Pos())
		re := MemoReportEntry{
			Function:       entry.Name,
			File:           relativeTo(baseDir, pos.Filename),
			Line:           pos.Line,
			Reachable:      len(reach),
			Violations:     []MemoReportSite{},
			Justifications: []MemoReportSite{},
		}
		// Program order over units keeps the report deterministic.
		for _, u := range prog.Nodes {
			if !units[u] {
				continue
			}
			for _, v := range st.viols[u] {
				re.Violations = append(re.Violations, site(u.Pkg, v))
			}
			for _, j := range st.justs[u] {
				re.Justifications = append(re.Justifications, site(u.Pkg, j))
			}
		}
		re.Certified = len(re.Violations) == 0
		report.Entries = append(report.Entries, re)
	}
	return report
}

// WriteMemoReport writes the memo report for pkgs to w as indented JSON.
func WriteMemoReport(w io.Writer, pkgs []*Package, baseDir string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildMemoReport(pkgs, baseDir))
}
