package analysis

import "testing"

// Tests for the CFG/dataflow-backed analyzers: cancel-poll, err-wrap,
// lock-balance, wg-balance. Each runs against a good fixture (zero
// findings) and a bad fixture (exact count plus message substrings), the
// same discipline as the per-node analyzers in analysis_test.go.

func cancelCfg(mod string) *Config {
	return &Config{
		CancelPackages:  []string{mod + "/solver"},
		CancelFunctions: []string{"checkStop"},
	}
}

func TestCancelPollGood(t *testing.T) {
	cfg := cancelCfg("cpgood")
	got := runOne(t, "cancelpoll_good", cfg, CancelPoll(cfg))
	wantFindings(t, got, 0)
}

func TestCancelPollBad(t *testing.T) {
	cfg := cancelCfg("cpbad")
	got := runOne(t, "cancelpoll_bad", cfg, CancelPoll(cfg))
	wantFindings(t, got, 4, "poll")
}

func TestErrWrapGood(t *testing.T) {
	cfg := &Config{ErrWrapBoundaryPackages: []string{"ewgood/api"}}
	got := runOne(t, "errwrap_good", cfg, ErrWrap(cfg))
	wantFindings(t, got, 0)
}

func TestErrWrapBad(t *testing.T) {
	cfg := &Config{ErrWrapBoundaryPackages: []string{"ewbad/api"}}
	got := runOne(t, "errwrap_bad", cfg, ErrWrap(cfg))
	wantFindings(t, got, 5, "errors.Is", "%w", "errors.New")
}

func TestLockBalanceGood(t *testing.T) {
	cfg := &Config{LockPackages: []string{"lbgood/engine"}}
	got := runOne(t, "lockbalance_good", cfg, LockBalance(cfg))
	wantFindings(t, got, 0)
}

func TestLockBalanceBad(t *testing.T) {
	cfg := &Config{LockPackages: []string{"lbbad/engine"}}
	got := runOne(t, "lockbalance_bad", cfg, LockBalance(cfg))
	wantFindings(t, got, 3, "locked again", "still held")
}

func TestWgBalanceGood(t *testing.T) {
	cfg := &Config{}
	got := runOne(t, "wgbalance_good", cfg, WgBalance(cfg))
	wantFindings(t, got, 0)
}

func TestWgBalanceBad(t *testing.T) {
	cfg := &Config{}
	got := runOne(t, "wgbalance_bad", cfg, WgBalance(cfg))
	wantFindings(t, got, 3, "races with Wait", "no wg.Add precedes")
}
